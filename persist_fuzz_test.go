package temporalir_test

import (
	"bytes"
	"testing"

	temporalir "repro"
	"repro/internal/testutil"
)

// FuzzLoadEngine throws corrupt snapshots at the loader. The tenant
// spill/reload path feeds operator-controlled files into LoadEngine, so
// the loader must treat every byte as hostile: any input may be
// rejected, but none may panic, and a flipped count in a header must
// not commit an allocation the file's actual size cannot justify.
func FuzzLoadEngine(f *testing.F) {
	// Seed with a real snapshot (engine save), a sharded save of the
	// same corpus, and a few degenerate prefixes.
	c := testutil.RandomCollection(testutil.CollectionConfig{
		N: 60, DomainLo: 0, DomainHi: 900, Dict: 12, MaxDesc: 4, Seed: 31,
	})
	b := temporalir.NewBuilder()
	for i := range c.Objects {
		o := &c.Objects[i]
		b.Add(o.Interval.Start, o.Interval.End, termsFor(o.Elems)...)
	}
	eng, err := b.Build(temporalir.TIF, temporalir.Options{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)

	sh, err := b.BuildSharded(temporalir.TIF, temporalir.Options{}, temporalir.ShardedOptions{Shards: 3})
	if err != nil {
		f.Fatal(err)
	}
	buf.Reset()
	if err := sh.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf.Bytes()...))

	f.Add([]byte{})
	f.Add([]byte("TIRE"))
	f.Add(append([]byte("TIRE"), 2))
	// Version-2 header claiming a colossal term count with no terms.
	f.Add(append(append([]byte("TIRE"), 2), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f))
	f.Add(valid[:len(valid)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		eng, err := temporalir.LoadEngine(bytes.NewReader(data), temporalir.TIF, temporalir.Options{})
		if err != nil {
			// Rejected input must also reject sharded, and vice versa —
			// the two loaders share one decoder.
			if _, err2 := temporalir.LoadSharded(bytes.NewReader(data), temporalir.TIF, temporalir.Options{}, temporalir.ShardedOptions{Shards: 2}); err2 == nil {
				t.Fatalf("LoadEngine rejected (%v) but LoadSharded accepted", err)
			}
			return
		}
		// Accepted input must yield a usable engine: a save/reload
		// round-trip and a basic query must not panic.
		var out bytes.Buffer
		if err := eng.Save(&out); err != nil {
			t.Fatalf("re-saving accepted snapshot: %v", err)
		}
		if _, err := temporalir.LoadEngine(bytes.NewReader(out.Bytes()), temporalir.TIF, temporalir.Options{}); err != nil {
			t.Fatalf("round-tripping accepted snapshot: %v", err)
		}
		_ = eng.Search(0, 1000)
	})
}
