package temporalir_test

import (
	"fmt"

	temporalir "repro"
)

// The paper's running example (Figure 1): eight objects, a query interval
// of [4, 6] and the element set {a, c} — answered by o2, o4 and o7.
func Example() {
	b := temporalir.NewBuilder()
	b.Add(10, 15, "a", "b", "c") // o1
	b.Add(2, 5, "a", "c")        // o2
	b.Add(0, 2, "b")             // o3
	b.Add(0, 15, "a", "b", "c")  // o4
	b.Add(3, 7, "b", "c")        // o5
	b.Add(2, 11, "c")            // o6
	b.Add(4, 14, "a", "c")       // o7
	b.Add(2, 3, "c")             // o8

	engine, _ := b.Build(temporalir.IRHintPerf, temporalir.Options{})
	fmt.Println(engine.Search(4, 6, "a", "c"))
	// Output: [1 3 6]
}

// Working with element ids directly, without the string layer.
func ExampleNewIndex() {
	var c temporalir.Collection
	c.AppendObject(temporalir.Interval{Start: 0, End: 9}, []temporalir.ElemID{1, 2})
	c.AppendObject(temporalir.Interval{Start: 5, End: 20}, []temporalir.ElemID{2})

	ix, _ := temporalir.NewIndex(temporalir.TIFSlicing, &c, temporalir.Options{Slices: 4})
	ids := ix.Query(temporalir.Query{
		Interval: temporalir.Interval{Start: 7, End: 8},
		Elems:    []temporalir.ElemID{2},
	})
	temporalir.SortIDs(ids)
	fmt.Println(ids)
	// Output: [0 1]
}

// Every index method answers identically; they differ in cost profiles.
func ExampleMethods() {
	var c temporalir.Collection
	c.AppendObject(temporalir.Interval{Start: 0, End: 10}, []temporalir.ElemID{0})
	q := temporalir.Query{Interval: temporalir.Interval{Start: 5, End: 6}, Elems: []temporalir.ElemID{0}}

	agree := true
	for _, m := range temporalir.Methods() {
		ix, _ := temporalir.NewIndex(m, &c, temporalir.Options{})
		if len(ix.Query(q)) != 1 {
			agree = false
		}
	}
	fmt.Println(agree)
	// Output: true
}

// Temporal join: overlapping lifespans sharing elements.
func ExampleJoin() {
	var sessions, promos temporalir.Collection
	sessions.AppendObject(temporalir.Interval{Start: 0, End: 10}, []temporalir.ElemID{7})
	sessions.AppendObject(temporalir.Interval{Start: 100, End: 110}, []temporalir.ElemID{7})
	promos.AppendObject(temporalir.Interval{Start: 5, End: 15}, []temporalir.ElemID{7, 9})

	pairs := temporalir.Join(&sessions, &promos, 1)
	fmt.Println(pairs)
	// Output: [{0 0}]
}

// Batch evaluation fans queries across cores.
func ExampleQueryBatch() {
	var c temporalir.Collection
	c.AppendObject(temporalir.Interval{Start: 0, End: 100}, []temporalir.ElemID{0})
	ix, _ := temporalir.NewIndex(temporalir.IRHintPerf, &c, temporalir.Options{})

	queries := []temporalir.Query{
		{Interval: temporalir.Interval{Start: 10, End: 20}, Elems: []temporalir.ElemID{0}},
		{Interval: temporalir.Interval{Start: 200, End: 300}, Elems: []temporalir.ElemID{0}},
	}
	results := temporalir.QueryBatch(ix, queries, 2)
	fmt.Println(len(results[0]), len(results[1]))
	// Output: 1 0
}

// Ranked search returns the k most relevant matches.
func ExampleEngine_SearchTopK() {
	b := temporalir.NewBuilder()
	b.Add(0, 100, "go", "generics")
	b.Add(95, 200, "go", "generics")
	b.Add(0, 100, "go")

	engine, _ := b.Build(temporalir.IRHintPerf, temporalir.Options{})
	top := engine.SearchTopK(0, 100, 1, "go", "generics")
	fmt.Println(top[0].ID)
	// Output: 0
}
