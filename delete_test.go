package temporalir

import (
	"fmt"
	"sync"
	"testing"
)

// buildDeleteEngine creates a small engine where object 1 carries a
// unique marker term, so its visibility after Delete is easy to probe.
func buildDeleteEngine(t *testing.T, m Method) *Engine {
	t.Helper()
	b := NewBuilder()
	b.Add(10, 20, "alpha", "shared")
	b.Add(15, 40, "marker", "shared")
	b.Add(30, 60, "beta", "shared")
	e, err := b.Build(m, Options{})
	if err != nil {
		t.Fatalf("build %s: %v", m, err)
	}
	return e
}

// TestDeleteHidesObjectAcrossMethods verifies that after Delete, every
// query surface of the engine — Search, SearchAny, SearchTopK, Timeline —
// stops returning the tombstoned object, for every index method,
// including methods whose index-level Delete is partial or absent.
func TestDeleteHidesObjectAcrossMethods(t *testing.T) {
	methods := append(Methods(), TIF)
	for _, m := range methods {
		t.Run(string(m), func(t *testing.T) {
			e := buildDeleteEngine(t, m)

			if got := e.Search(0, 100, "marker"); len(got) != 1 || got[0] != 1 {
				t.Fatalf("pre-delete Search = %v, want [1]", got)
			}
			if e.Len() != 3 {
				t.Fatalf("pre-delete Len = %d, want 3", e.Len())
			}

			if err := e.Delete(1); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			// Idempotent double delete.
			if err := e.Delete(1); err != nil {
				t.Fatalf("second Delete: %v", err)
			}
			if e.Len() != 2 {
				t.Fatalf("post-delete Len = %d, want 2", e.Len())
			}

			if got := e.Search(0, 100, "marker"); len(got) != 0 {
				t.Errorf("Search still returns tombstoned object: %v", got)
			}
			for _, id := range e.Search(0, 100, "shared") {
				if id == 1 {
					t.Errorf("Search(shared) still returns tombstoned object 1")
				}
			}
			for _, id := range e.SearchAny(0, 100, "marker", "alpha") {
				if id == 1 {
					t.Errorf("SearchAny still returns tombstoned object 1")
				}
			}
			for _, r := range e.SearchTopK(0, 100, 10, "shared") {
				if r.ID == 1 {
					t.Errorf("SearchTopK still returns tombstoned object 1")
				}
			}
			if _, _, err := e.Object(1); err == nil {
				t.Errorf("Object still resolves tombstoned object 1")
			}
			for _, b := range e.Timeline(0, 100, 4, "marker") {
				if b.Count != 0 || b.Mass != 0 {
					t.Errorf("Timeline still counts tombstoned object: %+v", b)
				}
			}
		})
	}
}

// TestEngineConcurrentSearchInsert drives reads (including the ranked
// path, which lazily initializes the shared scorer) against concurrent
// writes. Run under -race this is the regression test for the
// scorer-initialization data race and for unguarded Engine mutation.
func TestEngineConcurrentSearchInsert(t *testing.T) {
	e := buildDeleteEngine(t, IRHintPerf)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				switch w % 4 {
				case 0:
					e.Search(0, 100, "shared")
				case 1:
					e.SearchTopK(0, 100, 5, "shared")
				case 2:
					e.Insert(Timestamp(i), Timestamp(i+10), fmt.Sprintf("w%d-%d", w, i), "shared")
				case 3:
					e.Timeline(0, 100, 8, "shared")
					e.SizeBytes()
					e.Len()
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()
}
