package temporalir_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	temporalir "repro"
	"repro/internal/testutil"
)

// Acceptance test for the generational write path: after deleting 50% of
// a seeded corpus, Compact must (a) leave per-query result checksums
// oracle-identical across all eight methods, and (b) reclaim SizeBytes
// to within 10% of an engine freshly built over the surviving objects.
func TestCompactAcceptance(t *testing.T) {
	w := testutil.DefaultDifferentialWorkloads()[0]
	c := testutil.RandomCollection(w.Config)
	queries := w.WorkloadQueries()
	for _, m := range allMethods() {
		m := m
		t.Run(string(m), func(t *testing.T) {
			eng, err := temporalir.EngineFromCollection(c, m, temporalir.Options{})
			if err != nil {
				t.Fatalf("EngineFromCollection: %v", err)
			}
			oracle := testutil.NewLifecycleOracle(c)
			// Delete every even id: 50% of the corpus.
			for id := temporalir.ObjectID(0); int(id) < len(c.Objects); id += 2 {
				if err := eng.Delete(id); err != nil {
					t.Fatalf("Delete(%d): %v", id, err)
				}
				oracle.Delete(id)
			}
			wantSum := testutil.WorkloadChecksum(oracle.QueryAll(queries))
			if got := checksumEngine(t, eng, queries); got != wantSum {
				t.Fatalf("pre-compaction checksum %s != oracle %s", got, wantSum)
			}

			st, err := eng.Compact(context.Background())
			if err != nil {
				t.Fatalf("Compact: %v", err)
			}
			if st.Tombstones != 0 || st.MemObjects != 0 {
				t.Fatalf("post-compact stats not drained: %+v", st)
			}
			if got := checksumEngine(t, eng, queries); got != wantSum {
				t.Fatalf("post-compaction checksum %s != oracle %s", got, wantSum)
			}
			if eng.Len() != oracle.Len() {
				t.Fatalf("Len after compact = %d, oracle %d", eng.Len(), oracle.Len())
			}

			// Size reclamation: compare against a fresh build over exactly
			// the surviving objects (densely re-id'd).
			live := &temporalir.Collection{DictSize: c.DictSize}
			for i := range c.Objects {
				if i%2 == 0 {
					continue
				}
				o := &c.Objects[i]
				live.AppendObject(o.Interval, o.Elems)
			}
			fresh, err := temporalir.EngineFromCollection(live, m, temporalir.Options{})
			if err != nil {
				t.Fatalf("fresh build: %v", err)
			}
			got, want := eng.SizeBytes(), fresh.SizeBytes()
			if diff := got - want; diff < -want/10 || diff > want/10 {
				t.Fatalf("SizeBytes after compact = %d, fresh build = %d (>10%% apart)", got, want)
			}
		})
	}
}

// checksumEngine folds the engine's batch results into a workload
// checksum comparable with the oracle's.
func checksumEngine(t *testing.T, eng *temporalir.Engine, queries []temporalir.Query) string {
	t.Helper()
	rows := make([][]temporalir.ObjectID, len(queries))
	for i, r := range eng.SearchBatch(queries) {
		if r.Err != nil {
			t.Fatalf("batch row %d: %v", i, r.Err)
		}
		rows[i] = r.IDs
	}
	return testutil.WorkloadChecksum(rows)
}

// TestBuilderBuildDetaches is the regression test for the Builder
// aliasing bug: Build used to hand its internal coll/dict pointers to
// the Engine, so further Add calls silently mutated a live engine.
func TestBuilderBuildDetaches(t *testing.T) {
	b := temporalir.NewBuilder()
	b.Add(1, 5, "alpha")
	b.Add(3, 9, "alpha", "beta")
	eng, err := b.Build(temporalir.IRHintPerf, temporalir.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	before := eng.Search(0, 10, "alpha")

	// Keep using the builder: neither the new object nor the new term may
	// leak into the already-built engine.
	b.Add(2, 8, "alpha", "gamma")
	if got := eng.Len(); got != 2 {
		t.Fatalf("engine Len changed after Builder.Add: %d", got)
	}
	if got := eng.Search(0, 10, "alpha"); !equalIDs(got, before) {
		t.Fatalf("engine results changed after Builder.Add: %v -> %v", before, got)
	}
	if got := eng.Search(0, 10, "gamma"); got != nil {
		t.Fatalf("term added to builder after Build is visible to engine: %v", got)
	}

	// The builder itself keeps working, and a second Build sees all three.
	eng2, err := b.Build(temporalir.TIF, temporalir.Options{})
	if err != nil {
		t.Fatalf("second Build: %v", err)
	}
	if got := eng2.Len(); got != 3 {
		t.Fatalf("second engine Len = %d, want 3", got)
	}
	if got := eng2.Search(0, 10, "gamma"); len(got) != 1 {
		t.Fatalf("second engine misses post-Build object: %v", got)
	}
	// And mutating the first engine leaves the second alone.
	eng.Insert(4, 6, "delta")
	if got := eng2.Search(0, 10, "delta"); got != nil {
		t.Fatalf("engines share state: %v", got)
	}
}

// TestReinsertAfterDelete pins the re-insert-after-delete fix: deleted
// ids are physically reclaimed by compaction (not tombstoned forever),
// later inserts get fresh ids, and Len/SizeBytes agree with a fresh
// build over the same logical content.
func TestReinsertAfterDelete(t *testing.T) {
	b := temporalir.NewBuilder()
	for i := 0; i < 30; i++ {
		b.Add(temporalir.Timestamp(i), temporalir.Timestamp(i+10), fmt.Sprintf("t%d", i%5))
	}
	eng, err := b.Build(temporalir.IRHintPerf, temporalir.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for id := temporalir.ObjectID(0); id < 10; id++ {
		if err := eng.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
	}
	if _, err := eng.Compact(context.Background()); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st := eng.CompactStats(); st.Tombstones != 0 {
		t.Fatalf("tombstones not consumed by compaction: %+v", st)
	}

	// Re-insert: fresh ids, never a reused one.
	seen := map[temporalir.ObjectID]bool{}
	for i := 0; i < 10; i++ {
		id := eng.Insert(temporalir.Timestamp(i), temporalir.Timestamp(i+10), fmt.Sprintf("t%d", i%5))
		if id < 30 {
			t.Fatalf("Insert reused id %d from the compacted range", id)
		}
		if seen[id] {
			t.Fatalf("Insert returned duplicate id %d", id)
		}
		seen[id] = true
	}
	// Old ids remain permanently invalid.
	if _, _, err := eng.Object(3); err == nil {
		t.Fatal("compacted-away id 3 still resolves")
	}
	if err := eng.Delete(3); err == nil {
		t.Fatal("Delete of compacted-away id 3 did not error")
	}

	if _, err := eng.Compact(context.Background()); err != nil {
		t.Fatalf("second Compact: %v", err)
	}

	// After the second compaction the engine must agree with a fresh
	// build over the same logical content on Len and SizeBytes.
	fb := temporalir.NewBuilder()
	for i := 10; i < 30; i++ {
		fb.Add(temporalir.Timestamp(i), temporalir.Timestamp(i+10), fmt.Sprintf("t%d", i%5))
	}
	for i := 0; i < 10; i++ {
		fb.Add(temporalir.Timestamp(i), temporalir.Timestamp(i+10), fmt.Sprintf("t%d", i%5))
	}
	fresh, err := fb.Build(temporalir.IRHintPerf, temporalir.Options{})
	if err != nil {
		t.Fatalf("fresh Build: %v", err)
	}
	if eng.Len() != fresh.Len() {
		t.Fatalf("Len = %d, fresh build = %d", eng.Len(), fresh.Len())
	}
	got, want := eng.SizeBytes(), fresh.SizeBytes()
	if diff := got - want; diff < -want/10 || diff > want/10 {
		t.Fatalf("SizeBytes = %d, fresh build = %d (>10%% apart)", got, want)
	}
}

// TestCompactSingleFlightAndStats covers the engine-level surface:
// ErrCompactionRunning, the epoch counter, and policy installation.
func TestCompactSingleFlightAndStats(t *testing.T) {
	b := temporalir.NewBuilder()
	for i := 0; i < 50; i++ {
		b.Add(temporalir.Timestamp(i), temporalir.Timestamp(i+5), "x")
	}
	eng, err := b.Build(temporalir.TIFSlicing, temporalir.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	st := eng.CompactStats()
	if st.Epoch == 0 || st.Compactions != 0 || st.InProgress {
		t.Fatalf("initial stats: %+v", st)
	}

	eng.SetCompactionPolicy(temporalir.CompactionPolicy{MaxMemObjects: 3})
	for i := 0; i < 3; i++ {
		eng.Insert(temporalir.Timestamp(i), temporalir.Timestamp(i+1), "x")
	}
	waitUntil(t, func() bool {
		st := eng.CompactStats()
		return st.Compactions >= 1 && st.MemObjects == 0 && !st.InProgress
	})
	if got := eng.Len(); got != 53 {
		t.Fatalf("Len after auto-compaction = %d, want 53", got)
	}

	// Canceled context surfaces the context error and changes nothing.
	eng.SetCompactionPolicy(temporalir.CompactionPolicy{})
	if err := eng.Delete(0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Compact(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Compact(canceled) = %v, want context.Canceled", err)
	}
	if st := eng.CompactStats(); st.Tombstones != 1 {
		t.Fatalf("canceled compact consumed tombstones: %+v", st)
	}
}

// waitUntil polls cond for up to five seconds — for observing
// policy-triggered background compactions.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func equalIDs(a, b []temporalir.ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
