package temporalir

import (
	"fmt"
	"sync"

	"repro/internal/aggregate"
	"repro/internal/dict"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/rank"
)

// Builder accumulates objects described by string terms, interning them
// into the global dictionary, and finally constructs an Engine around any
// index method. It is the convenience layer the examples use; performance
// code can work with Collection and ElemIDs directly.
type Builder struct {
	dict *dict.Dictionary
	coll Collection
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{dict: dict.New()}
}

// Add records one object: a lifespan and its descriptive terms. Terms are
// deduplicated; the assigned ObjectID is returned. It panics if
// start > end, matching NewInterval.
func (b *Builder) Add(start, end Timestamp, terms ...string) ObjectID {
	elems := b.dict.AddObject(terms)
	iv := NewInterval(start, end)
	id := ObjectID(len(b.coll.Objects))
	b.coll.Objects = append(b.coll.Objects, Object{ID: id, Interval: iv, Elems: elems})
	if b.dict.Len() > b.coll.DictSize {
		b.coll.DictSize = b.dict.Len()
	}
	return id
}

// Len returns the number of objects added so far.
func (b *Builder) Len() int { return b.coll.Len() }

// Build constructs an Engine over the accumulated objects.
func (b *Builder) Build(m Method, opts Options) (*Engine, error) {
	ix, err := NewIndex(m, &b.coll, opts)
	if err != nil {
		return nil, err
	}
	return &Engine{dict: b.dict, coll: &b.coll, index: ix, method: m, deleted: map[ObjectID]bool{}}, nil
}

// Engine pairs an index with the dictionary and object store, exposing a
// string-term search surface. An Engine is safe for concurrent use: reads
// (Search and friends) run in parallel, mutations (Insert, Delete,
// RefreshScorer) serialize behind a writer lock.
type Engine struct {
	mu sync.RWMutex
	// method is immutable after construction and needs no guard.
	method Method
	// irlint:guarded-by mu
	dict *dict.Dictionary
	// irlint:guarded-by mu
	coll *Collection
	// irlint:guarded-by mu
	index Index
	// irlint:guarded-by mu
	scorer *rank.Scorer
	// irlint:guarded-by mu
	deleted map[ObjectID]bool
	// pool executes batch and intra-query fan-out; nil selects the shared
	// defaultPool. Replaced wholesale by SetParallelism, never mutated.
	// irlint:guarded-by mu
	pool *exec.Pool
}

// liveIndex wraps an index so every query result is filtered against the
// engine's tombstone set. Index implementations differ in how thoroughly
// Delete hides entries (some only mark interval-store copies); routing
// every engine query through this wrapper makes deletion behavior uniform
// across all Method values.
type liveIndex struct {
	inner   Index
	deleted map[ObjectID]bool
}

// Query filters tombstoned ids out of the inner result, in place.
func (li liveIndex) Query(q Query) []ObjectID {
	ids := li.inner.Query(q)
	if len(li.deleted) == 0 {
		return ids
	}
	w := 0
	for _, id := range ids {
		if !li.deleted[id] {
			ids[w] = id
			w++
		}
	}
	return ids[:w]
}

// Insert passes through to the inner index.
func (li liveIndex) Insert(o Object) { li.inner.Insert(o) }

// Delete passes through to the inner index.
func (li liveIndex) Delete(o Object) { li.inner.Delete(o) }

// Len passes through to the inner index.
func (li liveIndex) Len() int { return li.inner.Len() }

// SizeBytes passes through to the inner index.
func (li liveIndex) SizeBytes() int64 { return li.inner.SizeBytes() }

// live returns the tombstone-filtering view of the engine's index.
// Callers must hold e.mu.
//
// irlint:locked mu
func (e *Engine) live() liveIndex {
	assertEngineLocked(&e.mu, "Engine.live")
	return liveIndex{inner: e.index, deleted: e.deleted}
}

// Method returns the index implementation in use.
func (e *Engine) Method() Method { return e.method }

// Index exposes the underlying index for advanced use. The returned
// index is only safe for concurrent reads; coordinate with the engine's
// mutation methods externally.
func (e *Engine) Index() Index {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.index
}

// Len returns the number of live (non-tombstoned) objects.
func (e *Engine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.coll.Objects) - len(e.deleted)
}

// SizeBytes estimates the index's resident size.
func (e *Engine) SizeBytes() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.index.SizeBytes()
}

// Search runs a time-travel IR query: objects overlapping [start, end]
// whose description contains every term. Unknown terms make the result
// empty (the conjunction cannot be satisfied). Results are in ascending
// id order.
func (e *Engine) Search(start, end Timestamp, terms ...string) []ObjectID {
	e.mu.RLock()
	defer e.mu.RUnlock()
	elems := make([]ElemID, 0, len(terms))
	for _, t := range terms {
		id, ok := e.dict.Lookup(t)
		if !ok {
			return nil
		}
		elems = append(elems, id)
	}
	ids := e.live().Query(Query{
		Interval: model.Canon(start, end),
		Elems:    model.NormalizeElems(elems),
	})
	SortIDs(ids)
	return ids
}

// SearchAny runs the disjunctive counterpart of Search: objects alive in
// [start, end] containing at least one of the terms. Unknown terms are
// ignored (they cannot contribute matches).
func (e *Engine) SearchAny(start, end Timestamp, terms ...string) []ObjectID {
	e.mu.RLock()
	defer e.mu.RUnlock()
	elems := make([]ElemID, 0, len(terms))
	for _, t := range terms {
		if id, ok := e.dict.Lookup(t); ok {
			elems = append(elems, id)
		}
	}
	if len(elems) == 0 {
		return nil
	}
	return QueryAny(e.live(), Query{
		Interval: model.Canon(start, end),
		Elems:    model.NormalizeElems(elems),
	})
}

// Object returns the lifespan and terms of an object.
func (e *Engine) Object(id ObjectID) (Interval, []string, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if int(id) >= len(e.coll.Objects) || e.deleted[id] {
		return Interval{}, nil, fmt.Errorf("temporalir: unknown object %d", id)
	}
	o := &e.coll.Objects[id]
	terms := make([]string, len(o.Elems))
	for i, el := range o.Elems {
		terms[i] = e.dict.Term(el)
	}
	return o.Interval, terms, nil
}

// Insert adds a new object to both the store and the index, returning its
// id.
func (e *Engine) Insert(start, end Timestamp, terms ...string) ObjectID {
	e.mu.Lock()
	defer e.mu.Unlock()
	elems := e.dict.AddObject(terms)
	iv := NewInterval(start, end)
	id := ObjectID(len(e.coll.Objects))
	o := Object{ID: id, Interval: iv, Elems: elems}
	e.coll.Objects = append(e.coll.Objects, o)
	if e.dict.Len() > e.coll.DictSize {
		e.coll.DictSize = e.dict.Len()
	}
	e.index.Insert(o)
	return id
}

// ScoredResult is one ranked hit of SearchTopK.
type ScoredResult struct {
	ID    ObjectID
	Score float64
}

// SearchTopK runs a relevance-ranked time-travel query: among the objects
// matching the containment query, return the k most relevant, scored by
// element rarity (IDF) blended with temporal overlap — the ranked-search
// extension the paper leaves as future work. IDF weights snapshot the
// collection at the first ranked search; call RefreshScorer after bulk
// updates to re-weigh.
func (e *Engine) SearchTopK(start, end Timestamp, k int, terms ...string) []ScoredResult {
	e.ensureScorer()
	e.mu.RLock()
	defer e.mu.RUnlock()
	elems := make([]ElemID, 0, len(terms))
	for _, t := range terms {
		id, ok := e.dict.Lookup(t)
		if !ok {
			return nil
		}
		elems = append(elems, id)
	}
	q := Query{Interval: model.Canon(start, end), Elems: model.NormalizeElems(elems)}
	results := rank.TopK(e.live(), e.coll, e.scorer, q, k)
	out := make([]ScoredResult, len(results))
	for i, r := range results {
		out[i] = ScoredResult{ID: r.ID, Score: r.Score}
	}
	return out
}

// ensureScorer lazily initializes the IDF scorer through the writer lock,
// so concurrent ranked searches never race on the shared field.
func (e *Engine) ensureScorer() {
	e.mu.RLock()
	ready := e.scorer != nil
	e.mu.RUnlock()
	if !ready {
		e.RefreshScorer()
	}
}

// RefreshScorer recomputes the IDF weights used by SearchTopK from the
// current collection contents.
func (e *Engine) RefreshScorer() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.scorer = rank.NewScorer(e.coll, rank.ScorerConfig{})
}

// TimelineBucket is one row of Timeline's temporal histogram.
type TimelineBucket struct {
	Start Timestamp
	End   Timestamp
	Count int   // matching objects alive in this bucket
	Mass  int64 // matched lifespan time units falling in this bucket
}

// Timeline aggregates a time-travel IR query over time: the interval
// [start, end] is split into the requested number of buckets and each
// reports how many matching objects were alive in it (and for how long) —
// "how did interest in these terms evolve across the period".
func (e *Engine) Timeline(start, end Timestamp, buckets int, terms ...string) []TimelineBucket {
	e.mu.RLock()
	defer e.mu.RUnlock()
	elems := make([]ElemID, 0, len(terms))
	for _, t := range terms {
		id, ok := e.dict.Lookup(t)
		if !ok {
			return nil
		}
		elems = append(elems, id)
	}
	q := Query{Interval: model.Canon(start, end), Elems: model.NormalizeElems(elems)}
	out := make([]TimelineBucket, 0, buckets)
	for _, b := range aggregate.Histogram(e.live(), e.coll, q, buckets) {
		out = append(out, TimelineBucket{Start: b.Span.Start, End: b.Span.End, Count: b.Count, Mass: b.Mass})
	}
	return out
}

// Delete tombstones an object by id. Deleting an already-deleted object
// is a no-op.
func (e *Engine) Delete(id ObjectID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if int(id) >= len(e.coll.Objects) {
		return fmt.Errorf("temporalir: unknown object %d", id)
	}
	if e.deleted[id] {
		return nil
	}
	e.index.Delete(e.coll.Objects[id])
	if e.deleted == nil {
		e.deleted = map[ObjectID]bool{}
	}
	e.deleted[id] = true
	return nil
}
