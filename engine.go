package temporalir

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/aggregate"
	"repro/internal/dict"
	"repro/internal/maint"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rank"
	"repro/internal/route"
)

// Builder accumulates objects described by string terms, interning them
// into the global dictionary, and finally constructs an Engine around any
// index method. It is the convenience layer the examples use; performance
// code can work with Collection and ElemIDs directly.
type Builder struct {
	dict *dict.Dictionary
	coll Collection
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{dict: dict.New()}
}

// Add records one object: a lifespan and its descriptive terms. Terms are
// deduplicated; the assigned ObjectID is returned. It panics if
// start > end, matching NewInterval.
func (b *Builder) Add(start, end Timestamp, terms ...string) ObjectID {
	elems := b.dict.AddObject(terms)
	iv := NewInterval(start, end)
	id := ObjectID(len(b.coll.Objects))
	b.coll.Objects = append(b.coll.Objects, Object{ID: id, Interval: iv, Elems: elems})
	if b.dict.Len() > b.coll.DictSize {
		b.coll.DictSize = b.dict.Len()
	}
	return id
}

// Len returns the number of objects added so far.
func (b *Builder) Len() int { return b.coll.Len() }

// Build constructs an Engine over the accumulated objects. The engine is
// fully detached from the builder: further Add calls affect neither the
// engine's collection nor its dictionary, so one builder can seed many
// engines (or keep accumulating) safely.
func (b *Builder) Build(m Method, opts Options) (*Engine, error) {
	coll := &Collection{
		Objects:  append([]Object(nil), b.coll.Objects...),
		DictSize: b.coll.DictSize,
	}
	return newEngine(b.dict.Clone(), coll, m, opts)
}

// Engine pairs a generational store with the dictionary, exposing a
// string-term search surface. An Engine is safe for concurrent use, and
// reads never wait on writers: every query runs against an immutable
// generation snapshot (main index + memtable + tombstones) obtained with
// one atomic load; Insert and Delete publish new generations, and
// Compact folds accumulated changes into a freshly built main index off
// the read path (see internal/maint).
type Engine struct {
	// method and opts are immutable after construction and need no guard.
	method Method
	opts   Options

	// router is the adaptive cost model shared by every generation of a
	// Routed engine (nil otherwise). The pointer is immutable after
	// construction; the router's own state is atomic.
	router *route.Router

	// dmu guards only the dictionary: term interning on Insert vs. term
	// resolution on the search surface. Critical sections are tiny (map
	// lookups), never held across index scans.
	dmu sync.RWMutex
	// irlint:guarded-by dmu
	dict *dict.Dictionary

	// store owns the generational object/index state; it has its own
	// internal synchronization.
	store *maint.Store

	// pool executes batch and intra-query fan-out; nil selects the shared
	// defaultPool. Replaced wholesale by SetParallelism.
	pool atomicPool
}

// newEngine wires a dictionary, a detached collection and a generational
// store into an Engine. The collection must use dense position ids
// (Objects[i].ID == i), which Builder, LoadEngine and
// EngineFromCollection all guarantee.
func newEngine(d *dict.Dictionary, coll *Collection, m Method, opts Options) (*Engine, error) {
	return newEngineWithIdentity(d, coll, m, opts, nil, 0)
}

// newEngineWithIdentity is newEngine with an explicit external-id table
// and next-id counter (nil ext selects the dense identity mapping) —
// the construction path LoadEngine uses to restore object identity from
// a version-2 snapshot.
func newEngineWithIdentity(d *dict.Dictionary, coll *Collection, m Method, opts Options, ext []ObjectID, next ObjectID) (*Engine, error) {
	ix, err := NewIndex(m, coll, opts)
	if err != nil {
		return nil, err
	}
	var router *route.Router
	if ri, ok := ix.(*route.Index); ok {
		router = ri.Router()
	}
	build := func(ctx context.Context, c *model.Collection) (maint.Index, error) {
		// Index construction itself is not interruptible, so honor a
		// cancellation that arrived before the rebuild started.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		nix, err := NewIndex(m, c, opts)
		if err != nil {
			return nil, err
		}
		if ri, ok := nix.(*route.Index); ok {
			// Carry the learned cost model across the compaction
			// rebuild. The new index has not been published yet — the
			// store swaps it in only after this hook returns — so the
			// mutation happens strictly before any reader can see it.
			ri.AdoptRouter(router)
		}
		return nix, nil
	}
	var store *maint.Store
	if ext != nil {
		store = maint.NewStoreWithIdentity(coll, ix, build, ext, next)
	} else {
		store = maint.NewStore(coll, ix, build)
	}
	return &Engine{
		method: m,
		opts:   opts,
		router: router,
		dict:   d,
		store:  store,
	}, nil
}

// snapshot returns the current immutable read generation. All query
// paths go through it; none of them touch engine fields afterwards
// except the dictionary (under dmu).
func (e *Engine) snapshot() *maint.Generation { return e.store.Snapshot() }

// lookupLocked resolves one term. Callers must hold e.dmu (read or
// write).
//
// irlint:locked dmu
func (e *Engine) lookupLocked(term string) (ElemID, bool) {
	assertEngineLocked(&e.dmu, "Engine.lookupLocked")
	return e.dict.Lookup(term)
}

// resolveTerms maps terms to element ids under the dictionary lock,
// reporting ok=false if any term is unknown (the conjunction cannot be
// satisfied then).
func (e *Engine) resolveTerms(terms []string) ([]ElemID, bool) {
	e.dmu.RLock()
	defer e.dmu.RUnlock()
	elems := make([]ElemID, 0, len(terms))
	for _, t := range terms {
		id, ok := e.lookupLocked(t)
		if !ok {
			return nil, false
		}
		elems = append(elems, id)
	}
	return elems, true
}

// resolveTermsTraced is resolveTerms under a plan span: term resolution
// is the planning step of the string search surface.
func (e *Engine) resolveTermsTraced(tr *obs.Trace, terms []string) ([]ElemID, bool) {
	defer tr.StartStage(obs.StagePlan).End()
	return e.resolveTerms(terms)
}

// Method returns the index implementation in use.
func (e *Engine) Method() Method { return e.method }

// IndexOptions returns the construction options the engine was built
// with — what a factory needs to spawn sibling engines of the same
// configuration (the multi-tenant registry's create-on-first-use path).
func (e *Engine) IndexOptions() Options { return e.opts }

// Epoch returns the current generation's epoch. It advances on every
// published mutation (insert, delete, scorer refresh, compaction), so
// owners managing many engines — the tenant registry's evict-to-disk
// path — can cheaply detect whether an engine changed since a snapshot
// was last saved.
func (e *Engine) Epoch() uint64 { return e.snapshot().Epoch() }

// Index exposes the current generation's main index for advanced use.
// It covers the compacted prefix only — objects inserted since the last
// compaction (memtable) and pending deletions (tombstones) are not
// reflected; the engine's own search methods always see both. The
// returned index is immutable and safe for concurrent reads.
func (e *Engine) Index() Index { return e.snapshot().Base() }

// Len returns the number of live (non-tombstoned) objects.
func (e *Engine) Len() int { return e.snapshot().Len() }

// SizeBytes estimates the engine's resident size: main index, memtable,
// tombstones and the id-translation table.
func (e *Engine) SizeBytes() int64 { return e.snapshot().SizeBytes() }

// Compact merges the memtable into the object store, physically drops
// tombstoned objects, rebuilds the index off the read path and
// atomically swaps in the new generation; see maint.Store.Compact.
// Queries keep running against the old generation throughout. It returns
// ErrCompactionRunning if a compaction is already in flight.
func (e *Engine) Compact(ctx context.Context) (CompactionStats, error) {
	return e.store.Compact(ctx)
}

// CompactStats reports the engine's generational state and compaction
// history.
func (e *Engine) CompactStats() CompactionStats { return e.store.Stats() }

// SetCompactionPolicy installs (or, with the zero value, disables)
// automatic background compaction, triggered after Insert/Delete when
// the memtable or tombstone thresholds are crossed.
func (e *Engine) SetCompactionPolicy(p CompactionPolicy) { e.store.SetPolicy(p) }

// Search runs a time-travel IR query: objects overlapping [start, end]
// whose description contains every term. Unknown terms make the result
// empty (the conjunction cannot be satisfied). Results are in ascending
// id order.
func (e *Engine) Search(start, end Timestamp, terms ...string) []ObjectID {
	return e.searchTraced(nil, start, end, terms)
}

// searchTraced is the Search body with an optional trace recorder
// threaded through every stage (nil = disabled).
func (e *Engine) searchTraced(tr *obs.Trace, start, end Timestamp, terms []string) []ObjectID {
	elems, ok := e.resolveTermsTraced(tr, terms)
	if !ok {
		return nil
	}
	g := e.snapshot()
	ids := g.Query(Query{
		Interval: model.Canon(start, end),
		Elems:    model.NormalizeElems(elems),
		Trace:    tr,
	})
	out := finishIDs(g, ids, tr)
	tr.AddResults(len(out))
	return out
}

// finishIDs orders the internal result ids and translates them to
// external ids, under one sort span.
func finishIDs(g *maint.Generation, ids []model.ObjectID, tr *obs.Trace) []ObjectID {
	defer tr.StartStage(obs.StageSort).End()
	SortIDs(ids)
	return g.External(ids)
}

// SearchAny runs the disjunctive counterpart of Search: objects alive in
// [start, end] containing at least one of the terms. Unknown terms are
// ignored (they cannot contribute matches).
func (e *Engine) SearchAny(start, end Timestamp, terms ...string) []ObjectID {
	e.dmu.RLock()
	elems := make([]ElemID, 0, len(terms))
	for _, t := range terms {
		if id, ok := e.lookupLocked(t); ok {
			elems = append(elems, id)
		}
	}
	e.dmu.RUnlock()
	if len(elems) == 0 {
		return nil
	}
	g := e.snapshot()
	iv := model.Canon(start, end)
	var out []ObjectID
	for _, el := range model.NormalizeElems(elems) {
		out = append(out, g.Query(Query{Interval: iv, Elems: []ElemID{el}})...)
	}
	SortIDs(out)
	return g.External(model.DedupIDs(out))
}

// Object returns the lifespan and terms of an object.
func (e *Engine) Object(id ObjectID) (Interval, []string, error) {
	g := e.snapshot()
	o, ok := g.Lookup(id)
	if !ok {
		return Interval{}, nil, fmt.Errorf("temporalir: unknown object %d", id)
	}
	e.dmu.RLock()
	defer e.dmu.RUnlock()
	terms := make([]string, len(o.Elems))
	for i, el := range o.Elems {
		terms[i] = e.dict.Term(el)
	}
	return o.Interval, terms, nil
}

// Insert adds a new object to the store's memtable, returning its id.
// The id is stable: it survives compaction even though the underlying
// index is rebuilt with dense internal ids.
func (e *Engine) Insert(start, end Timestamp, terms ...string) ObjectID {
	iv := NewInterval(start, end) // validate before interning any terms
	e.dmu.Lock()
	elems := e.dict.AddObject(terms)
	ds := e.dict.Len()
	e.dmu.Unlock()
	return e.store.Append(iv, elems, ds)
}

// Delete tombstones an object by id; the next compaction physically
// removes it. Deleting an unknown (or already compacted-away) id is an
// error; deleting an already-tombstoned id is a no-op.
func (e *Engine) Delete(id ObjectID) error {
	g := e.snapshot()
	if _, ok := g.Internal(id); !ok {
		return fmt.Errorf("temporalir: unknown object %d", id)
	}
	e.store.Delete(id)
	return nil
}

// ScoredResult is one ranked hit of SearchTopK.
type ScoredResult struct {
	ID    ObjectID
	Score float64
}

// SearchTopK runs a relevance-ranked time-travel query: among the objects
// matching the containment query, return the k most relevant, scored by
// element rarity (IDF) blended with temporal overlap — the ranked-search
// extension the paper leaves as future work. IDF weights snapshot the
// collection at the first ranked search; call RefreshScorer after bulk
// updates to re-weigh.
func (e *Engine) SearchTopK(start, end Timestamp, k int, terms ...string) []ScoredResult {
	return e.searchTopKTraced(nil, start, end, k, terms)
}

// searchTopKTraced is the SearchTopK body with an optional trace
// recorder (nil = disabled).
func (e *Engine) searchTopKTraced(tr *obs.Trace, start, end Timestamp, k int, terms []string) []ScoredResult {
	g := e.ensureScorer()
	elems, ok := e.resolveTermsTraced(tr, terms)
	if !ok {
		return nil
	}
	q := Query{Interval: model.Canon(start, end), Elems: model.NormalizeElems(elems), Trace: tr}
	results := rankTopK(g, q, k, tr)
	out := make([]ScoredResult, len(results))
	for i, r := range results {
		out[i] = ScoredResult{ID: g.ExternalID(r.ID), Score: r.Score}
	}
	tr.AddResults(len(out))
	return out
}

// rankTopK scores and selects under a rank span. The span envelopes the
// ranked path's inner containment query, so it overlaps the
// postings/intersect/filter spans that query records.
func rankTopK(g *maint.Generation, q Query, k int, tr *obs.Trace) []rank.Result {
	defer tr.StartStage(obs.StageRank).End()
	return rank.TopK(g, g.Coll(), g.Scorer(), q, k)
}

// ensureScorer returns a generation that carries an IDF scorer, lazily
// computing one on first use. Concurrent first calls may both compute;
// publication is serialized inside the store, so the race is benign.
func (e *Engine) ensureScorer() *maint.Generation {
	if g := e.snapshot(); g.Scorer() != nil {
		return g
	}
	e.RefreshScorer()
	return e.snapshot()
}

// RefreshScorer recomputes the IDF weights used by SearchTopK from the
// current collection contents.
func (e *Engine) RefreshScorer() {
	g := e.snapshot()
	e.store.SetScorer(rank.NewScorer(g.Coll(), rank.ScorerConfig{}))
}

// TimelineBucket is one row of Timeline's temporal histogram.
type TimelineBucket struct {
	Start Timestamp
	End   Timestamp
	Count int   // matching objects alive in this bucket
	Mass  int64 // matched lifespan time units falling in this bucket
}

// Timeline aggregates a time-travel IR query over time: the interval
// [start, end] is split into the requested number of buckets and each
// reports how many matching objects were alive in it (and for how long) —
// "how did interest in these terms evolve across the period".
func (e *Engine) Timeline(start, end Timestamp, buckets int, terms ...string) []TimelineBucket {
	return e.timelineTraced(nil, start, end, buckets, terms)
}

// timelineTraced is the Timeline body with an optional trace recorder
// (nil = disabled).
func (e *Engine) timelineTraced(tr *obs.Trace, start, end Timestamp, buckets int, terms []string) []TimelineBucket {
	elems, ok := e.resolveTermsTraced(tr, terms)
	if !ok {
		return nil
	}
	g := e.snapshot()
	q := Query{Interval: model.Canon(start, end), Elems: model.NormalizeElems(elems), Trace: tr}
	out := aggregateTimeline(g, q, buckets, tr)
	tr.AddResults(len(out))
	return out
}

// aggregateTimeline runs the histogram aggregation under an agg span.
// Like the rank span, it envelopes the aggregation's inner index work.
func aggregateTimeline(g *maint.Generation, q Query, buckets int, tr *obs.Trace) []TimelineBucket {
	defer tr.StartStage(obs.StageAgg).End()
	out := make([]TimelineBucket, 0, buckets)
	for _, b := range aggregate.Histogram(g, g.Coll(), q, buckets) {
		out = append(out, TimelineBucket{Start: b.Span.Start, End: b.Span.End, Count: b.Count, Mass: b.Mass})
	}
	return out
}
