package temporalir

import (
	"sync"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/gen"
	"repro/internal/testutil"
)

func exampleCollection() *Collection {
	var c Collection
	c.AppendObject(Interval{Start: 10, End: 15}, []ElemID{0, 1, 2}) // o1
	c.AppendObject(Interval{Start: 2, End: 5}, []ElemID{0, 2})      // o2
	c.AppendObject(Interval{Start: 0, End: 2}, []ElemID{1})         // o3
	c.AppendObject(Interval{Start: 0, End: 15}, []ElemID{0, 1, 2})  // o4
	c.AppendObject(Interval{Start: 3, End: 7}, []ElemID{1, 2})      // o5
	c.AppendObject(Interval{Start: 2, End: 11}, []ElemID{2})        // o6
	c.AppendObject(Interval{Start: 4, End: 14}, []ElemID{0, 2})     // o7
	c.AppendObject(Interval{Start: 2, End: 3}, []ElemID{2})         // o8
	return &c
}

func TestAllMethodsAgreeOnRunningExample(t *testing.T) {
	q := Query{Interval: Interval{Start: 4, End: 6}, Elems: []ElemID{0, 2}}
	want := []ObjectID{1, 3, 6}
	methods := append(Methods(), TIF)
	for _, m := range methods {
		ix, err := NewIndex(m, exampleCollection(), Options{})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		got := testutil.Canonical(ix.Query(q))
		if len(got) != len(want) {
			t.Fatalf("%s: got %v, want %v", m, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: got %v, want %v", m, got, want)
			}
		}
	}
}

func TestAllMethodsAgreeOnSynthetic(t *testing.T) {
	c := gen.Synthetic(gen.SyntheticConfig{Seed: 31}.Defaults(0.0005))
	queries := gen.Workload(c, gen.DefaultQueryConfig(), 100, 5)
	// Pairwise agreement against the first method, query by query.
	first, _ := NewIndex(Methods()[0], c, Options{})
	for _, m := range append(Methods()[1:], TIF) {
		ix, _ := NewIndex(m, c, Options{})
		for k, q := range queries {
			a := testutil.Canonical(first.Query(q))
			b := testutil.Canonical(ix.Query(q))
			if len(a) != len(b) {
				t.Fatalf("%s disagrees with %s on query %d: %d vs %d results", m, Methods()[0], k, len(b), len(a))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s disagrees with %s on query %d", m, Methods()[0], k)
				}
			}
		}
	}
}

func TestUnknownMethod(t *testing.T) {
	if _, err := NewIndex("nope", exampleCollection(), Options{}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestTypedConstructors(t *testing.T) {
	c := exampleCollection()
	for name, ix := range map[string]Index{
		"tif":     NewTIF(c),
		"slicing": NewTIFSlicing(c, 4),
		"shard":   NewTIFSharding(c, 0),
		"binary":  NewTIFHintBinary(c, 3),
		"merge":   NewTIFHintMerge(c, 3),
		"hybrid":  NewTIFHintSlicing(c, 3, 4),
		"perf":    NewIRHintPerf(c, 3),
		"size":    NewIRHintSize(c, 3),
	} {
		if ix == nil {
			t.Fatalf("%s: nil index", name)
		}
		if ix.Len() != 8 {
			t.Errorf("%s: Len = %d", name, ix.Len())
		}
		if ix.SizeBytes() <= 0 {
			t.Errorf("%s: SizeBytes = %d", name, ix.SizeBytes())
		}
	}
}

func TestEngineSearch(t *testing.T) {
	b := NewBuilder()
	// The running example with real words: a=alpha, b=beta, c=gamma.
	b.Add(10, 15, "alpha", "beta", "gamma")
	b.Add(2, 5, "alpha", "gamma")
	b.Add(0, 2, "beta")
	b.Add(0, 15, "alpha", "beta", "gamma")
	b.Add(3, 7, "beta", "gamma")
	b.Add(2, 11, "gamma")
	b.Add(4, 14, "alpha", "gamma")
	b.Add(2, 3, "gamma")
	if b.Len() != 8 {
		t.Fatalf("builder Len = %d", b.Len())
	}
	e, err := b.Build(IRHintPerf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Search(4, 6, "alpha", "gamma")
	want := []ObjectID{1, 3, 6}
	if len(got) != len(want) {
		t.Fatalf("Search = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Search = %v, want %v", got, want)
		}
	}
	// Unknown term kills the conjunction.
	if res := e.Search(0, 15, "alpha", "unseen"); len(res) != 0 {
		t.Errorf("unknown term returned %v", res)
	}
	// Swapped endpoints are canonicalized.
	if a, b2 := e.Search(6, 4, "alpha", "gamma"), got; len(a) != len(b2) {
		t.Error("Search(6,4) should equal Search(4,6)")
	}
	iv, terms, err := e.Object(3)
	if err != nil || iv != (Interval{Start: 0, End: 15}) || len(terms) != 3 {
		t.Errorf("Object(3) = %v %v %v", iv, terms, err)
	}
	if _, _, err := e.Object(99); err == nil {
		t.Error("Object(99) should fail")
	}
	if e.Method() != IRHintPerf || e.Index() == nil || e.SizeBytes() <= 0 {
		t.Error("Engine accessors misbehaved")
	}
}

func TestEngineInsertDelete(t *testing.T) {
	b := NewBuilder()
	b.Add(0, 10, "x", "y")
	e, err := b.Build(TIFSlicing, Options{Slices: 4})
	if err != nil {
		t.Fatal(err)
	}
	id := e.Insert(5, 15, "x", "z")
	if got := e.Search(12, 14, "x"); len(got) != 1 || got[0] != id {
		t.Errorf("Search after insert = %v", got)
	}
	if err := e.Delete(id); err != nil {
		t.Fatal(err)
	}
	if got := e.Search(12, 14, "x"); len(got) != 0 {
		t.Errorf("Search after delete = %v", got)
	}
	if err := e.Delete(42); err == nil {
		t.Error("Delete(42) should fail")
	}
	if e.Len() != 1 {
		t.Errorf("Len = %d, want 1", e.Len())
	}
}

func TestQueryAnyAndSearchAny(t *testing.T) {
	c := gen.Synthetic(gen.SyntheticConfig{Seed: 95}.Defaults(0.0004))
	queries := gen.Workload(c, gen.QueryConfig{ExtentFrac: 0.01, NumElems: 3}, 60, 96)
	oracle := bruteforce.New(c)
	for _, m := range Methods() {
		ix, err := NewIndex(m, c, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range queries {
			got := QueryAny(ix, q)
			// Oracle: any-of semantics via per-element union.
			var want []ObjectID
			for _, e := range q.Elems {
				want = append(want, oracle.Query(Query{Interval: q.Interval, Elems: []ElemID{e}})...)
			}
			SortIDs(want)
			want = testutil.Canonical(want)
			if !equalIDSlices(got, want) {
				t.Fatalf("%s query %d: got %d ids, want %d", m, i, len(got), len(want))
			}
		}
	}
	// Engine layer: unknown terms are ignored, not fatal.
	b := NewBuilder()
	b.Add(0, 10, "x")
	b.Add(5, 20, "y")
	e, _ := b.Build(IRHintPerf, Options{})
	if got := e.SearchAny(0, 30, "x", "unknown", "y"); len(got) != 2 {
		t.Errorf("SearchAny = %v", got)
	}
	if got := e.SearchAny(0, 30, "unknown"); got != nil {
		t.Errorf("all-unknown SearchAny = %v", got)
	}
}

func equalIDSlices(a, b []ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTimeline(t *testing.T) {
	b := NewBuilder()
	b.Add(0, 49, "x")  // first half only
	b.Add(0, 99, "x")  // whole period
	b.Add(60, 99, "x") // second half only
	b.Add(0, 99, "y")  // different term
	e, err := b.Build(IRHintPerf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tl := e.Timeline(0, 99, 2, "x")
	if len(tl) != 2 {
		t.Fatalf("timeline = %+v", tl)
	}
	if tl[0].Count != 2 || tl[1].Count != 2 {
		t.Errorf("counts = %d, %d", tl[0].Count, tl[1].Count)
	}
	if tl[0].Start != 0 || tl[1].End != 99 {
		t.Errorf("spans = %+v", tl)
	}
	// Mass reflects lifespan coverage: bucket 0 holds all 50 units of
	// object 0 and 50 of object 1.
	if tl[0].Mass != 100 {
		t.Errorf("bucket 0 mass = %d, want 100", tl[0].Mass)
	}
	if got := e.Timeline(0, 99, 4, "unseen"); got != nil {
		t.Errorf("unknown term gave %v", got)
	}
}

func TestJoinPublicAPI(t *testing.T) {
	var left, right Collection
	left.AppendObject(Interval{Start: 0, End: 10}, []ElemID{1, 2})
	left.AppendObject(Interval{Start: 20, End: 30}, []ElemID{1})
	right.AppendObject(Interval{Start: 5, End: 25}, []ElemID{2, 3})
	right.AppendObject(Interval{Start: 40, End: 50}, []ElemID{1, 2})

	// Pure temporal join: (L0,R0) and (L1,R0).
	pairs := Join(&left, &right, 0)
	if len(pairs) != 2 {
		t.Fatalf("temporal join = %v", pairs)
	}
	// Requiring one shared element keeps only (L0,R0) via element 2.
	pairs = Join(&left, &right, 1)
	if len(pairs) != 1 || pairs[0] != (JoinPair{Left: 0, Right: 0}) {
		t.Fatalf("k=1 join = %v", pairs)
	}
	if got := Join(&left, &right, 3); len(got) != 0 {
		t.Errorf("k=3 join = %v", got)
	}

	var c Collection
	c.AppendObject(Interval{Start: 0, End: 10}, []ElemID{1})
	c.AppendObject(Interval{Start: 5, End: 15}, []ElemID{1})
	c.AppendObject(Interval{Start: 50, End: 60}, []ElemID{1})
	self := SelfJoin(&c, 1)
	if len(self) != 1 || self[0] != (JoinPair{Left: 0, Right: 1}) {
		t.Fatalf("self join = %v", self)
	}
}

func TestQueryBatch(t *testing.T) {
	c := gen.Synthetic(gen.SyntheticConfig{Seed: 91}.Defaults(0.0005))
	queries := gen.Workload(c, gen.DefaultQueryConfig(), 120, 92)
	ix, err := NewIndex(IRHintPerf, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	serial := QueryBatch(ix, queries, 1)
	for _, p := range []int{0, 2, 8, 1000} {
		parallel := QueryBatch(ix, queries, p)
		if len(parallel) != len(serial) {
			t.Fatalf("parallelism %d: %d results", p, len(parallel))
		}
		for i := range serial {
			a := testutil.Canonical(serial[i])
			b := testutil.Canonical(parallel[i])
			if len(a) != len(b) {
				t.Fatalf("parallelism %d query %d: %d vs %d results", p, i, len(b), len(a))
			}
		}
	}
	if got := QueryBatch(ix, nil, 4); len(got) != 0 {
		t.Errorf("empty batch gave %v", got)
	}
}

func TestConcurrentReaders(t *testing.T) {
	// Indices promise safety for concurrent readers after construction;
	// run with -race to verify.
	c := gen.Synthetic(gen.SyntheticConfig{Seed: 77}.Defaults(0.0005))
	queries := gen.Workload(c, gen.DefaultQueryConfig(), 50, 78)
	for _, m := range Methods() {
		ix, err := NewIndex(m, c, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := make([][]ObjectID, len(queries))
		for i, q := range queries {
			want[i] = testutil.Canonical(ix.Query(q))
		}
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i, q := range queries {
					got := testutil.Canonical(ix.Query(q))
					if len(got) != len(want[i]) {
						errs <- string(m)
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Errorf("%s: concurrent readers diverged", e)
		}
	}
}

func TestSearchTopK(t *testing.T) {
	b := NewBuilder()
	b.Add(0, 100, "common", "rare")  // full overlap of the query below
	b.Add(90, 200, "common", "rare") // tail overlap only
	b.Add(0, 100, "common")          // missing "rare"
	for i := 0; i < 20; i++ {
		b.Add(0, 100, "common") // make "common" frequent
	}
	e, err := b.Build(IRHintPerf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := e.SearchTopK(0, 99, 5, "common", "rare")
	if len(got) != 2 {
		t.Fatalf("got %d results, want 2", len(got))
	}
	// The fully overlapping object must rank above the tail overlap.
	if got[0].ID != 0 || got[1].ID != 1 {
		t.Errorf("ranking = %v", got)
	}
	if got[0].Score < got[1].Score {
		t.Error("scores not descending")
	}
	// k truncates.
	if got := e.SearchTopK(0, 99, 1, "common", "rare"); len(got) != 1 || got[0].ID != 0 {
		t.Errorf("k=1 gave %v", got)
	}
	// Unknown term yields nothing.
	if got := e.SearchTopK(0, 99, 3, "unseen"); got != nil {
		t.Errorf("unknown term gave %v", got)
	}
	// RefreshScorer after updates keeps working.
	e.Insert(0, 100, "common", "rare", "fresh")
	e.RefreshScorer()
	if got := e.SearchTopK(0, 99, 10, "rare"); len(got) != 3 {
		t.Errorf("after insert: %v", got)
	}
}

func TestOptionsPlumbing(t *testing.T) {
	c := exampleCollection()
	ix, err := NewIndex(TIFSharding, c, Options{MaxShards: -1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 8 {
		t.Error("unlimited-shards index broken")
	}
	ix2, err := NewIndex(TIFHintMerge, c, Options{CostModelM: true})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Interval: Interval{Start: 4, End: 6}, Elems: []ElemID{0, 2}}
	if got := testutil.Canonical(ix2.Query(q)); len(got) != 3 {
		t.Errorf("cost-model merge variant returned %v", got)
	}
}
