package temporalir_test

import (
	"math/rand"
	"testing"

	temporalir "repro"
	"repro/internal/bruteforce"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/testutil"
)

// allMethods includes the plain tIF alongside the benchmarked family.
func allMethods() []temporalir.Method {
	return append(temporalir.Methods(), temporalir.TIF)
}

func checkAll(t *testing.T, c *temporalir.Collection, queries []temporalir.Query) {
	t.Helper()
	oracle := bruteforce.New(c)
	for _, m := range allMethods() {
		ix, err := temporalir.NewIndex(m, c, temporalir.Options{})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		for i, q := range queries {
			got := testutil.Canonical(ix.Query(q))
			want := testutil.Canonical(oracle.Query(q))
			if !model.EqualIDs(got, want) {
				t.Fatalf("%s query %d (%v, %v): got %v, want %v",
					m, i, q.Interval, q.Elems, got, want)
			}
		}
	}
}

func TestNegativeTimestamps(t *testing.T) {
	var c temporalir.Collection
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		s := temporalir.Timestamp(rng.Int63n(20000)) - 10000
		e := s + temporalir.Timestamp(rng.Int63n(3000))
		c.AppendObject(temporalir.Interval{Start: s, End: e},
			[]temporalir.ElemID{temporalir.ElemID(rng.Intn(8)), temporalir.ElemID(rng.Intn(8))})
	}
	var queries []temporalir.Query
	for i := 0; i < 120; i++ {
		s := temporalir.Timestamp(rng.Int63n(24000)) - 12000
		e := s + temporalir.Timestamp(rng.Int63n(6000))
		queries = append(queries, temporalir.Query{
			Interval: temporalir.Interval{Start: s, End: e},
			Elems:    []temporalir.ElemID{temporalir.ElemID(rng.Intn(8))},
		})
	}
	checkAll(t, &c, queries)
}

func TestIdenticalIntervals(t *testing.T) {
	// Every object shares one lifespan: partition routing degenerates to
	// a single chain; only the element predicate differentiates.
	var c temporalir.Collection
	for i := 0; i < 60; i++ {
		c.AppendObject(temporalir.Interval{Start: 100, End: 200},
			[]temporalir.ElemID{temporalir.ElemID(i % 5), temporalir.ElemID(i % 3)})
	}
	queries := []temporalir.Query{
		{Interval: temporalir.Interval{Start: 150, End: 160}, Elems: []temporalir.ElemID{0}},
		{Interval: temporalir.Interval{Start: 0, End: 99}, Elems: []temporalir.ElemID{0}},
		{Interval: temporalir.Interval{Start: 200, End: 300}, Elems: []temporalir.ElemID{1, 2}},
		{Interval: temporalir.Interval{Start: 100, End: 100}, Elems: []temporalir.ElemID{0, 1, 2}},
	}
	checkAll(t, &c, queries)
}

func TestSingleObjectCollection(t *testing.T) {
	var c temporalir.Collection
	c.AppendObject(temporalir.Interval{Start: 5, End: 5}, []temporalir.ElemID{0})
	queries := []temporalir.Query{
		{Interval: temporalir.Interval{Start: 5, End: 5}, Elems: []temporalir.ElemID{0}},
		{Interval: temporalir.Interval{Start: 4, End: 4}, Elems: []temporalir.ElemID{0}},
		{Interval: temporalir.Interval{Start: 6, End: 6}, Elems: []temporalir.ElemID{0}},
		{Interval: temporalir.Interval{Start: 0, End: 10}, Elems: []temporalir.ElemID{1}},
	}
	checkAll(t, &c, queries)
}

func TestPointDomain(t *testing.T) {
	// Every object is the same time point: the domain has a single cell.
	var c temporalir.Collection
	for i := 0; i < 20; i++ {
		c.AppendObject(temporalir.Interval{Start: 42, End: 42},
			[]temporalir.ElemID{temporalir.ElemID(i % 4)})
	}
	queries := []temporalir.Query{
		{Interval: temporalir.Interval{Start: 42, End: 42}, Elems: []temporalir.ElemID{0}},
		{Interval: temporalir.Interval{Start: 41, End: 43}, Elems: []temporalir.ElemID{1}},
		{Interval: temporalir.Interval{Start: 0, End: 41}, Elems: []temporalir.ElemID{2}},
	}
	checkAll(t, &c, queries)
}

func TestHugeTimestamps(t *testing.T) {
	// Nanosecond-epoch-sized values exercise the discretization's 64-bit
	// arithmetic.
	base := temporalir.Timestamp(1_700_000_000_000_000_000)
	var c temporalir.Collection
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 150; i++ {
		s := base + temporalir.Timestamp(rng.Int63n(1_000_000_000_000))
		e := s + temporalir.Timestamp(rng.Int63n(10_000_000_000))
		c.AppendObject(temporalir.Interval{Start: s, End: e},
			[]temporalir.ElemID{temporalir.ElemID(rng.Intn(6))})
	}
	var queries []temporalir.Query
	for i := 0; i < 80; i++ {
		s := base + temporalir.Timestamp(rng.Int63n(1_000_000_000_000))
		e := s + temporalir.Timestamp(rng.Int63n(50_000_000_000))
		queries = append(queries, temporalir.Query{
			Interval: temporalir.Interval{Start: s, End: e},
			Elems:    []temporalir.ElemID{temporalir.ElemID(rng.Intn(6))},
		})
	}
	checkAll(t, &c, queries)
}

func TestRealStandInEquivalence(t *testing.T) {
	// The ECLOG-like shape (long durations, zipf elements, big sparse
	// dictionary) against the oracle for every method.
	c := gen.ECLOGLike(gen.RealConfig{Scale: 0.001, Seed: 7})
	queries := gen.Workload(c, gen.DefaultQueryConfig(), 60, 8)
	queries = append(queries, gen.MixedPool(c, 60, 9)...)
	checkAll(t, c, queries)
}

func TestDuplicateElementsInQuery(t *testing.T) {
	var c temporalir.Collection
	c.AppendObject(temporalir.Interval{Start: 0, End: 10}, []temporalir.ElemID{0, 1})
	q := temporalir.Query{
		Interval: temporalir.Interval{Start: 5, End: 6},
		// Deliberately unnormalized: duplicate elements.
		Elems: []temporalir.ElemID{0, 0, 1, 1},
	}
	for _, m := range allMethods() {
		ix, _ := temporalir.NewIndex(m, &c, temporalir.Options{})
		got := ix.Query(q)
		if len(testutil.Canonical(got)) != 1 {
			t.Errorf("%s: duplicate query elements broke the plan: %v", m, got)
		}
	}
}
