// Command irbench reproduces the paper's experiments. Each table and
// figure of the evaluation section has a named driver:
//
//	irbench -list
//	irbench -exp table5 -scale 0.01
//	irbench -exp all -scale 0.05 -queries 2000
//
// Scale 1.0 reproduces the paper's dataset sizes (hours of runtime);
// the default keeps the full suite laptop-sized while preserving the
// result shapes EXPERIMENTS.md documents.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		scale   = flag.Float64("scale", 0.01, "dataset scale in (0, 1]")
		queries = flag.Int("queries", 1000, "queries per measurement point")
		seed    = flag.Int64("seed", 42, "generator seed")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonOut = flag.String("json", "", "write the experiment's JSON artifact to this path (perfjson, obsjson)")
		stages  = flag.Bool("stages", false, "trace measured queries and emit the per-stage breakdown into the JSON artifact")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-8s %s\n", e.Name, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := bench.Config{Scale: *scale, NumQueries: *queries, Seed: *seed, Out: os.Stdout, JSONPath: *jsonOut, Stages: *stages}

	run := func(e bench.Experiment) {
		fmt.Printf("== %s: %s (scale=%g, queries=%d) ==\n", e.Name, e.Title, *scale, *queries)
		start := time.Now()
		e.Run(cfg)
		fmt.Printf("-- %s done in %.1fs --\n\n", e.Name, time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, e := range bench.Experiments() {
			run(e)
		}
		return
	}
	e, ok := bench.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "irbench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}
