// Command irlint runs the repository's static-analysis suite — the
// repo-specific invariants described in LINTING.md — over the module's
// packages and reports violations with file:line:col positions.
//
// Usage:
//
//	irlint [-only analyzer[,analyzer...]] [-list] [pattern ...]
//
// Patterns follow the go tool's form: "./..." (default) for every
// package, "./internal/..." for a subtree, "./internal/model" for one
// package. The exit status is 0 when clean, 1 when findings were
// reported, and 2 when loading failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/tools/irlint"
	"repro/internal/tools/irlint/perf"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	noEscapes := flag.Bool("no-escape-facts", false, "skip go build -m=2 escape-fact collection (alloc-hot runs syntactic checks only)")
	flag.Parse()

	analyzers := irlint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var sel []*irlint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for n := range keep {
			fmt.Fprintf(os.Stderr, "irlint: unknown analyzer %q\n", n)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	pkgs, err := irlint.Load(".", patterns)
	if err != nil {
		// Load problems make the typed analyzers unsound, so they gate
		// just like findings do; partial results are still printed.
		fmt.Fprintln(os.Stderr, err)
		if pkgs == nil {
			os.Exit(2)
		}
		defer os.Exit(2)
	}

	pr := irlint.NewProgram(pkgs)
	if !*noEscapes {
		// Lazy: collection runs only if an irlint:hot root exists in the
		// loaded set, and the compile output replays from the build cache.
		pr.EscapeSource = func() (*perf.Table, error) { return perf.Collect(".") }
	}
	diags := irlint.RunOn(pr, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "irlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
