// Command irquery loads a dataset (a .tirc file produced by irgen),
// builds the selected index and evaluates time-travel IR queries.
// Queries come from the command line or, with -i, one per stdin line, in
// the form:
//
//	<start> <end> <elem>[,<elem>...]
//
// e.g. `irquery -data syn.tirc -index irhint/perf -i` then
// `1000 5000 17,42`. The output lists matching object ids.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	temporalir "repro"
	"repro/internal/encoding"
	"repro/internal/model"
)

func main() {
	var (
		data    = flag.String("data", "", "dataset file written by irgen (required)")
		index   = flag.String("index", string(temporalir.IRHintPerf), "index method")
		m       = flag.Int("m", 0, "HINT bits (0 = tuned default / cost model)")
		slices  = flag.Int("slices", 0, "slice count for the sliced methods (0 = default)")
		interq  = flag.Bool("i", false, "read queries from stdin")
		explain = flag.Bool("v", false, "print per-query timing")
	)
	flag.Parse()

	if *data == "" {
		fmt.Fprintln(os.Stderr, "irquery: -data is required")
		os.Exit(2)
	}
	f, err := os.Open(*data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "irquery: %v\n", err)
		os.Exit(1)
	}
	coll, err := encoding.Read(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "irquery: reading %s: %v\n", *data, err)
		os.Exit(1)
	}

	start := time.Now()
	ix, err := temporalir.NewIndex(temporalir.Method(*index), coll,
		temporalir.Options{M: *m, Slices: *slices})
	if err != nil {
		fmt.Fprintf(os.Stderr, "irquery: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("loaded %d objects, built %s in %.2fs (%.1f MB)\n",
		coll.Len(), *index, time.Since(start).Seconds(), float64(ix.SizeBytes())/(1<<20))

	runOne := func(line string) {
		q, err := parseQuery(line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irquery: %v\n", err)
			return
		}
		t0 := time.Now()
		ids := ix.Query(q)
		elapsed := time.Since(t0)
		temporalir.SortIDs(ids)
		fmt.Printf("%d results: %v\n", len(ids), preview(ids, 20))
		if *explain {
			fmt.Printf("  in %v\n", elapsed)
		}
	}

	for _, arg := range flag.Args() {
		runOne(arg)
	}
	if *interq {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			runOne(line)
		}
	}
}

// parseQuery parses "<start> <end> <elem>[,<elem>...]".
func parseQuery(line string) (model.Query, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields) > 3 {
		return model.Query{}, fmt.Errorf("want '<start> <end> [elems]', got %q", line)
	}
	start, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return model.Query{}, fmt.Errorf("bad start %q", fields[0])
	}
	end, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return model.Query{}, fmt.Errorf("bad end %q", fields[1])
	}
	var elems []model.ElemID
	if len(fields) == 3 {
		for _, tok := range strings.Split(fields[2], ",") {
			e, err := strconv.ParseUint(tok, 10, 32)
			if err != nil {
				return model.Query{}, fmt.Errorf("bad element %q", tok)
			}
			elems = append(elems, model.ElemID(e))
		}
	}
	return model.Query{
		Interval: model.Canon(start, end),
		Elems:    model.NormalizeElems(elems),
	}, nil
}

func preview(ids []model.ObjectID, n int) []model.ObjectID {
	if len(ids) <= n {
		return ids
	}
	return ids[:n]
}
