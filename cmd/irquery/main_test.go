package main

import (
	"testing"

	"repro/internal/model"
)

func TestParseQuery(t *testing.T) {
	tests := []struct {
		in      string
		want    model.Query
		wantErr bool
	}{
		{
			in:   "10 20 1,2,3",
			want: model.Query{Interval: model.Interval{Start: 10, End: 20}, Elems: []model.ElemID{1, 2, 3}},
		},
		{
			in:   "10 20",
			want: model.Query{Interval: model.Interval{Start: 10, End: 20}},
		},
		{
			// Swapped endpoints are canonicalized.
			in:   "20 10 5",
			want: model.Query{Interval: model.Interval{Start: 10, End: 20}, Elems: []model.ElemID{5}},
		},
		{
			// Duplicate elements are normalized.
			in:   "0 1 7,7,2",
			want: model.Query{Interval: model.Interval{Start: 0, End: 1}, Elems: []model.ElemID{2, 7}},
		},
		{
			// Negative timestamps parse.
			in:   "-100 -50 0",
			want: model.Query{Interval: model.Interval{Start: -100, End: -50}, Elems: []model.ElemID{0}},
		},
		{in: "", wantErr: true},
		{in: "10", wantErr: true},
		{in: "10 20 1 extra", wantErr: true},
		{in: "abc 20 1", wantErr: true},
		{in: "10 def 1", wantErr: true},
		{in: "10 20 x", wantErr: true},
		{in: "10 20 1,-2", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseQuery(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parseQuery(%q) succeeded, want error", tt.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseQuery(%q): %v", tt.in, err)
			continue
		}
		if got.Interval != tt.want.Interval || len(got.Elems) != len(tt.want.Elems) {
			t.Errorf("parseQuery(%q) = %+v, want %+v", tt.in, got, tt.want)
			continue
		}
		for i := range got.Elems {
			if got.Elems[i] != tt.want.Elems[i] {
				t.Errorf("parseQuery(%q) elems = %v, want %v", tt.in, got.Elems, tt.want.Elems)
			}
		}
	}
}

func TestPreview(t *testing.T) {
	ids := []model.ObjectID{1, 2, 3, 4, 5}
	if got := preview(ids, 3); len(got) != 3 {
		t.Errorf("preview = %v", got)
	}
	if got := preview(ids, 10); len(got) != 5 {
		t.Errorf("preview = %v", got)
	}
}
