package main

import "testing"

func snap(pairs ...any) *snapshot {
	s := &snapshot{}
	for i := 0; i < len(pairs); i += 2 {
		s.Methods = append(s.Methods, method{
			Method:      pairs[i].(string),
			UntracedQPS: pairs[i+1].(float64),
		})
	}
	return s
}

func TestCompare(t *testing.T) {
	oldSnap := snap("tif", 1000.0, "hint", 2000.0, "merge", 500.0)

	t.Run("within tolerance passes", func(t *testing.T) {
		newSnap := snap("tif", 900.0, "hint", 2100.0, "merge", 400.0)
		for _, d := range compare(oldSnap, newSnap, 0.35) {
			if d.Regressr {
				t.Errorf("%s flagged as regression: %+v", d.Method, d)
			}
		}
	})

	t.Run("past tolerance fails", func(t *testing.T) {
		newSnap := snap("tif", 600.0, "hint", 2000.0, "merge", 500.0)
		deltas := compare(oldSnap, newSnap, 0.35)
		var flagged []string
		for _, d := range deltas {
			if d.Regressr {
				flagged = append(flagged, d.Method)
			}
		}
		if len(flagged) != 1 || flagged[0] != "tif" {
			t.Errorf("want exactly [tif] flagged, got %v", flagged)
		}
	})

	t.Run("missing method fails", func(t *testing.T) {
		newSnap := snap("tif", 1000.0, "hint", 2000.0)
		deltas := compare(oldSnap, newSnap, 0.35)
		found := false
		for _, d := range deltas {
			if d.Method == "merge" {
				found = true
				if !d.Missing || !d.Regressr {
					t.Errorf("merge should be flagged missing: %+v", d)
				}
			}
		}
		if !found {
			t.Error("merge row absent from deltas")
		}
	})

	t.Run("new methods are ignored", func(t *testing.T) {
		newSnap := snap("tif", 1000.0, "hint", 2000.0, "merge", 500.0, "extra", 1.0)
		if n := len(compare(oldSnap, newSnap, 0.35)); n != 3 {
			t.Errorf("want 3 deltas (old snapshot drives the pairing), got %d", n)
		}
	})

	t.Run("zero old qps never divides by zero", func(t *testing.T) {
		deltas := compare(snap("dead", 0.0), snap("dead", 100.0), 0.35)
		if deltas[0].Regressr || deltas[0].Ratio != 0 {
			t.Errorf("zero-old row mishandled: %+v", deltas[0])
		}
	})
}
