// Command benchdiff compares two obsjson benchmark snapshots
// (BENCH_prN.json) and fails when any method's untraced throughput
// regressed past the tolerance, or a method disappeared. It is the
// cross-PR half of the perf gate: the allocation budgets pin per-kernel
// allocs, benchdiff pins end-to-end queries per second.
//
// Usage:
//
//	benchdiff -old BENCH_pr6.json -new BENCH_pr7.json [-tol 0.35]
//
// The default tolerance is deliberately loose — CI machines are noisy
// and the snapshots are single runs — so only structural regressions
// (a lost fast path, an accidental O(n^2)) trip it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type method struct {
	Method      string  `json:"method"`
	UntracedQPS float64 `json:"untraced_queries_per_sec"`
}

type snapshot struct {
	Methods []method `json:"methods"`
}

// delta is one method's comparison row.
type delta struct {
	Method   string
	OldQPS   float64
	NewQPS   float64
	Ratio    float64 // new/old; 0 when old is 0
	Missing  bool
	Regressr bool
}

// compare pairs old methods with new ones and flags regressions: a
// method missing from the new snapshot, or new < old*(1-tol).
func compare(oldSnap, newSnap *snapshot, tol float64) []delta {
	byName := make(map[string]method, len(newSnap.Methods))
	for _, m := range newSnap.Methods {
		byName[m.Method] = m
	}
	out := make([]delta, 0, len(oldSnap.Methods))
	for _, om := range oldSnap.Methods {
		nm, ok := byName[om.Method]
		if !ok {
			out = append(out, delta{Method: om.Method, OldQPS: om.UntracedQPS, Missing: true, Regressr: true})
			continue
		}
		d := delta{Method: om.Method, OldQPS: om.UntracedQPS, NewQPS: nm.UntracedQPS}
		if om.UntracedQPS > 0 {
			d.Ratio = nm.UntracedQPS / om.UntracedQPS
			d.Regressr = nm.UntracedQPS < om.UntracedQPS*(1-tol)
		}
		out = append(out, d)
	}
	return out
}

func load(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(s.Methods) == 0 {
		return nil, fmt.Errorf("%s has no methods[] — not an obsjson snapshot?", path)
	}
	return &s, nil
}

func main() {
	oldPath := flag.String("old", "", "previous obsjson snapshot")
	newPath := flag.String("new", "", "current obsjson snapshot")
	tol := flag.Float64("tol", 0.35, "allowed fractional qps drop per method before failing")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	oldSnap, err := load(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newSnap, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	deltas := compare(oldSnap, newSnap, *tol)
	failed := false
	for _, d := range deltas {
		switch {
		case d.Missing:
			failed = true
			fmt.Printf("FAIL %-24s %12.0f qps -> (missing)\n", d.Method, d.OldQPS)
		case d.Regressr:
			failed = true
			fmt.Printf("FAIL %-24s %12.0f qps -> %12.0f qps (%.2fx, tolerance %.2f)\n",
				d.Method, d.OldQPS, d.NewQPS, d.Ratio, *tol)
		default:
			fmt.Printf("ok   %-24s %12.0f qps -> %12.0f qps (%.2fx)\n",
				d.Method, d.OldQPS, d.NewQPS, d.Ratio)
		}
	}
	if failed {
		fmt.Printf("benchdiff: throughput regression past tolerance %.2f\n", *tol)
		os.Exit(1)
	}
}
