// Command irgen materializes datasets in the repository's compact binary
// format, so benchmarks and the query CLI can reload them without
// regenerating:
//
//	irgen -kind eclog -scale 0.05 -out eclog.tirc
//	irgen -kind synthetic -cardinality 200000 -alpha 1.4 -out syn.tirc
//	irgen -kind wikipedia -scale 0.01 -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/encoding"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/stats"
)

func main() {
	var (
		kind  = flag.String("kind", "synthetic", "eclog | wikipedia | synthetic")
		scale = flag.Float64("scale", 0.01, "scale for the real-data stand-ins and synthetic defaults")
		seed  = flag.Int64("seed", 42, "generator seed")
		out   = flag.String("out", "", "output file (empty: skip writing)")
		show  = flag.Bool("stats", false, "print Table 3-style statistics")

		cardinality = flag.Int("cardinality", 0, "synthetic: number of objects (0 = scaled default 1M)")
		domainSize  = flag.Int64("domain", 0, "synthetic: time domain units (0 = scaled default 128M)")
		alpha       = flag.Float64("alpha", 0, "synthetic: interval duration skew (0 = default 1.2)")
		sigma       = flag.Float64("sigma", 0, "synthetic: interval position stddev (0 = domain/128)")
		dictSize    = flag.Int("dict", 0, "synthetic: dictionary size (0 = scaled default 100K)")
		descSize    = flag.Int("desc", 0, "synthetic: description size |d| (0 = default 10)")
		zeta        = flag.Float64("zeta", 0, "synthetic: element frequency skew (0 = default 1.25)")
	)
	flag.Parse()

	var c *model.Collection
	switch *kind {
	case "eclog":
		c = gen.ECLOGLike(gen.RealConfig{Scale: *scale, Seed: *seed})
	case "wikipedia":
		c = gen.WikipediaLike(gen.RealConfig{Scale: *scale, Seed: *seed})
	case "synthetic":
		cfg := gen.SyntheticConfig{
			Cardinality: *cardinality, DomainSize: *domainSize, Alpha: *alpha,
			Sigma: *sigma, DictSize: *dictSize, DescSize: *descSize, Zeta: *zeta,
			Seed: *seed,
		}.Defaults(*scale)
		c = gen.Synthetic(cfg)
	default:
		fmt.Fprintf(os.Stderr, "irgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	fmt.Printf("generated %d objects (%s)\n", c.Len(), *kind)
	if *show {
		fmt.Print(stats.Compute(c).Table(*kind))
	}
	if *out == "" {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "irgen: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := encoding.Write(f, c); err != nil {
		fmt.Fprintf(os.Stderr, "irgen: writing %s: %v\n", *out, err)
		os.Exit(1)
	}
	info, _ := f.Stat()
	fmt.Printf("wrote %s (%d bytes)\n", *out, info.Size())
}
