// Command irserve runs the HTTP search service over a dataset: load a
// .tirc file (or start empty), build the chosen index and serve the JSON
// API of internal/server:
//
//	irserve -data archive.tirc -index irhint/perf -addr :8080
//
//	GET    /search?start=S&end=E&q=free+text[&k=K]
//	POST   /objects            {"start":S,"end":E,"terms":["..."]}
//	GET    /objects/{id}
//	DELETE /objects/{id}
//	GET    /stats
//	GET    /metrics            Prometheus text exposition
//	GET    /debug/slow         slow-query log (JSON)
//
// -pprof additionally mounts net/http/pprof under /debug/pprof/;
// -slow-threshold tunes the slow-query log and -no-trace disables
// per-query span recording (metrics stay on).
//
// Datasets loaded from .tirc files carry element ids, not strings; their
// terms surface as "e<ID>" placeholders. For a string-term corpus, start
// empty and POST documents.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	temporalir "repro"
	"repro/internal/encoding"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		data      = flag.String("data", "", "optional .tirc dataset to preload")
		index     = flag.String("index", string(temporalir.IRHintPerf), "index method")
		addr      = flag.String("addr", ":8080", "listen address")
		slowThr   = flag.Duration("slow-threshold", obs.DefaultSlowThreshold, "slow-query log threshold (negative captures every query)")
		slowCap   = flag.Int("slow-capacity", obs.DefaultSlowCapacity, "slow-query log ring size")
		noTrace   = flag.Bool("no-trace", false, "disable per-query trace spans (metrics stay enabled)")
		withPprof = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	b := temporalir.NewBuilder()
	if *data != "" {
		f, err := os.Open(*data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irserve: %v\n", err)
			os.Exit(1)
		}
		coll, err := encoding.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "irserve: reading %s: %v\n", *data, err)
			os.Exit(1)
		}
		for i := range coll.Objects {
			o := &coll.Objects[i]
			terms := make([]string, len(o.Elems))
			for k, e := range o.Elems {
				terms[k] = fmt.Sprintf("e%d", e)
			}
			b.Add(o.Interval.Start, o.Interval.End, terms...)
		}
	}

	start := time.Now()
	engine, err := b.Build(temporalir.Method(*index), temporalir.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "irserve: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("irserve: %d objects, %s built in %.2fs, listening on %s\n",
		engine.Len(), *index, time.Since(start).Seconds(), *addr)

	observer := obs.NewObserver(obs.Config{
		SlowThreshold:  *slowThr,
		SlowCapacity:   *slowCap,
		DisableTracing: *noTrace,
	})
	handler := http.Handler(server.NewWithOptions(engine, server.Options{Obs: observer}))
	if *withPprof {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "irserve: %v\n", err)
		os.Exit(1)
	}
}
