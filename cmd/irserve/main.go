// Command irserve runs the HTTP search service over a dataset: load a
// .tirc file (or start empty), build the chosen index and serve the JSON
// API of internal/server:
//
//	irserve -data archive.tirc -index irhint/perf -addr :8080
//
//	GET    /search?start=S&end=E&q=free+text[&k=K]
//	POST   /objects            {"start":S,"end":E,"terms":["..."]}
//	GET    /objects/{id}
//	DELETE /objects/{id}
//	GET    /stats
//	GET    /metrics            Prometheus text exposition
//	GET    /debug/slow         slow-query log (JSON)
//	GET    /admin/tenants      resident tenants and lifecycle counters
//
// The service is multi-tenant: requests carrying an X-Scope-OrgID
// header are routed to that tenant's own engine (created lazily, built
// with the same -index method); requests without the header hit the
// -default-tenant, which serves the preloaded dataset. -max-tenants
// bounds resident tenants, with cold ones spilled to -tenant-spill and
// reloaded transparently; -tenant-limits points at a JSON file of
// per-tenant quotas, rates and fair-share weights:
//
//	{
//	  "*":      {"queries_per_sec": 100, "weight": 1},
//	  "gold":   {"queries_per_sec": 1000, "weight": 4},
//	  "trial":  {"queries_per_sec": 5, "max_mem_objects": 10000}
//	}
//
// where "*" is the default envelope for tenants not listed. On SIGINT/
// SIGTERM the server drains: it stops accepting connections, waits for
// in-flight requests, and saves every dirty tenant to the spill
// directory before exiting.
//
// -shards N splits every engine (the preloaded default tenant and each
// lazily created one) across N stores behind a scatter-gather
// coordinator: inserts route by time-range partition, queries fan out
// and merge, and compaction runs per shard in parallel. -shard-timeout
// adds a per-shard query deadline; responses that lost shards to it say
// so explicitly ("partial": true plus the cut shard indices — never a
// silently truncated 200), /stats grows per-shard rows, and /metrics
// gains the tir_shard_* family.
//
// -pprof additionally mounts net/http/pprof under /debug/pprof/;
// -slow-threshold tunes the slow-query log and -no-trace disables
// per-query span recording (metrics stay on).
//
// Datasets loaded from .tirc files carry element ids, not strings; their
// terms surface as "e<ID>" placeholders. For a string-term corpus, start
// empty and POST documents.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	temporalir "repro"
	"repro/internal/encoding"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/tenant"
)

// drainTimeout bounds the graceful-shutdown wait for in-flight
// requests; dirty tenants are saved after it either way.
const drainTimeout = 30 * time.Second

// loadTenantLimits parses the -tenant-limits JSON file: a map of tenant
// id to limits, with "*" as the envelope for unlisted tenants.
func loadTenantLimits(path string) (func(id string) tenant.Limits, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	table := make(map[string]tenant.Limits)
	if err := json.Unmarshal(raw, &table); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	fallback := table["*"]
	return func(id string) tenant.Limits {
		if lim, ok := table[id]; ok {
			return lim
		}
		return fallback
	}, nil
}

func main() {
	var (
		data      = flag.String("data", "", "optional .tirc dataset to preload")
		index     = flag.String("index", string(temporalir.IRHintPerf), "index method")
		addr      = flag.String("addr", ":8080", "listen address")
		slowThr   = flag.Duration("slow-threshold", obs.DefaultSlowThreshold, "slow-query log threshold (negative captures every query)")
		slowCap   = flag.Int("slow-capacity", obs.DefaultSlowCapacity, "slow-query log ring size")
		noTrace   = flag.Bool("no-trace", false, "disable per-query trace spans (metrics stay enabled)")
		withPprof = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")

		shards       = flag.Int("shards", 0, "shard the corpus across N stores with a scatter-gather coordinator; 0 serves a single store")
		shardTimeout = flag.Duration("shard-timeout", 0, "per-shard query deadline (requires -shards); cut shards are reported, never silently dropped")

		defTenant  = flag.String("default-tenant", tenant.DefaultID, "tenant served to requests without an "+tenant.Header+" header")
		reqTenant  = flag.Bool("require-tenant", false, "refuse requests without an "+tenant.Header+" header (401)")
		maxTenants = flag.Int("max-tenants", 0, "max resident tenants; 0 is unlimited (cold tenants evict to -tenant-spill)")
		spillDir   = flag.String("tenant-spill", "", "directory for evicted-tenant snapshots (empty disables eviction)")
		limitsFile = flag.String("tenant-limits", "", "JSON file of per-tenant limits (\"*\" entry is the default)")
	)
	flag.Parse()

	if err := tenant.ValidateID(*defTenant); err != nil {
		fmt.Fprintf(os.Stderr, "irserve: -default-tenant: %v\n", err)
		os.Exit(1)
	}
	var limitsFn func(id string) tenant.Limits
	if *limitsFile != "" {
		var err error
		limitsFn, err = loadTenantLimits(*limitsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irserve: -tenant-limits: %v\n", err)
			os.Exit(1)
		}
	}
	if *spillDir != "" {
		if err := os.MkdirAll(*spillDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "irserve: -tenant-spill: %v\n", err)
			os.Exit(1)
		}
	}

	b := temporalir.NewBuilder()
	if *data != "" {
		f, err := os.Open(*data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irserve: %v\n", err)
			os.Exit(1)
		}
		coll, err := encoding.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "irserve: reading %s: %v\n", *data, err)
			os.Exit(1)
		}
		for i := range coll.Objects {
			o := &coll.Objects[i]
			terms := make([]string, len(o.Elems))
			for k, e := range o.Elems {
				terms[k] = fmt.Sprintf("e%d", e)
			}
			b.Add(o.Interval.Start, o.Interval.End, terms...)
		}
	}

	if *shardTimeout != 0 && *shards <= 0 {
		fmt.Fprintln(os.Stderr, "irserve: -shard-timeout requires -shards > 0")
		os.Exit(1)
	}
	start := time.Now()
	var engine server.Engine
	var err error
	layout := "single store"
	if *shards > 0 {
		// Time-range partitioning over the preloaded corpus's domain;
		// with no data it falls back to hash. Every lazily created
		// tenant gets a sibling with the same shard options.
		engine, err = b.BuildSharded(temporalir.Method(*index), temporalir.Options{}, temporalir.ShardedOptions{
			Shards:       *shards,
			ShardTimeout: *shardTimeout,
		})
		layout = fmt.Sprintf("%d shards", *shards)
	} else {
		engine, err = b.Build(temporalir.Method(*index), temporalir.Options{})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "irserve: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("irserve: %d objects, %s (%s) built in %.2fs, listening on %s (default tenant %q)\n",
		engine.Len(), *index, layout, time.Since(start).Seconds(), *addr, *defTenant)

	observer := obs.NewObserver(obs.Config{
		SlowThreshold:  *slowThr,
		SlowCapacity:   *slowCap,
		DisableTracing: *noTrace,
	})
	app := server.NewWithOptions(engine, server.Options{
		Obs:           observer,
		DefaultTenant: *defTenant,
		RequireTenant: *reqTenant,
		MaxTenants:    *maxTenants,
		SpillDir:      *spillDir,
		TenantLimits:  limitsFn,
	})
	handler := http.Handler(app)
	if *withPprof {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Graceful drain: stop accepting, let in-flight requests finish (up
	// to drainTimeout), then save every dirty tenant so their data
	// survives the restart.
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		fmt.Printf("irserve: %v: draining...\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "irserve: shutdown: %v\n", err)
		}
		if *spillDir != "" {
			if err := app.Registry().SaveDirty(); err != nil {
				fmt.Fprintf(os.Stderr, "irserve: saving tenants: %v\n", err)
			} else {
				fmt.Printf("irserve: saved dirty tenants to %s\n", *spillDir)
			}
		}
	}()

	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "irserve: %v\n", err)
		os.Exit(1)
	}
	<-done
}
