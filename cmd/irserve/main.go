// Command irserve runs the HTTP search service over a dataset: load a
// .tirc file (or start empty), build the chosen index and serve the JSON
// API of internal/server:
//
//	irserve -data archive.tirc -index irhint/perf -addr :8080
//
//	GET    /search?start=S&end=E&q=free+text[&k=K]
//	POST   /objects            {"start":S,"end":E,"terms":["..."]}
//	GET    /objects/{id}
//	DELETE /objects/{id}
//	GET    /stats
//
// Datasets loaded from .tirc files carry element ids, not strings; their
// terms surface as "e<ID>" placeholders. For a string-term corpus, start
// empty and POST documents.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	temporalir "repro"
	"repro/internal/encoding"
	"repro/internal/server"
)

func main() {
	var (
		data  = flag.String("data", "", "optional .tirc dataset to preload")
		index = flag.String("index", string(temporalir.IRHintPerf), "index method")
		addr  = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()

	b := temporalir.NewBuilder()
	if *data != "" {
		f, err := os.Open(*data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "irserve: %v\n", err)
			os.Exit(1)
		}
		coll, err := encoding.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "irserve: reading %s: %v\n", *data, err)
			os.Exit(1)
		}
		for i := range coll.Objects {
			o := &coll.Objects[i]
			terms := make([]string, len(o.Elems))
			for k, e := range o.Elems {
				terms[k] = fmt.Sprintf("e%d", e)
			}
			b.Add(o.Interval.Start, o.Interval.End, terms...)
		}
	}

	start := time.Now()
	engine, err := b.Build(temporalir.Method(*index), temporalir.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "irserve: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("irserve: %d objects, %s built in %.2fs, listening on %s\n",
		engine.Len(), *index, time.Since(start).Seconds(), *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(engine),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "irserve: %v\n", err)
		os.Exit(1)
	}
}
