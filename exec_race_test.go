package temporalir_test

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	temporalir "repro"
	"repro/internal/testutil"
)

// Concurrency tests for the batch executor: SearchBatch, SearchBatchCtx
// and SearchCtx racing against Insert, Delete and Save. Run under -race
// in CI; a torn read of a shared postings list, or a batch observing a
// half-applied mutation, shows up as a race report or as a result
// containing an id the snapshot semantics forbid.

func raceEngine(t *testing.T, m temporalir.Method) *temporalir.Engine {
	t.Helper()
	b := temporalir.NewBuilder()
	for i := 0; i < 200; i++ {
		s := temporalir.Timestamp(i * 7 % 1000)
		b.Add(s, s+temporalir.Timestamp(i%50), "common", fmt.Sprintf("t%02d", i%20))
	}
	eng, err := b.Build(m, temporalir.Options{})
	if err != nil {
		t.Fatalf("building %s: %v", m, err)
	}
	return eng
}

// TestSearchBatchUnderMutation hammers SearchBatch while writers insert,
// delete and snapshot. Batches hold the read lock for their whole
// lifetime, so each batch must see a consistent snapshot: sorted,
// duplicate-free rows with no tombstoned ids.
func TestSearchBatchUnderMutation(t *testing.T) {
	for _, m := range []temporalir.Method{temporalir.IRHintPerf, temporalir.TIFHintMerge, temporalir.TIFSlicing} {
		m := m
		t.Run(string(m), func(t *testing.T) {
			eng := raceEngine(t, m)
			eng.SetParallelism(4)
			queries := make([]temporalir.Query, 40)
			for i := range queries {
				s := temporalir.Timestamp(i * 13 % 900)
				queries[i] = temporalir.Query{Interval: temporalir.NewInterval(s, s+60)}
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(3)
			go func() { // inserter
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					s := temporalir.Timestamp(i % 1000)
					eng.Insert(s, s+10, "common", "fresh")
				}
			}()
			go func() { // deleter
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					_ = eng.Delete(temporalir.ObjectID(i % 200))
				}
			}()
			go func() { // snapshotter
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := eng.Save(io.Discard); err != nil {
						t.Errorf("Save: %v", err)
						return
					}
				}
			}()
			deadline := time.Now().Add(300 * time.Millisecond)
			for time.Now().Before(deadline) {
				for _, r := range eng.SearchBatch(queries) {
					if r.Err != nil {
						t.Fatalf("batch row error: %v", r.Err)
					}
					for k := 1; k < len(r.IDs); k++ {
						if r.IDs[k] <= r.IDs[k-1] {
							t.Fatalf("row not strictly ascending: %v", r.IDs)
						}
					}
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}

// TestSearchCtxUnderMutation interleaves context-aware single searches —
// some timing out, some completing — with writers, and checks that
// completed results stay canonical and cancelled calls report ctx errors.
func TestSearchCtxUnderMutation(t *testing.T) {
	eng := raceEngine(t, temporalir.IRHintPerf)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s := temporalir.Timestamp(i % 1000)
			eng.Insert(s, s+5, "common")
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = eng.Delete(temporalir.ObjectID(i % 100))
		}
	}()
	deadline := time.Now().Add(300 * time.Millisecond)
	for i := 0; time.Now().Before(deadline); i++ {
		if i%5 == 4 {
			// A context that fires immediately: must report its error.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := eng.SearchCtx(ctx, 0, 900, "common"); err == nil {
				t.Fatal("cancelled SearchCtx returned nil error")
			}
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		ids, err := eng.SearchCtx(ctx, 0, 900, "common")
		cancel()
		if err != nil {
			continue // a slow box may time out; that is a valid outcome
		}
		got := testutil.Canonical(ids)
		if len(got) != len(ids) {
			t.Fatalf("SearchCtx result not canonical: %d ids, %d canonical", len(ids), len(got))
		}
	}
	close(stop)
	wg.Wait()
}

// TestSearchBatchCtxCancellation cancels a batch mid-flight and checks
// the row invariant: every row either carries the ctx error with nil
// IDs, or a clean result — never a mixed or torn state.
func TestSearchBatchCtxCancellation(t *testing.T) {
	eng := raceEngine(t, temporalir.TIFHintMerge)
	eng.SetParallelism(2)
	queries := make([]temporalir.Query, 500)
	for i := range queries {
		s := temporalir.Timestamp(i % 900)
		queries[i] = temporalir.Query{Interval: temporalir.NewInterval(s, s+80)}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Microsecond)
		cancel()
	}()
	results := eng.SearchBatchCtx(ctx, queries)
	var done, cut int
	for i, r := range results {
		switch {
		case r.Err != nil && r.IDs == nil:
			cut++
		case r.Err == nil:
			done++
		default:
			t.Fatalf("row %d in mixed state: %+v", i, r)
		}
	}
	if done+cut != len(queries) {
		t.Fatalf("done=%d cut=%d of %d", done, cut, len(queries))
	}
	// Pre-cancelled: every row must carry the error.
	preCtx, preCancel := context.WithCancel(context.Background())
	preCancel()
	results = eng.SearchBatchCtx(preCtx, queries[:10])
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("pre-cancelled batch row %d has nil error", i)
		}
	}
}
