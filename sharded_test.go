package temporalir_test

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	temporalir "repro"
	"repro/internal/model"
	"repro/internal/testutil"
)

// all9Methods is the full family the shard differential must cover: the
// seven paper-table methods, the base tIF, and the Routed meta-method.
func all9Methods() []temporalir.Method {
	ms := append([]temporalir.Method{temporalir.TIF}, temporalir.Methods()...)
	return append(ms, temporalir.Routed)
}

// termsFor maps workload element ids onto the "t%03d" vocabulary
// engineOver interns, so id-level differential queries run through the
// string search surface.
func termsFor(elems []model.ElemID) []string {
	terms := make([]string, len(elems))
	for i, e := range elems {
		terms[i] = fmt.Sprintf("t%03d", e)
	}
	return terms
}

// shardedOver builds a 4-shard engine over a collection by replaying
// its objects through the Builder — the same replay engineOver uses, so
// the two assign identical ids and intern identical term ids.
func shardedOver(t *testing.T, c *temporalir.Collection, m temporalir.Method, shards int) *temporalir.Sharded {
	t.Helper()
	b := temporalir.NewBuilder()
	for i := range c.Objects {
		o := &c.Objects[i]
		b.Add(o.Interval.Start, o.Interval.End, termsFor(o.Elems)...)
	}
	sh, err := b.BuildSharded(m, temporalir.Options{}, temporalir.ShardedOptions{Shards: shards})
	if err != nil {
		t.Fatalf("building sharded %s: %v", m, err)
	}
	return sh
}

// shardDiffConfig is the corpus of the shard differential: wide enough
// in time for the 4-way range partition to matter, dictionary small
// enough for dense conjunctions.
var shardDiffConfig = testutil.CollectionConfig{
	N: 400, DomainLo: 0, DomainHi: 8000, Dict: 30, MaxDesc: 6, Seed: 4242,
}

func shardDiffQueries() []model.Query {
	w := testutil.DifferentialWorkload{Config: shardDiffConfig, Queries: 80, QSeed: 4243}
	return w.WorkloadQueries()
}

// assertShardParity checks that the sharded engine answers every query
// — conjunctive search, ranked top-k and timeline — byte-identically to
// the single-engine oracle, via SHA-256 workload digests for the id
// results and exact comparison for scored/bucketed results.
func assertShardParity(t *testing.T, label string, oracle *temporalir.Engine, sh *temporalir.Sharded, queries []model.Query) {
	t.Helper()
	wantRows := make([][]temporalir.ObjectID, len(queries))
	gotRows := make([][]temporalir.ObjectID, len(queries))
	for i, q := range queries {
		terms := termsFor(q.Elems)
		wantRows[i] = oracle.Search(q.Interval.Start, q.Interval.End, terms...)
		gotRows[i] = sh.Search(q.Interval.Start, q.Interval.End, terms...)
	}
	want := testutil.WorkloadChecksum(wantRows)
	got := testutil.WorkloadChecksum(gotRows)
	if got != want {
		for i := range queries {
			if !model.EqualIDs(gotRows[i], wantRows[i]) {
				t.Fatalf("%s: query %d (%v elems=%v): sharded %v, oracle %v",
					label, i, queries[i].Interval, queries[i].Elems, gotRows[i], wantRows[i])
			}
		}
		t.Fatalf("%s: workload digest %s != oracle %s", label, got, want)
	}
	// Ranked and timeline surfaces on a subset (they are heavier).
	oracle.RefreshScorer()
	sh.RefreshScorer()
	for i := 0; i < len(queries); i += 7 {
		q := queries[i]
		terms := termsFor(q.Elems)
		wantK := oracle.SearchTopK(q.Interval.Start, q.Interval.End, 10, terms...)
		gotK := sh.SearchTopK(q.Interval.Start, q.Interval.End, 10, terms...)
		if !reflect.DeepEqual(gotK, wantK) {
			t.Fatalf("%s: top-k query %d: sharded %v, oracle %v", label, i, gotK, wantK)
		}
		wantT := oracle.Timeline(q.Interval.Start, q.Interval.End, 7, terms...)
		gotT := sh.Timeline(q.Interval.Start, q.Interval.End, 7, terms...)
		if !reflect.DeepEqual(gotT, wantT) {
			t.Fatalf("%s: timeline query %d: sharded %v, oracle %v", label, i, gotT, wantT)
		}
	}
}

// TestDifferentialSharded is the tentpole acceptance gate: a 4-shard
// engine must match the single-engine oracle's SHA-256 result digests
// across all 9 methods, at 0/25/50% deleted, before and after parallel
// compaction.
func TestDifferentialSharded(t *testing.T) {
	c := testutil.RandomCollection(shardDiffConfig)
	queries := shardDiffQueries()
	fractions := []struct {
		name string
		mod  int // delete ids where id % mod == 1 (0 = none)
	}{
		{"del0", 0},
		{"del25", 4},
		{"del50", 2},
	}
	for _, m := range all9Methods() {
		m := m
		t.Run(string(m), func(t *testing.T) {
			for _, frac := range fractions {
				frac := frac
				t.Run(frac.name, func(t *testing.T) {
					oracle := engineOver(t, c, m)
					sh := shardedOver(t, c, m, 4)
					sh.SetParallelism(4)
					if ns := sh.NumShards(); ns != 4 {
						t.Fatalf("NumShards = %d, want 4", ns)
					}
					if frac.mod > 0 {
						for id := 0; id < len(c.Objects); id++ {
							if id%frac.mod != 1 {
								continue
							}
							if err := oracle.Delete(temporalir.ObjectID(id)); err != nil {
								t.Fatalf("oracle delete %d: %v", id, err)
							}
							if err := sh.Delete(temporalir.ObjectID(id)); err != nil {
								t.Fatalf("sharded delete %d: %v", id, err)
							}
						}
					}
					if ol, sl := oracle.Len(), sh.Len(); ol != sl {
						t.Fatalf("live count diverged: oracle %d, sharded %d", ol, sl)
					}
					assertShardParity(t, "pre-compaction", oracle, sh, queries)

					if _, err := oracle.Compact(context.Background()); err != nil {
						t.Fatalf("oracle compact: %v", err)
					}
					if _, err := sh.Compact(context.Background()); err != nil {
						t.Fatalf("sharded compact: %v", err)
					}
					// With tombstones present every shard has work, so the
					// parallel fan-out must have compacted all four; at del0
					// each shard legitimately no-ops.
					if st := sh.CompactStats(); frac.mod > 0 && st.Compactions < 4 {
						t.Fatalf("parallel compaction ran on %d shards, want 4", st.Compactions)
					}
					assertShardParity(t, "post-compaction", oracle, sh, queries)
				})
			}
		})
	}
}

// TestShardedInsertParity grows an initially empty sharded engine and a
// single-engine oracle through the same insert/delete sequence: ids,
// lookups and search results must stay identical. An empty time-range
// request has no bounds to derive, so the map must fall back to hash
// partitioning.
func TestShardedInsertParity(t *testing.T) {
	sh, err := temporalir.NewSharded(temporalir.IRHintPerf, temporalir.Options{}, temporalir.ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := sh.ShardOptions().Partition; got != temporalir.PartitionHash {
		t.Fatalf("empty time-range engine should fall back to hash, got %v", got)
	}
	oracle, err := temporalir.NewBuilder().Build(temporalir.IRHintPerf, temporalir.Options{})
	if err != nil {
		t.Fatal(err)
	}

	c := testutil.RandomCollection(shardDiffConfig)
	for i := range c.Objects {
		o := &c.Objects[i]
		terms := termsFor(o.Elems)
		idO := oracle.Insert(o.Interval.Start, o.Interval.End, terms...)
		idS := sh.Insert(o.Interval.Start, o.Interval.End, terms...)
		if idO != idS {
			t.Fatalf("insert %d: oracle id %d, sharded id %d", i, idO, idS)
		}
		if i%5 == 2 { // interleaved deletes
			victim := temporalir.ObjectID(i / 2)
			errO := oracle.Delete(victim)
			errS := sh.Delete(victim)
			if (errO == nil) != (errS == nil) {
				t.Fatalf("delete %d diverged: oracle %v, sharded %v", victim, errO, errS)
			}
		}
	}
	if ol, sl := oracle.Len(), sh.Len(); ol != sl {
		t.Fatalf("live count diverged: oracle %d, sharded %d", ol, sl)
	}
	queries := shardDiffQueries()
	assertShardParity(t, "grown", oracle, sh, queries)

	// Object lookup parity on a sample, including a tombstoned id.
	for _, id := range []temporalir.ObjectID{0, 7, temporalir.ObjectID(len(c.Objects) - 1)} {
		ivO, termsO, errO := oracle.Object(id)
		ivS, termsS, errS := sh.Object(id)
		if (errO == nil) != (errS == nil) || ivO != ivS || !reflect.DeepEqual(termsO, termsS) {
			t.Fatalf("Object(%d) diverged: (%v %v %v) vs (%v %v %v)", id, ivO, termsO, errO, ivS, termsS, errS)
		}
	}

	if _, err := sh.Compact(context.Background()); err != nil {
		t.Fatalf("sharded compact: %v", err)
	}
	if _, err := oracle.Compact(context.Background()); err != nil {
		t.Fatalf("oracle compact: %v", err)
	}
	assertShardParity(t, "grown-compacted", oracle, sh, queries)

	// Post-compaction inserts must continue the same id sequence.
	idO := oracle.Insert(100, 200, "t001")
	idS := sh.Insert(100, 200, "t001")
	if idO != idS {
		t.Fatalf("post-compaction insert ids diverged: %d vs %d", idO, idS)
	}
}

// TestShardedPersistRoundTrip saves a sharded engine and reloads it
// both sharded and single: all three must answer identically, and ids
// must continue the same sequence — the snapshot format is shared.
func TestShardedPersistRoundTrip(t *testing.T) {
	c := testutil.RandomCollection(shardDiffConfig)
	sh := shardedOver(t, c, temporalir.IRHintPerf, 4)
	for id := 0; id < len(c.Objects); id += 9 {
		if err := sh.Delete(temporalir.ObjectID(id)); err != nil {
			t.Fatalf("delete %d: %v", id, err)
		}
	}
	var buf bytes.Buffer
	if err := sh.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	saved := buf.Bytes()

	reSh, err := temporalir.LoadSharded(bytes.NewReader(saved), temporalir.IRHintPerf, temporalir.Options{}, temporalir.ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatalf("LoadSharded: %v", err)
	}
	reEng, err := temporalir.LoadEngine(bytes.NewReader(saved), temporalir.IRHintPerf, temporalir.Options{})
	if err != nil {
		t.Fatalf("LoadEngine: %v", err)
	}
	queries := shardDiffQueries()
	assertShardParity(t, "reloaded-sharded", reEng, reSh, queries)

	// Id continuity: all three hand out the same next id.
	a, b, c2 := sh.Insert(5, 6, "t000"), reSh.Insert(5, 6, "t000"), reEng.Insert(5, 6, "t000")
	if a != b || b != c2 {
		t.Fatalf("next ids diverged after reload: %d, %d, %d", a, b, c2)
	}

	// An Engine snapshot loads sharded too.
	buf.Reset()
	if err := reEng.Save(&buf); err != nil {
		t.Fatalf("engine save: %v", err)
	}
	fromEng, err := temporalir.LoadSharded(bytes.NewReader(buf.Bytes()), temporalir.IRHintPerf, temporalir.Options{}, temporalir.ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatalf("LoadSharded(engine snapshot): %v", err)
	}
	assertShardParity(t, "engine-snapshot-sharded", reEng, fromEng, queries[:40])
}

// TestShardedStats sanity-checks the coordinator surfaces: shard rows,
// extent pruning and the cumulative counters.
func TestShardedStats(t *testing.T) {
	c := testutil.RandomCollection(shardDiffConfig)
	sh := shardedOver(t, c, temporalir.TIF, 4)
	stats := sh.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats rows = %d, want 4", len(stats))
	}
	total := 0
	for i, st := range stats {
		if st.Shard != i {
			t.Fatalf("row %d has shard index %d", i, st.Shard)
		}
		total += st.Objects
		if st.Objects > 0 && !st.HasExtent {
			t.Fatalf("shard %d holds objects but reports no extent", i)
		}
	}
	if total != len(c.Objects) {
		t.Fatalf("shard objects sum to %d, want %d", total, len(c.Objects))
	}
	cs := sh.CoordinatorStats()
	if cs.Shards != 4 || cs.Partition != "time-range" {
		t.Fatalf("coordinator stats: %+v", cs)
	}
	// A query far outside the domain prunes every shard.
	if ids := sh.Search(1_000_000, 1_000_001); len(ids) != 0 {
		t.Fatalf("out-of-domain search returned %v", ids)
	}
	cs = sh.CoordinatorStats()
	if cs.Queries == 0 {
		t.Fatal("coordinator did not count the query")
	}
	if cs.ShardsPruned < 4 {
		t.Fatalf("out-of-domain query pruned %d shards, want 4", cs.ShardsPruned)
	}
}
