# Convenience targets for the temporalir repository.

GO ?= go

.PHONY: all build test vet lint invariants bench benchmem microbench race fuzz examples experiments clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-wide suite, then the explicit self-lint pass: the linter (and its
# flow substrate) must stay clean under its own analyzers.
lint:
	$(GO) run ./cmd/irlint ./...
	$(GO) run ./cmd/irlint ./internal/tools/irlint/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

invariants:
	$(GO) test -tags invariants . ./internal/domain ./internal/postings ./internal/hint ./internal/maint

# Deterministic perf snapshots: fixed seed and workload, written as JSON
# for the perf trajectory (per-method latency/size, the tombstone-load
# before/after-compaction series, the observability overhead + per-stage
# breakdown, then the post-lint-sweep snapshot confirming the v3
# annotation/ctx fixes did not regress qps, then the post-allocation-
# contract snapshot, then the bitmap-container + adaptive-router
# snapshot (routejson adds the routed method row and per-regime routing
# quality), then the multi-tenant serving snapshot (tenantjson adds
# per-tenant qps/p99/fairness at 1/4/16 tenants), each diffed against
# its predecessor by benchdiff.
bench:
	$(GO) run ./cmd/irbench -exp perfjson -scale 0.02 -queries 300 -seed 42 -json BENCH_pr3.json
	$(GO) run ./cmd/irbench -exp tombstone -scale 0.02 -queries 200 -seed 42 -json BENCH_pr4.json
	$(GO) run ./cmd/irbench -exp obsjson -scale 0.02 -queries 300 -seed 42 -stages -json BENCH_pr5.json
	$(GO) run ./cmd/irbench -exp obsjson -scale 0.02 -queries 300 -seed 42 -stages -json BENCH_pr6.json
	$(GO) run ./cmd/irbench -exp obsjson -scale 0.02 -queries 300 -seed 42 -stages -json BENCH_pr7.json
	$(GO) run ./cmd/benchdiff -old BENCH_pr6.json -new BENCH_pr7.json
	$(GO) run ./cmd/irbench -exp routejson -scale 0.02 -queries 300 -seed 42 -json BENCH_pr8.json
	$(GO) run ./cmd/benchdiff -old BENCH_pr7.json -new BENCH_pr8.json
	$(GO) run ./cmd/irbench -exp tenantjson -scale 0.02 -queries 300 -seed 42 -json BENCH_pr9.json
	$(GO) run ./cmd/benchdiff -old BENCH_pr8.json -new BENCH_pr9.json
	$(GO) run ./cmd/irbench -exp shardjson -scale 0.02 -queries 300 -seed 42 -json BENCH_pr10.json
	$(GO) run ./cmd/benchdiff -old BENCH_pr9.json -new BENCH_pr10.json

# Re-measure the hot-path allocation budgets (BENCH_BUDGET.json), then
# re-run the gate against the fresh numbers. -p 1 keeps the in-process
# benchmarks off shared cores; -count=1 defeats test caching.
benchmem:
	ALLOC_BUDGET_RECORD=1 $(GO) test -run TestAllocBudget -count=1 -p 1 \
		./internal/postings ./internal/hint ./internal/tifhint ./internal/compress ./internal/route ./internal/tenant
	$(GO) test -run TestAllocBudget -count=1 -p 1 \
		./internal/postings ./internal/hint ./internal/tifhint ./internal/compress ./internal/route ./internal/tenant

# Full Go microbenchmark sweep (slow; not part of the gate).
microbench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzIterator -fuzztime=30s ./internal/compress/
	$(GO) test -fuzz=FuzzTokenize -fuzztime=30s ./internal/textutil/
	$(GO) test -fuzz=FuzzIntersect -fuzztime=30s ./internal/postings/
	$(GO) test -fuzz=FuzzContainerParity -fuzztime=30s ./internal/postings/
	$(GO) test -fuzz=FuzzGallopParity -fuzztime=30s ./internal/postings/
	$(GO) test -fuzz=FuzzDomainRoundTrip -fuzztime=30s ./internal/domain/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/archive
	$(GO) run ./examples/sessions
	$(GO) run ./examples/baskets
	$(GO) run ./examples/ranked

# Reproduce every paper artifact at laptop scale into results/.
experiments:
	$(GO) build -o bin/irbench ./cmd/irbench
	mkdir -p results
	bin/irbench -exp all -scale 0.02 -queries 500 | tee results/all.txt

clean:
	rm -rf bin
