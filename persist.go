package temporalir

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/dict"
	"repro/internal/encoding"
)

// Engine persistence: a dictionary section, the compact collection
// encoding of internal/encoding, and (since version 2) the external-id
// identity section. Logical deletions are folded in at save time
// (tombstoned objects are not written). Version 2 snapshots preserve
// object identity across a round trip: every live object's stable
// external id and the store's next-id counter are serialized, so ids
// handed out before a Save stay valid after a Load and new inserts
// continue the same id sequence — an engine that is saved, dropped and
// reloaded is indistinguishable to clients. Version 1 snapshots (which
// re-assigned dense ids on load) are still accepted.
//
// The format is shared by Engine and Sharded: a sharded save merges its
// shards' live objects back into global insertion order, so either
// engine kind can load the other's snapshot.

var engineMagic = [4]byte{'T', 'I', 'R', 'E'}

const (
	engineVersion   = 2
	engineVersionV1 = 1
)

// maxLoadPrealloc caps slice preallocations driven by unvalidated
// snapshot varints. A corrupt or adversarial header can claim any
// count; allocations grow incrementally past this bound instead, so a
// bad byte costs at most one modest slice before decoding fails. The
// spill/reload path feeds operator-controlled files into LoadEngine,
// which makes this load-bearing, not defensive polish.
const maxLoadPrealloc = 1 << 16

// cappedCap bounds a claimed element count to the preallocation cap.
func cappedCap(claimed uint64) int {
	if claimed > maxLoadPrealloc {
		return maxLoadPrealloc
	}
	return int(claimed)
}

// Save writes the engine's live objects, dictionary and id-identity
// section. The index itself is not serialized — it is rebuilt on load,
// which is both simpler and, for every method in the family, fast
// relative to I/O. The snapshot is consistent: it serializes one
// generation (base objects, memtable, tombstones and the id table as of
// a single atomic load), so concurrent inserts, deletes and compactions
// never tear it.
func (e *Engine) Save(w io.Writer) error {
	g := e.snapshot()
	// The dictionary only grows and every element id in g was interned
	// before g was published, so a snapshot taken now covers g's objects.
	e.dmu.RLock()
	terms := e.dict.TermsSnapshot()
	e.dmu.RUnlock()

	coll := g.Coll()
	live := &Collection{DictSize: coll.DictSize}
	ext := make([]ObjectID, 0, len(coll.Objects))
	for i := range coll.Objects {
		if g.Tombstoned(ObjectID(i)) {
			continue
		}
		o := &coll.Objects[i]
		ext = append(ext, g.ExternalID(ObjectID(i)))
		live.Objects = append(live.Objects, Object{
			ID:       ObjectID(len(live.Objects)),
			Interval: o.Interval,
			Elems:    o.Elems,
		})
	}
	return writeSnapshot(w, terms, live, ext, g.NextExt())
}

// writeSnapshot serializes one snapshot: dictionary terms, the live
// collection (dense ids, insertion order) and its parallel external-id
// table, then the next-id counter. Both Engine.Save and Sharded.Save
// reduce to this, which is what keeps the two formats identical.
func writeSnapshot(w io.Writer, terms []string, live *Collection, ext []ObjectID, next ObjectID) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(engineMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(engineVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(terms))); err != nil {
		return err
	}
	for _, t := range terms {
		if err := putUvarint(uint64(len(t))); err != nil {
			return err
		}
		if _, err := bw.WriteString(t); err != nil {
			return err
		}
	}
	if err := encoding.Write(bw, live); err != nil {
		return err
	}
	// Identity section: one external id per object, in the order the
	// objects were just encoded (encoding.Write permutes by interval
	// start; encoding.Order is that permutation, so the table stays
	// parallel to the collection as read back). The count is written
	// again as a consistency check, then the next id the store will
	// assign — exactly, not max+1, so tail deletions never cause id
	// reuse after a reload.
	if err := putUvarint(uint64(len(ext))); err != nil {
		return err
	}
	for _, oi := range encoding.Order(live) {
		if err := putUvarint(uint64(ext[oi])); err != nil {
			return err
		}
	}
	if err := putUvarint(uint64(next)); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadEngine reads a snapshot written by Save and rebuilds the requested
// index over it. Version-2 snapshots restore the saved external-id
// assignment; version-1 snapshots fall back to dense identity ids.
func LoadEngine(r io.Reader, m Method, opts Options) (*Engine, error) {
	d, coll, ext, next, err := decodeSnapshot(r)
	if err != nil {
		return nil, err
	}
	if ext == nil {
		return newEngine(d, coll, m, opts)
	}
	return newEngineWithIdentity(d, coll, m, opts, ext, next)
}

// decodeSnapshot reads and validates a TIRE snapshot: the dictionary,
// the collection restored to insertion order (dense ids), and — for
// version 2 — the strictly ascending external-id table plus next-id
// counter (ext is nil for version 1). All counts are bounds-checked
// before driving allocations.
func decodeSnapshot(r io.Reader) (*dict.Dictionary, *Collection, []ObjectID, ObjectID, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, nil, nil, 0, fmt.Errorf("temporalir: reading engine magic: %w", err)
	}
	if magic != engineMagic {
		return nil, nil, nil, 0, errors.New("temporalir: not an engine snapshot")
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, nil, nil, 0, err
	}
	if ver != engineVersion && ver != engineVersionV1 {
		return nil, nil, nil, 0, fmt.Errorf("temporalir: unsupported snapshot version %d", ver)
	}
	nTerms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, nil, nil, 0, fmt.Errorf("temporalir: term count: %w", err)
	}
	const maxTermLen = 1 << 16
	// The claimed count is unvalidated input: cap the preallocation and
	// let append grow past it, so a corrupt header cannot commit a
	// multi-GB allocation before the first term even decodes.
	terms := make([]string, 0, cappedCap(nTerms))
	for i := uint64(0); i < nTerms; i++ {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, nil, nil, 0, fmt.Errorf("temporalir: term %d length: %w", i, err)
		}
		if l > maxTermLen {
			return nil, nil, nil, 0, fmt.Errorf("temporalir: term %d implausibly long (%d)", i, l)
		}
		raw := make([]byte, l)
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, nil, nil, 0, fmt.Errorf("temporalir: term %d: %w", i, err)
		}
		terms = append(terms, string(raw))
	}
	coll, err := encoding.Read(br)
	if err != nil {
		return nil, nil, nil, 0, fmt.Errorf("temporalir: collection: %w", err)
	}
	d := dict.FromTerms(terms)
	if d.Len() < coll.DictSize {
		return nil, nil, nil, 0, fmt.Errorf("temporalir: dictionary (%d terms) smaller than collection element space (%d)",
			d.Len(), coll.DictSize)
	}
	for i := range coll.Objects {
		d.AddElems(coll.Objects[i].Elems)
	}
	if ver == engineVersionV1 {
		return d, coll, nil, 0, nil
	}
	ext, next, err := readIdentity(br, len(coll.Objects))
	if err != nil {
		return nil, nil, nil, 0, err
	}
	// Restore the original internal order. The collection was written
	// start-sorted; re-sorting by external id (strictly ascending in the
	// original store, i.e. insertion order) reconstructs it and yields
	// the ascending table the generational store requires.
	ord := make([]int, len(ext))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return ext[ord[a]] < ext[ord[b]] })
	objs := make([]Object, len(ord))
	sorted := make([]ObjectID, len(ord))
	for i, oi := range ord {
		o := coll.Objects[oi]
		o.ID = ObjectID(i)
		objs[i] = o
		sorted[i] = ext[oi]
		if i > 0 && sorted[i] <= sorted[i-1] {
			return nil, nil, nil, 0, fmt.Errorf("temporalir: duplicate external id %d in identity table", sorted[i])
		}
	}
	if n := len(sorted); n > 0 && sorted[n-1] >= next {
		return nil, nil, nil, 0, fmt.Errorf("temporalir: next id %d not past last external id %d", next, sorted[n-1])
	}
	coll.Objects = objs
	return d, coll, sorted, next, nil
}

// readIdentity decodes the version-2 identity section: one external id
// per object in written order, then the next-id counter. Ordering and
// uniqueness are validated by the caller after re-sorting.
func readIdentity(br *bufio.Reader, objects int) ([]ObjectID, ObjectID, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, 0, fmt.Errorf("temporalir: identity count: %w", err)
	}
	if n != uint64(objects) {
		return nil, 0, fmt.Errorf("temporalir: identity table covers %d objects, collection has %d", n, objects)
	}
	ext := make([]ObjectID, 0, n)
	for i := uint64(0); i < n; i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, 0, fmt.Errorf("temporalir: identity entry %d: %w", i, err)
		}
		if v > 1<<32-1 {
			return nil, 0, fmt.Errorf("temporalir: identity entry %d overflows id space", i)
		}
		ext = append(ext, ObjectID(v))
	}
	rawNext, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, 0, fmt.Errorf("temporalir: next id: %w", err)
	}
	return ext, ObjectID(rawNext), nil
}
