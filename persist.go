package temporalir

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/dict"
	"repro/internal/encoding"
)

// Engine persistence: a dictionary section followed by the compact
// collection encoding of internal/encoding. Logical deletions are folded
// in at save time (tombstoned objects are not written), and object ids
// are re-assigned densely on load — persist any external id mapping
// separately if object identity must survive a round trip.

var engineMagic = [4]byte{'T', 'I', 'R', 'E'}

const engineVersion = 1

// Save writes the engine's live objects and dictionary. The index itself
// is not serialized — it is rebuilt on load, which is both simpler and,
// for every method in the family, fast relative to I/O. The snapshot is
// consistent: it serializes one generation (base objects, memtable and
// tombstones as of a single atomic load), so concurrent inserts, deletes
// and compactions never tear it.
func (e *Engine) Save(w io.Writer) error {
	g := e.snapshot()
	// The dictionary only grows and every element id in g was interned
	// before g was published, so a snapshot taken now covers g's objects.
	e.dmu.RLock()
	terms := e.dict.TermsSnapshot()
	e.dmu.RUnlock()

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(engineMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(engineVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(terms))); err != nil {
		return err
	}
	for _, t := range terms {
		if err := putUvarint(uint64(len(t))); err != nil {
			return err
		}
		if _, err := bw.WriteString(t); err != nil {
			return err
		}
	}
	coll := g.Coll()
	live := &Collection{DictSize: coll.DictSize}
	for i := range coll.Objects {
		if g.Tombstoned(ObjectID(i)) {
			continue
		}
		o := &coll.Objects[i]
		live.Objects = append(live.Objects, Object{
			ID:       ObjectID(len(live.Objects)),
			Interval: o.Interval,
			Elems:    o.Elems,
		})
	}
	if err := encoding.Write(bw, live); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadEngine reads a snapshot written by Save and rebuilds the requested
// index over it.
func LoadEngine(r io.Reader, m Method, opts Options) (*Engine, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("temporalir: reading engine magic: %w", err)
	}
	if magic != engineMagic {
		return nil, errors.New("temporalir: not an engine snapshot")
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != engineVersion {
		return nil, fmt.Errorf("temporalir: unsupported snapshot version %d", ver)
	}
	nTerms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("temporalir: term count: %w", err)
	}
	const maxTermLen = 1 << 16
	terms := make([]string, 0, nTerms)
	for i := uint64(0); i < nTerms; i++ {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("temporalir: term %d length: %w", i, err)
		}
		if l > maxTermLen {
			return nil, fmt.Errorf("temporalir: term %d implausibly long (%d)", i, l)
		}
		raw := make([]byte, l)
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, fmt.Errorf("temporalir: term %d: %w", i, err)
		}
		terms = append(terms, string(raw))
	}
	coll, err := encoding.Read(br)
	if err != nil {
		return nil, fmt.Errorf("temporalir: collection: %w", err)
	}
	d := dict.FromTerms(terms)
	if d.Len() < coll.DictSize {
		return nil, fmt.Errorf("temporalir: dictionary (%d terms) smaller than collection element space (%d)",
			d.Len(), coll.DictSize)
	}
	for i := range coll.Objects {
		d.AddElems(coll.Objects[i].Elems)
	}
	return newEngine(d, coll, m, opts)
}
