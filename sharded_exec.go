package temporalir

import (
	"context"
	"time"

	"repro/internal/aggregate"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rank"
	"repro/internal/shard"
)

// Scatter-gather execution for the sharded engine. Every query follows
// the same shape: resolve terms once against the shared dictionary
// (plan span), select the shard set whose extents can overlap the
// interval, fan out over the exec pool (scatter span, one immutable
// generation snapshot per shard), and merge the per-shard results
// (merge span). Per-shard deadlines only exist on the *ShardsCtx
// surface, where the ShardReport names any cut shard; the Engine-shaped
// context surface converts a partial gather into *PartialError, and the
// context-free surface never applies deadlines — so no path can return
// a silently truncated result.

// resolveTermsTraced maps terms to element ids under the shared
// dictionary lock (and a plan span), reporting ok=false if any term is
// unknown.
func (s *Sharded) resolveTermsTraced(tr *obs.Trace, terms []string) ([]ElemID, bool) {
	defer tr.StartStage(obs.StagePlan).End()
	s.dmu.RLock()
	defer s.dmu.RUnlock()
	elems := make([]ElemID, 0, len(terms))
	for _, t := range terms {
		id, ok := s.dict.Lookup(t)
		if !ok {
			return nil, false
		}
		elems = append(elems, id)
	}
	return elems, true
}

// scatter fans eval out over the planned shards. With a positive
// timeout each shard runs detached and is recorded as cut when the
// deadline fires first — the caller MUST NOT read a cut shard's result
// slot (its eval may still be writing). A fired ctx fails the whole
// gather with ctx.Err(); otherwise the returned report is complete.
func (s *Sharded) scatter(ctx context.Context, planned []int, pruned int, tr *obs.Trace, timeout time.Duration, eval func(si int)) (ShardReport, error) {
	s.queries.Add(1)
	s.shardsPruned.Add(uint64(pruned))
	rep := ShardReport{Planned: len(planned), Pruned: pruned}
	if len(planned) == 0 {
		return rep, ctx.Err()
	}
	span := tr.StartStage(obs.StageScatter) // lint:span-ok straight-line: MapCtx returns on every path and End immediately follows it
	pool := s.executor()
	cut := make([]bool, len(planned))
	_ = pool.MapCtx(ctx, len(planned), func(p int) {
		si := planned[p]
		if timeout <= 0 {
			eval(si)
			return
		}
		done := make(chan struct{})
		// irlint:goroutine-exits close of the unbuffered done channel is the goroutine's last act; eval always returns (pure in-memory scan), so the goroutine exits even when the deadline abandoned it
		go func() { eval(si); close(done) }()
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		select {
		case <-done:
		case <-timer.C:
			cut[p] = true
		case <-ctx.Done():
			// Global cancellation fails the whole gather below; the
			// stray eval finishes against its snapshot in the
			// background, bounded by the caller's concurrency.
		}
	})
	span.End()
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	for p, c := range cut {
		if c {
			rep.Cut = append(rep.Cut, planned[p])
		}
	}
	s.shardsCut.Add(uint64(len(rep.Cut)))
	return rep, nil
}

// contributed lists the planned shards that answered (planned minus
// cut), i.e. the result slots the merge may read.
func contributed(planned []int, rep ShardReport) []int {
	if len(rep.Cut) == 0 {
		return planned
	}
	cut := make(map[int]bool, len(rep.Cut))
	for _, si := range rep.Cut {
		cut[si] = true
	}
	out := make([]int, 0, len(planned)-len(rep.Cut))
	for _, si := range planned {
		if !cut[si] {
			out = append(out, si)
		}
	}
	return out
}

// SearchShardsCtx is the report-carrying conjunctive search: matching
// ids across the shards that answered, ascending in global id order,
// plus the shard report. With a configured ShardTimeout a slow shard is
// cut and named in the report (err stays nil — the partial rows are the
// caller's to keep); a fired ctx fails the whole query instead.
func (s *Sharded) SearchShardsCtx(ctx context.Context, start, end Timestamp, terms ...string) ([]ObjectID, ShardReport, error) {
	return s.searchShards(ctx, s.sopts.ShardTimeout, start, end, terms)
}

func (s *Sharded) searchShards(ctx context.Context, timeout time.Duration, start, end Timestamp, terms []string) ([]ObjectID, ShardReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, ShardReport{}, err
	}
	tr := obs.TraceFromContext(ctx)
	elems, ok := s.resolveTermsTraced(tr, terms)
	if !ok {
		return nil, ShardReport{Pruned: len(s.stores)}, nil
	}
	iv := model.Canon(start, end)
	q := Query{Interval: iv, Elems: model.NormalizeElems(elems), Trace: tr}
	planned, pruned := s.plan(iv)
	pool := s.executor()
	lists := make([][]ObjectID, len(s.stores))
	rep, err := s.scatter(ctx, planned, pruned, tr, timeout, func(si int) {
		g := s.snapshotOne(si)
		ids := g.QueryP(q, pool)
		SortIDs(ids)
		lists[si] = g.External(ids)
	})
	if err != nil {
		return nil, rep, err
	}
	out := mergeIDLists(lists, contributed(planned, rep), tr)
	tr.AddResults(len(out))
	return out, rep, nil
}

// mergeIDLists k-way merges the contributing shards' ascending id lists
// under a merge span.
func mergeIDLists(lists [][]ObjectID, from []int, tr *obs.Trace) []ObjectID {
	defer tr.StartStage(obs.StageMerge).End()
	in := make([][]ObjectID, len(from))
	for i, si := range from {
		in[i] = lists[si]
	}
	return shard.MergeAscending(in)
}

// Search is the context-free conjunctive search, identical in contract
// to Engine.Search. No per-shard deadline applies — without a report
// channel a deadline could only truncate silently.
func (s *Sharded) Search(start, end Timestamp, terms ...string) []ObjectID {
	// irlint:ctx-root deliberately ctx-less convenience surface; callers who need deadlines use SearchCtx/SearchShardsCtx
	ids, _, _ := s.searchShards(context.Background(), 0, start, end, terms)
	return ids
}

// SearchCtx is the Engine-shaped context search: everything or an
// error. A fired ctx returns ctx.Err(); a per-shard deadline cut
// returns *PartialError naming the cut shards (use SearchShardsCtx to
// keep the partial rows instead).
func (s *Sharded) SearchCtx(ctx context.Context, start, end Timestamp, terms ...string) ([]ObjectID, error) {
	ids, rep, err := s.SearchShardsCtx(ctx, start, end, terms...)
	if err != nil {
		return nil, err
	}
	if rep.Partial() {
		return nil, &PartialError{Report: rep}
	}
	return ids, nil
}

// SearchAny is the disjunctive counterpart of Search: objects alive in
// [start, end] containing at least one of the terms; unknown terms are
// ignored.
func (s *Sharded) SearchAny(start, end Timestamp, terms ...string) []ObjectID {
	s.dmu.RLock()
	elems := make([]ElemID, 0, len(terms))
	for _, t := range terms {
		if id, ok := s.dict.Lookup(t); ok {
			elems = append(elems, id)
		}
	}
	s.dmu.RUnlock()
	if len(elems) == 0 {
		return nil
	}
	iv := model.Canon(start, end)
	norm := model.NormalizeElems(elems)
	planned, pruned := s.plan(iv)
	lists := make([][]ObjectID, len(s.stores))
	// irlint:ctx-root deliberately ctx-less convenience surface, like Engine.SearchAny
	rep, _ := s.scatter(context.Background(), planned, pruned, nil, 0, func(si int) {
		g := s.snapshotOne(si)
		var out []ObjectID
		for _, el := range norm {
			out = append(out, g.Query(Query{Interval: iv, Elems: []ElemID{el}})...)
		}
		SortIDs(out)
		lists[si] = g.External(model.DedupIDs(out))
	})
	return mergeIDLists(lists, contributed(planned, rep), nil)
}

// SearchTopKShardsCtx is the report-carrying ranked search: the global
// top k across the shards that answered, scored by the shared global
// scorer, ordered (score desc, id asc) exactly as a single engine would
// order them.
func (s *Sharded) SearchTopKShardsCtx(ctx context.Context, start, end Timestamp, k int, terms ...string) ([]ScoredResult, ShardReport, error) {
	return s.searchTopKShards(ctx, s.sopts.ShardTimeout, start, end, k, terms)
}

func (s *Sharded) searchTopKShards(ctx context.Context, timeout time.Duration, start, end Timestamp, k int, terms []string) ([]ScoredResult, ShardReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, ShardReport{}, err
	}
	s.ensureScorer()
	tr := obs.TraceFromContext(ctx)
	elems, ok := s.resolveTermsTraced(tr, terms)
	if !ok {
		return nil, ShardReport{Pruned: len(s.stores)}, nil
	}
	iv := model.Canon(start, end)
	q := Query{Interval: iv, Elems: model.NormalizeElems(elems), Trace: tr}
	planned, pruned := s.plan(iv)
	lists := make([][]rank.Result, len(s.stores))
	rep, err := s.scatter(ctx, planned, pruned, tr, timeout, func(si int) {
		g := s.snapshotOne(si)
		span := tr.StartStage(obs.StageRank) // lint:span-ok straight-line closure: TopK cannot return early and End follows it
		rs := rank.TopK(g, g.Coll(), g.Scorer(), q, k)
		span.End()
		// Translate to global ids before the cross-shard merge: within
		// a shard internal order is external order, so the list stays
		// sorted under the (score desc, id asc) merge order.
		for i := range rs {
			rs[i].ID = g.ExternalID(rs[i].ID)
		}
		lists[si] = rs
	})
	if err != nil {
		return nil, rep, err
	}
	merged := mergeTopKLists(lists, contributed(planned, rep), k, tr)
	out := make([]ScoredResult, len(merged))
	for i, r := range merged {
		out[i] = ScoredResult{ID: r.ID, Score: r.Score}
	}
	tr.AddResults(len(out))
	return out, rep, nil
}

// mergeTopKLists merges the contributing shards' local top-k lists
// under a merge span.
func mergeTopKLists(lists [][]rank.Result, from []int, k int, tr *obs.Trace) []rank.Result {
	defer tr.StartStage(obs.StageMerge).End()
	in := make([][]rank.Result, len(from))
	for i, si := range from {
		in[i] = lists[si]
	}
	return shard.MergeTopK(in, k)
}

// SearchTopK is the context-free ranked search, identical in contract
// to Engine.SearchTopK. No per-shard deadline applies.
func (s *Sharded) SearchTopK(start, end Timestamp, k int, terms ...string) []ScoredResult {
	// irlint:ctx-root deliberately ctx-less convenience surface; callers who need deadlines use SearchTopKCtx/SearchTopKShardsCtx
	res, _, _ := s.searchTopKShards(context.Background(), 0, start, end, k, terms)
	return res
}

// SearchTopKCtx is the Engine-shaped ranked context search: everything
// or an error (*PartialError on a per-shard deadline cut).
func (s *Sharded) SearchTopKCtx(ctx context.Context, start, end Timestamp, k int, terms ...string) ([]ScoredResult, error) {
	res, rep, err := s.SearchTopKShardsCtx(ctx, start, end, k, terms...)
	if err != nil {
		return nil, err
	}
	if rep.Partial() {
		return nil, &PartialError{Report: rep}
	}
	return res, nil
}

// TimelineShardsCtx is the report-carrying timeline aggregation:
// per-shard histograms summed bucket-by-bucket (every shard shares the
// same bucket layout). When the planner prunes every shard the layout
// is synthesized, matching the zero-count histogram a single engine
// returns for a no-match query.
func (s *Sharded) TimelineShardsCtx(ctx context.Context, start, end Timestamp, buckets int, terms ...string) ([]TimelineBucket, ShardReport, error) {
	return s.timelineShards(ctx, s.sopts.ShardTimeout, start, end, buckets, terms)
}

func (s *Sharded) timelineShards(ctx context.Context, timeout time.Duration, start, end Timestamp, buckets int, terms []string) ([]TimelineBucket, ShardReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, ShardReport{}, err
	}
	tr := obs.TraceFromContext(ctx)
	elems, ok := s.resolveTermsTraced(tr, terms)
	if !ok {
		return nil, ShardReport{Pruned: len(s.stores)}, nil
	}
	iv := model.Canon(start, end)
	q := Query{Interval: iv, Elems: model.NormalizeElems(elems), Trace: tr}
	planned, pruned := s.plan(iv)
	lists := make([][]aggregate.Bucket, len(s.stores))
	rep, err := s.scatter(ctx, planned, pruned, tr, timeout, func(si int) {
		g := s.snapshotOne(si)
		span := tr.StartStage(obs.StageAgg) // lint:span-ok straight-line closure: Histogram cannot return early and End follows it
		lists[si] = aggregate.Histogram(g, g.Coll(), q, buckets)
		span.End()
	})
	if err != nil {
		return nil, rep, err
	}
	out := mergeTimeline(lists, contributed(planned, rep), q, buckets, tr)
	tr.AddResults(len(out))
	return out, rep, nil
}

// mergeTimeline sums the contributing histograms (synthesizing the
// empty layout when nothing contributed) under a merge span.
func mergeTimeline(lists [][]aggregate.Bucket, from []int, q Query, buckets int, tr *obs.Trace) []TimelineBucket {
	defer tr.StartStage(obs.StageMerge).End()
	in := make([][]aggregate.Bucket, len(from))
	for i, si := range from {
		in[i] = lists[si]
	}
	merged := shard.MergeHistograms(in)
	if merged == nil {
		merged = aggregate.Layout(q, buckets)
	}
	out := make([]TimelineBucket, 0, buckets)
	for _, b := range merged {
		out = append(out, TimelineBucket{Start: b.Span.Start, End: b.Span.End, Count: b.Count, Mass: b.Mass})
	}
	return out
}

// Timeline is the context-free timeline aggregation, identical in
// contract to Engine.Timeline. No per-shard deadline applies.
func (s *Sharded) Timeline(start, end Timestamp, buckets int, terms ...string) []TimelineBucket {
	// irlint:ctx-root deliberately ctx-less convenience surface; callers who need deadlines use TimelineCtx/TimelineShardsCtx
	out, _, _ := s.timelineShards(context.Background(), 0, start, end, buckets, terms)
	return out
}

// TimelineCtx is the Engine-shaped timeline context search: everything
// or an error (*PartialError on a per-shard deadline cut).
func (s *Sharded) TimelineCtx(ctx context.Context, start, end Timestamp, buckets int, terms ...string) ([]TimelineBucket, error) {
	out, rep, err := s.TimelineShardsCtx(ctx, start, end, buckets, terms...)
	if err != nil {
		return nil, err
	}
	if rep.Partial() {
		return nil, &PartialError{Report: rep}
	}
	return out, nil
}

// SearchTermsBatch evaluates many term rows as one batch over the pool.
// Rows with unknown terms resolve to empty results, matching Search.
func (s *Sharded) SearchTermsBatch(start, end Timestamp, termRows [][]string) []Result {
	// irlint:ctx-root deliberately ctx-less convenience surface; callers who need deadlines use SearchTermsBatchCtx
	return s.SearchTermsBatchCtx(context.Background(), start, end, termRows)
}

// SearchTermsBatchCtx is SearchTermsBatch with cooperative cancellation
// and explicit partial semantics per row: rows not started when ctx
// fires carry Err = ctx.Err(); a row whose per-shard deadline cut a
// shard carries Err = *PartialError instead of silently shortened ids.
// A row either has its complete result or a non-nil Err.
func (s *Sharded) SearchTermsBatchCtx(ctx context.Context, start, end Timestamp, termRows [][]string) []Result {
	tr := obs.TraceFromContext(ctx)
	tr.SetBatch(len(termRows))
	results := make([]Result, len(termRows))
	started := make([]bool, len(termRows))
	pool := s.executor()
	_ = pool.MapCtx(ctx, len(termRows), func(i int) {
		started[i] = true
		ids, rep, err := s.searchShards(ctx, s.sopts.ShardTimeout, start, end, termRows[i])
		switch {
		case err != nil:
			results[i] = Result{Err: err}
		case rep.Partial():
			results[i] = Result{Err: &PartialError{Report: rep}}
		default:
			results[i] = Result{IDs: ids}
		}
	})
	if err := ctx.Err(); err != nil {
		for i := range results {
			if !started[i] {
				results[i] = Result{Err: err}
			}
		}
	}
	return results
}
