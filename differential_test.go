package temporalir_test

import (
	"fmt"
	"testing"

	temporalir "repro"
	"repro/internal/testutil"
)

// methodNames is the full family — the seven paper-table methods plus
// the base tIF (allMethods in edgecases_test.go) — as harness keys.
func methodNames() []string {
	ms := allMethods()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = string(m)
	}
	return names
}

// TestDifferentialAllMethods is the cross-method differential harness:
// on every seeded workload, all eight methods must return byte-identical
// result sets to the brute-force oracle — including the boundary sweep
// (point queries, domain edges, unknown elements, empty element lists).
func TestDifferentialAllMethods(t *testing.T) {
	for _, w := range testutil.DefaultDifferentialWorkloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			testutil.CheckDifferential(t, w, methodNames(),
				func(name string, c *temporalir.Collection) testutil.QueryIndex {
					ix, err := temporalir.NewIndex(temporalir.Method(name), c, temporalir.Options{})
					if err != nil {
						t.Fatalf("building %s: %v", name, err)
					}
					return ix
				})
		})
	}
}

// TestDifferentialBatchMatchesSerial checks, for every method, that
// SearchBatch over the engine returns byte-identical rows (same workload
// checksum) as the serial Query loop — the serial-vs-parallel agreement
// the executor guarantees.
func TestDifferentialBatchMatchesSerial(t *testing.T) {
	w := testutil.DefaultDifferentialWorkloads()[0]
	c := testutil.RandomCollection(w.Config)
	queries := w.WorkloadQueries()
	for _, m := range allMethods() {
		m := m
		t.Run(string(m), func(t *testing.T) {
			eng := engineOver(t, c, m)
			eng.SetParallelism(4)
			serial := make([][]temporalir.ObjectID, len(queries))
			ix := eng.Index()
			for i, q := range queries {
				serial[i] = testutil.Canonical(ix.Query(q))
			}
			batch := eng.SearchBatch(queries)
			rows := make([][]temporalir.ObjectID, len(batch))
			for i, r := range batch {
				if r.Err != nil {
					t.Fatalf("batch row %d: %v", i, r.Err)
				}
				rows[i] = r.IDs
			}
			if got, want := testutil.WorkloadChecksum(rows), testutil.WorkloadChecksum(serial); got != want {
				t.Fatalf("%s: batch checksum %s != serial %s", m, got, want)
			}
		})
	}
}

// engineOver builds an Engine of the given method over a collection by
// replaying its objects through the Builder with synthetic term strings.
func engineOver(t *testing.T, c *temporalir.Collection, m temporalir.Method) *temporalir.Engine {
	t.Helper()
	b := temporalir.NewBuilder()
	for i := range c.Objects {
		o := &c.Objects[i]
		terms := make([]string, len(o.Elems))
		for j, e := range o.Elems {
			terms[j] = fmt.Sprintf("t%03d", e)
		}
		b.Add(o.Interval.Start, o.Interval.End, terms...)
	}
	eng, err := b.Build(m, temporalir.Options{})
	if err != nil {
		t.Fatalf("building engine %s: %v", m, err)
	}
	return eng
}
