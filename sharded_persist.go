package temporalir

import (
	"io"
	"sort"
)

// Sharded persistence: a sharded engine saves the same TIRE snapshot a
// single engine does — its shards' live objects merged back into global
// insertion order with their stable ids — so Engine and Sharded
// snapshots are interchangeable: either kind loads the other's file,
// and the tenant spill/reload path needs no shard awareness.

// Save writes the merged snapshot of every shard. Each shard
// contributes one atomic generation snapshot; the merge orders live
// objects by their global external id (insertion order) and the shared
// allocator supplies the next-id counter, so a reload (sharded or not)
// reproduces the exact id sequence. Shard snapshots are taken one
// atomic load apiece — a save racing concurrent writes lands between
// two inserts, never inside one shard's generation.
func (s *Sharded) Save(w io.Writer) error {
	s.dmu.RLock()
	terms := s.dict.TermsSnapshot()
	s.dmu.RUnlock()

	type liveObj struct {
		ext ObjectID
		obj Object
	}
	var all []liveObj
	for i := range s.stores {
		g := s.snapshotOne(i)
		coll := g.Coll()
		for j := range coll.Objects {
			if g.Tombstoned(ObjectID(j)) {
				continue
			}
			all = append(all, liveObj{ext: g.ExternalID(ObjectID(j)), obj: coll.Objects[j]})
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].ext < all[b].ext })

	live := &Collection{DictSize: s.dictSize()}
	ext := make([]ObjectID, 0, len(all))
	for _, lo := range all {
		o := lo.obj
		o.ID = ObjectID(len(live.Objects))
		live.Objects = append(live.Objects, o)
		ext = append(ext, lo.ext)
	}
	return writeSnapshot(w, terms, live, ext, s.alloc.Next())
}

// dictSize returns the shared dictionary's current element-space size.
func (s *Sharded) dictSize() int {
	s.dmu.RLock()
	defer s.dmu.RUnlock()
	return s.dict.Len()
}

// LoadSharded reads a snapshot written by Engine.Save or Sharded.Save
// and re-partitions it across so's shard layout, restoring the saved
// external-id assignment (version 2) or dense identity ids (version 1).
// With PartitionTimeRange and zero Bounds the domain derives from the
// loaded data, matching what BuildSharded would have chosen.
func LoadSharded(r io.Reader, m Method, opts Options, so ShardedOptions) (*Sharded, error) {
	d, coll, ext, next, err := decodeSnapshot(r)
	if err != nil {
		return nil, err
	}
	if ext == nil {
		return buildSharded(d, coll, m, opts, so, nil, 0)
	}
	return buildSharded(d, coll, m, opts, so, ext, next)
}
