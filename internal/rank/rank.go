// Package rank adds relevance-ranked (top-k) time-travel IR search on top
// of any containment index — the extension the paper names as future work
// ("find the most relevant objects overlapping the query time interval",
// Section 7). Candidate generation reuses a containment index; scoring
// combines element rarity (IDF, the natural weight under the paper's set
// semantics where term frequency is always 0/1) with temporal overlap.
package rank

import (
	"cmp"
	"math"
	"slices"

	"repro/internal/model"
)

// Scorer computes relevance scores for candidate objects.
type Scorer struct {
	idf            []float64
	n              int
	temporalWeight float64
}

// ScorerConfig tunes the scoring function.
type ScorerConfig struct {
	// TemporalWeight in (0, 1] balances the temporal-overlap component
	// against the IDF component. Zero (or out-of-range) selects the
	// default 0.3; set DisableTemporal for a pure-IDF scorer instead.
	TemporalWeight float64
	// DisableTemporal scores by IDF only.
	DisableTemporal bool
}

// NewScorer precomputes IDF weights from the collection's element
// frequencies: idf(e) = ln(1 + N/df(e)).
func NewScorer(c *model.Collection, cfg ScorerConfig) *Scorer {
	return NewScorerFromFreqs(c.ElemFreqs(), c.Len(), cfg)
}

// NewScorerFromFreqs is NewScorer over explicit corpus statistics: per-
// element document frequencies and the live-object count. A sharded
// engine sums its shards' frequencies and lengths and builds ONE global
// scorer from them, so per-shard top-k scores are comparable — and
// bit-identical — to the single-engine oracle's.
func NewScorerFromFreqs(freqs []int, n int, cfg ScorerConfig) *Scorer {
	if cfg.TemporalWeight <= 0 || cfg.TemporalWeight > 1 {
		cfg.TemporalWeight = 0.3
	}
	if cfg.DisableTemporal {
		cfg.TemporalWeight = 0
	}
	s := &Scorer{idf: make([]float64, len(freqs)), n: n, temporalWeight: cfg.TemporalWeight}
	for e, f := range freqs {
		if f > 0 {
			s.idf[e] = math.Log1p(float64(n) / float64(f))
		}
	}
	return s
}

// IDF returns the precomputed weight of an element.
func (s *Scorer) IDF(e model.ElemID) float64 {
	if int(e) >= len(s.idf) {
		return 0
	}
	return s.idf[e]
}

// Score rates one object against a query. The IDF component sums the
// weights of the query elements; it runs once per candidate per ranked
// query, so it must stay allocation-free.
//
// irlint:hot per-candidate scoring kernel of ranked search
//
// The scoring model: the IDF component sums the
// weights of the query elements (all contained, by the containment
// semantics); the temporal component is the fraction of the query
// interval the object's lifespan covers. Both are normalized to [0, 1]
// before mixing so scores are comparable across queries.
func (s *Scorer) Score(o *model.Object, q *model.Query) float64 {
	var idfSum float64
	for _, e := range q.Elems {
		idfSum += s.IDF(e)
	}
	idfComponent := 0.0
	if idfMax := math.Log1p(float64(s.n)); len(q.Elems) > 0 && idfMax > 0 {
		idfComponent = idfSum / (idfMax * float64(len(q.Elems)))
	}
	overlap, ok := o.Interval.Intersect(q.Interval)
	temporal := 0.0
	if ok {
		temporal = float64(overlap.Duration()) / float64(q.Interval.Duration())
	}
	return (1-s.temporalWeight)*idfComponent + s.temporalWeight*temporal
}

// Result is one ranked hit.
type Result struct {
	ID    model.ObjectID
	Score float64
}

// resultHeap is a concrete min-heap on score (ties broken by larger id
// first so the worst of the best-k sits at the root), keeping the best k.
// It deliberately does not implement container/heap: the interface-based
// API boxes every Result pushed through it, and the heap operations sit
// on the per-candidate ranking path.
type resultHeap []Result

// worse reports whether entry a should sit below entry b, i.e. a is a
// weaker result than b (lower score, or equal score with a larger id).
func (h resultHeap) worse(a, b int) bool {
	if h[a].Score != h[b].Score {
		return h[a].Score < h[b].Score
	}
	return h[a].ID > h[b].ID
}

func (h resultHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.worse(i, parent) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h resultHeap) siftDown(i int) {
	n := len(h)
	for {
		least := i
		if l := 2*i + 1; l < n && h.worse(l, least) {
			least = l
		}
		if r := 2*i + 2; r < n && h.worse(r, least) {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// ContainmentIndex is the candidate source — any index of the family.
type ContainmentIndex interface {
	Query(q model.Query) []model.ObjectID
}

// TopK returns the k highest-scoring objects matching q, ordered by
// descending score (ascending id on ties). Candidates come from the
// containment index; the collection supplies the object records. The
// candidate loop only touches the pre-sized heap — replace-root when a
// candidate beats the current worst — so ranking allocates nothing per
// candidate.
//
// irlint:hot ranked-search driver, one heap operation per candidate
func TopK(ix ContainmentIndex, c *model.Collection, s *Scorer, q model.Query, k int) []Result {
	if k <= 0 {
		return nil
	}
	// lint:alloc-ok one k-capacity heap per ranked query
	h := make(resultHeap, 0, k)
	for _, id := range ix.Query(q) {
		o := &c.Objects[id]
		r := Result{ID: id, Score: s.Score(o, &q)}
		if len(h) < k {
			h = append(h, r)
			h.siftUp(len(h) - 1)
			continue
		}
		if r.Score > h[0].Score || (r.Score == h[0].Score && r.ID < h[0].ID) {
			h[0] = r
			h.siftDown(0)
		}
	}
	// lint:alloc-ok one exactly-sized result slice per ranked query
	out := make([]Result, len(h))
	copy(out, h)
	slices.SortStableFunc(out, func(a, b Result) int {
		if a.Score != b.Score {
			return cmp.Compare(b.Score, a.Score)
		}
		return cmp.Compare(a.ID, b.ID)
	})
	return out
}
