package rank

import (
	"math"
	"sort"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/testutil"
)

func buildCollection() *model.Collection {
	var c model.Collection
	c.AppendObject(model.Interval{Start: 0, End: 100}, []model.ElemID{0, 1}) // common elems, full overlap
	c.AppendObject(model.Interval{Start: 40, End: 60}, []model.ElemID{0, 2}) // rare elem, partial overlap
	c.AppendObject(model.Interval{Start: 90, End: 200}, []model.ElemID{0})   // tail overlap
	c.AppendObject(model.Interval{Start: 0, End: 100}, []model.ElemID{0, 1}) // duplicate of first
	c.AppendObject(model.Interval{Start: 300, End: 400}, []model.ElemID{0})  // no overlap
	return &c
}

func TestIDFOrdering(t *testing.T) {
	c := buildCollection()
	s := NewScorer(c, ScorerConfig{})
	// Element 2 appears once, element 0 in every object: rarer is heavier.
	if s.IDF(2) <= s.IDF(0) {
		t.Errorf("idf(rare)=%f should exceed idf(common)=%f", s.IDF(2), s.IDF(0))
	}
	if s.IDF(99) != 0 {
		t.Error("unseen element should have zero idf")
	}
}

func TestScoreComponents(t *testing.T) {
	c := buildCollection()
	full := NewScorer(c, ScorerConfig{TemporalWeight: 1})
	q := model.Query{Interval: model.Interval{Start: 0, End: 99}, Elems: []model.ElemID{0}}
	// Purely temporal: the fully-overlapping object must outscore the
	// partially overlapping one.
	sFull := full.Score(&c.Objects[0], &q)
	sPart := full.Score(&c.Objects[2], &q)
	if sFull <= sPart {
		t.Errorf("full overlap %f should beat partial %f", sFull, sPart)
	}
	if sFull < 0.99 || sFull > 1.01 {
		t.Errorf("full temporal overlap should score ~1, got %f", sFull)
	}
	// Purely IDF: rare-element queries score higher.
	idf := NewScorer(c, ScorerConfig{DisableTemporal: true})
	qRare := model.Query{Interval: q.Interval, Elems: []model.ElemID{2}}
	if idf.Score(&c.Objects[1], &qRare) <= idf.Score(&c.Objects[1], &q) {
		t.Error("rare-element query should outscore common-element query")
	}
	// Scores stay in [0, 1].
	for i := range c.Objects {
		for _, w := range []float64{0.01, 0.3, 1} {
			s := NewScorer(c, ScorerConfig{TemporalWeight: w})
			v := s.Score(&c.Objects[i], &q)
			if v < 0 || v > 1+1e-9 {
				t.Fatalf("score %f out of [0,1]", v)
			}
		}
	}
}

func TestTopKAgainstFullSort(t *testing.T) {
	cfg := testutil.DefaultConfig(71)
	c := testutil.RandomCollection(cfg)
	ix := bruteforce.New(c)
	s := NewScorer(c, ScorerConfig{})
	for i, q := range testutil.RandomQueries(cfg, 80, 72) {
		for _, k := range []int{1, 3, 10, 1000} {
			got := TopK(ix, c, s, q, k)
			// Oracle: score all matches, sort fully.
			var want []Result
			for _, id := range ix.Query(q) {
				want = append(want, Result{ID: id, Score: s.Score(&c.Objects[id], &q)})
			}
			sort.SliceStable(want, func(a, b int) bool {
				if want[a].Score != want[b].Score {
					return want[a].Score > want[b].Score
				}
				return want[a].ID < want[b].ID
			})
			if len(want) > k {
				want = want[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("query %d k=%d: got %d results, want %d", i, k, len(got), len(want))
			}
			for j := range want {
				if got[j].ID != want[j].ID || math.Abs(got[j].Score-want[j].Score) > 1e-12 {
					t.Fatalf("query %d k=%d pos %d: got %+v, want %+v", i, k, j, got[j], want[j])
				}
			}
		}
	}
}

func TestTopKWithRealIndex(t *testing.T) {
	cfg := testutil.DefaultConfig(73)
	c := testutil.RandomCollection(cfg)
	ix := core.NewPerf(c, core.WithM(6))
	s := NewScorer(c, ScorerConfig{})
	q := testutil.RandomQueries(cfg, 1, 74)[0]
	got := TopK(ix, c, s, q, 5)
	oracle := TopK(bruteforce.New(c), c, s, q, 5)
	if len(got) != len(oracle) {
		t.Fatalf("got %d, oracle %d", len(got), len(oracle))
	}
	for i := range got {
		if got[i].ID != oracle[i].ID {
			t.Fatalf("pos %d: %d vs %d", i, got[i].ID, oracle[i].ID)
		}
	}
}

// The top-k prefix property: TopK(k1) must be a prefix of TopK(k2) for
// k1 < k2 (with the deterministic score/id tiebreak).
func TestTopKPrefixProperty(t *testing.T) {
	cfg := testutil.DefaultConfig(75)
	c := testutil.RandomCollection(cfg)
	ix := bruteforce.New(c)
	s := NewScorer(c, ScorerConfig{})
	for _, q := range testutil.RandomQueries(cfg, 40, 76) {
		big := TopK(ix, c, s, q, 20)
		for _, k := range []int{1, 5, 10} {
			small := TopK(ix, c, s, q, k)
			limit := k
			if limit > len(big) {
				limit = len(big)
			}
			if len(small) != limit {
				t.Fatalf("k=%d: got %d results, want %d", k, len(small), limit)
			}
			for i := range small {
				if small[i] != big[i] {
					t.Fatalf("k=%d pos %d: %+v vs %+v", k, i, small[i], big[i])
				}
			}
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	c := buildCollection()
	ix := bruteforce.New(c)
	s := NewScorer(c, ScorerConfig{})
	q := model.Query{Interval: model.Interval{Start: 0, End: 99}, Elems: []model.ElemID{0}}
	if got := TopK(ix, c, s, q, 0); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	empty := model.Query{Interval: model.Interval{Start: 500, End: 600}, Elems: []model.ElemID{0}}
	if got := TopK(ix, c, s, empty, 3); len(got) != 0 {
		t.Errorf("empty result set returned %v", got)
	}
	// Descending scores.
	got := TopK(ix, c, s, q, 10)
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatal("results not in descending score order")
		}
	}
}
