package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bruteforce"
	"repro/internal/model"
	"repro/internal/testutil"
)

// Property: for any m and any random workload shape, both irHINT variants
// agree with the brute-force oracle.
func TestVariantsQuick(t *testing.T) {
	f := func(mRaw uint8, seed int64, q0, q1 uint16, e0, e1 uint8) bool {
		m := int(mRaw%9) + 1
		cfg := testutil.CollectionConfig{N: 150, DomainLo: 0, DomainHi: 4000, Dict: 20, MaxDesc: 5, Seed: seed}
		c := testutil.RandomCollection(cfg)
		oracle := bruteforce.New(c)
		perf := NewPerf(c, WithM(m))
		size := NewSize(c, WithM(m))
		q := model.Query{
			Interval: model.Canon(model.Timestamp(q0)%4001, model.Timestamp(q1)%4001),
			Elems:    model.NormalizeElems([]model.ElemID{model.ElemID(e0) % 20, model.ElemID(e1) % 20}),
		}
		want := testutil.Canonical(oracle.Query(q))
		return model.EqualIDs(testutil.Canonical(perf.Query(q)), want) &&
			model.EqualIDs(testutil.Canonical(size.Query(q)), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: findElem agrees with a linear scan for any sorted directory.
func TestFindElemQuick(t *testing.T) {
	f := func(raw []uint16, probe uint16) bool {
		elems := make([]model.ElemID, 0, len(raw))
		for _, v := range raw {
			elems = append(elems, model.ElemID(v))
		}
		elems = model.NormalizeElems(elems)
		pos, found := findElem(elems, model.ElemID(probe))
		wantFound := false
		wantPos := len(elems)
		for i, e := range elems {
			if e >= model.ElemID(probe) {
				wantPos = i
				wantFound = e == model.ElemID(probe)
				break
			}
		}
		return pos == wantPos && found == wantFound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the perf variant's entry count equals description postings
// times the interval's partition count — i.e. the redundancy the size
// variant removes is exactly |d| per division.
func TestEntryCountRelationship(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		cfg := testutil.CollectionConfig{
			N: 100, DomainLo: 0, DomainHi: 2000, Dict: 15,
			MaxDesc: 1 + rng.Intn(6), Seed: int64(trial),
		}
		c := testutil.RandomCollection(cfg)
		perf := NewPerf(c, WithM(5))
		size := NewSize(c, WithM(5))
		// size stores per division: 1 interval + |d| ids; perf stores |d|
		// postings. With every object having |d| >= 1, perf >= size's
		// interval entries and the inverted id counts match perf exactly.
		var sizeIvals, sizeIDs int64
		for l := range size.levels {
			for _, p := range size.levels[l].parts {
				sizeIvals += int64(len(p.o.ivals) + len(p.r.ivals))
				for i := range p.o.lists {
					sizeIDs += int64(len(p.o.lists[i]))
				}
				for i := range p.r.lists {
					sizeIDs += int64(len(p.r.lists[i]))
				}
			}
		}
		if perf.EntryCount() != sizeIDs {
			t.Fatalf("trial %d: perf entries %d != size inverted ids %d",
				trial, perf.EntryCount(), sizeIDs)
		}
		if size.EntryCount() != sizeIvals+sizeIDs {
			t.Fatalf("trial %d: size EntryCount inconsistent", trial)
		}
	}
}
