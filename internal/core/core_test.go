package core

import (
	"testing"

	"repro/internal/model"
	"repro/internal/testutil"
)

func runningExample() *model.Collection {
	var c model.Collection
	c.AppendObject(model.Interval{Start: 10, End: 15}, []model.ElemID{0, 1, 2}) // o1
	c.AppendObject(model.Interval{Start: 2, End: 5}, []model.ElemID{0, 2})      // o2
	c.AppendObject(model.Interval{Start: 0, End: 2}, []model.ElemID{1})         // o3
	c.AppendObject(model.Interval{Start: 0, End: 15}, []model.ElemID{0, 1, 2})  // o4
	c.AppendObject(model.Interval{Start: 3, End: 7}, []model.ElemID{1, 2})      // o5
	c.AppendObject(model.Interval{Start: 2, End: 11}, []model.ElemID{2})        // o6
	c.AppendObject(model.Interval{Start: 4, End: 14}, []model.ElemID{0, 2})     // o7
	c.AppendObject(model.Interval{Start: 2, End: 3}, []model.ElemID{2})         // o8
	return &c
}

var exampleQuery = model.Query{Interval: model.Interval{Start: 4, End: 6}, Elems: []model.ElemID{0, 2}}
var exampleWant = []model.ObjectID{1, 3, 6}

var variants = []struct {
	name  string
	build func(c *model.Collection, opts ...Option) testutil.UpdatableIndex
}{
	{"perf", func(c *model.Collection, opts ...Option) testutil.UpdatableIndex { return NewPerf(c, opts...) }},
	{"size", func(c *model.Collection, opts ...Option) testutil.UpdatableIndex { return NewSize(c, opts...) }},
}

func TestRunningExample(t *testing.T) {
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			// m = 3 matches the Figure 6 partitioning.
			ix := v.build(runningExample(), WithM(3))
			got := testutil.Canonical(ix.Query(exampleQuery))
			if !model.EqualIDs(got, exampleWant) {
				t.Errorf("got %v, want %v", got, exampleWant)
			}
		})
	}
}

func TestNoDuplicatesAcrossDivisions(t *testing.T) {
	// o4 spans the whole domain, appearing in divisions at several
	// levels; a covering query must report it exactly once.
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			ix := v.build(runningExample(), WithM(3))
			got := ix.Query(model.Query{Interval: model.Interval{Start: 0, End: 15}, Elems: []model.ElemID{2}})
			seen := map[model.ObjectID]int{}
			for _, id := range got {
				seen[id]++
			}
			for id, n := range seen {
				if n > 1 {
					t.Errorf("id %d reported %d times", id, n)
				}
			}
			want := []model.ObjectID{0, 1, 3, 4, 5, 6, 7}
			if !model.EqualIDs(testutil.Canonical(got), want) {
				t.Errorf("got %v, want %v", testutil.Canonical(got), want)
			}
		})
	}
}

func TestOracleEquivalenceAcrossM(t *testing.T) {
	for _, v := range variants {
		for _, m := range []int{1, 2, 4, 7, 10} {
			for seed := int64(0); seed < 3; seed++ {
				cfg := testutil.DefaultConfig(seed)
				c := testutil.RandomCollection(cfg)
				ix := v.build(c, WithM(m))
				testutil.CheckAgainstOracle(t, v.name, ix, c,
					testutil.RandomQueries(cfg, 120, seed+int64(m)*17))
			}
		}
	}
}

func TestCostModelDefault(t *testing.T) {
	cfg := testutil.DefaultConfig(2)
	c := testutil.RandomCollection(cfg)
	perf := NewPerf(c)
	size := NewSize(c)
	if perf.M() < 1 || size.M() < 1 {
		t.Fatalf("cost-model m: perf=%d size=%d", perf.M(), size.M())
	}
	testutil.CheckAgainstOracle(t, "perf/costmodel", perf, c, testutil.RandomQueries(cfg, 100, 3))
	testutil.CheckAgainstOracle(t, "size/costmodel", size, c, testutil.RandomQueries(cfg, 100, 3))
}

func TestUpdates(t *testing.T) {
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := testutil.DefaultConfig(51)
			testutil.CheckUpdates(t, v.name, func(c *model.Collection) testutil.UpdatableIndex {
				return v.build(c, WithM(5))
			}, cfg)
		})
	}
}

func TestTemporalOnly(t *testing.T) {
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			ix := v.build(runningExample(), WithM(3))
			got := testutil.Canonical(ix.Query(model.Query{Interval: model.Interval{Start: 0, End: 0}}))
			want := []model.ObjectID{2, 3}
			if !model.EqualIDs(got, want) {
				t.Errorf("got %v, want %v", got, want)
			}
		})
	}
}

func TestSizeVariantSmallerThanPerf(t *testing.T) {
	// The whole point of Section 4.2: with multi-element descriptions the
	// size variant stores each interval once per division instead of once
	// per element per division.
	cfg := testutil.DefaultConfig(12)
	cfg.MaxDesc = 10
	c := testutil.RandomCollection(cfg)
	perf := NewPerf(c, WithM(6))
	size := NewSize(c, WithM(6))
	if size.SizeBytes() >= perf.SizeBytes() {
		t.Errorf("size variant (%d bytes) should be smaller than perf (%d bytes)",
			size.SizeBytes(), perf.SizeBytes())
	}
	if perf.EntryCount() <= 0 || size.EntryCount() <= 0 {
		t.Error("EntryCount must be positive")
	}
}

func TestDoubleDelete(t *testing.T) {
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			c := runningExample()
			ix := v.build(c, WithM(3))
			o := c.Objects[3]
			ix.Delete(o)
			lenAfter := ix.(interface{ Len() int }).Len()
			ix.Delete(o)
			if got := ix.(interface{ Len() int }).Len(); got != lenAfter {
				t.Errorf("double delete changed Len: %d -> %d", lenAfter, got)
			}
			got := testutil.Canonical(ix.Query(exampleQuery))
			want := []model.ObjectID{1, 6}
			if !model.EqualIDs(got, want) {
				t.Errorf("got %v, want %v", got, want)
			}
		})
	}
}

func TestUnknownElement(t *testing.T) {
	for _, v := range variants {
		ix := v.build(runningExample(), WithM(3))
		if got := ix.Query(model.Query{Interval: model.Interval{Start: 0, End: 15}, Elems: []model.ElemID{42}}); len(got) != 0 {
			t.Errorf("%s: unknown element returned %v", v.name, got)
		}
	}
}

func TestInsertBeyondDomain(t *testing.T) {
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			ix := v.build(runningExample(), WithM(3))
			ix.Insert(model.Object{ID: 8, Interval: model.Interval{Start: 100, End: 200}, Elems: []model.ElemID{2}})
			got := testutil.Canonical(ix.Query(model.Query{
				Interval: model.Interval{Start: 150, End: 160}, Elems: []model.ElemID{2},
			}))
			if !model.EqualIDs(got, []model.ObjectID{8}) {
				t.Errorf("got %v, want [8]", got)
			}
			// Reported exactly once on a covering query.
			got = ix.Query(model.Query{Interval: model.Interval{Start: 0, End: 300}, Elems: []model.ElemID{2}})
			seen := map[model.ObjectID]int{}
			for _, id := range got {
				seen[id]++
			}
			if seen[8] != 1 {
				t.Errorf("beyond-domain object reported %d times", seen[8])
			}
		})
	}
}

func TestTemporalOnlyAfterDeletes(t *testing.T) {
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			c := runningExample()
			ix := v.build(c, WithM(3))
			ix.Delete(c.Objects[2]) // o3 covers t=0
			got := testutil.Canonical(ix.Query(model.Query{Interval: model.Interval{Start: 0, End: 0}}))
			want := []model.ObjectID{3}
			if !model.EqualIDs(got, want) {
				t.Errorf("got %v, want %v", got, want)
			}
		})
	}
}

func TestEmptyCollection(t *testing.T) {
	var c model.Collection
	perf := NewPerf(&c)
	size := NewSize(&c)
	q := model.Query{Interval: model.Interval{Start: 0, End: 10}, Elems: []model.ElemID{0}}
	if got := perf.Query(q); len(got) != 0 {
		t.Errorf("perf returned %v", got)
	}
	if got := size.Query(q); len(got) != 0 {
		t.Errorf("size returned %v", got)
	}
}
