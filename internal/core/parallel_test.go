package core

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/testutil"
)

type queryPer interface {
	testutil.UpdatableIndex
	QueryP(q model.Query, pool *exec.Pool) []model.ObjectID
}

// TestQueryPMatchesSerial checks that both irHINT variants' parallel
// paths return the serial result set — including after deletions, with
// empty term lists, and with unknown elements — across pool widths.
func TestQueryPMatchesSerial(t *testing.T) {
	builders := []struct {
		name  string
		build func(c *model.Collection) queryPer
	}{
		{"perf", func(c *model.Collection) queryPer { return NewPerf(c) }},
		{"size", func(c *model.Collection) queryPer { return NewSize(c) }},
	}
	pools := []*exec.Pool{nil, exec.NewPool(1), exec.NewPool(4), exec.NewPool(9)}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			cfg := testutil.DefaultConfig(73)
			c := testutil.RandomCollection(cfg)
			ix := b.build(c)
			for i := 10; i < 60; i++ {
				ix.Delete(c.Objects[i])
			}
			queries := testutil.RandomQueries(cfg, 150, 74)
			queries = append(queries,
				model.Query{Interval: model.NewInterval(cfg.DomainLo, cfg.DomainHi)},
				model.Query{Interval: model.NewInterval(cfg.DomainLo, cfg.DomainHi), Elems: []model.ElemID{0, 1}},
				model.Query{Interval: model.NewInterval(0, 10), Elems: []model.ElemID{model.ElemID(cfg.Dict + 5)}},
			)
			for qi, q := range queries {
				serial := testutil.Canonical(ix.Query(q))
				for pi, pool := range pools {
					got := testutil.Canonical(ix.QueryP(q, pool))
					if !model.EqualIDs(got, serial) {
						t.Fatalf("%s query %d pool %d: parallel %d ids, serial %d ids",
							b.name, qi, pi, len(got), len(serial))
					}
				}
			}
		})
	}
}
