package core

import (
	"sort"

	"repro/internal/model"
	"repro/internal/postings"
)

// divIF is the per-division temporal inverted file of the performance
// variant (Table 2: the I^O / I^R indices): a sorted element directory
// with parallel id-sorted postings lists.
type divIF struct {
	elems []model.ElemID
	lists [][]postings.Posting
}

// findElem locates e in the sorted element directory: a linear scan for
// the short directories that dominate deep hierarchy levels, binary search
// otherwise. Profiling shows the sort.Search closure here dominates
// Algorithm 5's query cost, hence the manual loops.
func findElem(elems []model.ElemID, e model.ElemID) (int, bool) {
	if len(elems) <= 8 {
		for i, have := range elems {
			if have >= e {
				return i, have == e
			}
		}
		return len(elems), false
	}
	lo, hi := 0, len(elems)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if elems[mid] < e {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(elems) && elems[lo] == e
}

// list returns the postings list for element e, or nil.
func (d *divIF) list(e model.ElemID) []postings.Posting {
	if i, ok := findElem(d.elems, e); ok {
		return d.lists[i]
	}
	return nil
}

// insert appends the posting to element e's list, creating it if needed.
// Ids arriving in increasing order keep lists sorted; out-of-order ids use
// a positioned insert.
func (d *divIF) insert(e model.ElemID, p postings.Posting) {
	i, found := findElem(d.elems, e)
	if !found {
		d.elems = append(d.elems, 0)
		d.lists = append(d.lists, nil)
		copy(d.elems[i+1:], d.elems[i:])
		copy(d.lists[i+1:], d.lists[i:])
		d.elems[i] = e
		d.lists[i] = nil
	}
	l := d.lists[i]
	if n := len(l); n == 0 || l[n-1].ID < p.ID {
		d.lists[i] = append(l, p)
		return
	}
	k := sort.Search(len(l), func(k int) bool { return l[k].ID > p.ID })
	l = append(l, postings.Posting{})
	copy(l[k+1:], l[k:])
	l[k] = p
	d.lists[i] = l
}

// kill tombstones object id in element e's list; reports whether a live
// entry was found.
func (d *divIF) kill(e model.ElemID, id model.ObjectID) bool {
	i, found := findElem(d.elems, e)
	if !found {
		return false
	}
	l := d.lists[i]
	k := sort.Search(len(l), func(k int) bool { return l[k].ID >= id })
	if k < len(l) && l[k].ID == id && !postings.IsTombstone(l[k].Interval) {
		l[k].Interval = postings.Tombstone
		return true
	}
	return false
}

// query runs the reduced time-travel IR query of Algorithm 5 on this
// division: Algorithm 1 with the temporal predicate trimmed to the checks
// the division's obligations require. The plan is pre-ordered by global
// frequency; results append to dst in id order per division. scratch is a
// reusable candidate buffer (grown as needed and returned) so that
// traversals over many small divisions do not allocate per division.
func (d *divIF) query(q model.Query, plan []model.ElemID, checkStart, checkEnd bool, scratch, dst []model.ObjectID) ([]model.ObjectID, []model.ObjectID) {
	first := d.list(plan[0])
	if first == nil {
		return scratch, dst
	}
	cands := scratch[:0]
	for i := range first {
		p := &first[i]
		if postings.IsTombstone(p.Interval) {
			continue
		}
		if checkStart && p.Interval.End < q.Interval.Start {
			continue
		}
		if checkEnd && p.Interval.Start > q.Interval.End {
			continue
		}
		cands = append(cands, p.ID)
	}
	for _, e := range plan[1:] {
		if len(cands) == 0 {
			return cands, dst
		}
		l := d.list(e)
		if l == nil {
			return cands, dst
		}
		cands = postings.List(l).IntersectAny(cands, cands[:0])
	}
	return cands, append(dst, cands...)
}

// allIDs appends the live ids passing the temporal checks across every
// list, deduplicated within the division (element-less query support).
func (d *divIF) allIDs(q model.Interval, checkStart, checkEnd bool, dst []model.ObjectID) []model.ObjectID {
	start := len(dst)
	for i := range d.lists {
		for k := range d.lists[i] {
			p := &d.lists[i][k]
			if postings.IsTombstone(p.Interval) {
				continue
			}
			if checkStart && p.Interval.End < q.Start {
				continue
			}
			if checkEnd && p.Interval.Start > q.End {
				continue
			}
			dst = append(dst, p.ID)
		}
	}
	tail := dst[start:]
	model.SortIDs(tail)
	return append(dst[:start], model.DedupIDs(tail)...)
}

// entryCount counts stored postings entries (including tombstones).
func (d *divIF) entryCount() int64 {
	var n int64
	for i := range d.lists {
		n += int64(len(d.lists[i]))
	}
	return n
}

// sizeBytes estimates resident bytes: 16-byte postings, 4-byte element
// keys, slice headers.
func (d *divIF) sizeBytes() int64 {
	total := int64(cap(d.elems))*4 + int64(cap(d.lists))*24
	for i := range d.lists {
		total += int64(cap(d.lists[i])) * 16
	}
	return total
}
