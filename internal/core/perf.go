package core

import (
	"repro/internal/dict"
	"repro/internal/domain"
	"repro/internal/hint"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/postings"
)

// perfPart is one partition of the performance variant: a temporal
// inverted file per division (I^O and I^R of Table 2).
type perfPart struct {
	o divIF
	r divIF
}

// PerfIndex is the performance-focused irHINT variant (Section 4.1 /
// Algorithm 5).
type PerfIndex struct {
	dom    domain.Domain
	levels []directory[perfPart]
	freqs  []int
	live   int
}

// NewPerf builds the performance irHINT over a collection. Without a
// WithM option, m comes from the HINT cost model (Section 5.4 reports the
// model works well here because of the time-first design).
func NewPerf(c *model.Collection, opts ...Option) *PerfIndex {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	dom := resolveDomain(c, cfg)
	ix := &PerfIndex{
		dom:    dom,
		levels: make([]directory[perfPart], dom.M+1),
		freqs:  make([]int, c.DictSize),
	}
	for i := range c.Objects {
		ix.Insert(c.Objects[i])
	}
	return ix
}

// Domain exposes the discretization (testing and tooling hook).
func (ix *PerfIndex) Domain() domain.Domain { return ix.dom }

// M returns the hierarchy bits.
func (ix *PerfIndex) M() int { return ix.dom.M }

// Len returns the number of live objects.
func (ix *PerfIndex) Len() int { return ix.live }

// Insert routes the object through the HINT assignment and adds one entry
// per element to the inverted file of every division it lands in (the
// construction process of Section 4.1).
func (ix *PerfIndex) Insert(o model.Object) {
	p := postings.Posting{ID: o.ID, Interval: o.Interval}
	hint.Assign(ix.dom, o.Interval, func(level int, j uint32, original, _ bool) {
		part := ix.levels[level].getOrCreate(j)
		div := &part.o
		if !original {
			div = &part.r
		}
		for _, e := range o.Elems {
			div.insert(e, p)
		}
	})
	for _, e := range o.Elems {
		ix.growTo(int(e) + 1)
		ix.freqs[e]++
	}
	ix.live++
}

// Delete locates the object's divisions via the assignment and tombstones
// its entry in each element list there.
func (ix *PerfIndex) Delete(o model.Object) {
	found := false
	hint.Assign(ix.dom, o.Interval, func(level int, j uint32, original, _ bool) {
		part := ix.levels[level].get(j)
		if part == nil {
			return
		}
		div := &part.o
		if !original {
			div = &part.r
		}
		for _, e := range o.Elems {
			if div.kill(e, o.ID) {
				found = true
			}
		}
	})
	if found {
		for _, e := range o.Elems {
			if int(e) < len(ix.freqs) {
				ix.freqs[e]--
			}
		}
		ix.live--
	}
}

func (ix *PerfIndex) growTo(n int) {
	for len(ix.freqs) < n {
		ix.freqs = append(ix.freqs, 0)
	}
}

// Query implements Algorithm 5: bottom-up traversal with the temporal
// flags; each relevant division answers a reduced time-travel IR query on
// its inverted file. HINT's duplicate-avoidance rule makes the division
// outputs disjoint, so no de-duplication step is needed.
func (ix *PerfIndex) Query(q model.Query) []model.ObjectID {
	if len(q.Elems) == 0 {
		return ix.tracedTemporalOnly(q)
	}
	// Algorithm 5 fuses the postings fetch and the intersection per
	// division, so one intersect span covers the whole traversal.
	defer q.Trace.StartStage(obs.StageIntersect).End()
	plan := dict.PlanOrder(q.Elems, ix.freqs)
	var out, scratch []model.ObjectID
	hint.Visit(ix.dom, q.Interval, func(lv hint.LevelVisit) {
		ix.levels[lv.Level].forRange(lv.F, lv.L, func(j uint32, p *perfPart) {
			ob := lv.Oblige(j)
			scratch, out = p.o.query(q, plan, ob.CheckStart, ob.CheckEnd, scratch, out)
			if ob.First {
				// Replicas never need the o.t_st <= q.t_end check.
				scratch, out = p.r.query(q, plan, ob.CheckStart, false, scratch, out)
			}
		})
	})
	return out
}

// tracedTemporalOnly wraps the element-free path in a postings span.
func (ix *PerfIndex) tracedTemporalOnly(q model.Query) []model.ObjectID {
	defer q.Trace.StartStage(obs.StagePostings).End()
	return ix.queryTemporalOnly(q.Interval)
}

func (ix *PerfIndex) queryTemporalOnly(q model.Interval) []model.ObjectID {
	var out []model.ObjectID
	hint.Visit(ix.dom, q, func(lv hint.LevelVisit) {
		ix.levels[lv.Level].forRange(lv.F, lv.L, func(j uint32, p *perfPart) {
			ob := lv.Oblige(j)
			out = p.o.allIDs(q, ob.CheckStart, ob.CheckEnd, out)
			if ob.First {
				out = p.r.allIDs(q, ob.CheckStart, false, out)
			}
		})
	})
	return out
}

// SizeBytes estimates resident size across all division inverted files —
// the redundancy Section 4.2 motivates the size variant with (each
// object's interval is stored once per element per division).
func (ix *PerfIndex) SizeBytes() int64 {
	var total int64
	for l := range ix.levels {
		d := &ix.levels[l]
		total += int64(cap(d.keys))*4 + int64(cap(d.parts))*8
		for _, p := range d.parts {
			total += p.o.sizeBytes() + p.r.sizeBytes() + 96
		}
	}
	return total + int64(len(ix.freqs))*8
}

// EntryCount counts stored postings entries across all divisions.
func (ix *PerfIndex) EntryCount() int64 {
	var total int64
	for l := range ix.levels {
		for _, p := range ix.levels[l].parts {
			total += p.o.entryCount() + p.r.entryCount()
		}
	}
	return total
}
