// Package core implements irHINT, the paper's primary contribution
// (Section 4): a single HINT hierarchy over the whole collection whose
// partitions are injected with inverted indexing, so time-travel IR
// queries first prune by time (HINT's strength) and only then touch
// per-division postings.
//
// Two variants are provided, matching Sections 4.1 and 4.2:
//
//   - PerfIndex — every originals/replicas division carries a mini
//     temporal inverted file; each relevant division answers a (reduced)
//     time-travel IR query per Algorithm 5, with the compfirst/complast
//     flags trimming the temporal predicate down to at most one
//     comparison per entry.
//   - SizeIndex — every division decouples the two attributes: one
//     interval store with beneficial sorting (exactly like plain HINT)
//     plus an id-only inverted index. Algorithm 6 range-filters the
//     interval store into per-division candidates and merge-intersects
//     them with the division's postings lists, storing each lifespan once.
package core

import (
	"sort"

	"repro/internal/domain"
	"repro/internal/hint"
	"repro/internal/model"
)

// directory is the sorted per-level map of populated partitions, shared by
// both variants (HINT's sparsity handling).
type directory[P any] struct {
	keys  []uint32
	parts []*P
}

func (d *directory[P]) get(j uint32) *P {
	i := sort.Search(len(d.keys), func(i int) bool { return d.keys[i] >= j })
	if i < len(d.keys) && d.keys[i] == j {
		return d.parts[i]
	}
	return nil
}

func (d *directory[P]) getOrCreate(j uint32) *P {
	i := sort.Search(len(d.keys), func(i int) bool { return d.keys[i] >= j })
	if i < len(d.keys) && d.keys[i] == j {
		return d.parts[i]
	}
	d.keys = append(d.keys, 0)
	d.parts = append(d.parts, nil)
	copy(d.keys[i+1:], d.keys[i:])
	copy(d.parts[i+1:], d.parts[i:])
	d.keys[i] = j
	p := new(P)
	d.parts[i] = p
	return p
}

func (d *directory[P]) forRange(f, l uint32, fn func(j uint32, p *P)) {
	i := sort.Search(len(d.keys), func(i int) bool { return d.keys[i] >= f })
	for ; i < len(d.keys) && d.keys[i] <= l; i++ {
		fn(d.keys[i], d.parts[i])
	}
}

// Option configures the irHINT constructors.
type Option func(*config)

type config struct {
	m         int
	costModel bool
}

// WithM fixes the hierarchy bits. Without it the constructors run the
// HINT cost model, which Section 5.4 found effective for irHINT thanks to
// its time-first design.
func WithM(m int) Option {
	return func(c *config) {
		if m > 0 {
			c.m = m
		}
	}
}

// resolveDomain picks the discretization domain: collection span, with m
// fixed or derived from the cost model.
func resolveDomain(c *model.Collection, cfg config) domain.Domain {
	span, ok := c.Span()
	if !ok {
		span = model.NewInterval(0, 0)
	}
	m := cfg.m
	if m == 0 {
		ivs := make([]model.Interval, len(c.Objects))
		for i := range c.Objects {
			ivs[i] = c.Objects[i].Interval
		}
		mc := hint.DefaultCostModelConfig()
		mc.MaxM = 16
		// irHINT pays more per relevant division than plain HINT: every
		// division visit probes an element directory (two divisions per
		// partition), so the per-partition overhead is several times the
		// cache-line cost the plain-HINT default models.
		mc.PartitionOverhead = 160
		m = hint.EstimateM(ivs, span, mc)
	}
	if m > domain.MaxBits {
		m = domain.MaxBits
	}
	for m > 1 && int64(1)<<uint(m) > int64(span.End-span.Start)+1 {
		m--
	}
	d, _ := domain.Make(span.Start, span.End, m)
	return d
}
