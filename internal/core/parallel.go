package core

import (
	"repro/internal/dict"
	"repro/internal/domain"
	"repro/internal/exec"
	"repro/internal/hint"
	"repro/internal/model"
	"repro/internal/obs"
)

// Parallel query paths for the two irHINT variants. Both algorithms emit
// per-division outputs that are disjoint (HINT's duplicate-avoidance rule
// plus the ob.First replica gate), so chunked division scans concatenate
// into a duplicate-free answer with no merge step; only the output order
// changes versus the serial traversal.

// parallelCutoff is the minimum relevant-partition count worth fanning.
const parallelCutoff = 8

// parallelMinPer is the smallest per-chunk partition count.
const parallelMinPer = 2

// relevantOf collects the relevant partitions with their obligations —
// the serial prologue shared by both variants' fan-outs.
func relevantOf[P any](dom domain.Domain, levels []directory[P], q model.Interval) (parts []*P, obls []hint.Obligations) {
	hint.Visit(dom, q, func(lv hint.LevelVisit) {
		levels[lv.Level].forRange(lv.F, lv.L, func(j uint32, p *P) {
			parts = append(parts, p)
			obls = append(obls, lv.Oblige(j))
		})
	})
	return parts, obls
}

// QueryP is Query with the per-division reduced queries fanned across the
// pool. Results equal Query as a set.
func (ix *PerfIndex) QueryP(q model.Query, pool *exec.Pool) []model.ObjectID {
	if len(q.Elems) == 0 {
		return ix.tracedTemporalOnlyP(q, pool)
	}
	parts, obls := relevantOf(ix.dom, ix.levels, q.Interval)
	if pool == nil || pool.Workers() <= 1 || len(parts) < parallelCutoff {
		return ix.Query(q)
	}
	defer q.Trace.StartStage(obs.StageIntersect).End()
	plan := dict.PlanOrder(q.Elems, ix.freqs)
	partials := exec.MapChunks(pool, len(parts), parallelMinPer, func(lo, hi int) []model.ObjectID {
		var out, scratch []model.ObjectID
		for i := lo; i < hi; i++ {
			p, ob := parts[i], obls[i]
			scratch, out = p.o.query(q, plan, ob.CheckStart, ob.CheckEnd, scratch, out)
			if ob.First {
				scratch, out = p.r.query(q, plan, ob.CheckStart, false, scratch, out)
			}
		}
		return out
	})
	var out []model.ObjectID
	for _, b := range partials {
		out = append(out, b...)
	}
	return out
}

// tracedTemporalOnlyP wraps the element-free fan-out in a postings span.
func (ix *PerfIndex) tracedTemporalOnlyP(q model.Query, pool *exec.Pool) []model.ObjectID {
	defer q.Trace.StartStage(obs.StagePostings).End()
	return ix.queryTemporalOnlyP(q.Interval, pool)
}

func (ix *PerfIndex) queryTemporalOnlyP(q model.Interval, pool *exec.Pool) []model.ObjectID {
	parts, obls := relevantOf(ix.dom, ix.levels, q)
	if pool == nil || pool.Workers() <= 1 || len(parts) < parallelCutoff {
		return ix.queryTemporalOnly(q)
	}
	partials := exec.MapChunks(pool, len(parts), parallelMinPer, func(lo, hi int) []model.ObjectID {
		var out []model.ObjectID
		for i := lo; i < hi; i++ {
			p, ob := parts[i], obls[i]
			out = p.o.allIDs(q, ob.CheckStart, ob.CheckEnd, out)
			if ob.First {
				out = p.r.allIDs(q, ob.CheckStart, false, out)
			}
		}
		return out
	})
	var out []model.ObjectID
	for _, b := range partials {
		out = append(out, b...)
	}
	return out
}

// QueryP is Query with the per-division filter+intersect steps fanned
// across the pool, each chunk carrying its own candidate buffer.
func (ix *SizeIndex) QueryP(q model.Query, pool *exec.Pool) []model.ObjectID {
	if len(q.Elems) == 0 {
		return ix.tracedTemporalOnlyP(q, pool)
	}
	parts, obls := relevantOf(ix.dom, ix.levels, q.Interval)
	if pool == nil || pool.Workers() <= 1 || len(parts) < parallelCutoff {
		return ix.Query(q)
	}
	defer q.Trace.StartStage(obs.StageIntersect).End()
	plan := dict.PlanOrder(q.Elems, ix.freqs)
	partials := exec.MapChunks(pool, len(parts), parallelMinPer, func(lo, hi int) []model.ObjectID {
		var out, cbuf []model.ObjectID
		for i := lo; i < hi; i++ {
			p, ob := parts[i], obls[i]
			if p.o.list(plan[0]) != nil {
				cbuf = filterOriginals(p.o.ivals, ob.CheckStart, ob.CheckEnd, q.Interval, cbuf[:0])
				out = intersectDiv(&p.o, cbuf, plan, out)
			}
			if ob.First && p.r.list(plan[0]) != nil {
				cbuf = filterReplicas(p.r.ivals, ob.CheckStart, q.Interval, cbuf[:0])
				out = intersectDiv(&p.r, cbuf, plan, out)
			}
		}
		return out
	})
	var out []model.ObjectID
	for _, b := range partials {
		out = append(out, b...)
	}
	return out
}

// tracedTemporalOnlyP wraps the element-free fan-out in a postings span.
func (ix *SizeIndex) tracedTemporalOnlyP(q model.Query, pool *exec.Pool) []model.ObjectID {
	defer q.Trace.StartStage(obs.StagePostings).End()
	return ix.queryTemporalOnlyP(q.Interval, pool)
}

func (ix *SizeIndex) queryTemporalOnlyP(q model.Interval, pool *exec.Pool) []model.ObjectID {
	parts, obls := relevantOf(ix.dom, ix.levels, q)
	if pool == nil || pool.Workers() <= 1 || len(parts) < parallelCutoff {
		return ix.queryTemporalOnly(q)
	}
	partials := exec.MapChunks(pool, len(parts), parallelMinPer, func(lo, hi int) []model.ObjectID {
		var out []model.ObjectID
		for i := lo; i < hi; i++ {
			p, ob := parts[i], obls[i]
			out = filterOriginals(p.o.ivals, ob.CheckStart, ob.CheckEnd, q, out)
			if ob.First {
				out = filterReplicas(p.r.ivals, ob.CheckStart, q, out)
			}
		}
		return out
	})
	var out []model.ObjectID
	for _, b := range partials {
		out = append(out, b...)
	}
	return out
}
