package core

import (
	"sort"

	"repro/internal/dict"
	"repro/internal/domain"
	"repro/internal/hint"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/postings"
)

// sizeDiv is one division of the size variant: the interval store (each
// lifespan exactly once, beneficially sorted — by start for originals, by
// end for replicas) plus an id-only inverted index.
type sizeDiv struct {
	ivals []postings.Posting
	elems []model.ElemID
	lists [][]model.ObjectID
}

// sizePart is one partition: originals and replicas divisions.
type sizePart struct {
	o sizeDiv
	r sizeDiv
}

// SizeIndex is the size-focused irHINT variant (Section 4.2 /
// Algorithm 6): per division the temporal and description attributes are
// decoupled, so each object's interval is stored once per division
// regardless of its description size, and full HINT beneficial sorting
// applies to the interval store.
type SizeIndex struct {
	dom    domain.Domain
	levels []directory[sizePart]
	freqs  []int
	live   int
}

// NewSize builds the size irHINT over a collection.
func NewSize(c *model.Collection, opts ...Option) *SizeIndex {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	dom := resolveDomain(c, cfg)
	ix := &SizeIndex{
		dom:    dom,
		levels: make([]directory[sizePart], dom.M+1),
		freqs:  make([]int, c.DictSize),
	}
	// Bulk mode: append interval-store entries unsorted, one sort per
	// division afterwards (sorted insertion would be quadratic in the
	// root partitions of long-interval datasets).
	for i := range c.Objects {
		ix.place(&c.Objects[i], true)
	}
	for l := range ix.levels {
		for _, p := range ix.levels[l].parts {
			sort.Slice(p.o.ivals, func(a, b int) bool {
				return p.o.ivals[a].Interval.Start < p.o.ivals[b].Interval.Start
			})
			sort.Slice(p.r.ivals, func(a, b int) bool {
				return p.r.ivals[a].Interval.End < p.r.ivals[b].Interval.End
			})
		}
	}
	return ix
}

// Domain exposes the discretization.
func (ix *SizeIndex) Domain() domain.Domain { return ix.dom }

// M returns the hierarchy bits.
func (ix *SizeIndex) M() int { return ix.dom.M }

// Len returns the number of live objects.
func (ix *SizeIndex) Len() int { return ix.live }

// Insert routes the object and adds, per division: one interval-store
// entry plus one id per element in the division's inverted index.
func (ix *SizeIndex) Insert(o model.Object) {
	ix.place(&o, false)
}

func (ix *SizeIndex) place(o *model.Object, bulk bool) {
	p := postings.Posting{ID: o.ID, Interval: o.Interval}
	hint.Assign(ix.dom, o.Interval, func(level int, j uint32, original, _ bool) {
		part := ix.levels[level].getOrCreate(j)
		div := &part.o
		switch {
		case bulk && original:
			div.ivals = append(div.ivals, p)
		case bulk:
			div = &part.r
			div.ivals = append(div.ivals, p)
		case original:
			div.ivals = insertSortedBy(div.ivals, p, byStart)
		default:
			div = &part.r
			div.ivals = insertSortedBy(div.ivals, p, byEnd)
		}
		for _, e := range o.Elems {
			div.addElem(e, o.ID)
		}
	})
	for _, e := range o.Elems {
		ix.growTo(int(e) + 1)
		ix.freqs[e]++
	}
	ix.live++
}

func byStart(p postings.Posting) model.Timestamp { return p.Interval.Start }
func byEnd(p postings.Posting) model.Timestamp   { return p.Interval.End }

func insertSortedBy(s []postings.Posting, p postings.Posting, key func(postings.Posting) model.Timestamp) []postings.Posting {
	if n := len(s); n == 0 || key(s[n-1]) <= key(p) {
		return append(s, p)
	}
	i := sort.Search(len(s), func(i int) bool { return key(s[i]) > key(p) })
	s = append(s, postings.Posting{})
	copy(s[i+1:], s[i:])
	s[i] = p
	return s
}

// addElem appends id to element e's id-only postings list.
func (d *sizeDiv) addElem(e model.ElemID, id model.ObjectID) {
	i, found := findElem(d.elems, e)
	if !found {
		d.elems = append(d.elems, 0)
		d.lists = append(d.lists, nil)
		copy(d.elems[i+1:], d.elems[i:])
		copy(d.lists[i+1:], d.lists[i:])
		d.elems[i] = e
		d.lists[i] = nil
	}
	l := d.lists[i]
	if n := len(l); n == 0 || l[n-1] < id {
		d.lists[i] = append(l, id)
		return
	}
	k := sort.Search(len(l), func(k int) bool { return l[k] >= id })
	if k < len(l) && l[k] == id {
		return
	}
	l = append(l, 0)
	copy(l[k+1:], l[k:])
	l[k] = id
	d.lists[i] = l
}

// list returns element e's id list, or nil.
func (d *sizeDiv) list(e model.ElemID) []model.ObjectID {
	if i, ok := findElem(d.elems, e); ok {
		return d.lists[i]
	}
	return nil
}

// Delete locates the interval-store entries via the assignment and sets
// their dead bit. The id-only inverted lists stay untouched: a dead object
// can never enter a candidate set, so its postings are unreachable.
func (ix *SizeIndex) Delete(o model.Object) {
	found := false
	hint.Assign(ix.dom, o.Interval, func(level int, j uint32, original, _ bool) {
		part := ix.levels[level].get(j)
		if part == nil {
			return
		}
		if original {
			found = killSortedBy(part.o.ivals, o, byStart) || found
		} else {
			found = killSortedBy(part.r.ivals, o, byEnd) || found
		}
	})
	if found {
		for _, e := range o.Elems {
			if int(e) < len(ix.freqs) {
				ix.freqs[e]--
			}
		}
		ix.live--
	}
}

func killSortedBy(s []postings.Posting, o model.Object, key func(postings.Posting) model.Timestamp) bool {
	target := key(postings.Posting{ID: o.ID, Interval: o.Interval})
	i := sort.Search(len(s), func(i int) bool { return key(s[i]) >= target })
	for ; i < len(s) && key(s[i]) == target; i++ {
		if postings.LiveID(s[i].ID) == o.ID && !postings.IsDead(s[i].ID) {
			s[i].ID = postings.MarkDead(s[i].ID)
			return true
		}
	}
	return false
}

func (ix *SizeIndex) growTo(n int) {
	for len(ix.freqs) < n {
		ix.freqs = append(ix.freqs, 0)
	}
}

// Query implements Algorithm 6: per relevant division, range-filter the
// interval store into candidates (using the beneficial sorting and the
// division's obligations), sort them by id, and merge-intersect with the
// division's id-only postings list of every query element.
func (ix *SizeIndex) Query(q model.Query) []model.ObjectID {
	if len(q.Elems) == 0 {
		return ix.tracedTemporalOnly(q)
	}
	// Algorithm 6 fuses the range filter and the merge intersection per
	// division, so one intersect span covers the whole traversal.
	defer q.Trace.StartStage(obs.StageIntersect).End()
	plan := dict.PlanOrder(q.Elems, ix.freqs)
	var out []model.ObjectID
	var cbuf []model.ObjectID
	hint.Visit(ix.dom, q.Interval, func(lv hint.LevelVisit) {
		ix.levels[lv.Level].forRange(lv.F, lv.L, func(j uint32, p *sizePart) {
			ob := lv.Oblige(j)
			// Short-circuit: a division whose inverted index lacks the
			// least frequent query element cannot contribute, so the
			// (comparatively expensive) interval range-filter and sort of
			// Algorithm 6 are skipped outright. This preserves Algorithm
			// 6's semantics; it only reorders its two steps.
			if p.o.list(plan[0]) != nil {
				cbuf = filterOriginals(p.o.ivals, ob.CheckStart, ob.CheckEnd, q.Interval, cbuf[:0])
				out = intersectDiv(&p.o, cbuf, plan, out)
			}
			if ob.First && p.r.list(plan[0]) != nil {
				cbuf = filterReplicas(p.r.ivals, ob.CheckStart, q.Interval, cbuf[:0])
				out = intersectDiv(&p.r, cbuf, plan, out)
			}
		})
	})
	return out
}

// filterOriginals collects live candidate ids from a start-sorted
// originals store under the given obligations.
func filterOriginals(s []postings.Posting, checkStart, checkEnd bool, q model.Interval, dst []model.ObjectID) []model.ObjectID {
	cut := len(s)
	if checkEnd {
		cut = sort.Search(len(s), func(i int) bool { return s[i].Interval.Start > q.End })
	}
	for i := 0; i < cut; i++ {
		if checkStart && s[i].Interval.End < q.Start {
			continue
		}
		if !postings.IsDead(s[i].ID) {
			dst = append(dst, s[i].ID)
		}
	}
	return dst
}

// filterReplicas collects live candidate ids from an end-sorted replicas
// store; replicas never need the end-side check.
func filterReplicas(s []postings.Posting, checkStart bool, q model.Interval, dst []model.ObjectID) []model.ObjectID {
	lo := 0
	if checkStart {
		lo = sort.Search(len(s), func(i int) bool { return s[i].Interval.End >= q.Start })
	}
	for i := lo; i < len(s); i++ {
		if !postings.IsDead(s[i].ID) {
			dst = append(dst, s[i].ID)
		}
	}
	return dst
}

// intersectDiv sorts the candidates by id (line 11 of Algorithm 6) and
// intersects them with the division's list of every plan element, then
// appends the survivors to out.
func intersectDiv(d *sizeDiv, cands []model.ObjectID, plan []model.ElemID, out []model.ObjectID) []model.ObjectID {
	if len(cands) == 0 {
		return out
	}
	model.SortIDs(cands)
	for _, e := range plan {
		l := d.list(e)
		if l == nil {
			return out
		}
		cands = postings.IntersectAnySorted(cands, l, cands[:0])
		if len(cands) == 0 {
			return out
		}
	}
	return append(out, cands...)
}

// tracedTemporalOnly wraps the element-free path in a postings span.
func (ix *SizeIndex) tracedTemporalOnly(q model.Query) []model.ObjectID {
	defer q.Trace.StartStage(obs.StagePostings).End()
	return ix.queryTemporalOnly(q.Interval)
}

func (ix *SizeIndex) queryTemporalOnly(q model.Interval) []model.ObjectID {
	var out []model.ObjectID
	hint.Visit(ix.dom, q, func(lv hint.LevelVisit) {
		ix.levels[lv.Level].forRange(lv.F, lv.L, func(j uint32, p *sizePart) {
			ob := lv.Oblige(j)
			out = filterOriginals(p.o.ivals, ob.CheckStart, ob.CheckEnd, q, out)
			if ob.First {
				out = filterReplicas(p.r.ivals, ob.CheckStart, q, out)
			}
		})
	})
	return out
}

// SizeBytes estimates resident size: 16-byte interval entries once per
// division plus 4-byte id postings — the storage saving of Section 4.2.
func (ix *SizeIndex) SizeBytes() int64 {
	var total int64
	for l := range ix.levels {
		d := &ix.levels[l]
		total += int64(cap(d.keys))*4 + int64(cap(d.parts))*8
		for _, p := range d.parts {
			total += divSize(&p.o) + divSize(&p.r) + 96
		}
	}
	return total + int64(len(ix.freqs))*8
}

func divSize(d *sizeDiv) int64 {
	total := int64(cap(d.ivals))*16 + int64(cap(d.elems))*4 + int64(cap(d.lists))*24
	for i := range d.lists {
		total += int64(cap(d.lists[i])) * 4
	}
	return total
}

// EntryCount counts interval entries plus inverted postings.
func (ix *SizeIndex) EntryCount() int64 {
	var total int64
	for l := range ix.levels {
		for _, p := range ix.levels[l].parts {
			total += int64(len(p.o.ivals) + len(p.r.ivals))
			for i := range p.o.lists {
				total += int64(len(p.o.lists[i]))
			}
			for i := range p.r.lists {
				total += int64(len(p.r.lists[i]))
			}
		}
	}
	return total
}
