// Package join implements temporal IR joins — the query type the paper
// names as future work alongside ranking (Section 7). A join pairs
// objects from two collections whose lifespans overlap and whose
// descriptions share at least a requested number of elements (k = 0
// degenerates to a pure interval join, the workload of the HINT line of
// work).
//
// The algorithm is index-driven nested loop: the larger collection is
// indexed with a HINT, each object of the smaller side runs one range
// query, and the element predicate is evaluated with a linear merge over
// the two sorted element sets. This mirrors how the paper's systems
// would compose: temporal pruning first, set predicate second.
package join

import (
	"repro/internal/domain"
	"repro/internal/hint"
	"repro/internal/model"
	"repro/internal/postings"
)

// Pair is one join result: ids from the left and right collections.
type Pair struct {
	Left  model.ObjectID
	Right model.ObjectID
}

// Config tunes Join.
type Config struct {
	// MinShared is the minimum number of common description elements
	// (0 = pure temporal join).
	MinShared int
	// M fixes the HINT bits for the inner index (0 = cost model).
	M int
}

// Join returns all (left, right) pairs with overlapping lifespans and at
// least MinShared common elements. Pairs are emitted grouped by left id;
// within a group the right ids follow the index's traversal order.
func Join(left, right *model.Collection, cfg Config) []Pair {
	if left.Len() == 0 || right.Len() == 0 {
		return nil
	}
	// Index the larger side, probe with the smaller; remember whether the
	// output orientation must flip.
	probe, build, flipped := left, right, false
	if probe.Len() > build.Len() {
		probe, build, flipped = build, probe, true
	}

	span, _ := build.Span()
	if ps, ok := probe.Span(); ok {
		span = span.Union(ps)
	}
	m := cfg.M
	if m <= 0 {
		ivs := make([]model.Interval, len(build.Objects))
		for i := range build.Objects {
			ivs[i] = build.Objects[i].Interval
		}
		m = hint.EstimateM(ivs, span, hint.DefaultCostModelConfig())
	}
	if m > domain.MaxBits {
		m = domain.MaxBits
	}
	dom, err := domain.Make(span.Start, span.End, m)
	if err != nil {
		return nil
	}
	entries := make([]postings.Posting, len(build.Objects))
	for i := range build.Objects {
		entries[i] = postings.Posting{ID: build.Objects[i].ID, Interval: build.Objects[i].Interval}
	}
	ix := hint.Build(dom, entries)

	var out []Pair
	var hits []model.ObjectID
	for i := range probe.Objects {
		po := &probe.Objects[i]
		hits = ix.RangeQuery(po.Interval, hits[:0])
		for _, id := range hits {
			bo := &build.Objects[id]
			if cfg.MinShared > 0 && SharedElements(po.Elems, bo.Elems) < cfg.MinShared {
				continue
			}
			if flipped {
				out = append(out, Pair{Left: bo.ID, Right: po.ID})
			} else {
				out = append(out, Pair{Left: po.ID, Right: bo.ID})
			}
		}
	}
	return out
}

// SharedElements counts common entries of two sorted element sets.
func SharedElements(a, b []model.ElemID) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// SelfJoin returns all unordered pairs (i < j) within one collection with
// overlapping lifespans and at least MinShared common elements — e.g.
// "sessions that ran concurrently and streamed k of the same tracks".
func SelfJoin(c *model.Collection, cfg Config) []Pair {
	if c.Len() == 0 {
		return nil
	}
	span, _ := c.Span()
	m := cfg.M
	if m <= 0 {
		ivs := make([]model.Interval, len(c.Objects))
		for i := range c.Objects {
			ivs[i] = c.Objects[i].Interval
		}
		m = hint.EstimateM(ivs, span, hint.DefaultCostModelConfig())
	}
	if m > domain.MaxBits {
		m = domain.MaxBits
	}
	dom, err := domain.Make(span.Start, span.End, m)
	if err != nil {
		return nil
	}
	entries := make([]postings.Posting, len(c.Objects))
	for i := range c.Objects {
		entries[i] = postings.Posting{ID: c.Objects[i].ID, Interval: c.Objects[i].Interval}
	}
	ix := hint.Build(dom, entries)

	var out []Pair
	var hits []model.ObjectID
	for i := range c.Objects {
		o := &c.Objects[i]
		hits = ix.RangeQuery(o.Interval, hits[:0])
		for _, id := range hits {
			if id <= o.ID {
				continue // emit each unordered pair once
			}
			other := &c.Objects[id]
			if cfg.MinShared > 0 && SharedElements(o.Elems, other.Elems) < cfg.MinShared {
				continue
			}
			out = append(out, Pair{Left: o.ID, Right: id})
		}
	}
	return out
}
