package join

import (
	"sort"
	"testing"

	"repro/internal/model"
	"repro/internal/testutil"
)

func canonPairs(pairs []Pair) []Pair {
	out := append([]Pair(nil), pairs...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Left != out[b].Left {
			return out[a].Left < out[b].Left
		}
		return out[a].Right < out[b].Right
	})
	return out
}

func equalPairs(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func nestedLoop(left, right *model.Collection, minShared int) []Pair {
	var out []Pair
	for i := range left.Objects {
		for j := range right.Objects {
			l, r := &left.Objects[i], &right.Objects[j]
			if !l.Interval.Overlaps(r.Interval) {
				continue
			}
			if minShared > 0 && SharedElements(l.Elems, r.Elems) < minShared {
				continue
			}
			out = append(out, Pair{Left: l.ID, Right: r.ID})
		}
	}
	return canonPairs(out)
}

func TestSharedElements(t *testing.T) {
	tests := []struct {
		a, b []model.ElemID
		want int
	}{
		{nil, nil, 0},
		{[]model.ElemID{1}, nil, 0},
		{[]model.ElemID{1, 2, 3}, []model.ElemID{2, 3, 4}, 2},
		{[]model.ElemID{1, 2}, []model.ElemID{3, 4}, 0},
		{[]model.ElemID{1, 2, 3}, []model.ElemID{1, 2, 3}, 3},
	}
	for _, tt := range tests {
		if got := SharedElements(tt.a, tt.b); got != tt.want {
			t.Errorf("SharedElements(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestJoinAgainstNestedLoop(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		cfgL := testutil.CollectionConfig{N: 120, DomainLo: 0, DomainHi: 3000, Dict: 15, MaxDesc: 5, Seed: seed}
		cfgR := cfgL
		cfgR.N = 200
		cfgR.Seed = seed + 50
		left := testutil.RandomCollection(cfgL)
		right := testutil.RandomCollection(cfgR)
		for _, k := range []int{0, 1, 2, 4} {
			got := canonPairs(Join(left, right, Config{MinShared: k}))
			want := nestedLoop(left, right, k)
			if !equalPairs(got, want) {
				t.Fatalf("seed %d k=%d: got %d pairs, want %d", seed, k, len(got), len(want))
			}
		}
	}
}

func TestJoinOrientationWithLargerLeft(t *testing.T) {
	// Left larger than right exercises the flipped path.
	cfgL := testutil.CollectionConfig{N: 250, DomainLo: 0, DomainHi: 2000, Dict: 10, MaxDesc: 4, Seed: 9}
	cfgR := cfgL
	cfgR.N = 60
	cfgR.Seed = 10
	left := testutil.RandomCollection(cfgL)
	right := testutil.RandomCollection(cfgR)
	got := canonPairs(Join(left, right, Config{MinShared: 1}))
	want := nestedLoop(left, right, 1)
	if !equalPairs(got, want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	var empty model.Collection
	c := testutil.RandomCollection(testutil.DefaultConfig(1))
	if got := Join(&empty, c, Config{}); got != nil {
		t.Errorf("empty left gave %v", got)
	}
	if got := Join(c, &empty, Config{}); got != nil {
		t.Errorf("empty right gave %v", got)
	}
}

func TestSelfJoinAgainstNestedLoop(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		cfg := testutil.CollectionConfig{N: 150, DomainLo: 0, DomainHi: 2500, Dict: 12, MaxDesc: 5, Seed: seed + 20}
		c := testutil.RandomCollection(cfg)
		for _, k := range []int{0, 2} {
			got := canonPairs(SelfJoin(c, Config{MinShared: k}))
			var want []Pair
			for i := range c.Objects {
				for j := i + 1; j < len(c.Objects); j++ {
					a, b := &c.Objects[i], &c.Objects[j]
					if !a.Interval.Overlaps(b.Interval) {
						continue
					}
					if k > 0 && SharedElements(a.Elems, b.Elems) < k {
						continue
					}
					want = append(want, Pair{Left: a.ID, Right: b.ID})
				}
			}
			want = canonPairs(want)
			if !equalPairs(got, want) {
				t.Fatalf("seed %d k=%d: got %d pairs, want %d", seed, k, len(got), len(want))
			}
		}
	}
}

func TestJoinFixedM(t *testing.T) {
	cfg := testutil.CollectionConfig{N: 80, DomainLo: 0, DomainHi: 1000, Dict: 8, MaxDesc: 3, Seed: 5}
	left := testutil.RandomCollection(cfg)
	cfg.Seed = 6
	right := testutil.RandomCollection(cfg)
	a := canonPairs(Join(left, right, Config{MinShared: 1, M: 3}))
	b := canonPairs(Join(left, right, Config{MinShared: 1, M: 9}))
	if !equalPairs(a, b) {
		t.Fatal("join results depend on m")
	}
}
