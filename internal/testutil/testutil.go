// Package testutil provides shared helpers for the index test suites:
// deterministic random collections and queries, and an equivalence checker
// that compares any index against the brute-force oracle across randomized
// workloads, insertions and deletions.
package testutil

import (
	"math/rand"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/model"
)

// QueryIndex is the minimal query surface every index under test exposes.
type QueryIndex interface {
	Query(q model.Query) []model.ObjectID
}

// UpdatableIndex additionally supports the update operations of Section 5.5.
type UpdatableIndex interface {
	QueryIndex
	Insert(o model.Object)
	Delete(o model.Object)
}

// CollectionConfig shapes RandomCollection output.
type CollectionConfig struct {
	N        int   // number of objects
	DomainLo int64 // min timestamp
	DomainHi int64 // max timestamp
	Dict     int   // dictionary size
	MaxDesc  int   // max description size (>=1)
	Seed     int64
}

// DefaultConfig returns a config that exercises replication, long and short
// intervals and frequent/rare elements.
func DefaultConfig(seed int64) CollectionConfig {
	return CollectionConfig{N: 400, DomainLo: 0, DomainHi: 5000, Dict: 30, MaxDesc: 6, Seed: seed}
}

// RandomCollection builds a seeded random collection. Durations are skewed:
// most intervals are short, some span large fractions of the domain, and a
// few are points — mirroring the zipfian durations of the paper's data.
func RandomCollection(cfg CollectionConfig) *model.Collection {
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &model.Collection{DictSize: cfg.Dict}
	span := cfg.DomainHi - cfg.DomainLo + 1
	for i := 0; i < cfg.N; i++ {
		start := cfg.DomainLo + rng.Int63n(span)
		var dur int64
		switch rng.Intn(10) {
		case 0: // long interval
			dur = rng.Int63n(span / 2)
		case 1: // point
			dur = 0
		default: // short
			dur = rng.Int63n(span/20 + 1)
		}
		end := start + dur
		if end > cfg.DomainHi {
			end = cfg.DomainHi
		}
		nd := 1 + rng.Intn(cfg.MaxDesc)
		elems := make([]model.ElemID, nd)
		for j := range elems {
			// Skewed: low ids are much more frequent.
			e := int(float64(cfg.Dict) * rng.Float64() * rng.Float64())
			if e >= cfg.Dict {
				e = cfg.Dict - 1
			}
			elems[j] = model.ElemID(e)
		}
		c.AppendObject(model.NewInterval(start, end), elems)
	}
	return c
}

// RandomQueries generates seeded random time-travel IR queries over the
// collection's domain, with 1..4 elements and extents from points to most
// of the domain.
func RandomQueries(cfg CollectionConfig, n int, seed int64) []model.Query {
	rng := rand.New(rand.NewSource(seed))
	span := cfg.DomainHi - cfg.DomainLo + 1
	qs := make([]model.Query, n)
	for i := range qs {
		start := cfg.DomainLo + rng.Int63n(span)
		var extent int64
		switch rng.Intn(4) {
		case 0:
			extent = 0
		case 1:
			extent = rng.Int63n(span/100 + 1)
		case 2:
			extent = rng.Int63n(span/10 + 1)
		default:
			extent = rng.Int63n(span)
		}
		end := start + extent
		if end > cfg.DomainHi {
			end = cfg.DomainHi
		}
		ne := 1 + rng.Intn(4)
		elems := make([]model.ElemID, ne)
		for j := range elems {
			e := int(float64(cfg.Dict) * rng.Float64() * rng.Float64())
			if e >= cfg.Dict {
				e = cfg.Dict - 1
			}
			elems[j] = model.ElemID(e)
		}
		qs[i] = model.Query{Interval: model.NewInterval(start, end), Elems: model.NormalizeElems(elems)}
	}
	return qs
}

// Canonical sorts and dedups a result set so indices with different output
// orders can be compared.
func Canonical(ids []model.ObjectID) []model.ObjectID {
	out := append([]model.ObjectID(nil), ids...)
	model.SortIDs(out)
	return model.DedupIDs(out)
}

// CheckAgainstOracle runs every query against both the index under test and
// the brute-force oracle, failing the test on the first mismatch.
func CheckAgainstOracle(t *testing.T, name string, ix QueryIndex, c *model.Collection, queries []model.Query) {
	t.Helper()
	oracle := bruteforce.New(c)
	for i, q := range queries {
		got := Canonical(ix.Query(q))
		want := Canonical(oracle.Query(q))
		if !model.EqualIDs(got, want) {
			t.Fatalf("%s: query %d (%v elems=%v): got %v, want %v",
				name, i, q.Interval, q.Elems, got, want)
		}
	}
}

// CheckUpdates exercises the update path: build the index over the first
// 80%% of the collection, insert the rest, delete a deterministic subset,
// and verify equivalence with an oracle subjected to the same updates.
func CheckUpdates(t *testing.T, name string, build func(c *model.Collection) UpdatableIndex, cfg CollectionConfig) {
	t.Helper()
	full := RandomCollection(cfg)
	cut := len(full.Objects) * 8 / 10

	base := &model.Collection{Objects: full.Objects[:cut], DictSize: full.DictSize}
	ix := build(base)
	oracle := bruteforce.New(base)

	for _, o := range full.Objects[cut:] {
		ix.Insert(o)
		oracle.Insert(o)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	deleted := map[model.ObjectID]bool{}
	for i := 0; i < len(full.Objects)/10; i++ {
		victim := full.Objects[rng.Intn(len(full.Objects))]
		if deleted[victim.ID] {
			continue
		}
		deleted[victim.ID] = true
		ix.Delete(victim)
		oracle.Delete(victim.ID)
	}

	queries := RandomQueries(cfg, 150, cfg.Seed+7)
	for i, q := range queries {
		got := Canonical(ix.Query(q))
		want := Canonical(oracle.Query(q))
		if !model.EqualIDs(got, want) {
			t.Fatalf("%s: post-update query %d (%v elems=%v): got %v, want %v",
				name, i, q.Interval, q.Elems, got, want)
		}
	}
}
