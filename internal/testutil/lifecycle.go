package testutil

import (
	"sort"

	"repro/internal/model"
)

// LifecycleOracle mirrors an engine's visible state across
// insert/delete/compact workloads, keyed by the engine's stable external
// ids. Unlike the bruteforce index (which is positional), the oracle
// survives physical compaction on the engine side: external ids never
// move, so its answers stay comparable across generations.
type LifecycleOracle struct {
	objs map[model.ObjectID]model.Object
}

// NewLifecycleOracle seeds the oracle with a collection whose dense ids
// become the first external ids (the EngineFromCollection convention).
func NewLifecycleOracle(c *model.Collection) *LifecycleOracle {
	o := &LifecycleOracle{objs: make(map[model.ObjectID]model.Object, len(c.Objects))}
	for i := range c.Objects {
		obj := c.Objects[i]
		o.objs[obj.ID] = obj
	}
	return o
}

// Insert records a new object under the engine-assigned external id.
func (o *LifecycleOracle) Insert(id model.ObjectID, iv model.Interval, elems []model.ElemID) {
	o.objs[id] = model.Object{ID: id, Interval: iv, Elems: model.NormalizeElems(elems)}
}

// Delete removes an object; it reports whether the id was present.
func (o *LifecycleOracle) Delete(id model.ObjectID) bool {
	if _, ok := o.objs[id]; !ok {
		return false
	}
	delete(o.objs, id)
	return true
}

// Len returns the number of live objects.
func (o *LifecycleOracle) Len() int { return len(o.objs) }

// Query scans all live objects and returns matching external ids in
// ascending order — the reference answer for any engine state.
func (o *LifecycleOracle) Query(q model.Query) []model.ObjectID {
	var ids []model.ObjectID
	for id, obj := range o.objs { // lint:map-order-ok sorted below
		if q.Matches(&obj) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

// QueryAll evaluates a whole query set, for WorkloadChecksum comparison.
func (o *LifecycleOracle) QueryAll(queries []model.Query) [][]model.ObjectID {
	out := make([][]model.ObjectID, len(queries))
	for i, q := range queries {
		out[i] = o.Query(q)
	}
	return out
}
