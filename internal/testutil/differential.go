package testutil

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/model"
)

// Cross-method differential harness: seeded corpora plus query workloads
// on which every index in the family must return byte-identical result
// sets to the brute-force oracle — and therefore to each other. The
// method table itself lives in the root package's differential test (the
// only place all eight constructors are visible without an import
// cycle); this file holds the root-free machinery.

// BuildFunc constructs one index variant over a collection.
type BuildFunc func(c *model.Collection) QueryIndex

// DifferentialWorkload is one seeded corpus + query set of the harness.
type DifferentialWorkload struct {
	Name    string
	Config  CollectionConfig
	Queries int   // random queries generated
	QSeed   int64 // query generator seed
}

// DefaultDifferentialWorkloads returns the harness's standard workloads:
// deliberately varied in corpus size, domain span, dictionary size and
// description width, so replication depth, slice widths and planning
// order all shift between them.
func DefaultDifferentialWorkloads() []DifferentialWorkload {
	return []DifferentialWorkload{
		{
			Name:    "baseline",
			Config:  DefaultConfig(1001),
			Queries: 200,
			QSeed:   2001,
		},
		{
			Name:    "dense-small-domain",
			Config:  CollectionConfig{N: 600, DomainLo: 0, DomainHi: 500, Dict: 12, MaxDesc: 4, Seed: 1002},
			Queries: 200,
			QSeed:   2002,
		},
		{
			Name:    "sparse-wide-domain",
			Config:  CollectionConfig{N: 300, DomainLo: -40000, DomainHi: 40000, Dict: 80, MaxDesc: 8, Seed: 1003},
			Queries: 200,
			QSeed:   2003,
		},
		{
			Name:    "rich-descriptions",
			Config:  CollectionConfig{N: 250, DomainLo: 0, DomainHi: 10000, Dict: 20, MaxDesc: 12, Seed: 1004},
			Queries: 150,
			QSeed:   2004,
		},
	}
}

// WorkloadQueries materializes the workload's query set: the seeded
// random queries plus the boundary sweep every method must agree on.
func (w DifferentialWorkload) WorkloadQueries() []model.Query {
	qs := RandomQueries(w.Config, w.Queries, w.QSeed)
	return append(qs, BoundaryQueries(w.Config)...)
}

// BoundaryQueries returns the boundary-semantics sweep for a config:
// point queries (start == end), domain-edge intervals touching DomainLo
// and DomainHi, full-domain spans, unknown elements (>= Dict), and empty
// element lists — each a case where methods have historically diverged.
func BoundaryQueries(cfg CollectionConfig) []model.Query {
	lo, hi := model.Timestamp(cfg.DomainLo), model.Timestamp(cfg.DomainHi)
	mid := lo + (hi-lo)/2
	unknown := model.ElemID(cfg.Dict) // first id outside the dictionary
	qs := []model.Query{
		// Point queries at the edges and middle, with and without elems.
		{Interval: model.NewInterval(lo, lo)},
		{Interval: model.NewInterval(hi, hi)},
		{Interval: model.NewInterval(mid, mid)},
		{Interval: model.NewInterval(lo, lo), Elems: []model.ElemID{0}},
		{Interval: model.NewInterval(hi, hi), Elems: []model.ElemID{0}},
		{Interval: model.NewInterval(mid, mid), Elems: []model.ElemID{0, 1}},
		// Domain-edge and full-domain intervals.
		{Interval: model.NewInterval(lo, mid)},
		{Interval: model.NewInterval(mid, hi)},
		{Interval: model.NewInterval(lo, hi)},
		{Interval: model.NewInterval(lo, hi), Elems: []model.ElemID{0}},
		{Interval: model.NewInterval(lo, hi), Elems: []model.ElemID{0, 1, 2}},
		// Unknown elements: alone, and conjoined with a known one.
		{Interval: model.NewInterval(lo, hi), Elems: []model.ElemID{unknown}},
		{Interval: model.NewInterval(lo, hi), Elems: []model.ElemID{unknown + 7}},
		{Interval: model.NewInterval(mid, hi), Elems: []model.ElemID{0, unknown}},
		// Empty element list: pure temporal selection.
		{Interval: model.NewInterval(mid, mid), Elems: nil},
		{Interval: model.NewInterval(lo, hi), Elems: nil},
	}
	return qs
}

// ResultChecksum hashes a result set in canonical form (ascending ids,
// deduplicated, big-endian 8-byte encoding). Two methods agree on a
// query exactly when their checksums match, and the hex digest is what
// the bench harness records for cross-run comparison.
func ResultChecksum(ids []model.ObjectID) string {
	canon := Canonical(ids)
	h := sha256.New()
	var buf [8]byte
	for _, id := range canon {
		binary.BigEndian.PutUint64(buf[:], uint64(id))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// WorkloadChecksum folds per-query checksums into one digest for a whole
// workload: the row count then each query's canonical result hash.
func WorkloadChecksum(results [][]model.ObjectID) string {
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(len(results)))
	h.Write(buf[:])
	for _, ids := range results {
		sum, _ := hex.DecodeString(ResultChecksum(ids))
		h.Write(sum)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CheckDifferential runs one workload against a set of named builders:
// every method's canonical result must be byte-identical to the oracle's
// on every query. It reports each divergence with the offending method,
// query and both result sets.
func CheckDifferential(t *testing.T, w DifferentialWorkload, methods []string, build func(name string, c *model.Collection) QueryIndex) {
	t.Helper()
	c := RandomCollection(w.Config)
	oracle := bruteforce.New(c)
	queries := w.WorkloadQueries()
	want := make([][]model.ObjectID, len(queries))
	for i, q := range queries {
		want[i] = Canonical(oracle.Query(q))
	}
	wantSum := WorkloadChecksum(want)
	for _, name := range methods {
		ix := build(name, c)
		got := make([][]model.ObjectID, len(queries))
		for i, q := range queries {
			got[i] = Canonical(ix.Query(q))
			if !model.EqualIDs(got[i], want[i]) {
				t.Errorf("%s/%s: query %d (%v elems=%v): got %v, want %v",
					w.Name, name, i, queries[i].Interval, queries[i].Elems, got[i], want[i])
			}
		}
		if sum := WorkloadChecksum(got); sum != wantSum {
			t.Errorf("%s/%s: workload checksum %s differs from oracle %s",
				w.Name, name, sum, wantSum)
		}
	}
}
