// Package itree implements the classic centered interval tree of
// Edelsbrunner (Section 6.2 of the paper): the textbook main-memory
// interval index with optimal worst-case guarantees, used here as the
// baseline HINT is ablated against. Every node stores the intervals
// containing its center time point, sorted twice (by start and by end),
// so a range query touches O(log n + k) entries.
package itree

import (
	"sort"

	"repro/internal/model"
	"repro/internal/postings"
)

// node is one tree level: the intervals containing center, plus subtrees
// of intervals strictly left/right of it.
type node struct {
	center  model.Timestamp
	byStart []postings.Posting // sorted ascending by Start
	byEnd   []postings.Posting // sorted ascending by End
	left    *node
	right   *node
}

// Tree is a static centered interval tree.
type Tree struct {
	root *node
	size int
}

// Build constructs the tree over the entries (copied into node storage).
func Build(entries []postings.Posting) *Tree {
	scratch := append([]postings.Posting(nil), entries...)
	return &Tree{root: build(scratch), size: len(entries)}
}

// Len returns the number of indexed intervals.
func (t *Tree) Len() int { return t.size }

func build(entries []postings.Posting) *node {
	if len(entries) == 0 {
		return nil
	}
	// Center on the median start for balance.
	sort.Slice(entries, func(a, b int) bool {
		return entries[a].Interval.Start < entries[b].Interval.Start
	})
	center := entries[len(entries)/2].Interval.Start

	var here, left, right []postings.Posting
	for _, p := range entries {
		switch {
		case p.Interval.End < center:
			left = append(left, p)
		case p.Interval.Start > center:
			right = append(right, p)
		default:
			here = append(here, p)
		}
	}
	n := &node{center: center}
	n.byStart = append([]postings.Posting(nil), here...)
	sort.Slice(n.byStart, func(a, b int) bool {
		return n.byStart[a].Interval.Start < n.byStart[b].Interval.Start
	})
	n.byEnd = append([]postings.Posting(nil), here...)
	sort.Slice(n.byEnd, func(a, b int) bool {
		return n.byEnd[a].Interval.End < n.byEnd[b].Interval.End
	})
	n.left = build(left)
	n.right = build(right)
	return n
}

// RangeQuery appends the ids of all intervals overlapping q.
func (t *Tree) RangeQuery(q model.Interval, dst []model.ObjectID) []model.ObjectID {
	return rangeQuery(t.root, q, dst)
}

func rangeQuery(n *node, q model.Interval, dst []model.ObjectID) []model.ObjectID {
	for n != nil {
		switch {
		case q.End < n.center:
			// Node intervals contain center > q.End, so they overlap q
			// iff they start at or before q.End: a byStart prefix.
			cut := sort.Search(len(n.byStart), func(i int) bool {
				return n.byStart[i].Interval.Start > q.End
			})
			for i := 0; i < cut; i++ {
				dst = append(dst, n.byStart[i].ID)
			}
			n = n.left
		case q.Start > n.center:
			// Symmetric: a byEnd suffix with End >= q.Start.
			lo := sort.Search(len(n.byEnd), func(i int) bool {
				return n.byEnd[i].Interval.End >= q.Start
			})
			for i := lo; i < len(n.byEnd); i++ {
				dst = append(dst, n.byEnd[i].ID)
			}
			n = n.right
		default:
			// center inside q: every node interval overlaps; both
			// subtrees may contribute.
			for i := range n.byStart {
				dst = append(dst, n.byStart[i].ID)
			}
			dst = rangeQuery(n.left, q, dst)
			n = n.right
		}
	}
	return dst
}

// Stab returns all intervals containing the time point.
func (t *Tree) Stab(p model.Timestamp, dst []model.ObjectID) []model.ObjectID {
	return t.RangeQuery(model.NewInterval(p, p), dst)
}

// Height returns the tree height (testing hook for balance).
func (t *Tree) Height() int { return height(t.root) }

func height(n *node) int {
	if n == nil {
		return 0
	}
	l, r := height(n.left), height(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// SizeBytes estimates resident size (two 16-byte copies per interval plus
// node overhead).
func (t *Tree) SizeBytes() int64 {
	return sizeBytes(t.root)
}

func sizeBytes(n *node) int64 {
	if n == nil {
		return 0
	}
	total := int64(cap(n.byStart)+cap(n.byEnd))*16 + 80
	return total + sizeBytes(n.left) + sizeBytes(n.right)
}
