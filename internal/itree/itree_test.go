package itree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/postings"
)

func iv(s, e model.Timestamp) model.Interval { return model.Interval{Start: s, End: e} }

func randomEntries(rng *rand.Rand, n int, hi int64) []postings.Posting {
	out := make([]postings.Posting, n)
	for i := range out {
		s := model.Timestamp(rng.Int63n(hi))
		e := s + model.Timestamp(rng.Int63n(hi/8+1))
		out[i] = postings.Posting{ID: model.ObjectID(i), Interval: iv(s, e)}
	}
	return out
}

func canon(ids []model.ObjectID) []model.ObjectID {
	out := append([]model.ObjectID(nil), ids...)
	model.SortIDs(out)
	return model.DedupIDs(out)
}

func TestRangeQueryOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	entries := randomEntries(rng, 800, 1<<14)
	tree := Build(entries)
	if tree.Len() != len(entries) {
		t.Fatalf("Len = %d", tree.Len())
	}
	for trial := 0; trial < 500; trial++ {
		q := model.Canon(model.Timestamp(rng.Int63n(1<<14)), model.Timestamp(rng.Int63n(1<<14)))
		got := canon(tree.RangeQuery(q, nil))
		var want []model.ObjectID
		for _, p := range entries {
			if p.Interval.Overlaps(q) {
				want = append(want, p.ID)
			}
		}
		model.SortIDs(want)
		if !model.EqualIDs(got, want) {
			t.Fatalf("q=%v: got %d ids, want %d", q, len(got), len(want))
		}
	}
}

func TestNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	entries := randomEntries(rng, 500, 1<<12)
	tree := Build(entries)
	for trial := 0; trial < 100; trial++ {
		q := model.Canon(model.Timestamp(rng.Int63n(1<<12)), model.Timestamp(rng.Int63n(1<<12)))
		got := tree.RangeQuery(q, nil)
		seen := map[model.ObjectID]bool{}
		for _, id := range got {
			if seen[id] {
				t.Fatalf("duplicate id %d", id)
			}
			seen[id] = true
		}
	}
}

func TestStab(t *testing.T) {
	entries := []postings.Posting{
		{ID: 0, Interval: iv(0, 10)},
		{ID: 1, Interval: iv(5, 15)},
		{ID: 2, Interval: iv(20, 30)},
	}
	tree := Build(entries)
	got := canon(tree.Stab(7, nil))
	if !model.EqualIDs(got, []model.ObjectID{0, 1}) {
		t.Errorf("Stab(7) = %v", got)
	}
	if got := tree.Stab(16, nil); len(got) != 0 {
		t.Errorf("Stab(16) = %v", got)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	empty := Build(nil)
	if got := empty.RangeQuery(iv(0, 100), nil); len(got) != 0 {
		t.Errorf("empty tree returned %v", got)
	}
	single := Build([]postings.Posting{{ID: 7, Interval: iv(3, 9)}})
	if got := canon(single.RangeQuery(iv(0, 100), nil)); len(got) != 1 || got[0] != 7 {
		t.Errorf("single tree returned %v", got)
	}
}

func TestBalancedHeight(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	entries := randomEntries(rng, 4096, 1<<20)
	tree := Build(entries)
	// Median-of-starts centering keeps the height logarithmic-ish; allow
	// a generous constant.
	if h := tree.Height(); float64(h) > 4*math.Log2(float64(len(entries)))+8 {
		t.Errorf("height %d too tall for %d entries", h, len(entries))
	}
	if tree.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
}

func BenchmarkIntervalTreeRange(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	entries := randomEntries(rng, 100_000, 1<<22)
	tree := Build(entries)
	queries := make([]model.Interval, 512)
	for i := range queries {
		s := model.Timestamp(rng.Int63n(1 << 22))
		queries[i] = iv(s, s+4096)
	}
	var dst []model.ObjectID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = tree.RangeQuery(queries[i%len(queries)], dst[:0])
	}
}
