// Package dict implements the global dictionary D of descriptive elements:
// a bidirectional mapping between element strings (terms, track ids,
// product ids, ...) and dense ElemIDs, together with the per-element
// document frequencies that drive the least-frequent-first query plans used
// by every index in the paper.
package dict

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/model"
)

// Dictionary maps element strings to dense ids and tracks how many objects
// contain each element. The zero value is ready to use.
type Dictionary struct {
	terms  []string
	byTerm map[string]model.ElemID
	freqs  []int
	total  int // total postings across all elements
}

// New returns an empty dictionary.
func New() *Dictionary {
	return &Dictionary{byTerm: make(map[string]model.ElemID)}
}

// Len returns the number of distinct elements.
func (d *Dictionary) Len() int { return len(d.terms) }

// TotalPostings returns the sum of all element frequencies, i.e. the total
// number of (object, element) pairs observed through AddObject.
func (d *Dictionary) TotalPostings() int { return d.total }

// Intern returns the id for term, adding it to the dictionary if new.
func (d *Dictionary) Intern(term string) model.ElemID {
	if d.byTerm == nil {
		d.byTerm = make(map[string]model.ElemID)
	}
	if id, ok := d.byTerm[term]; ok {
		return id
	}
	id := model.ElemID(len(d.terms))
	d.terms = append(d.terms, term)
	d.freqs = append(d.freqs, 0)
	d.byTerm[term] = id
	return id
}

// Lookup returns the id for term and whether it exists.
func (d *Dictionary) Lookup(term string) (model.ElemID, bool) {
	id, ok := d.byTerm[term]
	return id, ok
}

// Term returns the string for an element id. It panics on out-of-range ids.
func (d *Dictionary) Term(id model.ElemID) string {
	return d.terms[id]
}

// Freq returns the document frequency of element id (0 for unseen ids
// within range).
func (d *Dictionary) Freq(id model.ElemID) int {
	if int(id) >= len(d.freqs) {
		return 0
	}
	return d.freqs[id]
}

// AddObject interns every term of an object description and bumps
// frequencies. It returns the normalized (sorted, deduplicated) element set.
func (d *Dictionary) AddObject(terms []string) []model.ElemID {
	elems := make([]model.ElemID, 0, len(terms))
	for _, t := range terms {
		elems = append(elems, d.Intern(t))
	}
	elems = model.NormalizeElems(elems)
	for _, e := range elems {
		d.freqs[e]++
		d.total++
	}
	return elems
}

// AddElems bumps frequencies for an already-interned, normalized element
// set. Used when objects are built from ids directly (synthetic data).
func (d *Dictionary) AddElems(elems []model.ElemID) {
	for _, e := range elems {
		d.grow(int(e) + 1)
		d.freqs[e]++
		d.total++
	}
}

func (d *Dictionary) grow(n int) {
	for len(d.freqs) < n {
		d.freqs = append(d.freqs, 0)
		d.terms = append(d.terms, fmt.Sprintf("e%d", len(d.terms)))
	}
}

// Clone returns a deep copy of the dictionary: further mutations of
// either copy are invisible to the other. Builders use it to detach the
// dictionary they hand to an Engine from their own accumulating state.
func (d *Dictionary) Clone() *Dictionary {
	c := &Dictionary{
		terms:  append([]string(nil), d.terms...),
		byTerm: make(map[string]model.ElemID, len(d.byTerm)),
		freqs:  append([]int(nil), d.freqs...),
		total:  d.total,
	}
	for t, id := range d.byTerm {
		c.byTerm[t] = id
	}
	return c
}

// TermsSnapshot returns a copy of all terms in id order, for
// serialization.
func (d *Dictionary) TermsSnapshot() []string {
	return append([]string(nil), d.terms...)
}

// FromTerms reconstructs a dictionary from an id-ordered term list (the
// inverse of TermsSnapshot). Frequencies start at zero; use AddElems to
// restore them from a collection.
func FromTerms(terms []string) *Dictionary {
	d := New()
	for _, t := range terms {
		d.Intern(t)
	}
	return d
}

// FreqsFromCollection builds a frequency table directly from a collection,
// for indices that work on ElemIDs without string terms.
func FreqsFromCollection(c *model.Collection) []int {
	return c.ElemFreqs()
}

// PlanOrder sorts the query elements by increasing global frequency,
// breaking ties by id, and returns the sorted copy. This is the standard
// query-plan ordering of Algorithm 1: the least frequent element is
// processed first so that intermediate candidate sets stay small. The
// generic slices.SortFunc avoids the interface boxing sort.Slice pays,
// so planning allocates exactly one small copy per query.
func PlanOrder(elems []model.ElemID, freqs []int) []model.ElemID {
	// lint:alloc-ok per-query plan copy, bounded by the handful of query elements
	out := append([]model.ElemID(nil), elems...)
	freq := func(e model.ElemID) int {
		if int(e) < len(freqs) {
			return freqs[e]
		}
		return 0
	}
	slices.SortFunc(out, func(a, b model.ElemID) int {
		fa, fb := freq(a), freq(b)
		if fa != fb {
			return cmp.Compare(fa, fb)
		}
		return cmp.Compare(a, b)
	})
	return out
}
