package dict

import (
	"testing"

	"repro/internal/model"
)

func TestInternLookupTerm(t *testing.T) {
	d := New()
	a := d.Intern("apple")
	b := d.Intern("banana")
	if a == b {
		t.Fatal("distinct terms share an id")
	}
	if again := d.Intern("apple"); again != a {
		t.Errorf("re-intern gave %d, want %d", again, a)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if id, ok := d.Lookup("banana"); !ok || id != b {
		t.Errorf("Lookup(banana) = %d, %v", id, ok)
	}
	if _, ok := d.Lookup("cherry"); ok {
		t.Error("Lookup of missing term succeeded")
	}
	if d.Term(a) != "apple" || d.Term(b) != "banana" {
		t.Error("Term round-trip failed")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var d Dictionary
	id := d.Intern("x")
	if d.Term(id) != "x" {
		t.Error("zero-value dictionary broken")
	}
}

func TestAddObjectFrequencies(t *testing.T) {
	d := New()
	e1 := d.AddObject([]string{"a", "b", "a"}) // dup "a" counted once
	e2 := d.AddObject([]string{"b", "c"})
	if len(e1) != 2 {
		t.Fatalf("normalized elems = %v", e1)
	}
	a, _ := d.Lookup("a")
	b, _ := d.Lookup("b")
	c, _ := d.Lookup("c")
	if d.Freq(a) != 1 || d.Freq(b) != 2 || d.Freq(c) != 1 {
		t.Errorf("freqs = %d %d %d", d.Freq(a), d.Freq(b), d.Freq(c))
	}
	if d.TotalPostings() != 4 {
		t.Errorf("TotalPostings = %d, want 4", d.TotalPostings())
	}
	_ = e2
	if d.Freq(model.ElemID(99)) != 0 {
		t.Error("Freq out of range should be 0")
	}
}

func TestAddElemsGrows(t *testing.T) {
	var d Dictionary
	d.AddElems([]model.ElemID{5, 2})
	if d.Freq(5) != 1 || d.Freq(2) != 1 || d.Freq(3) != 0 {
		t.Errorf("freqs after AddElems: %d %d %d", d.Freq(5), d.Freq(2), d.Freq(3))
	}
	if d.Len() != 6 {
		t.Errorf("Len = %d, want 6", d.Len())
	}
}

func TestPlanOrder(t *testing.T) {
	freqs := []int{10, 1, 5, 1}
	got := PlanOrder([]model.ElemID{0, 1, 2, 3}, freqs)
	want := []model.ElemID{1, 3, 2, 0} // ties broken by id
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PlanOrder = %v, want %v", got, want)
		}
	}
	// Input must not be mutated.
	in := []model.ElemID{0, 1}
	_ = PlanOrder(in, freqs)
	if in[0] != 0 || in[1] != 1 {
		t.Error("PlanOrder mutated its input")
	}
	// Out-of-range ids are treated as frequency 0.
	got = PlanOrder([]model.ElemID{0, 9}, freqs)
	if got[0] != 9 {
		t.Errorf("out-of-range elem should sort first, got %v", got)
	}
}

func TestFreqsFromCollection(t *testing.T) {
	var c model.Collection
	c.AppendObject(model.Interval{Start: 0, End: 1}, []model.ElemID{0, 1})
	c.AppendObject(model.Interval{Start: 0, End: 1}, []model.ElemID{1})
	freqs := FreqsFromCollection(&c)
	if freqs[0] != 1 || freqs[1] != 2 {
		t.Errorf("freqs = %v", freqs)
	}
}
