package stats

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/model"
)

func small() *model.Collection {
	var c model.Collection
	c.AppendObject(model.Interval{Start: 0, End: 9}, []model.ElemID{0, 1})  // dur 10
	c.AppendObject(model.Interval{Start: 5, End: 5}, []model.ElemID{0})     // dur 1
	c.AppendObject(model.Interval{Start: 2, End: 21}, []model.ElemID{0, 2}) // dur 20
	return &c
}

func TestComputeSummary(t *testing.T) {
	s := Compute(small())
	if s.Cardinality != 3 {
		t.Errorf("Cardinality = %d", s.Cardinality)
	}
	if s.TimeDomain != 22 {
		t.Errorf("TimeDomain = %d, want 22", s.TimeDomain)
	}
	if s.MinDuration != 1 || s.MaxDuration != 20 {
		t.Errorf("durations [%d,%d]", s.MinDuration, s.MaxDuration)
	}
	if s.AvgDuration < 10.2 || s.AvgDuration > 10.5 {
		t.Errorf("AvgDuration = %f, want ~10.33", s.AvgDuration)
	}
	if s.DictSize != 3 {
		t.Errorf("DictSize = %d, want 3", s.DictSize)
	}
	if s.MinDescSize != 1 || s.MaxDescSize != 2 {
		t.Errorf("desc sizes [%d,%d]", s.MinDescSize, s.MaxDescSize)
	}
	if s.MinElemFreq != 1 || s.MaxElemFreq != 3 {
		t.Errorf("elem freqs [%d,%d]", s.MinElemFreq, s.MaxElemFreq)
	}
	if s.PostingsTotal != 5 {
		t.Errorf("PostingsTotal = %d", s.PostingsTotal)
	}
}

func TestEmptyCollection(t *testing.T) {
	var c model.Collection
	s := Compute(&c)
	if s.Cardinality != 0 || s.TimeDomain != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestTableRendering(t *testing.T) {
	out := Compute(small()).Table("TEST")
	for _, want := range []string{"== TEST ==", "Cardinality", "3", "Avg. interval duration [%]", "Dictionary size"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestLogHistogram(t *testing.T) {
	values := []int64{1, 1, 2, 3, 10, 100, 1000}
	h := LogHistogram("durations", values, 10)
	total := 0
	for _, b := range h.Buckets {
		total += b.Count
		if b.Lo >= b.Hi {
			t.Errorf("bucket [%d,%d) malformed", b.Lo, b.Hi)
		}
	}
	if total != len(values) {
		t.Errorf("histogram covers %d of %d values", total, len(values))
	}
	if LogHistogram("empty", nil, 10).Buckets != nil {
		t.Error("empty histogram should have no buckets")
	}
	out := h.Render(40)
	if !strings.Contains(out, "durations") || !strings.Contains(out, "#") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestDurationsAndFrequencies(t *testing.T) {
	c := small()
	d := Durations(c)
	if len(d) != 3 || d[0] != 10 {
		t.Errorf("Durations = %v", d)
	}
	f := Frequencies(c)
	if len(f) != 3 {
		t.Errorf("Frequencies = %v", f)
	}
}

func TestRealStandInShape(t *testing.T) {
	// The ECLOG stand-in should land near the Table 3 shape targets.
	c := gen.ECLOGLike(gen.RealConfig{Scale: 0.01, Seed: 42})
	s := Compute(c)
	if s.AvgDurationPct < 2 || s.AvgDurationPct > 25 {
		t.Errorf("ECLOG-like avg duration share = %.1f%%, target ~8.4%%", s.AvgDurationPct)
	}
	if s.AvgDescSize < 30 || s.AvgDescSize > 150 {
		t.Errorf("ECLOG-like avg |d| = %.0f, target ~72", s.AvgDescSize)
	}
	if s.MaxElemFreq <= int(s.AvgElemFreq) {
		t.Error("element frequency distribution should be skewed")
	}
}
