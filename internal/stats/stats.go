// Package stats computes the dataset characteristics the paper reports in
// Table 3 and plots in Figure 7: cardinality, time-domain span, interval
// duration statistics and distribution, description sizes, and element
// frequency statistics and distribution.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/model"
)

// Summary mirrors the rows of Table 3.
type Summary struct {
	Cardinality        int
	TimeDomain         int64 // span in time units
	MinDuration        int64
	MaxDuration        int64
	AvgDuration        float64
	AvgDurationPct     float64 // of the time domain
	DictSize           int     // distinct elements actually used
	MinDescSize        int
	MaxDescSize        int
	AvgDescSize        float64
	MinElemFreq        int
	MaxElemFreq        int
	AvgElemFreq        float64
	AvgElemFreqPct     float64 // of the cardinality
	PostingsTotal      int64   // sum of |d| over all objects
	EstimatedSizeBytes int64   // raw collection bytes (intervals + postings)
}

// Compute derives the summary of a collection.
func Compute(c *model.Collection) Summary {
	var s Summary
	s.Cardinality = c.Len()
	if s.Cardinality == 0 {
		return s
	}
	span, _ := c.Span()
	s.TimeDomain = int64(span.End-span.Start) + 1
	s.MinDuration = math.MaxInt64
	s.MinDescSize = math.MaxInt32
	for i := range c.Objects {
		o := &c.Objects[i]
		d := o.Interval.Duration()
		if d < s.MinDuration {
			s.MinDuration = d
		}
		if d > s.MaxDuration {
			s.MaxDuration = d
		}
		s.AvgDuration += float64(d)
		nd := len(o.Elems)
		if nd < s.MinDescSize {
			s.MinDescSize = nd
		}
		if nd > s.MaxDescSize {
			s.MaxDescSize = nd
		}
		s.PostingsTotal += int64(nd)
	}
	s.AvgDuration /= float64(s.Cardinality)
	s.AvgDurationPct = 100 * s.AvgDuration / float64(s.TimeDomain)
	s.AvgDescSize = float64(s.PostingsTotal) / float64(s.Cardinality)

	freqs := c.ElemFreqs()
	s.MinElemFreq = math.MaxInt32
	for _, f := range freqs {
		if f == 0 {
			continue
		}
		s.DictSize++
		if f < s.MinElemFreq {
			s.MinElemFreq = f
		}
		if f > s.MaxElemFreq {
			s.MaxElemFreq = f
		}
		s.AvgElemFreq += float64(f)
	}
	if s.DictSize > 0 {
		s.AvgElemFreq /= float64(s.DictSize)
		s.AvgElemFreqPct = 100 * s.AvgElemFreq / float64(s.Cardinality)
	} else {
		s.MinElemFreq = 0
	}
	s.EstimatedSizeBytes = int64(s.Cardinality)*24 + s.PostingsTotal*4
	return s
}

// Table renders the summary as the two-column layout of Table 3.
func (s Summary) Table(name string) string {
	var b strings.Builder
	row := func(k, v string) { fmt.Fprintf(&b, "%-36s %s\n", k, v) }
	fmt.Fprintf(&b, "== %s ==\n", name)
	row("Cardinality", fmt.Sprintf("%d", s.Cardinality))
	row("Size [MBs]", fmt.Sprintf("%.0f", float64(s.EstimatedSizeBytes)/(1<<20)))
	row("Time domain [units]", fmt.Sprintf("%d", s.TimeDomain))
	row("Min. interval duration [units]", fmt.Sprintf("%d", s.MinDuration))
	row("Max. interval duration [units]", fmt.Sprintf("%d", s.MaxDuration))
	row("Avg. interval duration [units]", fmt.Sprintf("%.0f", s.AvgDuration))
	row("Avg. interval duration [%]", fmt.Sprintf("%.1f", s.AvgDurationPct))
	row("Dictionary size [# elements]", fmt.Sprintf("%d", s.DictSize))
	row("Min. description size [# elems]", fmt.Sprintf("%d", s.MinDescSize))
	row("Max. description size [# elems]", fmt.Sprintf("%d", s.MaxDescSize))
	row("Avg. description size [# elems]", fmt.Sprintf("%.0f", s.AvgDescSize))
	row("Min. element frequency", fmt.Sprintf("%d", s.MinElemFreq))
	row("Max. element frequency", fmt.Sprintf("%d", s.MaxElemFreq))
	row("Avg. element frequency", fmt.Sprintf("%.0f", s.AvgElemFreq))
	row("Avg. element frequency [%]", fmt.Sprintf("%.2f", s.AvgElemFreqPct))
	return b.String()
}

// Histogram is a log-scale bucket histogram, the Figure 7 distributions.
type Histogram struct {
	Label   string
	Buckets []Bucket
}

// Bucket counts values in [Lo, Hi).
type Bucket struct {
	Lo, Hi int64
	Count  int
}

// LogHistogram buckets values into powers-of-base ranges.
func LogHistogram(label string, values []int64, base float64) Histogram {
	h := Histogram{Label: label}
	if len(values) == 0 {
		return h
	}
	max := values[0]
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var edges []int64
	for edge := int64(1); ; edge = nextEdge(edge, base) {
		edges = append(edges, edge)
		if edge > max {
			break
		}
	}
	counts := make([]int, len(edges))
	for _, v := range values {
		i := sort.Search(len(edges), func(i int) bool { return edges[i] > v })
		if i >= len(counts) {
			i = len(counts) - 1
		}
		counts[i]++
	}
	lo := int64(0)
	for i, edge := range edges {
		if counts[i] > 0 {
			h.Buckets = append(h.Buckets, Bucket{Lo: lo, Hi: edge, Count: counts[i]})
		}
		lo = edge
	}
	return h
}

func nextEdge(edge int64, base float64) int64 {
	next := int64(float64(edge) * base)
	if next <= edge {
		next = edge + 1
	}
	return next
}

// Durations extracts interval durations for Figure 7's left panel.
func Durations(c *model.Collection) []int64 {
	out := make([]int64, c.Len())
	for i := range c.Objects {
		out[i] = c.Objects[i].Interval.Duration()
	}
	return out
}

// Frequencies extracts non-zero element frequencies for Figure 7's right
// panel.
func Frequencies(c *model.Collection) []int64 {
	var out []int64
	for _, f := range c.ElemFreqs() {
		if f > 0 {
			out = append(out, int64(f))
		}
	}
	return out
}

// Render draws the histogram as an ASCII bar chart.
func (h Histogram) Render(width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", h.Label)
	max := 0
	for _, bk := range h.Buckets {
		if bk.Count > max {
			max = bk.Count
		}
	}
	if max == 0 {
		return b.String()
	}
	for _, bk := range h.Buckets {
		bar := bk.Count * width / max
		fmt.Fprintf(&b, "%12d-%-12d %8d %s\n", bk.Lo, bk.Hi, bk.Count, strings.Repeat("#", bar))
	}
	return b.String()
}
