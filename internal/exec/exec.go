// Package exec is the concurrent query-execution layer: a bounded worker
// pool shared by inter-query (batch) and intra-query (partition fan-out)
// parallelism, plus batch scheduling helpers.
//
// The pool follows a caller-runs design: the goroutine that submits work
// always participates, and up to Workers()-1 extra goroutines are borrowed
// from a global token budget with non-blocking acquisition. Two properties
// fall out of that design:
//
//   - Nesting never deadlocks. A batch worker that fans a single query's
//     partition scans out again simply finds no free tokens when the pool
//     is saturated and runs its scans serially — intra-query parallelism
//     costs nothing when inter-query parallelism already fills the cores.
//   - Total concurrency is bounded by Workers() regardless of how many
//     batches run at once, which is what lets the HTTP server cap its
//     in-flight queries independently of the engine's pool size.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/model"
)

// Pool is a bounded worker pool. The zero value is not usable; construct
// with NewPool. A Pool is safe for concurrent use and is typically shared
// process-wide (one per Engine).
type Pool struct {
	workers int
	// tokens holds the loanable worker budget: Workers()-1 slots, because
	// the submitting goroutine is always worker zero. Sending acquires a
	// token, receiving releases it.
	tokens chan struct{}

	// Fan-out accounting, exported via Stats for the observability
	// layer. Counting is lock-free and off the per-item hot path: one
	// add per Map call plus one per borrowed helper.
	maps    atomic.Uint64
	items   atomic.Uint64
	helpers atomic.Uint64
}

// PoolStats is a monotonic snapshot of the pool's fan-out activity.
type PoolStats struct {
	// Maps counts fan-out invocations (Map/MapCtx calls that had more
	// than one item and more than one worker available).
	Maps uint64 `json:"maps"`
	// Items counts work items submitted across those invocations.
	Items uint64 `json:"items"`
	// Helpers counts goroutines actually borrowed from the token
	// budget; Maps with zero borrowed helpers ran caller-only.
	Helpers uint64 `json:"helpers"`
}

// Stats returns the pool's cumulative fan-out counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Maps:    p.maps.Load(),
		Items:   p.items.Load(),
		Helpers: p.helpers.Load(),
	}
}

// NewPool returns a pool running at most workers tasks concurrently.
// workers <= 0 selects runtime.GOMAXPROCS(0), the default the Engine uses.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, tokens: make(chan struct{}, workers-1)}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Map runs fn(i) for every i in [0, n), on the calling goroutine plus any
// pool workers it can borrow, and returns when every call has finished.
// Items are claimed dynamically (work stealing via an atomic cursor), so
// uneven item costs still balance. fn must be safe for concurrent use.
func (p *Pool) Map(n int, fn func(i int)) {
	_ = p.mapInner(nil, n, fn)
}

// MapCtx is Map with cooperative cancellation: once ctx is done no new
// item is started; items already running complete. It returns ctx.Err()
// when the batch was cut short, nil otherwise. Item-level code that wants
// finer-grained cancellation must watch ctx itself.
func (p *Pool) MapCtx(ctx context.Context, n int, fn func(i int)) error {
	return p.mapInner(ctx, n, fn)
}

func (p *Pool) mapInner(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	done := ctx != nil && ctx.Err() != nil
	if done {
		return ctx.Err()
	}
	if n == 1 || p.workers == 1 {
		for i := 0; i < n; i++ {
			if ctx != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			fn(i)
		}
		return nil
	}
	p.maps.Add(1)
	p.items.Add(uint64(n))
	var next atomic.Int64
	run := func() {
		for {
			if ctx != nil && ctx.Err() != nil {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	for helpers := 0; helpers < p.workers-1 && helpers < n-1; helpers++ {
		select {
		case p.tokens <- struct{}{}:
			p.helpers.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.tokens }()
				run()
			}()
		default:
			// Pool saturated: the caller still runs, so progress is
			// guaranteed without blocking on another batch's workers.
			helpers = p.workers // break
		}
	}
	run()
	wg.Wait()
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

// Chunk is a half-open index range [Lo, Hi) of a fanned-out work list.
type Chunk struct {
	Lo, Hi int
}

// Chunks splits n items into contiguous ranges, at most one per worker
// and none smaller than minPer items (the fan-out grain below which
// goroutine overhead beats the scan cost). n <= minPer yields one chunk.
func Chunks(n, workers, minPer int) []Chunk {
	if n <= 0 {
		return nil
	}
	if minPer < 1 {
		minPer = 1
	}
	k := workers
	if k < 1 {
		k = 1
	}
	if max := (n + minPer - 1) / minPer; k > max {
		k = max
	}
	out := make([]Chunk, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := i*n/k, (i+1)*n/k
		if lo < hi {
			out = append(out, Chunk{Lo: lo, Hi: hi})
		}
	}
	return out
}

// MapChunks fans contiguous chunks of [0, n) across the pool and gathers
// one result per chunk, in chunk order. The per-chunk results are what the
// index fan-outs concatenate (and, where required, de-duplicate) into the
// final answer.
func MapChunks[T any](p *Pool, n, minPer int, fn func(lo, hi int) T) []T {
	chunks := Chunks(n, p.Workers(), minPer)
	out := make([]T, len(chunks))
	if len(chunks) == 1 {
		out[0] = fn(chunks[0].Lo, chunks[0].Hi)
		return out
	}
	p.Map(len(chunks), func(i int) { out[i] = fn(chunks[i].Lo, chunks[i].Hi) })
	return out
}

// Result is one row of a batch evaluation: the matching ids, or the error
// that prevented the query from running (today only context cancellation).
type Result struct {
	IDs []model.ObjectID
	Err error
}

// RunBatch evaluates eval over every query concurrently, results[i]
// matching queries[i]. eval must be safe for concurrent use (every index
// in the family supports concurrent readers).
func RunBatch(p *Pool, queries []model.Query, eval func(model.Query) []model.ObjectID) []Result {
	results := make([]Result, len(queries))
	p.Map(len(queries), func(i int) {
		results[i] = Result{IDs: eval(queries[i])}
	})
	return results
}

// RunBatchCtx is RunBatch with cooperative cancellation: queries not yet
// started when ctx fires are marked with Err = ctx.Err() and nil IDs.
func RunBatchCtx(ctx context.Context, p *Pool, queries []model.Query, eval func(model.Query) []model.ObjectID) []Result {
	results := make([]Result, len(queries))
	ran := make([]atomic.Bool, len(queries))
	_ = p.MapCtx(ctx, len(queries), func(i int) {
		results[i] = Result{IDs: eval(queries[i])}
		ran[i].Store(true)
	})
	if err := ctx.Err(); err != nil {
		for i := range results {
			if !ran[i].Load() {
				results[i] = Result{Err: err}
			}
		}
	}
	return results
}
