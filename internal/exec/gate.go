package exec

import "sync/atomic"

// Gate is a lock-free counting semaphore bounding the number of
// requests admitted process-wide. Unlike a channel-based semaphore it
// never blocks: admission control wants an immediate yes/no so the
// caller can shed load with a 503 instead of queueing unboundedly.
type Gate struct {
	capacity int64
	inUse    atomic.Int64
}

// NewGate returns a gate admitting at most capacity concurrent holders.
// Capacity must be positive.
func NewGate(capacity int) *Gate {
	if capacity <= 0 {
		panic("exec: gate capacity must be positive") // lint:panic-ok construction-time programming error
	}
	return &Gate{capacity: int64(capacity)}
}

// TryAcquire claims one slot, reporting false if the gate is full. The
// increment-then-check shape keeps the fast path to a single atomic op;
// an over-admit is immediately rolled back, so InUse can transiently
// read capacity+k under contention but admitted holders never exceed
// capacity.
func (g *Gate) TryAcquire() bool {
	if g.inUse.Add(1) > g.capacity {
		g.inUse.Add(-1)
		return false
	}
	return true
}

// Release returns one slot claimed by a successful TryAcquire.
func (g *Gate) Release() {
	if g.inUse.Add(-1) < 0 {
		panic("exec: gate released more than acquired") // lint:panic-ok caller bug: unbalanced Release
	}
}

// InUse returns the number of currently held slots (transiently up to
// capacity plus the number of racing TryAcquire calls).
func (g *Gate) InUse() int { return int(g.inUse.Load()) }

// Capacity returns the gate's admission bound.
func (g *Gate) Capacity() int { return int(g.capacity) }
