package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/model"
)

func TestMapRunsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 7, 100} {
			var hits sync.Map
			var count atomic.Int64
			p.Map(n, func(i int) {
				if _, loaded := hits.LoadOrStore(i, true); loaded {
					t.Errorf("workers=%d n=%d: item %d ran twice", workers, n, i)
				}
				count.Add(1)
			})
			if int(count.Load()) != n {
				t.Fatalf("workers=%d n=%d: ran %d items", workers, n, count.Load())
			}
		}
	}
}

func TestMapNestedDoesNotDeadlock(t *testing.T) {
	p := NewPool(4)
	var count atomic.Int64
	p.Map(8, func(i int) {
		p.Map(8, func(j int) { count.Add(1) })
	})
	if count.Load() != 64 {
		t.Fatalf("nested map ran %d inner items, want 64", count.Load())
	}
}

func TestMapCtxStopsIssuingWork(t *testing.T) {
	p := NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	var count atomic.Int64
	err := p.MapCtx(ctx, 1000, func(i int) {
		if count.Add(1) == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if count.Load() >= 1000 {
		t.Fatalf("cancellation did not stop the batch (ran %d items)", count.Load())
	}
}

func TestMapCtxAlreadyCancelled(t *testing.T) {
	p := NewPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := p.MapCtx(ctx, 5, func(int) { ran = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("item ran despite pre-cancelled context")
	}
}

func TestChunksCoverExactly(t *testing.T) {
	cases := []struct{ n, workers, minPer int }{
		{0, 4, 1}, {1, 4, 1}, {10, 4, 1}, {10, 4, 8}, {10, 4, 100},
		{1000, 7, 16}, {5, 1, 1}, {16, 16, 2},
	}
	for _, tc := range cases {
		chunks := Chunks(tc.n, tc.workers, tc.minPer)
		next := 0
		for _, c := range chunks {
			if c.Lo != next || c.Hi <= c.Lo {
				t.Fatalf("Chunks(%v): bad chunk %+v at cursor %d", tc, c, next)
			}
			next = c.Hi
		}
		if next != tc.n {
			t.Fatalf("Chunks(%v): covered %d of %d items", tc, next, tc.n)
		}
		if len(chunks) > tc.workers && tc.workers >= 1 {
			t.Fatalf("Chunks(%v): %d chunks exceed worker bound", tc, len(chunks))
		}
	}
}

func TestMapChunksGathersInOrder(t *testing.T) {
	p := NewPool(4)
	sums := MapChunks(p, 100, 3, func(lo, hi int) int {
		s := 0
		for i := lo; i < hi; i++ {
			s += i
		}
		return s
	})
	total := 0
	for _, s := range sums {
		total += s
	}
	if total != 99*100/2 {
		t.Fatalf("chunk sums total %d, want %d", total, 99*100/2)
	}
}

func TestRunBatchMatchesSerial(t *testing.T) {
	p := NewPool(4)
	queries := make([]model.Query, 50)
	for i := range queries {
		queries[i] = model.Query{Interval: model.NewInterval(int64(i), int64(i+10))}
	}
	eval := func(q model.Query) []model.ObjectID {
		return []model.ObjectID{model.ObjectID(q.Interval.Start), model.ObjectID(q.Interval.End)}
	}
	results := RunBatch(p, queries, eval)
	if len(results) != len(queries) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("result %d: unexpected error %v", i, r.Err)
		}
		want := eval(queries[i])
		if !model.EqualIDs(r.IDs, want) {
			t.Fatalf("result %d: got %v want %v", i, r.IDs, want)
		}
	}
}

func TestRunBatchCtxMarksUnstarted(t *testing.T) {
	p := NewPool(1)
	ctx, cancel := context.WithCancel(context.Background())
	queries := make([]model.Query, 100)
	for i := range queries {
		queries[i] = model.Query{Interval: model.NewInterval(0, 1)}
	}
	var ran atomic.Int64
	results := RunBatchCtx(ctx, p, queries, func(q model.Query) []model.ObjectID {
		if ran.Add(1) == 2 {
			cancel()
		}
		return []model.ObjectID{1}
	})
	var errs, oks int
	for _, r := range results {
		switch {
		case r.Err != nil && r.IDs == nil:
			errs++
		case r.Err == nil && len(r.IDs) == 1:
			oks++
		default:
			t.Fatalf("result in mixed state: %+v", r)
		}
	}
	if errs == 0 || oks == 0 || errs+oks != len(queries) {
		t.Fatalf("errs=%d oks=%d of %d", errs, oks, len(queries))
	}
}
