package exec

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestGateBounds(t *testing.T) {
	g := NewGate(2)
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("gate rejected within capacity")
	}
	if g.TryAcquire() {
		t.Fatal("gate admitted past capacity")
	}
	if g.InUse() != 2 {
		t.Fatalf("InUse = %d", g.InUse())
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("gate rejected after release")
	}
	g.Release()
	g.Release()
	if g.InUse() != 0 {
		t.Fatalf("InUse after drain = %d", g.InUse())
	}
	if g.Capacity() != 2 {
		t.Fatalf("Capacity = %d", g.Capacity())
	}
}

func TestGateUnbalancedReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Release did not panic")
		}
	}()
	NewGate(1).Release()
}

func TestGateConcurrentNeverOverAdmits(t *testing.T) {
	const capacity, workers, rounds = 4, 32, 200
	g := NewGate(capacity)
	var held, peak atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if !g.TryAcquire() {
					continue
				}
				h := held.Add(1)
				for {
					p := peak.Load()
					if h <= p || peak.CompareAndSwap(p, h) {
						break
					}
				}
				held.Add(-1)
				g.Release()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > capacity {
		t.Fatalf("peak admitted %d > capacity %d", p, capacity)
	}
	if g.InUse() != 0 {
		t.Fatalf("InUse after drain = %d", g.InUse())
	}
}
