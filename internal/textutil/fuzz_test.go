package textutil

import (
	"testing"
	"unicode"
)

// FuzzTokenize checks the tokenizer invariants on arbitrary input: only
// lowercase alphanumeric tokens, no stopwords, min-length respected.
func FuzzTokenize(f *testing.F) {
	f.Add("Hello, World!")
	f.Add("the and of")
	f.Add("日本語 text with ünïcode")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		for _, tok := range Tokenize(text, Options{MinLength: 2}) {
			if len([]rune(tok)) < 2 {
				t.Fatalf("short token %q", tok)
			}
			if IsStopword(tok) {
				t.Fatalf("stopword %q leaked", tok)
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("non-alphanumeric rune in %q", tok)
				}
				if unicode.IsUpper(r) {
					t.Fatalf("uppercase rune in %q", tok)
				}
			}
			// Note: we deliberately do not assert substring containment
			// against strings.ToLower(text) — Unicode special cases
			// (final sigma, dotted I) lowercase differently under the
			// per-rune mapping the tokenizer uses.
		}
	})
}
