package textutil

import (
	"testing"
)

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTokenizeBasics(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"", nil},
		{"   ", nil},
		{"one-two_three", []string{"one", "two", "three"}},
		{"The cat and the hat", []string{"cat", "hat"}},
		{"C3PO met R2D2", []string{"c3po", "met", "r2d2"}},
		{"ALLCAPS", []string{"allcaps"}},
	}
	for _, tt := range tests {
		if got := Tokenize(tt.in, Options{}); !equal(got, tt.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("Füř Élise — Beethoven", Options{})
	want := []string{"füř", "élise", "beethoven"}
	if !equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestKeepStopwords(t *testing.T) {
	got := Tokenize("the cat", Options{KeepStopwords: true})
	want := []string{"the", "cat"}
	if !equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestMinLength(t *testing.T) {
	got := Tokenize("a bb ccc dddd", Options{KeepStopwords: true, MinLength: 3})
	want := []string{"ccc", "dddd"}
	if !equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	// MinLength counts runes, not bytes.
	got = Tokenize("éé z", Options{MinLength: 2})
	want = []string{"éé"}
	if !equal(got, want) {
		t.Errorf("rune counting: got %v, want %v", got, want)
	}
}

func TestTokenizePreservesDuplicates(t *testing.T) {
	got := Tokenize("go go go", Options{})
	if len(got) != 3 {
		t.Errorf("got %v", got)
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") || IsStopword("cat") {
		t.Error("IsStopword misbehaved")
	}
}
