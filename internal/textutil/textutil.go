// Package textutil provides the light text-normalization pipeline the
// string-facing layers use before interning terms: Unicode-aware
// lowercasing, alphanumeric tokenization and an English stopword filter.
// It keeps the Engine honest on real document text (the WIKIPEDIA use
// case) without pulling in external analyzers.
package textutil

import (
	"strings"
	"unicode"
)

// stopwords is a compact English list; terms this frequent carry no
// selectivity and only lengthen postings lists.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "from": true,
	"had": true, "has": true, "have": true, "he": true, "her": true,
	"his": true, "i": true, "in": true, "is": true, "it": true, "its": true,
	"not": true, "of": true, "on": true, "or": true, "she": true,
	"that": true, "the": true, "their": true, "they": true, "this": true,
	"to": true, "was": true, "were": true, "will": true, "with": true,
	"you": true,
}

// Options tunes Tokenize.
type Options struct {
	// KeepStopwords disables the stopword filter.
	KeepStopwords bool
	// MinLength drops tokens shorter than this many runes (default 1).
	MinLength int
}

// Tokenize splits text into normalized terms: lowercase runs of letters
// and digits, with stopwords removed unless kept. The result preserves
// order and duplicates; callers that need set semantics intern through
// the dictionary, which deduplicates.
func Tokenize(text string, opts Options) []string {
	if opts.MinLength < 1 {
		opts.MinLength = 1
	}
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		tok := b.String()
		b.Reset()
		if len([]rune(tok)) < opts.MinLength {
			return
		}
		if !opts.KeepStopwords && stopwords[tok] {
			return
		}
		out = append(out, tok)
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
			continue
		}
		flush()
	}
	flush()
	return out
}

// IsStopword reports whether the (already lowercased) term is filtered by
// default.
func IsStopword(term string) bool { return stopwords[term] }
