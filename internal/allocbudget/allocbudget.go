// Package allocbudget is the dynamic half of the irlint v4 allocation
// contracts: checked-in per-kernel allocation budgets, enforced by tier-1
// tests. The static analyzers (alloc-hot, append-grow, defer-in-loop,
// iface-dispatch) prove the shape of the hot path; this package pins the
// measured steady-state allocs/op and B/op of the annotated kernels so a
// regression the static layer cannot see — a stdlib change, an escape the
// compiler starts making, a lost buffer reuse — fails CI.
//
// Budgets live in BENCH_BUDGET.json at the module root. `make benchmem`
// re-measures and rewrites the file (ALLOC_BUDGET_RECORD=1), then
// re-runs the tests in enforcement mode against the fresh numbers.
package allocbudget

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// BudgetFile is the checked-in budget table at the module root.
const BudgetFile = "BENCH_BUDGET.json"

// RecordEnv, when set to a non-empty value, switches Gate from
// enforcement to record mode: measured numbers overwrite the entry.
const RecordEnv = "ALLOC_BUDGET_RECORD"

// Entry is one kernel's allocation budget: the steady-state
// allocations and bytes per benchmark operation.
type Entry struct {
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// bytesSlackPct is the enforcement slack on B/op: byte counts wobble
// with amortized growth and size-class rounding where allocation counts
// do not, so bytes regress only past this percentage over budget.
const bytesSlackPct = 25

// Gate benchmarks the kernel in-process and compares it against the
// checked-in budget. In record mode (RecordEnv set) it instead writes
// the measured numbers back to the budget file. The benchmark must
// ReportAllocs or rely on testing.Benchmark's built-in MemAllocs
// tracking (always on for the returned BenchmarkResult).
func Gate(t *testing.T, kernel string, bench func(b *testing.B)) {
	t.Helper()
	if raceEnabled {
		t.Skipf("allocbudget: skipping %s under -race; instrumentation changes allocation counts", kernel)
	}
	res := testing.Benchmark(bench)
	if res.N == 0 {
		t.Fatalf("allocbudget: benchmark for %s did not run", kernel)
	}
	got := Entry{AllocsPerOp: res.AllocsPerOp(), BytesPerOp: res.AllocedBytesPerOp()}

	path, err := budgetPath()
	if err != nil {
		t.Fatalf("allocbudget: %v", err)
	}
	if os.Getenv(RecordEnv) != "" {
		if err := record(path, kernel, got); err != nil {
			t.Fatalf("allocbudget: recording %s: %v", kernel, err)
		}
		t.Logf("allocbudget: recorded %s: %d allocs/op, %d B/op", kernel, got.AllocsPerOp, got.BytesPerOp)
		return
	}

	budgets, err := load(path)
	if err != nil {
		t.Fatalf("allocbudget: %v", err)
	}
	want, ok := budgets[kernel]
	if !ok {
		t.Fatalf("allocbudget: no budget for %s in %s; run `make benchmem` to record one", kernel, BudgetFile)
	}
	if got.AllocsPerOp > want.AllocsPerOp {
		t.Errorf("allocbudget: %s allocates %d allocs/op, budget is %d; fix the regression or re-budget with `make benchmem`",
			kernel, got.AllocsPerOp, want.AllocsPerOp)
	}
	if limit := want.BytesPerOp + want.BytesPerOp*bytesSlackPct/100; got.BytesPerOp > limit {
		t.Errorf("allocbudget: %s allocates %d B/op, budget is %d (+%d%% slack = %d); fix the regression or re-budget with `make benchmem`",
			kernel, got.BytesPerOp, want.BytesPerOp, bytesSlackPct, limit)
	}
}

// budgetPath walks up from the working directory to the module root
// (the directory holding go.mod) and returns the budget file path.
func budgetPath() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, BudgetFile), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

func load(path string) (map[string]Entry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]Entry{}, nil
	}
	if err != nil {
		return nil, err
	}
	out := make(map[string]Entry)
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return out, nil
}

// record read-modify-writes one entry, keeping the file sorted by key
// so re-recording produces minimal diffs.
func record(path, kernel string, e Entry) error {
	budgets, err := load(path)
	if err != nil {
		return err
	}
	budgets[kernel] = e
	keys := make([]string, 0, len(budgets))
	for k := range budgets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Hand-rolled ordered emission: encoding/json sorts map keys too,
	// but an explicit object keeps the format obvious and stable.
	var buf []byte
	buf = append(buf, "{\n"...)
	for i, k := range keys {
		kb, _ := json.Marshal(k)
		vb, _ := json.Marshal(budgets[k])
		buf = append(buf, "  "...)
		buf = append(buf, kb...)
		buf = append(buf, ": "...)
		buf = append(buf, vb...)
		if i < len(keys)-1 {
			buf = append(buf, ',')
		}
		buf = append(buf, '\n')
	}
	buf = append(buf, "}\n"...)
	return os.WriteFile(path, buf, 0o644)
}
