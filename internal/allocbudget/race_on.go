//go:build race

package allocbudget

const raceEnabled = true
