package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	temporalir "repro"
	"repro/internal/model"
)

// ShardScaleRow is one row of the shard-count sweep: the same corpus
// streamed into a Sharded engine at a given shard count, then deleted
// from and compacted. Insert cost shrinks with per-shard store size and
// compaction fans out across shards, so both columns should improve
// with the shard count; queries pay a small merge tax in exchange.
type ShardScaleRow struct {
	Shards int `json:"shards"`
	// InsertsPerSec is streaming Insert throughput (one writer, the
	// engine's write API — routing plus per-shard memtable append).
	InsertsPerSec float64 `json:"inserts_per_sec"`
	// InsertSpeedup is InsertsPerSec relative to the 1-shard row.
	InsertSpeedup float64 `json:"insert_speedup"`
	// CompactMs is the wall time of one full compaction after deleting
	// a fifth of the corpus, with parallelism equal to the shard count.
	CompactMs float64 `json:"compact_ms"`
	// CompactSpeedup is the 1-shard CompactMs divided by this row's.
	CompactSpeedup float64 `json:"compact_speedup"`
	// QueryQPS is scatter-gather Search throughput over the default
	// workload — the merge tax the reader pays for write scaling.
	QueryQPS float64 `json:"query_qps"`
}

// ShardPartialRow records the partial-result demonstration: a 4-shard
// engine with a 1ns per-shard deadline answers the whole workload
// through SearchShardsCtx. Every response must either be complete or
// name its cut shards — Partial counts the latter, and the coordinator
// counters confirm nothing was dropped silently.
type ShardPartialRow struct {
	Shards         int    `json:"shards"`
	ShardTimeoutNs int64  `json:"shard_timeout_ns"`
	Queries        int    `json:"queries"`
	Complete       int    `json:"complete"`
	Partial        int    `json:"partial"`
	ShardsCut      uint64 `json:"shards_cut_total"`
	ShardsPruned   uint64 `json:"shards_pruned_total"`
}

// ShardJSONReport is the BENCH_pr10.json schema. Methods carries the
// same untraced_queries_per_sec rows as the earlier snapshots so
// cmd/benchdiff gates this artifact against BENCH_pr9.json directly;
// Scaling and Partial carry the sharded-engine evaluation.
type ShardJSONReport struct {
	Scale      float64         `json:"scale"`
	NumQueries int             `json:"num_queries"`
	Seed       int64           `json:"seed"`
	Objects    int             `json:"objects"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Methods    []ObsMethod     `json:"methods"`
	Scaling    []ShardScaleRow `json:"shard_scaling"`
	Partial    ShardPartialRow `json:"shard_partial"`
}

// shardCounts is the sweep of the scaling experiment.
var shardCounts = []int{1, 2, 4, 8}

// RunShardJSON measures the sharded engine: (1) every method's
// untraced throughput on the default workload — the benchdiff-gated
// rows; (2) streaming insert and parallel compaction throughput at
// 1/2/4/8 shards over one corpus; (3) the explicit partial-result
// contract under an absurd 1ns per-shard deadline. cfg.JSONPath
// receives the ShardJSONReport (BENCH_pr10.json).
func RunShardJSON(cfg Config) {
	cfg = cfg.Normalize()
	coll := syntheticDefault(cfg, nil)
	queries := defaultWorkload(coll, cfg)
	report := ShardJSONReport{
		Scale:      cfg.Scale,
		NumQueries: cfg.NumQueries,
		Seed:       cfg.Seed,
		Objects:    coll.Len(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	// (1) The benchdiff-gated method rows.
	tbl := &Table{
		Title:  "Untraced throughput, default workload (benchdiff rows)",
		Header: []string{"method", "queries/s"},
	}
	methods := append([]temporalir.Method{temporalir.TIF}, temporalir.Methods()...)
	methods = append(methods, temporalir.Routed)
	for _, m := range methods {
		ix, _ := MeasureBuild(m, coll, temporalir.Options{})
		best := 0.0
		for i := 0; i < 5; i++ {
			if qps := Throughput(ix, queries); qps > best {
				best = qps
			}
		}
		report.Methods = append(report.Methods, ObsMethod{
			Method:      string(m),
			Label:       shortName(m),
			UntracedQPS: best,
		})
		tbl.Add(shortName(m), f0(best))
	}
	tbl.Fprint(cfg.Out)

	// (2) The shard-count sweep.
	stbl := &Table{
		Title:  "Shard scaling: one corpus, 1/2/4/8 shards",
		Header: []string{"shards", "inserts/s", "speedup", "compact ms", "speedup", "query q/s"},
	}
	lo, hi := corpusBounds(coll)
	for _, n := range shardCounts {
		row := runShardScale(coll, queries, n, lo, hi)
		if len(report.Scaling) > 0 {
			base := report.Scaling[0]
			row.InsertSpeedup = row.InsertsPerSec / base.InsertsPerSec
			if row.CompactMs > 0 {
				row.CompactSpeedup = base.CompactMs / row.CompactMs
			}
		} else {
			row.InsertSpeedup = 1
			row.CompactSpeedup = 1
		}
		report.Scaling = append(report.Scaling, row)
		stbl.Add(fmt.Sprint(n), f0(row.InsertsPerSec), f2(row.InsertSpeedup),
			f2(row.CompactMs), f2(row.CompactSpeedup), f0(row.QueryQPS))
	}
	stbl.Fprint(cfg.Out)

	// (3) The partial-result contract under a 1ns per-shard deadline.
	report.Partial = runShardPartial(coll, queries, lo, hi)
	ptbl := &Table{
		Title:  "Partial-result contract (4 shards, 1ns per-shard deadline)",
		Header: []string{"queries", "complete", "partial", "shards cut", "shards pruned"},
	}
	ptbl.Add(fmt.Sprint(report.Partial.Queries), fmt.Sprint(report.Partial.Complete),
		fmt.Sprint(report.Partial.Partial), fmt.Sprint(report.Partial.ShardsCut),
		fmt.Sprint(report.Partial.ShardsPruned))
	ptbl.Fprint(cfg.Out)

	if cfg.JSONPath == "" {
		return
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(cfg.Out, "shardjson: marshal: %v\n", err)
		return
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(cfg.JSONPath, blob, 0o644); err != nil {
		fmt.Fprintf(cfg.Out, "shardjson: write %s: %v\n", cfg.JSONPath, err)
		return
	}
	fmt.Fprintf(cfg.Out, "\nwrote %s\n", cfg.JSONPath)
}

// corpusBounds derives the time-range partition domain from the data.
func corpusBounds(coll *model.Collection) (lo, hi temporalir.Timestamp) {
	if coll.Len() == 0 {
		return 0, 1
	}
	lo, hi = coll.Objects[0].Interval.Start, coll.Objects[0].Interval.End
	for i := range coll.Objects {
		o := &coll.Objects[i]
		if o.Interval.Start < lo {
			lo = o.Interval.Start
		}
		if o.Interval.End > hi {
			hi = o.Interval.End
		}
	}
	return lo, hi
}

// newShardedOver constructs an empty time-range-partitioned engine for
// the sweep, with fan-out parallelism matching the shard count.
func newShardedOver(shards int, lo, hi temporalir.Timestamp) *temporalir.Sharded {
	sh, err := temporalir.NewSharded(temporalir.TIF, temporalir.Options{}, temporalir.ShardedOptions{
		Shards:    shards,
		Partition: temporalir.PartitionTimeRange,
		Bounds:    temporalir.Interval{Start: lo, End: hi}, // lint:interval-ok corpusBounds guarantees lo <= hi
	})
	if err != nil {
		panic(err) // lint:panic-ok static configuration cannot fail
	}
	sh.SetParallelism(shards)
	return sh
}

// runShardScale streams the corpus into an n-shard engine and times
// the write path end to end: inserts, then a compaction after deleting
// every fifth object. Best of three trials for the insert rate.
func runShardScale(coll *model.Collection, queries []model.Query, n int, lo, hi temporalir.Timestamp) ShardScaleRow {
	row := ShardScaleRow{Shards: n}
	var final *temporalir.Sharded
	for trial := 0; trial < 3; trial++ {
		sh := newShardedOver(n, lo, hi)
		start := time.Now()
		for i := range coll.Objects {
			o := &coll.Objects[i]
			terms := make([]string, len(o.Elems))
			for k, e := range o.Elems {
				terms[k] = fmt.Sprintf("e%d", e)
			}
			sh.Insert(o.Interval.Start, o.Interval.End, terms...)
		}
		if rate := float64(coll.Len()) / time.Since(start).Seconds(); rate > row.InsertsPerSec {
			row.InsertsPerSec = rate
		}
		final = sh
	}
	for i := 0; i < coll.Len(); i += 5 {
		if err := final.Delete(temporalir.ObjectID(i)); err != nil {
			panic(err) // lint:panic-ok ids are dense by construction
		}
	}
	start := time.Now()
	// irlint:ctx-root benchmark driver owns the process lifetime; there is no caller context to inherit
	if _, err := final.Compact(context.Background()); err != nil {
		panic(err) // lint:panic-ok background ctx cannot expire
	}
	row.CompactMs = float64(time.Since(start).Microseconds()) / 1000
	row.QueryQPS = shardedThroughput(final, queries)
	return row
}

// shardedThroughput is Throughput for the string-term Sharded surface.
func shardedThroughput(sh *temporalir.Sharded, queries []model.Query) float64 {
	const minDuration = 20 * time.Millisecond
	if len(queries) == 0 {
		return 0
	}
	termRows := make([][]string, len(queries))
	for i, q := range queries {
		termRows[i] = queryTerms(q)
	}
	ran := 0
	start := time.Now()
	for time.Since(start) < minDuration {
		for i, q := range queries {
			_ = sh.Search(q.Interval.Start, q.Interval.End, termRows[i]...)
			ran++
		}
	}
	return float64(ran) / time.Since(start).Seconds()
}

// runShardPartial exercises the explicit partial-result contract: with
// a 1ns per-shard deadline every answer must either carry all planned
// shards or name the cut ones. The returned row is the tally.
func runShardPartial(coll *model.Collection, queries []model.Query, lo, hi temporalir.Timestamp) ShardPartialRow {
	const shards = 4
	sh, err := temporalir.NewSharded(temporalir.TIF, temporalir.Options{}, temporalir.ShardedOptions{
		Shards:       shards,
		Partition:    temporalir.PartitionTimeRange,
		Bounds:       temporalir.Interval{Start: lo, End: hi}, // lint:interval-ok corpusBounds guarantees lo <= hi
		ShardTimeout: time.Nanosecond,
	})
	if err != nil {
		panic(err) // lint:panic-ok static configuration cannot fail
	}
	sh.SetParallelism(shards)
	for i := range coll.Objects {
		o := &coll.Objects[i]
		terms := make([]string, len(o.Elems))
		for k, e := range o.Elems {
			terms[k] = fmt.Sprintf("e%d", e)
		}
		sh.Insert(o.Interval.Start, o.Interval.End, terms...)
	}
	row := ShardPartialRow{Shards: shards, ShardTimeoutNs: 1, Queries: len(queries)}
	// irlint:ctx-root benchmark driver owns the process lifetime; there is no caller context to inherit
	ctx := context.Background()
	for _, q := range queries {
		_, rep, err := sh.SearchShardsCtx(ctx, q.Interval.Start, q.Interval.End, queryTerms(q)...)
		if err != nil {
			panic(err) // lint:panic-ok cut shards report, not error
		}
		if rep.Partial() {
			row.Partial++
		} else {
			row.Complete++
		}
	}
	cs := sh.CoordinatorStats()
	row.ShardsCut = cs.ShardsCut
	row.ShardsPruned = cs.ShardsPruned
	return row
}
