package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	temporalir "repro"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/tenant"
)

// TenantFleet is one row of the multi-tenant serving experiment: N
// identical tenants, each with its own engine over the same corpus,
// hammering the shared admission stack (global gate + weighted fair
// share) concurrently for a fixed wall budget.
type TenantFleet struct {
	Tenants int `json:"tenants"`
	// Greedy marks the variant where tenant 0 runs one worker per gate
	// slot instead of one: the fair share must hold it to its fraction
	// (ShareRejects > 0) while the polite siblings keep their throughput.
	Greedy bool `json:"greedy,omitempty"`
	// AggregateQPS sums every tenant's served queries per second.
	AggregateQPS float64 `json:"aggregate_qps"`
	// PerTenantQPS is the mean across tenants.
	PerTenantQPS float64 `json:"per_tenant_qps"`
	MinQPS       float64 `json:"min_qps"`
	MaxQPS       float64 `json:"max_qps"`
	// FairnessRatio is MinQPS/MaxQPS: 1.0 is perfectly fair, small
	// values mean some tenant starved.
	FairnessRatio float64 `json:"fairness_ratio"`
	// P99Ms is the worst per-tenant p99 query latency in milliseconds —
	// the QoS number a tenant actually experiences under contention.
	P99Ms float64 `json:"p99_ms"`
	// ShareRejects counts fair-share rejections across the run: zero at
	// one tenant (a lone tenant owns the whole gate), nonzero under
	// contention (the mechanism actually engaged).
	ShareRejects uint64 `json:"share_rejects"`
}

// TenantReport is the BENCH_pr9.json schema. Methods carries the same
// untraced_queries_per_sec rows as the earlier snapshots so
// cmd/benchdiff gates this artifact against BENCH_pr8.json directly;
// Fleets carries the multi-tenant serving evaluation.
type TenantReport struct {
	Scale      float64       `json:"scale"`
	NumQueries int           `json:"num_queries"`
	Seed       int64         `json:"seed"`
	Objects    int           `json:"objects"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Methods    []ObsMethod   `json:"methods"`
	Fleets     []TenantFleet `json:"fleets"`
}

// fleetSizes are the tenant counts of the serving sweep.
var fleetSizes = []int{1, 4, 16}

// fleetBudget scales the wall time with the fleet so every tenant gets
// enough scheduler slices for a stable rate even on a single-core box.
func fleetBudget(n int) time.Duration {
	d := time.Duration(n) * 100 * time.Millisecond
	if d < 200*time.Millisecond {
		d = 200 * time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// RunTenantJSON measures the multi-tenant serving layer: (1) every
// method's untraced throughput on the default workload — the
// benchdiff-gated rows; (2) per-tenant throughput, tail latency and
// fairness with 1, 4 and 16 tenants sharing one node through the
// gate + fair-share admission stack. cfg.JSONPath receives the
// TenantReport (BENCH_pr9.json).
func RunTenantJSON(cfg Config) {
	cfg = cfg.Normalize()
	coll := syntheticDefault(cfg, nil)
	queries := defaultWorkload(coll, cfg)
	report := TenantReport{
		Scale:      cfg.Scale,
		NumQueries: cfg.NumQueries,
		Seed:       cfg.Seed,
		Objects:    coll.Len(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	// (1) The benchdiff-gated method rows.
	tbl := &Table{
		Title:  "Untraced throughput, default workload (benchdiff rows)",
		Header: []string{"method", "queries/s"},
	}
	methods := append([]temporalir.Method{temporalir.TIF}, temporalir.Methods()...)
	methods = append(methods, temporalir.Routed)
	for _, m := range methods {
		ix, _ := MeasureBuild(m, coll, temporalir.Options{})
		best := 0.0
		for i := 0; i < 5; i++ {
			if qps := Throughput(ix, queries); qps > best {
				best = qps
			}
		}
		report.Methods = append(report.Methods, ObsMethod{
			Method:      string(m),
			Label:       shortName(m),
			UntracedQPS: best,
		})
		tbl.Add(shortName(m), f0(best))
	}
	tbl.Fprint(cfg.Out)

	// (2) The serving sweep. Every tenant gets its own engine over the
	// same corpus (isolation is the product constraint, identical data
	// keeps per-tenant work comparable); queries go through the same
	// admission stack internal/server runs: a global gate sized like the
	// server's default, fair share over it.
	ftbl := &Table{
		Title:  "Multi-tenant serving (gate + fair share)",
		Header: []string{"tenants", "per-tenant q/s", "min q/s", "max q/s", "fairness", "worst p99 ms", "share rejects"},
	}
	for _, n := range fleetSizes {
		row := runFleet(cfg, coll, queries, n, false)
		report.Fleets = append(report.Fleets, row)
		ftbl.Add(fmt.Sprint(n), f0(row.PerTenantQPS), f0(row.MinQPS), f0(row.MaxQPS),
			f2(row.FairnessRatio), f2(row.P99Ms), fmt.Sprint(row.ShareRejects))
	}
	// The QoS case: one tenant floods the gate with a worker per slot;
	// fair share must pin it to its fraction while siblings keep serving.
	greedy := runFleet(cfg, coll, queries, 4, true)
	report.Fleets = append(report.Fleets, greedy)
	ftbl.Add("4+greedy", f0(greedy.PerTenantQPS), f0(greedy.MinQPS), f0(greedy.MaxQPS),
		f2(greedy.FairnessRatio), f2(greedy.P99Ms), fmt.Sprint(greedy.ShareRejects))
	ftbl.Fprint(cfg.Out)

	if cfg.JSONPath == "" {
		return
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(cfg.Out, "tenantjson: marshal: %v\n", err)
		return
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(cfg.JSONPath, blob, 0o644); err != nil {
		fmt.Fprintf(cfg.Out, "tenantjson: write %s: %v\n", cfg.JSONPath, err)
		return
	}
	fmt.Fprintf(cfg.Out, "\nwrote %s\n", cfg.JSONPath)
}

// buildTenantEngine constructs one tenant's engine from the shared
// collection, surfacing element ids as "e<ID>" terms (the same mapping
// irserve uses for .tirc datasets).
func buildTenantEngine(coll *model.Collection) *temporalir.Engine {
	b := temporalir.NewBuilder()
	for i := range coll.Objects {
		o := &coll.Objects[i]
		terms := make([]string, len(o.Elems))
		for k, e := range o.Elems {
			terms[k] = fmt.Sprintf("e%d", e)
		}
		b.Add(o.Interval.Start, o.Interval.End, terms...)
	}
	eng, err := b.Build(temporalir.IRHintPerf, temporalir.Options{})
	if err != nil {
		panic(err) // lint:panic-ok registry methods cannot fail
	}
	return eng
}

// queryTerms translates a model workload query to the engine's string
// vocabulary.
func queryTerms(q model.Query) []string {
	terms := make([]string, len(q.Elems))
	for i, e := range q.Elems {
		terms[i] = fmt.Sprintf("e%d", e)
	}
	return terms
}

// runFleet runs n tenants concurrently for the fleet's wall budget and
// reports per-tenant throughput, fairness and worst-tenant p99. Each
// tenant normally runs one synchronous worker (one slot in flight, like
// a well-behaved client); greedy gives tenant 0 a worker per gate slot.
func runFleet(cfg Config, coll *model.Collection, queries []model.Query, n int, greedy bool) TenantFleet {
	engines := make([]*temporalir.Engine, n)
	for i := range engines {
		engines[i] = buildTenantEngine(coll)
	}
	termRows := make([][]string, len(queries))
	for i, q := range queries {
		termRows[i] = queryTerms(q)
	}

	capacity := 4 * runtime.GOMAXPROCS(0) // the server's default MaxInFlight
	gate := exec.NewGate(capacity)
	fair := tenant.NewFairShare(capacity, 0)

	type tenantStats struct {
		served    atomic.Int64
		rejects   atomic.Uint64
		mu        sync.Mutex
		latencies []time.Duration
	}
	stats := make([]*tenantStats, n)
	for i := range stats {
		stats[i] = &tenantStats{}
	}
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(fleetBudget(n))
	// Each admission covers a batch of queries — the same one-slot-per-
	// batch accounting the server's /search/batch endpoint uses. Long
	// holds are what makes admission measurable: per-query holds on a
	// sub-millisecond workload almost never overlap, and the sweep would
	// measure the Go scheduler instead of the admission stack.
	const batchOps = 256
	worker := func(ti int) {
		id := fmt.Sprintf("t%02d", ti)
		eng := engines[ti]
		st := stats[ti]
		var lat []time.Duration
		for qi := 0; time.Now().Before(deadline); {
			// The server's admission order: gate, then fair share.
			if !gate.TryAcquire() {
				runtime.Gosched()
				continue
			}
			if !fair.Acquire(id, 1, time.Now()) {
				gate.Release()
				st.rejects.Add(1)
				runtime.Gosched()
				continue
			}
			lat = lat[:0]
			for b := 0; b < batchOps; b++ {
				q := queries[qi%len(queries)]
				terms := termRows[qi%len(queries)]
				qi++
				t0 := time.Now()
				_ = eng.Search(q.Interval.Start, q.Interval.End, terms...)
				lat = append(lat, time.Since(t0))
				if b%32 == 31 {
					// Yield mid-hold, as a handler does on response I/O;
					// this is what lets same-tenant workers overlap (and
					// the share cap engage) even on one core.
					runtime.Gosched()
				}
			}
			st.served.Add(batchOps)
			fair.Release(id)
			gate.Release()
			st.mu.Lock()
			st.latencies = append(st.latencies, lat...)
			st.mu.Unlock()
			// Yield at the batch boundary, as an HTTP handler naturally
			// would between requests.
			runtime.Gosched()
		}
	}
	for ti := 0; ti < n; ti++ {
		workers := 1
		if greedy && ti == 0 {
			workers = capacity
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(ti int) {
				defer wg.Done()
				worker(ti)
			}(ti)
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	row := TenantFleet{Tenants: n, Greedy: greedy, MinQPS: -1}
	var worstP99 time.Duration
	for i := range stats {
		qps := float64(stats[i].served.Load()) / elapsed
		row.AggregateQPS += qps
		if row.MinQPS < 0 || qps < row.MinQPS {
			row.MinQPS = qps
		}
		if qps > row.MaxQPS {
			row.MaxQPS = qps
		}
		row.ShareRejects += stats[i].rejects.Load()
		if p := p99(stats[i].latencies); p > worstP99 {
			worstP99 = p
		}
	}
	row.PerTenantQPS = row.AggregateQPS / float64(n)
	if row.MaxQPS > 0 {
		row.FairnessRatio = row.MinQPS / row.MaxQPS
	}
	row.P99Ms = float64(worstP99) / float64(time.Millisecond)
	return row
}

// p99 returns the 99th-percentile duration (zero for empty input).
func p99(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * 99 / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
