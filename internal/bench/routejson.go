package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	temporalir "repro"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/route"
)

// RouteRegime is one per-regime row of the routing artifact: the routed
// index's throughput on a workload pinned to one Section 5 regime,
// against the best single routed sub-build on the same workload, plus
// where the router actually sent the queries.
type RouteRegime struct {
	Regime     string  `json:"regime"`
	ExtentFrac float64 `json:"extent_frac"`
	NumElems   int     `json:"num_elems"`
	// FreqBin indexes gen.FreqBins, -1 = the default seeded mix.
	FreqBin    int     `json:"freq_bin"`
	RoutedQPS  float64 `json:"routed_qps"`
	BestMethod string  `json:"best_method"`
	BestQPS    float64 `json:"best_qps"`
	// RoutedVsBest is RoutedQPS / BestQPS — how close routing gets to
	// the per-regime oracle that always picks the fastest build.
	RoutedVsBest float64 `json:"routed_vs_best"`
	// Decisions counts this regime's routing decisions by sub-method.
	Decisions map[string]uint64 `json:"decisions"`
	// HitRate is the fraction of decisions that chose BestMethod.
	HitRate float64 `json:"hit_rate"`
}

// RouteReport is the BENCH_pr8.json schema. Methods carries the same
// untraced_queries_per_sec rows as the obsjson snapshots (so
// cmd/benchdiff gates this artifact against BENCH_pr7.json directly),
// extended with a "routed" row; Regimes carries the router evaluation.
type RouteReport struct {
	Scale         float64       `json:"scale"`
	NumQueries    int           `json:"num_queries"`
	Seed          int64         `json:"seed"`
	Objects       int           `json:"objects"`
	GoMaxProcs    int           `json:"gomaxprocs"`
	Methods       []ObsMethod   `json:"methods"`
	RoutedMethods []string      `json:"routed_methods"`
	Regimes       []RouteRegime `json:"regimes"`
}

// routeRegimes are the pinned workloads of the router evaluation,
// following the paper's extent / |q.d| / frequency sweeps: the default
// mix, the small- and large-extent ends of the extent sweep, the dense
// regime (frequent elements, wide intervals — where the bitmap
// containers and merge-style intersections earn their keep), and the
// rare-element regime where the flat tIF wins.
var routeRegimes = []struct {
	name    string
	cfg     gen.QueryConfig
	freqBin int
}{
	{"default", gen.DefaultQueryConfig(), -1},
	{"extent-small", gen.QueryConfig{ExtentFrac: 0.0001, NumElems: 3}, -1},
	{"extent-large", gen.QueryConfig{ExtentFrac: 0.1, NumElems: 3}, -1},
	{"dense", gen.QueryConfig{ExtentFrac: 0.1, NumElems: 2, FreqBin: &gen.FreqBins[3]}, 3},
	{"rare", gen.QueryConfig{ExtentFrac: 0.001, NumElems: 2, FreqBin: &gen.FreqBins[0]}, 0},
}

// RunRouteJSON measures the adaptive router: (1) every method's —
// including Routed's — untraced throughput on the default workload, the
// benchdiff-gated rows; (2) per Section 5 regime, the routed index
// against the best single sub-build, with the router's decision tally
// and hit rate. cfg.JSONPath receives the RouteReport (BENCH_pr8.json).
func RunRouteJSON(cfg Config) {
	cfg = cfg.Normalize()
	coll := syntheticDefault(cfg, nil)
	queries := defaultWorkload(coll, cfg)
	report := RouteReport{
		Scale:      cfg.Scale,
		NumQueries: cfg.NumQueries,
		Seed:       cfg.Seed,
		Objects:    coll.Len(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	bestOf := func(qs []model.Query, ix temporalir.Index) float64 {
		best := 0.0
		for i := 0; i < 5; i++ {
			if qps := Throughput(ix, qs); qps > best {
				best = qps
			}
		}
		return best
	}

	// (1) The benchdiff-gated method rows, Routed included.
	tbl := &Table{
		Title:  "Untraced throughput, default workload (benchdiff rows)",
		Header: []string{"method", "queries/s"},
	}
	methods := append([]temporalir.Method{temporalir.TIF}, temporalir.Methods()...)
	methods = append(methods, temporalir.Routed)
	for _, m := range methods {
		ix, _ := MeasureBuild(m, coll, temporalir.Options{})
		qps := bestOf(queries, ix)
		report.Methods = append(report.Methods, ObsMethod{
			Method:      string(m),
			Label:       shortName(m),
			UntracedQPS: qps,
		})
		tbl.Add(shortName(m), f0(qps))
	}
	tbl.Fprint(cfg.Out)

	// (2) Per-regime routing quality. Each regime gets a fresh routed
	// build so decision tallies and learned costs do not leak between
	// regimes; the sub-builds are rebuilt alongside (construction cost
	// is not what this experiment measures).
	rtbl := &Table{
		Title:  "Adaptive routing per regime (routed vs best single sub-build)",
		Header: []string{"regime", "routed q/s", "best sub-build", "best q/s", "routed/best", "hit-rate"},
	}
	for _, reg := range routeRegimes {
		qs := gen.Workload(coll, reg.cfg, cfg.NumQueries, cfg.Seed+23)
		if len(qs) == 0 {
			continue
		}
		routedIx, err := temporalir.NewIndex(temporalir.Routed, coll, temporalir.Options{})
		if err != nil {
			fmt.Fprintf(cfg.Out, "routejson: build routed: %v\n", err)
			return
		}
		ri := routedIx.(*route.Index)
		row := RouteRegime{
			Regime:     reg.name,
			ExtentFrac: reg.cfg.ExtentFrac,
			NumElems:   reg.cfg.NumElems,
			FreqBin:    reg.freqBin,
			Decisions:  make(map[string]uint64),
		}
		// Best single sub-build on this regime's workload.
		for _, name := range ri.Methods() {
			ix, _ := MeasureBuild(temporalir.Method(name), coll, temporalir.Options{})
			if qps := bestOf(qs, ix); qps > row.BestQPS {
				row.BestQPS = qps
				row.BestMethod = name
			}
		}
		// Routed throughput: one warm-up pass lets the EWMA estimates
		// converge off the priors before the measured runs.
		for _, q := range qs {
			_ = routedIx.Query(q)
		}
		row.RoutedQPS = bestOf(qs, routedIx)
		r := ri.Router()
		var total, hits uint64
		for i, name := range ri.Methods() {
			n := r.Decisions(i)
			row.Decisions[name] = n
			total += n
			if name == row.BestMethod {
				hits = n
			}
		}
		if total > 0 {
			row.HitRate = float64(hits) / float64(total)
		}
		if row.BestQPS > 0 {
			row.RoutedVsBest = row.RoutedQPS / row.BestQPS
		}
		report.Regimes = append(report.Regimes, row)
		rtbl.Add(reg.name, f0(row.RoutedQPS), row.BestMethod, f0(row.BestQPS),
			f2(row.RoutedVsBest), f2(row.HitRate))
	}
	report.RoutedMethods = append(report.RoutedMethods, temporalirRoutedNames()...)
	rtbl.Fprint(cfg.Out)

	if cfg.JSONPath == "" {
		return
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(cfg.Out, "routejson: marshal: %v\n", err)
		return
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(cfg.JSONPath, blob, 0o644); err != nil {
		fmt.Fprintf(cfg.Out, "routejson: write %s: %v\n", cfg.JSONPath, err)
		return
	}
	fmt.Fprintf(cfg.Out, "\nwrote %s\n", cfg.JSONPath)
}

// temporalirRoutedNames lists the default routed sub-method names.
func temporalirRoutedNames() []string {
	ms := temporalir.DefaultRoutedMethods()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = string(m)
	}
	return names
}
