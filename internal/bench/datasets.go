package bench

import (
	"repro/internal/gen"
	"repro/internal/model"
)

// Dataset is one named workload source.
type Dataset struct {
	Name string
	Coll *model.Collection
}

// RealDatasets builds the two real-data stand-ins at the configured scale.
// The WIKIPEDIA stand-in carries ~5x the postings per object of ECLOG
// (Table 3: avg |d| 367 vs 72), so it gets an extra 0.25 factor to keep
// the default suite laptop-sized; -scale 1 still reproduces full sizes.
func RealDatasets(cfg Config) []Dataset {
	wikiScale := cfg.Scale * 0.25
	if cfg.Scale >= 1 {
		wikiScale = 1
	}
	return []Dataset{
		{"ECLOG", gen.ECLOGLike(gen.RealConfig{Scale: cfg.Scale, Seed: cfg.Seed + 1})},
		{"WIKIPEDIA", gen.WikipediaLike(gen.RealConfig{Scale: wikiScale, Seed: cfg.Seed + 2})},
	}
}

// eclogOnly is used by the tuning experiments' fast paths.
func eclogOnly(cfg Config) Dataset {
	return Dataset{"ECLOG", gen.ECLOGLike(gen.RealConfig{Scale: cfg.Scale, Seed: cfg.Seed + 1})}
}

// defaultWorkload is the paper's default query mix: 0.1% extent, 3
// elements, non-empty results.
func defaultWorkload(c *model.Collection, cfg Config) []model.Query {
	return gen.Workload(c, gen.DefaultQueryConfig(), cfg.NumQueries, cfg.Seed+17)
}

// syntheticDefault builds the Table 4 default synthetic dataset at scale.
func syntheticDefault(cfg Config, override func(*gen.SyntheticConfig)) *model.Collection {
	sc := gen.SyntheticConfig{Seed: cfg.Seed + 3}
	if override != nil {
		override(&sc)
	}
	return gen.Synthetic(sc.Defaults(cfg.Scale))
}
