package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	temporalir "repro"
	"repro/internal/model"
	"repro/internal/obs"
)

// StageRow is one stage of a per-method query breakdown: how many spans
// the workload recorded for the stage, their summed wall time, and the
// stage's share of the total recorded span time. Shares are computed
// over the summed span time (not the end-to-end latency) because
// enveloping stages — rank, agg — deliberately overlap their inner
// postings/intersect spans.
type StageRow struct {
	Stage    string  `json:"stage"`
	Spans    int64   `json:"spans"`
	TotalNS  int64   `json:"total_ns"`
	SharePct float64 `json:"share_pct"`
}

// ObsOverhead is the disabled-trace overhead measurement: the cost the
// instrumentation adds to a query-shaped loop when tracing is off (nil
// *Trace at every call site). The acceptance budget for the layer is
// BudgetPct; OverheadPct is what this run measured.
type ObsOverhead struct {
	Rounds          int     `json:"rounds"`
	StagesPerQuery  int     `json:"stages_per_query"`
	WorkSize        int     `json:"work_size"`
	BaselineNSPerOp float64 `json:"baseline_ns_per_query"`
	DisabledNSPerOp float64 `json:"disabled_trace_ns_per_query"`
	OverheadPct     float64 `json:"overhead_pct"`
	BudgetPct       float64 `json:"budget_pct"`
	WithinBudget    bool    `json:"within_budget"`
}

// ObsMethod is one per-method row of the observability artifact:
// throughput with and without an attached trace recorder, and the
// per-stage breakdown one traced pass over the workload produced.
type ObsMethod struct {
	Method            string     `json:"method"`
	Label             string     `json:"label"`
	UntracedQPS       float64    `json:"untraced_queries_per_sec"`
	TracedQPS         float64    `json:"traced_queries_per_sec"`
	TracedOverheadPct float64    `json:"traced_overhead_pct"`
	ResultRows        int        `json:"result_rows"`
	Stages            []StageRow `json:"stages"`
}

// ObsReport is the BENCH_pr5.json schema: the disabled-trace overhead
// budget measurement plus, for every index method, the enabled-trace
// cost and the per-stage breakdown of the paper's default workload —
// the runtime counterpart of the per-phase cost analysis in the paper's
// evaluation.
type ObsReport struct {
	Scale      float64     `json:"scale"`
	NumQueries int         `json:"num_queries"`
	Seed       int64       `json:"seed"`
	Objects    int         `json:"objects"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Overhead   ObsOverhead `json:"disabled_overhead"`
	Methods    []ObsMethod `json:"methods"`
}

// overheadBudgetPct is the acceptance budget for the observability
// layer: with tracing disabled the instrumented query path must stay
// within this percentage of the un-instrumented baseline.
const overheadBudgetPct = 5.0

// withTrace returns a copy of the workload with tr attached to every
// query, leaving the input untouched for un-traced measurements.
func withTrace(queries []model.Query, tr *obs.Trace) []model.Query {
	out := make([]model.Query, len(queries))
	for i, q := range queries {
		q.Trace = tr
		out[i] = q
	}
	return out
}

// stageBreakdown seals tr's accumulators into sorted report rows.
func stageBreakdown(tr *obs.Trace) []StageRow {
	var totalNS int64
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		totalNS += int64(tr.StageTotal(s))
	}
	var rows []StageRow
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		n := tr.StageCount(s)
		if n == 0 {
			continue
		}
		ns := int64(tr.StageTotal(s))
		share := 0.0
		if totalNS > 0 {
			share = float64(ns) / float64(totalNS) * 100
		}
		rows = append(rows, StageRow{Stage: s.String(), Spans: n, TotalNS: ns, SharePct: share})
	}
	return rows
}

// RunObsJSON measures the observability layer itself: (1) the
// disabled-trace overhead of the stage instrumentation against the 5%
// acceptance budget, and (2) for every index method, query throughput
// with and without a live trace recorder plus the per-stage breakdown
// (postings fetch vs intersection vs the temporal-only path) of the
// default workload. The rendered tables go to cfg.Out; cfg.JSONPath
// receives the ObsReport (BENCH_pr5.json).
func RunObsJSON(cfg Config) {
	cfg = cfg.Normalize()

	// (1) Disabled-trace overhead: the budget every instrumented call
	// site in the engine is held to.
	const rounds, stagesPerQ, workSize = 8000, 6, 512
	baseNS, instNS := obs.DisabledOverhead(rounds, stagesPerQ, workSize)
	overheadPct := (instNS - baseNS) / baseNS * 100
	report := ObsReport{
		Scale:      cfg.Scale,
		NumQueries: cfg.NumQueries,
		Seed:       cfg.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Overhead: ObsOverhead{
			Rounds:          rounds,
			StagesPerQuery:  stagesPerQ,
			WorkSize:        workSize,
			BaselineNSPerOp: baseNS,
			DisabledNSPerOp: instNS,
			OverheadPct:     overheadPct,
			BudgetPct:       overheadBudgetPct,
			WithinBudget:    overheadPct < overheadBudgetPct,
		},
	}
	fmt.Fprintf(cfg.Out, "disabled-trace overhead: baseline %.0f ns/query, instrumented %.0f ns/query -> %+.2f%% (budget %.0f%%)\n\n",
		baseNS, instNS, overheadPct, overheadBudgetPct)

	// (2) Per-method traced cost and stage breakdown on the default
	// synthetic workload (same seed and shape as perfjson).
	coll := syntheticDefault(cfg, nil)
	queries := defaultWorkload(coll, cfg)
	report.Objects = coll.Len()

	tbl := &Table{
		Title:  "Per-stage query breakdown (one traced pass over the default workload)",
		Header: []string{"method", "untraced q/s", "traced q/s", "overhead", "rows", "stage shares"},
	}
	methods := append([]temporalir.Method{temporalir.TIF}, temporalir.Methods()...)
	// Each throughput figure is the best of several short runs: the
	// maximum discards scheduler preemptions and cache-cold passes, so
	// the traced-vs-untraced delta reflects instrumentation, not noise.
	bestOf := func(qs []model.Query, ix temporalir.Index) float64 {
		best := 0.0
		for i := 0; i < 5; i++ {
			if qps := Throughput(ix, qs); qps > best {
				best = qps
			}
		}
		return best
	}
	for _, m := range methods {
		ix, _ := MeasureBuild(m, coll, temporalir.Options{})
		untracedQPS := bestOf(queries, ix)
		// Throughput repeats the workload until a minimum duration, so
		// its trace is discarded; the breakdown comes from one clean
		// pass where every stage span is counted exactly once.
		tracedQPS := bestOf(withTrace(queries, obs.NewTrace(string(m))), ix)
		tr := obs.NewTrace(string(m))
		rows := 0
		for _, q := range withTrace(queries, tr) {
			rows += len(ix.Query(q))
		}
		tracedOverhead := 0.0
		if untracedQPS > 0 && tracedQPS > 0 {
			tracedOverhead = (1e6/tracedQPS - 1e6/untracedQPS) / (1e6 / untracedQPS) * 100
		}
		breakdown := stageBreakdown(tr)
		report.Methods = append(report.Methods, ObsMethod{
			Method:            string(m),
			Label:             shortName(m),
			UntracedQPS:       untracedQPS,
			TracedQPS:         tracedQPS,
			TracedOverheadPct: tracedOverhead,
			ResultRows:        rows,
			Stages:            breakdown,
		})
		shares := ""
		for i, r := range breakdown {
			if i > 0 {
				shares += " "
			}
			shares += fmt.Sprintf("%s=%.0f%%", r.Stage, r.SharePct)
		}
		tbl.Add(shortName(m), f0(untracedQPS), f0(tracedQPS), f2(tracedOverhead)+"%", fmt.Sprint(rows), shares)
	}
	tbl.Fprint(cfg.Out)

	if cfg.JSONPath == "" {
		return
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(cfg.Out, "obsjson: marshal: %v\n", err)
		return
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(cfg.JSONPath, blob, 0o644); err != nil {
		fmt.Fprintf(cfg.Out, "obsjson: write %s: %v\n", cfg.JSONPath, err)
		return
	}
	fmt.Fprintf(cfg.Out, "\nwrote %s\n", cfg.JSONPath)
}
