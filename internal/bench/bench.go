// Package bench is the experiment harness of the reproduction: it rebuilds
// every table and figure of the paper's evaluation (Section 5) — dataset
// statistics, tuning sweeps, the throughput comparisons on real-data
// stand-ins and synthetic sweeps, and the update-cost tables — printing
// the same rows/series the paper reports.
//
// Every experiment takes a Config whose Scale shrinks the workloads so the
// full suite runs on a laptop; the shapes (who wins, by what factor, where
// crossovers fall) are what EXPERIMENTS.md compares against the paper.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	temporalir "repro"
	"repro/internal/gen"
	"repro/internal/model"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale in (0, 1] shrinks dataset cardinalities; 1.0 reproduces the
	// paper's sizes (hours of runtime). The CLI default is 0.01.
	Scale float64
	// NumQueries per measurement point (paper: 10000).
	NumQueries int
	// Seed drives all generators.
	Seed int64
	// Out receives the rendered tables.
	Out io.Writer
	// JSONPath, when set, receives the machine-readable artifact of
	// experiments that produce one (perfjson, obsjson).
	JSONPath string
	// Stages, when set, attaches an obs.Trace recorder to the measured
	// queries and emits the per-stage breakdown (postings fetch,
	// intersection, ...) into the JSON artifact's method rows.
	Stages bool
}

// Normalize fills defaults.
func (c Config) Normalize() Config {
	if c.Scale <= 0 || c.Scale > 1 {
		c.Scale = 0.01
	}
	if c.NumQueries <= 0 {
		c.NumQueries = 1000
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// Experiment is a named, runnable reproduction of one paper artifact.
type Experiment struct {
	Name  string
	Title string
	Run   func(Config)
}

// Experiments returns the registry, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table3", "Table 3 / Figure 7: dataset characteristics", RunTable3},
		{"fig8", "Figure 8: tuning tIF+Slicing", RunFig8},
		{"fig9", "Figure 9: tuning the tIF+HINT variants", RunFig9},
		{"fig10", "Figure 10: comparing the tIF+HINT variants", RunFig10},
		{"table5", "Table 5: indexing costs", RunTable5},
		{"fig11", "Figure 11: all methods on real-data stand-ins", RunFig11},
		{"fig12", "Figure 12: all methods on synthetic sweeps", RunFig12},
		{"table6", "Table 6: insertion update costs", RunTable6},
		{"table7", "Table 7: deletion update costs", RunTable7},
		{"ablation", "Ablations: m tuning, traversal order, de-dup, compression", RunAblations},
		{"verify", "Verification: result equivalence of every index vs brute force", RunVerify},
		{"perfjson", "Deterministic per-method perf snapshot written as JSON", RunPerfJSON},
		{"tombstone", "Tombstone load: query latency vs deleted fraction, before/after compaction", RunTombstone},
		{"obsjson", "Observability: disabled-trace overhead budget + per-stage query breakdown", RunObsJSON},
		{"routejson", "Adaptive routing: per-regime throughput + router hit-rate vs best sub-build", RunRouteJSON},
		{"tenantjson", "Multi-tenant serving: per-tenant qps, tail latency and fairness at 1/4/16 tenants", RunTenantJSON},
		{"shardjson", "Sharded engine: insert/compaction scaling at 1/2/4/8 shards + partial-result contract", RunShardJSON},
	}
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// CompetitorMethods is the Table 5 / Figure 11 line-up (the tuned
// tIF+HINT representative is the hybrid, per Section 5.3).
func CompetitorMethods() []temporalir.Method {
	return []temporalir.Method{
		temporalir.TIFSlicing,
		temporalir.TIFSharding,
		temporalir.TIFHintSlicing,
		temporalir.IRHintPerf,
		temporalir.IRHintSize,
	}
}

// MeasureBuild times index construction and reports its size.
func MeasureBuild(m temporalir.Method, c *model.Collection, opts temporalir.Options) (temporalir.Index, BuildStats) {
	start := time.Now()
	ix, err := temporalir.NewIndex(m, c, opts)
	if err != nil {
		panic(err) // lint:panic-ok registry methods cannot fail
	}
	return ix, BuildStats{
		Seconds: time.Since(start).Seconds(),
		SizeMB:  float64(ix.SizeBytes()) / (1 << 20),
	}
}

// BuildStats is one Table 5 cell pair.
type BuildStats struct {
	Seconds float64
	SizeMB  float64
}

// Throughput measures queries/second over the workload, repeating the
// batch until at least minDuration has elapsed.
func Throughput(ix temporalir.Index, queries []model.Query) float64 {
	const minDuration = 20 * time.Millisecond
	if len(queries) == 0 {
		return 0
	}
	ran := 0
	start := time.Now()
	for time.Since(start) < minDuration {
		for _, q := range queries {
			_ = ix.Query(q)
			ran++
		}
	}
	return float64(ran) / time.Since(start).Seconds()
}

// Table is a rendered experiment artifact.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "\n%s\n", t.Title)
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		fmt.Fprintln(w)
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// f2, f1 and f0 format floats for table cells.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// timeIt measures one function call in seconds.
func timeIt(fn func()) float64 {
	start := time.Now()
	fn()
	return time.Since(start).Seconds()
}

// shortName maps methods to the labels the paper's tables use.
func shortName(m temporalir.Method) string {
	switch m {
	case temporalir.TIF:
		return "tIF"
	case temporalir.TIFSlicing:
		return "tIF+Slicing"
	case temporalir.TIFSharding:
		return "tIF+Sharding"
	case temporalir.TIFHintBinary:
		return "tIF+HINT (binary)"
	case temporalir.TIFHintMerge:
		return "tIF+HINT (merge)"
	case temporalir.TIFHintSlicing:
		return "tIF+HINT+Slicing"
	case temporalir.IRHintPerf:
		return "irHINT (perf)"
	case temporalir.IRHintSize:
		return "irHINT (size)"
	case temporalir.Routed:
		return "routed"
	default:
		return string(m)
	}
}

// classifyBySelectivity buckets queries into the paper's result-size bins
// using result counts from a reference index.
func classifyBySelectivity(ix temporalir.Index, pool []model.Query, cardinality int) map[int][]model.Query {
	out := make(map[int][]model.Query)
	for _, q := range pool {
		n := len(ix.Query(q))
		frac := float64(n) / float64(cardinality)
		for b, bounds := range gen.SelectivityBins {
			if b == 0 {
				if n == 0 {
					out[0] = append(out[0], q)
					break
				}
				continue
			}
			if n > 0 && frac > bounds[0] && frac <= bounds[1] {
				out[b] = append(out[b], q)
				break
			}
		}
	}
	return out
}

// sortedBins returns the populated bin indices in order.
func sortedBins(m map[int][]model.Query) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
