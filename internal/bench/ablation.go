package bench

import (
	"fmt"
	"time"

	temporalir "repro"
	"repro/internal/bruteforce"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/gen"
	"repro/internal/hint"
	"repro/internal/model"
	"repro/internal/postings"
	"repro/internal/slicing"
	"repro/internal/tif"
)

// RunAblations quantifies the design choices DESIGN.md calls out:
//
//  1. irHINT hierarchy depth m — the cost-model choice versus a sweep
//     (the Section 5.2 tuning question, answered for the time-first index).
//  2. HINT bottom-up traversal with the compfirst/complast flags versus
//     the conventional top-down traversal (Section 2.3's optimization).
//  3. Reference-value de-duplication versus hash-set de-duplication in
//     tIF+Slicing (the [25] technique the paper adopts).
//  4. Inverted-file compression (Section 7 future work): gap-encoded
//     postings versus the plain layout, size and throughput.
func RunAblations(cfg Config) {
	cfg = cfg.Normalize()
	ds := eclogOnly(cfg)
	queries := defaultWorkload(ds.Coll, cfg)

	// (1) irHINT m sweep.
	t := Table{
		Title:  "Ablation 1: irHINT (perf) hierarchy depth m [" + ds.Name + "]",
		Header: []string{"m", "throughput [q/s]", "size [MB]"},
	}
	auto := core.NewPerf(ds.Coll)
	listed := false
	for _, m := range []int{2, 4, 6, 8, 10, 12} {
		var ix temporalir.Index
		label := fmt.Sprint(m)
		if m == auto.M() {
			ix = auto
			label += " (cost model)"
			listed = true
		} else {
			ix = core.NewPerf(ds.Coll, core.WithM(m))
		}
		t.Add(label, f0(Throughput(ix, queries)), f1(float64(ix.SizeBytes())/(1<<20)))
	}
	if !listed {
		t.Add(fmt.Sprintf("%d (cost model)", auto.M()),
			f0(Throughput(auto, queries)), f1(float64(auto.SizeBytes())/(1<<20)))
	}
	t.Fprint(cfg.Out)

	// (2) Bottom-up vs top-down HINT traversal (pure interval queries).
	entries := make([]postings.Posting, len(ds.Coll.Objects))
	ivs := make([]model.Interval, len(ds.Coll.Objects))
	for i := range ds.Coll.Objects {
		entries[i] = postings.Posting{ID: ds.Coll.Objects[i].ID, Interval: ds.Coll.Objects[i].Interval}
		ivs[i] = ds.Coll.Objects[i].Interval
	}
	span, _ := ds.Coll.Span()
	hm := hint.EstimateM(ivs, span, hint.DefaultCostModelConfig())
	dom, err := domain.Make(span.Start, span.End, hm)
	if err != nil {
		// lint:panic-ok benchmark harness; the span is valid by construction
		panic(err)
	}
	h := hint.Build(dom, entries)
	t = Table{
		Title:  fmt.Sprintf("Ablation 2: HINT traversal (m=%d), range queries [%s]", hm, ds.Name),
		Header: []string{"traversal", "throughput [q/s]"},
	}
	rngQueries := queries
	t.Add("bottom-up (paper)", f0(rangeThroughput(func(q model.Interval, dst []model.ObjectID) []model.ObjectID {
		return h.RangeQuery(q, dst)
	}, rngQueries)))
	t.Add("top-down (naive)", f0(rangeThroughput(func(q model.Interval, dst []model.ObjectID) []model.ObjectID {
		return h.RangeQueryTopDown(q, dst)
	}, rngQueries)))
	t.Fprint(cfg.Out)

	// (5) HINT vs the classic interval tree vs a full scan (Section 6.2's
	// baseline), on the same interval set and queries.
	appendIntervalTreeAblation(cfg, ds, queries, h)

	// (3) Reference-value vs hash de-duplication in tIF+Slicing.
	sl := slicing.New(ds.Coll)
	t = Table{
		Title:  "Ablation 3: tIF+Slicing de-duplication [" + ds.Name + "]",
		Header: []string{"method", "throughput [q/s]"},
	}
	t.Add("reference value (paper)", f0(Throughput(sl, queries)))
	t.Add("hash set", f0(Throughput(queryFunc(sl.QueryHashDedup), queries)))
	t.Fprint(cfg.Out)

	// (4) Compression.
	plain := tif.New(ds.Coll)
	packed := compress.NewTIF(ds.Coll)
	t = Table{
		Title:  "Ablation 4: inverted-file compression [" + ds.Name + "]",
		Header: []string{"layout", "throughput [q/s]", "size [MB]"},
	}
	t.Add("plain tIF", f0(Throughput(plain, queries)), f1(float64(plain.SizeBytes())/(1<<20)))
	t.Add("gap-encoded tIF", f0(Throughput(queryOnly{packed}, queries)), f1(float64(packed.SizeBytes())/(1<<20)))
	t.Fprint(cfg.Out)
}

// RunVerify cross-checks every index against the brute-force oracle on
// fresh workloads at the configured scale — the result-equivalence
// invariant behind all throughput comparisons, promoted to a runnable
// experiment so a user can confirm it on their own parameters before
// trusting any benchmark numbers.
func RunVerify(cfg Config) {
	cfg = cfg.Normalize()
	methods := append([]temporalir.Method{temporalir.TIF}, temporalir.Methods()...)
	for _, ds := range RealDatasets(cfg) {
		queries := defaultWorkload(ds.Coll, cfg)
		queries = append(queries, gen.MixedPool(ds.Coll, cfg.NumQueries, cfg.Seed+901)...)
		oracle := bruteforce.New(ds.Coll)
		want := make([][]model.ObjectID, len(queries))
		for i, q := range queries {
			want[i] = canonIDs(oracle.Query(q))
		}
		t := Table{
			Title:  "Verification: result equivalence vs brute force [" + ds.Name + "]",
			Header: []string{"index", "queries", "mismatches"},
		}
		for _, m := range methods {
			ix, _ := MeasureBuild(m, ds.Coll, temporalir.Options{})
			mismatches := 0
			for i, q := range queries {
				if !model.EqualIDs(canonIDs(ix.Query(q)), want[i]) {
					mismatches++
				}
			}
			t.Add(shortName(m), fmt.Sprint(len(queries)), fmt.Sprint(mismatches))
			if mismatches > 0 {
				t.Add("", "", "!! EQUIVALENCE BROKEN !!")
			}
		}
		t.Fprint(cfg.Out)
	}
}

func canonIDs(ids []model.ObjectID) []model.ObjectID {
	out := append([]model.ObjectID(nil), ids...)
	model.SortIDs(out)
	return model.DedupIDs(out)
}

// rangeThroughput measures pure interval-query throughput.
func rangeThroughput(query func(model.Interval, []model.ObjectID) []model.ObjectID, queries []model.Query) float64 {
	const minDuration = 20 * time.Millisecond
	var dst []model.ObjectID
	ran := 0
	start := time.Now()
	for time.Since(start) < minDuration {
		for _, q := range queries {
			dst = query(q.Interval, dst[:0])
			ran++
		}
	}
	return float64(ran) / time.Since(start).Seconds()
}

// queryFunc adapts a Query method to the Index interface for Throughput.
type queryFunc func(model.Query) []model.ObjectID

func (f queryFunc) Query(q model.Query) []model.ObjectID { return f(q) }
func (f queryFunc) Insert(model.Object)                  {}
func (f queryFunc) Delete(model.Object)                  {}
func (f queryFunc) Len() int                             { return 0 }
func (f queryFunc) SizeBytes() int64                     { return 0 }

// queryOnly adapts the static compressed index.
type queryOnly struct{ ix *compress.TIF }

func (a queryOnly) Query(q model.Query) []model.ObjectID { return a.ix.Query(q) }
func (a queryOnly) Insert(model.Object)                  {}
func (a queryOnly) Delete(model.Object)                  {}
func (a queryOnly) Len() int                             { return a.ix.Len() }
func (a queryOnly) SizeBytes() int64                     { return a.ix.SizeBytes() }
