package bench

import (
	"repro/internal/hint"
	"repro/internal/itree"
	"repro/internal/model"
	"repro/internal/postings"
)

// appendIntervalTreeAblation extends RunAblations with the Section 6.2
// baseline: HINT versus the classic centered interval tree versus a full
// scan, on pure range queries over the ECLOG-like intervals. The paper's
// motivation rests on HINT outperforming classic interval indexing; this
// ablation reproduces that gap in-repo.
func appendIntervalTreeAblation(cfg Config, ds Dataset, queries []model.Query, h *hint.Index) {
	entries := make([]postings.Posting, len(ds.Coll.Objects))
	for i := range ds.Coll.Objects {
		entries[i] = postings.Posting{ID: ds.Coll.Objects[i].ID, Interval: ds.Coll.Objects[i].Interval}
	}
	tree := itree.Build(entries)

	t := Table{
		Title:  "Ablation 5: interval indexing for range queries [" + ds.Name + "]",
		Header: []string{"structure", "throughput [q/s]", "size [MB]"},
	}
	t.Add("HINT (paper)", f0(rangeThroughput(func(q model.Interval, dst []model.ObjectID) []model.ObjectID {
		return h.RangeQuery(q, dst)
	}, queries)), f1(float64(h.SizeBytes())/(1<<20)))
	t.Add("interval tree", f0(rangeThroughput(func(q model.Interval, dst []model.ObjectID) []model.ObjectID {
		return tree.RangeQuery(q, dst)
	}, queries)), f1(float64(tree.SizeBytes())/(1<<20)))
	t.Add("full scan", f0(rangeThroughput(func(q model.Interval, dst []model.ObjectID) []model.ObjectID {
		for i := range entries {
			if entries[i].Interval.Overlaps(q) {
				dst = append(dst, entries[i].ID)
			}
		}
		return dst
	}, queries)), f1(float64(len(entries)*16)/(1<<20)))
	t.Fprint(cfg.Out)
}
