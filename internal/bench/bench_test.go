package bench

import (
	"bytes"
	"strings"
	"testing"

	temporalir "repro"
	"repro/internal/gen"
)

// tiny returns a config small enough for unit tests.
func tiny() Config {
	return Config{Scale: 0.002, NumQueries: 30, Seed: 1}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}.Normalize()
	if c.Scale != 0.01 || c.NumQueries != 1000 || c.Out == nil {
		t.Errorf("defaults = %+v", c)
	}
	c2 := Config{Scale: 5}.Normalize()
	if c2.Scale != 0.01 {
		t.Errorf("out-of-range scale kept: %v", c2.Scale)
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 17 {
		t.Fatalf("registry has %d experiments, want 17", len(exps))
	}
	for _, e := range exps {
		if e.Run == nil || e.Name == "" || e.Title == "" {
			t.Errorf("malformed experiment %+v", e)
		}
		if got, ok := Lookup(e.Name); !ok || got.Name != e.Name {
			t.Errorf("Lookup(%q) failed", e.Name)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup of unknown experiment succeeded")
	}
}

func TestMeasureBuildAndThroughput(t *testing.T) {
	cfg := tiny()
	ds := eclogOnly(cfg)
	ix, bs := MeasureBuild(temporalir.IRHintPerf, ds.Coll, temporalir.Options{})
	if bs.Seconds < 0 || bs.SizeMB <= 0 {
		t.Errorf("BuildStats = %+v", bs)
	}
	qs := defaultWorkload(ds.Coll, cfg)
	if qps := Throughput(ix, qs); qps <= 0 {
		t.Errorf("Throughput = %v", qps)
	}
	if Throughput(ix, nil) != 0 {
		t.Error("empty workload should measure 0")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "T", Header: []string{"a", "bb"}}
	tab.Add("xxx", "1")
	tab.Add("y", "22")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"T", "xxx", "22", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRealDatasetsShape(t *testing.T) {
	dss := RealDatasets(tiny().Normalize())
	if len(dss) != 2 || dss[0].Name != "ECLOG" || dss[1].Name != "WIKIPEDIA" {
		t.Fatalf("datasets = %v", dss)
	}
	for _, ds := range dss {
		if ds.Coll.Len() < 50 {
			t.Errorf("%s too small: %d", ds.Name, ds.Coll.Len())
		}
	}
}

func TestClassifyBySelectivity(t *testing.T) {
	cfg := tiny()
	ds := eclogOnly(cfg)
	ix, _ := MeasureBuild(temporalir.IRHintPerf, ds.Coll, temporalir.Options{})
	pool := gen.MixedPool(ds.Coll, 200, 9)
	bins := classifyBySelectivity(ix, pool, ds.Coll.Len())
	total := 0
	for b, qs := range bins {
		if b < 0 || b >= len(gen.SelectivityBins) {
			t.Errorf("bin %d out of range", b)
		}
		total += len(qs)
	}
	if total == 0 {
		t.Fatal("no queries classified")
	}
	if total > len(pool) {
		t.Fatalf("classified %d > pool %d", total, len(pool))
	}
	if len(sortedBins(bins)) != len(bins) {
		t.Error("sortedBins lost bins")
	}
}

func TestShortNames(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range append(CompetitorMethods(),
		temporalir.TIFHintBinary, temporalir.TIFHintMerge, temporalir.TIF) {
		name := shortName(m)
		if name == "" {
			t.Errorf("empty short name for %s", m)
		}
		if seen[name] {
			t.Errorf("duplicate short name %q", name)
		}
		seen[name] = true
	}
	if shortName(temporalir.Method("custom")) != "custom" {
		t.Error("unknown methods should pass through")
	}
}

func TestExtentLabels(t *testing.T) {
	got := extentLabels([]float64{0.0001, 0.001, 1.0})
	want := []string{"0.01", "0.1", "100"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("labels = %v, want %v", got, want)
		}
	}
}

func TestTimeIt(t *testing.T) {
	ran := false
	secs := timeIt(func() { ran = true })
	if !ran || secs < 0 {
		t.Errorf("timeIt: ran=%v secs=%v", ran, secs)
	}
}

// Smoke tests: every experiment driver must run to completion at tiny
// scale and produce plausible output.
func TestExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are slow")
	}
	markers := map[string][]string{
		"table3":   {"Cardinality", "Figure 7"},
		"fig8":     {"#slices", "throughput"},
		"fig9":     {"variant", "m"},
		"fig10":    {"|q.d|", "element frequency"},
		"table5":   {"irHINT (perf)", "size ECLOG [MB]"},
		"fig11":    {"tIF+Slicing", "# results"},
		"table6":   {"insertions", "10%"},
		"table7":   {"deletions", "tIF+Sharding"},
		"ablation": {"hierarchy depth", "traversal", "de-duplication", "compression", "interval tree"},
		"verify":   {"equivalence", "mismatches"},
	}
	for name, wants := range markers {
		name, wants := name, wants
		t.Run(name, func(t *testing.T) {
			exp, ok := Lookup(name)
			if !ok {
				t.Fatal("missing experiment")
			}
			var buf bytes.Buffer
			cfg := tiny()
			cfg.Out = &buf
			exp.Run(cfg)
			for _, w := range wants {
				if !strings.Contains(buf.String(), w) {
					t.Errorf("output missing %q:\n%s", w, firstLines(buf.String(), 30))
				}
			}
		})
	}
}

// TestTombstoneSmoke runs the tombstone-load driver at tiny scale; a
// WARNING line means a checksum diverged across methods or across the
// 50%-deleted/compacted states, which is a correctness failure, not a
// perf blip.
func TestTombstoneSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are slow")
	}
	var buf bytes.Buffer
	cfg := tiny()
	cfg.Out = &buf
	RunTombstone(cfg)
	out := buf.String()
	for _, w := range []string{"Tombstone load", "compacted", "reclaimed"} {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, firstLines(out, 30))
		}
	}
	if strings.Contains(out, "WARNING") {
		t.Errorf("checksum divergence:\n%s", out)
	}
}

func TestFig12Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fig12 smoke is the slowest driver")
	}
	var buf bytes.Buffer
	cfg := Config{Scale: 0.0008, NumQueries: 15, Seed: 2, Out: &buf}
	RunFig12(cfg)
	for _, w := range []string{"cardinality", "alpha", "zeta", "sigma", "description size"} {
		if !strings.Contains(buf.String(), w) {
			t.Errorf("fig12 output missing %q", w)
		}
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
