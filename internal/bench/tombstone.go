package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	temporalir "repro"
	"repro/internal/model"
	"repro/internal/testutil"
)

// The tombstone-load experiment measures what the generational write path
// buys: query latency as deletions accumulate as tombstones (every query
// pays a filter pass over a growing dead set), then again after Compact
// physically drops the dead objects and rebuilds the index. The paper's
// Table 7 times the deletes themselves; this experiment times the
// *queries* the deletes leave behind, which is the cost model the
// compaction policy (maint.Policy.MaxDeadRatio) trades against.

// tombstoneFractions are the measured deleted fractions, in order.
var tombstoneFractions = []float64{0, 0.25, 0.50}

// TombstoneStage is one measurement point of the tombstone experiment:
// a deleted fraction (or the post-compaction state) for one method.
type TombstoneStage struct {
	Stage              string  `json:"stage"` // "0%", "25%", "50%", "compacted"
	DeletedFrac        float64 `json:"deleted_frac"`
	LiveObjects        int     `json:"live_objects"`
	Tombstones         int     `json:"tombstones"`
	SizeBytes          int64   `json:"size_bytes"`
	BatchMicrosMean    float64 `json:"batch_query_micros_mean"`
	BatchQueriesPerSec float64 `json:"batch_queries_per_sec"`
	ResultRows         int     `json:"result_rows"`
	// Checksum hashes the per-query result sets. It must be identical
	// across methods within a stage, and the "50%" and "compacted"
	// checksums must match exactly: compaction may never change results.
	Checksum string `json:"checksum"`
}

// TombstoneMethod is the per-method series plus its compaction cost.
type TombstoneMethod struct {
	Method         string           `json:"method"`
	Label          string           `json:"label"`
	Stages         []TombstoneStage `json:"stages"`
	CompactSeconds float64          `json:"compact_seconds"`
	CompactDropped int              `json:"compact_dropped"`
	ReclaimedFrac  float64          `json:"reclaimed_frac"` // 1 - size@compacted/size@50%
}

// TombstoneReport is the BENCH_pr4.json schema.
type TombstoneReport struct {
	Scale      float64           `json:"scale"`
	NumQueries int               `json:"num_queries"`
	Seed       int64             `json:"seed"`
	Objects    int               `json:"objects"`
	Methods    []TombstoneMethod `json:"methods"`
}

// engineBatchThroughput is Throughput for the engine's SearchBatch path,
// repeating the batch until at least minDuration elapsed.
func engineBatchThroughput(e *temporalir.Engine, queries []model.Query) float64 {
	const minDuration = 20 * time.Millisecond
	if len(queries) == 0 {
		return 0
	}
	ran := 0
	start := time.Now()
	for time.Since(start) < minDuration {
		_ = e.SearchBatch(queries)
		ran += len(queries)
	}
	return float64(ran) / time.Since(start).Seconds()
}

// measureTombstoneStage runs the workload once for the checksum and then
// times it, filling everything but the stage label and deleted fraction.
func measureTombstoneStage(e *temporalir.Engine, queries []model.Query) TombstoneStage {
	results := make([][]model.ObjectID, len(queries))
	rows := 0
	for i, r := range e.SearchBatch(queries) {
		results[i] = r.IDs
		rows += len(r.IDs)
	}
	st := e.CompactStats()
	qps := engineBatchThroughput(e, queries)
	micros := 0.0
	if qps > 0 {
		micros = 1e6 / qps
	}
	return TombstoneStage{
		LiveObjects:        e.Len(),
		Tombstones:         st.Tombstones,
		SizeBytes:          e.SizeBytes(),
		BatchMicrosMean:    micros,
		BatchQueriesPerSec: qps,
		ResultRows:         rows,
		Checksum:           testutil.WorkloadChecksum(results),
	}
}

// RunTombstone measures batch query latency at 0%, 25% and 50% of the
// corpus deleted (tombstones filtered on every query), then compacts and
// measures again: the rebuilt index must return byte-identical results
// (checksum@50% == checksum@compacted) while reclaiming the dead space.
// The workload and the deleted-id pattern are deterministic, so the JSON
// artifact is comparable run to run; when cfg.JSONPath is set the report
// is written there (BENCH_pr4.json and successors).
func RunTombstone(cfg Config) {
	cfg = cfg.Normalize()
	coll := syntheticDefault(cfg, nil)
	queries := defaultWorkload(coll, cfg)
	report := TombstoneReport{
		Scale:      cfg.Scale,
		NumQueries: len(queries),
		Seed:       cfg.Seed,
		Objects:    coll.Len(),
	}

	methods := append([]temporalir.Method{temporalir.TIF}, temporalir.Methods()...)
	tbl := &Table{
		Title:  "Tombstone load: batch query latency [us] vs deleted fraction, then compacted",
		Header: []string{"method", "0%", "25%", "50%", "compacted", "compact s", "size@50% MB", "size@compact MB", "reclaimed"},
	}
	// Checksums must agree across methods within each stage; remember the
	// first method's as the reference.
	reference := map[string]string{}
	for _, m := range methods {
		e, err := temporalir.EngineFromCollection(coll, m, temporalir.Options{})
		if err != nil {
			panic(err) // lint:panic-ok registry methods cannot fail
		}
		tm := TombstoneMethod{Method: string(m), Label: shortName(m)}
		for _, frac := range tombstoneFractions {
			// Evenly spread deletions: every 4th id reaches 25%, the
			// remaining even ids top it up to 50% (all even ids dead).
			var first, stride int
			switch frac {
			case 0.25:
				first, stride = 0, 4
			case 0.50:
				first, stride = 2, 4
			default:
				first, stride = 0, 0
			}
			for id := first; stride > 0 && id < coll.Len(); id += stride {
				if err := e.Delete(temporalir.ObjectID(id)); err != nil {
					panic(err) // lint:panic-ok ids 0..n-1 are live by construction
				}
			}
			st := measureTombstoneStage(e, queries)
			st.Stage = fmt.Sprintf("%g%%", frac*100)
			st.DeletedFrac = frac
			tm.Stages = append(tm.Stages, st)
		}

		sizeBefore := e.SizeBytes()
		start := time.Now()
		// irlint:ctx-root benchmark driver owns the process lifetime; there is no caller context to inherit
		cs, err := e.Compact(context.Background())
		if err != nil {
			panic(err) // lint:panic-ok foreground compact of an idle engine cannot fail
		}
		tm.CompactSeconds = time.Since(start).Seconds()
		tm.CompactDropped = cs.LastDropped

		st := measureTombstoneStage(e, queries)
		st.Stage = "compacted"
		st.DeletedFrac = 0.50
		tm.Stages = append(tm.Stages, st)
		if sizeBefore > 0 {
			tm.ReclaimedFrac = 1 - float64(st.SizeBytes)/float64(sizeBefore)
		}

		if at50 := tm.Stages[len(tm.Stages)-2]; at50.Checksum != st.Checksum {
			fmt.Fprintf(cfg.Out, "tombstone: WARNING %s: compacted checksum %s != 50%% checksum %s\n",
				m, st.Checksum, at50.Checksum)
		}
		for _, s := range tm.Stages {
			if ref, ok := reference[s.Stage]; !ok {
				reference[s.Stage] = s.Checksum
			} else if ref != s.Checksum {
				fmt.Fprintf(cfg.Out, "tombstone: WARNING %s stage %s: checksum %s != reference %s\n",
					m, s.Stage, s.Checksum, ref)
			}
		}

		tbl.Add(shortName(m),
			f1(tm.Stages[0].BatchMicrosMean), f1(tm.Stages[1].BatchMicrosMean),
			f1(tm.Stages[2].BatchMicrosMean), f1(tm.Stages[3].BatchMicrosMean),
			f2(tm.CompactSeconds),
			f2(float64(sizeBefore)/(1<<20)), f2(float64(st.SizeBytes)/(1<<20)),
			fmt.Sprintf("%.0f%%", tm.ReclaimedFrac*100))
		report.Methods = append(report.Methods, tm)
	}
	tbl.Fprint(cfg.Out)

	if cfg.JSONPath == "" {
		return
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(cfg.Out, "tombstone: marshal: %v\n", err)
		return
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(cfg.JSONPath, blob, 0o644); err != nil {
		fmt.Fprintf(cfg.Out, "tombstone: write %s: %v\n", cfg.JSONPath, err)
		return
	}
	fmt.Fprintf(cfg.Out, "\nwrote %s\n", cfg.JSONPath)
}
