package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestObsJSONSmoke runs the observability driver at tiny scale and
// checks the JSON artifact: the overhead section is present and the
// instrumented methods carry a per-stage breakdown whose shares sum to
// ~100%.
func TestObsJSONSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are slow")
	}
	var buf bytes.Buffer
	cfg := tiny()
	cfg.Out = &buf
	cfg.JSONPath = filepath.Join(t.TempDir(), "obs.json")
	RunObsJSON(cfg)

	out := buf.String()
	for _, w := range []string{"disabled-trace overhead", "budget", "Per-stage query breakdown"} {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, firstLines(out, 30))
		}
	}

	blob, err := os.ReadFile(cfg.JSONPath)
	if err != nil {
		t.Fatal(err)
	}
	var report ObsReport
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if report.Overhead.BaselineNSPerOp <= 0 || report.Overhead.DisabledNSPerOp <= 0 {
		t.Errorf("overhead section empty: %+v", report.Overhead)
	}
	if report.Overhead.BudgetPct != overheadBudgetPct {
		t.Errorf("budget %v, want %v", report.Overhead.BudgetPct, overheadBudgetPct)
	}
	withStages := 0
	for _, m := range report.Methods {
		if len(m.Stages) == 0 {
			continue // the uninstrumented baselines (plain tIF variants)
		}
		withStages++
		var sum float64
		for _, s := range m.Stages {
			if s.Spans <= 0 || s.TotalNS < 0 {
				t.Errorf("%s: bad stage row %+v", m.Method, s)
			}
			sum += s.SharePct
		}
		if sum < 99.0 || sum > 101.0 {
			t.Errorf("%s: stage shares sum to %.2f%%, want ~100%%", m.Method, sum)
		}
	}
	// The HINT-backed composites and both irHINT variants are
	// instrumented; at least those five must report a breakdown.
	if withStages < 5 {
		t.Errorf("only %d methods report stage breakdowns, want >= 5", withStages)
	}
}

// TestPerfJSONStagesParity checks the -stages flag: with Config.Stages
// the perfjson rows gain stage breakdowns, and the result checksums are
// identical to an untraced run — tracing must never change results.
func TestPerfJSONStagesParity(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are slow")
	}
	run := func(stages bool) PerfReport {
		cfg := tiny()
		cfg.Out = &bytes.Buffer{}
		cfg.JSONPath = filepath.Join(t.TempDir(), "perf.json")
		cfg.Stages = stages
		RunPerfJSON(cfg)
		blob, err := os.ReadFile(cfg.JSONPath)
		if err != nil {
			t.Fatal(err)
		}
		var report PerfReport
		if err := json.Unmarshal(blob, &report); err != nil {
			t.Fatal(err)
		}
		return report
	}
	traced, plain := run(true), run(false)
	if len(traced.Methods) != len(plain.Methods) {
		t.Fatalf("method count %d vs %d", len(traced.Methods), len(plain.Methods))
	}
	tracedBreakdowns := 0
	for i, m := range traced.Methods {
		p := plain.Methods[i]
		if m.SerialChecksum != p.SerialChecksum {
			t.Errorf("%s: traced serial checksum %s != untraced %s", m.Method, m.SerialChecksum, p.SerialChecksum)
		}
		if len(p.Stages) != 0 {
			t.Errorf("%s: stage rows present without -stages", p.Method)
		}
		if len(m.Stages) > 0 {
			tracedBreakdowns++
		}
	}
	if tracedBreakdowns == 0 {
		t.Error("no method reported a stage breakdown with -stages set")
	}
}
