package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	temporalir "repro"
	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/testutil"
)

// PerfMethod is one per-method row of the JSON perf artifact.
type PerfMethod struct {
	Method          string  `json:"method"`
	Label           string  `json:"label"`
	BuildSeconds    float64 `json:"build_seconds"`
	SizeBytes       int64   `json:"size_bytes"`
	QueryMicrosMean float64 `json:"query_micros_mean"`
	QueriesPerSec   float64 `json:"queries_per_sec"`
	ResultRows      int     `json:"result_rows"`
	// Batch-executor measurements: the same workload evaluated through
	// the worker pool (the SearchBatch hot path), versus the serial loop
	// above. SpeedupX = BatchQueriesPerSec / QueriesPerSec; it tracks the
	// worker count on multi-core hosts and sits near 1.0 when
	// gomaxprocs=1 (the pool degrades to the caller-runs serial path).
	BatchMicrosMean    float64 `json:"batch_query_micros_mean"`
	BatchQueriesPerSec float64 `json:"batch_queries_per_sec"`
	SpeedupX           float64 `json:"speedup_x"`
	// SerialChecksum and BatchChecksum hash the canonical per-query
	// result sets; they must be identical to each other (parallelism
	// cannot change results) and across methods and runs.
	SerialChecksum string `json:"serial_checksum"`
	BatchChecksum  string `json:"batch_checksum"`
	// Stages is the per-stage breakdown of the serial pass, present
	// when the run was configured with Config.Stages (irbench -stages).
	Stages []StageRow `json:"stages,omitempty"`
}

// PerfReport is the BENCH_pr*.json schema: one deterministic workload
// (fixed seed, fixed scale), every method of the family measured on it.
// ResultRows is a workload checksum — it must be identical across methods
// and across runs, so regressions in timing are comparable run to run
// while correctness drift is immediately visible.
type PerfReport struct {
	Scale      float64      `json:"scale"`
	NumQueries int          `json:"num_queries"`
	Seed       int64        `json:"seed"`
	Objects    int          `json:"objects"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	Methods    []PerfMethod `json:"methods"`
}

// BatchThroughput measures queries/second with the workload evaluated
// through the worker pool, repeating until at least minDuration elapsed —
// the batch counterpart of Throughput.
func BatchThroughput(ix temporalir.Index, queries []model.Query, pool *exec.Pool) float64 {
	const minDuration = 20 * time.Millisecond
	if len(queries) == 0 {
		return 0
	}
	ran := 0
	start := time.Now()
	for time.Since(start) < minDuration {
		_ = exec.RunBatch(pool, queries, ix.Query)
		ran += len(queries)
	}
	return float64(ran) / time.Since(start).Seconds()
}

// RunPerfJSON measures every index method — build time, resident size,
// serial query latency and batch (worker-pool) latency — on the default
// synthetic dataset under the paper's default query workload, both seeded
// from cfg.Seed. The rendered table goes to cfg.Out; when cfg.JSONPath is
// set the report is also written there as indented JSON, seeding the
// repository's perf trajectory (BENCH_pr2.json and successors).
func RunPerfJSON(cfg Config) {
	cfg = cfg.Normalize()
	coll := syntheticDefault(cfg, nil)
	queries := defaultWorkload(coll, cfg)
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	pool := exec.NewPool(workers)
	report := PerfReport{
		Scale:      cfg.Scale,
		NumQueries: len(queries),
		Seed:       cfg.Seed,
		Objects:    coll.Len(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
	}

	methods := append([]temporalir.Method{temporalir.TIF}, temporalir.Methods()...)
	tbl := &Table{
		Title:  "Deterministic perf snapshot (serial vs batch query latency + index size)",
		Header: []string{"method", "build s", "size MB", "query us", "queries/s", "batch q/s", "speedup", "rows"},
	}
	for _, m := range methods {
		ix, bs := MeasureBuild(m, coll, temporalir.Options{})
		rows := 0
		// With -stages the serial pass carries a trace recorder; the
		// breakdown lands in the method's JSON row. Tracing cannot
		// change results (checksums below would catch it if it did).
		var tr *obs.Trace
		serialQueries := queries
		if cfg.Stages {
			tr = obs.NewTrace(string(m))
			serialQueries = withTrace(queries, tr)
		}
		serialResults := make([][]model.ObjectID, len(serialQueries))
		for i, q := range serialQueries {
			serialResults[i] = ix.Query(q)
			rows += len(serialResults[i])
		}
		batch := exec.RunBatch(pool, queries, ix.Query)
		batchResults := make([][]model.ObjectID, len(batch))
		for i, r := range batch {
			batchResults[i] = r.IDs
		}
		serialSum := testutil.WorkloadChecksum(serialResults)
		batchSum := testutil.WorkloadChecksum(batchResults)
		qps := Throughput(ix, queries)
		bqps := BatchThroughput(ix, queries, pool)
		micros, bmicros, speedup := 0.0, 0.0, 0.0
		if qps > 0 {
			micros = 1e6 / qps
			speedup = bqps / qps
		}
		if bqps > 0 {
			bmicros = 1e6 / bqps
		}
		report.Methods = append(report.Methods, PerfMethod{
			Method:             string(m),
			Label:              shortName(m),
			BuildSeconds:       bs.Seconds,
			SizeBytes:          ix.SizeBytes(),
			QueryMicrosMean:    micros,
			QueriesPerSec:      qps,
			ResultRows:         rows,
			BatchMicrosMean:    bmicros,
			BatchQueriesPerSec: bqps,
			SpeedupX:           speedup,
			SerialChecksum:     serialSum,
			BatchChecksum:      batchSum,
			Stages:             stageBreakdown(tr),
		})
		tbl.Add(shortName(m), f2(bs.Seconds), f2(bs.SizeMB), f1(micros), f0(qps), f0(bqps), f2(speedup), fmt.Sprint(rows))
		if serialSum != batchSum {
			fmt.Fprintf(cfg.Out, "perfjson: WARNING %s: batch checksum %s != serial %s\n", m, batchSum, serialSum)
		}
	}
	tbl.Fprint(cfg.Out)

	if cfg.JSONPath == "" {
		return
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(cfg.Out, "perfjson: marshal: %v\n", err)
		return
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(cfg.JSONPath, blob, 0o644); err != nil {
		fmt.Fprintf(cfg.Out, "perfjson: write %s: %v\n", cfg.JSONPath, err)
		return
	}
	fmt.Fprintf(cfg.Out, "\nwrote %s\n", cfg.JSONPath)
}
