package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	temporalir "repro"
)

// PerfMethod is one per-method row of the JSON perf artifact.
type PerfMethod struct {
	Method          string  `json:"method"`
	Label           string  `json:"label"`
	BuildSeconds    float64 `json:"build_seconds"`
	SizeBytes       int64   `json:"size_bytes"`
	QueryMicrosMean float64 `json:"query_micros_mean"`
	QueriesPerSec   float64 `json:"queries_per_sec"`
	ResultRows      int     `json:"result_rows"`
}

// PerfReport is the BENCH_pr*.json schema: one deterministic workload
// (fixed seed, fixed scale), every method of the family measured on it.
// ResultRows is a workload checksum — it must be identical across methods
// and across runs, so regressions in timing are comparable run to run
// while correctness drift is immediately visible.
type PerfReport struct {
	Scale      float64      `json:"scale"`
	NumQueries int          `json:"num_queries"`
	Seed       int64        `json:"seed"`
	Objects    int          `json:"objects"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Methods    []PerfMethod `json:"methods"`
}

// RunPerfJSON measures every index method — build time, resident size and
// query latency — on the default synthetic dataset under the paper's
// default query workload, both seeded from cfg.Seed. The rendered table
// goes to cfg.Out; when cfg.JSONPath is set the report is also written
// there as indented JSON, seeding the repository's perf trajectory
// (BENCH_pr2.json and successors).
func RunPerfJSON(cfg Config) {
	cfg = cfg.Normalize()
	coll := syntheticDefault(cfg, nil)
	queries := defaultWorkload(coll, cfg)
	report := PerfReport{
		Scale:      cfg.Scale,
		NumQueries: len(queries),
		Seed:       cfg.Seed,
		Objects:    coll.Len(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	methods := append([]temporalir.Method{temporalir.TIF}, temporalir.Methods()...)
	tbl := &Table{
		Title:  "Deterministic perf snapshot (per-method query latency + index size)",
		Header: []string{"method", "build s", "size MB", "query us", "queries/s", "rows"},
	}
	for _, m := range methods {
		ix, bs := MeasureBuild(m, coll, temporalir.Options{})
		rows := 0
		for _, q := range queries {
			rows += len(ix.Query(q))
		}
		qps := Throughput(ix, queries)
		micros := 0.0
		if qps > 0 {
			micros = 1e6 / qps
		}
		report.Methods = append(report.Methods, PerfMethod{
			Method:          string(m),
			Label:           shortName(m),
			BuildSeconds:    bs.Seconds,
			SizeBytes:       ix.SizeBytes(),
			QueryMicrosMean: micros,
			QueriesPerSec:   qps,
			ResultRows:      rows,
		})
		tbl.Add(shortName(m), f2(bs.Seconds), f2(bs.SizeMB), f1(micros), f0(qps), fmt.Sprint(rows))
	}
	tbl.Fprint(cfg.Out)

	if cfg.JSONPath == "" {
		return
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(cfg.Out, "perfjson: marshal: %v\n", err)
		return
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(cfg.JSONPath, blob, 0o644); err != nil {
		fmt.Fprintf(cfg.Out, "perfjson: write %s: %v\n", cfg.JSONPath, err)
		return
	}
	fmt.Fprintf(cfg.Out, "\nwrote %s\n", cfg.JSONPath)
}
