package bench

import (
	"fmt"

	temporalir "repro"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/stats"
)

// RunTable3 prints the Table 3 characteristics and Figure 7 distributions
// of the two real-data stand-ins.
func RunTable3(cfg Config) {
	cfg = cfg.Normalize()
	for _, ds := range RealDatasets(cfg) {
		s := stats.Compute(ds.Coll)
		fmt.Fprintln(cfg.Out, s.Table(ds.Name))
		durs := stats.LogHistogram("Figure 7 (left): interval duration distribution ["+ds.Name+"]",
			stats.Durations(ds.Coll), 10)
		fmt.Fprintln(cfg.Out, durs.Render(48))
		freqs := stats.LogHistogram("Figure 7 (right): element frequency distribution ["+ds.Name+"]",
			stats.Frequencies(ds.Coll), 10)
		fmt.Fprintln(cfg.Out, freqs.Render(48))
	}
}

// fig8SliceCounts is the Figure 8 x-axis.
var fig8SliceCounts = []int{1, 10, 25, 50, 100, 150, 200, 250}

// RunFig8 reproduces the tIF+Slicing tuning sweep: indexing time, index
// size and query throughput versus the number of slices.
func RunFig8(cfg Config) {
	cfg = cfg.Normalize()
	for _, ds := range RealDatasets(cfg) {
		queries := defaultWorkload(ds.Coll, cfg)
		t := Table{
			Title:  "Figure 8: tuning tIF+Slicing [" + ds.Name + "]",
			Header: []string{"#slices", "index time [s]", "size [MB]", "throughput [q/s]"},
		}
		for _, k := range fig8SliceCounts {
			ix, bs := MeasureBuild(temporalir.TIFSlicing, ds.Coll, temporalir.Options{Slices: k})
			t.Add(fmt.Sprint(k), f2(bs.Seconds), f1(bs.SizeMB), f0(Throughput(ix, queries)))
		}
		t.Fprint(cfg.Out)
	}
}

// fig9MValues is the Figure 9 x-axis.
var fig9MValues = []int{1, 3, 5, 8, 10, 12, 16, 20}

// RunFig9 reproduces the tIF+HINT tuning sweep over the number of bits m
// for all three variants.
func RunFig9(cfg Config) {
	cfg = cfg.Normalize()
	variants := []temporalir.Method{
		temporalir.TIFHintBinary, temporalir.TIFHintMerge, temporalir.TIFHintSlicing,
	}
	for _, ds := range RealDatasets(cfg) {
		queries := defaultWorkload(ds.Coll, cfg)
		t := Table{
			Title:  "Figure 9: tuning tIF+HINT variants [" + ds.Name + "]",
			Header: []string{"variant", "m", "index time [s]", "size [MB]", "throughput [q/s]"},
		}
		for _, v := range variants {
			for _, m := range fig9MValues {
				ix, bs := MeasureBuild(v, ds.Coll, temporalir.Options{M: m})
				t.Add(shortName(v), fmt.Sprint(m), f2(bs.Seconds), f1(bs.SizeMB),
					f0(Throughput(ix, queries)))
			}
		}
		t.Fprint(cfg.Out)
	}
}

// fig10and11Extents are the query-extent sweeps (fraction of the domain).
var fig10Extents = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01}
var fig11Extents = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0}

// RunFig10 compares the three tIF+HINT variants (at their tuned m) over
// query extent, description size and element frequency.
func RunFig10(cfg Config) {
	cfg = cfg.Normalize()
	variants := []temporalir.Method{
		temporalir.TIFHintBinary, temporalir.TIFHintMerge, temporalir.TIFHintSlicing,
	}
	for _, ds := range RealDatasets(cfg) {
		indices := map[temporalir.Method]temporalir.Index{}
		for _, v := range variants {
			indices[v], _ = MeasureBuild(v, ds.Coll, temporalir.Options{})
		}
		throughputSweeps(cfg, ds, variants, indices,
			"Figure 10 ["+ds.Name+"]", fig10Extents, false)
	}
}

// RunTable5 reproduces the indexing-cost table: build time and size for
// every method on both datasets.
func RunTable5(cfg Config) {
	cfg = cfg.Normalize()
	methods := []temporalir.Method{
		temporalir.TIFSlicing, temporalir.TIFSharding,
		temporalir.TIFHintBinary, temporalir.TIFHintMerge, temporalir.TIFHintSlicing,
		temporalir.IRHintPerf, temporalir.IRHintSize,
	}
	datasets := RealDatasets(cfg)
	t := Table{
		Title:  "Table 5: indexing costs (no compression used)",
		Header: []string{"index", "time ECLOG [s]", "time WIKI [s]", "size ECLOG [MB]", "size WIKI [MB]"},
	}
	for _, m := range methods {
		row := []string{shortName(m)}
		var times, sizes []string
		for _, ds := range datasets {
			_, bs := MeasureBuild(m, ds.Coll, temporalir.Options{})
			times = append(times, f2(bs.Seconds))
			sizes = append(sizes, f1(bs.SizeMB))
		}
		row = append(row, times...)
		row = append(row, sizes...)
		t.Add(row...)
	}
	t.Fprint(cfg.Out)
}

// RunFig11 compares the tuned competitors over the four experimental
// parameters on the real-data stand-ins.
func RunFig11(cfg Config) {
	cfg = cfg.Normalize()
	methods := CompetitorMethods()
	for _, ds := range RealDatasets(cfg) {
		indices := map[temporalir.Method]temporalir.Index{}
		for _, m := range methods {
			indices[m], _ = MeasureBuild(m, ds.Coll, temporalir.Options{})
		}
		throughputSweeps(cfg, ds, methods, indices,
			"Figure 11 ["+ds.Name+"]", fig11Extents, true)
	}
}

// throughputSweeps prints the extent, |q.d|, element-frequency and
// (optionally) selectivity series for the given methods.
func throughputSweeps(cfg Config, ds Dataset, methods []temporalir.Method,
	indices map[temporalir.Method]temporalir.Index, title string,
	extents []float64, withSelectivity bool) {

	// (1) Query interval extent.
	t := Table{Title: title + ": throughput vs query interval extent [%]",
		Header: append([]string{"index"}, extentLabels(extents)...)}
	for _, m := range methods {
		row := []string{shortName(m)}
		for _, ext := range extents {
			qs := gen.Workload(ds.Coll, gen.QueryConfig{ExtentFrac: ext, NumElems: 3},
				cfg.NumQueries, cfg.Seed+101)
			row = append(row, f0(Throughput(indices[m], qs)))
		}
		t.Add(row...)
	}
	t.Fprint(cfg.Out)

	// (2) Description size |q.d|.
	t = Table{Title: title + ": throughput vs |q.d|",
		Header: []string{"index", "1", "2", "3", "4", "5"}}
	for _, m := range methods {
		row := []string{shortName(m)}
		for nd := 1; nd <= 5; nd++ {
			qs := gen.Workload(ds.Coll, gen.QueryConfig{ExtentFrac: 0.001, NumElems: nd},
				cfg.NumQueries, cfg.Seed+211)
			row = append(row, f0(Throughput(indices[m], qs)))
		}
		t.Add(row...)
	}
	t.Fprint(cfg.Out)

	// (3) Element frequency bins.
	t = Table{Title: title + ": throughput vs element frequency [%]",
		Header: append([]string{"index"}, gen.FreqBinLabels[:]...)}
	rows := make([][]string, len(methods))
	for i, m := range methods {
		rows[i] = []string{shortName(m)}
		_ = m
	}
	for b := range gen.FreqBins {
		bin := gen.FreqBins[b]
		elems := gen.ElementsInFreqBin(ds.Coll, bin[0], bin[1])
		var qs []model.Query
		if len(elems) > 0 {
			qs = gen.Workload(ds.Coll, gen.QueryConfig{ExtentFrac: 0.001, NumElems: 3, FreqBin: &bin},
				cfg.NumQueries, cfg.Seed+307)
		}
		for i, m := range methods {
			if len(qs) == 0 {
				rows[i] = append(rows[i], "-")
				continue
			}
			rows[i] = append(rows[i], f0(Throughput(indices[m], qs)))
		}
	}
	for _, r := range rows {
		t.Add(r...)
	}
	t.Fprint(cfg.Out)

	if !withSelectivity {
		return
	}

	// (4) Result-count (selectivity) bins, classified with the first
	// method as reference (all methods return identical results).
	pool := gen.MixedPool(ds.Coll, cfg.NumQueries*3, cfg.Seed+401)
	bins := classifyBySelectivity(indices[methods[0]], pool, ds.Coll.Len())
	t = Table{Title: title + ": throughput vs # results [% of cardinality]",
		Header: []string{"index"}}
	binIdx := sortedBins(bins)
	for _, b := range binIdx {
		t.Header = append(t.Header, fmt.Sprintf("%s (n=%d)", gen.SelectivityBinLabels[b], len(bins[b])))
	}
	for _, m := range methods {
		row := []string{shortName(m)}
		for _, b := range binIdx {
			row = append(row, f0(Throughput(indices[m], bins[b])))
		}
		t.Add(row...)
	}
	t.Fprint(cfg.Out)
}

func extentLabels(extents []float64) []string {
	out := make([]string, len(extents))
	for i, e := range extents {
		out[i] = fmt.Sprintf("%g", e*100)
	}
	return out
}

// RunFig12 reproduces the synthetic sweeps: one series per Table 4
// construction parameter plus the four query parameters at defaults.
func RunFig12(cfg Config) {
	cfg = cfg.Normalize()
	methods := CompetitorMethods()

	sweep := func(title string, labels []string, build func(i int) *model.Collection) {
		t := Table{Title: "Figure 12: throughput vs " + title,
			Header: append([]string{"index"}, labels...)}
		rows := make([][]string, len(methods))
		for i := range methods {
			rows[i] = []string{shortName(methods[i])}
		}
		for pt := range labels {
			c := build(pt)
			queries := gen.Workload(c, gen.DefaultQueryConfig(), cfg.NumQueries, cfg.Seed+500+int64(pt))
			for i, m := range methods {
				ix, _ := MeasureBuild(m, c, temporalir.Options{})
				rows[i] = append(rows[i], f0(Throughput(ix, queries)))
			}
		}
		for _, r := range rows {
			t.Add(r...)
		}
		t.Fprint(cfg.Out)
	}

	// Cardinality sweep (paper: 100K..10M, scaled).
	cards := []float64{100_000, 500_000, 1_000_000, 5_000_000, 10_000_000}
	sweep("dataset cardinality", []string{"100K", "500K", "1M", "5M", "10M"}, func(i int) *model.Collection {
		return syntheticDefault(cfg, func(sc *gen.SyntheticConfig) {
			sc.Cardinality = int(cards[i] * cfg.Scale)
		})
	})
	// Time-domain sweep (32M..512M, scaled).
	domains := []float64{32e6, 64e6, 128e6, 256e6, 512e6}
	sweep("time domain size", []string{"32M", "64M", "128M", "256M", "512M"}, func(i int) *model.Collection {
		return syntheticDefault(cfg, func(sc *gen.SyntheticConfig) {
			sc.DomainSize = int64(domains[i] * cfg.Scale)
		})
	})
	// Interval duration skew.
	alphas := []float64{1.01, 1.1, 1.2, 1.4, 1.8}
	sweep("alpha (interval duration)", []string{"1.01", "1.1", "1.2", "1.4", "1.8"}, func(i int) *model.Collection {
		return syntheticDefault(cfg, func(sc *gen.SyntheticConfig) { sc.Alpha = alphas[i] })
	})
	// Interval position spread.
	sigmas := []float64{10_000, 100_000, 1_000_000, 5_000_000, 10_000_000}
	sweep("sigma (interval position)", []string{"10K", "100K", "1M", "5M", "10M"}, func(i int) *model.Collection {
		return syntheticDefault(cfg, func(sc *gen.SyntheticConfig) {
			sc.Sigma = sigmas[i] * cfg.Scale
		})
	})
	// Dictionary size.
	dicts := []float64{10_000, 50_000, 100_000, 500_000, 1_000_000}
	sweep("dictionary size", []string{"10K", "50K", "100K", "500K", "1M"}, func(i int) *model.Collection {
		return syntheticDefault(cfg, func(sc *gen.SyntheticConfig) {
			sc.DictSize = int(dicts[i] * cfg.Scale)
			if sc.DictSize < 16 {
				sc.DictSize = 16
			}
		})
	})
	// Description size.
	descs := []int{5, 10, 50, 100, 500}
	sweep("description size |d|", []string{"5", "10", "50", "100", "500"}, func(i int) *model.Collection {
		return syntheticDefault(cfg, func(sc *gen.SyntheticConfig) { sc.DescSize = descs[i] })
	})
	// Element frequency skew.
	zetas := []float64{1.0, 1.25, 1.5, 1.75, 2.0}
	sweep("element frequency skewness zeta", []string{"1.0", "1.25", "1.5", "1.75", "2.0"}, func(i int) *model.Collection {
		return syntheticDefault(cfg, func(sc *gen.SyntheticConfig) { sc.Zeta = zetas[i] })
	})

	// Query parameters on the default synthetic dataset.
	c := syntheticDefault(cfg, nil)
	indices := map[temporalir.Method]temporalir.Index{}
	for _, m := range methods {
		indices[m], _ = MeasureBuild(m, c, temporalir.Options{})
	}
	throughputSweeps(cfg, Dataset{"synthetic", c}, methods, indices,
		"Figure 12 [synthetic defaults]", fig11Extents, true)
}

// updateBatches are the Table 6/7 batch fractions.
var updateBatches = []float64{0.01, 0.05, 0.10}

// RunTable6 reproduces the insertion-cost table: index 90% of each
// dataset offline, then time inserting batches of 1%, 5% and 10%.
func RunTable6(cfg Config) {
	cfg = cfg.Normalize()
	methods := allUpdateMethods()
	for _, ds := range RealDatasets(cfg) {
		cut := ds.Coll.Len() * 9 / 10
		base := &model.Collection{Objects: ds.Coll.Objects[:cut], DictSize: ds.Coll.DictSize}
		rest := ds.Coll.Objects[cut:]
		t := Table{
			Title:  "Table 6: update time [s] for insertions [" + ds.Name + "]",
			Header: []string{"index", "1%", "5%", "10%"},
		}
		for _, m := range methods {
			row := []string{shortName(m)}
			for _, frac := range updateBatches {
				ix, _ := MeasureBuild(m, base, temporalir.Options{})
				n := int(float64(ds.Coll.Len()) * frac)
				if n > len(rest) {
					n = len(rest)
				}
				secs := timeIt(func() {
					for i := 0; i < n; i++ {
						ix.Insert(rest[i])
					}
				})
				row = append(row, f2(secs))
			}
			t.Add(row...)
		}
		t.Fprint(cfg.Out)
	}
}

// RunTable7 reproduces the deletion-cost table: index each dataset fully,
// then time tombstoning 1%, 5% and 10% of the objects.
func RunTable7(cfg Config) {
	cfg = cfg.Normalize()
	methods := allUpdateMethods()
	for _, ds := range RealDatasets(cfg) {
		t := Table{
			Title:  "Table 7: update time [s] for deletions [" + ds.Name + "]",
			Header: []string{"index", "1%", "5%", "10%"},
		}
		for _, m := range methods {
			row := []string{shortName(m)}
			for _, frac := range updateBatches {
				ix, _ := MeasureBuild(m, ds.Coll, temporalir.Options{})
				n := int(float64(ds.Coll.Len()) * frac)
				secs := timeIt(func() {
					for i := 0; i < n; i++ {
						ix.Delete(ds.Coll.Objects[i])
					}
				})
				row = append(row, f2(secs))
			}
			t.Add(row...)
		}
		t.Fprint(cfg.Out)
	}
}

func allUpdateMethods() []temporalir.Method {
	return []temporalir.Method{
		temporalir.TIFSlicing, temporalir.TIFSharding,
		temporalir.TIFHintBinary, temporalir.TIFHintMerge, temporalir.TIFHintSlicing,
		temporalir.IRHintPerf, temporalir.IRHintSize,
	}
}
