package maint

import (
	"sort"

	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rank"
)

// tombstones is an immutable set of deleted internal ids. Mutation is
// copy-on-write: withAll returns a fresh set, so generations already
// published keep their view. The set is consumed (reset to empty) by
// compaction, which physically drops the tombstoned objects.
type tombstones struct {
	ids map[model.ObjectID]bool
}

// Has reports whether the internal id is tombstoned.
func (t tombstones) Has(id model.ObjectID) bool { return t.ids[id] }

// Len returns the number of tombstoned ids.
func (t tombstones) Len() int { return len(t.ids) }

// withAll returns a copy of the set with the given ids added.
func (t tombstones) withAll(ids ...model.ObjectID) tombstones {
	m := make(map[model.ObjectID]bool, len(t.ids)+len(ids))
	for id := range t.ids {
		m[id] = true
	}
	for _, id := range ids {
		m[id] = true
	}
	return tombstones{ids: m}
}

// Generation is one immutable epoch of the store: everything a query
// needs, reachable from a single pointer. Reads acquire it with one
// atomic load and then touch no shared mutable state at all — writers
// publish new generations instead of mutating old ones.
//
// All ids inside a Generation are internal (dense positions in Coll);
// External/Internal translate to and from the stable ids the engine
// hands out. Query results are internal; callers translate at the edge.
type Generation struct {
	epoch      uint64
	coll       *model.Collection
	base       Index
	compactLen int
	mem        Memtable
	dead       tombstones
	ext        []model.ObjectID
	nextExt    model.ObjectID
	scorer     *rank.Scorer
}

// next returns a copy of g with the epoch advanced; the store mutates
// the copy's fields before publishing it.
func (g *Generation) next() *Generation {
	g2 := *g
	g2.epoch++
	return &g2
}

// Epoch returns the generation's monotonically increasing epoch number.
func (g *Generation) Epoch() uint64 { return g.epoch }

// NextExt returns the next external id the store will hand out, as of
// this generation. Together with the translation table it makes a
// snapshot self-describing for persistence: a store rebuilt from a
// saved generation assigns the same ids the original would have.
func (g *Generation) NextExt() model.ObjectID { return g.nextExt }

// Coll returns the full visible collection: base objects in positions
// [0, base-length), memtable objects after. Internal ids equal
// positions, so rank and aggregation code can index Objects directly.
// The collection is immutable; callers must not mutate it.
func (g *Generation) Coll() *model.Collection { return g.coll }

// Base returns the immutable main index covering the compacted prefix
// of Coll. It excludes memtable objects and ignores tombstones; use
// Query for the full filtered view.
func (g *Generation) Base() Index { return g.base }

// Scorer returns the IDF scorer snapshot, or nil if none was computed.
func (g *Generation) Scorer() *rank.Scorer { return g.scorer }

// Len returns the number of live (non-tombstoned) objects.
func (g *Generation) Len() int { return len(g.coll.Objects) - g.dead.Len() }

// MemLen returns the number of objects in the memtable snapshot.
func (g *Generation) MemLen() int { return g.mem.Len() }

// TombstoneCount returns the number of pending logical deletions.
func (g *Generation) TombstoneCount() int { return g.dead.Len() }

// Tombstoned reports whether the internal id is logically deleted.
func (g *Generation) Tombstoned(id model.ObjectID) bool { return g.dead.Has(id) }

// SizeBytes estimates the generation's resident size: the main index,
// the memtable, the tombstone set and the id-translation table.
func (g *Generation) SizeBytes() int64 {
	return g.base.SizeBytes() + g.mem.SizeBytes() +
		int64(g.dead.Len())*tombstoneBytes + int64(len(g.ext))*4
}

// ParallelIndex is implemented by index variants that can fan one
// query's partition scans across a worker pool.
type ParallelIndex interface {
	QueryP(q model.Query, pool *exec.Pool) []model.ObjectID
}

// Query answers a time-travel IR query over the whole generation: the
// main index supplies base candidates, tombstoned ids are filtered out,
// and memtable matches are appended. Results are internal ids in
// unspecified order.
func (g *Generation) Query(q model.Query) []model.ObjectID {
	return g.finish(q, g.base.Query(q))
}

// QueryP is Query with intra-query parallelism when the main index
// supports it.
func (g *Generation) QueryP(q model.Query, pool *exec.Pool) []model.ObjectID {
	if p, ok := g.base.(ParallelIndex); ok && pool != nil {
		return g.finish(q, p.QueryP(q, pool))
	}
	return g.finish(q, g.base.Query(q))
}

// finish applies tombstone filtering to the base candidates (in place)
// and merges in matching memtable objects.
func (g *Generation) finish(q model.Query, ids []model.ObjectID) []model.ObjectID {
	defer q.Trace.StartStage(obs.StageFilter).End()
	filtered := g.dead.Len() > 0
	if filtered {
		w := 0
		for _, id := range ids {
			if !g.dead.Has(id) {
				ids[w] = id
				w++
			}
		}
		ids = ids[:w]
	}
	for i := range g.mem.objs {
		o := &g.mem.objs[i]
		if filtered && g.dead.Has(o.ID) {
			continue
		}
		if q.Matches(o) {
			ids = append(ids, o.ID)
		}
	}
	return ids
}

// Internal maps a stable external id to the generation's internal id,
// by binary search over the strictly ascending translation table.
func (g *Generation) Internal(ext model.ObjectID) (model.ObjectID, bool) {
	i := sort.Search(len(g.ext), func(i int) bool { return g.ext[i] >= ext })
	if i == len(g.ext) || g.ext[i] != ext {
		return 0, false
	}
	return model.ObjectID(i), true
}

// ExternalID maps one internal id to its stable external id.
func (g *Generation) ExternalID(id model.ObjectID) model.ObjectID { return g.ext[id] }

// External maps a slice of internal ids to external ids in place and
// returns it. The translation is monotonic, so an ascending input stays
// ascending.
func (g *Generation) External(ids []model.ObjectID) []model.ObjectID {
	for i, id := range ids {
		ids[i] = g.ext[id]
	}
	return ids
}

// Lookup resolves a stable external id to its live object record, or
// reports false if the id is unknown or tombstoned. The returned pointer
// aliases the generation's immutable storage; callers must not mutate it.
func (g *Generation) Lookup(ext model.ObjectID) (*model.Object, bool) {
	id, ok := g.Internal(ext)
	if !ok || g.dead.Has(id) {
		return nil, false
	}
	return &g.coll.Objects[id], true
}
