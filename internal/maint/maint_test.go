package maint

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/model"
	"repro/internal/tif"
	"repro/internal/tifhint"
)

// testPool serves the intra-query fan-out tests.
var testPool = exec.NewPool(4)

// tifBuild is the BuildFunc the tests use: the base temporal inverted
// file, the simplest member of the index family.
func tifBuild(_ context.Context, c *model.Collection) (Index, error) { return tif.New(c), nil }

// seedCollection builds n objects: object i lives [i, i+10] and carries
// element i%4 (plus element 0 on even ids).
func seedCollection(n int) *model.Collection {
	c := &model.Collection{DictSize: 4}
	for i := 0; i < n; i++ {
		elems := []model.ElemID{model.ElemID(i % 4)}
		if i%2 == 0 {
			elems = append(elems, 0)
		}
		c.AppendObject(model.NewInterval(model.Timestamp(i), model.Timestamp(i+10)), model.NormalizeElems(elems))
	}
	return c
}

func newTestStore(t *testing.T, n int) *Store {
	t.Helper()
	c := seedCollection(n)
	return NewStore(c, tif.New(c), tifBuild)
}

// expected scans the generation's collection directly: the matching,
// non-tombstoned internal ids in ascending order.
func expected(g *Generation, q model.Query) []model.ObjectID {
	var want []model.ObjectID
	for i := range g.Coll().Objects {
		o := &g.Coll().Objects[i]
		if !g.Tombstoned(o.ID) && q.Matches(o) {
			want = append(want, o.ID)
		}
	}
	return want
}

func checkQuery(t *testing.T, g *Generation, q model.Query) {
	t.Helper()
	got := g.Query(q)
	model.SortIDs(got)
	if !model.EqualIDs(model.DedupIDs(got), expected(g, q)) {
		t.Errorf("query %v elems=%v: got %v, want %v", q.Interval, q.Elems, got, expected(g, q))
	}
}

var testQueries = []model.Query{
	{Interval: model.NewInterval(0, 100)},
	{Interval: model.NewInterval(5, 15), Elems: []model.ElemID{0}},
	{Interval: model.NewInterval(12, 12), Elems: []model.ElemID{1}},
	{Interval: model.NewInterval(0, 40), Elems: []model.ElemID{0, 2}},
	{Interval: model.NewInterval(30, 60), Elems: []model.ElemID{3}},
}

func TestAppendVisibleAndStable(t *testing.T) {
	s := newTestStore(t, 20)
	id := s.Append(model.NewInterval(100, 110), []model.ElemID{1}, 4)
	if id != 20 {
		t.Fatalf("first appended external id = %d, want 20", id)
	}
	g := s.Snapshot()
	if g.Len() != 21 || g.MemLen() != 1 {
		t.Fatalf("Len=%d MemLen=%d, want 21/1", g.Len(), g.MemLen())
	}
	ids := g.Query(model.Query{Interval: model.NewInterval(105, 105), Elems: []model.ElemID{1}})
	ext := g.External(ids)
	if len(ext) != 1 || ext[0] != id {
		t.Fatalf("memtable object not visible to queries: got %v, want [%d]", ext, id)
	}
	for _, q := range testQueries {
		checkQuery(t, g, q)
	}
}

func TestDeleteHidesAndReports(t *testing.T) {
	s := newTestStore(t, 20)
	if !s.Delete(5) {
		t.Fatal("Delete(5) = false, want true")
	}
	if s.Delete(5) {
		t.Fatal("second Delete(5) = true, want false (already dead)")
	}
	if s.Delete(99) {
		t.Fatal("Delete(99) = true, want false (unknown)")
	}
	g := s.Snapshot()
	if g.Len() != 19 || g.TombstoneCount() != 1 {
		t.Fatalf("Len=%d tombstones=%d, want 19/1", g.Len(), g.TombstoneCount())
	}
	if _, ok := g.Lookup(5); ok {
		t.Fatal("Lookup(5) found a tombstoned object")
	}
	for _, q := range testQueries {
		checkQuery(t, g, q)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := newTestStore(t, 10)
	g0 := s.Snapshot()
	s.Append(model.NewInterval(0, 100), []model.ElemID{0}, 4)
	s.Delete(3)
	if g0.Len() != 10 || g0.MemLen() != 0 || g0.TombstoneCount() != 0 {
		t.Fatal("older generation observed later mutations")
	}
	g1 := s.Snapshot()
	if g1.Len() != 10 || g1.MemLen() != 1 || g1.TombstoneCount() != 1 {
		t.Fatalf("new generation Len=%d MemLen=%d dead=%d, want 10/1/1", g1.Len(), g1.MemLen(), g1.TombstoneCount())
	}
	if g1.Epoch() <= g0.Epoch() {
		t.Fatalf("epoch did not advance: %d -> %d", g0.Epoch(), g1.Epoch())
	}
}

// resultsByExt evaluates the query set and returns externally-keyed
// canonical results, comparable across compactions.
func resultsByExt(g *Generation) [][]model.ObjectID {
	out := make([][]model.ObjectID, len(testQueries))
	for i, q := range testQueries {
		ids := g.Query(q)
		ext := g.External(ids)
		model.SortIDs(ext)
		out[i] = model.DedupIDs(ext)
	}
	return out
}

func TestCompactDropsTombstonesKeepsResults(t *testing.T) {
	s := newTestStore(t, 40)
	for i := 0; i < 8; i++ {
		s.Append(model.NewInterval(model.Timestamp(40+i), model.Timestamp(50+i)), []model.ElemID{model.ElemID(i % 4)}, 4)
	}
	for id := model.ObjectID(0); id < 48; id += 3 {
		s.Delete(id)
	}
	before := resultsByExt(s.Snapshot())

	st, err := s.Compact(context.Background())
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st.Compactions != 1 || st.Tombstones != 0 || st.MemObjects != 0 {
		t.Fatalf("stats after compact: %+v", st)
	}
	if st.LastDropped != 16 || st.LastMerged != 8 {
		t.Fatalf("LastDropped=%d LastMerged=%d, want 16/8", st.LastDropped, st.LastMerged)
	}
	g := s.Snapshot()
	if g.Len() != 32 || g.MemLen() != 0 || g.TombstoneCount() != 0 {
		t.Fatalf("post-compact Len=%d MemLen=%d dead=%d, want 32/0/0", g.Len(), g.MemLen(), g.TombstoneCount())
	}
	if g.Base().Len() != 32 {
		t.Fatalf("base index covers %d objects, want 32", g.Base().Len())
	}
	after := resultsByExt(g)
	for i := range before {
		if !model.EqualIDs(before[i], after[i]) {
			t.Errorf("query %d changed across compaction: %v -> %v", i, before[i], after[i])
		}
	}

	// Consumed tombstones are really gone: the dropped ids are unknown now.
	if _, ok := g.Internal(0); ok {
		t.Error("compacted-away id 0 still resolvable")
	}
	if s.Delete(0) {
		t.Error("Delete of a compacted-away id succeeded")
	}
	// Survivor ids are still resolvable and live.
	if _, ok := g.Lookup(1); !ok {
		t.Error("surviving id 1 lost across compaction")
	}
}

func TestCompactNoop(t *testing.T) {
	s := newTestStore(t, 10)
	g0 := s.Snapshot()
	st, err := s.Compact(context.Background())
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st.Compactions != 0 {
		t.Fatalf("no-op compact counted: %+v", st)
	}
	if s.Snapshot() != g0 {
		t.Fatal("no-op compact published a new generation")
	}
}

func TestCompactContextCanceled(t *testing.T) {
	s := newTestStore(t, 10)
	s.Delete(0)
	g0 := s.Snapshot()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Compact(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Compact(canceled) err = %v, want context.Canceled", err)
	}
	if s.Snapshot() != g0 {
		t.Fatal("failed compact mutated the published generation")
	}
}

// TestCompactBuildReceivesContext pins the ctx-flow fix from the v3 lint
// sweep: the BuildFunc gets the compaction's own context (not a detached
// Background), so a cancellation that lands mid-compaction reaches the
// rebuild. The build cancels the caller's ctx and returns the error of
// the ctx it received — if the store handed it a detached context, that
// error would be nil, the compaction would "succeed", and the swap would
// go through.
func TestCompactBuildReceivesContext(t *testing.T) {
	c := seedCollection(10)
	ctx, cancel := context.WithCancel(context.Background())
	build := func(bctx context.Context, _ *model.Collection) (Index, error) {
		cancel()
		return nil, bctx.Err()
	}
	s := NewStore(c, tif.New(c), build)
	s.Delete(0)
	g0 := s.Snapshot()
	if _, err := s.Compact(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Compact err = %v, want context.Canceled threaded through BuildFunc", err)
	}
	if s.Snapshot() != g0 {
		t.Fatal("canceled compact mutated the published generation")
	}
	if st := s.Stats(); st.InProgress {
		t.Fatal("compacting latch stuck after canceled build")
	}
}

func TestCompactBuildError(t *testing.T) {
	c := seedCollection(10)
	boom := errors.New("boom")
	s := NewStore(c, tif.New(c), func(context.Context, *model.Collection) (Index, error) { return nil, boom })
	s.Delete(0)
	g0 := s.Snapshot()
	if _, err := s.Compact(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Compact err = %v, want boom", err)
	}
	if s.Snapshot() != g0 {
		t.Fatal("failed compact mutated the published generation")
	}
	if st := s.Stats(); st.InProgress {
		t.Fatal("compacting latch stuck after build error")
	}
}

// TestWritesDuringCompaction drives a compaction whose BuildFunc blocks
// on a channel, proving queries and writes proceed while compaction is
// in flight, and that mutations landing mid-compaction survive the swap.
func TestWritesDuringCompaction(t *testing.T) {
	c := seedCollection(30)
	enter := make(chan struct{})
	release := make(chan struct{})
	build := func(_ context.Context, cc *model.Collection) (Index, error) {
		close(enter)
		<-release
		return tif.New(cc), nil
	}
	s := NewStore(c, tif.New(c), build)
	for id := model.ObjectID(0); id < 10; id++ {
		s.Delete(id)
	}

	done := make(chan error, 1)
	go func() {
		_, err := s.Compact(context.Background())
		done <- err
	}()
	<-enter // compaction is inside the (blocked) rebuild

	// Writes and reads proceed while the rebuild is stuck.
	midIns := s.Append(model.NewInterval(200, 210), []model.ElemID{2}, 4)
	if !s.Delete(15) {
		t.Fatal("Delete during compaction failed")
	}
	if _, err := s.Compact(context.Background()); !errors.Is(err, ErrCompactionRunning) {
		t.Fatalf("second Compact err = %v, want ErrCompactionRunning", err)
	}
	g := s.Snapshot()
	ids := g.External(g.Query(model.Query{Interval: model.NewInterval(205, 205), Elems: []model.ElemID{2}}))
	found := false
	for _, id := range ids {
		if id == midIns {
			found = true
		}
	}
	if !found {
		t.Fatal("mid-compaction insert not visible to queries")
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Compact: %v", err)
	}

	g = s.Snapshot()
	// The 10 snapshot tombstones were dropped; the mid-flight delete of 15
	// was carried as a tombstone; the mid-flight insert is in the memtable.
	if g.Len() != 30-10+1-1 {
		t.Fatalf("post-compact Len = %d, want 20", g.Len())
	}
	if g.TombstoneCount() != 1 {
		t.Fatalf("carried tombstones = %d, want 1", g.TombstoneCount())
	}
	if g.MemLen() != 1 {
		t.Fatalf("post-compact memtable = %d, want 1 (mid-flight insert)", g.MemLen())
	}
	if _, ok := g.Lookup(15); ok {
		t.Fatal("mid-compaction delete lost across swap")
	}
	if _, ok := g.Lookup(midIns); !ok {
		t.Fatal("mid-compaction insert lost across swap")
	}
	for _, q := range testQueries {
		checkQuery(t, g, q)
	}

	// A second compaction folds the carried state in fully.
	s2 := s
	s2.build = tifBuild
	if _, err := s2.Compact(context.Background()); err != nil {
		t.Fatalf("second Compact: %v", err)
	}
	g = s.Snapshot()
	if g.TombstoneCount() != 0 || g.MemLen() != 0 || g.Len() != 20 {
		t.Fatalf("after second compact: Len=%d MemLen=%d dead=%d, want 20/0/0", g.Len(), g.MemLen(), g.TombstoneCount())
	}
}

func TestAutoCompactionPolicy(t *testing.T) {
	s := newTestStore(t, 10)
	s.SetPolicy(Policy{MaxMemObjects: 4})
	for i := 0; i < 4; i++ {
		s.Append(model.NewInterval(model.Timestamp(i), model.Timestamp(i+1)), []model.ElemID{0}, 4)
	}
	waitFor(t, func() bool { return s.Stats().Compactions >= 1 && s.Stats().MemObjects == 0 })

	// Tombstone-ratio trigger: delete until >= 30% of objects are dead.
	s.SetPolicy(Policy{MaxDeadRatio: 0.3})
	for id := model.ObjectID(0); id < 5; id++ {
		s.Delete(id)
	}
	waitFor(t, func() bool {
		st := s.Stats()
		return st.Compactions >= 2 && st.Tombstones == 0
	})
	if got := s.Snapshot().Len(); got != 9 {
		t.Fatalf("Len after policy compactions = %d, want 9", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestInternalExternalRoundTrip(t *testing.T) {
	s := newTestStore(t, 25)
	for id := model.ObjectID(0); id < 25; id += 4 {
		s.Delete(id)
	}
	if _, err := s.Compact(context.Background()); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	g := s.Snapshot()
	exts := make([]model.ObjectID, 0, g.Len())
	for i := range g.Coll().Objects {
		e := g.ExternalID(model.ObjectID(i))
		exts = append(exts, e)
		in, ok := g.Internal(e)
		if !ok || int(in) != i {
			t.Fatalf("round trip failed: internal %d -> ext %d -> %d,%v", i, e, in, ok)
		}
	}
	if !sort.SliceIsSorted(exts, func(a, b int) bool { return exts[a] < exts[b] }) {
		t.Fatal("external id table not ascending after compaction")
	}
}

func TestParallelQueryAgrees(t *testing.T) {
	c := seedCollection(60)
	s := NewStore(c, tifhint.NewBinary(c), func(_ context.Context, cc *model.Collection) (Index, error) { return tifhint.NewBinary(cc), nil })
	for id := model.ObjectID(0); id < 60; id += 5 {
		s.Delete(id)
	}
	s.Append(model.NewInterval(5, 500), []model.ElemID{1}, 4)
	g := s.Snapshot()
	for _, q := range testQueries {
		serial := append([]model.ObjectID(nil), g.Query(q)...)
		par := g.QueryP(q, testPool)
		model.SortIDs(serial)
		model.SortIDs(par)
		if !model.EqualIDs(model.DedupIDs(serial), model.DedupIDs(par)) {
			t.Errorf("QueryP disagrees with Query on %v elems=%v: %v vs %v", q.Interval, q.Elems, par, serial)
		}
	}
}
