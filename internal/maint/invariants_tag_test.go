//go:build invariants

package maint

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/tif"
)

// TestCheckGenerationFires pins the invariants build: publishing a
// structurally broken generation must panic.
func TestCheckGenerationFires(t *testing.T) {
	if !maintInvariantsEnabled {
		t.Fatal("invariants build tag set but maintInvariantsEnabled is false")
	}
	c := seedCollection(4)
	g := &Generation{
		epoch:      1,
		coll:       c,
		base:       tif.New(c),
		compactLen: 4,
		// ext table too short: violates the parallel-table invariant.
		ext: []model.ObjectID{0, 1},
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("checkGeneration accepted a malformed generation")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "invariant violation") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	checkGeneration(g)
}

// TestCheckGenerationSilentOnWellFormed runs the store lifecycle with
// checkGeneration live on every publish; nothing may fire.
func TestCheckGenerationSilentOnWellFormed(t *testing.T) {
	s := newTestStore(t, 12)
	for i := 0; i < 6; i++ {
		s.Append(model.NewInterval(model.Timestamp(i), model.Timestamp(i+2)), []model.ElemID{0}, 4)
	}
	for id := model.ObjectID(0); id < 9; id += 2 {
		s.Delete(id)
	}
	checkGeneration(s.Snapshot())
}
