package maint

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/tif"
)

// TestStoreRace hammers every store entry point concurrently — appends,
// deletes, snapshot queries, stats and repeated compactions — so `go
// test -race` can observe any unsynchronized access between the writer
// paths and the lock-free read path.
func TestStoreRace(t *testing.T) {
	s := newTestStore(t, 50)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer: appends
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Append(model.NewInterval(model.Timestamp(i%90), model.Timestamp(i%90+10)), []model.ElemID{model.ElemID(i % 4)}, 4)
			time.Sleep(50 * time.Microsecond)
		}
	}()
	wg.Add(1)
	go func() { // writer: deletes (some ids already dead or compacted: fine)
		defer wg.Done()
		for id := model.ObjectID(0); ; id++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Delete(id % 120)
			time.Sleep(70 * time.Microsecond)
		}
	}()
	for r := 0; r < 3; r++ { // readers: snapshot queries + lookups
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				g := s.Snapshot()
				q := testQueries[(i+r)%len(testQueries)]
				ids := g.Query(q)
				g.External(ids)
				g.Lookup(model.ObjectID(i % 120))
				g.Len()
				g.SizeBytes()
			}
		}(r)
	}
	wg.Add(1)
	go func() { // stats poller
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Stats()
			time.Sleep(20 * time.Microsecond)
		}
	}()

	for i := 0; i < 20; i++ { // repeated foreground compactions
		if _, err := s.Compact(context.Background()); err != nil {
			t.Fatalf("Compact %d: %v", i, err)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// The surviving state must still be coherent.
	if _, err := s.Compact(context.Background()); err != nil {
		t.Fatalf("final Compact: %v", err)
	}
	g := s.Snapshot()
	if g.TombstoneCount() != 0 || g.MemLen() != 0 {
		t.Fatalf("after final compact: MemLen=%d dead=%d, want 0/0", g.MemLen(), g.TombstoneCount())
	}
	for _, q := range testQueries {
		checkQuery(t, g, q)
	}
}

// TestAutoCompactRace overlaps policy-triggered background compactions
// with manual ones and concurrent writes.
func TestAutoCompactRace(t *testing.T) {
	c := seedCollection(20)
	s := NewStore(c, tif.New(c), tifBuild)
	s.SetPolicy(Policy{MaxMemObjects: 8, MaxDeadRatio: 0.25})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 3 {
				case 0:
					s.Append(model.NewInterval(model.Timestamp(i), model.Timestamp(i+5)), []model.ElemID{model.ElemID(w % 4)}, 4)
				case 1:
					s.Delete(model.ObjectID((w*200 + i) % 300))
				default:
					g := s.Snapshot()
					g.Query(testQueries[i%len(testQueries)])
				}
			}
		}(w)
	}
	wg.Wait()
	// Drain any in-flight background pass, then verify coherence.
	waitFor(t, func() bool { return !s.Stats().InProgress })
	for _, q := range testQueries {
		checkQuery(t, s.Snapshot(), q)
	}
}
