// Package maint implements the generational write path that turns the
// build-once indices of the paper into a long-running, continuously
// updatable store — the head/block split of log-structured systems
// (LSM memtables, Pyroscope's in-memory head vs. compacted blocks)
// applied to temporal IR:
//
//   - Writes land in a small mutable memtable — a brute-force sidecar
//     that is O(1) to append to — never in the main index.
//   - Reads run against an immutable Generation (main index + memtable
//     snapshot + tombstone set) obtained from a single atomic pointer,
//     so queries never wait on writers or on compaction.
//   - A background compactor merges the memtable into the object store,
//     physically drops tombstoned objects, rebuilds the configured index
//     method off the read path, and atomically swaps in the new
//     generation.
//
// Object identity: the Store hands out stable external ids that survive
// compaction. Internally every Generation uses dense position ids (the
// invariant all eight index methods rely on); a per-generation
// translation table maps between the two.
package maint

import (
	"context"
	"errors"

	"repro/internal/model"
)

// Index is the surface the store needs from a main index. It mirrors the
// root package's Index interface, so any index of the family satisfies
// it; the store only ever calls Query/Len/SizeBytes — main indices are
// immutable here, updates flow through the memtable and compaction.
type Index interface {
	Query(q model.Query) []model.ObjectID
	Insert(o model.Object)
	Delete(o model.Object)
	Len() int
	SizeBytes() int64
}

// BuildFunc rebuilds the configured index method over a compacted
// collection. It runs off the read path (no locks held) and must not
// retain or mutate the collection beyond what index construction needs.
// The context is the compaction's: implementations should return
// ctx.Err() instead of starting an expensive build once it is done, so
// a canceled foreground Compact stops before the rebuild rather than
// after it.
type BuildFunc func(ctx context.Context, c *model.Collection) (Index, error)

// ErrCompactionRunning is returned by Compact when another compaction
// (manual or policy-triggered) is already in flight.
var ErrCompactionRunning = errors.New("maint: compaction already in progress")

// objectBytes estimates the resident size of one object record: the
// fixed struct (id + interval + slice header) plus its element ids.
func objectBytes(o *model.Object) int64 {
	return 48 + 4*int64(len(o.Elems))
}

// tombstoneBytes approximates the per-entry footprint of the tombstone
// set (map bucket share + key + value).
const tombstoneBytes = 16
