//go:build invariants

package maint

import "fmt"

// maintInvariantsEnabled reports whether generation well-formedness
// checks are compiled in (-tags invariants).
const maintInvariantsEnabled = true

// checkGeneration asserts the structural invariants every published
// generation must satisfy. It runs on every publish under
// -tags invariants and compiles to a no-op otherwise.
//
//   - internal ids are dense positions: coll.Objects[i].ID == i
//   - the external-id table is parallel to the objects and strictly
//     ascending (so binary search is valid)
//   - the memtable is exactly the suffix past the compacted prefix and
//     the base index covers exactly that prefix
//   - every tombstone refers to a stored object
func checkGeneration(g *Generation) {
	n := len(g.coll.Objects)
	if len(g.ext) != n {
		panic(fmt.Sprintf("maint: invariant violation: ext table len %d != objects len %d", len(g.ext), n))
	}
	for i := range g.coll.Objects {
		if int(g.coll.Objects[i].ID) != i {
			panic(fmt.Sprintf("maint: invariant violation: object at position %d has internal id %d", i, g.coll.Objects[i].ID))
		}
		if i > 0 && g.ext[i-1] >= g.ext[i] {
			panic(fmt.Sprintf("maint: invariant violation: ext table not strictly ascending at %d (%d >= %d)", i, g.ext[i-1], g.ext[i]))
		}
	}
	if n > 0 && g.ext[n-1] >= g.nextExt {
		panic(fmt.Sprintf("maint: invariant violation: nextExt %d not past last external id %d", g.nextExt, g.ext[n-1]))
	}
	if g.compactLen < 0 || g.compactLen > n {
		panic(fmt.Sprintf("maint: invariant violation: compactLen %d out of range [0,%d]", g.compactLen, n))
	}
	if g.mem.Len() != n-g.compactLen {
		panic(fmt.Sprintf("maint: invariant violation: memtable len %d != %d objects past compacted prefix", g.mem.Len(), n-g.compactLen))
	}
	if g.mem.Len() > 0 && int(g.mem.objs[0].ID) != g.compactLen {
		panic(fmt.Sprintf("maint: invariant violation: first memtable id %d != compactLen %d", g.mem.objs[0].ID, g.compactLen))
	}
	if got := g.base.Len(); got != g.compactLen {
		panic(fmt.Sprintf("maint: invariant violation: base index len %d != compactLen %d", got, g.compactLen))
	}
	for id := range g.dead.ids {
		if int(id) >= n {
			panic(fmt.Sprintf("maint: invariant violation: tombstone %d beyond %d stored objects", id, n))
		}
	}
}
