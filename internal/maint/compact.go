package maint

import (
	"context"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
)

// Compact synchronously merges the memtable into the compacted store,
// physically drops tombstoned objects, rebuilds the main index off the
// read path, and atomically swaps in the new generation. Queries running
// concurrently keep using the old generation and never block.
//
// It returns ErrCompactionRunning if a compaction (manual or
// policy-triggered) is already in flight, and the build or context error
// if the rebuild fails — in which case the old generation stays
// published and the store is unchanged.
func (s *Store) Compact(ctx context.Context) (CompactionStats, error) {
	if !s.compacting.CompareAndSwap(false, true) {
		return s.Stats(), ErrCompactionRunning
	}
	err := func() error {
		// Release the latch before collecting the returned stats, so a
		// finished compaction reports InProgress == false.
		defer s.compacting.Store(false)
		return s.runCompact(ctx)
	}()
	return s.Stats(), err
}

// phaseTimings carries the per-phase measurements of one compaction
// from the off-lock phases into the locked swap, where they are folded
// into the store's stats.
type phaseTimings struct {
	copyDur   time.Duration
	buildDur  time.Duration
	reclaimed int64
}

// runCompact is the compaction body; the caller holds the compacting
// latch. Phase 1 (survivor copy + index rebuild) runs without any lock;
// phase 2 (state swap) briefly takes the writer mutex. When the context
// carries an obs.Trace, each phase records a span on it.
func (s *Store) runCompact(ctx context.Context) error {
	start := time.Now()
	tr := obs.TraceFromContext(ctx)
	g0 := s.Snapshot()
	if g0.dead.Len() == 0 && g0.mem.Len() == 0 {
		return nil // nothing to merge or drop
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// Phase 1 (off-lock): copy the survivors of the frozen snapshot g0
	// into a fresh dense collection and rebuild the main index over it.
	// Writers may keep appending and deleting concurrently; anything past
	// g0 is folded in during phase 2.
	var ph phaseTimings
	t0 := time.Now()
	survivors, ext, reclaimed := copySurvivors(g0, tr)
	ph.copyDur, ph.reclaimed = time.Since(t0), reclaimed

	newColl := &model.Collection{Objects: survivors, DictSize: g0.coll.DictSize}
	t1 := time.Now()
	base, err := s.buildBase(ctx, newColl, tr)
	ph.buildDur = time.Since(t1)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	s.swapCompacted(g0, newColl, base, ext, start, ph, tr)
	return nil
}

// copySurvivors is compaction phase 1a: the off-lock copy of g0's live
// objects into a fresh dense collection. It also estimates the bytes
// reclaimed by dropping the tombstoned objects.
func copySurvivors(g0 *Generation, tr *obs.Trace) (survivors []model.Object, ext []model.ObjectID, reclaimed int64) {
	defer tr.StartStage(obs.StageCompactCopy).End()
	n0 := len(g0.coll.Objects)
	survivors = make([]model.Object, 0, n0-g0.dead.Len())
	ext = make([]model.ObjectID, 0, n0-g0.dead.Len())
	for i := range g0.coll.Objects {
		id := model.ObjectID(i)
		if g0.dead.Has(id) {
			reclaimed += objectBytes(&g0.coll.Objects[i]) + tombstoneBytes
			continue
		}
		o := g0.coll.Objects[i]
		o.ID = model.ObjectID(len(survivors))
		survivors = append(survivors, o)
		ext = append(ext, g0.ext[i])
	}
	return survivors, ext, reclaimed
}

// buildBase is compaction phase 1b: the off-lock index rebuild. The
// rebuild is the expensive half of compaction, so cancellation is
// re-checked here — after the survivor copy — and the context is handed
// to the BuildFunc so cooperative builders can stop mid-build too.
func (s *Store) buildBase(ctx context.Context, c *model.Collection, tr *obs.Trace) (Index, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	defer tr.StartStage(obs.StageCompactBuild).End()
	return s.build(ctx, c)
}

// swapCompacted is compaction phase 2: under the writer mutex, fold in
// everything that happened after the g0 snapshot (appends become the new
// memtable, fresh tombstones are re-keyed onto the new dense ids), then
// install the new backing state and publish the new generation.
func (s *Store) swapCompacted(g0 *Generation, newColl *model.Collection, base Index, ext []model.ObjectID, start time.Time, ph phaseTimings, tr *obs.Trace) {
	defer tr.StartStage(obs.StageCompactSwap).End()
	swapStart := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.Snapshot()

	base0 := len(newColl.Objects)

	// Objects appended since the snapshot form the new memtable.
	tail := s.objects[len(g0.coll.Objects):]
	tailExt := s.ext[len(g0.coll.Objects):]
	var memBytes int64
	for i := range tail {
		o := tail[i]
		o.ID = model.ObjectID(len(newColl.Objects))
		newColl.Objects = append(newColl.Objects, o)
		ext = append(ext, tailExt[i])
		memBytes += objectBytes(&o)
	}
	newColl.DictSize = cur.coll.DictSize

	// Tombstones added since the snapshot survive compaction, re-keyed
	// from old internal ids to the new dense positions via external ids.
	dead := tombstones{}
	var carried []model.ObjectID
	for old := range cur.dead.ids { // lint:map-order-ok sink is a set (tombstone map); order-insensitive
		if g0.dead.Has(old) {
			continue // consumed: physically dropped in phase 1
		}
		e := cur.ext[old]
		if id, ok := internalOf(ext, e); ok {
			carried = append(carried, id)
		}
	}
	if len(carried) > 0 {
		dead = dead.withAll(carried...)
	}

	n := len(newColl.Objects)
	s.objects = newColl.Objects
	s.ext = ext
	s.compactLen = base0
	s.memBytes = memBytes
	s.compactions++
	s.last = lastCompaction{
		duration: time.Since(start),
		copyDur:  ph.copyDur,
		buildDur: ph.buildDur,
		swapDur:  time.Since(swapStart),
		dropped:  g0.dead.Len(),
		merged:   g0.mem.Len(),
	}
	s.totalDuration += s.last.duration
	s.totalDropped += uint64(s.last.dropped)
	s.totalMerged += uint64(s.last.merged)
	s.reclaimedBytes += ph.reclaimed
	s.publish(&Generation{
		epoch:      cur.epoch + 1,
		coll:       &model.Collection{Objects: newColl.Objects[:n:n], DictSize: newColl.DictSize},
		base:       base,
		compactLen: base0,
		mem:        Memtable{objs: newColl.Objects[base0:n:n], bytes: memBytes},
		dead:       dead,
		ext:        ext[:n:n],
		nextExt:    s.nextExt,
		scorer:     cur.scorer,
	})
}

// internalOf binary-searches a strictly ascending external-id table for
// e and returns its dense position.
func internalOf(ext []model.ObjectID, e model.ObjectID) (model.ObjectID, bool) {
	lo, hi := 0, len(ext)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ext[mid] < e {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(ext) || ext[lo] != e {
		return 0, false
	}
	return model.ObjectID(lo), true
}
