package maint

import "repro/internal/model"

// Memtable is the mutable side of the generational split, frozen into a
// snapshot: the objects inserted since the last compaction, in internal
// id order. It is a brute-force index — queries scan it linearly — which
// is the right trade for a structure that must absorb appends in O(1)
// and stays small because compaction regularly drains it.
//
// A Memtable value is immutable: the store publishes a fresh view (a
// longer prefix of the same backing array) with every append, so readers
// holding an older generation never observe new entries.
type Memtable struct {
	objs  []model.Object
	bytes int64
}

// Len returns the number of objects in the snapshot.
func (m Memtable) Len() int { return len(m.objs) }

// SizeBytes estimates the memtable's resident size.
func (m Memtable) SizeBytes() int64 { return m.bytes }
