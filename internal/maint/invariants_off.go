//go:build !invariants

package maint

// maintInvariantsEnabled reports whether generation well-formedness
// checks are compiled in (-tags invariants).
const maintInvariantsEnabled = false

// checkGeneration is a no-op in normal builds; see invariants_on.go.
func checkGeneration(*Generation) {}
