package maint

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/rank"
)

// Policy configures automatic background compaction. The zero value
// disables it; a policy triggers when either threshold is crossed.
type Policy struct {
	// MaxMemObjects triggers compaction once the memtable holds at least
	// this many objects. Zero disables the threshold.
	MaxMemObjects int
	// MaxDeadRatio triggers compaction once tombstones exceed this
	// fraction of all stored objects. Zero disables the threshold.
	MaxDeadRatio float64
}

func (p Policy) enabled() bool { return p.MaxMemObjects > 0 || p.MaxDeadRatio > 0 }

func (p Policy) triggered(g *Generation) bool {
	if p.MaxMemObjects > 0 && g.mem.Len() >= p.MaxMemObjects {
		return true
	}
	if p.MaxDeadRatio > 0 && len(g.coll.Objects) > 0 {
		if float64(g.dead.Len())/float64(len(g.coll.Objects)) >= p.MaxDeadRatio {
			return true
		}
	}
	return false
}

// lastCompaction records the outcome of the most recent compaction,
// including the per-phase breakdown (off-lock survivor copy, off-lock
// index rebuild, locked swap).
type lastCompaction struct {
	duration time.Duration
	copyDur  time.Duration
	buildDur time.Duration
	swapDur  time.Duration
	dropped  int
	merged   int
}

// Store owns the generational state: a mutable backing array of objects
// plus the published immutable Generation snapshot. Writers (Append,
// Delete, compaction's swap phase) serialize on mu; readers only load
// the atomic generation pointer and never block on mu.
//
// The backing slices are shared with published generations as prefix
// views: writers only ever append past the published length (or replace
// the whole slice under mu during compaction), so snapshot readers never
// observe a mutation.
type Store struct {
	mu sync.Mutex

	// gen is the published read snapshot. All loads and stores go through
	// Snapshot/publish so the access pattern stays auditable.
	// irlint:snapshot-via Snapshot,publish
	gen atomic.Pointer[Generation]

	// build rebuilds the configured index method during compaction.
	build BuildFunc

	// alloc, when non-nil, is the shared external-id sequence of a
	// sharded engine; Append draws from it instead of nextExt. The
	// allocator is internally atomic, but draws happen under mu so the
	// per-store ext table stays strictly ascending.
	alloc *IDAllocator

	// compacting is the single-flight latch for compaction; it is CASed
	// outside mu so manual Compact never blocks behind writers.
	compacting atomic.Bool

	// objects is the mutable backing array; published generations hold
	// prefix views of it. irlint:guarded-by mu
	objects []model.Object
	// ext is the internal→external id table, parallel to objects.
	// irlint:guarded-by mu
	ext []model.ObjectID
	// compactLen is the length of the compacted prefix covered by the
	// main index; objects beyond it form the memtable. irlint:guarded-by mu
	compactLen int
	// memBytes is the running size estimate of the memtable tail.
	// irlint:guarded-by mu
	memBytes int64
	// nextExt is the next external id to hand out. irlint:guarded-by mu
	nextExt model.ObjectID
	// policy is the auto-compaction policy. irlint:guarded-by mu
	policy Policy
	// compactions counts completed compactions. irlint:guarded-by mu
	compactions uint64
	// last records the most recent compaction outcome. irlint:guarded-by mu
	last lastCompaction
	// totalDuration accumulates wall time across all compactions.
	// irlint:guarded-by mu
	totalDuration time.Duration
	// totalDropped / totalMerged accumulate objects physically dropped
	// and memtable objects folded in across all compactions.
	// irlint:guarded-by mu
	totalDropped uint64
	totalMerged  uint64 // irlint:guarded-by mu
	// reclaimedBytes accumulates the estimated bytes freed by dropping
	// tombstoned objects (object payloads plus tombstone entries).
	// irlint:guarded-by mu
	reclaimedBytes int64
}

// IDAllocator hands out external object ids from a single monotonic
// sequence. Stores sharing one allocator (the shards of a sharded
// engine) assign globally unique, insertion-ordered ids, so a sharded
// corpus carries exactly the ids a single store over the same inserts
// would have handed out — the property the shard-vs-oracle differential
// relies on.
type IDAllocator struct {
	next atomic.Uint64
}

// NewIDAllocator returns an allocator whose next id is next.
func NewIDAllocator(next model.ObjectID) *IDAllocator {
	a := &IDAllocator{}
	a.next.Store(uint64(next))
	return a
}

// take returns the next id and advances the sequence.
func (a *IDAllocator) take() model.ObjectID {
	return model.ObjectID(a.next.Add(1) - 1)
}

// Next returns the id the next take would hand out.
func (a *IDAllocator) Next() model.ObjectID {
	return model.ObjectID(a.next.Load())
}

// NewStore wraps an already-built base index and its collection in a
// generational store. The store takes ownership of coll's object slice;
// external ids start out identical to the dense internal ids.
func NewStore(coll *model.Collection, base Index, build BuildFunc) *Store {
	n := len(coll.Objects)
	ext := make([]model.ObjectID, n)
	for i := range ext {
		ext[i] = model.ObjectID(i)
	}
	return NewStoreWithIdentity(coll, base, build, ext, model.ObjectID(n))
}

// NewStoreWithIdentity is NewStore with an explicit external-id table
// and next-id counter — the load half of identity-preserving
// persistence. ext must be strictly ascending, parallel to
// coll.Objects, with every entry below next; the store takes ownership
// of both slices. A store rebuilt this way hands out exactly the ids
// the saved store would have, so an engine that is saved, dropped and
// reloaded is indistinguishable to clients holding object ids.
func NewStoreWithIdentity(coll *model.Collection, base Index, build BuildFunc, ext []model.ObjectID, next model.ObjectID) *Store {
	return newStore(coll, base, build, ext, next, nil)
}

// NewStoreShared is NewStoreWithIdentity for one shard of a sharded
// engine: external ids come from the shared allocator instead of the
// store's own counter, so sibling stores never collide. ext must be a
// strictly ascending subsequence of the ids the allocator has already
// handed out.
func NewStoreShared(coll *model.Collection, base Index, build BuildFunc, ext []model.ObjectID, alloc *IDAllocator) *Store {
	if alloc == nil {
		panic("maint: NewStoreShared needs an allocator") // lint:panic-ok construction-time programming error
	}
	return newStore(coll, base, build, ext, alloc.Next(), alloc)
}

func newStore(coll *model.Collection, base Index, build BuildFunc, ext []model.ObjectID, next model.ObjectID, alloc *IDAllocator) *Store {
	n := len(coll.Objects)
	if len(ext) != n {
		panic("maint: identity table length mismatch") // lint:panic-ok construction-time programming error
	}
	for i := 1; i < n; i++ {
		if ext[i] <= ext[i-1] {
			panic("maint: identity table not strictly ascending") // lint:panic-ok construction-time programming error
		}
	}
	if n > 0 && ext[n-1] >= next {
		panic("maint: next external id not past the identity table") // lint:panic-ok construction-time programming error
	}
	s := &Store{
		build:      build,
		alloc:      alloc,
		objects:    coll.Objects,
		ext:        ext,
		compactLen: n,
		nextExt:    next,
	}
	s.publish(&Generation{
		epoch:      1,
		coll:       &model.Collection{Objects: coll.Objects[:n:n], DictSize: coll.DictSize},
		base:       base,
		compactLen: n,
		ext:        ext[:n:n],
		nextExt:    next,
	})
	return s
}

// Snapshot returns the current immutable read generation. This is the
// only sanctioned read access to the atomic generation pointer.
func (s *Store) Snapshot() *Generation { return s.gen.Load() }

// publish validates (under -tags invariants) and installs a new
// generation. This is the only sanctioned write access to the pointer.
func (s *Store) publish(g *Generation) {
	checkGeneration(g)
	s.gen.Store(g)
}

// Append inserts one object into the memtable and publishes a new
// generation. It returns the stable external id assigned to the object.
// dictSize is the caller's current dictionary size, folded into the
// published collection so term ids stay in range.
func (s *Store) Append(iv model.Interval, elems []model.ElemID, dictSize int) model.ObjectID {
	s.mu.Lock()
	internal := model.ObjectID(len(s.objects))
	var extID model.ObjectID
	if s.alloc != nil {
		extID = s.alloc.take()
		s.nextExt = extID + 1
	} else {
		extID = s.nextExt
		s.nextExt++
	}
	o := model.Object{ID: internal, Interval: iv, Elems: elems}
	s.objects = append(s.objects, o)
	s.ext = append(s.ext, extID)
	s.memBytes += objectBytes(&o)

	cur := s.Snapshot()
	g := cur.next()
	n := len(s.objects)
	ds := cur.coll.DictSize
	if dictSize > ds {
		ds = dictSize
	}
	g.coll = &model.Collection{Objects: s.objects[:n:n], DictSize: ds}
	g.ext = s.ext[:n:n]
	g.nextExt = s.nextExt
	g.mem = Memtable{objs: s.objects[s.compactLen:n:n], bytes: s.memBytes}
	s.publish(g)
	auto := s.policy.enabled() && s.policy.triggered(g)
	s.mu.Unlock()

	if auto {
		s.tryBackgroundCompact()
	}
	return extID
}

// Delete tombstones the object with the given stable external id. It
// reports false if the id is unknown or already deleted.
func (s *Store) Delete(ext model.ObjectID) bool {
	ok, auto := s.deleteOne(ext)
	if auto {
		s.tryBackgroundCompact()
	}
	return ok
}

// deleteOne publishes the tombstone under the writer lock and reports
// whether the delete took effect and whether it tripped the policy.
func (s *Store) deleteOne(ext model.ObjectID) (ok, auto bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.Snapshot()
	id, found := cur.Internal(ext)
	if !found || cur.dead.Has(id) {
		return false, false
	}
	g := cur.next()
	g.dead = cur.dead.withAll(id)
	s.publish(g)
	return true, s.policy.enabled() && s.policy.triggered(g)
}

// SetScorer publishes a new generation carrying the given scorer
// snapshot (which may be nil to drop it).
func (s *Store) SetScorer(sc *rank.Scorer) {
	s.mu.Lock()
	g := s.Snapshot().next()
	g.scorer = sc
	s.publish(g)
	s.mu.Unlock()
}

// SetPolicy installs (or, with the zero Policy, disables) automatic
// background compaction.
func (s *Store) SetPolicy(p Policy) {
	s.mu.Lock()
	s.policy = p
	g := s.Snapshot()
	auto := p.enabled() && p.triggered(g)
	s.mu.Unlock()

	if auto {
		s.tryBackgroundCompact()
	}
}

// tryBackgroundCompact starts one background compaction if none is in
// flight. Errors are swallowed: a failed background pass leaves the old
// generation intact and a later trigger retries.
func (s *Store) tryBackgroundCompact() {
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	// irlint:goroutine-exits single-flight: runCompact always returns (no unbounded waits) and the deferred CAS-reset reopens the gate; process exit is the only abandonment
	go func() {
		defer s.compacting.Store(false)
		// irlint:ctx-root background compaction outlives the Append that triggered it; the cancelable path is the foreground Compact(ctx)
		_ = s.runCompact(context.Background())
	}()
}

// CompactionStats describes the store's generational state and
// compaction history.
type CompactionStats struct {
	Epoch        uint64        `json:"epoch"`
	Compactions  uint64        `json:"compactions"`
	InProgress   bool          `json:"in_progress"`
	BaseObjects  int           `json:"base_objects"`
	MemObjects   int           `json:"memtable_objects"`
	MemBytes     int64         `json:"memtable_bytes"`
	Tombstones   int           `json:"tombstones"`
	DeadRatio    float64       `json:"dead_ratio"`
	LastDuration time.Duration `json:"last_duration_ns"`
	LastDropped  int           `json:"last_dropped"`
	LastMerged   int           `json:"last_merged"`
	// Per-phase breakdown of the most recent compaction.
	LastCopy  time.Duration `json:"last_copy_ns"`
	LastBuild time.Duration `json:"last_build_ns"`
	LastSwap  time.Duration `json:"last_swap_ns"`
	// Cumulative totals across all compactions (monotonic, suitable for
	// Prometheus counters).
	TotalDuration  time.Duration `json:"total_duration_ns"`
	TotalDropped   uint64        `json:"total_dropped"`
	TotalMerged    uint64        `json:"total_merged"`
	ReclaimedBytes int64         `json:"reclaimed_bytes"`
}

// Stats returns a consistent snapshot of the store's compaction state.
func (s *Store) Stats() CompactionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked(s.Snapshot())
}

// statsLocked assembles stats for the given generation.
// irlint:locked mu
func (s *Store) statsLocked(g *Generation) CompactionStats {
	st := CompactionStats{
		Epoch:        g.epoch,
		Compactions:  s.compactions,
		InProgress:   s.compacting.Load(),
		BaseObjects:  g.compactLen,
		MemObjects:   g.mem.Len(),
		MemBytes:     g.mem.SizeBytes(),
		Tombstones:   g.dead.Len(),
		LastDuration: s.last.duration,
		LastDropped:  s.last.dropped,
		LastMerged:   s.last.merged,
		LastCopy:     s.last.copyDur,
		LastBuild:    s.last.buildDur,
		LastSwap:     s.last.swapDur,

		TotalDuration:  s.totalDuration,
		TotalDropped:   s.totalDropped,
		TotalMerged:    s.totalMerged,
		ReclaimedBytes: s.reclaimedBytes,
	}
	if n := len(g.coll.Objects); n > 0 {
		st.DeadRatio = float64(g.dead.Len()) / float64(n)
	}
	return st
}
