package bruteforce

import (
	"testing"

	"repro/internal/model"
)

func buildCollection() *model.Collection {
	var c model.Collection
	// Mirrors the paper's running example (Figure 1), with the time axis
	// mapped to integers 0..15 and elements a=0, b=1, c=2.
	c.AppendObject(model.Interval{Start: 10, End: 15}, []model.ElemID{0, 1, 2}) // o1
	c.AppendObject(model.Interval{Start: 2, End: 5}, []model.ElemID{0, 2})      // o2
	c.AppendObject(model.Interval{Start: 0, End: 2}, []model.ElemID{1})         // o3
	c.AppendObject(model.Interval{Start: 0, End: 15}, []model.ElemID{0, 1, 2})  // o4
	c.AppendObject(model.Interval{Start: 3, End: 7}, []model.ElemID{1, 2})      // o5
	c.AppendObject(model.Interval{Start: 2, End: 11}, []model.ElemID{2})        // o6
	c.AppendObject(model.Interval{Start: 4, End: 14}, []model.ElemID{0, 2})     // o7
	c.AppendObject(model.Interval{Start: 2, End: 3}, []model.ElemID{2})         // o8
	return &c
}

func TestRunningExample(t *testing.T) {
	// Query interval ≈ the red shaded area, elements {a, c}. Expected
	// answers per Example 2.2: o2, o4, o7 (ids 1, 3, 6 zero-based).
	ix := New(buildCollection())
	got := ix.Query(model.Query{Interval: model.Interval{Start: 4, End: 6}, Elems: []model.ElemID{0, 2}})
	want := []model.ObjectID{1, 3, 6}
	if !model.EqualIDs(got, want) {
		t.Errorf("running example: got %v, want %v", got, want)
	}
}

func TestEmptyElementsMatchesAllOverlapping(t *testing.T) {
	ix := New(buildCollection())
	got := ix.Query(model.Query{Interval: model.Interval{Start: 0, End: 0}})
	want := []model.ObjectID{2, 3} // o3 and o4 cover t=0
	if !model.EqualIDs(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestInsertDelete(t *testing.T) {
	c := buildCollection()
	ix := New(c)
	q := model.Query{Interval: model.Interval{Start: 4, End: 6}, Elems: []model.ElemID{0, 2}}

	ix.Insert(model.Object{ID: 8, Interval: model.Interval{Start: 5, End: 5}, Elems: []model.ElemID{0, 2}})
	got := ix.Query(q)
	want := []model.ObjectID{1, 3, 6, 8}
	if !model.EqualIDs(got, want) {
		t.Errorf("after insert: got %v, want %v", got, want)
	}

	ix.Delete(3)
	got = ix.Query(q)
	want = []model.ObjectID{1, 6, 8}
	if !model.EqualIDs(got, want) {
		t.Errorf("after delete: got %v, want %v", got, want)
	}
	if ix.Len() != 8 {
		t.Errorf("Len = %d, want 8", ix.Len())
	}
}
