// Package bruteforce implements a naive full-scan evaluator for time-travel
// IR queries. It is the correctness oracle every index in the repository is
// tested against, and doubles as the "no index" baseline in ablations.
package bruteforce

import (
	"repro/internal/model"
)

// Index evaluates queries by scanning the whole collection. Deleted objects
// are tracked with a tombstone set, mirroring the logical deletions of the
// real indices.
type Index struct {
	objects []model.Object
	deleted map[model.ObjectID]bool
}

// New builds the scan "index" over a collection. The collection's objects
// are referenced, not copied.
func New(c *model.Collection) *Index {
	return &Index{objects: c.Objects, deleted: make(map[model.ObjectID]bool)}
}

// Query returns the ids of all live objects matching q, in ascending order.
func (ix *Index) Query(q model.Query) []model.ObjectID {
	var out []model.ObjectID
	for i := range ix.objects {
		o := &ix.objects[i]
		if ix.deleted[o.ID] {
			continue
		}
		if q.Matches(o) {
			out = append(out, o.ID)
		}
	}
	return out
}

// Insert appends an object. The object's ID must be unique.
func (ix *Index) Insert(o model.Object) {
	ix.objects = append(ix.objects, o)
}

// Delete tombstones an object id.
func (ix *Index) Delete(id model.ObjectID) {
	ix.deleted[id] = true
}

// Len returns the number of live objects.
func (ix *Index) Len() int {
	return len(ix.objects) - len(ix.deleted)
}
