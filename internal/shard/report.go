package shard

// Report describes how the scatter-gather coordinator executed one
// query: how many shards the planner selected, how many the extent
// pruner skipped, and which planned shards were cut by the per-shard
// deadline. The partial-result contract: a result either carries every
// planned shard's contribution (Cut empty) or names the shards whose
// contribution is missing — a cut shard is never silently dropped.
type Report struct {
	// Planned is the number of shards the planner fanned out to.
	Planned int `json:"planned"`
	// Pruned is the number of shards skipped because their observed
	// time extent cannot overlap the query interval. Pruning is
	// conservative (extents only ever grow), so a pruned shard cannot
	// hold a match.
	Pruned int `json:"pruned"`
	// Cut lists the shard indexes (ascending) whose per-shard deadline
	// fired before they answered. Their contribution is missing from
	// the merged result.
	Cut []int `json:"cut,omitempty"`
}

// Partial reports whether any planned shard was cut.
func (r Report) Partial() bool { return len(r.Cut) > 0 }

// Complete reports whether every planned shard contributed.
func (r Report) Complete() bool { return len(r.Cut) == 0 }
