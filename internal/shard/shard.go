// Package shard holds the pure partitioning and merging machinery of
// the sharded engine: the shard map that assigns objects to shards
// (time-range by default, content hash for unbounded streams), the
// k-way result mergers the scatter-gather coordinator uses, and the
// partial-result report type. Everything here is deterministic and
// side-effect free — the coordinator (temporalir.Sharded) owns the
// stores, pools and deadlines.
package shard

import (
	"fmt"

	"repro/internal/model"
)

// Kind selects how the map assigns objects to shards.
type Kind uint8

const (
	// TimeRange partitions by interval start time: the bounded time
	// domain is cut into N contiguous slots, so each shard's domain
	// discretization stays tight for its range and extent-based query
	// pruning can skip shards a query interval cannot reach.
	TimeRange Kind = iota
	// Hash partitions by a content hash of the object (interval plus
	// elements) — the fallback for unbounded streams where no time
	// bounds are known up front. Load balances; no range pruning from
	// the map itself (the coordinator's observed extents still prune).
	Hash
)

// String returns the stable lowercase kind label used in stats.
func (k Kind) String() string {
	switch k {
	case TimeRange:
		return "time-range"
	case Hash:
		return "hash"
	default:
		return "unknown"
	}
}

// Map deterministically assigns objects to one of N shards. The zero
// value is not usable; construct with NewTimeRange or NewHash. A Map is
// immutable and safe for concurrent use.
type Map struct {
	kind  Kind
	n     int
	lo    model.Timestamp
	hi    model.Timestamp
	width int64 // per-shard start-time slot width (TimeRange), >= 1
}

// NewTimeRange returns a map cutting the start-time domain [lo, hi]
// into n contiguous slots. Starts outside the bounds clamp to the edge
// shards, so the map stays total over late-arriving data.
func NewTimeRange(n int, lo, hi model.Timestamp) (Map, error) {
	if n < 1 {
		return Map{}, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	if lo > hi {
		return Map{}, fmt.Errorf("shard: invalid time bounds [%d, %d]", lo, hi)
	}
	width := (int64(hi-lo) + int64(n)) / int64(n) // ceil((hi-lo+1)/n)
	if width < 1 {
		width = 1
	}
	return Map{kind: TimeRange, n: n, lo: lo, hi: hi, width: width}, nil
}

// NewHash returns a content-hash map over n shards.
func NewHash(n int) (Map, error) {
	if n < 1 {
		return Map{}, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	return Map{kind: Hash, n: n}, nil
}

// Kind returns the partitioning strategy.
func (m Map) Kind() Kind { return m.kind }

// N returns the shard count.
func (m Map) N() int { return m.n }

// Bounds returns the time-range domain, or (0, 0) for a hash map.
func (m Map) Bounds() (lo, hi model.Timestamp) { return m.lo, m.hi }

// Route returns the shard index for an object. Deterministic: the same
// (interval, elems) always routes to the same shard, so a rebuilt or
// reloaded corpus partitions identically.
func (m Map) Route(iv model.Interval, elems []model.ElemID) int {
	switch m.kind {
	case TimeRange:
		start := iv.Start
		if start < m.lo {
			start = m.lo
		}
		if start > m.hi {
			start = m.hi
		}
		idx := int(int64(start-m.lo) / m.width)
		if idx >= m.n {
			idx = m.n - 1
		}
		return idx
	default:
		return int(m.hash(iv, elems) % uint64(m.n))
	}
}

// RangeOf returns the start-time slot of shard i (TimeRange maps only;
// ok=false otherwise). The first and last shards additionally absorb
// out-of-bounds starts, and objects may END far past their slot — use
// observed extents, not slots, for query pruning.
func (m Map) RangeOf(i int) (model.Interval, bool) {
	if m.kind != TimeRange || i < 0 || i >= m.n {
		return model.Interval{}, false
	}
	lo := m.lo + model.Timestamp(int64(i)*m.width)
	hi := lo + model.Timestamp(m.width) - 1
	if i == m.n-1 || hi > m.hi {
		hi = m.hi
	}
	if lo > hi {
		lo = hi
	}
	return model.NewInterval(lo, hi), true
}

// FNV-1a constants (hash/fnv's New64a allocates; inlining the mix keeps
// the insert path allocation-free).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hash mixes the object's content — interval endpoints and element ids
// — through FNV-1a.
func (m Map) hash(iv model.Interval, elems []model.ElemID) uint64 {
	h := uint64(fnvOffset64)
	h = fnvMix64(h, uint64(iv.Start))
	h = fnvMix64(h, uint64(iv.End))
	for _, e := range elems {
		h = fnvMix64(h, uint64(e))
	}
	return h
}

// fnvMix64 folds one 64-bit value into an FNV-1a state byte by byte.
func fnvMix64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}
