package shard

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

func TestNewTimeRangeValidation(t *testing.T) {
	if _, err := NewTimeRange(0, 0, 10); err == nil {
		t.Fatal("want error for 0 shards")
	}
	if _, err := NewTimeRange(4, 10, 0); err == nil {
		t.Fatal("want error for inverted bounds")
	}
	if _, err := NewHash(0); err == nil {
		t.Fatal("want error for 0 hash shards")
	}
}

func TestTimeRangeRouting(t *testing.T) {
	m, err := NewTimeRange(4, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	// Every start routes in range, monotonically with start time.
	prev := 0
	for s := model.Timestamp(-10); s <= 110; s++ {
		idx := m.Route(model.NewInterval(s, s+5), nil)
		if idx < 0 || idx >= 4 {
			t.Fatalf("start %d routed out of range: %d", s, idx)
		}
		if idx < prev {
			t.Fatalf("routing not monotone in start time: %d then %d", prev, idx)
		}
		prev = idx
	}
	// Out-of-bounds starts clamp to the edge shards.
	if got := m.Route(model.NewInterval(-1000, -900), nil); got != 0 {
		t.Fatalf("early start routed to %d, want 0", got)
	}
	if got := m.Route(model.NewInterval(1000, 1100), nil); got != 3 {
		t.Fatalf("late start routed to %d, want 3", got)
	}
}

func TestRangeOfCoversDomain(t *testing.T) {
	m, err := NewTimeRange(4, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	// The slots tile [0, 99] and every start lands in its slot.
	next := model.Timestamp(0)
	for i := 0; i < m.N(); i++ {
		r, ok := m.RangeOf(i)
		if !ok {
			t.Fatalf("RangeOf(%d) not ok", i)
		}
		if r.Start != next {
			t.Fatalf("shard %d starts at %d, want %d", i, r.Start, next)
		}
		next = r.End + 1
	}
	if next != 100 {
		t.Fatalf("slots end at %d, want 100", next)
	}
	for s := model.Timestamp(0); s <= 99; s++ {
		idx := m.Route(model.NewInterval(s, s), nil)
		r, _ := m.RangeOf(idx)
		if !r.Contains(s) {
			t.Fatalf("start %d routed to shard %d whose slot %v misses it", s, idx, r)
		}
	}
	if _, ok := m.RangeOf(4); ok {
		t.Fatal("RangeOf past the shard count should not be ok")
	}
	h, _ := NewHash(4)
	if _, ok := h.RangeOf(0); ok {
		t.Fatal("hash maps have no slot ranges")
	}
}

func TestHashRoutingDeterministicAndSpread(t *testing.T) {
	m, err := NewHash(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	counts := make([]int, 8)
	for i := 0; i < 4000; i++ {
		st := model.Timestamp(rng.Int63n(1 << 40))
		iv := model.NewInterval(st, st+model.Timestamp(rng.Int63n(1000)))
		elems := []model.ElemID{model.ElemID(rng.Intn(100)), model.ElemID(100 + rng.Intn(100))}
		a := m.Route(iv, elems)
		b := m.Route(iv, elems)
		if a != b {
			t.Fatalf("hash routing not deterministic: %d vs %d", a, b)
		}
		if a < 0 || a >= 8 {
			t.Fatalf("hash routed out of range: %d", a)
		}
		counts[a]++
	}
	// A grossly unbalanced hash would defeat the fallback's purpose.
	for i, c := range counts {
		if c < 4000/8/4 {
			t.Fatalf("shard %d badly underloaded: %d of 4000", i, c)
		}
	}
}

func TestReport(t *testing.T) {
	r := Report{Planned: 4}
	if !r.Complete() || r.Partial() {
		t.Fatal("report with no cuts must be complete")
	}
	r.Cut = []int{2}
	if r.Complete() || !r.Partial() {
		t.Fatal("report with cuts must be partial")
	}
}
