package shard

import (
	"repro/internal/aggregate"
	"repro/internal/model"
	"repro/internal/rank"
)

// MergeAscending k-way merges per-shard id lists, each ascending, into
// one ascending list. Shards partition the corpus, so the inputs are
// disjoint and no dedup is needed; merging shard lists of globally
// allocated ids therefore reproduces the single-engine result order
// exactly. The shard count is small, so the linear min-scan beats a
// heap.
func MergeAscending(lists [][]model.ObjectID) []model.ObjectID {
	total, live := 0, 0
	lastNonEmpty := -1
	for i, l := range lists {
		total += len(l)
		if len(l) > 0 {
			live++
			lastNonEmpty = i
		}
	}
	if total == 0 {
		return nil
	}
	if live == 1 {
		return append([]model.ObjectID(nil), lists[lastNonEmpty]...)
	}
	out := make([]model.ObjectID, 0, total)
	heads := make([]int, len(lists))
	for len(out) < total {
		best := -1
		for i, l := range lists {
			if heads[i] >= len(l) {
				continue
			}
			if best < 0 || l[heads[i]] < lists[best][heads[best]] {
				best = i
			}
		}
		out = append(out, lists[best][heads[best]])
		heads[best]++
	}
	return out
}

// MergeTopK merges per-shard ranked lists — each already ordered by
// (score desc, id asc), carrying externally-translated ids — and keeps
// the global top k under the same order. Every member of the global top
// k is necessarily inside its own shard's local top k (it outranks all
// but at most k-1 results anywhere), so merging local top-k lists loses
// nothing.
func MergeTopK(lists [][]rank.Result, k int) []rank.Result {
	if k <= 0 {
		return nil
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	out := make([]rank.Result, 0, k)
	heads := make([]int, len(lists))
	for len(out) < k && len(out) < total {
		best := -1
		for i, l := range lists {
			if heads[i] >= len(l) {
				continue
			}
			if best < 0 || better(l[heads[i]], lists[best][heads[best]]) {
				best = i
			}
		}
		out = append(out, lists[best][heads[best]])
		heads[best]++
	}
	return out
}

// better reports whether ranked result a precedes b: higher score, or
// equal score with the smaller id — the exact order rank.TopK emits.
func better(a, b rank.Result) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// MergeHistograms sums per-shard timeline histograms bucket by bucket.
// Every input shares the same bucket layout (aggregate.Layout depends
// only on the query interval and bucket count), so the merge is a
// pairwise Count/Mass sum. Inputs may be nil (a shard with a degenerate
// sub-result); the first non-nil input supplies the layout.
func MergeHistograms(hists [][]aggregate.Bucket) []aggregate.Bucket {
	var out []aggregate.Bucket
	for _, h := range hists {
		if h == nil {
			continue
		}
		if out == nil {
			out = append([]aggregate.Bucket(nil), h...)
			continue
		}
		for i := range h {
			if i < len(out) {
				out[i].Count += h[i].Count
				out[i].Mass += h[i].Mass
			}
		}
	}
	return out
}
