package shard

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/aggregate"
	"repro/internal/model"
	"repro/internal/rank"
)

func TestMergeAscendingAgainstSortOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		nLists := 1 + rng.Intn(6)
		used := map[model.ObjectID]bool{}
		lists := make([][]model.ObjectID, nLists)
		var all []model.ObjectID
		for i := range lists {
			n := rng.Intn(20)
			for j := 0; j < n; j++ {
				id := model.ObjectID(rng.Intn(500))
				if used[id] {
					continue // shard lists are disjoint
				}
				used[id] = true
				lists[i] = append(lists[i], id)
				all = append(all, id)
			}
			sort.Slice(lists[i], func(a, b int) bool { return lists[i][a] < lists[i][b] })
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		got := MergeAscending(lists)
		if len(all) == 0 {
			if got != nil {
				t.Fatalf("trial %d: want nil for empty merge, got %v", trial, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, all) {
			t.Fatalf("trial %d: merge mismatch\n got %v\nwant %v", trial, got, all)
		}
	}
}

func TestMergeTopKAgainstSortOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rankLess := func(a, b rank.Result) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.ID < b.ID
	}
	for trial := 0; trial < 50; trial++ {
		nLists := 1 + rng.Intn(5)
		k := 1 + rng.Intn(10)
		lists := make([][]rank.Result, nLists)
		var all []rank.Result
		id := model.ObjectID(0)
		for i := range lists {
			n := rng.Intn(15)
			for j := 0; j < n; j++ {
				// Coarse scores force score ties across shards.
				r := rank.Result{ID: id, Score: float64(rng.Intn(4))}
				id++
				lists[i] = append(lists[i], r)
				all = append(all, r)
			}
			sort.SliceStable(lists[i], func(a, b int) bool { return rankLess(lists[i][a], lists[i][b]) })
			// A shard only reports its local top k.
			if len(lists[i]) > k {
				lists[i] = lists[i][:k]
			}
		}
		sort.SliceStable(all, func(a, b int) bool { return rankLess(all[a], all[b]) })
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := MergeTopK(lists, k)
		if len(want) == 0 {
			if got != nil {
				t.Fatalf("trial %d: want nil, got %v", trial, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (k=%d): top-k merge mismatch\n got %v\nwant %v", trial, k, got, want)
		}
	}
	if MergeTopK([][]rank.Result{{{ID: 1, Score: 1}}}, 0) != nil {
		t.Fatal("k=0 must merge to nil")
	}
}

func TestMergeHistograms(t *testing.T) {
	q := model.Query{Interval: model.NewInterval(0, 99)}
	layout := aggregate.Layout(q, 4)
	a := append([]aggregate.Bucket(nil), layout...)
	b := append([]aggregate.Bucket(nil), layout...)
	for i := range a {
		a[i].Count, a[i].Mass = i, int64(10*i)
		b[i].Count, b[i].Mass = 1, 5
	}
	got := MergeHistograms([][]aggregate.Bucket{a, nil, b})
	if len(got) != 4 {
		t.Fatalf("merged %d buckets, want 4", len(got))
	}
	for i := range got {
		if got[i].Span != layout[i].Span {
			t.Fatalf("bucket %d span changed: %v vs %v", i, got[i].Span, layout[i].Span)
		}
		if got[i].Count != i+1 || got[i].Mass != int64(10*i)+5 {
			t.Fatalf("bucket %d sum wrong: count %d mass %d", i, got[i].Count, got[i].Mass)
		}
	}
	if MergeHistograms([][]aggregate.Bucket{nil, nil}) != nil {
		t.Fatal("all-nil merge must stay nil")
	}
}
