package irlint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/tools/irlint/flow"
)

// freezeDirective suppresses a publish-freeze finding for a write that is
// provably safe (e.g. a field never read by snapshot holders, or a
// single-goroutine setup phase before the value escapes).
const freezeDirective = "lint:freeze-ok"

// AnalyzerPublishFreeze enforces the freeze half of the epoch-snapshot
// contract from PR 4: once a value is published through an
// atomic.Pointer/Value Store (directly, or via a helper like
// maint.Store.publish whose summary says it publishes), readers hold it
// without locks — so no later statement in the publishing function may
// write to memory reachable from that value. The existing snapshot-via
// analyzer checks WHO may load and store the pointer; this one checks
// WHAT happens to the pointee after the store.
//
// Post-publish is positional (statements after the publishing call in
// the same function body) and reachability is the base-identifier alias
// over-approximation from the flow package: a write through any variable
// aliasing the published value's base flags, including writes performed
// by callees whose summaries mutate the passed argument.
func AnalyzerPublishFreeze() *Analyzer {
	const name = "publish-freeze"
	return &Analyzer{
		Name: name,
		Doc:  "after atomic Store/publish of a value, no write to memory reachable from it in the publishing function",
		RunProgram: func(pr *Program) []Diagnostic {
			var out []Diagnostic
			g := pr.Graph()
			sums := g.Summaries()
			for _, fn := range g.Funcs() {
				p := pr.PackageOf(fn)
				if p == nil || p.Info == nil {
					continue
				}
				f := p.fileOf(fn.Decl.Pos())
				for _, c := range fn.Calls {
					pubExpr := publishedExpr(p.Info, g, sums, c)
					if pubExpr == nil {
						continue
					}
					pubVar := flow.BaseVar(p.Info, pubExpr)
					if pubVar == nil {
						continue // publishing a fresh expression: nothing to alias
					}
					aliases := fn.AliasedVars(pubVar)
					for _, w := range postPublishWrites(p.Info, sums, fn, c.Site, aliases) {
						if p.allowed(f, w.pos, freezeDirective) {
							continue
						}
						out = append(out, p.diag(name, w.pos,
							"write to %q after it was published at line %d: snapshot readers hold the value lock-free, so post-publish writes race; build fully before publishing (or annotate with // %s <reason>)",
							w.what, p.Fset.Position(c.Site.Pos()).Line, freezeDirective))
					}
				}
			}
			return out
		},
	}
}

// publishedExpr returns the expression published by this call site: the
// argument of an atomic Pointer/Value Store/Swap/CompareAndSwap, or the
// argument flowing into an in-program callee input whose summary
// publishes.
func publishedExpr(info *types.Info, g *flow.Graph, sums *flow.Summaries, c *flow.Call) ast.Expr {
	if arg := flow.AtomicStoreValue(info, c.Site, c.Callee); arg != nil {
		return arg
	}
	if c.Callee == nil || g.FuncOf(c.Callee) == nil {
		return nil
	}
	for _, ai := range flow.ArgInputs(info, c.Site, c.Callee) {
		if sums.Input(c.Callee, ai.Input).Publishes {
			return ai.Expr
		}
	}
	return nil
}

// pfWrite is one post-publish write: its position and a short rendering
// of what was written.
type pfWrite struct {
	pos  token.Pos
	what string
}

// postPublishWrites scans the function body for writes, after the
// publishing call, through any alias of the published value.
func postPublishWrites(info *types.Info, sums *flow.Summaries, fn *flow.Func, pub *ast.CallExpr, aliases map[*types.Var]bool) []pfWrite {
	var out []pfWrite
	hits := func(e ast.Expr) bool {
		v := flow.BaseVar(info, e)
		return v != nil && aliases[v]
	}
	after := func(pos token.Pos) bool { return pos > pub.End() }
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if !after(st.Pos()) {
				return true
			}
			for _, lhs := range st.Lhs {
				if flow.WritesThrough(lhs) && hits(lhs) {
					out = append(out, pfWrite{lhs.Pos(), renderExpr(lhs)})
				}
			}
			for _, rhs := range st.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok && flow.IsBuiltin(info, call, "append") && len(call.Args) > 0 && hits(call.Args[0]) {
					out = append(out, pfWrite{call.Pos(), renderExpr(call.Args[0])})
				}
			}
		case *ast.IncDecStmt:
			if after(st.Pos()) && flow.WritesThrough(st.X) && hits(st.X) {
				out = append(out, pfWrite{st.Pos(), renderExpr(st.X)})
			}
		case *ast.CallExpr:
			if !after(st.Pos()) || st == pub {
				return true
			}
			if flow.IsBuiltin(info, st, "copy") && len(st.Args) > 0 && hits(st.Args[0]) {
				out = append(out, pfWrite{st.Pos(), renderExpr(st.Args[0])})
				return true
			}
			callee := flow.Callee(info, st)
			if callee == nil {
				return true
			}
			for _, ai := range flow.ArgInputs(info, st, callee) {
				if sums.Input(callee, ai.Input).Mutates && hits(ai.Expr) {
					out = append(out, pfWrite{st.Pos(), callee.Name() + "(" + renderExpr(ai.Expr) + ")"})
				}
			}
		}
		return true
	})
	return out
}

// renderExpr prints simple expressions (idents, selectors, indexes);
// anything more complex falls back to a placeholder.
func renderExpr(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return renderExpr(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + renderExpr(x.X)
	case *ast.IndexExpr:
		return renderExpr(x.X) + "[...]"
	case *ast.ParenExpr:
		return renderExpr(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return "&" + renderExpr(x.X)
		}
	case *ast.CallExpr:
		return renderExpr(x.Fun) + "(...)"
	}
	return "value"
}
