package irlint

import (
	"go/ast"
)

// docPackages are the packages forming the public surface: the root
// library package and the shared data model every index builds on.
var docPackages = map[string]bool{
	".":              true,
	"internal/model": true,
}

// AnalyzerDocExported requires a doc comment on every exported top-level
// identifier (types, functions, methods, vars, consts) in the root
// package and internal/model — the surface users and the other 20+
// internal packages program against.
func AnalyzerDocExported() *Analyzer {
	const name = "doc-exported"
	return &Analyzer{
		Name: name,
		Doc:  "exported identifiers in the root package and internal/model carry doc comments",
		Run: func(p *Package) []Diagnostic {
			if !docPackages[relPath(p.Path)] {
				return nil
			}
			var out []Diagnostic
			for _, f := range p.Files {
				for _, decl := range f.Decls {
					switch d := decl.(type) {
					case *ast.FuncDecl:
						if d.Name.IsExported() && d.Doc == nil {
							out = append(out, p.diag(name, d.Name.Pos(),
								"exported %s %s has no doc comment", funcKind(d), d.Name.Name))
						}
					case *ast.GenDecl:
						out = append(out, p.checkGenDecl(name, d)...)
					}
				}
			}
			return out
		},
	}
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// checkGenDecl flags exported specs lacking both a spec-level and a
// decl-level doc comment. A grouped decl's doc covers its specs only when
// the group declares a single spec; grouped consts/vars need per-spec
// docs or a decl doc (the usual Go convention for enum blocks).
func (p *Package) checkGenDecl(name string, d *ast.GenDecl) []Diagnostic {
	var out []Diagnostic
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
				out = append(out, p.diag(name, s.Name.Pos(),
					"exported type %s has no doc comment", s.Name.Name))
			}
		case *ast.ValueSpec:
			if s.Doc != nil || d.Doc != nil {
				continue
			}
			for _, id := range s.Names {
				if id.IsExported() {
					out = append(out, p.diag(name, id.Pos(),
						"exported %s has no doc comment", id.Name))
				}
			}
		}
	}
	return out
}
