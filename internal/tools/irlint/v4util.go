package irlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/tools/irlint/flow"
)

// The v4 (performance-contract) analyzers share this vocabulary, all of
// it placed on the flagged line or the line directly above:
//
//   - irlint:hot <reason> / irlint:cold <reason> on function
//     declarations define the hot set (see internal/tools/irlint/perf);
//   - irlint:hot-iface <reason> on an interface type declaration blesses
//     dynamic dispatch through it inside hot loops;
//   - lint:alloc-ok / lint:append-ok / lint:defer-ok / lint:iface-ok
//     <reason> suppress one finding at one site, reason required.

const (
	hotIfaceDirective = "irlint:hot-iface"
	allocOKDirective  = "lint:alloc-ok"
	appendOKDirective = "lint:append-ok"
	deferOKDirective  = "lint:defer-ok"
	ifaceOKDirective  = "lint:iface-ok"
)

// forEachHot invokes visit for every hot function declared in a loaded
// package, paired with its package and containing file. It is a no-op
// when no irlint:hot root exists, so programs without perf annotations
// (fixtures, the linter's own tree) never pay for graph joins.
func (pr *Program) forEachHot(visit func(p *Package, f *ast.File, fn *flow.Func)) {
	hot := pr.Hot()
	if hot.Empty() {
		return
	}
	for _, fn := range pr.Graph().Funcs() {
		if fn.Decl == nil || fn.Decl.Body == nil || !hot.IsHot(fn.Obj) {
			continue
		}
		p := pr.PackageOf(fn)
		if p == nil {
			continue
		}
		visit(p, p.fileOf(fn.Decl.Pos()), fn)
	}
}

// okWithReason reports whether an escape-hatch directive with a stated
// reason annotates pos; a bare directive does not suppress (the caller
// should emit a needs-reason finding instead).
func (p *Package) okWithReason(f *ast.File, pos token.Pos, directive string) (suppressed, bare bool) {
	found, reason := p.directiveReason(f, pos, directive)
	if !found {
		return false, false
	}
	return reason != "", reason == ""
}

// okLine is okWithReason keyed by a raw line number — escape facts carry
// file:line positions, not token.Pos.
func (p *Package) okLine(f *ast.File, line int, directive string) (suppressed, bare bool) {
	if f == nil {
		return false, false
	}
	// Prime the same per-line comment cache allowed() builds.
	p.allowed(f, f.Pos(), "\x00never-matches")
	lines := p.directives[f]
	for _, l := range []int{line, line - 1} {
		for _, text := range lines[l] {
			i := indexDirective(text, directive)
			if i < 0 {
				continue
			}
			rest := text[i+len(directive):]
			rest = trimReason(rest)
			return rest != "", rest == ""
		}
	}
	return false, false
}

// posRange is a half-open source region.
type posRange struct{ start, end token.Pos }

func (r posRange) contains(pos token.Pos) bool { return r.start <= pos && pos < r.end }

// loopRegion is one for/range statement's per-iteration extent: the
// regions re-executed every iteration (cond + post + body for a ForStmt;
// body only for a RangeStmt, whose range expression runs once).
type loopRegion struct {
	// pos is the `for` keyword — capacity establishment must lexically
	// precede it to count as "before the loop".
	pos     token.Pos
	regions []posRange
}

func (l *loopRegion) contains(pos token.Pos) bool {
	for _, r := range l.regions {
		if r.contains(pos) {
			return true
		}
	}
	return false
}

// collectLoops gathers every loop in body, including loops inside nested
// function literals (a closure's loop still runs per call on the hot path).
func collectLoops(body ast.Node) []loopRegion {
	var out []loopRegion
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt:
			l := loopRegion{pos: s.Pos()}
			if s.Cond != nil {
				l.regions = append(l.regions, posRange{s.Cond.Pos(), s.Cond.End()})
			}
			if s.Post != nil {
				l.regions = append(l.regions, posRange{s.Post.Pos(), s.Post.End()})
			}
			l.regions = append(l.regions, posRange{s.Body.Pos(), s.Body.End()})
			out = append(out, l)
		case *ast.RangeStmt:
			out = append(out, loopRegion{pos: s.Pos(), regions: []posRange{{s.Body.Pos(), s.Body.End()}}})
		}
		return true
	})
	return out
}

// innermostLoop returns the tightest loop whose per-iteration extent
// contains pos, or nil. Loops are nested lexically, so the latest `for`
// keyword among containing loops is the innermost.
func innermostLoop(loops []loopRegion, pos token.Pos) *loopRegion {
	var best *loopRegion
	for i := range loops {
		l := &loops[i]
		if l.contains(pos) && (best == nil || l.pos > best.pos) {
			best = l
		}
	}
	return best
}

// isInput reports whether v is a parameter or receiver of fn — the
// caller-owns-capacity exemption for append-grow.
func isInput(fn *types.Func, v *types.Var) bool {
	for _, in := range flow.Inputs(fn) {
		if in == v {
			return true
		}
	}
	return false
}

// indexDirective locates directive in a comment's text, or -1.
func indexDirective(text, directive string) int {
	return strings.Index(text, directive)
}

// trimReason normalizes the text following a directive into the stated
// reason: whitespace- and block-comment-terminator-trimmed.
func trimReason(s string) string {
	s = strings.TrimSuffix(strings.TrimSpace(s), "*/")
	return strings.TrimSpace(s)
}

// calleePkgIs reports whether call resolves to a function in pkgPath.
func calleePkgIs(info *types.Info, call *ast.CallExpr, pkgPath string) (*types.Func, bool) {
	callee := flow.Callee(info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != pkgPath {
		return nil, false
	}
	return callee, true
}
