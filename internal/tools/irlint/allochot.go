package irlint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/tools/irlint/flow"
)

// AnalyzerAllocHot enforces the allocation half of the hot-path
// contract: inside the irlint:hot closure there must be no
// heap-escaping allocation (joined from the compiler's -m=2 escape
// facts), no fmt/reflect call, no string concatenation inside a loop,
// and no explicit conversion that boxes a concrete value into an
// interface. `lint:alloc-ok <reason>` suppresses one site.
//
// The analyzer also owns the annotation hygiene of the hot set itself
// (irlint:hot/irlint:cold reasons) and surfaces escape-fact collection
// failures, so a build too broken to run escape analysis gates the lint.
func AnalyzerAllocHot() *Analyzer {
	return &Analyzer{
		Name:       "alloc-hot",
		Doc:        "functions reachable from irlint:hot roots must not heap-allocate, box interfaces, or call fmt/reflect",
		RunProgram: runAllocHot,
	}
}

func runAllocHot(pr *Program) []Diagnostic {
	var out []Diagnostic
	hot := pr.Hot()
	for _, prob := range hot.Problems {
		out = append(out, Diagnostic{Pos: prob.Pos, Analyzer: "alloc-hot", Message: prob.Message})
	}
	if hot.Empty() {
		return out
	}
	table, err := pr.EscapeTable()
	if err != nil && len(pr.Pkgs) > 0 && len(pr.Pkgs[0].Files) > 0 {
		p := pr.Pkgs[0]
		out = append(out, p.diag("alloc-hot", p.Files[0].Pos(), "escape-fact collection failed, cannot verify hot-path allocations: %v", err))
	}
	pr.forEachHot(func(p *Package, f *ast.File, fn *flow.Func) {
		via := hot.Via(fn.Obj)
		// (a) compiler escape facts within the declaration's line span.
		if table != nil {
			start := p.Fset.Position(fn.Decl.Pos())
			end := p.Fset.Position(fn.Decl.End())
			for _, fact := range table.InRange(start.Filename, start.Line, end.Line) {
				pos := token.Position{Filename: fact.File, Line: fact.Line, Column: fact.Col}
				if sup, bare := p.okLine(f, fact.Line, allocOKDirective); sup {
					continue
				} else if bare {
					out = append(out, Diagnostic{Pos: pos, Analyzer: "alloc-hot",
						Message: allocOKDirective + " needs a reason: " + allocOKDirective + " <why this allocation is acceptable per query>"})
					continue
				}
				out = append(out, Diagnostic{Pos: pos, Analyzer: "alloc-hot",
					Message: "heap allocation on hot path" + via + ": " + fact.Text})
			}
		}
		// (b)–(d) syntactic contracts: fmt/reflect, loop string concat,
		// interface-boxing conversions.
		loops := collectLoops(fn.Decl.Body)
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				for _, pkg := range []string{"fmt", "reflect"} {
					if callee, ok := calleePkgIs(p.Info, e, pkg); ok {
						if sup, bare := p.okWithReason(f, e.Pos(), allocOKDirective); sup {
							return true
						} else if bare {
							out = append(out, p.diag("alloc-hot", e.Pos(), "%s needs a reason", allocOKDirective))
							return true
						}
						out = append(out, p.diag("alloc-hot", e.Pos(),
							"%s.%s call on hot path%s; formatting and reflection allocate", pkg, callee.Name(), via))
						return true
					}
				}
				if ifaceT, opT := boxingConversion(p.Info, e); ifaceT != nil {
					if sup, bare := p.okWithReason(f, e.Pos(), allocOKDirective); sup {
						return true
					} else if bare {
						out = append(out, p.diag("alloc-hot", e.Pos(), "%s needs a reason", allocOKDirective))
						return true
					}
					out = append(out, p.diag("alloc-hot", e.Pos(),
						"conversion boxes %s into interface %s on hot path%s", opT, ifaceT, via))
				}
			case *ast.BinaryExpr:
				if e.Op != token.ADD {
					return true
				}
				tv, ok := p.Info.Types[e]
				if !ok || tv.Value != nil { // constant-folded concat is free
					return true
				}
				if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
					return true
				}
				if innermostLoop(loops, e.Pos()) == nil {
					return true
				}
				if sup, bare := p.okWithReason(f, e.Pos(), allocOKDirective); sup {
					return true
				} else if bare {
					out = append(out, p.diag("alloc-hot", e.Pos(), "%s needs a reason", allocOKDirective))
					return true
				}
				out = append(out, p.diag("alloc-hot", e.Pos(),
					"string concatenation in a hot loop%s allocates per iteration", via))
			case *ast.AssignStmt:
				if e.Tok != token.ADD_ASSIGN || len(e.Lhs) != 1 {
					return true
				}
				tv, ok := p.Info.Types[e.Lhs[0]]
				if !ok {
					return true
				}
				if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
					return true
				}
				if innermostLoop(loops, e.Pos()) == nil {
					return true
				}
				if sup, _ := p.okWithReason(f, e.Pos(), allocOKDirective); sup {
					return true
				}
				out = append(out, p.diag("alloc-hot", e.Pos(),
					"string concatenation in a hot loop%s allocates per iteration", via))
			}
			return true
		})
	})
	return out
}

// boxingConversion reports an explicit conversion I(x) where I is an
// interface type and x has a concrete type: the converted value is
// boxed, which allocates whenever it escapes or exceeds pointer size.
func boxingConversion(info *types.Info, call *ast.CallExpr) (iface, operand types.Type) {
	if len(call.Args) != 1 {
		return nil, nil
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || !types.IsInterface(tv.Type) {
		return nil, nil
	}
	opTV, ok := info.Types[call.Args[0]]
	if !ok || opTV.Type == nil || types.IsInterface(opTV.Type) {
		return nil, nil
	}
	return tv.Type, opTV.Type
}
