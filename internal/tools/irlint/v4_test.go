package irlint

import (
	"strings"
	"testing"

	"repro/internal/tools/irlint/perf"
)

// runV4 runs one performance-contract analyzer over a single-package
// program. Escape facts are injected from "// ESC: <message>" markers in
// the fixture source: each marked line contributes one fact at that
// line, standing in for the compiler's -m=2 output so fixtures never
// shell out to the toolchain.
func runV4(t *testing.T, analyzer string, src string, p *Package) []Diagnostic {
	t.Helper()
	a := analyzerByName(t, analyzer)
	if a.RunProgram == nil {
		t.Fatalf("analyzer %q is not whole-program", analyzer)
	}
	pr := NewProgram([]*Package{p})
	tbl := perf.NewTable()
	for i, line := range strings.Split(src, "\n") {
		if j := strings.Index(line, "// ESC:"); j >= 0 {
			msg := strings.TrimSpace(line[j+len("// ESC:"):])
			kind := perf.FactEscapes
			if strings.HasPrefix(msg, "moved to heap") {
				kind = perf.FactMoved
			}
			tbl.Add(perf.Fact{File: "fixture.go", Line: i + 1, Col: 2, Kind: kind, Text: msg})
		}
	}
	pr.Escapes = tbl
	return a.RunProgram(pr)
}

// TestV4Analyzers drives the four performance-contract analyzers over
// firing and silent fixtures: each must catch its bug shape and stay
// quiet on the conforming idiom.
func TestV4Analyzers(t *testing.T) {
	cases := []struct {
		name     string
		analyzer string
		src      string
		want     int
		contains []string
	}{
		// ---- alloc-hot: firing ----
		{
			name:     "escape fact in hot function flagged",
			analyzer: "alloc-hot",
			src: `package fix

// irlint:hot per-query intersection kernel
func Intersect(a, b []int) []int {
	out := make([]int, 0, len(a)) // ESC: make([]int, 0, len(a)) escapes to heap
	return out
}
`,
			want:     1,
			contains: []string{"heap allocation on hot path", "escapes to heap"},
		},
		{
			name:     "escape fact propagates to helper callee through the graph",
			analyzer: "alloc-hot",
			src: `package fix

// irlint:hot per-query root
func Query(a []int) []int {
	return scratch(len(a))
}

func scratch(n int) []int {
	buf := make([]int, n) // ESC: make([]int, n) escapes to heap
	return buf
}
`,
			want:     1,
			contains: []string{"hot via Query"},
		},
		{
			name:     "fmt call in hot function flagged",
			analyzer: "alloc-hot",
			src: `package fix

import "fmt"

// irlint:hot per-query scoring
func Score(ids []int) string {
	return fmt.Sprintf("%d", len(ids))
}
`,
			want:     1,
			contains: []string{"fmt.Sprintf call on hot path"},
		},
		{
			name:     "string concat in hot loop flagged",
			analyzer: "alloc-hot",
			src: `package fix

// irlint:hot per-query key build
func Keys(parts []string) string {
	var k string
	for _, p := range parts {
		k = k + p
	}
	return k
}
`,
			want:     1,
			contains: []string{"string concatenation in a hot loop"},
		},
		{
			name:     "interface boxing conversion in hot function flagged",
			analyzer: "alloc-hot",
			src: `package fix

// irlint:hot per-query compare
func Box(x int) any {
	return any(x)
}
`,
			want:     1,
			contains: []string{"boxes int into interface"},
		},
		{
			name:     "hot annotation without reason flagged",
			analyzer: "alloc-hot",
			src: `package fix

// irlint:hot
func Kernel(a []int) int { return len(a) }
`,
			want:     1,
			contains: []string{"needs a reason"},
		},
		{
			name:     "bare alloc-ok on escape fact needs a reason",
			analyzer: "alloc-hot",
			src: `package fix

// irlint:hot per-query kernel
func Kernel(a []int) []int {
	// lint:alloc-ok
	out := make([]int, len(a)) // ESC: make([]int, len(a)) escapes to heap
	return out
}
`,
			want:     1,
			contains: []string{"lint:alloc-ok needs a reason"},
		},
		// ---- alloc-hot: silent ----
		{
			name:     "escape fact outside the hot set is ignored",
			analyzer: "alloc-hot",
			src: `package fix

func Build(n int) []int {
	out := make([]int, n) // ESC: make([]int, n) escapes to heap
	return out
}
`,
			want: 0,
		},
		{
			name:     "alloc-ok with reason suppresses the fact",
			analyzer: "alloc-hot",
			src: `package fix

// irlint:hot per-query kernel
func Kernel(a []int) []int {
	// lint:alloc-ok single pre-sized output buffer per query
	out := make([]int, 0, len(a)) // ESC: make([]int, 0, len(a)) escapes to heap
	return out
}
`,
			want: 0,
		},
		{
			name:     "cold annotation stops propagation into slow paths",
			analyzer: "alloc-hot",
			src: `package fix

// irlint:hot per-query root
func Query(a []int) []int {
	if len(a) > 1000 {
		return fanOut(a)
	}
	return a
}

// irlint:cold parallel fan-out taken only for huge inputs
func fanOut(a []int) []int {
	buf := make([]int, len(a)) // ESC: make([]int, len(a)) escapes to heap
	copy(buf, a)
	return buf
}
`,
			want: 0,
		},
		{
			name:     "cold annotation above a compiler directive still counts",
			analyzer: "alloc-hot",
			src: `package fix

// irlint:hot per-query root
func Query(a []int) []int {
	if len(a) > 1000 {
		return fanOut(a)
	}
	return a
}

// irlint:cold parallel fan-out taken only for huge inputs
//
//go:noinline
func fanOut(a []int) []int {
	buf := make([]int, len(a)) // ESC: make([]int, len(a)) escapes to heap
	copy(buf, a)
	return buf
}
`,
			want: 0,
		},
		{
			name:     "string concat outside a loop conforms",
			analyzer: "alloc-hot",
			src: `package fix

// irlint:hot per-query label
func Label(a, b string) string {
	return a + b
}
`,
			want: 0,
		},
		// ---- append-grow: firing ----
		{
			name:     "append to bare local in hot loop flagged",
			analyzer: "append-grow",
			src: `package fix

// irlint:hot per-query intersection
func Intersect(a, b []int) []int {
	var out []int
	for _, x := range a {
		out = append(out, x)
	}
	return out
}
`,
			want:     1,
			contains: []string{"without capacity established before the loop"},
		},
		{
			name:     "append to unsized local in propagated hot helper flagged",
			analyzer: "append-grow",
			src: `package fix

// irlint:hot per-query root
func Query(a []int) []int { return collect(a) }

func collect(a []int) []int {
	var acc []int
	for i := 0; i < len(a); i++ {
		acc = append(acc, a[i])
	}
	return acc
}
`,
			want:     1,
			contains: []string{"hot via Query"},
		},
		{
			name:     "bare append-ok needs a reason",
			analyzer: "append-grow",
			src: `package fix

// irlint:hot per-query kernel
func Kernel(a []int) []int {
	var out []int
	for _, x := range a {
		out = append(out, x) // lint:append-ok
	}
	return out
}
`,
			want:     1,
			contains: []string{"lint:append-ok needs a reason"},
		},
		// ---- append-grow: silent ----
		{
			name:     "make with computed bound before the loop conforms",
			analyzer: "append-grow",
			src: `package fix

// irlint:hot per-query intersection
func Intersect(a, b []int) []int {
	out := make([]int, 0, min(len(a), len(b)))
	for _, x := range a {
		out = append(out, x)
	}
	return out
}
`,
			want: 0,
		},
		{
			name:     "append into caller-supplied dst parameter conforms",
			analyzer: "append-grow",
			src: `package fix

// irlint:hot per-query filter
func Filter(a []int, dst []int) []int {
	for _, x := range a {
		dst = append(dst, x)
	}
	return dst
}
`,
			want: 0,
		},
		{
			name:     "reslice of a reused buffer before the loop conforms",
			analyzer: "append-grow",
			src: `package fix

var scratch []int

// irlint:hot per-query kernel reusing package scratch
func Kernel(a []int) []int {
	out := scratch[:0]
	for _, x := range a {
		out = append(out, x)
	}
	return out
}
`,
			want: 0,
		},
		{
			name:     "append in non-hot function conforms",
			analyzer: "append-grow",
			src: `package fix

func Build(a []int) []int {
	var out []int
	for _, x := range a {
		out = append(out, x)
	}
	return out
}
`,
			want: 0,
		},
		// ---- defer-in-loop: firing ----
		{
			name:     "defer inside hot loop flagged",
			analyzer: "defer-in-loop",
			src: `package fix

import "sync"

// irlint:hot per-query scan
func Scan(mus []*sync.Mutex) {
	for _, mu := range mus {
		mu.Lock()
		defer mu.Unlock()
	}
}
`,
			want:     2,
			contains: []string{"defer inside a hot loop", "mutex Lock inside a hot loop"},
		},
		{
			name:     "direct mutex acquire in hot loop flagged",
			analyzer: "defer-in-loop",
			src: `package fix

import "sync"

type S struct{ mu sync.RWMutex }

// irlint:hot per-query read
func (s *S) Read(keys []int) int {
	n := 0
	for range keys {
		s.mu.RLock()
		n++
		s.mu.RUnlock()
	}
	return n
}
`,
			want:     2,
			contains: []string{"mutex RLock inside a hot loop", "mutex RUnlock inside a hot loop"},
		},
		{
			name:     "helper that locks three calls down flagged through the graph",
			analyzer: "defer-in-loop",
			src: `package fix

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) outer() { s.inner() }
func (s *S) inner() { s.locked() }
func (s *S) locked() {
	s.mu.Lock()
	s.mu.Unlock()
}

// irlint:hot per-query probe
func (s *S) Probe(keys []int) {
	for range keys {
		s.outer()
	}
}
`,
			want:     1,
			contains: []string{"outer may acquire a mutex (resolved through the call graph) inside a hot loop"},
		},
		// ---- defer-in-loop: silent ----
		{
			name:     "defer outside the loop conforms",
			analyzer: "defer-in-loop",
			src: `package fix

import "sync"

type S struct{ mu sync.Mutex }

// irlint:hot per-query read under one lock
func (s *S) Read(keys []int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for range keys {
		n++
	}
	return n
}
`,
			want: 0,
		},
		{
			name:     "lock-free helper in hot loop conforms",
			analyzer: "defer-in-loop",
			src: `package fix

func double(x int) int { return 2 * x }

// irlint:hot per-query map
func Map(a []int) {
	for i := range a {
		a[i] = double(a[i])
	}
}
`,
			want: 0,
		},
		{
			name:     "defer-ok with reason conforms",
			analyzer: "defer-in-loop",
			src: `package fix

import "sync"

// irlint:hot batch setup loop runs once per shard, not per posting
func Setup(mus []*sync.Mutex) {
	for _, mu := range mus {
		mu.Lock() // lint:defer-ok bounded shard-count loop, not per-posting
	}
}
`,
			want: 0,
		},
		// ---- iface-dispatch: firing ----
		{
			name:     "interface method call in hot loop flagged",
			analyzer: "iface-dispatch",
			src: `package fix

type Source interface{ Next() (int, bool) }

// irlint:hot per-query drain
func Drain(s Source) int {
	n := 0
	for {
		v, ok := s.Next()
		if !ok {
			return n
		}
		n += v
	}
}
`,
			want:     1,
			contains: []string{"dynamic dispatch through"},
		},
		{
			name:     "interface field dispatch in hot loop flagged",
			analyzer: "iface-dispatch",
			src: `package fix

type Scorer interface{ Score(int) float64 }

type Ranker struct{ s Scorer }

// irlint:hot per-query rank
func (r *Ranker) Rank(ids []int) float64 {
	total := 0.0
	for _, id := range ids {
		total += r.s.Score(id)
	}
	return total
}
`,
			want:     1,
			contains: []string{"Scorer in a hot loop"},
		},
		{
			name:     "bare iface-ok needs a reason",
			analyzer: "iface-dispatch",
			src: `package fix

type Source interface{ Next() (int, bool) }

// irlint:hot per-query drain
func Drain(s Source) int {
	n := 0
	for {
		v, ok := s.Next() // lint:iface-ok
		if !ok {
			return n
		}
		n += v
	}
}
`,
			want:     1,
			contains: []string{"lint:iface-ok needs a reason"},
		},
		// ---- iface-dispatch: silent ----
		{
			name:     "concrete method call in hot loop conforms",
			analyzer: "iface-dispatch",
			src: `package fix

type Counter struct{ n int }

func (c *Counter) Add(v int) { c.n += v }

// irlint:hot per-query tally
func Tally(a []int) int {
	var c Counter
	for _, v := range a {
		c.Add(v)
	}
	return c.n
}
`,
			want: 0,
		},
		{
			name:     "hot-iface annotated interface conforms",
			analyzer: "iface-dispatch",
			src: `package fix

// Source is the deliberate pluggable-decoder seam.
// irlint:hot-iface decoder families are selected per division; one indirect call per posting is the design
type Source interface{ Next() (int, bool) }

// irlint:hot per-query drain
func Drain(s Source) int {
	n := 0
	for {
		v, ok := s.Next()
		if !ok {
			return n
		}
		n += v
	}
}
`,
			want: 0,
		},
		{
			name:     "iface-ok with reason conforms",
			analyzer: "iface-dispatch",
			src: `package fix

type Source interface{ Next() (int, bool) }

// irlint:hot per-query drain
func Drain(s Source) int {
	n := 0
	for {
		v, ok := s.Next() // lint:iface-ok one virtual call per posting is the measured-cheap seam
		if !ok {
			return n
		}
		n += v
	}
}
`,
			want: 0,
		},
		{
			name:     "interface call outside any loop conforms",
			analyzer: "iface-dispatch",
			src: `package fix

type Source interface{ Next() (int, bool) }

// irlint:hot per-query peek
func Peek(s Source) (int, bool) {
	return s.Next()
}
`,
			want: 0,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := checkFixture(t, ModulePath+"/internal/fix", tc.src)
			diags := runV4(t, tc.analyzer, tc.src, p)
			if len(diags) != tc.want {
				t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), tc.want, diagLines(diags))
			}
			for _, sub := range tc.contains {
				found := false
				for _, d := range diags {
					if strings.Contains(d.Message, sub) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("no diagnostic contains %q:\n%s", sub, diagLines(diags))
				}
			}
		})
	}
}

func diagLines(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}
