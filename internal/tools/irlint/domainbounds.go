package irlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// domainDirective suppresses a domain-bounds finding at a site where the
// arithmetic is proven in range by reasoning the analyzer cannot follow
// (state the proof in the reason).
const domainDirective = "lint:domain-ok"

// domainPath owns the [0, 2^m-1] discretization.
const domainPath = ModulePath + "/internal/domain"

// AnalyzerDomainBounds flags raw arithmetic on discretized domain values:
// results of internal/domain methods (Disc, DiscInterval, Prefix,
// PartitionExtent, Cells) live on the [0, 2^m-1] grid, and additions,
// subtractions, multiplications or shifts can silently leave it —
// overflow wraps uint32 and an off-by-one shift duplicates the
// level-prefix logic Domain.Prefix centralizes. Comparisons, %, and the
// other non-escaping operators are allowed (parity checks are how HINT's
// bottom-up walk works). The domain package itself is exempt — it is
// where the clamped implementations live.
func AnalyzerDomainBounds() *Analyzer {
	const name = "domain-bounds"
	return &Analyzer{
		Name: name,
		Doc:  "arithmetic on discretized domain values must go through Domain helpers or carry a bounds-proof annotation",
		Run: func(p *Package) []Diagnostic {
			if p.Info == nil || p.Path == domainPath {
				return nil
			}
			var out []Diagnostic
			for _, f := range p.Files {
				file := f
				for _, decl := range f.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok || fn.Body == nil {
						continue
					}
					out = append(out, p.domainBoundsFunc(file, fn)...)
				}
			}
			return out
		},
	}
}

// domainBoundsFunc tracks discretized values through one function body
// and flags escaping arithmetic on them.
func (p *Package) domainBoundsFunc(f *ast.File, fn *ast.FuncDecl) []Diagnostic {
	const name = "domain-bounds"
	tracked := map[types.Object]bool{}

	objOf := func(id *ast.Ident) types.Object {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj
		}
		return p.Info.Defs[id]
	}

	// trackedExpr: a tracked variable, a domain-method call, or a paren /
	// conversion view of one.
	var trackedExpr func(e ast.Expr) bool
	trackedExpr = func(e ast.Expr) bool {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			obj := objOf(x)
			return obj != nil && tracked[obj]
		case *ast.CallExpr:
			if p.isConversion(x) {
				return len(x.Args) == 1 && trackedExpr(x.Args[0])
			}
			return p.domainCall(x)
		}
		return false
	}

	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			mark := func(lhs ast.Expr) {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					return
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj == nil || tracked[obj] {
					return
				}
				if basic, ok := obj.Type().Underlying().(*types.Basic); !ok || basic.Info()&types.IsInteger == 0 {
					return
				}
				tracked[obj] = true
				changed = true
			}
			if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
				if call, ok := unparen(as.Rhs[0]).(*ast.CallExpr); ok && p.domainCall(call) {
					for _, lhs := range as.Lhs {
						mark(lhs)
					}
				}
				return true
			}
			for i, rhs := range as.Rhs {
				if i < len(as.Lhs) && trackedExpr(rhs) {
					mark(as.Lhs[i])
				}
			}
			return true
		})
	}

	var out []Diagnostic
	flag := func(pos token.Pos, op string) {
		if p.allowed(f, pos, domainDirective) {
			return
		}
		out = append(out, p.diag(name, pos,
			"%q on a discretized domain value can leave [0, 2^m-1]; use Domain.Prefix/PartitionExtent, clamp against Cells(), or annotate // %s <bounds proof>",
			op, domainDirective))
	}
	escaping := map[token.Token]bool{
		token.ADD: true, token.SUB: true, token.MUL: true,
		token.SHL: true, token.SHR: true,
		token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
		token.SHL_ASSIGN: true, token.SHR_ASSIGN: true,
		token.INC: true, token.DEC: true,
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			if escaping[x.Op] && (trackedExpr(x.X) || trackedExpr(x.Y)) {
				flag(x.OpPos, x.Op.String())
			}
		case *ast.AssignStmt:
			if escaping[x.Tok] {
				for _, lhs := range x.Lhs {
					if trackedExpr(lhs) {
						flag(x.TokPos, x.Tok.String())
					}
				}
			}
		case *ast.IncDecStmt:
			if trackedExpr(x.X) {
				flag(x.TokPos, x.Tok.String())
			}
		}
		return true
	})
	return out
}

// domainCall reports whether call invokes an internal/domain function or
// method with a uint32 result — the shape of every grid-value producer
// (Disc, DiscInterval, Prefix, PartitionExtent, Cells).
func (p *Package) domainCall(call *ast.CallExpr) bool {
	var callee *types.Func
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		callee, _ = p.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = p.Info.Uses[fun.Sel].(*types.Func)
	}
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != domainPath {
		return false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if basic, ok := sig.Results().At(i).Type().Underlying().(*types.Basic); ok && basic.Kind() == types.Uint32 {
			return true
		}
	}
	return false
}
