package irlint

import (
	"go/ast"
	"go/types"
)

// panicDirective marks a documented constructor-precondition panic site.
const panicDirective = "lint:panic-ok"

// AnalyzerPanicPolicy flags every call to the builtin panic that is not
// annotated with // lint:panic-ok. The repository's policy (LINTING.md)
// confines panics to documented constructor preconditions — query paths
// and the server must degrade through errors, never crash the process.
func AnalyzerPanicPolicy() *Analyzer {
	const name = "panic-policy"
	return &Analyzer{
		Name: name,
		Doc:  "panic only at documented precondition sites annotated // lint:panic-ok",
		Run: func(p *Package) []Diagnostic {
			var out []Diagnostic
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn, ok := call.Fun.(*ast.Ident)
					if !ok || fn.Name != "panic" {
						return true
					}
					// With type info, skip shadowing user functions named
					// "panic"; without it, assume the builtin.
					if p.Info != nil {
						if obj := p.Info.Uses[fn]; obj != nil {
							if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
								return true
							}
						}
					}
					if p.allowed(f, call.Pos(), panicDirective) {
						return true
					}
					out = append(out, p.diag(name, call.Pos(),
						"undocumented panic; return an error, or annotate a true precondition with // %s <reason>",
						panicDirective))
					return true
				})
			}
			return out
		},
	}
}
