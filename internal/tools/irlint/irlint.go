// Package irlint is the repository's static-analysis suite. It enforces
// invariants the Go type system cannot express but the paper's algorithms
// rely on: intervals are built through canonicalizing constructors, map
// iteration order never leaks into ordered results, panics stay confined
// to documented precondition sites, size accounting covers every
// dynamically-sized index field, and the public surface stays documented.
//
// The type/dataflow-aware half of the suite guards the concurrency and
// sharing contracts: mutex-guarded Engine fields are only touched under
// their lock (lock-guard), postings lists aliased out of internal/tif and
// internal/postings stay read-only (alias-mutation), arithmetic on
// discretized domain values cannot leave [0, 2^m-1] unreviewed
// (domain-bounds), and every switch over temporalir.Method stays
// exhaustive as the index family grows (method-exhaustiveness).
//
// The whole-program (v3) half runs over every loaded package at once on
// the flow substrate (internal/tools/irlint/flow: static call graph +
// per-input effect summaries): contexts thread edge-to-edge with
// annotated roots only (ctx-flow), every go statement is provably joined
// or annotated with its exit condition (goroutine-exit), values stay
// frozen after atomic publication (publish-freeze), and obs metric
// families are constant-named, well-formed, and registered exactly once
// with monotonic histogram buckets (metric-hygiene).
//
// The suite is stdlib-only (go/parser, go/ast, go/types); the cmd/irlint
// driver wires it into `make lint` and CI. Each analyzer has an escape
// hatch comment documented in LINTING.md.
package irlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePath is the import path of the module this suite lints.
const ModulePath = "repro"

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package presented to analyzers.
type Package struct {
	// Path is the import path (e.g. "repro/internal/model").
	Path string
	// Fset positions every file in the package.
	Fset *token.FileSet
	// Files holds the parsed non-test sources.
	Files []*ast.File
	// Info carries type-checking results; analyzers must tolerate nil
	// entries for code that failed to check.
	Info *types.Info
	// Types is the checked package object.
	Types *types.Package
	// directives caches per-file escape-hatch comment lines.
	directives map[*ast.File]map[int][]string
}

// Analyzer is one named invariant check. Per-package analyzers set Run;
// whole-program (dataflow) analyzers set RunProgram and receive every
// loaded package at once plus the shared flow graph. Exactly one of the
// two must be set.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and LINTING.md.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run reports every violation found in the package.
	Run func(p *Package) []Diagnostic
	// RunProgram reports every violation found across the whole program.
	RunProgram func(pr *Program) []Diagnostic
}

// Analyzers returns the full suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerIntervalCanon(),
		AnalyzerMapOrder(),
		AnalyzerPanicPolicy(),
		AnalyzerSizeAccounting(),
		AnalyzerDocExported(),
		AnalyzerLockGuard(),
		AnalyzerAliasMutation(),
		AnalyzerDomainBounds(),
		AnalyzerMethodExhaustiveness(),
		AnalyzerSpanEnd(),
		AnalyzerCtxFlow(),
		AnalyzerGoroutineExit(),
		AnalyzerPublishFreeze(),
		AnalyzerMetricHygiene(),
		AnalyzerAllocHot(),
		AnalyzerAppendGrow(),
		AnalyzerDeferInLoop(),
		AnalyzerIfaceDispatch(),
	}
}

// Run applies every analyzer — per-package and whole-program — and
// returns the combined findings sorted by position. All whole-program
// analyzers share one Program, so the flow graph and its summaries are
// built at most once.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunOn(NewProgram(pkgs), analyzers)
}

// RunOn is Run over a caller-built Program — the cmd/irlint driver uses
// it to attach a lazy escape-fact source before the v4 analyzers run.
func RunOn(pr *Program, analyzers []*Analyzer) []Diagnostic {
	pkgs := pr.Pkgs
	var out []Diagnostic
	for _, p := range pkgs {
		for _, a := range analyzers {
			if a.Run != nil {
				out = append(out, a.Run(p)...)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunProgram != nil {
			out = append(out, a.RunProgram(pr)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// diag builds a Diagnostic at the given node position.
func (p *Package) diag(name string, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: name,
		Message:  fmt.Sprintf(format, args...),
	}
}

// allowed reports whether an escape-hatch directive (e.g. "lint:panic-ok")
// annotates the line of pos or the line directly above it — the two places
// a suppression comment may live.
func (p *Package) allowed(f *ast.File, pos token.Pos, directive string) bool {
	if p.directives == nil {
		p.directives = make(map[*ast.File]map[int][]string)
	}
	lines, ok := p.directives[f]
	if !ok {
		lines = make(map[int][]string)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ln := p.Fset.Position(c.Pos()).Line
				lines[ln] = append(lines[ln], c.Text)
			}
		}
		p.directives[f] = lines
	}
	ln := p.Fset.Position(pos).Line
	for _, l := range []int{ln, ln - 1} {
		for _, text := range lines[l] {
			if strings.Contains(text, directive) {
				return true
			}
		}
	}
	return false
}

// fileOf returns the *ast.File containing pos.
func (p *Package) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// relPath strips the module prefix: "repro/internal/model" -> "internal/model",
// "repro" -> ".".
func relPath(importPath string) string {
	if importPath == ModulePath {
		return "."
	}
	return strings.TrimPrefix(importPath, ModulePath+"/")
}

// typeIs reports whether t (after unwrapping pointers) is the named type
// pkgPath.name.
func typeIs(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
