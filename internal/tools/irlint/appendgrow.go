package irlint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/tools/irlint/flow"
)

// AnalyzerAppendGrow enforces the capacity half of the hot-path
// contract: an append inside a hot loop must write into capacity
// established before that loop — a make with a computed bound (e.g.
// min(len(a), len(b)) for an intersection), a slices.Grow, a reslice of
// a reused buffer, or a caller-supplied destination parameter (the
// dst-passing kernels put the capacity decision at the call site).
// Appends whose destination is a plain local with no pre-loop capacity
// re-grow geometrically every query; `lint:append-ok <reason>` accepts
// one site.
func AnalyzerAppendGrow() *Analyzer {
	return &Analyzer{
		Name:       "append-grow",
		Doc:        "appends in hot loops must write into capacity established before the loop",
		RunProgram: runAppendGrow,
	}
}

func runAppendGrow(pr *Program) []Diagnostic {
	var out []Diagnostic
	pr.forEachHot(func(p *Package, f *ast.File, fn *flow.Func) {
		via := pr.Hot().Via(fn.Obj)
		loops := collectLoops(fn.Decl.Body)
		if len(loops) == 0 {
			return
		}
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !flow.IsBuiltin(p.Info, call, "append") || len(call.Args) == 0 {
				return true
			}
			loop := innermostLoop(loops, call.Pos())
			if loop == nil {
				return true
			}
			dst := flow.BaseVar(p.Info, call.Args[0])
			if dst == nil {
				return true // non-variable destination; nothing to track
			}
			if isInput(fn.Obj, dst) {
				return true // caller owns the capacity decision
			}
			if establishedBefore(p.Info, fn.Decl.Body, dst, loop.pos) {
				return true
			}
			if sup, bare := p.okWithReason(f, call.Pos(), appendOKDirective); sup {
				return true
			} else if bare {
				out = append(out, p.diag("append-grow", call.Pos(), "%s needs a reason", appendOKDirective))
				return true
			}
			out = append(out, p.diag("append-grow", call.Pos(),
				"append to %q in a hot loop%s without capacity established before the loop; pre-size it (make/slices.Grow/reslice) or take a caller-supplied dst", dst.Name(), via))
			return true
		})
	})
	return out
}

// establishedBefore reports whether v receives known capacity at some
// point lexically before loopPos: assignment or declaration from a make,
// slices.Grow, a reslice (including v2[:0] buffer reuse), or a composite
// literal with fixed length.
func establishedBefore(info *types.Info, body ast.Node, v *types.Var, loopPos token.Pos) bool {
	established := false
	ast.Inspect(body, func(n ast.Node) bool {
		if established {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Pos() >= loopPos {
				return true
			}
			for i, lhs := range s.Lhs {
				if flow.BaseVar(info, lhs) != v || i >= len(s.Rhs) {
					continue
				}
				if establishesCap(info, s.Rhs[i]) {
					established = true
				}
			}
		case *ast.ValueSpec:
			if s.Pos() >= loopPos {
				return true
			}
			for i, name := range s.Names {
				if info.Defs[name] != v || i >= len(s.Values) {
					continue
				}
				if establishesCap(info, s.Values[i]) {
					established = true
				}
			}
		}
		return true
	})
	return established
}

// establishesCap reports whether rhs yields a slice with caller-chosen
// capacity.
func establishesCap(info *types.Info, rhs ast.Expr) bool {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		if flow.IsBuiltin(info, e, "make") {
			return true
		}
		if callee := flow.Callee(info, e); callee != nil && callee.Pkg() != nil &&
			callee.Pkg().Path() == "slices" && callee.Name() == "Grow" {
			return true
		}
	case *ast.SliceExpr:
		return true
	case *ast.CompositeLit:
		return true
	}
	return false
}
