package irlint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/tools/irlint/flow"
)

// ctxRootDirective marks a deliberate context root: a site where a fresh
// context.Background()/TODO() is the right thing (process-lifetime
// background work, benchmark drivers). The annotation must state why.
const ctxRootDirective = "irlint:ctx-root"

// AnalyzerCtxFlow enforces the deadline-propagation contract: contexts
// flow from the edge (main, a request handler) down through every call
// that accepts one. Two shapes are flagged:
//
//  1. A function that already receives a context.Context but passes
//     context.Background()/TODO() to a callee — the caller's deadline and
//     cancellation are silently dropped on that path.
//  2. Any context.Background()/TODO() call outside a main package — a new
//     context root in library code detaches everything below it from the
//     caller's lifetime. Legitimate roots (a background compactor, a
//     benchmark harness) carry an `irlint:ctx-root <reason>` annotation.
//
// Shape 1 sites are also shape 2 sites; they are flagged once, with the
// stronger message. Test files are not loaded, so test helpers are
// exempt by construction.
func AnalyzerCtxFlow() *Analyzer {
	const name = "ctx-flow"
	return &Analyzer{
		Name: name,
		Doc:  "context.Background()/TODO() only in main or at annotated irlint:ctx-root sites; ctx-receiving functions must thread their ctx",
		RunProgram: func(pr *Program) []Diagnostic {
			var out []Diagnostic
			g := pr.Graph()
			// flagged records Background/TODO sites already reported as
			// shape 1, so the shape-2 sweep does not double-report them.
			flagged := map[token.Pos]bool{}
			for _, fn := range g.Funcs() {
				p := pr.PackageOf(fn)
				if p == nil || p.Info == nil {
					continue
				}
				if !receivesCtx(fn.Obj) {
					continue
				}
				f := p.fileOf(fn.Decl.Pos())
				for _, c := range fn.Calls {
					for _, arg := range c.Site.Args {
						root, rootName := ctxRootCall(p.Info, arg)
						if root == nil {
							continue
						}
						flagged[root.Pos()] = true
						if ok, reason := p.directiveReason(f, root.Pos(), ctxRootDirective); ok {
							if reason == "" {
								out = append(out, p.diag(name, root.Pos(),
									"%s annotation needs a reason: state why this call must not inherit the caller's context", ctxRootDirective))
							}
							continue
						}
						out = append(out, p.diag(name, root.Pos(),
							"%s receives a context.Context but passes context.%s() here, dropping the caller's deadline and cancellation; thread the ctx parameter instead (or annotate with // %s <reason>)",
							fn.Obj.Name(), rootName, ctxRootDirective))
					}
				}
			}
			// Shape 2: every remaining Background/TODO call outside main.
			for _, p := range pr.Pkgs {
				if p.Info == nil || p.isMainPackage() {
					continue
				}
				for _, f := range p.Files {
					ast.Inspect(f, func(n ast.Node) bool {
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						root, rootName := ctxRootCall(p.Info, call)
						if root == nil || flagged[root.Pos()] {
							return true
						}
						if ok, reason := p.directiveReason(f, root.Pos(), ctxRootDirective); ok {
							if reason == "" {
								out = append(out, p.diag(name, root.Pos(),
									"%s annotation needs a reason: state why this call must not inherit the caller's context", ctxRootDirective))
							}
							return true
						}
						out = append(out, p.diag(name, root.Pos(),
							"context.%s() creates a detached context root in library code; accept and thread a ctx from the caller (or annotate with // %s <reason>)",
							rootName, ctxRootDirective))
						return true
					})
				}
			}
			return out
		},
	}
}

// receivesCtx reports whether any of the function's inputs is a
// context.Context.
func receivesCtx(obj *types.Func) bool {
	for _, v := range flow.Inputs(obj) {
		if typeIs(v.Type(), "context", "Context") {
			return true
		}
	}
	return false
}

// ctxRootCall returns the call expression if e is context.Background()
// or context.TODO(), plus which of the two it is.
func ctxRootCall(info *types.Info, e ast.Expr) (*ast.CallExpr, string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	callee := flow.Callee(info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "context" {
		return nil, ""
	}
	if n := callee.Name(); n == "Background" || n == "TODO" {
		return call, n
	}
	return nil, ""
}
