package irlint

import (
	"strings"
	"testing"
)

// runV3 runs one whole-program analyzer over a single-package program —
// the fixture-sized version of what Run does for the full module.
func runV3(t *testing.T, analyzer string, p *Package) []Diagnostic {
	t.Helper()
	a := analyzerByName(t, analyzer)
	if a.RunProgram == nil {
		t.Fatalf("analyzer %q is not whole-program", analyzer)
	}
	return a.RunProgram(NewProgram([]*Package{p}))
}

// TestV3Analyzers drives the four dataflow analyzers over firing and
// silent fixtures. Every analyzer must both catch its bug shape and stay
// quiet on the conforming idiom — a lint that cannot stay quiet gets
// annotated into uselessness.
func TestV3Analyzers(t *testing.T) {
	cases := []struct {
		name     string
		analyzer string
		path     string
		src      string
		want     int
		contains []string
	}{
		// ---- ctx-flow: firing ----
		{
			name:     "ctx receiver passing Background flagged",
			analyzer: "ctx-flow",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "context"

func callee(ctx context.Context) {}

func handler(ctx context.Context) {
	callee(context.Background())
}
`,
			want:     1,
			contains: []string{"dropping the caller's deadline"},
		},
		{
			name:     "detached Background in library code flagged",
			analyzer: "ctx-flow",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "context"

func kick() context.Context {
	return context.Background()
}
`,
			want:     1,
			contains: []string{"detached context root"},
		},
		{
			name:     "ctx-root annotation without reason flagged",
			analyzer: "ctx-flow",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "context"

func kick() context.Context {
	// irlint:ctx-root
	return context.TODO()
}
`,
			want:     1,
			contains: []string{"needs a reason"},
		},
		// ---- ctx-flow: silent ----
		{
			name:     "threaded and derived contexts conform",
			analyzer: "ctx-flow",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import (
	"context"
	"time"
)

func callee(ctx context.Context) {}

func handler(ctx context.Context) {
	callee(ctx)
	sub, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	callee(sub)
}
`,
			want: 0,
		},
		{
			name:     "annotated ctx root conforms",
			analyzer: "ctx-flow",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "context"

func kick() context.Context {
	// irlint:ctx-root process-lifetime background job owns its own deadline
	return context.Background()
}
`,
			want: 0,
		},
		{
			name:     "Background in package main conforms",
			analyzer: "ctx-flow",
			path:     ModulePath + "/cmd/fixmain",
			src: `package main

import "context"

func main() {
	_ = context.Background()
}
`,
			want: 0,
		},
		// ---- goroutine-exit: firing ----
		{
			name:     "fire-and-forget goroutine flagged",
			analyzer: "goroutine-exit",
			path:     ModulePath + "/internal/fix",
			src: `package fix

func leak() {
	go func() {
		for {
		}
	}()
}
`,
			want:     1,
			contains: []string{"no provable join"},
		},
		{
			name:     "receive only inside select flagged",
			analyzer: "goroutine-exit",
			path:     ModulePath + "/internal/fix",
			src: `package fix

func racy(stop chan struct{}) int {
	done := make(chan int, 1)
	go func() { done <- 1 }()
	select {
	case v := <-done:
		return v
	case <-stop:
		return 0
	}
}
`,
			want:     1,
			contains: []string{"no provable join"},
		},
		{
			name:     "goroutine-exits annotation without condition flagged",
			analyzer: "goroutine-exit",
			path:     ModulePath + "/internal/fix",
			src: `package fix

func annotatedEmpty() {
	// irlint:goroutine-exits
	go func() {}()
}
`,
			want:     1,
			contains: []string{"needs a stated exit condition"},
		},
		// ---- goroutine-exit: silent ----
		{
			name:     "waitgroup join conforms",
			analyzer: "goroutine-exit",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "sync"

func joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}
`,
			want: 0,
		},
		{
			name:     "unconditional channel receive conforms",
			analyzer: "goroutine-exit",
			path:     ModulePath + "/internal/fix",
			src: `package fix

func collected() int {
	done := make(chan int, 1)
	go func() { done <- 1 }()
	return <-done
}
`,
			want: 0,
		},
		{
			name:     "named worker joined through summaries conforms",
			analyzer: "goroutine-exit",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "sync"

func worker(wg *sync.WaitGroup) { defer wg.Done() }

func joinAll(wg *sync.WaitGroup) { wg.Wait() }

func spawn() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	joinAll(&wg)
}
`,
			want: 0,
		},
		{
			name:     "annotated detached goroutine conforms",
			analyzer: "goroutine-exit",
			path:     ModulePath + "/internal/fix",
			src: `package fix

func detached() {
	// irlint:goroutine-exits exits when the buffered send completes; result may be abandoned
	go func() {}()
}
`,
			want: 0,
		},
		// ---- publish-freeze: firing ----
		{
			name:     "direct write after atomic store flagged",
			analyzer: "publish-freeze",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "sync/atomic"

type Gen struct{ n int }

type Store struct{ p atomic.Pointer[Gen] }

func (s *Store) swap(g *Gen) {
	s.p.Store(g)
	g.n = 1
}
`,
			want:     1,
			contains: []string{"after it was published"},
		},
		{
			name:     "write after publish helper flagged",
			analyzer: "publish-freeze",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "sync/atomic"

type Gen struct{ n int }

type Store struct{ p atomic.Pointer[Gen] }

func (s *Store) publish(g *Gen) { s.p.Store(g) }

func (s *Store) swap(g *Gen) {
	s.publish(g)
	g.n = 1
}
`,
			want:     1,
			contains: []string{"after it was published"},
		},
		{
			name:     "post-publish mutation through callee flagged",
			analyzer: "publish-freeze",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "sync/atomic"

type Gen struct{ n int }

type Store struct{ p atomic.Pointer[Gen] }

func bump(g *Gen) { g.n++ }

func (s *Store) swap(g *Gen) {
	s.p.Store(g)
	bump(g)
}
`,
			want:     1,
			contains: []string{"bump"},
		},
		// ---- publish-freeze: silent ----
		{
			name:     "build fully before publish conforms",
			analyzer: "publish-freeze",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "sync/atomic"

type Gen struct{ n int }

type Store struct{ p atomic.Pointer[Gen] }

func (s *Store) swap() {
	g := &Gen{}
	g.n = 1
	s.p.Store(g)
}
`,
			want: 0,
		},
		{
			name:     "post-publish reads conform",
			analyzer: "publish-freeze",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "sync/atomic"

type Gen struct{ n int }

type Store struct{ p atomic.Pointer[Gen] }

func size(g *Gen) int { return g.n }

func (s *Store) swap(g *Gen) int {
	s.p.Store(g)
	return size(g) + g.n
}
`,
			want: 0,
		},
		{
			name:     "freeze-ok escape hatch honored",
			analyzer: "publish-freeze",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "sync/atomic"

type Gen struct{ n int }

type Store struct{ p atomic.Pointer[Gen] }

func (s *Store) swap(g *Gen) {
	s.p.Store(g)
	g.n = 1 // lint:freeze-ok n is a stat never read through snapshots
}
`,
			want: 0,
		},
		// ---- metric-hygiene: firing ----
		{
			name:     "computed metric name flagged",
			analyzer: "metric-hygiene",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/obs"

func register(r *obs.Registry, suffix string) {
	r.Counter("tir_"+suffix, "help")
}
`,
			want:     1,
			contains: []string{"compile-time string constant"},
		},
		{
			name:     "malformed and unprefixed name flagged",
			analyzer: "metric-hygiene",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/obs"

func register(r *obs.Registry) {
	r.Gauge("Queries-Active", "help")
}
`,
			want:     2,
			contains: []string{"snake_case", "tir_ namespace prefix"},
		},
		{
			name:     "counter without _total flagged",
			analyzer: "metric-hygiene",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/obs"

func register(r *obs.Registry) {
	r.Counter("tir_queries", "help")
}
`,
			want:     1,
			contains: []string{"_total"},
		},
		{
			name:     "non-monotonic literal buckets flagged",
			analyzer: "metric-hygiene",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/obs"

func register(r *obs.Registry) {
	r.Histogram("tir_latency_seconds", "help", []float64{0.1, 0.5, 0.5, 1})
}
`,
			want:     1,
			contains: []string{"not strictly increasing"},
		},
		{
			name:     "non-monotonic helper buckets resolved through graph",
			analyzer: "metric-hygiene",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/obs"

func buckets() []float64 { return []float64{1, 3, 2} }

func register(r *obs.Registry) {
	r.Histogram("tir_sizes", "help", buckets())
}
`,
			want:     1,
			contains: []string{"returned by buckets"},
		},
		{
			name:     "duplicate family registration flagged once",
			analyzer: "metric-hygiene",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/obs"

func registerA(r *obs.Registry) {
	r.Counter("tir_events_total", "help")
}

func registerB(r *obs.Registry) {
	r.Counter("tir_events_total", "other help")
}
`,
			want:     1,
			contains: []string{"already registered"},
		},
		// ---- metric-hygiene: silent ----
		{
			name:     "well-formed families conform",
			analyzer: "metric-hygiene",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/obs"

func register(r *obs.Registry) {
	r.Counter("tir_queries_total", "help")
	r.Gauge("tir_inflight", "help")
	r.CounterFunc("tir_slow_total", "help", func() float64 { return 0 })
}
`,
			want: 0,
		},
		{
			name:     "monotonic helper buckets conform",
			analyzer: "metric-hygiene",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/obs"

func buckets() []float64 { return []float64{0.001, 0.01, 0.1, 1, 10} }

func register(r *obs.Registry) {
	r.Histogram("tir_latency_seconds", "help", buckets())
}
`,
			want: 0,
		},
		{
			name:     "metric-ok escape hatch honored",
			analyzer: "metric-hygiene",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/obs"

func register(r *obs.Registry) {
	// lint:metric-ok bridging a foreign exporter that owns this name
	r.Gauge("process_start_time_seconds", "help")
}
`,
			want: 0,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := checkFixture(t, tc.path, tc.src)
			diags := runV3(t, tc.analyzer, p)
			if len(diags) != tc.want {
				t.Fatalf("got %d finding(s), want %d:\n%s", len(diags), tc.want, diagList(diags))
			}
			all := diagList(diags)
			for _, sub := range tc.contains {
				if !strings.Contains(all, sub) {
					t.Errorf("findings lack %q:\n%s", sub, all)
				}
			}
			for _, d := range diags {
				if d.Pos.Line <= 0 || d.Pos.Filename == "" {
					t.Errorf("finding lacks file:line position: %+v", d)
				}
			}
		})
	}
}

// TestSelfLint runs the full suite over irlint's own source tree — the
// linter must hold itself to the contracts it enforces on the rest of
// the repository.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the linter packages")
	}
	pkgs, err := Load("../../..", []string{"./internal/tools/irlint/..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if diags := Run(pkgs, Analyzers()); len(diags) > 0 {
		t.Errorf("linter source not lint-clean:\n%s", diagList(diags))
	}
}
