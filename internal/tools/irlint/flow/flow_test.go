package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// buildUnit type-checks one source string (package p) against the real
// standard library and wraps it as a graph unit.
func buildUnit(t *testing.T, src string) *Unit {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Unit{Path: "p", Fset: fset, Files: []*ast.File{f}, Info: info, Pkg: pkg}
}

// fnByName finds a graph node by its declared name.
func fnByName(t *testing.T, g *Graph, name string) *Func {
	t.Helper()
	for _, fn := range g.Funcs() {
		if fn.Obj.Name() == name {
			return fn
		}
	}
	t.Fatalf("function %q not in graph", name)
	return nil
}

func TestGraphCalleesAndCallers(t *testing.T) {
	u := buildUnit(t, `package p

type S struct{ n int }

func (s *S) Bump() { s.n++ }

func helper() {}

func top(s *S) {
	helper()
	s.Bump()
	f := helper
	f() // dynamic: no static callee
	go func() { helper() }() // closure call attributed to top
}
`)
	g := Build([]*Unit{u})
	top := fnByName(t, g, "top")
	var names []string
	dynamic := 0
	for _, c := range top.Calls {
		if c.Callee == nil {
			dynamic++
			continue
		}
		names = append(names, c.Callee.Name())
	}
	// helper, Bump, the closure-attributed helper; f() and the go-stmt's
	// func-literal invocation are dynamic.
	want := map[string]int{"helper": 2, "Bump": 1}
	got := map[string]int{}
	for _, n := range names {
		got[n]++
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("callee %s: got %d calls, want %d (all: %v)", k, got[k], v, names)
		}
	}
	if dynamic != 2 {
		t.Errorf("dynamic call sites = %d, want 2", dynamic)
	}

	helper := fnByName(t, g, "helper")
	if n := len(g.Callers(helper.Obj)); n != 2 {
		t.Errorf("Callers(helper) = %d, want 2", n)
	}
}

func TestReachable(t *testing.T) {
	u := buildUnit(t, `package p

func a() { b() }
func b() { c() }
func c() {}
func island() {}
`)
	g := Build([]*Unit{u})
	a := fnByName(t, g, "a")
	reach := g.Reachable(a.Obj)
	for _, name := range []string{"a", "b", "c"} {
		if !reach[fnByName(t, g, name).Obj] {
			t.Errorf("%s not reachable from a", name)
		}
	}
	if reach[fnByName(t, g, "island").Obj] {
		t.Errorf("island wrongly reachable from a")
	}
}

func TestSummariesDirectEffects(t *testing.T) {
	u := buildUnit(t, `package p

import (
	"sync"
	"sync/atomic"
)

type G struct{ n int }
type S struct{ p atomic.Pointer[G] }

func mutate(g *G) { g.n = 1 }

func publish(s *S, g *G) { s.p.Store(g) }

func join(wg *sync.WaitGroup) { wg.Wait() }

func worker(wg *sync.WaitGroup) { defer wg.Done() }

func reads(g *G) int { return g.n }

func appends(xs []int) { _ = append(xs, 1) }

func copies(dst, src []byte) { copy(dst, src) }
`)
	g := Build([]*Unit{u})
	s := g.Summaries()

	cases := []struct {
		fn    string
		input int
		want  InputSummary
	}{
		{"mutate", 0, InputSummary{Mutates: true}},
		{"publish", 1, InputSummary{Publishes: true}},
		{"publish", 0, InputSummary{Mutates: true}}, // Store writes the holder
		{"join", 0, InputSummary{Waits: true}},
		{"worker", 0, InputSummary{Dones: true}},
		{"reads", 0, InputSummary{}},
		{"appends", 0, InputSummary{Mutates: true}},
		{"copies", 0, InputSummary{Mutates: true}},
		{"copies", 1, InputSummary{}},
	}
	for _, c := range cases {
		got := s.Input(fnByName(t, g, c.fn).Obj, c.input)
		if got != c.want {
			t.Errorf("%s input %d: got %+v, want %+v", c.fn, c.input, got, c.want)
		}
	}
}

func TestSummariesTransitiveAndAliases(t *testing.T) {
	u := buildUnit(t, `package p

import "sync"

type G struct{ n int }
type Holder struct{ g *G }

func leafMutate(g *G) { g.n++ }

func viaCall(g *G) { leafMutate(g) }

func viaAlias(h *Holder) {
	local := h.g
	local.n = 2
}

func viaMethodRecv(h *Holder) { leafMutate(h.g) }

func joinHelper(wg *sync.WaitGroup) { wg.Wait() }

func outerJoin(wg *sync.WaitGroup) { joinHelper(wg) }
`)
	g := Build([]*Unit{u})
	s := g.Summaries()

	cases := []struct {
		fn   string
		want InputSummary
	}{
		{"viaCall", InputSummary{Mutates: true}},
		{"viaAlias", InputSummary{Mutates: true}},
		{"viaMethodRecv", InputSummary{Mutates: true}},
		{"outerJoin", InputSummary{Waits: true}},
	}
	for _, c := range cases {
		got := s.Input(fnByName(t, g, c.fn).Obj, 0)
		if got != c.want {
			t.Errorf("%s input 0: got %+v, want %+v", c.fn, got, c.want)
		}
	}
}

func TestArgInputsReceiverMapping(t *testing.T) {
	u := buildUnit(t, `package p

type S struct{ n int }

func (s *S) Set(v int) { s.n = v }

func use(s *S) { s.Set(3) }
`)
	g := Build([]*Unit{u})
	use := fnByName(t, g, "use")
	var call *Call
	for _, c := range use.Calls {
		if c.Callee != nil && c.Callee.Name() == "Set" {
			call = c
		}
	}
	if call == nil {
		t.Fatal("no Set call found")
	}
	ais := ArgInputs(u.Info, call.Site, call.Callee)
	if len(ais) != 2 {
		t.Fatalf("ArgInputs = %d entries, want 2", len(ais))
	}
	if ais[0].Input != 0 {
		t.Errorf("receiver mapped to input %d, want 0", ais[0].Input)
	}
	if id := BaseIdent(ais[0].Expr); id == nil || id.Name != "s" {
		t.Errorf("receiver expr base = %v, want s", id)
	}
	if ais[1].Input != 1 {
		t.Errorf("arg mapped to input %d, want 1", ais[1].Input)
	}
}

func TestBaseIdent(t *testing.T) {
	u := buildUnit(t, `package p

type Inner struct{ m map[string]int }
type Outer struct{ in *Inner }

func f(o *Outer, xs []int) {
	_ = o.in.m["k"]
	_ = &xs[0]
	_ = (*o).in
}
`)
	f := u.Files[0]
	var bases []string
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range as.Rhs {
			if id := BaseIdent(rhs); id != nil {
				bases = append(bases, id.Name)
			}
		}
		return true
	})
	want := []string{"o", "xs", "o"}
	if len(bases) != len(want) {
		t.Fatalf("bases = %v, want %v", bases, want)
	}
	for i := range want {
		if bases[i] != want[i] {
			t.Errorf("base[%d] = %s, want %s", i, bases[i], want[i])
		}
	}
}
