package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// InputSummary records what a function may do to one of its inputs
// (receiver or parameter), or to memory reachable from it, directly or
// through further calls. Summaries over-approximate: "may", not "must".
type InputSummary struct {
	// Mutates: the function may write a field, element or pointee
	// reachable from the input (assignment, copy-into, append-into, or
	// passing it to a mutating input of another function).
	Mutates bool
	// Publishes: the function may store the input into an
	// sync/atomic.Pointer or atomic.Value — after which the publish-freeze
	// contract applies to the value.
	Publishes bool
	// Waits: the function may call Wait on the input (a sync.WaitGroup
	// join point).
	Waits bool
	// Dones: the function may call Done on the input (a sync.WaitGroup
	// completion mark, typically deferred by a worker body).
	Dones bool
}

func (a InputSummary) or(b InputSummary) InputSummary {
	return InputSummary{
		Mutates:   a.Mutates || b.Mutates,
		Publishes: a.Publishes || b.Publishes,
		Waits:     a.Waits || b.Waits,
		Dones:     a.Dones || b.Dones,
	}
}

// Summaries holds the per-function input summaries for a graph,
// computed as a fixpoint: effects propagate from callee inputs to the
// caller arguments that flow into them, until nothing changes. Unknown
// callees (no body in the program) are assumed effect-free except for
// the recognized sync/atomic and sync.WaitGroup methods — a documented
// soundness limit, not an accident.
type Summaries struct {
	g      *Graph
	byFunc map[*types.Func][]InputSummary
}

// Summaries computes (once) and returns the graph's input summaries.
func (g *Graph) Summaries() *Summaries {
	if g.summaries != nil {
		return g.summaries
	}
	s := &Summaries{g: g, byFunc: make(map[*types.Func][]InputSummary)}
	for _, fn := range g.order {
		s.byFunc[fn.Obj] = make([]InputSummary, len(Inputs(fn.Obj)))
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.order {
			if s.update(fn) {
				changed = true
			}
		}
	}
	g.summaries = s
	return s
}

// Input returns the summary of a function's i-th input (receiver first
// when present). The zero summary covers out-of-range queries and
// functions outside the program.
func (s *Summaries) Input(obj *types.Func, i int) InputSummary {
	row := s.byFunc[obj]
	if i < 0 || i >= len(row) {
		return InputSummary{}
	}
	return row[i]
}

// update recomputes one function's summary row in place and reports
// whether any bit turned on.
func (s *Summaries) update(fn *Func) bool {
	row := s.byFunc[fn.Obj]
	inputs := Inputs(fn.Obj)
	idx := make(map[*types.Var]int, len(inputs))
	for i, v := range inputs {
		idx[v] = i
	}
	aliases := fn.aliasMap(idx)
	inputOf := func(e ast.Expr) int {
		v := BaseVar(fn.Unit.Info, e)
		if v == nil {
			return -1
		}
		if i, ok := aliases[v]; ok {
			return i
		}
		return -1
	}

	changed := false
	mark := func(i int, eff InputSummary) {
		if i < 0 || i >= len(row) {
			return
		}
		next := row[i].or(eff)
		if next != row[i] {
			row[i] = next
			changed = true
		}
	}

	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if WritesThrough(lhs) {
					mark(inputOf(lhs), InputSummary{Mutates: true})
				}
			}
			// x = append(y, ...) may write into y's shared backing array.
			for _, rhs := range st.Rhs {
				if call, ok := unparen(rhs).(*ast.CallExpr); ok && IsBuiltin(fn.Unit.Info, call, "append") && len(call.Args) > 0 {
					mark(inputOf(call.Args[0]), InputSummary{Mutates: true})
				}
			}
		case *ast.IncDecStmt:
			if WritesThrough(st.X) {
				mark(inputOf(st.X), InputSummary{Mutates: true})
			}
		case *ast.CallExpr:
			s.applyCall(fn, st, inputOf, mark)
		}
		return true
	})
	return changed
}

// applyCall folds one call site's effects into the caller's summary row.
func (s *Summaries) applyCall(fn *Func, call *ast.CallExpr, inputOf func(ast.Expr) int, mark func(int, InputSummary)) {
	info := fn.Unit.Info
	if IsBuiltin(info, call, "copy") && len(call.Args) > 0 {
		mark(inputOf(call.Args[0]), InputSummary{Mutates: true})
		return
	}
	callee := Callee(info, call)
	if callee == nil {
		return
	}
	// Recognized external effects: atomic publication and WaitGroup
	// join/completion.
	if arg := AtomicStoreValue(info, call, callee); arg != nil {
		mark(inputOf(arg), InputSummary{Publishes: true})
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			mark(inputOf(sel.X), InputSummary{Mutates: true})
		}
	}
	if recv := waitGroupRecv(info, call, callee); recv != nil {
		switch callee.Name() {
		case "Wait":
			mark(inputOf(recv), InputSummary{Waits: true})
		case "Done":
			mark(inputOf(recv), InputSummary{Dones: true})
		}
	}
	// Transitive effects through in-program callees.
	if s.g.FuncOf(callee) == nil {
		return
	}
	calleeRow := s.byFunc[callee]
	for _, ai := range ArgInputs(info, call, callee) {
		if ai.Input < 0 || ai.Input >= len(calleeRow) {
			continue
		}
		if eff := calleeRow[ai.Input]; eff != (InputSummary{}) {
			mark(inputOf(ai.Expr), eff)
		}
	}
}

// AtomicStoreValue recognizes the publication sinks of the sync/atomic
// package: Pointer/Value .Store(v) and .Swap(v), and
// .CompareAndSwap(old, new). It returns the expression being published,
// or nil.
func AtomicStoreValue(info *types.Info, call *ast.CallExpr, callee *types.Func) ast.Expr {
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
		return nil
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	if !IsNamed(sig.Recv().Type(), "sync/atomic", "Pointer") && !IsNamed(sig.Recv().Type(), "sync/atomic", "Value") {
		return nil
	}
	switch callee.Name() {
	case "Store", "Swap":
		if len(call.Args) == 1 {
			return call.Args[0]
		}
	case "CompareAndSwap":
		if len(call.Args) == 2 {
			return call.Args[1]
		}
	}
	return nil
}

// waitGroupRecv returns the receiver expression of a sync.WaitGroup
// method call, or nil.
func waitGroupRecv(info *types.Info, call *ast.CallExpr, callee *types.Func) ast.Expr {
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return nil
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !IsNamed(sig.Recv().Type(), "sync", "WaitGroup") {
		return nil
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// WritesThrough reports whether an assignment to e writes memory
// reachable from e's base variable (field, element or pointee) rather
// than rebinding the variable itself.
func WritesThrough(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.IndexListExpr, *ast.StarExpr:
		return BaseIdent(e) != nil
	case *ast.ParenExpr:
		return WritesThrough(x.X)
	}
	return false
}

// aliasMap computes which locals alias which inputs: a variable assigned
// (directly or through selection/indexing) from an input reaches memory
// reachable from that input. The map is a fixpoint over the body's
// assignments; inputs map to themselves.
func (fn *Func) aliasMap(inputs map[*types.Var]int) map[*types.Var]int {
	info := fn.Unit.Info
	aliases := make(map[*types.Var]int, len(inputs))
	for v, i := range inputs {
		aliases[v] = i
	}
	resolve := func(e ast.Expr) (int, bool) {
		v := BaseVar(info, e)
		if v == nil {
			return 0, false
		}
		i, ok := aliases[v]
		return i, ok
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			st, ok := n.(*ast.AssignStmt)
			if !ok || len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for k, lhs := range st.Lhs {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				v, ok := obj.(*types.Var)
				if !ok {
					continue
				}
				if _, have := aliases[v]; have {
					continue
				}
				if i, ok := resolve(st.Rhs[k]); ok {
					aliases[v] = i
					changed = true
				}
			}
			return true
		})
	}
	return aliases
}

// AliasedVars returns every variable in fn's body that (transitively)
// aliases v — v itself included — under the same base-identifier
// over-approximation the summaries use. Analyzers use this to ask "does
// this write reach memory published a few lines up?".
func (fn *Func) AliasedVars(v *types.Var) map[*types.Var]bool {
	aliases := fn.aliasMap(map[*types.Var]int{v: 0})
	out := make(map[*types.Var]bool, len(aliases))
	for a := range aliases {
		out[a] = true
	}
	return out
}

// Position is a convenience for diagnostics built on graph nodes.
func (fn *Func) Position(pos token.Pos) token.Position {
	return fn.Unit.Fset.Position(pos)
}

// IsBuiltin reports whether call invokes the named built-in.
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := info.Uses[id].(*types.Builtin)
	return isB
}
