// Package flow is irlint's whole-program substrate: a static call graph
// over every loaded module package, plus per-function input summaries
// (may-mutate, may-publish, may-wait, may-done) computed as a fixpoint
// over that graph. The v3 analyzers — ctx-flow, goroutine-exit,
// publish-freeze, metric-hygiene — are thin clients of this package:
// they ask "who calls whom", "does this callee write through its
// argument", "does this helper join the WaitGroup I passed it", and the
// substrate answers from one shared graph instead of each analyzer
// re-deriving its own ad-hoc dataflow.
//
// The graph is deliberately modest: call edges are static (calls through
// function values and interface methods resolve to the method object but
// not to implementations), and the summaries over-approximate by
// treating any value whose base identifier aliases an input as reachable
// from that input. Both choices keep the substrate stdlib-only and fast;
// LINTING.md documents the resulting blind spots per analyzer.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Unit is one loaded, type-checked package presented to the graph
// builder — a dependency-free mirror of the loader's package shape.
type Unit struct {
	// Path is the import path.
	Path string
	// Fset positions every file of the unit.
	Fset *token.FileSet
	// Files holds the parsed non-test sources.
	Files []*ast.File
	// Info carries the type-checking results.
	Info *types.Info
	// Pkg is the checked package object.
	Pkg *types.Package
}

// Func is one function or method declaration with a body, plus every
// static call site inside it. Calls inside nested function literals are
// attributed to the enclosing declaration: closures execute with the
// declaration's captured state, so for reachability and summaries they
// belong to it.
type Func struct {
	// Obj is the declared function object (the graph key).
	Obj *types.Func
	// Decl is the syntax, body included.
	Decl *ast.FuncDecl
	// Unit is the package the declaration lives in.
	Unit *Unit
	// Calls lists every call site in the body, in source order.
	Calls []*Call
}

// Call is one call site inside a Func.
type Call struct {
	// Site is the call expression.
	Site *ast.CallExpr
	// Callee is the statically resolved target: a declared function, a
	// method (through its selection), or nil for calls through function
	// values, built-ins and type conversions.
	Callee *types.Func
	// Caller is the function the site appears in.
	Caller *Func
}

// Graph is the whole-program call graph over a set of units.
type Graph struct {
	funcs   map[*types.Func]*Func
	order   []*Func
	callers map[*types.Func][]*Call

	summaries *Summaries // built lazily by Summaries()
}

// Build constructs the call graph for the given units. Units with
// missing type information contribute no nodes.
func Build(units []*Unit) *Graph {
	g := &Graph{
		funcs:   make(map[*types.Func]*Func),
		callers: make(map[*types.Func][]*Call),
	}
	for _, u := range units {
		if u.Info == nil {
			continue
		}
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := u.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				fn := &Func{Obj: obj, Decl: fd, Unit: u}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn.Calls = append(fn.Calls, &Call{
						Site:   call,
						Callee: Callee(u.Info, call),
						Caller: fn,
					})
					return true
				})
				g.funcs[obj] = fn
				g.order = append(g.order, fn)
			}
		}
	}
	for _, fn := range g.order {
		for _, c := range fn.Calls {
			if c.Callee != nil {
				g.callers[c.Callee] = append(g.callers[c.Callee], c)
			}
		}
	}
	return g
}

// Callee statically resolves the target of a call: a plain function, a
// package-qualified function, or a method reached through a selection
// (including interface methods). It returns nil for calls through
// function-typed values, built-ins and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// FuncOf returns the graph node for a declared function, or nil when the
// function has no body in the program (imported, interface method).
func (g *Graph) FuncOf(obj *types.Func) *Func {
	if obj == nil {
		return nil
	}
	return g.funcs[obj]
}

// Funcs returns every graph node in declaration order.
func (g *Graph) Funcs() []*Func { return g.order }

// Callers returns every in-program call site that statically resolves to
// obj.
func (g *Graph) Callers(obj *types.Func) []*Call { return g.callers[obj] }

// Reachable returns the set of in-program functions reachable from the
// given roots along static call edges, roots included.
func (g *Graph) Reachable(roots ...*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var stack []*Func
	for _, r := range roots {
		if fn := g.FuncOf(r); fn != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, fn)
		}
	}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range fn.Calls {
			if c.Callee == nil || seen[c.Callee] {
				continue
			}
			seen[c.Callee] = true
			if next := g.FuncOf(c.Callee); next != nil {
				stack = append(stack, next)
			}
		}
	}
	return seen
}

// Inputs returns a function's inputs — receiver first when present, then
// the declared parameters — the positions the summaries index.
func Inputs(obj *types.Func) []*types.Var {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Var
	if recv := sig.Recv(); recv != nil {
		out = append(out, recv)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// ArgInputs maps a call site's expressions onto the callee's input
// positions: the receiver expression (for method calls through a
// selection) pairs with input 0 and the arguments follow; for plain
// function calls the arguments map one-to-one. Surplus variadic
// arguments collapse onto the last input. The result is a parallel
// slice of (expr, input index) pairs.
func ArgInputs(info *types.Info, call *ast.CallExpr, callee *types.Func) []ArgInput {
	if callee == nil {
		return nil
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []ArgInput
	base := 0
	if sig.Recv() != nil {
		// Method call: the receiver expression is input 0 when the call
		// goes through a selection (x.M(...)). In the method-expression
		// form (T.M(x, ...)) the receiver arrives as the first argument,
		// which the plain base=0 mapping below already handles.
		if fun, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if _, isSel := info.Selections[fun]; isSel {
				out = append(out, ArgInput{Expr: fun.X, Input: 0})
				base = 1
			}
		}
	}
	nInputs := len(Inputs(callee))
	for i, arg := range call.Args {
		idx := base + i
		if idx >= nInputs {
			idx = nInputs - 1 // variadic tail
		}
		if idx < 0 {
			continue
		}
		out = append(out, ArgInput{Expr: arg, Input: idx})
	}
	return out
}

// ArgInput pairs one call-site expression with the callee input position
// it flows into.
type ArgInput struct {
	Expr  ast.Expr
	Input int
}

// BaseIdent peels selectors, indexing, dereferences, address-taking,
// slicing and parentheses off an expression and returns the identifier
// at its base, or nil: the variable through which the expression's
// memory is reached. BaseIdent(&s.m[i]) == s.
func BaseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// BaseVar resolves an expression's base identifier to its variable
// object, or nil.
func BaseVar(info *types.Info, e ast.Expr) *types.Var {
	id := BaseIdent(e)
	if id == nil {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// IsNamed reports whether t (pointers unwrapped) is the named type
// pkgPath.name. Generic instantiations (atomic.Pointer[T]) match their
// origin name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
