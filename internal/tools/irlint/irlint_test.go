package irlint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// modelStub is a minimal stand-in for repro/internal/model, enough for
// fixtures to type-check without loading the real repository.
const modelStub = `package model

type Timestamp = int64

type ObjectID uint32

type Interval struct {
	Start Timestamp
	End   Timestamp
}

func NewInterval(start, end Timestamp) Interval { return Interval{Start: start, End: end} }

func Canon(a, b Timestamp) Interval { return Interval{Start: a, End: b}  }
`

// postingsStub stands in for repro/internal/postings: the shared postings
// storage whose accessor results the alias-mutation analyzer protects.
const postingsStub = `package postings

type Posting struct{ ID uint32 }

type List []Posting

func (l *List) Append(p Posting) { *l = append(*l, p) }

func (l List) Sort() {}

func (l List) Clone() List { out := make(List, len(l)); copy(out, l); return out }

func Shared() List { return nil }
`

// tifStub stands in for repro/internal/tif with its aliasing accessor.
const tifStub = `package tif

import "repro/internal/postings"

type Index struct{ lists []postings.List }

func (ix *Index) List(e int) postings.List { return ix.lists[e] }
`

// domainStub stands in for repro/internal/domain: every grid-value
// producer the domain-bounds analyzer tracks.
const domainStub = `package domain

type Domain struct{ M int }

func (d Domain) Cells() uint32 { return uint32(1) << uint(d.M) }

func (d Domain) Disc(t int64) uint32 { return 0 }

func (d Domain) DiscInterval(s, e int64) (lo, hi uint32) { return 0, 0 }

func (d Domain) Prefix(level int, v uint32) uint32 { return v }

func (d Domain) PartitionExtent(level int, j uint32) (lo, hi uint32) { return 0, 0 }
`

// obsStub stands in for repro/internal/obs: the trace recorder whose
// StartStage spans the span-end analyzer keeps deferred.
const obsStub = `package obs

type Stage uint8

const (
	StagePlan Stage = iota
	StagePostings
)

type Trace struct{}

type StageTimer struct{}

func (t *Trace) StartStage(s Stage) StageTimer { return StageTimer{} }

func (st StageTimer) End() {}

type Label struct{ Key, Value string }

type Counter struct{}

func (c *Counter) Inc() {}

type Gauge struct{}

type Histogram struct{}

type Registry struct{}

func (r *Registry) Counter(name, help string, labels ...Label) *Counter { return nil }

func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge { return nil }

func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return nil
}

func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {}

func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {}
`

// reproStub stands in for the root package with a three-method universe,
// so method-exhaustiveness fixtures stay readable.
const reproStub = `package temporalir

type Method string

const (
	TIF        Method = "tif"
	TIFSlicing Method = "tif+slicing"
	IRHintPerf Method = "irhint/perf"
)
`

// fixtureStubs are the stand-in packages registered for every fixture,
// in dependency order.
var fixtureStubs = []struct{ path, name, src string }{
	{modelPath, "model.go", modelStub},
	{postingsPath, "postings.go", postingsStub},
	{tifPath, "tif.go", tifStub},
	{domainPath, "domain.go", domainStub},
	{obsPath, "obs.go", obsStub},
	{ModulePath, "repro.go", reproStub},
}

// checkFixture type-checks one fixture package (import path, source) with
// the stub packages available, returning the loaded Package.
func checkFixture(t *testing.T, path, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()

	parse := func(name, source string) *ast.File {
		f, err := parser.ParseFile(fset, name, source, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		return f
	}

	newInfo := func() *types.Info {
		return &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
	}

	imp := &moduleImporter{
		mod: make(map[string]*types.Package),
		std: importer.ForCompiler(fset, "source", nil),
	}
	cfg := types.Config{Importer: imp}

	for _, stub := range fixtureStubs {
		if stub.path == path {
			continue // the fixture replaces this stub wholesale
		}
		stubFile := parse(stub.name, stub.src)
		stubPkg, err := cfg.Check(stub.path, fset, []*ast.File{stubFile}, newInfo())
		if err != nil {
			t.Fatalf("check stub %s: %v", stub.path, err)
		}
		imp.mod[stub.path] = stubPkg
	}

	file := parse("fixture.go", src)
	info := newInfo()
	tpkg, err := cfg.Check(path, fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("check fixture: %v", err)
	}
	return &Package{Path: path, Fset: fset, Files: []*ast.File{file}, Info: info, Types: tpkg}
}

// analyzerByName fetches one analyzer from the suite.
func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer %q", name)
	return nil
}

func TestAnalyzers(t *testing.T) {
	cases := []struct {
		name     string // test case
		analyzer string
		path     string // fixture import path
		src      string
		want     int      // number of findings
		contains []string // substrings expected in messages
	}{
		{
			name:     "interval literal flagged",
			analyzer: "interval-canon",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/model"

func bad() model.Interval { return model.Interval{Start: 5, End: 1} }
`,
			want:     1,
			contains: []string{"NewInterval"},
		},
		{
			name:     "constructor and zero literal conform",
			analyzer: "interval-canon",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/model"

func good() model.Interval {
	var zero model.Interval
	_ = zero
	_ = model.Interval{}
	return model.NewInterval(1, 5)
}
`,
			want: 0,
		},
		{
			name:     "interval escape hatch honored",
			analyzer: "interval-canon",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/model"

// lint:interval-ok sentinel by design
var sentinel = model.Interval{Start: 9, End: 0}
`,
			want: 0,
		},
		{
			name:     "literal inside model package conforms",
			analyzer: "interval-canon",
			path:     modelPath,
			src: `package model

type Timestamp = int64
type Interval struct{ Start, End Timestamp }

func mk() Interval { return Interval{Start: 1, End: 2} }
`,
			want: 0,
		},
		{
			name:     "map range into ordered sink flagged",
			analyzer: "map-order",
			path:     ModulePath + "/internal/fix",
			src: `package fix

func bad(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
`,
			want:     1,
			contains: []string{"iteration order"},
		},
		{
			name:     "map range sorted afterwards conforms",
			analyzer: "map-order",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "sort"

func good(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
`,
			want: 0,
		},
		{
			name:     "map range with escape hatch conforms",
			analyzer: "map-order",
			path:     ModulePath + "/internal/fix",
			src: `package fix

func good(m map[int]string) []string {
	var out []string
	// lint:map-order-ok order established by caller
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
`,
			want: 0,
		},
		{
			name:     "slice range conforms",
			analyzer: "map-order",
			path:     ModulePath + "/internal/fix",
			src: `package fix

func good(s []string) []string {
	var out []string
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
`,
			want: 0,
		},
		{
			name:     "map range appending to loop-local conforms",
			analyzer: "map-order",
			path:     ModulePath + "/internal/fix",
			src: `package fix

func good(m map[int][]string) int {
	n := 0
	for _, v := range m {
		var local []string
		local = append(local, v...)
		n += len(local)
	}
	return n
}
`,
			want: 0,
		},
		{
			name:     "bare panic flagged",
			analyzer: "panic-policy",
			path:     ModulePath + "/internal/fix",
			src: `package fix

func bad() {
	panic("boom")
}
`,
			want:     1,
			contains: []string{"lint:panic-ok"},
		},
		{
			name:     "annotated panic conforms",
			analyzer: "panic-policy",
			path:     ModulePath + "/internal/fix",
			src: `package fix

func good(n int) {
	if n < 0 {
		// lint:panic-ok documented precondition
		panic("n must be non-negative")
	}
}
`,
			want: 0,
		},
		{
			name:     "same-line panic annotation conforms",
			analyzer: "panic-policy",
			path:     ModulePath + "/internal/fix",
			src: `package fix

func good(err error) {
	if err != nil {
		panic(err) // lint:panic-ok cannot fail
	}
}
`,
			want: 0,
		},
		{
			name:     "unaccounted dynamic field flagged",
			analyzer: "size-accounting",
			path:     ModulePath + "/internal/tif",
			src: `package tif

type Index struct {
	lists [][]uint32
	extra []byte
	live  int
}

func (ix *Index) SizeBytes() int64 {
	var total int64
	for e := range ix.lists {
		total += int64(cap(ix.lists[e])) * 4
	}
	return total
}
`,
			want:     1,
			contains: []string{"extra"},
		},
		{
			name:     "helper-accounted fields conform",
			analyzer: "size-accounting",
			path:     ModulePath + "/internal/tif",
			src: `package tif

type Index struct {
	lists [][]uint32
	extra []byte
	live  int
}

func (ix *Index) SizeBytes() int64 { return listBytes(ix.lists) + extraBytes(ix) }

func listBytes(l [][]uint32) int64 { return int64(len(l)) }

func extraBytes(ix *Index) int64 { return int64(cap(ix.extra)) }
`,
			want: 0,
		},
		{
			name:     "size escape hatch honored",
			analyzer: "size-accounting",
			path:     ModulePath + "/internal/tif",
			src: `package tif

type Index struct {
	lists   [][]uint32
	scratch []byte // lint:size-ok transient buffer, not resident index state
}

func (ix *Index) SizeBytes() int64 { return int64(len(ix.lists)) * 24 }
`,
			want: 0,
		},
		{
			name:     "size accounting ignores non-index packages",
			analyzer: "size-accounting",
			path:     ModulePath + "/internal/fix",
			src: `package fix

type Index struct {
	lists [][]uint32
}

func (ix *Index) SizeBytes() int64 { return 0 }
`,
			want: 0,
		},
		{
			name:     "undocumented exported symbols flagged",
			analyzer: "doc-exported",
			path:     modelPath,
			src: `package model

type Exposed struct{}

func Helper() {}

func (e Exposed) Method() {}
`,
			want:     3,
			contains: []string{"Exposed", "Helper", "Method"},
		},
		{
			name:     "documented and unexported symbols conform",
			analyzer: "doc-exported",
			path:     modelPath,
			src: `package model

// Exposed is documented.
type Exposed struct{}

// Helper is documented.
func Helper() {}

func hidden() {}
`,
			want: 0,
		},
		{
			name:     "doc rule skips other internal packages",
			analyzer: "doc-exported",
			path:     ModulePath + "/internal/fix",
			src: `package fix

func Undocumented() {}
`,
			want: 0,
		},
		{
			name:     "guarded field read without lock flagged",
			analyzer: "lock-guard",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "sync"

type Store struct {
	mu sync.RWMutex
	// irlint:guarded-by mu
	data map[int]int
}

func (s *Store) Unlocked() int { return len(s.data) }
`,
			want:     1,
			contains: []string{"Store.data", "read"},
		},
		{
			name:     "guarded field write under read lock flagged",
			analyzer: "lock-guard",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "sync"

type Store struct {
	mu sync.RWMutex
	// irlint:guarded-by mu
	data map[int]int
}

func (s *Store) Weak(k, v int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.data[k] = v
}
`,
			want:     1,
			contains: []string{"write", "mu.Lock"},
		},
		{
			name:     "locked accesses and locked-contract helper conform",
			analyzer: "lock-guard",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "sync"

type Store struct {
	mu sync.RWMutex
	// irlint:guarded-by mu
	data map[int]int
}

func (s *Store) Read() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

func (s *Store) Write(k, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[k] = v
}

func (s *Store) ScopedRead() int {
	s.mu.RLock()
	n := len(s.data)
	s.mu.RUnlock()
	return n
}

// helper requires the caller to hold mu.
//
// irlint:locked mu
func (s *Store) helper() int { return len(s.data) }
`,
			want: 0,
		},
		{
			name:     "lock-guard escape hatch honored",
			analyzer: "lock-guard",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "sync"

type Store struct {
	mu sync.RWMutex
	// irlint:guarded-by mu
	data map[int]int
}

func (s *Store) Snapshot() int {
	// lint:guard-ok single-threaded setup phase, no concurrency yet
	return len(s.data)
}
`,
			want: 0,
		},
		{
			// The executor pattern of the root exec.go: the batch entry
			// point takes RLock, reads guarded fields to snapshot a view,
			// and fans work out through worker closures textually inside
			// the locked region. The textual-order replay treats those
			// closure-body accesses as lock-held — the lock genuinely
			// outlives the workers because the fan-out joins before the
			// deferred unlock runs.
			name:     "executor fan-out closure inside locked region conforms",
			analyzer: "lock-guard",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "sync"

type Engine struct {
	mu sync.RWMutex
	// irlint:guarded-by mu
	data map[int]int
	// irlint:guarded-by mu
	pool *Pool
}

type Pool struct{ workers int }

func (p *Pool) Map(n int, fn func(i int)) {
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func() { defer wg.Done(); fn(0) }()
	}
	wg.Wait()
}

func (e *Engine) SetPool(p *Pool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pool = p
}

func (e *Engine) Batch(n int) []int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]int, n)
	e.pool.Map(n, func(i int) {
		out[i] = e.data[i]
	})
	return out
}
`,
			want: 0,
		},
		{
			name:     "fan-out closure touching guarded state without lock flagged",
			analyzer: "lock-guard",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "sync"

type Engine struct {
	mu sync.RWMutex
	// irlint:guarded-by mu
	data map[int]int
}

func (e *Engine) BadBatch(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = e.data[i]
		}(i)
	}
	wg.Wait()
	return out
}
`,
			want:     1,
			contains: []string{"Engine.data"},
		},
		{
			name:     "guarded-by naming a missing mutex flagged",
			analyzer: "lock-guard",
			path:     ModulePath + "/internal/fix",
			src: `package fix

type Broken struct {
	// irlint:guarded-by lock
	data int
}
`,
			want:     1,
			contains: []string{"no sync.Mutex"},
		},
		{
			name:     "snapshot-via field read outside accessor flagged",
			analyzer: "lock-guard",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "sync/atomic"

type Gen struct{ n int }

type Store struct {
	// irlint:snapshot-via Snapshot,publish
	gen atomic.Pointer[Gen]
}

func (s *Store) Snapshot() *Gen  { return s.gen.Load() }
func (s *Store) publish(g *Gen)  { s.gen.Store(g) }
func (s *Store) Sneaky() *Gen    { return s.gen.Load() }
`,
			want:     1,
			contains: []string{"Store.gen", "snapshot-via", "Snapshot"},
		},
		{
			name:     "snapshot-via field reached through a variable flagged",
			analyzer: "lock-guard",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "sync/atomic"

type Gen struct{ n int }

type Store struct {
	// irlint:snapshot-via Snapshot,publish
	gen atomic.Pointer[Gen]
}

func (s *Store) Snapshot() *Gen { return s.gen.Load() }
func (s *Store) publish(g *Gen) { s.gen.Store(g) }

func drain(s *Store) { s.gen.Store(nil) }
`,
			want:     1,
			contains: []string{"Store.gen", "outside its accessor"},
		},
		{
			name:     "snapshot-via accessors and routed callers conform",
			analyzer: "lock-guard",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "sync/atomic"

type Gen struct{ n int }

type Store struct {
	// irlint:snapshot-via Snapshot,publish
	gen atomic.Pointer[Gen]
}

func (s *Store) Snapshot() *Gen { return s.gen.Load() }
func (s *Store) publish(g *Gen) { s.gen.Store(g) }

func (s *Store) Len() int { return s.Snapshot().n }

func swap(s *Store, g *Gen) { s.publish(g) }
`,
			want: 0,
		},
		{
			name:     "snapshot-via escape hatch honored",
			analyzer: "lock-guard",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "sync/atomic"

type Gen struct{ n int }

type Store struct {
	// irlint:snapshot-via Snapshot,publish
	gen atomic.Pointer[Gen]
}

func (s *Store) Snapshot() *Gen { return s.gen.Load() }
func (s *Store) publish(g *Gen) { s.gen.Store(g) }

func (s *Store) debugPeek() *Gen {
	// lint:guard-ok test-only introspection, no publication
	return s.gen.Load()
}
`,
			want: 0,
		},
		{
			name:     "aliased list mutations flagged",
			analyzer: "alias-mutation",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import (
	"sort"

	"repro/internal/postings"
	"repro/internal/tif"
)

func bad(ix *tif.Index) {
	l := ix.List(0)
	l[0] = postings.Posting{}
	l.Sort()
	sort.Slice(l, func(i, j int) bool { return l[i].ID < l[j].ID })
}
`,
			want:     3,
			contains: []string{"read-only", "Clone"},
		},
		{
			name:     "append to aliased list through a copy flagged",
			analyzer: "alias-mutation",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import (
	"repro/internal/postings"
	"repro/internal/tif"
)

func bad(ix *tif.Index) postings.List {
	l := ix.List(0)
	m := l
	return append(m, postings.Posting{ID: 7})
}
`,
			want:     1,
			contains: []string{"append"},
		},
		{
			name:     "cloned and locally built lists conform",
			analyzer: "alias-mutation",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import (
	"repro/internal/postings"
	"repro/internal/tif"
)

func good(ix *tif.Index) postings.List {
	l := ix.List(0).Clone()
	l.Sort()
	return append(l, postings.Posting{ID: 9})
}

func goodLocal() postings.List {
	var l postings.List
	l.Append(postings.Posting{ID: 1})
	l.Sort()
	return l
}
`,
			want: 0,
		},
		{
			name:     "alias escape hatch honored",
			analyzer: "alias-mutation",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/postings"

func teardown() {
	l := postings.Shared()
	// lint:alias-ok benchmark rebuilds the index afterwards
	l.Sort()
}
`,
			want: 0,
		},
		{
			name:     "owning package may mutate its own lists",
			analyzer: "alias-mutation",
			path:     tifPath,
			src: `package tif

import "repro/internal/postings"

func rebuild() {
	l := postings.Shared()
	l.Sort()
}
`,
			want: 0,
		},
		{
			name:     "addition on discretized value flagged",
			analyzer: "domain-bounds",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/domain"

func bad(d domain.Domain, t int64) uint32 {
	v := d.Disc(t)
	return v + 1
}
`,
			want:     1,
			contains: []string{"2^m-1", "Prefix"},
		},
		{
			name:     "shift on tuple-assigned discretized value flagged",
			analyzer: "domain-bounds",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/domain"

func bad(d domain.Domain) uint32 {
	lo, hi := d.DiscInterval(1, 9)
	_ = hi
	return lo << 1
}
`,
			want:     1,
			contains: []string{"<<"},
		},
		{
			name:     "increment of discretized value flagged",
			analyzer: "domain-bounds",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/domain"

func bad(d domain.Domain, t int64) uint32 {
	v := d.Disc(t)
	v++
	return v
}
`,
			want:     1,
			contains: []string{"++"},
		},
		{
			name:     "comparisons and parity checks on discretized values conform",
			analyzer: "domain-bounds",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/domain"

func good(d domain.Domain, t int64) bool {
	v := d.Disc(t)
	w := d.Prefix(3, v)
	return v%2 == 1 && w < d.Cells()
}
`,
			want: 0,
		},
		{
			name:     "domain escape hatch honored",
			analyzer: "domain-bounds",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/domain"

func proven(d domain.Domain, t int64) uint32 {
	v := d.Disc(t)
	if v%2 == 0 {
		// lint:domain-ok v is even, so v+1 <= Cells()-1
		return v + 1
	}
	return v
}
`,
			want: 0,
		},
		{
			name:     "non-exhaustive method switch with plain default flagged",
			analyzer: "method-exhaustiveness",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import temporalir "repro"

func dispatch(m temporalir.Method) int {
	switch m {
	case temporalir.TIF:
		return 1
	case temporalir.TIFSlicing:
		return 2
	default:
		return 0
	}
}
`,
			want:     1,
			contains: []string{"IRHintPerf"},
		},
		{
			name:     "non-exhaustive method switch without default flagged",
			analyzer: "method-exhaustiveness",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import temporalir "repro"

func dispatch(m temporalir.Method) int {
	switch m {
	case temporalir.TIF:
		return 1
	}
	return 0
}
`,
			want:     1,
			contains: []string{"IRHintPerf", "TIFSlicing"},
		},
		{
			name:     "exhaustive method switch and non-method switch conform",
			analyzer: "method-exhaustiveness",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import temporalir "repro"

func dispatch(m temporalir.Method) int {
	switch m {
	case temporalir.TIF, temporalir.TIFSlicing:
		return 1
	case temporalir.IRHintPerf:
		return 2
	default:
		return 0
	}
}

func other(s string) int {
	switch s {
	case "x":
		return 1
	}
	return 0
}
`,
			want: 0,
		},
		{
			name:     "annotated default exempts a method switch",
			analyzer: "method-exhaustiveness",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import temporalir "repro"

func dispatch(m temporalir.Method) int {
	switch m {
	case temporalir.TIF:
		return 1
	// lint:method-ok remaining methods route through the registry
	default:
		return 0
	}
}
`,
			want: 0,
		},
		{
			name:     "deferred span conforms",
			analyzer: "span-end",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/obs"

func good(tr *obs.Trace) {
	defer tr.StartStage(obs.StagePlan).End()
}
`,
			want: 0,
		},
		{
			name:     "assigned span timer flagged",
			analyzer: "span-end",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/obs"

func bad(tr *obs.Trace) {
	st := tr.StartStage(obs.StagePlan)
	st.End()
}
`,
			want:     1,
			contains: []string{"defer tr.StartStage(s).End()"},
		},
		{
			name:     "dropped span timer flagged",
			analyzer: "span-end",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/obs"

func bad(tr *obs.Trace) {
	tr.StartStage(obs.StagePostings)
}
`,
			want:     1,
			contains: []string{"not closed by an immediate defer"},
		},
		{
			name:     "non-deferred immediate end flagged",
			analyzer: "span-end",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/obs"

func bad(tr *obs.Trace) {
	tr.StartStage(obs.StagePlan).End()
}
`,
			want: 1,
		},
		{
			name:     "deferred end through a named timer flagged",
			analyzer: "span-end",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/obs"

func bad(tr *obs.Trace) {
	st := tr.StartStage(obs.StagePlan)
	defer st.End()
}
`,
			want: 1,
		},
		{
			name:     "span escape hatch honored",
			analyzer: "span-end",
			path:     ModulePath + "/internal/fix",
			src: `package fix

import "repro/internal/obs"

func exempt(tr *obs.Trace) {
	// lint:span-ok timer handed to a helper that always Ends it
	st := tr.StartStage(obs.StagePlan)
	st.End()
}
`,
			want: 0,
		},
		{
			name:     "unrelated StartStage method ignored",
			analyzer: "span-end",
			path:     ModulePath + "/internal/fix",
			src: `package fix

type machine struct{}

func (m *machine) StartStage(s int) int { return s }

func fine(m *machine) {
	_ = m.StartStage(1)
}
`,
			want: 0,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := checkFixture(t, tc.path, tc.src)
			diags := analyzerByName(t, tc.analyzer).Run(p)
			if len(diags) != tc.want {
				t.Fatalf("got %d finding(s), want %d:\n%s", len(diags), tc.want, diagList(diags))
			}
			all := diagList(diags)
			for _, sub := range tc.contains {
				if !strings.Contains(all, sub) {
					t.Errorf("findings lack %q:\n%s", sub, all)
				}
			}
			for _, d := range diags {
				if d.Pos.Line <= 0 || d.Pos.Filename == "" {
					t.Errorf("finding lacks file:line position: %+v", d)
				}
			}
		})
	}
}

func diagList(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

// TestRunSortsDiagnostics checks the combined runner orders findings by
// position for stable CI output.
func TestRunSortsDiagnostics(t *testing.T) {
	p := checkFixture(t, ModulePath+"/internal/fix", `package fix

func b() { panic("two") }

func a() { panic("one") }
`)
	diags := Run([]*Package{p}, []*Analyzer{AnalyzerPanicPolicy()})
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2", len(diags))
	}
	if diags[0].Pos.Line > diags[1].Pos.Line {
		t.Errorf("diagnostics not sorted: %v", diags)
	}
}

// TestLoadRepository smoke-tests the loader against the live module: it
// must load every package with type information and the suite must be
// clean (the same gate CI enforces via cmd/irlint).
func TestLoadRepository(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load("../../..", []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	byPath := make(map[string]bool)
	for _, p := range pkgs {
		byPath[p.Path] = true
		if p.Types == nil {
			t.Errorf("%s: no type information", p.Path)
		}
	}
	for _, want := range []string{ModulePath, modelPath, ModulePath + "/internal/hint"} {
		if !byPath[want] {
			t.Errorf("loader missed package %s", want)
		}
	}
	if diags := Run(pkgs, Analyzers()); len(diags) > 0 {
		t.Errorf("repository not lint-clean:\n%s", diagList(diags))
	}
}
