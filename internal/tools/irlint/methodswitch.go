package irlint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// methodDirective marks a deliberately non-exhaustive switch over
// temporalir.Method: place it on the switch or its default clause.
const methodDirective = "lint:method-ok"

// AnalyzerMethodExhaustiveness requires every switch over
// temporalir.Method to handle all declared variants (or carry an
// annotated default). The variant universe is discovered from the
// declaring package's constants of type Method, so adding a ninth index
// method makes every dispatch site fail lint until it is handled — the
// property that keeps NewIndex, benchmark labels and future dispatchers
// in sync with the family.
func AnalyzerMethodExhaustiveness() *Analyzer {
	const name = "method-exhaustiveness"
	return &Analyzer{
		Name: name,
		Doc:  "switches over temporalir.Method must handle every declared method or annotate the default",
		Run: func(p *Package) []Diagnostic {
			if p.Info == nil {
				return nil
			}
			var out []Diagnostic
			for _, f := range p.Files {
				file := f
				ast.Inspect(f, func(n ast.Node) bool {
					sw, ok := n.(*ast.SwitchStmt)
					if !ok || sw.Tag == nil {
						return true
					}
					named := p.methodType(sw.Tag)
					if named == nil {
						return true
					}
					out = append(out, p.checkMethodSwitch(file, sw, named)...)
					return true
				})
			}
			return out
		},
	}
}

// methodType returns the named type of tag if it is temporalir.Method.
func (p *Package) methodType(tag ast.Expr) *types.Named {
	tv, ok := p.Info.Types[tag]
	if !ok || tv.Type == nil {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != ModulePath || obj.Name() != "Method" {
		return nil
	}
	return named
}

// checkMethodSwitch compares the switch's cases against the constant
// universe of the Method type.
func (p *Package) checkMethodSwitch(f *ast.File, sw *ast.SwitchStmt, named *types.Named) []Diagnostic {
	const name = "method-exhaustiveness"
	universe := methodUniverse(named) // string value -> const name
	if len(universe) == 0 {
		return nil
	}
	covered := map[string]bool{}
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			tv, ok := p.Info.Types[e]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				continue
			}
			covered[constant.StringVal(tv.Value)] = true
		}
	}
	var missing []string
	for val, constName := range universe {
		if !covered[val] {
			missing = append(missing, constName)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	if p.allowed(f, sw.Pos(), methodDirective) {
		return nil
	}
	if defaultClause != nil && p.allowed(f, defaultClause.Pos(), methodDirective) {
		return nil
	}
	return []Diagnostic{p.diag(name, sw.Pos(),
		"switch over temporalir.Method does not handle %s; handle every method or annotate the default with // %s <reason>",
		strings.Join(missing, ", "), methodDirective)}
}

// methodUniverse lists every constant of the Method type declared in its
// package, keyed by string value.
func methodUniverse(named *types.Named) map[string]string {
	universe := map[string]string{}
	pkg := named.Obj().Pkg()
	scope := pkg.Scope()
	for _, n := range scope.Names() {
		c, ok := scope.Lookup(n).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if c.Val().Kind() == constant.String {
			universe[constant.StringVal(c.Val())] = c.Name()
		}
	}
	return universe
}
