package irlint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LoadError aggregates the non-fatal problems hit while loading: packages
// that failed to parse or type-check. Analyzers still run on whatever
// loaded, but a gate should treat a non-empty LoadError as a failure —
// missing type information silently weakens the typed analyzers.
type LoadError struct {
	Problems []string
}

func (e *LoadError) Error() string {
	return fmt.Sprintf("irlint: %d load problem(s):\n  %s",
		len(e.Problems), strings.Join(e.Problems, "\n  "))
}

// Load parses and type-checks the module packages selected by patterns
// ("./..." for everything, "./dir/..." for a subtree, "./dir" for one
// package), rooted at the directory containing go.mod. Test files are not
// loaded: the suite governs production sources; tests deliberately
// construct invalid inputs.
func Load(root string, patterns []string) ([]*Package, error) {
	root, err := findModuleRoot(root)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	dirs = matchPatterns(dirs, patterns)
	if len(dirs) == 0 {
		return nil, fmt.Errorf("irlint: no packages match %v", patterns)
	}

	fset := token.NewFileSet()
	var problems []string

	raw := make(map[string]*rawPkg)
	ctxt := build.Default
	for _, dir := range dirs {
		bp, err := ctxt.ImportDir(filepath.Join(root, dir), 0)
		if err != nil {
			if _, nogo := err.(*build.NoGoError); nogo {
				continue
			}
			problems = append(problems, fmt.Sprintf("%s: %v", dir, err))
			continue
		}
		rp := &rawPkg{path: importPathFor(dir)}
		for _, name := range bp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(root, dir, name), nil, parser.ParseComments)
			if err != nil {
				problems = append(problems, err.Error())
				continue
			}
			rp.files = append(rp.files, f)
			for _, imp := range f.Imports {
				if path, err := strconv.Unquote(imp.Path.Value); err == nil {
					rp.imports = append(rp.imports, path)
				}
			}
		}
		if len(rp.files) > 0 {
			raw[rp.path] = rp
		}
	}

	// Type-check in dependency order so intra-module imports resolve from
	// the packages checked so far; the stdlib comes from the source
	// importer (offline, no compiled export data needed).
	order := topoOrder(raw)
	imp := &moduleImporter{
		mod: make(map[string]*types.Package),
		std: importer.ForCompiler(fset, "source", nil),
	}
	var pkgs []*Package
	for _, path := range order {
		rp := raw[path]
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		var typeErrs []string
		cfg := types.Config{
			Importer: imp,
			Error: func(err error) {
				typeErrs = append(typeErrs, err.Error())
			},
		}
		tpkg, _ := cfg.Check(path, fset, rp.files, info)
		if len(typeErrs) > 0 {
			n := len(typeErrs)
			if n > 3 {
				typeErrs = typeErrs[:3]
			}
			problems = append(problems, fmt.Sprintf("%s: %d type error(s): %s",
				path, n, strings.Join(typeErrs, "; ")))
		}
		if tpkg != nil {
			imp.mod[path] = tpkg
		}
		pkgs = append(pkgs, &Package{
			Path:  path,
			Fset:  fset,
			Files: rp.files,
			Info:  info,
			Types: tpkg,
		})
	}
	if len(problems) > 0 {
		return pkgs, &LoadError{Problems: problems}
	}
	return pkgs, nil
}

// moduleImporter serves already-checked module packages and defers the
// rest (the standard library) to the source importer.
type moduleImporter struct {
	mod map[string]*types.Package
	std types.Importer
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.mod[path]; ok {
		return p, nil
	}
	if path == ModulePath || strings.HasPrefix(path, ModulePath+"/") {
		return nil, fmt.Errorf("module package %s not yet checked (import cycle?)", path)
	}
	return im.std.Import(path)
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("irlint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// packageDirs returns every module-relative directory containing buildable
// Go files, "." included, skipping hidden directories, testdata and build
// output.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "bin" || name == "results" || name == "vendor") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				dirs = append(dirs, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// matchPatterns filters module-relative dirs by the go-style patterns.
func matchPatterns(dirs, patterns []string) []string {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	keep := make([]string, 0, len(dirs))
	for _, dir := range dirs {
		for _, pat := range patterns {
			if matchPattern(dir, pat) {
				keep = append(keep, dir)
				break
			}
		}
	}
	return keep
}

func matchPattern(dir, pat string) bool {
	pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
	if pat == "..." || pat == "" {
		return true
	}
	if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
		return dir == prefix || strings.HasPrefix(dir, prefix+"/")
	}
	if pat == "." {
		return dir == "."
	}
	return dir == strings.TrimSuffix(pat, "/")
}

func importPathFor(dir string) string {
	if dir == "." {
		return ModulePath
	}
	return ModulePath + "/" + dir
}

// rawPkg is one parsed-but-not-yet-checked package.
type rawPkg struct {
	path    string
	files   []*ast.File
	imports []string
}

// topoOrder sorts package paths so every intra-module import precedes its
// importer. Unknown (unloaded) module imports are ignored; cycles — which
// the compiler forbids anyway — fall back to visit order.
func topoOrder(raw map[string]*rawPkg) []string {
	paths := make([]string, 0, len(raw))
	for p := range raw {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	visited := make(map[string]int) // 0 unseen, 1 visiting, 2 done
	var order []string
	var visit func(p string)
	visit = func(p string) {
		if visited[p] != 0 {
			return
		}
		visited[p] = 1
		for _, dep := range raw[p].imports {
			if _, ok := raw[dep]; ok && visited[dep] != 1 {
				visit(dep)
			}
		}
		visited[p] = 2
		order = append(order, p)
	}
	for _, p := range paths {
		visit(p)
	}
	return order
}
