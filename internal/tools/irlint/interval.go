package irlint

import (
	"go/ast"
)

// intervalDirective suppresses an interval-canon finding, for the rare
// sentinel that must violate Start <= End by design (postings.Tombstone).
const intervalDirective = "lint:interval-ok"

// modelPath is the package that owns Interval and its constructors.
const modelPath = ModulePath + "/internal/model"

// AnalyzerIntervalCanon flags composite model.Interval literals with
// explicit elements outside internal/model. Intervals must be built
// through NewInterval (panics on inversion) or Canon (swaps endpoints):
// a raw literal can carry Start > End, which silently breaks every
// Overlaps-based filter in the index family. The zero literal
// Interval{} is canonical and allowed.
func AnalyzerIntervalCanon() *Analyzer {
	const name = "interval-canon"
	return &Analyzer{
		Name: name,
		Doc:  "model.Interval composite literals outside internal/model must go through NewInterval or Canon",
		Run: func(p *Package) []Diagnostic {
			if p.Path == modelPath || p.Info == nil {
				return nil
			}
			var out []Diagnostic
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					lit, ok := n.(*ast.CompositeLit)
					if !ok || len(lit.Elts) == 0 {
						return true
					}
					tv, ok := p.Info.Types[lit]
					if !ok || !typeIs(tv.Type, modelPath, "Interval") {
						return true
					}
					if p.allowed(f, lit.Pos(), intervalDirective) {
						return true
					}
					out = append(out, p.diag(name, lit.Pos(),
						"composite model.Interval literal; use model.NewInterval or model.Canon (or annotate with // %s <reason>)",
						intervalDirective))
					return true
				})
			}
			return out
		},
	}
}
