package irlint

import (
	"go/ast"
)

// spanDirective suppresses a span-end finding, for a call site that
// provably closes its span on every path without the defer form.
const spanDirective = "lint:span-ok"

// obsPath is the package that owns Trace and StageTimer.
const obsPath = ModulePath + "/internal/obs"

// AnalyzerSpanEnd flags obs.Trace.StartStage calls that are not the
// one-line deferred form `defer tr.StartStage(s).End()`. A StageTimer
// whose End is reached by straight-line code leaks the span on every
// early return and panic between StartStage and End — the trace then
// under-reports the stage and the slow log shows a breakdown that does
// not sum. The defer form is the only shape that closes the span on all
// paths, so it is the only accepted one.
func AnalyzerSpanEnd() *Analyzer {
	const name = "span-end"
	return &Analyzer{
		Name: name,
		Doc:  "obs.Trace.StartStage must be immediately deferred: defer tr.StartStage(s).End()",
		Run: func(p *Package) []Diagnostic {
			if p.Info == nil {
				return nil
			}
			var out []Diagnostic
			for _, f := range p.Files {
				// First pass: collect the StartStage calls that appear as
				// `defer <expr>.StartStage(s).End()` — the conforming shape.
				deferred := map[*ast.CallExpr]bool{}
				ast.Inspect(f, func(n ast.Node) bool {
					d, ok := n.(*ast.DeferStmt)
					if !ok {
						return true
					}
					endSel, ok := d.Call.Fun.(*ast.SelectorExpr)
					if !ok || endSel.Sel.Name != "End" {
						return true
					}
					if call, ok := endSel.X.(*ast.CallExpr); ok && p.isStartStage(call) {
						deferred[call] = true
					}
					return true
				})
				// Second pass: flag every other StartStage call.
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || !p.isStartStage(call) || deferred[call] {
						return true
					}
					if p.allowed(f, call.Pos(), spanDirective) {
						return true
					}
					out = append(out, p.diag(name, call.Pos(),
						"StartStage span not closed by an immediate defer; write `defer tr.StartStage(s).End()` so the span ends on every path (or annotate with // %s <reason>)",
						spanDirective))
					return true
				})
			}
			return out
		},
	}
}

// isStartStage reports whether call is obs.Trace.StartStage (on *Trace
// or Trace, including nil receivers — the method is nil-safe but the
// defer contract applies regardless).
func (p *Package) isStartStage(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "StartStage" {
		return false
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok {
		return false
	}
	return typeIs(tv.Type, obsPath, "Trace")
}
