package irlint

import (
	"go/ast"
	"go/types"

	"repro/internal/tools/irlint/flow"
)

// AnalyzerIfaceDispatch enforces the dispatch half of the hot-path
// contract: method calls inside a hot loop must not go through an
// interface (dynamic dispatch defeats inlining and can box the
// receiver) unless the interface's declaration is annotated
// `irlint:hot-iface <reason>` — the project-level statement that this
// indirection is a deliberate seam — or the call site carries
// `lint:iface-ok <reason>`. Receivers are resolved via go/types
// method-set selections, so embedding and pointer receivers are seen
// through.
func AnalyzerIfaceDispatch() *Analyzer {
	return &Analyzer{
		Name:       "iface-dispatch",
		Doc:        "no dynamic dispatch through non-annotated interfaces inside hot loops",
		RunProgram: runIfaceDispatch,
	}
}

func runIfaceDispatch(pr *Program) []Diagnostic {
	var out []Diagnostic
	blessed := make(map[*types.TypeName]bool)
	blessedBuilt := false
	pr.forEachHot(func(p *Package, f *ast.File, fn *flow.Func) {
		via := pr.Hot().Via(fn.Obj)
		loops := collectLoops(fn.Decl.Body)
		if len(loops) == 0 {
			return
		}
		if !blessedBuilt {
			blessedBuilt = true
			for _, bp := range pr.Pkgs {
				collectHotIfaces(bp, blessed)
			}
		}
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || innermostLoop(loops, call.Pos()) == nil {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := p.Info.Selections[sel]
			if !ok || selection.Kind() != types.MethodVal {
				return true
			}
			recv := selection.Recv()
			if !types.IsInterface(recv.Underlying()) {
				return true
			}
			if named, ok := recv.(*types.Named); ok && blessed[named.Obj()] {
				return true
			}
			if sup, bare := p.okWithReason(f, call.Pos(), ifaceOKDirective); sup {
				return true
			} else if bare {
				out = append(out, p.diag("iface-dispatch", call.Pos(), "%s needs a reason", ifaceOKDirective))
				return true
			}
			out = append(out, p.diag("iface-dispatch", call.Pos(),
				"dynamic dispatch through %s in a hot loop%s; devirtualize, or annotate the interface %s <reason>",
				recv, via, hotIfaceDirective))
			return true
		})
	})
	return out
}

// collectHotIfaces records every interface type in p whose declaration
// carries irlint:hot-iface with a reason.
func collectHotIfaces(p *Package, blessed map[*types.TypeName]bool) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			if _, isIface := ts.Type.(*ast.InterfaceType); !isIface {
				return true
			}
			def, ok := p.Info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			if found, reason := p.directiveReason(f, ts.Pos(), hotIfaceDirective); found && reason != "" {
				blessed[def] = true
			}
			return true
		})
	}
}
