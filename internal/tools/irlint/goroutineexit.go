package irlint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/tools/irlint/flow"
)

// goroutineExitsDirective marks a go statement whose termination is
// guaranteed by something the analyzer cannot see (a select on the
// result channel, process lifetime). The annotation must state the exit
// condition.
const goroutineExitsDirective = "irlint:goroutine-exits"

// AnalyzerGoroutineExit requires every `go` statement to be provably
// joined or explicitly annotated. Accepted proofs, all within the
// innermost enclosing function body:
//
//   - WaitGroup: the goroutine calls Done on a WaitGroup (directly,
//     deferred, or through a callee whose summary says so), and the
//     spawning body Waits on the same WaitGroup after the go statement
//     (or in a defer, or through a callee whose summary Waits).
//   - Channel join: the goroutine sends on or closes a channel, and the
//     spawning body unconditionally receives from (or ranges over) the
//     same channel after the go statement. A receive inside a select
//     does not count — the other arms may abandon the goroutine.
//
// Everything else needs `irlint:goroutine-exits <exit condition>`: a
// goroutine with no visible join is a leak candidate, and under the
// coming shard fan-out every leaked goroutine multiplies by shard count.
func AnalyzerGoroutineExit() *Analyzer {
	const name = "goroutine-exit"
	return &Analyzer{
		Name: name,
		Doc:  "every go statement must be provably joined (WaitGroup or channel) or annotated irlint:goroutine-exits",
		RunProgram: func(pr *Program) []Diagnostic {
			var out []Diagnostic
			g := pr.Graph()
			sums := g.Summaries()
			for _, fn := range g.Funcs() {
				p := pr.PackageOf(fn)
				if p == nil || p.Info == nil {
					continue
				}
				f := p.fileOf(fn.Decl.Pos())
				walkGoStmts(fn.Decl.Body, fn.Decl.Body, func(gs *ast.GoStmt, body *ast.BlockStmt) {
					if goStmtJoined(p.Info, g, sums, gs, body) {
						return
					}
					if ok, reason := p.directiveReason(f, gs.Pos(), goroutineExitsDirective); ok {
						if reason == "" {
							out = append(out, p.diag(name, gs.Pos(),
								"%s annotation needs a stated exit condition", goroutineExitsDirective))
						}
						return
					}
					out = append(out, p.diag(name, gs.Pos(),
						"goroutine has no provable join in the spawning function (no WaitGroup Done/Wait pair, no unconditional channel receive); prove the join or annotate with // %s <exit condition>",
						goroutineExitsDirective))
				})
			}
			return out
		},
	}
}

// walkGoStmts visits every go statement under n, reporting each with its
// innermost enclosing function body — the scope a join proof must live
// in. Go statements inside nested function literals are checked against
// the literal's body, not the outer declaration's.
func walkGoStmts(n ast.Node, body *ast.BlockStmt, visit func(*ast.GoStmt, *ast.BlockStmt)) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch x := c.(type) {
		case *ast.FuncLit:
			if x.Body != nil {
				walkGoStmts(x.Body, x.Body, visit)
			}
			return false
		case *ast.GoStmt:
			visit(x, body)
			// The goroutine's own body may spawn more goroutines; those
			// need proofs inside the goroutine.
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok && lit.Body != nil {
				walkGoStmts(lit.Body, lit.Body, visit)
			}
			return false
		}
		return true
	})
}

// goStmtJoined reports whether the goroutine spawned by gs is provably
// joined inside body.
func goStmtJoined(info *types.Info, g *flow.Graph, sums *flow.Summaries, gs *ast.GoStmt, body *ast.BlockStmt) bool {
	doneVars, chanVars := goroutineSignals(info, g, sums, gs)
	if len(doneVars) == 0 && len(chanVars) == 0 {
		return false
	}
	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			// Neither this goroutine's own body nor a sibling goroutine's
			// body counts as a join point for the spawning function.
			return false
		case *ast.CallExpr:
			// wg.Wait() after the spawn, or a helper that Waits.
			if afterOrDeferred(body, gs, x.Pos()) && callWaitsOn(info, g, sums, x, doneVars) {
				joined = true
				return false
			}
		case *ast.UnaryExpr:
			// <-ch, not inside a select (selects are handled below by
			// pruning their walk).
			if x.Op == token.ARROW && afterOrDeferred(body, gs, x.Pos()) {
				if v := flow.BaseVar(info, x.X); v != nil && chanVars[v] {
					joined = true
					return false
				}
			}
		case *ast.RangeStmt:
			// for range ch drains until close — an unconditional join.
			if v := flow.BaseVar(info, x.X); v != nil && chanVars[v] && afterOrDeferred(body, gs, x.Pos()) {
				joined = true
				return false
			}
		case *ast.SelectStmt:
			// A receive inside select is conditional: another arm (e.g.
			// ctx.Done()) may fire and abandon the goroutine.
			return false
		}
		return true
	})
	return joined
}

// goroutineSignals extracts, from the spawned call, the WaitGroup
// variables the goroutine provably calls Done on and the channel
// variables it sends on or closes.
func goroutineSignals(info *types.Info, g *flow.Graph, sums *flow.Summaries, gs *ast.GoStmt) (doneVars, chanVars map[*types.Var]bool) {
	doneVars = map[*types.Var]bool{}
	chanVars = map[*types.Var]bool{}
	mark := func(set map[*types.Var]bool, e ast.Expr) {
		if v := flow.BaseVar(info, e); v != nil {
			set[v] = true
		}
	}
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok && lit.Body != nil {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if callee := flow.Callee(info, x); callee != nil {
					if callee.Name() == "Done" && callee.Pkg() != nil && callee.Pkg().Path() == "sync" {
						if sel, ok := x.Fun.(*ast.SelectorExpr); ok && typeIs(info.Types[sel.X].Type, "sync", "WaitGroup") {
							mark(doneVars, sel.X)
						}
					}
					// A named helper the goroutine calls may carry the Done.
					for _, ai := range flow.ArgInputs(info, x, callee) {
						if sums.Input(callee, ai.Input).Dones {
							mark(doneVars, ai.Expr)
						}
					}
				}
				if flow.IsBuiltin(info, x, "close") && len(x.Args) == 1 {
					mark(chanVars, x.Args[0])
				}
			case *ast.SendStmt:
				mark(chanVars, x.Chan)
			}
			return true
		})
		return doneVars, chanVars
	}
	// go someFunc(args): read the callee's summary.
	callee := flow.Callee(info, gs.Call)
	if callee != nil {
		for _, ai := range flow.ArgInputs(info, gs.Call, callee) {
			if sums.Input(callee, ai.Input).Dones {
				mark(doneVars, ai.Expr)
			}
		}
	}
	return doneVars, chanVars
}

// callWaitsOn reports whether the call is wg.Wait() on one of the given
// WaitGroups, or passes one of them to a callee whose summary Waits.
func callWaitsOn(info *types.Info, g *flow.Graph, sums *flow.Summaries, call *ast.CallExpr, doneVars map[*types.Var]bool) bool {
	callee := flow.Callee(info, call)
	if callee == nil {
		return false
	}
	if callee.Name() == "Wait" && callee.Pkg() != nil && callee.Pkg().Path() == "sync" {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && typeIs(info.Types[sel.X].Type, "sync", "WaitGroup") {
			if v := flow.BaseVar(info, sel.X); v != nil && doneVars[v] {
				return true
			}
		}
	}
	for _, ai := range flow.ArgInputs(info, call, callee) {
		if sums.Input(callee, ai.Input).Waits {
			if v := flow.BaseVar(info, ai.Expr); v != nil && doneVars[v] {
				return true
			}
		}
	}
	return false
}

// afterOrDeferred reports whether pos is textually after the go
// statement, or inside any defer in the body (defers run at exit, which
// is always after the spawn).
func afterOrDeferred(body *ast.BlockStmt, gs *ast.GoStmt, pos token.Pos) bool {
	if pos > gs.End() {
		return true
	}
	inDefer := false
	ast.Inspect(body, func(n ast.Node) bool {
		if inDefer {
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			if d.Pos() <= pos && pos <= d.End() {
				inDefer = true
				return false
			}
		}
		return true
	})
	return inDefer
}
