package irlint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/tools/irlint/flow"
)

// metricDirective suppresses a metric-hygiene finding, for the rare
// registration that deliberately breaks a rule (e.g. a bridge exporting
// a foreign metric family under its original name).
const metricDirective = "lint:metric-ok"

// metricRegMethods maps each obs.Registry registration method to whether
// it registers a counter family (whose names must end in _total).
var metricRegMethods = map[string]bool{
	"Counter":     true,
	"CounterFunc": true,
	"Gauge":       false,
	"GaugeFunc":   false,
	"Histogram":   false,
}

// AnalyzerMetricHygiene moves metric-endpoint failures from scrape time
// to lint time. For every obs.Registry registration call in the program:
//
//   - the family name must be a compile-time string constant, lowercase
//     snake_case, and prefixed tir_ outside internal/obs — scrapers key
//     dashboards off these names, so they are API;
//   - counter families must end in _total (the Prometheus convention the
//     WritePrometheus encoder assumes);
//   - each family name is registered from exactly one call site
//     program-wide — a second site would silently share or collide state
//     depending on label sets;
//   - histogram bucket bounds must be strictly increasing, whether
//     written literally or returned by an in-program helper (resolved
//     through the call graph), because Histogram.Observe binary-searches
//     the bounds and silently mis-buckets on disorder.
func AnalyzerMetricHygiene() *Analyzer {
	const name = "metric-hygiene"
	return &Analyzer{
		Name: name,
		Doc:  "obs metric names constant, well-formed, registered once; histogram buckets strictly increasing",
		RunProgram: func(pr *Program) []Diagnostic {
			var out []Diagnostic
			g := pr.Graph()
			type regSite struct {
				p    *Package
				f    *ast.File
				pos  token.Pos
				name string
			}
			sites := map[string][]regSite{}
			for _, fn := range g.Funcs() {
				p := pr.PackageOf(fn)
				if p == nil || p.Info == nil {
					continue
				}
				f := p.fileOf(fn.Decl.Pos())
				for _, c := range fn.Calls {
					method, ok := registryMethod(p.Info, c.Site)
					if !ok {
						continue
					}
					if p.allowed(f, c.Site.Pos(), metricDirective) {
						continue
					}
					if len(c.Site.Args) == 0 {
						continue
					}
					nameVal, isConst := constString(p.Info, c.Site.Args[0])
					if !isConst {
						out = append(out, p.diag(name, c.Site.Args[0].Pos(),
							"metric name must be a compile-time string constant so the family set is auditable; computed names hide collisions until scrape time (or annotate with // %s <reason>)",
							metricDirective))
						continue
					}
					if !wellFormedMetricName(nameVal) {
						out = append(out, p.diag(name, c.Site.Args[0].Pos(),
							"metric name %q is not lowercase snake_case ([a-z][a-z0-9_]*); Prometheus scrapers reject or mangle it (or annotate with // %s <reason>)",
							nameVal, metricDirective))
					}
					if p.Path != obsPath && !strings.HasPrefix(nameVal, "tir_") {
						out = append(out, p.diag(name, c.Site.Args[0].Pos(),
							"metric name %q lacks the tir_ namespace prefix; unprefixed families collide with other exporters on shared scrape targets (or annotate with // %s <reason>)",
							nameVal, metricDirective))
					}
					if metricRegMethods[method] && !strings.HasSuffix(nameVal, "_total") {
						out = append(out, p.diag(name, c.Site.Args[0].Pos(),
							"counter family %q must end in _total (Prometheus counter convention) (or annotate with // %s <reason>)",
							nameVal, metricDirective))
					}
					if method == "Histogram" && len(c.Site.Args) >= 3 {
						if bounds, src := resolveBuckets(p.Info, g, c.Site.Args[2]); bounds != nil {
							if i := firstNonIncreasing(bounds); i >= 0 {
								out = append(out, p.diag(name, c.Site.Args[2].Pos(),
									"histogram buckets%s are not strictly increasing at index %d (%v >= %v); Observe binary-searches the bounds and mis-buckets on disorder",
									src, i, bounds[i], bounds[i+1]))
							}
						}
					}
					sites[nameVal] = append(sites[nameVal], regSite{p: p, f: f, pos: c.Site.Pos(), name: nameVal})
				}
			}
			fams := make([]string, 0, len(sites))
			for fam := range sites {
				fams = append(fams, fam)
			}
			sort.Strings(fams)
			for _, fam := range fams {
				ss := sites[fam]
				if len(ss) < 2 {
					continue
				}
				sort.Slice(ss, func(i, j int) bool {
					pi, pj := ss[i].p.Fset.Position(ss[i].pos), ss[j].p.Fset.Position(ss[j].pos)
					if pi.Filename != pj.Filename {
						return pi.Filename < pj.Filename
					}
					return pi.Line < pj.Line
				})
				first := ss[0].p.Fset.Position(ss[0].pos)
				for _, s := range ss[1:] {
					out = append(out, s.p.diag(name, s.pos,
						"metric family %q already registered at %s:%d; one family, one registration site (or annotate with // %s <reason>)",
						fam, first.Filename, first.Line, metricDirective))
				}
			}
			return out
		},
	}
}

// registryMethod reports whether call is one of the obs.Registry
// registration methods, and which.
func registryMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if _, known := metricRegMethods[sel.Sel.Name]; !known {
		return "", false
	}
	tv, ok := info.Types[sel.X]
	if !ok || !typeIs(tv.Type, obsPath, "Registry") {
		return "", false
	}
	return sel.Sel.Name, true
}

// constString returns the compile-time value of a string expression.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// wellFormedMetricName enforces [a-z][a-z0-9_]* — the subset of valid
// Prometheus names this repo standardizes on.
func wellFormedMetricName(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

// resolveBuckets extracts histogram bounds when they are statically
// knowable: a literal []float64{...} of constants, or a call to an
// in-program function whose body is a single `return []float64{...}`.
// The second return value names the source for the diagnostic ("" for a
// literal, " returned by F" for a resolved helper). Unknowable bounds
// return nil and are not checked.
func resolveBuckets(info *types.Info, g *flow.Graph, e ast.Expr) ([]float64, string) {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return litFloats(info, x), ""
	case *ast.CallExpr:
		callee := flow.Callee(info, x)
		fn := g.FuncOf(callee)
		if fn == nil {
			return nil, ""
		}
		return calleeReturnFloats(fn), " returned by " + callee.Name()
	}
	return nil, ""
}

// calleeReturnFloats reads the bounds out of a helper whose body is a
// single return of a float slice literal.
func calleeReturnFloats(fn *flow.Func) []float64 {
	if len(fn.Decl.Body.List) != 1 {
		return nil
	}
	ret, ok := fn.Decl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	lit, ok := ret.Results[0].(*ast.CompositeLit)
	if !ok {
		return nil
	}
	return litFloats(fn.Unit.Info, lit)
}

// litFloats evaluates every element of a composite literal as a float
// constant; any non-constant element makes the whole literal unknowable.
func litFloats(info *types.Info, lit *ast.CompositeLit) []float64 {
	out := make([]float64, 0, len(lit.Elts))
	for _, el := range lit.Elts {
		tv, ok := info.Types[el]
		if !ok || tv.Value == nil {
			return nil
		}
		f, _ := constant.Float64Val(constant.ToFloat(tv.Value))
		out = append(out, f)
	}
	return out
}

// firstNonIncreasing returns the first index i with bounds[i] >=
// bounds[i+1], or -1 when strictly increasing.
func firstNonIncreasing(bounds []float64) int {
	for i := 0; i+1 < len(bounds); i++ {
		if bounds[i] >= bounds[i+1] {
			return i
		}
	}
	return -1
}
