package irlint

import (
	"go/ast"
	"go/types"
)

// sizeDirective exempts a field from size accounting (e.g. scratch space
// deliberately excluded from the paper's Table 4 comparisons).
const sizeDirective = "lint:size-ok"

// sizePackages are the index-bearing packages whose SizeBytes estimates
// back the paper's size experiments (Table 4); an unaccounted field there
// silently skews every reported footprint.
var sizePackages = map[string]bool{
	"internal/core":     true,
	"internal/hint":     true,
	"internal/tif":      true,
	"internal/compress": true,
}

// AnalyzerSizeAccounting checks, for every exported struct with a
// SizeBytes method in the index packages, that each dynamically-sized
// field (slice, map, string, pointer, interface, chan, func — or a
// struct/array containing one) is referenced somewhere in the SizeBytes
// implementation, following same-package helper calls a few levels deep.
// Fixed-size scalar fields live inside the constant struct-overhead term
// and are exempt.
func AnalyzerSizeAccounting() *Analyzer {
	const name = "size-accounting"
	return &Analyzer{
		Name: name,
		Doc:  "every dynamically-sized field of an exported index struct must be reflected in its SizeBytes",
		Run: func(p *Package) []Diagnostic {
			if !sizePackages[relPath(p.Path)] || p.Info == nil {
				return nil
			}
			structs := exportedStructs(p)
			methods, funcs := packageFuncs(p)
			var out []Diagnostic
			for _, st := range structs {
				sb, ok := methods[st.name]["SizeBytes"]
				if !ok {
					continue
				}
				refs := make(map[string]bool)
				collectRefs(sb, methods, funcs, refs, 4)
				for _, fld := range st.fields {
					if refs[fld.name] {
						continue
					}
					if !p.fieldIsDynamic(fld.ident) {
						continue
					}
					if f := p.fileOf(fld.ident.Pos()); f != nil && p.allowed(f, fld.ident.Pos(), sizeDirective) {
						continue
					}
					out = append(out, p.diag(name, fld.ident.Pos(),
						"field %s.%s is dynamically sized but not reflected in %s.SizeBytes (annotate with // %s <reason> if excluded on purpose)",
						st.name, fld.name, st.name, sizeDirective))
				}
			}
			return out
		},
	}
}

// structInfo is one exported struct declaration.
type structInfo struct {
	name   string
	fields []fieldInfo
}

type fieldInfo struct {
	name  string
	ident *ast.Ident
}

// exportedStructs collects the exported struct types declared in the
// package.
func exportedStructs(p *Package) []structInfo {
	var out []structInfo
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				info := structInfo{name: ts.Name.Name}
				for _, fld := range st.Fields.List {
					for _, id := range fld.Names {
						info.fields = append(info.fields, fieldInfo{name: id.Name, ident: id})
					}
				}
				out = append(out, info)
			}
		}
	}
	return out
}

// packageFuncs indexes the package's function declarations: methods by
// receiver type name then method name, plain functions by name.
func packageFuncs(p *Package) (methods map[string]map[string]*ast.FuncDecl, funcs map[string]*ast.FuncDecl) {
	methods = make(map[string]map[string]*ast.FuncDecl)
	funcs = make(map[string]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Recv == nil || len(fd.Recv.List) == 0 {
				funcs[fd.Name.Name] = fd
				continue
			}
			recv := receiverTypeName(fd.Recv.List[0].Type)
			if recv == "" {
				continue
			}
			if methods[recv] == nil {
				methods[recv] = make(map[string]*ast.FuncDecl)
			}
			methods[recv][fd.Name.Name] = fd
		}
	}
	return methods, funcs
}

func receiverTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverTypeName(t.X)
	case *ast.IndexExpr: // generic receiver
		return receiverTypeName(t.X)
	case *ast.IndexListExpr:
		return receiverTypeName(t.X)
	}
	return ""
}

// collectRefs records every selector name mentioned in fd's body, then
// follows same-package calls (by name, any receiver) up to depth levels.
func collectRefs(fd *ast.FuncDecl, methods map[string]map[string]*ast.FuncDecl, funcs map[string]*ast.FuncDecl, refs map[string]bool, depth int) {
	if fd == nil || fd.Body == nil || depth == 0 {
		return
	}
	var callees []string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			refs[e.Sel.Name] = true
		case *ast.CallExpr:
			switch fn := e.Fun.(type) {
			case *ast.Ident:
				callees = append(callees, fn.Name)
			case *ast.SelectorExpr:
				callees = append(callees, fn.Sel.Name)
			}
		}
		return true
	})
	marker := "called:" + fd.Name.Name
	if refs[marker] {
		return
	}
	refs[marker] = true
	for _, c := range callees {
		if g, ok := funcs[c]; ok {
			collectRefs(g, methods, funcs, refs, depth-1)
		}
		for _, ms := range methods {
			if g, ok := ms[c]; ok {
				collectRefs(g, methods, funcs, refs, depth-1)
			}
		}
	}
}

// fieldIsDynamic reports whether the declared field's type owns
// dynamically-sized memory.
func (p *Package) fieldIsDynamic(ident *ast.Ident) bool {
	obj := p.Info.Defs[ident]
	if obj == nil || obj.Type() == nil {
		return false
	}
	return isDynamicType(obj.Type(), make(map[types.Type]bool))
}

func isDynamicType(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Chan, *types.Pointer, *types.Interface, *types.Signature:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0
	case *types.Array:
		return isDynamicType(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if isDynamicType(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
