package irlint

import (
	"go/ast"
	"go/types"

	"repro/internal/tools/irlint/flow"
	"repro/internal/tools/irlint/perf"
)

// AnalyzerDeferInLoop enforces the scheduling half of the hot-path
// contract: inside a hot loop there must be no defer (each one pushes a
// record per iteration and runs only at function exit) and no mutex
// acquire/release — direct, or hidden behind any chain of in-module
// helpers, resolved through the MayLock fixpoint on the call graph.
// `lint:defer-ok <reason>` accepts one site (e.g. a loop that runs a
// bounded number of times outside the per-query part of a hot root).
func AnalyzerDeferInLoop() *Analyzer {
	return &Analyzer{
		Name:       "defer-in-loop",
		Doc:        "no defer or mutex acquire/release inside hot loops, locks resolved through the call graph",
		RunProgram: runDeferInLoop,
	}
}

func runDeferInLoop(pr *Program) []Diagnostic {
	var out []Diagnostic
	var mayLock map[*types.Func]bool // built only if some hot fn has loops
	pr.forEachHot(func(p *Package, f *ast.File, fn *flow.Func) {
		via := pr.Hot().Via(fn.Obj)
		loops := collectLoops(fn.Decl.Body)
		if len(loops) == 0 {
			return
		}
		if mayLock == nil {
			mayLock = perf.MayLock(pr.Graph())
		}
		// A deferred call is reported once, as the defer finding.
		deferred := make(map[*ast.CallExpr]bool)
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				deferred[d.Call] = true
			}
			return true
		})
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.DeferStmt:
				if innermostLoop(loops, e.Pos()) == nil {
					return true
				}
				if sup, bare := p.okWithReason(f, e.Pos(), deferOKDirective); sup {
					return true
				} else if bare {
					out = append(out, p.diag("defer-in-loop", e.Pos(), "%s needs a reason", deferOKDirective))
					return true
				}
				out = append(out, p.diag("defer-in-loop", e.Pos(),
					"defer inside a hot loop%s runs per iteration but fires at function exit; hoist it or restructure", via))
			case *ast.CallExpr:
				if deferred[e] || innermostLoop(loops, e.Pos()) == nil {
					return true
				}
				callee := flow.Callee(p.Info, e)
				if callee == nil {
					return true
				}
				direct := perf.IsLockCall(callee)
				if !direct && !mayLock[callee] {
					return true
				}
				if sup, bare := p.okWithReason(f, e.Pos(), deferOKDirective); sup {
					return true
				} else if bare {
					out = append(out, p.diag("defer-in-loop", e.Pos(), "%s needs a reason", deferOKDirective))
					return true
				}
				if direct {
					out = append(out, p.diag("defer-in-loop", e.Pos(),
						"mutex %s inside a hot loop%s; acquire once outside the loop", callee.Name(), via))
				} else {
					out = append(out, p.diag("defer-in-loop", e.Pos(),
						"%s may acquire a mutex (resolved through the call graph) inside a hot loop%s", callee.Name(), via))
				}
			}
			return true
		})
	})
	return out
}
