package irlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// guardedByMarker annotates a struct field with the mutex field that
// guards it: // irlint:guarded-by mu
const guardedByMarker = "irlint:guarded-by"

// lockedMarker annotates a method whose contract is "caller holds the
// lock": // irlint:locked mu
const lockedMarker = "irlint:locked"

// guardDirective suppresses one lock-guard finding at an access site the
// analyzer cannot prove safe (e.g. a constructor publishing the value
// before any concurrency exists).
const guardDirective = "lint:guard-ok"

// snapshotViaMarker annotates an atomically swapped field (the
// atomic-generation pattern) with its sanctioned accessor methods:
// // irlint:snapshot-via Snapshot,publish
// Every other touch of the field — any method, any function, reads and
// writes alike — is flagged: the pattern's whole safety argument is that
// loads and stores are funneled through the named accessors, so a stray
// s.gen.Load() elsewhere silently bypasses validation hooks and makes
// the access pattern unauditable.
const snapshotViaMarker = "irlint:snapshot-via"

// guardSpec is the annotation set of one struct: guarded field name ->
// guarding mutex field name.
type guardSpec struct {
	obj     *types.TypeName   // the struct's type name
	mutexes map[string]bool   // mutex fields that exist on the struct
	fields  map[string]string // guarded field -> mutex field
}

// lockEvent is one mutex operation inside a method body, ordered by
// source position. Deferred unlocks run at function exit, so they never
// clear the held state for statements that follow them textually.
type lockEvent struct {
	pos  token.Pos
	mu   string // mutex field name
	kind string // "Lock", "RLock", "Unlock", "RUnlock"
}

// Lock-state grades: how strongly a mutex is held.
const (
	lockNone  = 0
	lockRead  = 1
	lockWrite = 2
)

// AnalyzerLockGuard enforces the `// irlint:guarded-by mu` annotation on
// struct fields: inside methods of the annotated struct, a guarded field
// may only be read while the named mutex is held (RLock or Lock) and only
// written while it is write-held (Lock). The check is flow-insensitive
// but order-aware: lock state at an access is derived from the textually
// preceding Lock/RLock/Unlock/RUnlock calls on the receiver's mutex,
// with deferred unlocks running at exit. Methods whose contract is
// "caller holds the lock" are annotated // irlint:locked mu on the
// declaration.
func AnalyzerLockGuard() *Analyzer {
	const name = "lock-guard"
	return &Analyzer{
		Name: name,
		Doc:  "fields annotated irlint:guarded-by may only be accessed while the named mutex is held",
		Run: func(p *Package) []Diagnostic {
			if p.Info == nil {
				return nil
			}
			specs, diags := p.collectGuardSpecs()
			for _, f := range p.Files {
				for _, decl := range f.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok || fn.Recv == nil || fn.Body == nil {
						continue
					}
					spec := p.specForReceiver(specs, fn)
					if spec == nil {
						continue
					}
					diags = append(diags, p.lockGuardMethod(f, fn, spec)...)
				}
			}
			diags = append(diags, p.snapshotViaChecks()...)
			return diags
		},
	}
}

// collectGuardSpecs gathers irlint:guarded-by annotations per struct and
// validates that the named mutex is a sync.Mutex/RWMutex field of the
// same struct.
func (p *Package) collectGuardSpecs() (map[*types.TypeName]*guardSpec, []Diagnostic) {
	const name = "lock-guard"
	specs := make(map[*types.TypeName]*guardSpec)
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, s := range gd.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				tn, _ := p.Info.Defs[ts.Name].(*types.TypeName)
				if tn == nil {
					continue
				}
				spec := &guardSpec{obj: tn, mutexes: map[string]bool{}, fields: map[string]string{}}
				for _, field := range st.Fields.List {
					isMutex := false
					if tv, ok := p.Info.Types[field.Type]; ok {
						isMutex = typeIs(tv.Type, "sync", "Mutex") || typeIs(tv.Type, "sync", "RWMutex")
					}
					mu := fieldMarkerArg(field, guardedByMarker)
					for _, id := range field.Names {
						if isMutex {
							spec.mutexes[id.Name] = true
						}
						if mu != "" {
							spec.fields[id.Name] = mu
						}
					}
				}
				guardedNames := make([]string, 0, len(spec.fields))
				for fieldName := range spec.fields {
					guardedNames = append(guardedNames, fieldName)
				}
				sort.Strings(guardedNames)
				for _, fieldName := range guardedNames {
					if mu := spec.fields[fieldName]; !spec.mutexes[mu] {
						diags = append(diags, p.diag(name, ts.Pos(),
							"field %s.%s is guarded-by %q, but %s has no sync.Mutex/RWMutex field of that name",
							ts.Name.Name, fieldName, mu, ts.Name.Name))
						delete(spec.fields, fieldName)
					}
				}
				if len(spec.fields) > 0 {
					specs[tn] = spec
				}
			}
		}
	}
	return specs, diags
}

// fieldMarkerArg extracts the argument of a field marker comment
// ("irlint:guarded-by mu" -> "mu") from the field's doc or line comment.
func fieldMarkerArg(field *ast.Field, marker string) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if arg, ok := markerArg(c.Text, marker); ok {
				return arg
			}
		}
	}
	return ""
}

// markerArg parses "<marker> <arg>" out of a comment line.
func markerArg(text, marker string) (string, bool) {
	idx := strings.Index(text, marker)
	if idx < 0 {
		return "", false
	}
	rest := strings.Fields(text[idx+len(marker):])
	if len(rest) == 0 {
		return "", false
	}
	return rest[0], true
}

// specForReceiver returns the guard spec of the method's receiver type,
// or nil if the receiver is not an annotated struct.
func (p *Package) specForReceiver(specs map[*types.TypeName]*guardSpec, fn *ast.FuncDecl) *guardSpec {
	if len(fn.Recv.List) == 0 {
		return nil
	}
	tv, ok := p.Info.Types[fn.Recv.List[0].Type]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return specs[named.Obj()]
}

// lockGuardMethod checks every guarded-field access in one method.
func (p *Package) lockGuardMethod(f *ast.File, fn *ast.FuncDecl, spec *guardSpec) []Diagnostic {
	if len(fn.Recv.List[0].Names) == 0 {
		return nil // unnamed receiver: the body cannot touch fields
	}
	recvObj := p.Info.Defs[fn.Recv.List[0].Names[0]]
	if recvObj == nil {
		return nil
	}

	// Mutexes the caller already holds per the method's contract.
	heldAtEntry := map[string]bool{}
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if arg, ok := markerArg(c.Text, lockedMarker); ok {
				heldAtEntry[arg] = true
			}
		}
	}

	isRecv := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		return obj == recvObj
	}

	// Pass 1: lock events and write targets.
	var events []lockEvent
	writes := map[*ast.SelectorExpr]bool{}
	markWrites := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok && isRecv(sel.X) {
				if _, guarded := spec.fields[sel.Sel.Name]; guarded {
					writes[sel] = true
				}
			}
			return true
		})
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if ev, ok := p.mutexCall(st.X, spec, isRecv); ok {
				events = append(events, ev)
			}
		case *ast.DeferStmt:
			// Deferred unlocks run at exit; deferred locks (nonsensical)
			// are ignored too. Either way the event does not alter the
			// state seen by subsequent statements.
			return false
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				markWrites(lhs)
			}
		case *ast.IncDecStmt:
			markWrites(st.X)
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	// stateAt derives the held grade of one mutex at a position from the
	// textually preceding events.
	stateAt := func(mu string, pos token.Pos) int {
		state := lockNone
		if heldAtEntry[mu] {
			state = lockWrite // contract: caller holds it strongly enough
		}
		for _, ev := range events {
			if ev.pos >= pos || ev.mu != mu {
				continue
			}
			switch ev.kind {
			case "Lock":
				state = lockWrite
			case "RLock":
				state = lockRead
			case "Unlock", "RUnlock":
				state = lockNone
			}
		}
		return state
	}

	// Pass 2: flag unguarded accesses.
	var diags []Diagnostic
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !isRecv(sel.X) {
			return true
		}
		mu, guarded := spec.fields[sel.Sel.Name]
		if !guarded {
			return true
		}
		need, verb := lockRead, "read"
		if writes[sel] {
			need, verb = lockWrite, "write"
		}
		if stateAt(mu, sel.Pos()) >= need {
			return true
		}
		if p.allowed(f, sel.Pos(), guardDirective) {
			return true
		}
		want := mu + ".RLock"
		if need == lockWrite {
			want = mu + ".Lock"
		}
		diags = append(diags, p.diag("lock-guard", sel.Pos(),
			"%s of %s.%s (guarded by %s) without holding %s; take the lock, annotate the method // %s %s, or annotate the site // %s <reason>",
			verb, spec.obj.Name(), sel.Sel.Name, mu, want, lockedMarker, mu, guardDirective))
		return true
	})
	return diags
}

// mutexCall recognizes recv.<mu>.<Lock|RLock|Unlock|RUnlock>() calls.
func (p *Package) mutexCall(e ast.Expr, spec *guardSpec, isRecv func(ast.Expr) bool) (lockEvent, bool) {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return lockEvent{}, false
	}
	method, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockEvent{}, false
	}
	switch method.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockEvent{}, false
	}
	field, ok := unparen(method.X).(*ast.SelectorExpr)
	if !ok || !isRecv(field.X) || !spec.mutexes[field.Sel.Name] {
		return lockEvent{}, false
	}
	return lockEvent{pos: call.Pos(), mu: field.Sel.Name, kind: method.Sel.Name}, true
}

// snapshotSpec records the irlint:snapshot-via annotations of one
// struct: swapped field name -> the set of methods allowed to touch it.
type snapshotSpec struct {
	obj    *types.TypeName
	fields map[string]map[string]bool
}

// collectSnapshotSpecs gathers irlint:snapshot-via annotations.
func (p *Package) collectSnapshotSpecs() map[*types.TypeName]*snapshotSpec {
	specs := make(map[*types.TypeName]*snapshotSpec)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, s := range gd.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				tn, _ := p.Info.Defs[ts.Name].(*types.TypeName)
				if tn == nil {
					continue
				}
				for _, field := range st.Fields.List {
					arg := fieldMarkerArg(field, snapshotViaMarker)
					if arg == "" {
						continue
					}
					allowed := map[string]bool{}
					for _, m := range strings.Split(arg, ",") {
						if m = strings.TrimSpace(m); m != "" {
							allowed[m] = true
						}
					}
					spec := specs[tn]
					if spec == nil {
						spec = &snapshotSpec{obj: tn, fields: map[string]map[string]bool{}}
						specs[tn] = spec
					}
					for _, id := range field.Names {
						spec.fields[id.Name] = allowed
					}
				}
			}
		}
	}
	return specs
}

// snapshotViaChecks flags every access to an irlint:snapshot-via field
// outside its sanctioned accessor methods. Unlike the guarded-by check
// it is not receiver-scoped: the field may be reached through any value
// of the struct type, from any function in the package, so the check
// resolves the selector's base type instead of the enclosing receiver.
func (p *Package) snapshotViaChecks() []Diagnostic {
	specs := p.collectSnapshotSpecs()
	if len(specs) == 0 {
		return nil
	}
	specFor := func(t types.Type) *snapshotSpec {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return nil
		}
		return specs[named.Obj()]
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// Accessor methods of an annotated struct get free rein over
			// the fields that list them.
			var recvSpec *snapshotSpec
			if fn.Recv != nil {
				if tv, ok := p.Info.Types[fn.Recv.List[0].Type]; ok && tv.Type != nil {
					recvSpec = specFor(tv.Type)
				}
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				tv, ok := p.Info.Types[sel.X]
				if !ok || tv.Type == nil {
					return true
				}
				spec := specFor(tv.Type)
				if spec == nil {
					return true
				}
				allowed, swapped := spec.fields[sel.Sel.Name]
				if !swapped {
					return true
				}
				if spec == recvSpec && allowed[fn.Name.Name] {
					return true
				}
				if p.allowed(f, sel.Pos(), guardDirective) {
					return true
				}
				names := make([]string, 0, len(allowed))
				for m := range allowed {
					names = append(names, m)
				}
				sort.Strings(names)
				diags = append(diags, p.diag("lock-guard", sel.Pos(),
					"access of %s.%s (snapshot-via %s) outside its accessor methods; route through %s or annotate the site // %s <reason>",
					spec.obj.Name(), sel.Sel.Name, strings.Join(names, ","), strings.Join(names, "/"), guardDirective))
				return true
			})
		}
	}
	return diags
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}
