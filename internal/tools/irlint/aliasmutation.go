package irlint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// aliasDirective suppresses an alias-mutation finding where the caller
// provably owns the list (e.g. a benchmark that rebuilds the index
// afterwards).
const aliasDirective = "lint:alias-ok"

// postingsPath and tifPath own the postings storage that the rest of the
// repository aliases by reference.
const (
	postingsPath = ModulePath + "/internal/postings"
	tifPath      = ModulePath + "/internal/tif"
)

// AnalyzerAliasMutation enforces the read-only contract on postings lists
// returned by internal/postings and internal/tif accessors: the same
// backing arrays are shared by reference across tIF, tIF+Slicing and the
// tIF+HINT composites, so an in-place mutation in one index silently
// corrupts another. Outside the owning packages, any value obtained from
// an owner-package call with a postings-list result is treated as aliased
// and must not be mutated (index assignment, append, copy, sort.* calls,
// or the mutating List methods Sort/Append). Clone() results are fresh
// and exempt — Clone is the blessed escape hatch; // lint:alias-ok is the
// annotation of last resort.
func AnalyzerAliasMutation() *Analyzer {
	const name = "alias-mutation"
	return &Analyzer{
		Name: name,
		Doc:  "postings lists returned by internal/tif and internal/postings accessors are read-only outside their owning package",
		Run: func(p *Package) []Diagnostic {
			if p.Info == nil || p.Path == postingsPath || p.Path == tifPath {
				return nil
			}
			var out []Diagnostic
			for _, f := range p.Files {
				file := f
				for _, decl := range f.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok || fn.Body == nil {
						continue
					}
					out = append(out, p.aliasMutationFunc(file, fn)...)
				}
			}
			return out
		},
	}
}

// aliasMutationFunc tracks aliased postings lists through one function
// body (including nested closures) and flags mutations of them.
func (p *Package) aliasMutationFunc(f *ast.File, fn *ast.FuncDecl) []Diagnostic {
	const name = "alias-mutation"
	tracked := map[types.Object]bool{}

	// trackedExpr reports whether e evaluates to an aliased list: a
	// tracked variable, an owner-package accessor call, or a slice /
	// paren / conversion view of one.
	var trackedExpr func(e ast.Expr) bool
	trackedExpr = func(e ast.Expr) bool {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			obj := p.Info.Uses[x]
			if obj == nil {
				obj = p.Info.Defs[x]
			}
			return obj != nil && tracked[obj]
		case *ast.SliceExpr:
			return trackedExpr(x.X)
		case *ast.CallExpr:
			if p.isConversion(x) {
				return len(x.Args) == 1 && trackedExpr(x.Args[0])
			}
			return p.aliasingCall(x)
		}
		return false
	}

	// Fixpoint over assignments: `l := ix.List(e)` then `m := l` both
	// track. Bounded — each round only adds objects.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			mark := func(lhs ast.Expr) {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					return
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj != nil && !tracked[obj] && isPostingsList(obj.Type()) {
					tracked[obj] = true
					changed = true
				}
			}
			if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
				// Tuple assignment from a single call.
				if call, ok := unparen(as.Rhs[0]).(*ast.CallExpr); ok && p.aliasingCall(call) {
					for _, lhs := range as.Lhs {
						mark(lhs)
					}
				}
				return true
			}
			for i, rhs := range as.Rhs {
				if i < len(as.Lhs) && trackedExpr(rhs) {
					mark(as.Lhs[i])
				}
			}
			return true
		})
	}

	// Flag mutations of tracked values.
	var out []Diagnostic
	flag := func(pos token.Pos, what string) {
		if p.allowed(f, pos, aliasDirective) {
			return
		}
		out = append(out, p.diag(name, pos,
			"%s mutates a postings list aliased from %s/%s internals; these lists are shared across indices and read-only — Clone() it first or annotate // %s <reason>",
			what, relPath(postingsPath), relPath(tifPath), aliasDirective))
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if base, viaIndex := indexedBase(lhs); viaIndex && trackedExpr(base) {
					flag(lhs.Pos(), "element assignment")
				}
			}
		case *ast.IncDecStmt:
			if base, viaIndex := indexedBase(st.X); viaIndex && trackedExpr(base) {
				flag(st.Pos(), "element update")
			}
		case *ast.CallExpr:
			switch fun := unparen(st.Fun).(type) {
			case *ast.Ident:
				if _, isBuiltin := p.Info.Uses[fun].(*types.Builtin); isBuiltin &&
					(fun.Name == "append" || fun.Name == "copy") && len(st.Args) > 0 && trackedExpr(st.Args[0]) {
					flag(st.Pos(), fun.Name)
				}
			case *ast.SelectorExpr:
				callee, _ := p.Info.Uses[fun.Sel].(*types.Func)
				if callee == nil {
					return true
				}
				if callee.Pkg() != nil && callee.Pkg().Path() == "sort" {
					for _, arg := range st.Args {
						if trackedExpr(arg) {
							flag(st.Pos(), "sort."+fun.Sel.Name)
							break
						}
					}
					return true
				}
				if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil &&
					(fun.Sel.Name == "Sort" || fun.Sel.Name == "Append") && trackedExpr(fun.X) {
					flag(st.Pos(), "method "+fun.Sel.Name)
				}
			}
		}
		return true
	})
	return out
}

// aliasingCall reports whether call invokes a function or method declared
// in an owning package that returns an aliased postings list. Clone is
// exempt: it returns a fresh copy by contract.
func (p *Package) aliasingCall(call *ast.CallExpr) bool {
	var callee *types.Func
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		callee, _ = p.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = p.Info.Uses[fun.Sel].(*types.Func)
	}
	if callee == nil || callee.Pkg() == nil || callee.Name() == "Clone" {
		return false
	}
	if path := callee.Pkg().Path(); path != postingsPath && path != tifPath {
		return false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isPostingsList(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// isConversion reports whether call is a type conversion, not a function
// call.
func (p *Package) isConversion(call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		_, ok := p.Info.Uses[fun].(*types.TypeName)
		return ok
	case *ast.SelectorExpr:
		_, ok := p.Info.Uses[fun.Sel].(*types.TypeName)
		return ok
	}
	return false
}

// isPostingsList reports whether t is postings.List or a slice of
// postings.Posting.
func isPostingsList(t types.Type) bool {
	if t == nil {
		return false
	}
	if typeIs(t, postingsPath, "List") {
		return true
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return typeIs(sl.Elem(), postingsPath, "Posting")
}

// indexedBase unwraps an assignment target to its base expression,
// reporting whether the path went through an index expression (x[i],
// x[i].Field) — the shape that mutates backing storage rather than
// rebinding a variable.
func indexedBase(e ast.Expr) (ast.Expr, bool) {
	viaIndex := false
	for {
		switch x := unparen(e).(type) {
		case *ast.IndexExpr:
			viaIndex = true
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e, viaIndex
		}
	}
}
