package irlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// mapOrderDirective suppresses a map-order finding at sites where the
// caller establishes order by other means the analyzer cannot see.
const mapOrderDirective = "lint:map-order-ok"

// AnalyzerMapOrder flags `range` loops over maps whose bodies append to a
// slice declared outside the loop — the pattern that leaks Go's randomized
// map iteration order into ordered results (postings intersections assume
// sorted inputs; encoders and API responses assume stable output). A loop
// is exempt when a later statement in the same block visibly sorts the
// sink (a call whose name contains "Sort" referencing it), or when
// annotated with // lint:map-order-ok.
func AnalyzerMapOrder() *Analyzer {
	const name = "map-order"
	return &Analyzer{
		Name: name,
		Doc:  "no range over a map may feed an ordered sink (slice append) without sorting afterwards",
		Run: func(p *Package) []Diagnostic {
			if p.Info == nil {
				return nil
			}
			var out []Diagnostic
			for _, f := range p.Files {
				file := f
				ast.Inspect(f, func(n ast.Node) bool {
					var body *ast.BlockStmt
					switch fn := n.(type) {
					case *ast.FuncDecl:
						body = fn.Body
					case *ast.FuncLit:
						body = fn.Body
					default:
						return true
					}
					if body != nil {
						out = append(out, p.mapOrderBlock(file, body.List)...)
					}
					return true
				})
			}
			return out
		},
	}
}

// mapOrderBlock scans a statement list (and nested blocks) for offending
// map ranges, with access to the statements that follow each loop so the
// sorted-afterwards exemption can be applied.
func (p *Package) mapOrderBlock(f *ast.File, stmts []ast.Stmt) []Diagnostic {
	const name = "map-order"
	var out []Diagnostic
	for i, s := range stmts {
		rs, ok := s.(*ast.RangeStmt)
		if ok && p.isMapRange(rs) {
			sinks := p.orderedSinks(rs)
			for _, sink := range sinks {
				if p.allowed(f, rs.Pos(), mapOrderDirective) {
					continue
				}
				if sortedAfter(stmts[i+1:], sink.name) {
					continue
				}
				out = append(out, p.diag(name, sink.pos,
					"append to %q inside range over map: iteration order leaks into an ordered sink; sort afterwards or annotate with // %s <reason>",
					sink.name, mapOrderDirective))
			}
		}
		// Recurse into every nested statement list.
		switch st := s.(type) {
		case *ast.BlockStmt:
			out = append(out, p.mapOrderBlock(f, st.List)...)
		case *ast.RangeStmt:
			out = append(out, p.mapOrderBlock(f, st.Body.List)...)
		case *ast.ForStmt:
			out = append(out, p.mapOrderBlock(f, st.Body.List)...)
		case *ast.IfStmt:
			out = append(out, p.mapOrderBlock(f, st.Body.List)...)
			if els, ok := st.Else.(*ast.BlockStmt); ok {
				out = append(out, p.mapOrderBlock(f, els.List)...)
			}
		case *ast.SwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					out = append(out, p.mapOrderBlock(f, cc.Body)...)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					out = append(out, p.mapOrderBlock(f, cc.Body)...)
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					out = append(out, p.mapOrderBlock(f, cc.Body)...)
				}
			}
		case *ast.LabeledStmt:
			out = append(out, p.mapOrderBlock(f, []ast.Stmt{st.Stmt})...)
		}
	}
	return out
}

// isMapRange reports whether rs iterates a map.
func (p *Package) isMapRange(rs *ast.RangeStmt) bool {
	tv, ok := p.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// sink is one ordered-output violation candidate: an append target
// declared outside the loop.
type sink struct {
	name string
	pos  token.Pos
}

// orderedSinks finds appends inside the range body whose target variable
// is declared outside the range statement.
func (p *Package) orderedSinks(rs *ast.RangeStmt) []sink {
	var out []sink
	seen := make(map[types.Object]bool)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" || len(call.Args) == 0 {
			return true
		}
		if obj := p.Info.Uses[fn]; obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
				return true // shadowed append
			}
		}
		target, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[target]
		if obj == nil || seen[obj] {
			return true
		}
		// Declared outside the loop ⇒ the append order escapes it.
		if obj.Pos() < rs.Pos() || obj.Pos() > rs.End() {
			seen[obj] = true
			out = append(out, sink{name: target.Name, pos: call.Pos()})
		}
		return true
	})
	return out
}

// sortedAfter reports whether any following statement calls a sorting
// function (name containing "Sort") that references the sink variable as
// an argument or receiver.
func sortedAfter(rest []ast.Stmt, sinkName string) bool {
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return true
			}
			var fnName string
			var recv ast.Expr
			switch fn := call.Fun.(type) {
			case *ast.Ident:
				fnName = fn.Name
			case *ast.SelectorExpr:
				if base, ok := fn.X.(*ast.Ident); ok {
					fnName = base.Name + "." + fn.Sel.Name
				} else {
					fnName = fn.Sel.Name
				}
				recv = fn.X
			default:
				return true
			}
			lower := strings.ToLower(fnName)
			if !strings.Contains(lower, "sort") && !strings.Contains(lower, "dedup") {
				return true
			}
			if exprMentions(recv, sinkName) {
				found = true
				return false
			}
			for _, a := range call.Args {
				if exprMentions(a, sinkName) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// exprMentions reports whether the identifier name occurs anywhere in e.
func exprMentions(e ast.Expr, name string) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return !found
	})
	return found
}
