package perf

import (
	"go/ast"
	"go/types"

	"repro/internal/tools/irlint/flow"
)

// IsLockCall reports whether call is a direct sync.Mutex / sync.RWMutex
// acquire or release (Lock, Unlock, RLock, RUnlock, TryLock, TryRLock).
func IsLockCall(callee *types.Func) bool {
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if !flow.IsNamed(recv, "sync", "Mutex") && !flow.IsNamed(recv, "sync", "RWMutex") {
		return false
	}
	switch callee.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return true
	}
	return false
}

// MayLock computes the set of in-module functions that may acquire or
// release a mutex, directly or through any chain of in-module callees —
// the join defer-in-loop uses so `h.helper()` inside a hot loop is
// rejected when helper locks three calls down.
func MayLock(g *flow.Graph) map[*types.Func]bool {
	locks := make(map[*types.Func]bool)
	for _, fn := range g.Funcs() {
		if fn.Decl == nil || fn.Decl.Body == nil {
			continue
		}
		direct := false
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			if direct {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if IsLockCall(flow.Callee(fn.Unit.Info, call)) {
				direct = true
			}
			return true
		})
		if direct {
			locks[fn.Obj] = true
		}
	}
	// Propagate caller <- callee to a fixpoint: a function may lock if
	// any in-module callee may lock.
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Funcs() {
			if locks[fn.Obj] {
				continue
			}
			for _, call := range fn.Calls {
				if locks[call.Callee] {
					locks[fn.Obj] = true
					changed = true
					break
				}
			}
		}
	}
	return locks
}
