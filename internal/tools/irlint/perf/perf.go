// Package perf is irlint's performance-contract substrate. It supplies
// the two facts the v4 analyzers (alloc-hot, append-grow, defer-in-loop,
// iface-dispatch) join against the flow call graph:
//
//   - an escape-fact table parsed from the gc compiler's own escape
//     diagnostics (`go build -gcflags=./...=-m=2 ./...`), keyed by file
//     and line so findings land on the allocation site, not the function;
//   - the hot set: every function reachable in the static call graph
//     from an `irlint:hot <reason>` root, with `irlint:cold <reason>`
//     annotations pruning propagation into paths that are statically
//     reachable but never on the per-query fast path (parallel fan-out
//     variants, bulk-load finalization, panic formatting).
//
// The package also carries the mutex fixpoint (MayLock) defer-in-loop
// uses to reject lock acquisition hidden behind in-module helpers.
//
// Like the rest of the suite it is stdlib-only; collecting escape facts
// shells out to the already-present go toolchain and is replayed from
// the build cache on every run after the first.
package perf
