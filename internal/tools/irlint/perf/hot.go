package perf

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/tools/irlint/flow"
)

// Annotation vocabulary. Both live on the function declaration line or
// the last ordinary line of its doc comment (compiler directives like
// //go:noinline below the annotation are skipped) and require a stated
// reason.
const (
	// HotDirective marks a query-path root: the function and everything
	// statically reachable from it in-module is held to the v4
	// performance contracts.
	HotDirective = "irlint:hot"
	// ColdDirective prunes propagation: the annotated function is
	// statically reachable from a hot root but never on the per-query
	// fast path (parallel fan-out, bulk-load finalization, panic
	// formatting), so the contracts stop at its boundary.
	ColdDirective = "irlint:cold"
)

// Problem is an annotation-hygiene finding surfaced while computing the
// hot set (missing reason, contradictory hot+cold) — reported through
// the alloc-hot analyzer so it gates like any other diagnostic.
type Problem struct {
	Pos     token.Position
	Message string
}

// HotSet is the transitive closure of the irlint:hot roots over the
// flow call graph, minus the irlint:cold frontier.
type HotSet struct {
	// rootOf maps every hot function to the annotated root that first
	// reached it (roots map to themselves).
	rootOf map[*types.Func]*flow.Func
	// reason holds the stated rationale per root.
	reason map[*types.Func]string
	// cold holds the stated rationale per cold-annotated function.
	cold map[*types.Func]string
	// Problems lists annotation-hygiene findings.
	Problems []Problem
}

// ComputeHot scans every declaration in the graph for hot/cold
// annotations and propagates hotness breadth-first through in-module
// call edges, stopping at cold functions.
func ComputeHot(g *flow.Graph) *HotSet {
	h := &HotSet{
		rootOf: make(map[*types.Func]*flow.Func),
		reason: make(map[*types.Func]string),
		cold:   make(map[*types.Func]string),
	}
	comments := make(map[*flow.Unit]map[*ast.File]map[int]string)
	var roots []*flow.Func
	for _, fn := range g.Funcs() {
		if fn.Decl == nil || fn.Obj == nil {
			continue
		}
		pos := fn.Decl.Pos()
		hot, hotReason, hotOK := directiveAt(comments, fn.Unit, pos, HotDirective)
		cold, coldReason, coldOK := directiveAt(comments, fn.Unit, pos, ColdDirective)
		at := fn.Unit.Fset.Position(pos)
		if hot && cold {
			h.Problems = append(h.Problems, Problem{at, fmt.Sprintf(
				"%s is annotated both %s and %s; pick one", fn.Obj.Name(), HotDirective, ColdDirective)})
			continue
		}
		if hot {
			if !hotOK {
				h.Problems = append(h.Problems, Problem{at, fmt.Sprintf(
					"%s annotation on %s needs a reason: %s <why this is on the per-query fast path>",
					HotDirective, fn.Obj.Name(), HotDirective)})
			}
			h.reason[fn.Obj] = hotReason
			roots = append(roots, fn)
		}
		if cold {
			if !coldOK {
				h.Problems = append(h.Problems, Problem{at, fmt.Sprintf(
					"%s annotation on %s needs a reason: %s <why the query path never takes this branch>",
					ColdDirective, fn.Obj.Name(), ColdDirective)})
			}
			h.cold[fn.Obj] = coldReason
		}
	}
	queue := make([]*flow.Func, 0, len(roots))
	for _, r := range roots {
		if _, isCold := h.cold[r.Obj]; isCold {
			continue
		}
		h.rootOf[r.Obj] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		root := h.rootOf[fn.Obj]
		for _, call := range fn.Calls {
			callee := g.FuncOf(call.Callee)
			if callee == nil { // out-of-module or bodyless
				continue
			}
			if _, isCold := h.cold[callee.Obj]; isCold {
				continue
			}
			if _, seen := h.rootOf[callee.Obj]; seen {
				continue
			}
			h.rootOf[callee.Obj] = root
			queue = append(queue, callee)
		}
	}
	return h
}

// Empty reports whether no function is hot.
func (h *HotSet) Empty() bool { return len(h.rootOf) == 0 }

// IsHot reports whether obj is on the hot path.
func (h *HotSet) IsHot(obj *types.Func) bool {
	_, ok := h.rootOf[obj]
	return ok
}

// RootOf returns the annotated root whose closure contains obj, or nil.
func (h *HotSet) RootOf(obj *types.Func) *flow.Func {
	return h.rootOf[obj]
}

// Via renders the provenance suffix for diagnostics: "" for a root
// itself, " (hot via Root)" for propagated members.
func (h *HotSet) Via(obj *types.Func) string {
	root := h.rootOf[obj]
	if root == nil || root.Obj == obj {
		return ""
	}
	return fmt.Sprintf(" (hot via %s)", root.Obj.Name())
}

// directiveAt reports whether directive annotates the line of pos or the
// line above it in the unit's comments, plus the trimmed trailing reason
// and whether that reason is non-empty.
func directiveAt(cache map[*flow.Unit]map[*ast.File]map[int]string, u *flow.Unit, pos token.Pos, directive string) (found bool, reason string, ok bool) {
	files := cache[u]
	if files == nil {
		files = make(map[*ast.File]map[int]string)
		cache[u] = files
	}
	var f *ast.File
	for _, cand := range u.Files {
		if cand.FileStart <= pos && pos < cand.FileEnd {
			f = cand
			break
		}
	}
	if f == nil {
		return false, "", false
	}
	lines := files[f]
	if lines == nil {
		lines = make(map[int]string)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ln := u.Fset.Position(c.Pos()).Line
				lines[ln] += " " + c.Text
			}
		}
		files[f] = lines
	}
	// Candidate lines: the declaration line, then upward through the doc
	// comment — past any compiler directives (//go:noinline and friends),
	// which gofmt pins to the bottom of the block, to the first ordinary
	// comment line. So "// irlint:cold why" above "//go:noinline" above
	// the func still annotates it.
	ln := u.Fset.Position(pos).Line
	cands := []int{ln}
	for l := ln - 1; ; l-- {
		txt, isComment := lines[l]
		if !isComment {
			break
		}
		cands = append(cands, l)
		if !compilerDirectiveOnly(txt) {
			break
		}
	}
	for _, l := range cands {
		i := strings.Index(lines[l], directive)
		if i < 0 {
			continue
		}
		// Word boundary: "irlint:hot-iface" must not read as "irlint:hot".
		if tail := lines[l][i+len(directive):]; tail != "" && (tail[0] == '-' || isWordByte(tail[0])) {
			continue
		}
		rest := strings.TrimSpace(lines[l][i+len(directive):])
		rest = strings.TrimSpace(strings.TrimSuffix(rest, "*/"))
		return true, rest, rest != ""
	}
	return false, "", false
}

func isWordByte(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

// compilerDirectiveOnly reports whether a comment line carries nothing
// but toolchain directives ("//go:noinline", "//line ...") or is blank.
func compilerDirectiveOnly(line string) bool {
	for _, f := range strings.Fields(line) {
		if f == "//" || strings.HasPrefix(f, "//go:") || strings.HasPrefix(f, "//line") {
			continue
		}
		return false
	}
	return true
}
