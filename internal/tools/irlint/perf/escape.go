package perf

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// FactKind classifies one escape diagnostic.
type FactKind uint8

const (
	// FactEscapes is a "<expr> escapes to heap" diagnostic: a composite
	// literal, make, new, boxed interface value, or closure whose storage
	// the compiler placed on the heap.
	FactEscapes FactKind = iota
	// FactMoved is a "moved to heap: <var>" diagnostic: a local variable
	// forced off the stack because its address outlives the frame.
	FactMoved
)

// Fact is one position-keyed heap-allocation fact from the compiler.
type Fact struct {
	// File is the absolute path of the source file (or the bare name the
	// table was built with, for fixture tables).
	File string
	// Line and Col locate the allocating expression.
	Line, Col int
	Kind      FactKind
	// Text is the diagnostic message, e.g. "&Iterator{...} escapes to heap".
	Text string
}

// Table indexes escape facts by file and line for the range joins the
// alloc-hot analyzer performs per hot function.
type Table struct {
	byFile map[string]map[int][]Fact
	seen   map[Fact]bool
}

// NewTable returns an empty fact table.
func NewTable() *Table {
	return &Table{
		byFile: make(map[string]map[int][]Fact),
		seen:   make(map[Fact]bool),
	}
}

// Add records one fact, dropping exact duplicates (the compiler repeats
// diagnostics for instantiations).
func (t *Table) Add(f Fact) {
	if t.seen[f] {
		return
	}
	t.seen[f] = true
	lines := t.byFile[f.File]
	if lines == nil {
		lines = make(map[int][]Fact)
		t.byFile[f.File] = lines
	}
	lines[f.Line] = append(lines[f.Line], f)
}

// Len reports the number of distinct facts in the table.
func (t *Table) Len() int { return len(t.seen) }

// InRange returns every fact in file between startLine and endLine
// inclusive, ordered by line then column.
func (t *Table) InRange(file string, startLine, endLine int) []Fact {
	lines := t.byFile[file]
	if lines == nil {
		return nil
	}
	var out []Fact
	for ln := startLine; ln <= endLine; ln++ {
		out = append(out, lines[ln]...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Col < out[j].Col
	})
	return out
}

// Parse reads `go build -gcflags=-m=2` output and keeps the two
// heap-allocation diagnostic shapes ("escapes to heap", "moved to
// heap"); explanation lines, inlining chatter, and "does not escape"
// notes are dropped. Relative file paths are resolved against root so
// facts key on the same absolute filenames the loader's FileSet uses.
func Parse(output []byte, root string) *Table {
	t := NewTable()
	sc := bufio.NewScanner(bytes.NewReader(output))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || line[0] == ' ' || line[0] == '\t' || line[0] == '#' {
			continue // indented explanation chains and package banners
		}
		file, ln, col, msg, ok := splitDiag(line)
		if !ok {
			continue
		}
		kind, ok := classify(msg)
		if !ok {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, file)
		}
		t.Add(Fact{File: file, Line: ln, Col: col, Kind: kind, Text: msg})
	}
	return t
}

// splitDiag splits "path/file.go:12:7: message" into its parts.
func splitDiag(line string) (file string, ln, col int, msg string, ok bool) {
	i := strings.Index(line, ".go:")
	if i < 0 {
		return "", 0, 0, "", false
	}
	file = line[:i+3]
	rest := line[i+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) != 3 {
		return "", 0, 0, "", false
	}
	ln, err1 := strconv.Atoi(parts[0])
	col, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || ln <= 0 {
		return "", 0, 0, "", false
	}
	return file, ln, col, strings.TrimSpace(parts[2]), true
}

// classify maps a diagnostic message to its fact kind. Messages like
// "x does not escape" and "inlining call to f" fall through.
func classify(msg string) (FactKind, bool) {
	switch {
	case strings.HasPrefix(msg, "moved to heap:"):
		return FactMoved, true
	case strings.HasSuffix(msg, "escapes to heap"):
		return FactEscapes, true
	}
	return 0, false
}

// Collect runs the gc escape analysis over the module containing dir and
// parses the diagnostics into a table. The compile output is replayed
// from the build cache when sources are unchanged, so repeat lint runs
// pay roughly a cache probe, not a rebuild.
func Collect(dir string) (*Table, error) {
	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command("go", "build", "-gcflags=./...=-m=2", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		excerpt := out
		if len(excerpt) > 2048 {
			excerpt = excerpt[:2048]
		}
		return nil, fmt.Errorf("perf: go build -gcflags=-m=2 failed: %v\n%s", err, excerpt)
	}
	return Parse(out, root), nil
}

// moduleRoot walks up from dir to the directory containing go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("perf: no go.mod above %s", abs)
		}
		d = parent
	}
}
