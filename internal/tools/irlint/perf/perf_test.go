package perf

import (
	"testing"
)

const sampleM2 = `# repro/internal/postings
internal/postings/postings.go:72:12: parameter l leaks to {heap} with derefs=0:
internal/postings/postings.go:72:12:   flow: {heap} = l:
internal/postings/postings.go:72:12: l escapes to heap
internal/postings/postings.go:156:13: make([]model.ObjectID, 0, total) escapes to heap
internal/postings/postings.go:40:6: can inline TemporalFilter with cost 74
internal/postings/postings.go:44:21: dst does not escape
internal/rank/rank.go:122:12: moved to heap: h
internal/rank/rank.go:122:12: moved to heap: h
/abs/other.go:9:3: []float64{...} escapes to heap
garbage line without position
internal/x/x.go:bad:3: nonsense escapes to heap
`

func TestParse(t *testing.T) {
	tbl := Parse([]byte(sampleM2), "/mod")
	if got, want := tbl.Len(), 4; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	facts := tbl.InRange("/mod/internal/postings/postings.go", 1, 200)
	if len(facts) != 2 {
		t.Fatalf("postings facts = %d, want 2 (%v)", len(facts), facts)
	}
	if facts[0].Line != 72 || facts[0].Kind != FactEscapes || facts[0].Text != "l escapes to heap" {
		t.Errorf("first fact = %+v", facts[0])
	}
	if facts[1].Line != 156 || facts[1].Text != "make([]model.ObjectID, 0, total) escapes to heap" {
		t.Errorf("second fact = %+v", facts[1])
	}
	// "moved to heap" dedups and classifies.
	moved := tbl.InRange("/mod/internal/rank/rank.go", 122, 122)
	if len(moved) != 1 || moved[0].Kind != FactMoved {
		t.Errorf("moved facts = %+v, want one FactMoved", moved)
	}
	// Absolute paths stay absolute.
	if got := tbl.InRange("/abs/other.go", 9, 9); len(got) != 1 {
		t.Errorf("absolute-path fact missing: %v", got)
	}
}

func TestParseDropsNonAllocationDiagnostics(t *testing.T) {
	out := `internal/a/a.go:5:2: can inline f
internal/a/a.go:6:2: x does not escape
internal/a/a.go:7:2: inlining call to g
internal/a/a.go:8:2: leaking param: p
`
	if tbl := Parse([]byte(out), "/m"); tbl.Len() != 0 {
		t.Fatalf("expected no facts, got %d", tbl.Len())
	}
}

func TestInRangeBounds(t *testing.T) {
	tbl := NewTable()
	tbl.Add(Fact{File: "f.go", Line: 10, Col: 1, Kind: FactEscapes, Text: "a escapes to heap"})
	tbl.Add(Fact{File: "f.go", Line: 20, Col: 1, Kind: FactEscapes, Text: "b escapes to heap"})
	if got := tbl.InRange("f.go", 11, 19); len(got) != 0 {
		t.Errorf("out-of-range lookup returned %v", got)
	}
	if got := tbl.InRange("f.go", 10, 20); len(got) != 2 {
		t.Errorf("in-range lookup returned %v", got)
	}
	if got := tbl.InRange("other.go", 1, 100); got != nil {
		t.Errorf("unknown file returned %v", got)
	}
}

func TestModuleRootFindsGoMod(t *testing.T) {
	root, err := moduleRoot(".")
	if err != nil {
		t.Fatalf("moduleRoot: %v", err)
	}
	// This test file lives four levels below the module root.
	if root == "" {
		t.Fatal("empty root")
	}
}
