package irlint

import (
	"repro/internal/tools/irlint/flow"
)

// Program is the whole-program view the v3 analyzers run over: every
// loaded package plus a lazily built flow graph (call edges, reachability,
// input summaries) shared by all of them. Per-package analyzers never see
// a Program; whole-program analyzers receive exactly one per Run call, so
// the graph and its fixpoint summaries are computed at most once per lint
// invocation.
type Program struct {
	// Pkgs lists every loaded package in load order.
	Pkgs []*Package

	graph *flow.Graph
}

// NewProgram wraps a set of loaded packages. The flow graph is not built
// until Graph is first called.
func NewProgram(pkgs []*Package) *Program {
	return &Program{Pkgs: pkgs}
}

// Graph returns the program's call graph, building it on first use.
func (pr *Program) Graph() *flow.Graph {
	if pr.graph == nil {
		units := make([]*flow.Unit, 0, len(pr.Pkgs))
		for _, p := range pr.Pkgs {
			units = append(units, &flow.Unit{
				Path:  p.Path,
				Fset:  p.Fset,
				Files: p.Files,
				Info:  p.Info,
				Pkg:   p.Types,
			})
		}
		pr.graph = flow.Build(units)
	}
	return pr.graph
}

// PackageOf returns the loaded package a graph function was declared in,
// matching by import path.
func (pr *Program) PackageOf(fn *flow.Func) *Package {
	for _, p := range pr.Pkgs {
		if p.Path == fn.Unit.Path {
			return p
		}
	}
	return nil
}
