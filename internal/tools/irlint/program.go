package irlint

import (
	"repro/internal/tools/irlint/flow"
	"repro/internal/tools/irlint/perf"
)

// Program is the whole-program view the v3/v4 analyzers run over: every
// loaded package plus a lazily built flow graph (call edges, reachability,
// input summaries) shared by all of them. Per-package analyzers never see
// a Program; whole-program analyzers receive exactly one per Run call, so
// the graph and its fixpoint summaries are computed at most once per lint
// invocation.
type Program struct {
	// Pkgs lists every loaded package in load order.
	Pkgs []*Package

	// Escapes is the compiler escape-fact table (go build -m=2). Tests
	// set it directly; the cmd/irlint driver leaves it nil and sets
	// EscapeSource instead so the (cached but nonzero-cost) collection
	// only happens when a hot root actually exists in the loaded set.
	Escapes *perf.Table

	// EscapeSource lazily provides the escape-fact table. A collection
	// error is reported as an alloc-hot diagnostic, so a broken build
	// gates the same way a load error does.
	EscapeSource func() (*perf.Table, error)

	graph      *flow.Graph
	hot        *perf.HotSet
	escapeErr  error
	escapeDone bool
}

// NewProgram wraps a set of loaded packages. The flow graph is not built
// until Graph is first called.
func NewProgram(pkgs []*Package) *Program {
	return &Program{Pkgs: pkgs}
}

// Graph returns the program's call graph, building it on first use.
func (pr *Program) Graph() *flow.Graph {
	if pr.graph == nil {
		units := make([]*flow.Unit, 0, len(pr.Pkgs))
		for _, p := range pr.Pkgs {
			units = append(units, &flow.Unit{
				Path:  p.Path,
				Fset:  p.Fset,
				Files: p.Files,
				Info:  p.Info,
				Pkg:   p.Types,
			})
		}
		pr.graph = flow.Build(units)
	}
	return pr.graph
}

// Hot returns the hot-root closure (perf.HotDirective) over the call
// graph, computed once.
func (pr *Program) Hot() *perf.HotSet {
	if pr.hot == nil {
		pr.hot = perf.ComputeHot(pr.Graph())
	}
	return pr.hot
}

// EscapeTable resolves the escape-fact table at most once: an explicit
// Escapes field wins, then EscapeSource, else nil (fixture mode — the
// alloc-hot analyzer falls back to its syntactic checks only).
func (pr *Program) EscapeTable() (*perf.Table, error) {
	if pr.Escapes != nil {
		return pr.Escapes, nil
	}
	if pr.EscapeSource == nil {
		return nil, nil
	}
	if !pr.escapeDone {
		pr.escapeDone = true
		pr.Escapes, pr.escapeErr = pr.EscapeSource()
	}
	return pr.Escapes, pr.escapeErr
}

// PackageOf returns the loaded package a graph function was declared in,
// matching by import path.
func (pr *Program) PackageOf(fn *flow.Func) *Package {
	for _, p := range pr.Pkgs {
		if p.Path == fn.Unit.Path {
			return p
		}
	}
	return nil
}
