package irlint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The v3 analyzers use two kinds of comment vocabulary, both placed on
// the flagged line or the line directly above it:
//
//   - contract annotations (irlint:ctx-root, irlint:goroutine-exits) that
//     declare WHY a detached context or goroutine is intentional — these
//     require a stated reason, an empty annotation is itself a finding;
//   - escape hatches (lint:freeze-ok, lint:metric-ok) matching the
//     existing lint:*-ok convention.

// directiveReason reports whether a directive annotates the line of pos
// or the line above, and returns the text following the directive (the
// stated reason, whitespace-trimmed). Used by annotations that require a
// rationale: found-but-empty is a weaker state than absent.
func (p *Package) directiveReason(f *ast.File, pos token.Pos, directive string) (found bool, reason string) {
	if f == nil {
		return false, ""
	}
	// Prime and reuse the same per-line comment cache as allowed().
	p.allowed(f, pos, "\x00never-matches")
	lines := p.directives[f]
	ln := p.Fset.Position(pos).Line
	for _, l := range []int{ln, ln - 1} {
		for _, text := range lines[l] {
			if i := strings.Index(text, directive); i >= 0 {
				rest := strings.TrimSpace(text[i+len(directive):])
				rest = strings.TrimSuffix(rest, "*/")
				return true, strings.TrimSpace(rest)
			}
		}
	}
	return false, ""
}

// isMainPackage reports whether the package is a command entry point,
// which is exempt from the ctx-root rule: main is where root contexts
// legitimately begin.
func (p *Package) isMainPackage() bool {
	return p.Types != nil && p.Types.Name() == "main"
}
