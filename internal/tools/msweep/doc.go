// Command msweep is an ablation tool for the irHINT cost model: it sweeps
// the hierarchy bits m on an ECLOG-like dataset, printing throughput and
// size per m next to the value the cost model selects (m=0 row). Used to
// calibrate the PartitionOverhead constant in internal/core; see the
// "tuning irHINT's m" ablation in EXPERIMENTS.md.
package main
