package main

import (
	"fmt"
	"time"

	temporalir "repro"
	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	c := gen.ECLOGLike(gen.RealConfig{Scale: 0.1, Seed: 43})
	qs := gen.Workload(c, gen.DefaultQueryConfig(), 400, 17)
	auto := core.NewPerf(c)
	fmt.Println("cost-model m =", auto.M())
	for _, m := range []int{0, 2, 3, 4, 5, 6, 8, 10, 12} {
		var ix temporalir.Index
		if m == 0 {
			ix = auto
		} else {
			ix = core.NewPerf(c, core.WithM(m))
		}
		start := time.Now()
		n := 0
		for time.Since(start) < 300*time.Millisecond {
			for _, q := range qs {
				_ = ix.Query(q)
				n++
			}
		}
		fmt.Printf("m=%2d  qps=%8.0f  size=%6.1fMB\n", m, float64(n)/time.Since(start).Seconds(), float64(ix.SizeBytes())/(1<<20))
	}
}
