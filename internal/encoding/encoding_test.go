package encoding

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/model"
)

func TestRoundTrip(t *testing.T) {
	c := gen.Synthetic(gen.SyntheticConfig{Seed: 3}.Defaults(0.0005))
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Len() != c.Len() || got.DictSize != c.DictSize {
		t.Fatalf("Len/DictSize mismatch: %d/%d vs %d/%d", got.Len(), got.DictSize, c.Len(), c.DictSize)
	}
	// Objects are re-ordered by start; compare as multisets of
	// (interval, elems) signatures.
	sig := func(c *model.Collection) map[string]int {
		m := map[string]int{}
		for i := range c.Objects {
			o := &c.Objects[i]
			var b strings.Builder
			b.WriteString(o.Interval.String())
			for _, e := range o.Elems {
				b.WriteString(",")
				b.WriteByte(byte('0' + e%10))
				b.WriteString(string(rune('a' + e%26)))
			}
			m[b.String()]++
		}
		return m
	}
	a, b := sig(c), sig(got)
	if len(a) != len(b) {
		t.Fatalf("signature count mismatch: %d vs %d", len(a), len(b))
	}
	for k, n := range a {
		if b[k] != n {
			t.Fatalf("signature %q: %d vs %d", k, n, b[k])
		}
	}
	// Loaded ids are dense and starts non-decreasing.
	for i := range got.Objects {
		if got.Objects[i].ID != model.ObjectID(i) {
			t.Fatal("ids not dense")
		}
		if i > 0 && got.Objects[i].Interval.Start < got.Objects[i-1].Interval.Start {
			t.Fatal("objects not start-ordered")
		}
	}
}

func TestEmptyCollection(t *testing.T) {
	var c model.Collection
	var buf bytes.Buffer
	if err := Write(&buf, &c); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Len() != 0 {
		t.Errorf("Len = %d", got.Len())
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE....."))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestTruncated(t *testing.T) {
	c := gen.Synthetic(gen.SyntheticConfig{Seed: 4}.Defaults(0.0002))
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 3, 5, len(data) / 2, len(data) - 1} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestBadVersion(t *testing.T) {
	data := append([]byte("TIRC"), 99)
	if _, err := Read(bytes.NewReader(data)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version error = %v", err)
	}
}

func TestNegativeTimestampsSurvive(t *testing.T) {
	var c model.Collection
	c.AppendObject(model.Interval{Start: -500, End: -100}, []model.ElemID{0})
	c.AppendObject(model.Interval{Start: -50, End: 200}, []model.ElemID{1})
	var buf bytes.Buffer
	if err := Write(&buf, &c); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Objects[0].Interval != (model.Interval{Start: -500, End: -100}) {
		t.Errorf("first interval = %v", got.Objects[0].Interval)
	}
}

func TestRandomCorruptionNeverPanics(t *testing.T) {
	c := gen.Synthetic(gen.SyntheticConfig{Seed: 6}.Defaults(0.0003))
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		corrupted := append([]byte(nil), data...)
		for flips := 0; flips < 1+rng.Intn(5); flips++ {
			corrupted[rng.Intn(len(corrupted))] ^= byte(1 << rng.Intn(8))
		}
		// Reading may error or may succeed with altered-but-valid data;
		// it must never panic and never produce invalid intervals.
		got, err := Read(bytes.NewReader(corrupted))
		if err != nil {
			continue
		}
		for i := range got.Objects {
			if !got.Objects[i].Interval.Valid() {
				t.Fatalf("trial %d: invalid interval decoded", trial)
			}
		}
	}
}

// TestHugeClaimedCounts feeds headers whose varint counts claim
// absurd sizes with no bytes behind them: decoding must fail from the
// missing data, not commit a giant preallocation first. Run with a
// memory limit this is the difference between an error and an OOM kill.
func TestHugeClaimedCounts(t *testing.T) {
	putUv := func(b []byte, v uint64) []byte {
		var tmp [10]byte
		n := binary.PutUvarint(tmp[:], v)
		return append(b, tmp[:n]...)
	}
	// Header claiming 2^60 objects, then EOF.
	hdr := append([]byte("TIRC"), version)
	hdr = putUv(hdr, 8)     // dictSize
	hdr = putUv(hdr, 1<<60) // count
	if _, err := Read(bytes.NewReader(hdr)); err == nil {
		t.Error("2^60-object header accepted")
	}

	// One object claiming more elements than the dictionary holds.
	hdr = append([]byte("TIRC"), version)
	hdr = putUv(hdr, 8) // dictSize
	hdr = putUv(hdr, 1) // count
	hdr = append(hdr, 2, 2)
	hdr = putUv(hdr, 1<<50) // nElems far past dictSize
	if _, err := Read(bytes.NewReader(hdr)); err == nil || !strings.Contains(err.Error(), "elements") {
		t.Errorf("oversized nElems error = %v", err)
	}
}

func TestCompressionBeatsNaive(t *testing.T) {
	c := gen.Synthetic(gen.SyntheticConfig{Seed: 5}.Defaults(0.001))
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	naive := int64(c.Len())*16 + 4*int64(func() int {
		n := 0
		for i := range c.Objects {
			n += len(c.Objects[i].Elems)
		}
		return n
	}())
	if int64(buf.Len()) >= naive {
		t.Errorf("varint encoding (%d bytes) should beat the naive layout (%d bytes)", buf.Len(), naive)
	}
}
