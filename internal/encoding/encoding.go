// Package encoding provides a compact binary on-disk format for
// collections, so cmd/irgen can materialize datasets once and
// cmd/irbench / cmd/irquery can reload them. The format is
// little-endian with varint-compressed deltas:
//
//	magic "TIRC" | version u8 | dictSize uvarint | count uvarint
//	per object: start varint (delta from previous start) |
//	            duration uvarint | nElems uvarint |
//	            elem deltas uvarint... (sorted elements, gap-encoded)
//
// Objects are sorted by start before writing, matching how archive
// systems ingest, and ids are re-assigned densely on load.
package encoding

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/model"
)

var magic = [4]byte{'T', 'I', 'R', 'C'}

const version = 1

// maxPrealloc caps slice preallocations driven by unvalidated varints
// in the header. A corrupt or adversarial file can claim any count; by
// capping the hint and growing through append, memory stays
// proportional to the bytes actually read instead of the bytes claimed,
// so a flipped header byte cannot commit a multi-GB allocation before
// the first object even decodes. Spill/reload paths feed
// operator-controlled files through Read, which makes this load-bearing.
const maxPrealloc = 1 << 16

// cappedCap bounds a claimed element count to the preallocation cap.
func cappedCap(claimed uint64) int {
	if claimed > maxPrealloc {
		return maxPrealloc
	}
	return int(claimed)
}

// Order returns the permutation Write applies: object indices in the
// order they are written (sorted by interval start). Callers that
// serialize per-object sidecar data next to a collection use it to
// write their tables in the same order.
func Order(c *model.Collection) []int {
	order := make([]int, len(c.Objects))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return c.Objects[order[a]].Interval.Start < c.Objects[order[b]].Interval.Start
	})
	return order
}

// Write serializes the collection. The input is not mutated: objects are
// sorted by interval start into a scratch index first.
func Write(w io.Writer, c *model.Collection) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(version); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(c.DictSize)); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(c.Objects))); err != nil {
		return err
	}
	order := Order(c)
	prevStart := int64(0)
	for _, oi := range order {
		o := &c.Objects[oi]
		if err := putVarint(int64(o.Interval.Start) - prevStart); err != nil {
			return err
		}
		prevStart = int64(o.Interval.Start)
		if err := putUvarint(uint64(o.Interval.Duration())); err != nil {
			return err
		}
		if err := putUvarint(uint64(len(o.Elems))); err != nil {
			return err
		}
		prev := uint64(0)
		for _, e := range o.Elems {
			if err := putUvarint(uint64(e) - prev); err != nil {
				return err
			}
			prev = uint64(e)
		}
	}
	return bw.Flush()
}

// Read deserializes a collection written by Write.
func Read(r io.Reader) (*model.Collection, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("encoding: reading magic: %w", err)
	}
	if m != magic {
		return nil, errors.New("encoding: bad magic, not a TIRC file")
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("encoding: unsupported version %d", ver)
	}
	dictSize, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("encoding: dict size: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("encoding: count: %w", err)
	}
	c := &model.Collection{DictSize: int(dictSize)}
	c.Objects = make([]model.Object, 0, cappedCap(count))
	prevStart := int64(0)
	for i := uint64(0); i < count; i++ {
		dStart, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("encoding: object %d start: %w", i, err)
		}
		start := prevStart + dStart
		prevStart = start
		dur, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("encoding: object %d duration: %w", i, err)
		}
		if dur == 0 || dur > 1<<42 {
			return nil, fmt.Errorf("encoding: object %d has implausible duration %d", i, dur)
		}
		// Bound the start so start+dur-1 cannot overflow into an
		// inverted interval on corrupt input.
		if start > 1<<62 || start < -(1<<62) {
			return nil, fmt.Errorf("encoding: object %d has implausible start %d", i, start)
		}
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("encoding: object %d nElems: %w", i, err)
		}
		// Elements are gap-encoded ascending ids below dictSize, so no
		// valid object can carry more of them than the dictionary holds —
		// reject before allocating rather than after reading.
		if n > dictSize {
			return nil, fmt.Errorf("encoding: object %d claims %d elements, dictionary has %d", i, n, dictSize)
		}
		elems := make([]model.ElemID, 0, cappedCap(n))
		prev := uint64(0)
		for k := uint64(0); k < n; k++ {
			gap, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("encoding: object %d elem %d: %w", i, k, err)
			}
			prev += gap
			if prev >= dictSize {
				return nil, fmt.Errorf("encoding: object %d elem %d out of dictionary", i, k)
			}
			elems = append(elems, model.ElemID(prev))
		}
		c.Objects = append(c.Objects, model.Object{
			ID:       model.ObjectID(i),
			Interval: model.NewInterval(start, start+int64(dur)-1),
			Elems:    elems,
		})
	}
	return c, nil
}
