// Package tif implements the base temporal inverted file (tIF) of
// Section 2.2: every dictionary element e is associated with an id-sorted,
// time-aware postings list I[e], and time-travel IR queries are answered by
// Algorithm 1 — temporal filtering on the least frequent element's list
// followed by merge intersections with the remaining lists.
package tif

import (
	"repro/internal/dict"
	"repro/internal/model"
	"repro/internal/postings"
)

// Index is the base temporal inverted file.
type Index struct {
	lists [][]postings.Posting // indexed by ElemID
	freqs []int                // live postings per element, drives plan order
	live  int                  // live objects
}

// New builds a tIF over a collection. Objects arrive in increasing id
// order, so every list is born sorted.
func New(c *model.Collection) *Index {
	ix := &Index{
		lists: make([][]postings.Posting, c.DictSize),
		freqs: make([]int, c.DictSize),
	}
	for i := range c.Objects {
		ix.Insert(c.Objects[i])
	}
	return ix
}

// Insert adds an object to the postings list of each of its elements.
// IDs must arrive in increasing order for the lists to stay sorted; callers
// with out-of-order ids must call Resort afterwards.
func (ix *Index) Insert(o model.Object) {
	for _, e := range o.Elems {
		ix.growTo(int(e) + 1)
		ix.lists[e] = append(ix.lists[e], postings.Posting{ID: o.ID, Interval: o.Interval})
		ix.freqs[e]++
	}
	ix.live++
}

func (ix *Index) growTo(n int) {
	for len(ix.lists) < n {
		ix.lists = append(ix.lists, nil)
		ix.freqs = append(ix.freqs, 0)
	}
}

// Resort restores id order in every list after out-of-order insertions.
func (ix *Index) Resort() {
	for e := range ix.lists {
		postings.List(ix.lists[e]).Sort()
	}
}

// Delete locates the object's entry in each of its element lists by binary
// search and flags it with the tombstone sentinel.
func (ix *Index) Delete(o model.Object) {
	found := false
	for _, e := range o.Elems {
		if int(e) >= len(ix.lists) {
			continue
		}
		l := postings.List(ix.lists[e])
		if pos, ok := l.FindID(o.ID); ok && !postings.IsTombstone(l[pos].Interval) {
			l[pos].Interval = postings.Tombstone
			ix.freqs[e]--
			found = true
		}
	}
	if found {
		ix.live--
	}
}

// Len returns the number of live objects.
func (ix *Index) Len() int { return ix.live }

// Freqs exposes the live per-element frequencies (shared with composite
// indices that reuse tIF's plan ordering).
func (ix *Index) Freqs() []int { return ix.freqs }

// List exposes the raw postings list for an element (read-only use).
func (ix *Index) List(e model.ElemID) postings.List {
	if int(e) >= len(ix.lists) {
		return nil
	}
	return ix.lists[e]
}

// Query evaluates a time-travel IR query with Algorithm 1: sort q.d by
// ascending frequency, temporally filter the least frequent element's list
// into a candidate set, then merge-intersect with every other list.
// The result is in ascending id order.
func (ix *Index) Query(q model.Query) []model.ObjectID {
	if len(q.Elems) == 0 {
		return ix.queryTemporalOnly(q.Interval)
	}
	plan := dict.PlanOrder(q.Elems, ix.freqs)
	first := plan[0]
	if int(first) >= len(ix.lists) {
		return nil
	}
	cands := postings.List(ix.lists[first]).TemporalFilter(q.Interval, nil)
	for _, e := range plan[1:] {
		if len(cands) == 0 {
			return nil
		}
		if int(e) >= len(ix.lists) {
			return nil
		}
		cands = postings.List(ix.lists[e]).IntersectAny(cands, cands[:0])
	}
	return cands
}

func (ix *Index) queryTemporalOnly(q model.Interval) []model.ObjectID {
	// Element-less queries degenerate to a scan over all lists; real
	// deployments would keep a separate interval index. This path exists
	// for API completeness and tests, not benchmarks.
	var out []model.ObjectID
	for e := range ix.lists {
		out = postings.List(ix.lists[e]).TemporalFilter(q, out)
	}
	model.SortIDs(out)
	return model.DedupIDs(out)
}

// SizeBytes estimates the resident size of the index: one 16-byte posting
// per (object, element) pair plus slice headers.
func (ix *Index) SizeBytes() int64 {
	var total int64
	for e := range ix.lists {
		total += int64(cap(ix.lists[e]))*16 + 24
	}
	return total + int64(len(ix.freqs))*8
}
