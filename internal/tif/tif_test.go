package tif

import (
	"testing"

	"repro/internal/model"
	"repro/internal/testutil"
)

// runningExample builds the collection of Figure 1 (a=0, b=1, c=2).
func runningExample() *model.Collection {
	var c model.Collection
	c.AppendObject(model.Interval{Start: 10, End: 15}, []model.ElemID{0, 1, 2}) // o1
	c.AppendObject(model.Interval{Start: 2, End: 5}, []model.ElemID{0, 2})      // o2
	c.AppendObject(model.Interval{Start: 0, End: 2}, []model.ElemID{1})         // o3
	c.AppendObject(model.Interval{Start: 0, End: 15}, []model.ElemID{0, 1, 2})  // o4
	c.AppendObject(model.Interval{Start: 3, End: 7}, []model.ElemID{1, 2})      // o5
	c.AppendObject(model.Interval{Start: 2, End: 11}, []model.ElemID{2})        // o6
	c.AppendObject(model.Interval{Start: 4, End: 14}, []model.ElemID{0, 2})     // o7
	c.AppendObject(model.Interval{Start: 2, End: 3}, []model.ElemID{2})         // o8
	return &c
}

func TestRunningExample(t *testing.T) {
	ix := New(runningExample())
	got := ix.Query(model.Query{Interval: model.Interval{Start: 4, End: 6}, Elems: []model.ElemID{0, 2}})
	want := []model.ObjectID{1, 3, 6}
	if !model.EqualIDs(testutil.Canonical(got), want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestSingleElement(t *testing.T) {
	ix := New(runningExample())
	got := ix.Query(model.Query{Interval: model.Interval{Start: 0, End: 15}, Elems: []model.ElemID{1}})
	want := []model.ObjectID{0, 2, 3, 4} // o1, o3, o4, o5 contain b
	if !model.EqualIDs(testutil.Canonical(got), want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestUnknownElement(t *testing.T) {
	ix := New(runningExample())
	got := ix.Query(model.Query{Interval: model.Interval{Start: 0, End: 15}, Elems: []model.ElemID{77}})
	if len(got) != 0 {
		t.Errorf("unknown element should yield nothing, got %v", got)
	}
	got = ix.Query(model.Query{Interval: model.Interval{Start: 0, End: 15}, Elems: []model.ElemID{0, 77}})
	if len(got) != 0 {
		t.Errorf("unknown element in conjunction should yield nothing, got %v", got)
	}
}

func TestTemporalOnlyQuery(t *testing.T) {
	ix := New(runningExample())
	got := ix.Query(model.Query{Interval: model.Interval{Start: 0, End: 0}})
	want := []model.ObjectID{2, 3}
	if !model.EqualIDs(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestOracleEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		cfg := testutil.DefaultConfig(seed)
		c := testutil.RandomCollection(cfg)
		ix := New(c)
		testutil.CheckAgainstOracle(t, "tif", ix, c, testutil.RandomQueries(cfg, 200, seed+1))
	}
}

func TestUpdates(t *testing.T) {
	cfg := testutil.DefaultConfig(17)
	testutil.CheckUpdates(t, "tif", func(c *model.Collection) testutil.UpdatableIndex {
		return New(c)
	}, cfg)
}

func TestDeleteIsIdempotentPerList(t *testing.T) {
	c := runningExample()
	ix := New(c)
	o := c.Objects[3] // o4, appears in all three lists
	before := ix.Freqs()[0]
	ix.Delete(o)
	if ix.Freqs()[0] != before-1 {
		t.Errorf("freq after delete = %d, want %d", ix.Freqs()[0], before-1)
	}
	ix.Delete(o) // second delete must not corrupt frequencies
	if ix.Freqs()[0] != before-1 {
		t.Errorf("freq after double delete = %d, want %d", ix.Freqs()[0], before-1)
	}
	got := ix.Query(model.Query{Interval: model.Interval{Start: 4, End: 6}, Elems: []model.ElemID{0, 2}})
	want := []model.ObjectID{1, 6}
	if !model.EqualIDs(testutil.Canonical(got), want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestResortAfterOutOfOrderInserts(t *testing.T) {
	// Insert with shuffled ids, Resort, then query correctness.
	var ix Index
	objs := runningExample().Objects
	order := []int{5, 0, 7, 2, 4, 1, 6, 3}
	for _, i := range order {
		ix.Insert(objs[i])
	}
	ix.Resort()
	got := ix.Query(model.Query{Interval: model.Interval{Start: 4, End: 6}, Elems: []model.ElemID{0, 2}})
	want := []model.ObjectID{1, 3, 6}
	if !model.EqualIDs(testutil.Canonical(got), want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestSizeBytesPositiveAndGrows(t *testing.T) {
	small := New(runningExample())
	cfg := testutil.DefaultConfig(3)
	big := New(testutil.RandomCollection(cfg))
	if small.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
	if big.SizeBytes() <= small.SizeBytes() {
		t.Error("bigger collection should yield bigger index")
	}
}

func TestLen(t *testing.T) {
	ix := New(runningExample())
	if ix.Len() != 8 {
		t.Errorf("Len = %d, want 8", ix.Len())
	}
}
