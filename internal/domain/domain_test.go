package domain

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestMakeValidation(t *testing.T) {
	if _, err := Make(10, 5, 4); err == nil {
		t.Error("min > max should fail")
	}
	if _, err := Make(0, 5, -1); err == nil {
		t.Error("negative m should fail")
	}
	if _, err := Make(0, 5, MaxBits+1); err == nil {
		t.Error("huge m should fail")
	}
	if _, err := Make(0, 5, 0); err != nil {
		t.Errorf("m=0 should be allowed: %v", err)
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with bad args should panic")
		}
	}()
	New(5, 1, 3)
}

func TestDiscEndpointsAndClamp(t *testing.T) {
	d := New(100, 199, 3) // 100 raw units onto 8 cells
	if d.Cells() != 8 {
		t.Fatalf("Cells = %d", d.Cells())
	}
	if d.Disc(100) != 0 {
		t.Errorf("Disc(min) = %d, want 0", d.Disc(100))
	}
	if d.Disc(199) != 7 {
		t.Errorf("Disc(max) = %d, want 7", d.Disc(199))
	}
	if d.Disc(0) != 0 || d.Disc(1000) != 7 {
		t.Error("clamping failed")
	}
}

func TestDiscMonotone(t *testing.T) {
	f := func(a, b uint16, mRaw uint8) bool {
		m := int(mRaw%20) + 1
		d := New(0, 70000, m)
		ta, tb := model.Timestamp(a), model.Timestamp(b)
		if ta > tb {
			ta, tb = tb, ta
		}
		return d.Disc(ta) <= d.Disc(tb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiscCoversAllCells(t *testing.T) {
	// Every cell must be hit when the raw span is a multiple of cells.
	d := New(0, 15, 2)
	counts := make([]int, 4)
	for ti := model.Timestamp(0); ti <= 15; ti++ {
		counts[d.Disc(ti)]++
	}
	for i, n := range counts {
		if n != 4 {
			t.Errorf("cell %d got %d timestamps, want 4", i, n)
		}
	}
}

func TestPrefixAndExtent(t *testing.T) {
	d := New(0, 1023, 5) // 32 cells
	// Cell 20 = binary 10100. Level-2 prefix = 10 = 2; level-5 prefix = 20.
	if got := d.Prefix(2, 20); got != 2 {
		t.Errorf("Prefix(2, 20) = %d, want 2", got)
	}
	if got := d.Prefix(5, 20); got != 20 {
		t.Errorf("Prefix(5, 20) = %d, want 20", got)
	}
	if got := d.Prefix(0, 31); got != 0 {
		t.Errorf("Prefix(0, 31) = %d, want 0", got)
	}
	lo, hi := d.PartitionExtent(2, 2)
	if lo != 16 || hi != 23 {
		t.Errorf("PartitionExtent(2,2) = [%d,%d], want [16,23]", lo, hi)
	}
	lo, hi = d.PartitionExtent(5, 20)
	if lo != 20 || hi != 20 {
		t.Errorf("leaf extent = [%d,%d]", lo, hi)
	}
	lo, hi = d.PartitionExtent(0, 0)
	if lo != 0 || hi != 31 {
		t.Errorf("root extent = [%d,%d]", lo, hi)
	}
}

func TestPrefixConsistentWithExtent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := New(0, 1<<20, 12)
	for trial := 0; trial < 1000; trial++ {
		v := uint32(rng.Intn(int(d.Cells())))
		for level := 0; level <= d.M; level++ {
			j := d.Prefix(level, v)
			lo, hi := d.PartitionExtent(level, j)
			if v < lo || v > hi {
				t.Fatalf("cell %d not inside level-%d partition %d extent [%d,%d]", v, level, j, lo, hi)
			}
		}
	}
}

func TestDiscHugeDomainNoOverflow(t *testing.T) {
	// Epoch-nanosecond scale with the maximum grid: off << m would wrap
	// 64-bit arithmetic; the 128-bit path must stay monotone and exact
	// at the boundaries.
	min := model.Timestamp(1_700_000_000_000_000_000)
	max := min + (1 << 41)
	d := New(min, max, MaxBits)
	if d.Disc(min) != 0 || d.Disc(max) != d.Cells()-1 {
		t.Fatal("endpoint mapping broken")
	}
	rng := rand.New(rand.NewSource(9))
	prevT := min
	prevC := uint32(0)
	for i := 0; i < 5000; i++ {
		ti := min + model.Timestamp(rng.Int63n(int64(max-min)))
		if ti < prevT {
			ti, prevT = prevT, ti
		}
		c := d.Disc(ti)
		pc := d.Disc(prevT)
		if prevT <= ti && pc > c {
			t.Fatalf("monotonicity broken: Disc(%d)=%d > Disc(%d)=%d", prevT, pc, ti, c)
		}
		prevT, prevC = ti, c
	}
	_ = prevC
}

func TestDiscIntervalOrdered(t *testing.T) {
	d := New(0, 999, 6)
	lo, hi := d.DiscInterval(model.Interval{Start: 10, End: 700})
	if lo > hi {
		t.Errorf("DiscInterval out of order: %d > %d", lo, hi)
	}
}

// TestBoundaryAndLevelMonotonicity is the property-style table test for
// the grid's boundary behavior: cell 0 and cell 2^m-1 map exactly to the
// domain endpoints, clamping holds outside, and rescaling to every
// hierarchy level is monotone and properly nested.
func TestBoundaryAndLevelMonotonicity(t *testing.T) {
	cases := []struct {
		name     string
		min, max model.Timestamp
		m        int
	}{
		{"degenerate unit span m=0", 0, 0, 0},
		{"two-unit span m=1", 0, 1, 1},
		{"offset span m=4", -500, 499, 4},
		{"span smaller than grid m=6", 10, 25, 6},
		{"dense grid m=10", 0, 1 << 16, 10},
		{"max bits, huge offset span", 1 << 40, (1 << 40) + (1 << 33), MaxBits},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := New(tc.min, tc.max, tc.m)
			top := d.Cells() - 1

			// Boundary values: the endpoints hit cells 0 and 2^m-1, and
			// clamping pins everything outside.
			if got := d.Disc(tc.min); got != 0 {
				t.Errorf("Disc(min) = %d, want 0", got)
			}
			if got := d.Disc(tc.max); got != top {
				t.Errorf("Disc(max) = %d, want %d", got, top)
			}
			if got := d.Disc(tc.min - 1); got != 0 {
				t.Errorf("Disc(min-1) = %d, want clamp to 0", got)
			}
			if got := d.Disc(tc.max + 1); got != top {
				t.Errorf("Disc(max+1) = %d, want clamp to %d", got, top)
			}

			// Deterministic sample of cells, always including both
			// boundary cells.
			cells := []uint32{0, top}
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 64; i++ {
				cells = append(cells, uint32(rng.Intn(int(d.Cells()))))
			}

			for level := 0; level <= d.M; level++ {
				lastPart := (uint32(1) << uint(level)) - 1
				// Boundary cells rescale to the boundary partitions.
				if got := d.Prefix(level, 0); got != 0 {
					t.Errorf("Prefix(%d, 0) = %d, want 0", level, got)
				}
				if got := d.Prefix(level, top); got != lastPart {
					t.Errorf("Prefix(%d, top) = %d, want %d", level, got, lastPart)
				}
				for _, v := range cells {
					j := d.Prefix(level, v)
					// Rescaling stays on the level's grid.
					if j > lastPart {
						t.Fatalf("Prefix(%d, %d) = %d beyond last partition %d", level, v, j, lastPart)
					}
					// The partition's extent contains the cell (round trip).
					lo, hi := d.PartitionExtent(level, j)
					if v < lo || v > hi {
						t.Fatalf("cell %d outside its level-%d partition extent [%d,%d]", v, level, lo, hi)
					}
					// Nesting: the parent level's prefix is the halved prefix.
					if level > 0 {
						if parent := d.Prefix(level-1, v); parent != j>>1 {
							t.Fatalf("Prefix(%d, %d) = %d, want parent %d of level-%d partition %d", level-1, v, parent, j>>1, level, j)
						}
					}
					// Monotonicity of rescaling: v <= w implies
					// Prefix(level, v) <= Prefix(level, w).
					for _, w := range cells {
						if v <= w && d.Prefix(level, v) > d.Prefix(level, w) {
							t.Fatalf("rescaling not monotone at level %d: Prefix(%d)=%d > Prefix(%d)=%d",
								level, v, d.Prefix(level, v), w, d.Prefix(level, w))
						}
					}
				}
			}
		})
	}
}

func TestExpandCovers(t *testing.T) {
	d := New(0, 99, 4)
	bigger := d.Expand(250)
	if bigger.Max < 250 || bigger.Min > 0 {
		t.Errorf("Expand(250) = [%d,%d]", bigger.Min, bigger.Max)
	}
	smaller := d.Expand(-50)
	if smaller.Min > -50 {
		t.Errorf("Expand(-50) = [%d,%d]", smaller.Min, smaller.Max)
	}
	same := d.Expand(50)
	if same.Min != d.Min || same.Max != d.Max {
		t.Error("Expand inside range should not change the domain")
	}
}
