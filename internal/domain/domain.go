// Package domain implements the monotone discretization of a raw time
// domain onto the [0, 2^m - 1] grid used by HINT (Section 2.3 of the
// paper). Discretized values route intervals to hierarchy partitions;
// original timestamps are kept alongside so that all residual comparisons
// stay exact.
package domain

import (
	"fmt"
	"math/bits"

	"repro/internal/model"
)

// MaxBits bounds the number of hierarchy levels. 30 keeps every shift in
// range for uint64 arithmetic with time domains up to 2^33 units.
const MaxBits = 30

// Domain maps raw timestamps in [Min, Max] onto [0, 2^m - 1].
type Domain struct {
	Min model.Timestamp
	Max model.Timestamp
	M   int // number of bits; the grid has 2^M cells

	span uint64 // Max - Min + 1
}

// New builds a domain for raw range [min, max] with an m-bit grid.
// It panics on invalid arguments; use the error-returning Make in contexts
// where inputs are untrusted.
func New(min, max model.Timestamp, m int) Domain {
	d, err := Make(min, max, m)
	if err != nil {
		// lint:panic-ok documented constructor precondition; Make reports errors instead
		panic(err)
	}
	return d
}

// Make is like New but reports invalid arguments as an error.
func Make(min, max model.Timestamp, m int) (Domain, error) {
	if min > max {
		return Domain{}, fmt.Errorf("domain: min %d > max %d", min, max)
	}
	if m < 0 || m > MaxBits {
		return Domain{}, fmt.Errorf("domain: m = %d out of [0, %d]", m, MaxBits)
	}
	return Domain{Min: min, Max: max, M: m, span: uint64(max-min) + 1}, nil
}

// Cells returns the number of grid cells, 2^M.
func (d Domain) Cells() uint32 { return uint32(1) << uint(d.M) }

// Disc maps a raw timestamp to its grid cell in [0, 2^M - 1]. Timestamps
// outside [Min, Max] are clamped; the mapping is monotone non-decreasing,
// which is what the pruning logic of HINT relies on.
func (d Domain) Disc(t model.Timestamp) uint32 {
	if t <= d.Min {
		return 0
	}
	if t >= d.Max {
		return d.Cells() - 1
	}
	// floor(off * 2^M / span) in 128-bit arithmetic: off can approach
	// 2^63 for epoch-nanosecond domains, so the multiplication must not
	// wrap. off < span guarantees the quotient fits in 32 bits.
	off := uint64(t - d.Min)
	hi, lo := bits.Mul64(off, uint64(d.Cells()))
	q, _ := bits.Div64(hi, lo, d.span)
	assertCell(d, uint32(q), "Disc")
	return uint32(q)
}

// DiscInterval discretizes both endpoints of an interval.
func (d Domain) DiscInterval(iv model.Interval) (lo, hi uint32) {
	return d.Disc(iv.Start), d.Disc(iv.End)
}

// Prefix returns the index of the level-l partition containing grid cell v,
// i.e. the l-bit prefix of the M-bit value v.
func (d Domain) Prefix(level int, v uint32) uint32 {
	assertLevel(d, level, "Prefix")
	assertCell(d, v, "Prefix")
	return v >> uint(d.M-level)
}

// PartitionExtent returns the grid-cell range [lo, hi] covered by partition
// j at the given level.
func (d Domain) PartitionExtent(level int, j uint32) (lo, hi uint32) {
	assertLevel(d, level, "PartitionExtent")
	assertPartition(d, level, j, "PartitionExtent")
	width := uint32(1) << uint(d.M-level)
	return j * width, j*width + width - 1
}

// Expand grows the domain to cover t, doubling Max-extent as needed,
// mirroring the time-expanding extension of [21] that the paper cites for
// handling growing time domains. The grid resolution M is unchanged, so
// existing assignments stay valid only if the caller rebuilds; indices in
// this repository instead pre-size their domains and use Expand to size new
// ones. It returns a new Domain.
func (d Domain) Expand(t model.Timestamp) Domain {
	min, max := d.Min, d.Max
	for t < min {
		min -= (max - min + 1)
	}
	for t > max {
		max += (max - min + 1)
	}
	nd, _ := Make(min, max, d.M)
	return nd
}
