package domain

import (
	"testing"

	"repro/internal/model"
)

// FuzzDomainRoundTrip fuzzes the discretization round trip that HINT's
// pruning correctness rests on: discretize an interval, rescale its
// endpoints to every hierarchy level, and check (1) the level extents of
// the prefix partitions contain the original cells, (2) rescaling never
// leaves the level's grid, and (3) grid-range containment agrees with
// raw-interval Overlap — two intervals overlapping in raw time must
// overlap on the grid at every level (monotone mapping: no false
// negatives, so a HINT traversal can never prune a qualifying partition).
func FuzzDomainRoundTrip(f *testing.F) {
	f.Add(int64(0), int64(999), uint8(4), int64(10), int64(25), int64(20), int64(40))
	f.Add(int64(-500), int64(1000), uint8(1), int64(-100), int64(5), int64(0), int64(0))
	f.Add(int64(1<<40), int64(1<<33), uint8(30), int64(1<<40), int64(1<<20), int64(1<<41), int64(9))
	f.Add(int64(5), int64(0), uint8(0), int64(5), int64(0), int64(5), int64(0))
	f.Fuzz(func(t *testing.T, min, span int64, mRaw uint8, aStart, aLen, bStart, bLen int64) {
		const maxSpan = int64(1) << 41
		if span < 0 {
			span = -(span + 1)
		}
		span %= maxSpan
		if min > maxSpan {
			min = maxSpan
		}
		if min < -maxSpan {
			min = -maxSpan
		}
		m := int(mRaw) % (MaxBits + 1)
		d, err := Make(min, min+model.Timestamp(span), m)
		if err != nil {
			t.Skip()
		}

		clamp := func(v int64) model.Timestamp {
			if v < int64(d.Min) {
				return d.Min
			}
			if v > int64(d.Max) {
				return d.Max
			}
			return model.Timestamp(v)
		}
		mkInterval := func(start, length int64) model.Interval {
			if length < 0 {
				length = -(length + 1)
			}
			length %= maxSpan
			s := clamp(start)
			e := clamp(start + length)
			return model.NewInterval(s, e)
		}
		a := mkInterval(aStart, aLen)
		b := mkInterval(bStart, bLen)

		for _, iv := range []model.Interval{a, b} {
			lo, hi := d.DiscInterval(iv)
			if lo > hi {
				t.Fatalf("DiscInterval(%v) inverted: [%d, %d]", iv, lo, hi)
			}
			if hi >= d.Cells() {
				t.Fatalf("DiscInterval(%v) off grid: hi %d >= cells %d", iv, hi, d.Cells())
			}
			// Round trip through every level: the prefix partition's
			// extent must contain the cell it was derived from.
			for level := 0; level <= d.M; level++ {
				for _, v := range [2]uint32{lo, hi} {
					j := d.Prefix(level, v)
					if uint64(j) >= uint64(1)<<uint(level) {
						t.Fatalf("Prefix(%d, %d) = %d leaves the level grid", level, v, j)
					}
					elo, ehi := d.PartitionExtent(level, j)
					if v < elo || v > ehi {
						t.Fatalf("cell %d outside level-%d partition %d extent [%d, %d]", v, level, j, elo, ehi)
					}
				}
			}
		}

		// Containment agreement: raw overlap implies grid overlap at
		// every level (the sound direction; the grid may over-approximate
		// but must never prune a real overlap).
		if a.Overlaps(b) {
			alo, ahi := d.DiscInterval(a)
			blo, bhi := d.DiscInterval(b)
			for level := 0; level <= d.M; level++ {
				af, al := d.Prefix(level, alo), d.Prefix(level, ahi)
				bf, bl := d.Prefix(level, blo), d.Prefix(level, bhi)
				if al < bf || bl < af {
					t.Fatalf("raw overlap lost on the level-%d grid: a=[%d,%d] b=[%d,%d] (raw a=%v b=%v)",
						level, af, al, bf, bl, a, b)
				}
			}
		}
	})
}
