//go:build invariants

package domain

import "fmt"

// This file is the dynamic counterpart of the domain-bounds static
// analyzer in internal/tools/irlint: the linter flags raw arithmetic on
// discretized values at compile time, these assertions verify the domain
// helpers themselves keep every value on the [0, 2^m-1] grid at run time.

// InvariantsEnabled reports whether the runtime assertion layer is
// compiled in (the `invariants` build tag, exercised by CI).
const InvariantsEnabled = true

// assertCell panics when a grid value escapes [0, Cells()-1]. Compiled
// out of normal builds.
func assertCell(d Domain, v uint32, context string) {
	if v >= d.Cells() {
		// lint:panic-ok invariants build: off-grid cell must abort loudly
		panic(fmt.Sprintf("domain: invariant violated: cell %d outside [0, %d] in %s", v, d.Cells()-1, context))
	}
}

// assertLevel panics when a hierarchy level escapes [0, M]. Compiled out
// of normal builds.
func assertLevel(d Domain, level int, context string) {
	if level < 0 || level > d.M {
		// lint:panic-ok invariants build: invalid hierarchy level must abort loudly
		panic(fmt.Sprintf("domain: invariant violated: level %d outside [0, %d] in %s", level, d.M, context))
	}
}

// assertPartition panics when partition j does not exist at the level
// (levels have 2^level partitions). Compiled out of normal builds.
func assertPartition(d Domain, level int, j uint32, context string) {
	if uint64(j) >= uint64(1)<<uint(level) {
		// lint:panic-ok invariants build: nonexistent partition must abort loudly
		panic(fmt.Sprintf("domain: invariant violated: partition %d outside level %d (%d partitions) in %s", j, level, uint64(1)<<uint(level), context))
	}
}
