//go:build !invariants

package domain

// InvariantsEnabled reports whether the runtime assertion layer is
// compiled in (the `invariants` build tag, exercised by CI).
const InvariantsEnabled = false

// assertCell is a no-op in normal builds; see invariants_on.go.
func assertCell(Domain, uint32, string) {}

// assertLevel is a no-op in normal builds; see invariants_on.go.
func assertLevel(Domain, int, string) {}

// assertPartition is a no-op in normal builds; see invariants_on.go.
func assertPartition(Domain, int, uint32, string) {}
