//go:build invariants

package domain

import "testing"

// mustPanic runs fn and fails the test unless it panics — the invariants
// build turns contract violations into aborts, and these tests pin that
// behavior so the assertions cannot silently rot.
func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected invariant panic, got none", what)
		}
	}()
	fn()
}

func TestInvariantAssertionsFire(t *testing.T) {
	if !InvariantsEnabled {
		t.Fatal("invariants build tag set but InvariantsEnabled is false")
	}
	d := New(0, 999, 4)
	mustPanic(t, "Prefix level above M", func() { d.Prefix(d.M+1, 0) })
	mustPanic(t, "Prefix negative level", func() { d.Prefix(-1, 0) })
	mustPanic(t, "Prefix off-grid cell", func() { d.Prefix(2, d.Cells()) })
	mustPanic(t, "PartitionExtent nonexistent partition", func() { d.PartitionExtent(2, 4) })
}

func TestInvariantAssertionsSilentInRange(t *testing.T) {
	d := New(0, 999, 4)
	for level := 0; level <= d.M; level++ {
		for v := uint32(0); v < d.Cells(); v++ {
			_ = d.Prefix(level, v)
		}
		last := (uint32(1) << uint(level)) - 1
		_, _ = d.PartitionExtent(level, 0)
		_, _ = d.PartitionExtent(level, last)
	}
	for ts := int64(-5); ts <= 1005; ts++ {
		_ = d.Disc(ts)
	}
}
