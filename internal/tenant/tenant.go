// Package tenant is the multi-tenant serving layer: a registry of
// per-tenant engines created lazily on first use and evicted (with a
// spill to disk) when cold, per-tenant limits and quotas, weighted
// fair-share admission over the shared worker capacity, and the
// context plumbing that carries a tenant identity through a request.
//
// The package is deliberately engine-agnostic: the registry is generic
// over a small Engine interface (Save + Epoch) and is handed
// constructor closures, so it knows nothing about index methods or
// options. The server layer owns that wiring.
package tenant

import (
	"context"
	"fmt"
)

// Header is the HTTP header carrying the tenant identity, following
// the X-Scope-OrgID convention of Cortex/Loki/Pyroscope-style
// multi-tenant stores.
const Header = "X-Scope-OrgID"

// DefaultID is the tenant used when no identity is supplied and the
// operator has not overridden the default. Single-tenant deployments
// never need to send the header.
const DefaultID = "default"

// MaxIDLen bounds tenant-id length: ids become metric label values and
// spill-file names, so they must stay short and filesystem-safe.
const MaxIDLen = 64

type ctxKey struct{}

// InjectID returns a context carrying the tenant identity. Handlers
// resolve the id once at the edge and inject it; everything below
// reads it with FromContext.
func InjectID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// FromContext returns the tenant identity carried by the context,
// reporting false if none was injected.
func FromContext(ctx context.Context) (string, bool) {
	id, ok := ctx.Value(ctxKey{}).(string)
	return id, ok
}

// ValidateID checks that a tenant id is usable as a metric label value
// and a spill-file stem: non-empty, at most MaxIDLen bytes, and
// restricted to [A-Za-z0-9._-] with no leading dot (so ids can never
// traverse paths or hide as dotfiles).
func ValidateID(id string) error {
	if id == "" {
		return fmt.Errorf("tenant: empty tenant id")
	}
	if len(id) > MaxIDLen {
		return fmt.Errorf("tenant: id longer than %d bytes", MaxIDLen)
	}
	if id[0] == '.' {
		return fmt.Errorf("tenant: id must not start with a dot")
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("tenant: id contains invalid byte %q", c)
		}
	}
	return nil
}
