package tenant

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestContextIdentity(t *testing.T) {
	if id, ok := FromContext(context.Background()); ok || id != "" {
		t.Fatalf("empty context carried identity %q", id)
	}
	ctx := InjectID(context.Background(), "acme")
	if id, ok := FromContext(ctx); !ok || id != "acme" {
		t.Fatalf("FromContext = %q, %v", id, ok)
	}
}

func TestValidateID(t *testing.T) {
	for _, ok := range []string{"a", "default", "acme-prod_1", "A.B-c", "0"} {
		if err := ValidateID(ok); err != nil {
			t.Errorf("ValidateID(%q) = %v", ok, err)
		}
	}
	bad := []string{"", ".hidden", "a/b", "a b", "a\n", "über", string(make([]byte, MaxIDLen+1))}
	for _, id := range bad {
		if err := ValidateID(id); err == nil {
			t.Errorf("ValidateID(%q) accepted", id)
		}
	}
}

func TestLimiterRate(t *testing.T) {
	now := time.Unix(1000, 0)
	l := NewLimiter("t1", Limits{QueriesPerSec: 2, Burst: 2}, now)
	for i := 0; i < 2; i++ {
		if err := l.AcquireQuery(now); err != nil {
			t.Fatalf("burst query %d rejected: %v", i, err)
		}
		l.ReleaseQuery()
	}
	err := l.AcquireQuery(now)
	le := AsLimitError(err)
	if le == nil || le.Reason != ReasonRate {
		t.Fatalf("over-rate error = %v", err)
	}
	if le.RetryAfter <= 0 || le.RetryAfter > time.Second {
		t.Fatalf("RetryAfter = %v, want (0, 1s]", le.RetryAfter)
	}
	// Tokens refill with time.
	if err := l.AcquireQuery(now.Add(time.Second)); err != nil {
		t.Fatalf("post-refill query rejected: %v", err)
	}
	l.ReleaseQuery()
	if l.InFlight() != 0 {
		t.Fatalf("InFlight = %d", l.InFlight())
	}
}

func TestLimiterInFlight(t *testing.T) {
	now := time.Unix(1000, 0)
	l := NewLimiter("t1", Limits{MaxInFlight: 2}, now)
	if err := l.AcquireQuery(now); err != nil {
		t.Fatal(err)
	}
	if err := l.AcquireQuery(now); err != nil {
		t.Fatal(err)
	}
	err := l.AcquireQuery(now)
	if le := AsLimitError(err); le == nil || le.Reason != ReasonInFlight {
		t.Fatalf("over-inflight error = %v", err)
	}
	l.ReleaseQuery()
	if err := l.AcquireQuery(now); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestLimiterUnlimitedReturnsNilInterface(t *testing.T) {
	l := NewLimiter("t1", Limits{}, time.Unix(0, 0))
	// A typed-nil *LimitError stored in an error interface would make
	// err != nil; guard against that footgun explicitly.
	if err := l.AcquireQuery(time.Unix(1, 0)); err != nil {
		t.Fatalf("unlimited limiter rejected: %v", err)
	}
	l.ReleaseQuery()
}

func TestCheckIngestQuotas(t *testing.T) {
	l := NewLimiter("t1", Limits{MaxMemObjects: 10, MaxSizeBytes: 1 << 20}, time.Unix(0, 0))
	if err := l.CheckIngest(9, 100); err != nil {
		t.Fatalf("under quota rejected: %v", err)
	}
	if le := AsLimitError(l.CheckIngest(10, 100)); le == nil || le.Reason != ReasonMemQuota {
		t.Fatal("mem quota not enforced")
	}
	if le := AsLimitError(l.CheckIngest(0, 1<<20)); le == nil || le.Reason != ReasonSize {
		t.Fatal("size quota not enforced")
	}
	unlimited := NewLimiter("t2", Limits{}, time.Unix(0, 0))
	if err := unlimited.CheckIngest(1<<30, 1<<40); err != nil {
		t.Fatalf("unlimited tenant rejected: %v", err)
	}
}

func TestAsLimitError(t *testing.T) {
	if AsLimitError(errors.New("plain")) != nil {
		t.Fatal("plain error classified as limit error")
	}
	if AsLimitError(nil) != nil {
		t.Fatal("nil classified as limit error")
	}
	le := &LimitError{Tenant: "a", Reason: ReasonRate}
	if AsLimitError(le) != le {
		t.Fatal("limit error not unwrapped")
	}
	if le.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestEffectiveWeight(t *testing.T) {
	if (Limits{}).EffectiveWeight() != 1 {
		t.Fatal("zero weight should default to 1")
	}
	if (Limits{Weight: 4}).EffectiveWeight() != 4 {
		t.Fatal("explicit weight ignored")
	}
}
