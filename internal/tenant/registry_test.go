package tenant

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeEngine is a minimal Engine for registry tests: an append-only
// list of records with an epoch that advances on every write.
type fakeEngine struct {
	mu    sync.Mutex
	rows  []string
	epoch atomic.Uint64
}

func (f *fakeEngine) Add(row string) {
	f.mu.Lock()
	f.rows = append(f.rows, row)
	f.mu.Unlock()
	f.epoch.Add(1)
}

func (f *fakeEngine) Rows() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.rows...)
}

func (f *fakeEngine) Save(w io.Writer) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rows {
		if _, err := fmt.Fprintln(w, r); err != nil {
			return err
		}
	}
	return nil
}

func (f *fakeEngine) Epoch() uint64 { return f.epoch.Load() }

func loadFake(r io.Reader) (*fakeEngine, error) {
	e := &fakeEngine{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		e.rows = append(e.rows, sc.Text())
		e.epoch.Add(1)
	}
	return e, sc.Err()
}

func testConfig(t *testing.T, spill bool) Config[*fakeEngine] {
	t.Helper()
	cfg := Config[*fakeEngine]{
		New:  func(id string) (*fakeEngine, error) { return &fakeEngine{}, nil },
		Load: func(id string, r io.Reader) (*fakeEngine, error) { return loadFake(r) },
		Now:  func() time.Time { return time.Unix(1000, 0) },
	}
	if spill {
		cfg.SpillDir = t.TempDir()
	}
	return cfg
}

func mustGet(t *testing.T, r *Registry[*fakeEngine], id string) *Tenant[*fakeEngine] {
	t.Helper()
	tn, err := r.Get(id)
	if err != nil {
		t.Fatalf("Get(%s): %v", id, err)
	}
	return tn
}

func TestRegistryLazyCreateAndHit(t *testing.T) {
	var created atomic.Int32
	cfg := testConfig(t, false)
	inner := cfg.New
	cfg.New = func(id string) (*fakeEngine, error) { created.Add(1); return inner(id) }
	r := NewRegistry(cfg)

	a := mustGet(t, r, "a")
	a.Engine().Add("x")
	a.Release()
	a2 := mustGet(t, r, "a")
	if a2 != a {
		t.Fatal("second Get returned a different tenant")
	}
	if got := a2.Engine().Rows(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("engine state lost across Gets: %v", got)
	}
	a2.Release()
	if created.Load() != 1 {
		t.Fatalf("created %d engines, want 1", created.Load())
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRegistryEvictSpillReload(t *testing.T) {
	cfg := testConfig(t, true)
	cfg.MaxActive = 2
	r := NewRegistry(cfg)

	a := mustGet(t, r, "a")
	a.Engine().Add("a1")
	a.Engine().Add("a2")
	a.Release()
	mustGet(t, r, "b").Release()

	// Admitting c at MaxActive=2 must evict someone (a or b: both cold
	// after the clock clears their reference bits).
	mustGet(t, r, "c").Release()
	if r.Len() != 2 {
		t.Fatalf("Len after eviction = %d, want 2", r.Len())
	}
	if r.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", r.Evictions())
	}

	// Whoever was evicted reloads transparently with its data intact.
	a2 := mustGet(t, r, "a")
	if got := a2.Engine().Rows(); len(got) != 2 || got[0] != "a1" || got[1] != "a2" {
		t.Fatalf("tenant a state after evict/reload = %v", got)
	}
	a2.Release()
}

func TestRegistryFullWithoutSpill(t *testing.T) {
	cfg := testConfig(t, false)
	cfg.MaxActive = 1
	r := NewRegistry(cfg)
	mustGet(t, r, "a").Release()
	_, err := r.Get("b")
	le := AsLimitError(err)
	if le == nil || le.Reason != ReasonFull {
		t.Fatalf("over-capacity Get = %v, want ReasonFull", err)
	}
	// Tenant a is untouched.
	mustGet(t, r, "a").Release()
}

func TestRegistryNeverEvictsHeldTenant(t *testing.T) {
	cfg := testConfig(t, true)
	cfg.MaxActive = 1
	r := NewRegistry(cfg)
	a := mustGet(t, r, "a") // hold a
	_, err := r.Get("b")
	if le := AsLimitError(err); le == nil || le.Reason != ReasonFull {
		t.Fatalf("Get(b) with a held = %v, want ReasonFull", err)
	}
	a.Release()
	mustGet(t, r, "b").Release() // now a is evictable
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestRegistryFailedBuildUnpublishes(t *testing.T) {
	boom := errors.New("boom")
	fail := true
	cfg := testConfig(t, false)
	cfg.New = func(id string) (*fakeEngine, error) {
		if fail {
			return nil, boom
		}
		return &fakeEngine{}, nil
	}
	r := NewRegistry(cfg)
	if _, err := r.Get("a"); !errors.Is(err, boom) {
		t.Fatalf("failed build error = %v", err)
	}
	if r.Len() != 0 {
		t.Fatalf("failed tenant left resident, Len = %d", r.Len())
	}
	fail = false
	mustGet(t, r, "a").Release() // retry succeeds
}

func TestRegistrySaveDirtyAndClean(t *testing.T) {
	cfg := testConfig(t, true)
	r := NewRegistry(cfg)
	a := mustGet(t, r, "a")
	a.Engine().Add("row")
	a.Release()
	mustGet(t, r, "b").Release() // never written: epoch 0 == savedEpoch 0, clean

	if err := r.SaveDirty(); err != nil {
		t.Fatal(err)
	}
	if r.Spills() != 1 {
		t.Fatalf("Spills = %d, want 1 (only the dirty tenant)", r.Spills())
	}
	if _, err := os.Stat(filepath.Join(cfg.SpillDir, "a.tir")); err != nil {
		t.Fatalf("dirty tenant not spilled: %v", err)
	}
	// A second drain with no new writes is a no-op.
	if err := r.SaveDirty(); err != nil {
		t.Fatal(err)
	}
	if r.Spills() != 1 {
		t.Fatalf("clean tenant re-spilled, Spills = %d", r.Spills())
	}
}

func TestRegistryExplicitEvict(t *testing.T) {
	cfg := testConfig(t, true)
	r := NewRegistry(cfg)
	a := mustGet(t, r, "a")
	a.Engine().Add("row")
	if err := r.Evict("a"); err == nil {
		t.Fatal("evicted a held tenant")
	}
	a.Release()
	if err := r.Evict("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Evict("a"); err == nil {
		t.Fatal("evicted a non-resident tenant")
	}
	a2 := mustGet(t, r, "a")
	if got := a2.Engine().Rows(); len(got) != 1 || got[0] != "row" {
		t.Fatalf("state after explicit evict = %v", got)
	}
	a2.Release()
}

func TestRegistryPeekDoesNotCreate(t *testing.T) {
	r := NewRegistry(testConfig(t, false))
	if _, ok := r.Peek("ghost"); ok {
		t.Fatal("Peek materialized a tenant")
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d", r.Len())
	}
	mustGet(t, r, "a").Release()
	if tn, ok := r.Peek("a"); !ok || tn.ID() != "a" {
		t.Fatal("Peek missed a resident tenant")
	}
}

func TestRegistryConcurrentGetSingleCreation(t *testing.T) {
	var created atomic.Int32
	cfg := testConfig(t, false)
	cfg.New = func(id string) (*fakeEngine, error) {
		created.Add(1)
		time.Sleep(2 * time.Millisecond) // widen the race window
		return &fakeEngine{}, nil
	}
	r := NewRegistry(cfg)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tn, err := r.Get("a")
			if err != nil {
				t.Error(err)
				return
			}
			tn.Release()
		}()
	}
	wg.Wait()
	if created.Load() != 1 {
		t.Fatalf("created %d engines for one tenant, want 1", created.Load())
	}
}

func TestRegistryOnCreateTag(t *testing.T) {
	cfg := testConfig(t, false)
	cfg.OnCreate = func(tn *Tenant[*fakeEngine]) { tn.SetTag("metrics:" + tn.ID()) }
	var evicted []string
	cfg.OnEvict = func(tn *Tenant[*fakeEngine]) { evicted = append(evicted, tn.ID()) }
	cfg.SpillDir = t.TempDir()
	r := NewRegistry(cfg)
	a := mustGet(t, r, "a")
	if a.Tag() != "metrics:a" {
		t.Fatalf("Tag = %v", a.Tag())
	}
	a.Release()
	if err := r.Evict("a"); err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("OnEvict calls = %v", evicted)
	}
}

func TestRegistryEach(t *testing.T) {
	r := NewRegistry(testConfig(t, false))
	for _, id := range []string{"a", "b", "c"} {
		mustGet(t, r, id).Release()
	}
	var seen []string
	r.Each(func(tn *Tenant[*fakeEngine]) { seen = append(seen, tn.ID()) })
	if len(seen) != 3 {
		t.Fatalf("Each visited %v", seen)
	}
	joined := strings.Join(seen, ",")
	for _, id := range []string{"a", "b", "c"} {
		if !strings.Contains(joined, id) {
			t.Fatalf("Each missed %s: %v", id, seen)
		}
	}
}

func TestRegistryLimitsWiring(t *testing.T) {
	cfg := testConfig(t, false)
	cfg.Limits = func(id string) Limits {
		if id == "capped" {
			return Limits{MaxInFlight: 1, Weight: 3}
		}
		return Limits{}
	}
	r := NewRegistry(cfg)
	c := mustGet(t, r, "capped")
	if got := c.Limiter().Limits().Weight; got != 3 {
		t.Fatalf("Weight = %d", got)
	}
	if err := c.Limiter().AcquireQuery(time.Unix(1000, 0)); err != nil {
		t.Fatal(err)
	}
	if err := c.Limiter().AcquireQuery(time.Unix(1000, 0)); AsLimitError(err) == nil {
		t.Fatal("per-tenant inflight cap not wired")
	}
	c.Limiter().ReleaseQuery()
	c.Release()
}
