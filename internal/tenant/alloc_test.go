package tenant

import (
	"io"
	"testing"
	"time"

	"repro/internal/allocbudget"
)

// TestAllocBudgets pins the resident-hit path of Registry.Get at zero
// allocations per op: it runs once per request, so a single escape
// there taxes every query of every tenant.
func TestAllocBudgets(t *testing.T) {
	r := NewRegistry(Config[*fakeEngine]{
		New:  func(id string) (*fakeEngine, error) { return &fakeEngine{}, nil },
		Load: func(id string, rd io.Reader) (*fakeEngine, error) { return loadFake(rd) },
		Now:  func() time.Time { return time.Unix(1000, 0) },
	})
	warm, err := r.Get("hot")
	if err != nil {
		t.Fatal(err)
	}
	warm.Release()

	allocbudget.Gate(t, "tenant/Registry.Get", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tn, err := r.Get("hot")
			if err != nil {
				b.Fatal(err)
			}
			tn.Release()
		}
	})
}
