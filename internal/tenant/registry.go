package tenant

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Engine is the slice of an engine the registry needs: enough to spill
// a tenant to disk and to tell whether it changed since the last
// spill. The registry is generic over it so the package never learns
// about index methods, options or query APIs.
type Engine interface {
	// Save writes a self-contained snapshot.
	Save(w io.Writer) error
	// Epoch returns a counter that advances on every mutation; the
	// registry compares it against the epoch at the last successful
	// save to decide whether an eviction or drain must write.
	Epoch() uint64
}

// Config wires a Registry. New and Load are required; everything else
// has usable zero values.
type Config[E Engine] struct {
	// New constructs a fresh empty engine for a first-seen tenant.
	New func(id string) (E, error)
	// Load rebuilds an engine from a spill snapshot written by Save.
	Load func(id string, r io.Reader) (E, error)
	// MaxActive caps resident tenants; at the cap, admitting a new
	// tenant first evicts a cold one (SpillDir set) or fails with
	// ReasonFull (SpillDir empty). Zero means unlimited.
	MaxActive int
	// SpillDir is where evicted tenants are saved and reloaded from.
	// Empty disables eviction entirely: the registry never drops a
	// tenant it cannot restore.
	SpillDir string
	// Limits resolves a tenant's static envelope at creation time.
	// Nil means unlimited. Changing a tenant's limits takes effect on
	// its next creation (i.e. after an eviction or restart).
	Limits func(id string) Limits
	// Now is the clock used for limiter token buckets; nil means
	// time.Now. Tests inject a fake.
	Now func() time.Time
	// OnCreate runs under the registry lock just before a new tenant
	// becomes visible; the server uses it to attach per-tenant metrics
	// via SetTag. The tenant's engine is not built yet at this point.
	OnCreate func(t *Tenant[E])
	// OnEvict runs under the registry lock just after a tenant is
	// removed (evicted or failed to build).
	OnEvict func(t *Tenant[E])
}

// Tenant is one resident tenant: its engine, runtime limits, and the
// bookkeeping the registry needs for eviction. Callers hold a Tenant
// only between Get and Release; after Release the registry may evict
// it at any time.
type Tenant[E Engine] struct {
	id  string
	lim *Limiter

	// ready is closed once eng/err are set; Get blocks on it so engine
	// construction never runs under the registry lock.
	ready chan struct{}
	eng   E
	err   error

	// tag is an opaque attachment (the server's per-tenant metrics),
	// set in OnCreate under the registry lock before publication and
	// read-only afterwards.
	tag any

	// referenced is the clock-hand second-chance bit, set on every Get.
	referenced atomic.Bool
	// inflight counts Get holders; the clock hand never evicts a
	// tenant with holders.
	inflight atomic.Int64
	// savedEpoch is the engine epoch at the last successful spill
	// (zero: never spilled, so the tenant is dirty).
	savedEpoch atomic.Uint64
}

// ID returns the tenant identity.
func (t *Tenant[E]) ID() string { return t.id }

// Engine returns the tenant's engine. Valid only between Get and
// Release.
func (t *Tenant[E]) Engine() E { return t.eng }

// Limiter returns the tenant's runtime admission state.
func (t *Tenant[E]) Limiter() *Limiter { return t.lim }

// SetTag attaches an opaque value; only legal inside OnCreate.
func (t *Tenant[E]) SetTag(v any) { t.tag = v }

// Tag returns the value attached in OnCreate, or nil.
func (t *Tenant[E]) Tag() any { return t.tag }

// Release returns the hold acquired by Get. The Tenant (and its
// engine) must not be used afterwards.
func (t *Tenant[E]) Release() {
	if t.inflight.Add(-1) < 0 {
		panic("tenant: released more than acquired") // lint:panic-ok caller bug: unbalanced Release
	}
}

// Registry owns the tenant map: lazy creation on first Get, clock-hand
// eviction of cold tenants at capacity, spill/reload through SpillDir.
// The Get hit path is read-locked and allocation-free; engine
// construction and spilling happen off the read path.
type Registry[E Engine] struct {
	cfg Config[E]

	mu sync.RWMutex
	// tenants is the resident map. irlint:guarded-by mu
	tenants map[string]*Tenant[E]
	// ring and hand implement the eviction clock over resident
	// tenants. irlint:guarded-by mu
	ring []*Tenant[E]
	hand int

	evictions atomic.Uint64
	spills    atomic.Uint64
}

// NewRegistry validates the config and returns an empty registry.
func NewRegistry[E Engine](cfg Config[E]) *Registry[E] {
	if cfg.New == nil || cfg.Load == nil {
		panic("tenant: Config.New and Config.Load are required") // lint:panic-ok construction-time programming error
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Registry[E]{cfg: cfg, tenants: make(map[string]*Tenant[E])}
}

// Get returns the tenant, creating or reloading it on first use. On
// success the caller holds the tenant and must call Release; the
// registry will not evict a held tenant. The error is a *LimitError
// with ReasonFull when the registry is at capacity with no evictable
// tenant, or the engine constructor's error.
//
// irlint:hot per-request tenant resolution; the resident hit path must
// stay allocation-free
func (r *Registry[E]) Get(id string) (*Tenant[E], error) {
	r.mu.RLock()
	t := r.tenants[id]
	if t != nil {
		t.inflight.Add(1)
		t.referenced.Store(true)
		r.mu.RUnlock()
		return r.await(t)
	}
	r.mu.RUnlock()
	return r.create(id)
}

// await blocks until the tenant's engine is built (a no-op for
// resident tenants, whose ready channel is already closed).
func (r *Registry[E]) await(t *Tenant[E]) (*Tenant[E], error) {
	<-t.ready
	if t.err != nil {
		t.inflight.Add(-1)
		return nil, t.err
	}
	return t, nil
}

// Peek returns a resident, fully built tenant without taking a hold or
// touching the clock bit. It is for metric scrapes: the result may be
// evicted at any moment, so callers must tolerate stale reads and must
// not mutate the engine.
func (r *Registry[E]) Peek(id string) (*Tenant[E], bool) {
	r.mu.RLock()
	t := r.tenants[id]
	r.mu.RUnlock()
	if t == nil {
		return nil, false
	}
	select {
	case <-t.ready:
	default:
		return nil, false // still building
	}
	if t.err != nil {
		return nil, false
	}
	return t, true
}

// create is the Get miss path: under the write lock it re-checks,
// makes room, and publishes a placeholder; the engine is then built
// outside the lock while other Gets wait on the placeholder.
func (r *Registry[E]) create(id string) (*Tenant[E], error) {
	r.mu.Lock()
	t, raced, err := r.placeholderLocked(id)
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if raced { // lost the race to another creator
		return r.await(t)
	}

	var loaded bool
	t.eng, loaded, t.err = r.build(id)
	if t.err == nil {
		if loaded {
			// A just-loaded engine matches its spill file exactly; mark it
			// clean so an untouched tenant is not re-spilled on eviction.
			t.savedEpoch.Store(t.eng.Epoch())
		}
		close(t.ready)
		return t, nil
	}
	// Failed build: unpublish so a later Get retries from scratch.
	r.mu.Lock()
	delete(r.tenants, id)
	r.dropFromRing(t)
	if r.cfg.OnEvict != nil {
		r.cfg.OnEvict(t)
	}
	r.mu.Unlock()
	close(t.ready)
	return nil, t.err
}

// placeholderLocked re-checks for a racing creator (raced reports the
// race was lost, with the winner's tenant held), makes room at
// capacity, and publishes a new placeholder tenant whose ready channel
// the caller's build will close.
// irlint:locked mu
func (r *Registry[E]) placeholderLocked(id string) (t *Tenant[E], raced bool, err error) {
	if t := r.tenants[id]; t != nil {
		t.inflight.Add(1)
		t.referenced.Store(true)
		return t, true, nil
	}
	if max := r.cfg.MaxActive; max > 0 && len(r.tenants) >= max {
		if err := r.evictOneLocked(); err != nil {
			return nil, false, err
		}
	}
	var lim Limits
	if r.cfg.Limits != nil {
		lim = r.cfg.Limits(id)
	}
	t = &Tenant[E]{
		id:    id,
		lim:   NewLimiter(id, lim, r.cfg.Now()),
		ready: make(chan struct{}),
	}
	t.inflight.Store(1) // the calling Get's hold
	t.referenced.Store(true)
	if r.cfg.OnCreate != nil {
		r.cfg.OnCreate(t)
	}
	r.tenants[id] = t
	r.ring = append(r.ring, t)
	return t, false, nil
}

// build loads the tenant from its spill file if one exists, otherwise
// constructs a fresh engine. A loaded tenant starts clean (saved epoch
// = current epoch); a fresh one starts dirty so a drain writes it.
func (r *Registry[E]) build(id string) (eng E, loaded bool, err error) {
	var zero E
	if r.cfg.SpillDir != "" {
		f, err := os.Open(r.spillPath(id))
		switch {
		case err == nil:
			defer f.Close()
			eng, err := r.cfg.Load(id, f)
			if err != nil {
				return zero, false, fmt.Errorf("tenant %s: reloading spill: %w", id, err)
			}
			return eng, true, nil
		case !os.IsNotExist(err):
			return zero, false, fmt.Errorf("tenant %s: opening spill: %w", id, err)
		}
	}
	eng, err = r.cfg.New(id)
	return eng, false, err
}

func (r *Registry[E]) spillPath(id string) string {
	return filepath.Join(r.cfg.SpillDir, id+".tir")
}

// evictOneLocked frees one slot with a two-sweep clock: the first pass
// over the ring clears reference bits, the second takes the first
// tenant that is cold (bit clear) and idle (no holders). Dirty victims
// are spilled before removal — under the lock, which is acceptable
// because eviction is the cold path by construction. With no SpillDir
// eviction would lose data, so the registry reports ReasonFull
// instead. irlint:locked mu
func (r *Registry[E]) evictOneLocked() error {
	if r.cfg.SpillDir == "" {
		return &LimitError{Reason: ReasonFull}
	}
	for sweep := 0; sweep < 2*len(r.ring); sweep++ {
		if len(r.ring) == 0 {
			break
		}
		r.hand %= len(r.ring)
		t := r.ring[r.hand]
		r.hand++
		if t.inflight.Load() > 0 {
			continue
		}
		if t.referenced.Swap(false) {
			continue // second chance
		}
		if err := r.saveLocked(t); err != nil {
			return err // keep the tenant resident rather than lose data
		}
		delete(r.tenants, t.id)
		r.dropFromRing(t)
		r.evictions.Add(1)
		if r.cfg.OnEvict != nil {
			r.cfg.OnEvict(t)
		}
		return nil
	}
	return &LimitError{Reason: ReasonFull}
}

// dropFromRing swap-removes the tenant, keeping the hand in range. The
// clock order is approximate, so swap-remove's reordering is fine.
// irlint:locked mu
func (r *Registry[E]) dropFromRing(t *Tenant[E]) {
	for i, v := range r.ring {
		if v == t {
			last := len(r.ring) - 1
			r.ring[i] = r.ring[last]
			r.ring[last] = nil
			r.ring = r.ring[:last]
			if r.hand > last {
				r.hand = 0
			}
			return
		}
	}
}

// saveLocked spills the tenant if dirty, via temp-file-and-rename so a
// crash mid-save never corrupts the previous snapshot. irlint:locked mu
func (r *Registry[E]) saveLocked(t *Tenant[E]) error {
	if t.eng.Epoch() == t.savedEpoch.Load() {
		return nil // clean
	}
	// Snapshot the epoch before saving: a racing write between Save
	// and the store below leaves the tenant dirty, never clean-but-stale.
	epoch := t.eng.Epoch()
	path := r.spillPath(t.id)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("tenant %s: spill: %w", t.id, err)
	}
	if err := t.eng.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("tenant %s: spill: %w", t.id, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tenant %s: spill: %w", t.id, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tenant %s: spill: %w", t.id, err)
	}
	t.savedEpoch.Store(epoch)
	r.spills.Add(1)
	return nil
}

// Evict spills (if dirty) and removes one tenant by id. It fails if
// the tenant has holders. Tests and admin endpoints use it; the serving
// path relies on the clock instead.
func (r *Registry[E]) Evict(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.tenants[id]
	if t == nil {
		return fmt.Errorf("tenant %s: not resident", id)
	}
	select {
	case <-t.ready:
	default:
		return fmt.Errorf("tenant %s: still building", id)
	}
	if t.inflight.Load() > 0 {
		return fmt.Errorf("tenant %s: in use", id)
	}
	if r.cfg.SpillDir != "" {
		if err := r.saveLocked(t); err != nil {
			return err
		}
	}
	delete(r.tenants, id)
	r.dropFromRing(t)
	r.evictions.Add(1)
	if r.cfg.OnEvict != nil {
		r.cfg.OnEvict(t)
	}
	return nil
}

// SaveDirty spills every dirty resident tenant without evicting any —
// the graceful-drain half of shutdown. It keeps going on per-tenant
// errors and returns the first one. With no SpillDir it is a no-op.
func (r *Registry[E]) SaveDirty() error {
	if r.cfg.SpillDir == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, t := range r.ring {
		select {
		case <-t.ready:
		default:
			continue // still building; nothing to save yet
		}
		if t.err != nil {
			continue
		}
		if err := r.saveLocked(t); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Each calls f with every resident, fully built tenant. f runs without
// the registry lock and without a hold, so it must treat tenants as
// Peek results: read-only, possibly stale.
func (r *Registry[E]) Each(f func(t *Tenant[E])) {
	r.mu.RLock()
	snapshot := make([]*Tenant[E], len(r.ring))
	copy(snapshot, r.ring)
	r.mu.RUnlock()
	for _, t := range snapshot {
		select {
		case <-t.ready:
		default:
			continue
		}
		if t.err == nil {
			f(t)
		}
	}
}

// Len returns the number of resident tenants.
func (r *Registry[E]) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tenants)
}

// Evictions returns the cumulative count of tenants evicted.
func (r *Registry[E]) Evictions() uint64 { return r.evictions.Load() }

// Spills returns the cumulative count of spill files written.
func (r *Registry[E]) Spills() uint64 { return r.spills.Load() }
