package tenant_test

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"testing"

	temporalir "repro"
	"repro/internal/tenant"
)

// The differential isolation harness: every tenant runs a deterministic
// seeded workload of inserts, deletes, compactions and queries, and the
// digest of everything it observes must be byte-identical whether the
// tenant runs alone on a private engine (the oracle) or as one of 16
// tenants hammering a small shared registry concurrently — across
// eviction, spill and reload cycles. Any cross-tenant bleed (shared
// state, id reuse, lost writes on spill) shifts at least one digest.
//
// Queries cover Search, SearchAny and Timeline. TopK is exercised
// elsewhere: its scores depend on when the scorer snapshot was last
// refreshed relative to inserts, which legitimately differs between a
// single run and a run interrupted by evict/reload.

const (
	isoTenants = 16
	isoOps     = 300
)

// isoVocab is the shared term space; isolation must come from the
// engines, not from disjoint vocabularies.
var isoVocab = []string{
	"alpha", "beta", "gamma", "delta", "epsilon",
	"zeta", "eta", "theta", "iota", "kappa",
}

// isoDigest accumulates everything a workload observes.
type isoDigest struct {
	h interface{ Write(p []byte) (int, error) }
}

func (d isoDigest) u64(v uint64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	d.h.Write(buf[:])
}

// runIsolationWorkload executes tenant seed's deterministic op sequence,
// calling hold to obtain the engine for each op (the concurrent run
// re-resolves the tenant every time so evictions interleave; the oracle
// returns the same engine always). It returns the workload digest.
func runIsolationWorkload(t *testing.T, seed int64, hold func(func(e *temporalir.Engine))) string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	hash := sha256.New()
	d := isoDigest{h: hash}
	var live []temporalir.ObjectID

	terms := func(n int) []string {
		out := make([]string, 0, n)
		for len(out) < n {
			out = append(out, isoVocab[rng.Intn(len(isoVocab))])
		}
		return out
	}
	for op := 0; op < isoOps; op++ {
		lo := temporalir.Timestamp(rng.Intn(1000))
		hi := lo + temporalir.Timestamp(rng.Intn(200))
		switch k := rng.Intn(10); {
		case k < 5: // insert
			tt := terms(1 + rng.Intn(3))
			hold(func(e *temporalir.Engine) {
				id := e.Insert(lo, hi, tt...)
				live = append(live, id)
				d.u64(uint64(id))
			})
		case k < 6 && len(live) > 0: // delete a known id
			victim := rng.Intn(len(live))
			id := live[victim]
			live = append(live[:victim], live[victim+1:]...)
			hold(func(e *temporalir.Engine) {
				if err := e.Delete(id); err != nil {
					t.Errorf("seed %d op %d: delete %d: %v", seed, op, id, err)
				}
				d.u64(uint64(id))
			})
		case k < 8: // containment search
			tt := terms(1 + rng.Intn(2))
			hold(func(e *temporalir.Engine) {
				sumIDs(d, e.Search(lo, hi, tt...))
			})
		case k < 9: // disjunctive search
			tt := terms(2)
			hold(func(e *temporalir.Engine) {
				sumIDs(d, e.SearchAny(lo, hi, tt...))
			})
		default: // timeline histogram
			tt := terms(1)
			hold(func(e *temporalir.Engine) {
				for _, b := range e.Timeline(lo, hi+1, 8, tt...) {
					d.u64(uint64(b.Count))
				}
			})
		}
		if op%60 == 59 { // periodic compaction folds the memtable in
			hold(func(e *temporalir.Engine) {
				if _, err := e.Compact(context.Background()); err != nil {
					t.Errorf("seed %d op %d: compact: %v", seed, op, err)
				}
			})
		}
	}
	// Final full read-back: every live object's interval and terms.
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	hold(func(e *temporalir.Engine) {
		for _, id := range live {
			iv, tt, err := e.Object(id)
			if err != nil {
				t.Errorf("seed %d: object %d: %v", seed, id, err)
				continue
			}
			d.u64(uint64(id))
			d.u64(uint64(iv.Start))
			d.u64(uint64(iv.End))
			for _, term := range tt {
				d.h.Write([]byte(term))
			}
		}
	})
	return hex.EncodeToString(hash.Sum(nil))
}

// sumIDs folds a result set into the digest in canonical order.
func sumIDs(d isoDigest, ids []temporalir.ObjectID) {
	sorted := append([]temporalir.ObjectID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	d.u64(uint64(len(sorted)))
	for _, id := range sorted {
		d.u64(uint64(id))
	}
}

// TestDifferentialIsolation is the acceptance test of the tenancy
// subsystem: 16 tenants run their workloads concurrently on a registry
// with room for only 4, so engines constantly evict, spill and reload
// mid-workload; each tenant's digest must equal its single-tenant
// oracle digest exactly.
func TestDifferentialIsolation(t *testing.T) {
	method, opts := temporalir.IRHintPerf, temporalir.Options{}

	// Oracle digests: each tenant alone on a private engine.
	oracle := make([]string, isoTenants)
	for i := range oracle {
		eng, err := temporalir.NewBuilder().Build(method, opts)
		if err != nil {
			t.Fatal(err)
		}
		oracle[i] = runIsolationWorkload(t, int64(1000+i), func(f func(e *temporalir.Engine)) { f(eng) })
	}

	reg := tenant.NewRegistry(tenant.Config[*temporalir.Engine]{
		New: func(id string) (*temporalir.Engine, error) {
			return temporalir.NewBuilder().Build(method, opts)
		},
		Load: func(id string, r io.Reader) (*temporalir.Engine, error) {
			return temporalir.LoadEngine(r, method, opts)
		},
		MaxActive: 4,
		SpillDir:  t.TempDir(),
	})

	var wg sync.WaitGroup
	got := make([]string, isoTenants)
	for i := 0; i < isoTenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("tenant-%02d", i)
			// Re-resolve the tenant for every operation: between ops the
			// tenant is unheld, so the clock hand is free to evict it and
			// the next op transparently reloads from spill.
			got[i] = runIsolationWorkload(t, int64(1000+i), func(f func(e *temporalir.Engine)) {
				tn, err := reg.Get(id)
				if err != nil {
					t.Errorf("%s: %v", id, err)
					return
				}
				f(tn.Engine())
				tn.Release()
			})
		}(i)
	}
	wg.Wait()

	for i := range oracle {
		if got[i] != oracle[i] {
			t.Errorf("tenant %02d diverged from its single-tenant oracle:\n  concurrent %s\n  oracle     %s",
				i, got[i], oracle[i])
		}
	}
	if reg.Evictions() == 0 {
		t.Error("no evictions occurred; the workload did not exercise spill/reload")
	}
	t.Logf("evictions=%d spills=%d", reg.Evictions(), reg.Spills())
}
