package tenant

import (
	"sync"
	"time"
)

// FairShare is weighted max-share admission over a fixed capacity: a
// tenant may hold at most
//
//	share = max(1, capacity * weight / activeWeight)
//
// slots, where activeWeight sums the weights of tenants seen inside
// the activity window. With one active tenant the share is the whole
// capacity (no throughput sacrificed when there is no contention);
// when more tenants wake up, shares contract so no tenant can occupy
// the whole pool while others queue. The count is of tenants *recently
// seen*, not currently holding, so a bursty tenant's share stays
// stable across its own gaps.
//
// FairShare only computes shares; the caller pairs it with an
// exec.Gate that bounds the true total. Admission order matters: check
// the gate first (503, the node is full) and the share second (429,
// this tenant is over its fraction).
type FairShare struct {
	capacity int
	window   time.Duration

	mu sync.Mutex
	// entries tracks per-tenant weight, holds and last activity.
	// irlint:guarded-by mu
	entries map[string]*fairEntry
	// activeWeight is the cached sum of weights of unexpired entries.
	// irlint:guarded-by mu
	activeWeight int
	// lastSweep is when expired entries were last collected.
	// irlint:guarded-by mu
	lastSweep time.Time
}

type fairEntry struct {
	weight int
	inUse  int
	last   time.Time
}

// DefaultWindow is the activity window used when none is configured:
// long enough that a tenant issuing a query a second stays "active",
// short enough that a departed tenant stops taxing others quickly.
const DefaultWindow = time.Second

// NewFairShare returns an admission controller for the given worker
// capacity. window <= 0 selects DefaultWindow.
func NewFairShare(capacity int, window time.Duration) *FairShare {
	if capacity <= 0 {
		panic("tenant: fair-share capacity must be positive") // lint:panic-ok construction-time programming error
	}
	if window <= 0 {
		window = DefaultWindow
	}
	return &FairShare{
		capacity: capacity,
		window:   window,
		entries:  make(map[string]*fairEntry),
	}
}

// Acquire admits one slot for the tenant if it is under its current
// share, marking the tenant active either way. On success the caller
// must call Release.
func (f *FairShare) Acquire(id string, weight int, now time.Time) bool {
	if weight <= 0 {
		weight = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sweepLocked(now)
	// Invariant: activeWeight is exactly the sum of weights of entries
	// in the map. The "active set" is therefore the map itself — up to
	// one window stale for departed tenants, which only makes shares
	// slightly conservative until the next sweep.
	e := f.entries[id]
	if e == nil {
		e = &fairEntry{}
		f.entries[id] = e
		f.activeWeight += weight
	} else if weight != e.weight {
		f.activeWeight += weight - e.weight
	}
	e.weight = weight
	e.last = now

	share := f.capacity * weight / f.activeWeight
	if share < 1 {
		share = 1
	}
	if e.inUse >= share {
		return false
	}
	e.inUse++
	return true
}

// Release returns a slot taken by a successful Acquire.
func (f *FairShare) Release(id string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e := f.entries[id]
	if e == nil || e.inUse <= 0 {
		panic("tenant: fair-share released more than acquired") // lint:panic-ok caller bug: unbalanced Release
	}
	e.inUse--
}

// Share reports the tenant's current admission bound, for stats.
func (f *FairShare) Share(id string, weight int, now time.Time) int {
	if weight <= 0 {
		weight = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sweepLocked(now)
	aw := f.activeWeight
	if f.entries[id] == nil {
		aw += weight // would join the active set
	}
	share := f.capacity * weight / aw
	if share < 1 {
		share = 1
	}
	return share
}

// sweepLocked drops tenants idle past the window with no held slots,
// returning their weight to the pool. It runs at most once per window
// so steady-state Acquire stays O(1). irlint:locked mu
func (f *FairShare) sweepLocked(now time.Time) {
	if now.Sub(f.lastSweep) < f.window {
		return
	}
	f.lastSweep = now
	for id, e := range f.entries { // lint:map-order-ok expiry sweep; order-insensitive
		if e.inUse == 0 && now.Sub(e.last) > f.window {
			f.activeWeight -= e.weight
			delete(f.entries, id)
		}
	}
}
