package tenant

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	temporalir "repro"
)

// TestCorruptSpillSurfacesError covers the reload half of the spill
// lifecycle when the file on disk has rotted: Get must return the
// loader's error wrapped with tenant context, the failed slot must not
// wedge (a later Get retries from scratch and succeeds once the file is
// repaired), and a healthy resident tenant must keep serving without
// being evicted as collateral.
func TestCorruptSpillSurfacesError(t *testing.T) {
	cfg := testConfig(t, true)
	// A loader with an actual validity check: every record must carry
	// the "ok:" frame. loadFake alone accepts any text, which would let
	// corruption slide through as data.
	cfg.Load = func(id string, r io.Reader) (*fakeEngine, error) {
		e, err := loadFake(r)
		if err != nil {
			return nil, err
		}
		for _, row := range e.rows {
			if !strings.HasPrefix(row, "ok:") {
				return nil, fmt.Errorf("bad record %q", row)
			}
		}
		return e, nil
	}
	r := NewRegistry(cfg)

	v := mustGet(t, r, "victim")
	v.Engine().Add("ok:v1")
	v.Engine().Add("ok:v2")
	v.Release()
	h := mustGet(t, r, "healthy")
	h.Engine().Add("ok:h1")
	h.Release()

	if err := r.Evict("victim"); err != nil {
		t.Fatalf("Evict: %v", err)
	}
	path := filepath.Join(cfg.SpillDir, "victim.tir")
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading spill: %v", err)
	}
	if err := os.WriteFile(path, []byte("\x00garbage junk\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Concurrent Gets on the corrupt tenant: every caller must see the
	// wrapped loader error; none may hang on a dead placeholder.
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Get("victim")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("Get %d: corrupt spill loaded without error", i)
		}
		if !strings.Contains(err.Error(), "reloading spill") || !strings.Contains(err.Error(), "victim") {
			t.Fatalf("Get %d: error %q lacks spill/tenant context", i, err)
		}
	}

	// The healthy tenant was never in danger: still resident, data
	// intact, and the failed reloads evicted nobody.
	if _, ok := r.Peek("healthy"); !ok {
		t.Fatal("healthy tenant lost residency during victim's reload failures")
	}
	h = mustGet(t, r, "healthy")
	if rows := h.Engine().Rows(); len(rows) != 1 || rows[0] != "ok:h1" {
		t.Fatalf("healthy tenant rows = %v", rows)
	}
	h.Release()
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (healthy only)", r.Len())
	}

	// The slot is not wedged: repairing the file makes the next Get
	// succeed with the original data.
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	v = mustGet(t, r, "victim")
	if rows := v.Engine().Rows(); len(rows) != 2 || rows[0] != "ok:v1" || rows[1] != "ok:v2" {
		t.Fatalf("repaired reload rows = %v", rows)
	}
	v.Release()
}

// TestCorruptSpillRealEngine runs the same scenario through the real
// snapshot codec: truncations and header corruption of a .tir file must
// surface as reload errors, and restoring the original bytes must bring
// the tenant back with its objects.
func TestCorruptSpillRealEngine(t *testing.T) {
	dir := t.TempDir()
	cfg := Config[*temporalir.Engine]{
		New: func(id string) (*temporalir.Engine, error) {
			return temporalir.NewBuilder().Build(temporalir.TIF, temporalir.Options{})
		},
		Load: func(id string, r io.Reader) (*temporalir.Engine, error) {
			return temporalir.LoadEngine(r, temporalir.TIF, temporalir.Options{})
		},
		SpillDir: dir,
	}
	r := NewRegistry(cfg)

	v, err := r.Get("v")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		v.Engine().Insert(temporalir.Timestamp(i*10), temporalir.Timestamp(i*10+25), fmt.Sprintf("t%02d", i%7))
	}
	v.Release()
	if err := r.Evict("v"); err != nil {
		t.Fatalf("Evict: %v", err)
	}

	path := filepath.Join(dir, "v.tir")
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string][]byte{
		"empty":          {},
		"half-truncated": good[:len(good)/2],
		"tail-cut":       good[:len(good)-1],
		"bad-magic":      append([]byte("XXXX"), good[4:]...),
	}
	for name, data := range mutations {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Get("v"); err == nil {
			t.Fatalf("%s spill loaded without error", name)
		} else if !strings.Contains(err.Error(), "reloading spill") {
			t.Fatalf("%s spill: error %q not a reload error", name, err)
		}
	}

	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	v, err = r.Get("v")
	if err != nil {
		t.Fatalf("Get after repair: %v", err)
	}
	if v.Engine().Len() != 40 {
		t.Fatalf("restored Len = %d, want 40", v.Engine().Len())
	}
	if ids := v.Engine().Search(0, 1000); len(ids) != 40 {
		t.Fatalf("restored search hit %d objects, want 40", len(ids))
	}
	v.Release()
}
