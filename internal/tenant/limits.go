package tenant

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Limits is a tenant's static resource envelope. The zero value is
// fully unlimited with weight 1, so operators only configure what they
// want to constrain.
type Limits struct {
	// QueriesPerSec caps the sustained query rate via a token bucket.
	// Zero disables rate limiting.
	QueriesPerSec float64 `json:"queries_per_sec"`
	// Burst is the token-bucket depth; it defaults to
	// max(1, ceil(QueriesPerSec)) when rate limiting is enabled.
	Burst int `json:"burst"`
	// MaxInFlight caps the tenant's concurrent queries. Zero disables
	// the cap (the global gate still bounds the process).
	MaxInFlight int `json:"max_in_flight"`
	// MaxMemObjects caps the engine's memtable object count; inserts
	// beyond it are rejected until a compaction folds the memtable in.
	// Zero disables the quota.
	MaxMemObjects int `json:"max_mem_objects"`
	// MaxSizeBytes caps the engine's estimated resident size; inserts
	// beyond it are rejected. Zero disables the quota.
	MaxSizeBytes int64 `json:"max_size_bytes"`
	// Weight is the tenant's fair-share weight; tenants receive worker
	// capacity proportional to weight. Zero means 1.
	Weight int `json:"weight"`
}

// EffectiveWeight returns the fair-share weight with the zero-value
// default applied.
func (l Limits) EffectiveWeight() int {
	if l.Weight <= 0 {
		return 1
	}
	return l.Weight
}

// Rejection reasons carried by LimitError and used as metric label
// values. The set is fixed so per-tenant rejection counters have a
// bounded label space.
const (
	ReasonRate     = "rate"          // token bucket empty
	ReasonInFlight = "inflight"      // per-tenant concurrency cap
	ReasonMemQuota = "mem_quota"     // memtable object quota
	ReasonSize     = "size_quota"    // resident-size quota
	ReasonShare    = "share"         // fair-share overage under contention
	ReasonFull     = "registry_full" // no evictable slot for a new tenant
)

// Reasons lists every rejection reason, in a fixed order, for metric
// pre-registration.
var Reasons = []string{ReasonRate, ReasonInFlight, ReasonMemQuota, ReasonSize, ReasonShare, ReasonFull}

// LimitError reports a request rejected by a tenant limit. RetryAfter
// is a hint for the Retry-After header; zero means "retry immediately
// after reducing usage" (quotas, concurrency caps).
type LimitError struct {
	Tenant     string
	Reason     string
	RetryAfter time.Duration
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("tenant %s over limit: %s", e.Tenant, e.Reason)
}

// AsLimitError unwraps err as a *LimitError, or returns nil. Callers
// branch on it to map limit rejections to 429 responses.
func AsLimitError(err error) *LimitError {
	le, ok := err.(*LimitError)
	if !ok {
		return nil
	}
	return le
}

// Limiter is a tenant's runtime admission state: a token bucket for
// query rate plus an in-flight counter. One Limiter belongs to one
// Tenant and survives engine eviction (limits are identity-scoped, not
// engine-scoped).
type Limiter struct {
	id  string
	lim Limits

	inflight atomic.Int64

	// mu guards the token bucket. The bucket is only touched when rate
	// limiting is configured; unlimited tenants stay lock-free.
	mu     sync.Mutex
	tokens float64   // irlint:guarded-by mu
	refill time.Time // irlint:guarded-by mu
}

// NewLimiter returns the runtime admission state for one tenant. The
// bucket starts full so a fresh tenant can burst immediately.
func NewLimiter(id string, lim Limits, now time.Time) *Limiter {
	l := &Limiter{id: id, lim: lim, refill: now}
	l.tokens = float64(l.burst())
	return l
}

// Limits returns the static envelope the limiter enforces.
func (l *Limiter) Limits() Limits { return l.lim }

func (l *Limiter) burst() int {
	if l.lim.Burst > 0 {
		return l.lim.Burst
	}
	if l.lim.QueriesPerSec <= 0 {
		return 1
	}
	b := int(l.lim.QueriesPerSec)
	if float64(b) < l.lim.QueriesPerSec {
		b++
	}
	if b < 1 {
		b = 1
	}
	return b
}

// AcquireQuery admits one query, charging the token bucket and the
// in-flight counter. On success the caller must call ReleaseQuery. The
// returned error is nil or a *LimitError (declared as error so a nil
// result is a nil interface).
func (l *Limiter) AcquireQuery(now time.Time) error {
	if n := int64(l.lim.MaxInFlight); n > 0 {
		if l.inflight.Add(1) > n {
			l.inflight.Add(-1)
			return &LimitError{Tenant: l.id, Reason: ReasonInFlight}
		}
	} else {
		l.inflight.Add(1)
	}
	if l.lim.QueriesPerSec > 0 {
		if wait := l.takeToken(now); wait > 0 {
			l.inflight.Add(-1)
			return &LimitError{Tenant: l.id, Reason: ReasonRate, RetryAfter: wait}
		}
	}
	return nil
}

// ReleaseQuery returns the in-flight slot claimed by AcquireQuery.
func (l *Limiter) ReleaseQuery() {
	if l.inflight.Add(-1) < 0 {
		panic("tenant: limiter released more than acquired") // lint:panic-ok caller bug: unbalanced ReleaseQuery
	}
}

// InFlight returns the tenant's current concurrent queries.
func (l *Limiter) InFlight() int { return int(l.inflight.Load()) }

// takeToken refills the bucket for elapsed time and takes one token,
// returning zero on success or the wait until a token is available.
func (l *Limiter) takeToken(now time.Time) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	rate := l.lim.QueriesPerSec
	if dt := now.Sub(l.refill); dt > 0 {
		l.tokens += dt.Seconds() * rate
		if max := float64(l.burst()); l.tokens > max {
			l.tokens = max
		}
	}
	// The clock is caller-supplied and may be non-monotonic across
	// goroutines; never move the refill mark backwards.
	if now.After(l.refill) {
		l.refill = now
	}
	if l.tokens >= 1 {
		l.tokens--
		return 0
	}
	need := 1 - l.tokens
	return time.Duration(need / rate * float64(time.Second))
}

// CheckIngest admits one insert against the memtable and size quotas,
// given the engine's current memtable object count and estimated
// resident size. Quota checks are advisory reads of a moving value, so
// concurrent inserts may overshoot by the number of in-flight writers —
// the quota bounds growth, it is not a hard byte ceiling.
func (l *Limiter) CheckIngest(memObjects int, sizeBytes int64) error {
	if q := l.lim.MaxMemObjects; q > 0 && memObjects >= q {
		return &LimitError{Tenant: l.id, Reason: ReasonMemQuota}
	}
	if q := l.lim.MaxSizeBytes; q > 0 && sizeBytes >= q {
		return &LimitError{Tenant: l.id, Reason: ReasonSize}
	}
	return nil
}
