package tenant

import (
	"testing"
	"time"
)

func TestFairShareSingleTenantGetsFullCapacity(t *testing.T) {
	now := time.Unix(1000, 0)
	f := NewFairShare(8, time.Second)
	for i := 0; i < 8; i++ {
		if !f.Acquire("solo", 1, now) {
			t.Fatalf("solo tenant rejected at slot %d of full capacity", i)
		}
	}
	if f.Acquire("solo", 1, now) {
		t.Fatal("admitted past capacity share")
	}
}

func TestFairShareSplitsUnderContention(t *testing.T) {
	now := time.Unix(1000, 0)
	f := NewFairShare(8, time.Second)
	// Two equal tenants: each share is 4.
	for i := 0; i < 4; i++ {
		if !f.Acquire("a", 1, now) {
			t.Fatalf("tenant a rejected at slot %d (share should be 4)", i)
		}
		if !f.Acquire("b", 1, now) {
			t.Fatalf("tenant b rejected at slot %d (share should be 4)", i)
		}
	}
	if f.Acquire("a", 1, now) {
		t.Fatal("tenant a exceeded its half share")
	}
	f.Release("b")
	if got := f.Share("a", 1, now); got != 4 {
		t.Fatalf("Share(a) = %d, want 4", got)
	}
}

func TestFairShareWeights(t *testing.T) {
	now := time.Unix(1000, 0)
	f := NewFairShare(12, time.Second)
	// weight 2 vs weight 1: shares 8 and 4.
	f.Acquire("heavy", 2, now)
	f.Acquire("light", 1, now)
	if got := f.Share("heavy", 2, now); got != 8 {
		t.Fatalf("Share(heavy) = %d, want 8", got)
	}
	if got := f.Share("light", 1, now); got != 4 {
		t.Fatalf("Share(light) = %d, want 4", got)
	}
}

func TestFairShareMinimumOne(t *testing.T) {
	now := time.Unix(1000, 0)
	f := NewFairShare(2, time.Second)
	for _, id := range []string{"a", "b", "c", "d"} {
		if !f.Acquire(id, 1, now) {
			t.Fatalf("tenant %s denied its minimum share of 1", id)
		}
	}
}

func TestFairShareExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	f := NewFairShare(8, time.Second)
	for i := 0; i < 4; i++ {
		if !f.Acquire("a", 1, now) {
			t.Fatal("a rejected")
		}
		f.Release("a")
	}
	f.Acquire("b", 1, now)
	f.Release("b")
	if got := f.Share("a", 1, now); got != 4 {
		t.Fatalf("contended Share(a) = %d, want 4", got)
	}
	// b goes idle past the window; a's share recovers to full capacity.
	later := now.Add(3 * time.Second)
	if got := f.Share("a", 1, later); got != 8 {
		t.Fatalf("post-expiry Share(a) = %d, want 8", got)
	}
}

func TestFairShareUnbalancedReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Release did not panic")
		}
	}()
	NewFairShare(4, time.Second).Release("ghost")
}
