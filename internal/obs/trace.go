package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Stage labels one timed phase of the query (or compaction) pipeline.
// The set is closed and small so a Trace can hold one atomic
// accumulator per stage — concurrent fan-out workers record into the
// same Trace without locks.
type Stage uint8

const (
	// StagePlan is term resolution and evaluation-order planning.
	StagePlan Stage = iota
	// StagePostings is the first-element postings fetch (the temporal
	// range query that seeds the candidate set).
	StagePostings
	// StageIntersect is the candidate intersection against the
	// remaining query elements.
	StageIntersect
	// StageFilter is the generation finish step: tombstone filtering
	// plus the memtable scan.
	StageFilter
	// StageRank is top-k scoring (it envelopes the ranked path's inner
	// query, so it overlaps StagePostings/StageIntersect).
	StageRank
	// StageAgg is timeline histogram aggregation (it envelopes the
	// aggregation's inner index work).
	StageAgg
	// StageSort is result ordering and external-id translation.
	StageSort
	// StageCompactCopy is compaction phase 1a: the off-lock survivor
	// copy.
	StageCompactCopy
	// StageCompactBuild is compaction phase 1b: the off-lock index
	// rebuild.
	StageCompactBuild
	// StageCompactSwap is compaction phase 2: the brief locked state
	// swap.
	StageCompactSwap
	// StageScatter is the sharded coordinator's fan-out: planning the
	// shard set and running the per-shard sub-queries (it envelopes each
	// shard's inner stages).
	StageScatter
	// StageMerge is the sharded coordinator's gather: k-way merging the
	// per-shard id lists, re-ranking top-k, or summing timeline buckets.
	StageMerge

	// NumStages bounds the per-trace accumulator arrays.
	NumStages
)

var stageNames = [NumStages]string{
	"plan", "postings", "intersect", "filter", "rank", "agg", "sort",
	"compact_copy", "compact_build", "compact_swap", "scatter", "merge",
}

// String returns the stable lowercase stage label used in metrics and
// the slow log.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// Trace accumulates per-stage wall time for one logical query (or one
// batch, or one compaction). All recording methods are safe on a nil
// receiver — a nil *Trace IS the disabled recorder, and costs one
// branch per call site — and safe for concurrent use, so batch rows
// fanned out across a worker pool may share one Trace.
type Trace struct {
	method  string
	shape   atomic.Pointer[string]
	route   atomic.Pointer[string]
	tenant  atomic.Pointer[string]
	start   time.Time
	stageNS [NumStages]atomic.Int64
	stageN  [NumStages]atomic.Int64
	batch   atomic.Int64
	results atomic.Int64
}

// NewTrace starts a trace for the named query method.
func NewTrace(method string) *Trace {
	return &Trace{method: method, start: time.Now()}
}

// StageTimer is an in-flight span returned by StartStage. End must run
// on every path, so call sites defer it (the span-end irlint analyzer
// enforces this).
type StageTimer struct {
	tr    *Trace
	stage Stage
	start time.Time
}

// StartStage opens a span for stage s. On a nil Trace it returns the
// zero StageTimer without reading the clock, so a disabled call site
// costs a branch and nothing else.
func (t *Trace) StartStage(s Stage) StageTimer {
	if t == nil {
		return StageTimer{}
	}
	return StageTimer{tr: t, stage: s, start: time.Now()}
}

// End closes the span and folds its duration into the trace. It is a
// no-op on the zero StageTimer.
func (st StageTimer) End() {
	if st.tr == nil {
		return
	}
	st.tr.stageNS[st.stage].Add(int64(time.Since(st.start)))
	st.tr.stageN[st.stage].Add(1)
}

// SetShape attaches a human-readable query shape (terms, interval,
// k...) shown in the slow log.
func (t *Trace) SetShape(shape string) {
	if t != nil {
		t.shape.Store(&shape)
	}
}

// SetRoute records which index family the adaptive router dispatched
// this query to. A batch trace keeps the last decision — the slow log
// wants a representative route, not a tally (the router's decision
// counters carry the tally).
func (t *Trace) SetRoute(method string) {
	if t != nil {
		t.route.Store(&method)
	}
}

// Route returns the recorded routing decision, or "" when the query
// was not routed (or the trace is nil).
func (t *Trace) Route() string {
	if t == nil {
		return ""
	}
	if p := t.route.Load(); p != nil {
		return *p
	}
	return ""
}

// SetTenant records which tenant the traced request belongs to, so
// slow-log entries are attributable in a multi-tenant deployment.
func (t *Trace) SetTenant(id string) {
	if t != nil {
		t.tenant.Store(&id)
	}
}

// Tenant returns the recorded tenant id, or "" when none was set (or
// the trace is nil).
func (t *Trace) Tenant() string {
	if t == nil {
		return ""
	}
	if p := t.tenant.Load(); p != nil {
		return *p
	}
	return ""
}

// SetBatch records how many sub-queries this trace covers.
func (t *Trace) SetBatch(n int) {
	if t != nil {
		t.batch.Store(int64(n))
	}
}

// AddResults accumulates result rows (batch rows add concurrently).
func (t *Trace) AddResults(n int) {
	if t != nil {
		t.results.Add(int64(n))
	}
}

// StageSummary is one row of a trace's per-stage breakdown.
type StageSummary struct {
	Stage string        `json:"stage"`
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
}

// Summary is the sealed, immutable form of a trace, as kept by the
// slow-query log. Stage durations may overlap (StageRank and StageAgg
// envelope inner stages), so they need not sum to Duration.
type Summary struct {
	Time     time.Time      `json:"time"`
	Method   string         `json:"method"`
	Tenant   string         `json:"tenant,omitempty"`
	Shape    string         `json:"shape,omitempty"`
	Route    string         `json:"route,omitempty"`
	Batch    int64          `json:"batch,omitempty"`
	Results  int64          `json:"results"`
	Duration time.Duration  `json:"duration_ns"`
	Stages   []StageSummary `json:"stages,omitempty"`
}

// Summary seals the trace into its exportable form. Safe on nil
// (returns the zero Summary).
func (t *Trace) Summary() Summary {
	if t == nil {
		return Summary{}
	}
	s := Summary{
		Time:     t.start,
		Method:   t.method,
		Batch:    t.batch.Load(),
		Results:  t.results.Load(),
		Duration: time.Since(t.start),
	}
	if p := t.tenant.Load(); p != nil {
		s.Tenant = *p
	}
	if p := t.shape.Load(); p != nil {
		s.Shape = *p
	}
	if p := t.route.Load(); p != nil {
		s.Route = *p
	}
	for i := Stage(0); i < NumStages; i++ {
		if n := t.stageN[i].Load(); n > 0 {
			s.Stages = append(s.Stages, StageSummary{
				Stage: i.String(),
				Count: n,
				Total: time.Duration(t.stageNS[i].Load()),
			})
		}
	}
	return s
}

// StageTotal returns the accumulated duration of one stage (zero on a
// nil trace). Used by tests and the bench harness.
func (t *Trace) StageTotal(s Stage) time.Duration {
	if t == nil || s >= NumStages {
		return 0
	}
	return time.Duration(t.stageNS[s].Load())
}

// StageCount returns how many spans were recorded for one stage.
func (t *Trace) StageCount(s Stage) int64 {
	if t == nil || s >= NumStages {
		return 0
	}
	return t.stageN[s].Load()
}

// traceKey carries a *Trace through a context.
type traceKey struct{}

// ContextWithTrace returns ctx carrying tr. A nil trace returns ctx
// unchanged, so downstream FromContext stays on the fast path.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceFromContext extracts the trace carried by ctx, or nil (the
// disabled recorder) when none is attached.
func TraceFromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}
