// Package obs is the repository's stdlib-only observability layer:
//
//   - a lock-free metrics registry (atomic counters, gauges and
//     fixed-bucket histograms, rendered in the Prometheus text
//     exposition format),
//   - per-query trace spans recorded through a context-carried
//     *Trace with near-zero cost when tracing is disabled (every
//     recording method is a nil-receiver no-op), and
//   - a slow-query log: a bounded ring buffer of the most recent
//     traces whose total duration crossed a threshold.
//
// The package sits below everything else (it imports only the standard
// library), so any layer — model, engine, server, maintenance — may
// record into it without import cycles.
package obs

import (
	"sync/atomic"
	"time"
)

// Config parameterizes an Observer.
type Config struct {
	// SlowThreshold is the duration at or above which a finished query
	// trace is captured by the slow-query log. Zero means
	// DefaultSlowThreshold; negative captures every trace.
	SlowThreshold time.Duration
	// SlowCapacity is the slow-log ring size. Zero means
	// DefaultSlowCapacity.
	SlowCapacity int
	// DisableTracing makes StartTrace return nil, so instrumented code
	// runs with no-op spans and the slow log stays empty. Metrics are
	// unaffected.
	DisableTracing bool
}

// DefaultSlowThreshold is the slow-query threshold when Config leaves
// it zero.
const DefaultSlowThreshold = 100 * time.Millisecond

// DefaultSlowCapacity is the slow-log ring size when Config leaves it
// zero.
const DefaultSlowCapacity = 128

// Observer bundles the metrics registry and the slow-query log behind
// one handle that owners (the HTTP server, the bench harness) share
// with the query path. A nil *Observer is fully usable: every method
// degrades to a no-op.
type Observer struct {
	reg     *Registry
	slow    *SlowLog
	tracing atomic.Bool
}

// NewObserver builds an Observer with a fresh registry and slow log.
func NewObserver(cfg Config) *Observer {
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	if cfg.SlowCapacity == 0 {
		cfg.SlowCapacity = DefaultSlowCapacity
	}
	o := &Observer{
		reg:  NewRegistry(),
		slow: NewSlowLog(cfg.SlowThreshold, cfg.SlowCapacity),
	}
	o.tracing.Store(!cfg.DisableTracing)
	return o
}

// Registry returns the metrics registry (nil on a nil Observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Slow returns the slow-query log (nil on a nil Observer).
func (o *Observer) Slow() *SlowLog {
	if o == nil {
		return nil
	}
	return o.slow
}

// SetTracing toggles span recording at runtime.
func (o *Observer) SetTracing(on bool) {
	if o != nil {
		o.tracing.Store(on)
	}
}

// StartTrace begins a trace for one logical query (or batch). It
// returns nil — the disabled recorder — when tracing is off or the
// Observer is nil; all Trace methods are safe on the nil result.
func (o *Observer) StartTrace(method string) *Trace {
	if o == nil || !o.tracing.Load() {
		return nil
	}
	return NewTrace(method)
}

// FinishTrace seals tr, offers its summary to the slow-query log, and
// returns the summary. A nil trace returns a zero Summary.
func (o *Observer) FinishTrace(tr *Trace) Summary {
	if tr == nil {
		return Summary{}
	}
	s := tr.Summary()
	if o != nil {
		o.slow.Offer(s)
	}
	return s
}
