package obs

import (
	"sync"
	"time"
)

// SlowLog keeps the most recent query trace summaries whose duration
// crossed a threshold, in a fixed-size ring. Offer is called once per
// finished query, so a short critical section is fine here — the
// per-stage hot path never touches it.
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	ring      []Summary
	next      int    // ring slot for the next entry
	total     uint64 // entries ever recorded (ring may have dropped old ones)
}

// NewSlowLog builds a log capturing summaries with Duration >=
// threshold, keeping the newest capacity entries. A negative threshold
// captures everything; capacity < 1 is clamped to 1.
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{threshold: threshold, ring: make([]Summary, 0, capacity)}
}

// Threshold returns the capture threshold (0 on a nil log).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Offer records s if it is slow enough, returning whether it was kept.
// Safe on a nil log.
func (l *SlowLog) Offer(s Summary) bool {
	if l == nil || s.Duration < l.threshold {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, s)
	} else {
		l.ring[l.next] = s
	}
	l.next = (l.next + 1) % cap(l.ring)
	l.total++
	return true
}

// Total returns how many entries were ever recorded, including ones
// the ring has since overwritten.
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained entries, newest first.
func (l *SlowLog) Snapshot() []Summary {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Summary, 0, len(l.ring))
	// Walk backwards from the most recently written slot.
	for i := 0; i < len(l.ring); i++ {
		idx := (l.next - 1 - i + len(l.ring)*2) % len(l.ring)
		if idx < 0 || idx >= len(l.ring) {
			break
		}
		out = append(out, l.ring[idx])
	}
	return out
}
