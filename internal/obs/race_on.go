//go:build race

package obs

// raceEnabled reports whether the race detector is compiled in; timing
// budgets are only meaningful without its instrumentation.
const raceEnabled = true
