package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsDisabledRecorder(t *testing.T) {
	var tr *Trace
	// Every recording method must be a no-op, not a nil deref.
	defer tr.StartStage(StagePlan).End()
	tr.SetShape("x")
	tr.SetBatch(3)
	tr.AddResults(7)
	if got := tr.Summary(); got.Method != "" || got.Results != 0 {
		t.Fatalf("nil trace summary = %+v, want zero", got)
	}
	if tr.StageTotal(StagePlan) != 0 || tr.StageCount(StagePlan) != 0 {
		t.Fatal("nil trace accumulated a stage")
	}
}

func TestTraceStages(t *testing.T) {
	tr := NewTrace("search")
	tr.SetShape("terms=2")
	func() {
		defer tr.StartStage(StagePostings).End()
		time.Sleep(time.Millisecond)
	}()
	func() {
		defer tr.StartStage(StagePostings).End()
	}()
	tr.AddResults(5)
	s := tr.Summary()
	if s.Method != "search" || s.Shape != "terms=2" || s.Results != 5 {
		t.Fatalf("summary header = %+v", s)
	}
	if tr.StageCount(StagePostings) != 2 {
		t.Fatalf("postings count = %d, want 2", tr.StageCount(StagePostings))
	}
	if tr.StageTotal(StagePostings) < time.Millisecond {
		t.Fatalf("postings total = %v, want >= 1ms", tr.StageTotal(StagePostings))
	}
	if len(s.Stages) != 1 || s.Stages[0].Stage != "postings" || s.Stages[0].Count != 2 {
		t.Fatalf("stage breakdown = %+v", s.Stages)
	}
}

// TestTraceConcurrent exercises the shared-trace batch pattern: many
// workers record into one trace.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("batch")
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				func() {
					defer tr.StartStage(StageIntersect).End()
				}()
				tr.AddResults(1)
			}
		}()
	}
	wg.Wait()
	if got := tr.StageCount(StageIntersect); got != workers*per {
		t.Fatalf("intersect count = %d, want %d", got, workers*per)
	}
	if got := tr.Summary().Results; got != workers*per {
		t.Fatalf("results = %d, want %d", got, workers*per)
	}
}

// TestOnOffParity: the same instrumented code path must produce
// identical data results whether the recorder is nil or live.
func TestOnOffParity(t *testing.T) {
	run := func(tr *Trace) []int {
		defer tr.StartStage(StagePlan).End()
		out := make([]int, 0, 10)
		func() {
			defer tr.StartStage(StageIntersect).End()
			for i := 0; i < 10; i++ {
				out = append(out, i*i)
			}
		}()
		tr.AddResults(len(out))
		return out
	}
	off := run(nil)
	live := NewTrace("parity")
	on := run(live)
	if len(off) != len(on) {
		t.Fatalf("parity broken: %d vs %d results", len(off), len(on))
	}
	for i := range off {
		if off[i] != on[i] {
			t.Fatalf("parity broken at %d: %d vs %d", i, off[i], on[i])
		}
	}
	if live.Summary().Results != 10 || live.StageCount(StageIntersect) != 1 {
		t.Fatalf("live trace did not record: %+v", live.Summary())
	}
}

func TestContextRoundTrip(t *testing.T) {
	if TraceFromContext(context.Background()) != nil {
		t.Fatal("empty context produced a trace")
	}
	tr := NewTrace("x")
	ctx := ContextWithTrace(context.Background(), tr)
	if got := TraceFromContext(ctx); got != tr {
		t.Fatal("trace did not round-trip through context")
	}
	// Attaching nil leaves the context untouched.
	if ctx2 := ContextWithTrace(context.Background(), nil); TraceFromContext(ctx2) != nil {
		t.Fatal("nil trace attached to context")
	}
}

func TestObserverToggle(t *testing.T) {
	o := NewObserver(Config{SlowThreshold: -1})
	if tr := o.StartTrace("q"); tr == nil {
		t.Fatal("tracing should default on")
	}
	o.SetTracing(false)
	if tr := o.StartTrace("q"); tr != nil {
		t.Fatal("tracing should be off")
	}
	o.SetTracing(true)
	tr := o.StartTrace("q")
	tr.AddResults(1)
	sum := o.FinishTrace(tr)
	if sum.Results != 1 {
		t.Fatalf("finish summary = %+v", sum)
	}
	if o.Slow().Total() != 1 {
		t.Fatal("negative threshold should capture every trace")
	}

	// Nil observer degrades everywhere.
	var nilObs *Observer
	if nilObs.StartTrace("q") != nil || nilObs.Registry() != nil || nilObs.Slow() != nil {
		t.Fatal("nil observer leaked a handle")
	}
	nilObs.SetTracing(true)
	nilObs.FinishTrace(nil)
}

func TestStageStrings(t *testing.T) {
	for s := Stage(0); s < NumStages; s++ {
		if s.String() == "" || s.String() == "unknown" {
			t.Fatalf("stage %d has no name", s)
		}
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage should be unknown")
	}
}
