package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The hot path is a
// single atomic add; callers hold the *Counter handle so no map lookup
// happens per event.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value (stored as float64 bits so
// ratios work).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta via a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Observe is lock-free: one
// atomic add on the matching bucket, one on the count, and a CAS loop
// on the float sum.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// DefLatencyBuckets spans 10µs..10s, the range of interest for the
// query path.
func DefLatencyBuckets() []float64 {
	return []float64{1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 10}
}

// DefSizeBuckets covers batch sizes / result counts.
func DefSizeBuckets() []float64 {
	return []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000}
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Label is one metric dimension.
type Label struct {
	Key, Value string
}

// metric kinds for exposition.
const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindHist    = "histogram"
)

// sample is one labeled series inside a family. Exactly one of the
// value fields is set, matching the family kind.
type sample struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64 // scrape-time callback (counterFunc/gaugeFunc)
}

type familyDef struct {
	name, help, kind string
	bounds           []float64 // histogram only
	samples          []*sample
}

// Registry holds metric families. Registration and scraping take the
// registry mutex; the recording hot path never does — callers keep the
// atomic handles returned at registration time.
type Registry struct {
	mu       sync.Mutex
	families map[string]*familyDef
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*familyDef)}
}

// family returns (creating if needed) the named family, panicking on a
// kind mismatch — that is a programming error caught in tests.
func (r *Registry) family(name, help, kind string) *familyDef {
	f, ok := r.families[name]
	if !ok {
		f = &familyDef{name: name, help: help, kind: kind}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic("obs: metric " + name + " re-registered as " + kind + ", was " + f.kind) // lint:panic-ok registration-time programming error
	}
	return f
}

// find returns the existing sample with exactly these labels, if any.
func (f *familyDef) find(labels []Label) *sample {
	for _, s := range f.samples {
		if labelsEqual(s.labels, labels) {
			return s
		}
	}
	return nil
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func cloneLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Counter registers (or finds) a counter series and returns its
// handle. Safe on a nil registry: returns a detached counter so
// un-observed code paths still work.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{}
	}
	ls := cloneLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter)
	if s := f.find(ls); s != nil {
		return s.ctr
	}
	s := &sample{labels: ls, ctr: &Counter{}}
	f.samples = append(f.samples, s)
	return s.ctr
}

// Gauge registers (or finds) a gauge series and returns its handle.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	ls := cloneLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	if s := f.find(ls); s != nil {
		return s.gauge
	}
	s := &sample{labels: ls, gauge: &Gauge{}}
	f.samples = append(f.samples, s)
	return s.gauge
}

// Histogram registers (or finds) a histogram series with the given
// ascending bucket bounds and returns its handle.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	ls := cloneLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindHist)
	if f.bounds == nil {
		f.bounds = append([]float64(nil), bounds...)
	}
	if s := f.find(ls); s != nil {
		return s.hist
	}
	s := &sample{labels: ls, hist: newHistogram(bounds)}
	f.samples = append(f.samples, s)
	return s.hist
}

// CounterFunc registers a scrape-time counter callback — for monotonic
// values owned elsewhere (compaction totals, pool counters).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	ls := cloneLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter)
	if s := f.find(ls); s != nil {
		s.fn = fn
		return
	}
	f.samples = append(f.samples, &sample{labels: ls, fn: fn})
}

// GaugeFunc registers a scrape-time gauge callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	ls := cloneLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	if s := f.find(ls); s != nil {
		s.fn = fn
		return
	}
	f.samples = append(f.samples, &sample{labels: ls, fn: fn})
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4): sorted families, # HELP/# TYPE
// headers, cumulative histogram buckets with an explicit +Inf bound.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Snapshot families AND their sample slices under the lock: tenants
	// register series at runtime, so samples may be appended
	// concurrently with a scrape. Callbacks still run outside the lock,
	// so scrape-time fns may take other locks freely.
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families { // lint:map-order-ok sink is sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*familyDef, len(names))
	for i, name := range names {
		src := r.families[name]
		f := &familyDef{name: src.name, help: src.help, kind: src.kind, bounds: src.bounds}
		f.samples = append(f.samples, src.samples...)
		fams[i] = f
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.samples {
			writeSample(&b, f, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSample(b *strings.Builder, f *familyDef, s *sample) {
	switch {
	case s.hist != nil:
		var cum uint64
		for i, bound := range s.hist.bounds {
			cum += s.hist.buckets[i].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(s.labels, Label{"le", formatFloat(bound)}), cum)
		}
		cum += s.hist.buckets[len(s.hist.bounds)].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(s.labels, Label{"le", "+Inf"}), cum)
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(s.labels), formatFloat(s.hist.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(s.labels), s.hist.Count())
	case s.ctr != nil:
		fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(s.labels), s.ctr.Value())
	case s.gauge != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(s.labels), formatFloat(s.gauge.Value()))
	case s.fn != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(s.labels), formatFloat(s.fn()))
	}
}

// labelString renders {k="v",...} or "" for no labels. extra labels
// (the histogram le bound) append after the sample's own.
func labelString(labels []Label, extra ...Label) string {
	if len(labels)+len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	all := append(append([]Label(nil), labels...), extra...)
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders floats the Prometheus way: integers without a
// decimal point, everything else in shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
