package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(10*time.Millisecond, 4)
	if l.Offer(Summary{Duration: 5 * time.Millisecond}) {
		t.Fatal("fast query captured")
	}
	if !l.Offer(Summary{Duration: 10 * time.Millisecond}) {
		t.Fatal("threshold query dropped")
	}
	if l.Total() != 1 || len(l.Snapshot()) != 1 {
		t.Fatalf("total=%d snapshot=%d, want 1/1", l.Total(), len(l.Snapshot()))
	}
}

func TestSlowLogWraparound(t *testing.T) {
	l := NewSlowLog(-1, 4)
	for i := 1; i <= 10; i++ {
		l.Offer(Summary{Method: "q", Results: int64(i), Duration: time.Duration(i)})
	}
	if l.Total() != 10 {
		t.Fatalf("total = %d, want 10", l.Total())
	}
	snap := l.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4 (ring capacity)", len(snap))
	}
	// Newest first: 10, 9, 8, 7.
	for i, want := range []int64{10, 9, 8, 7} {
		if snap[i].Results != want {
			t.Fatalf("snapshot[%d].Results = %d, want %d", i, snap[i].Results, want)
		}
	}
}

func TestSlowLogPartialRing(t *testing.T) {
	l := NewSlowLog(-1, 8)
	l.Offer(Summary{Results: 1})
	l.Offer(Summary{Results: 2})
	snap := l.Snapshot()
	if len(snap) != 2 || snap[0].Results != 2 || snap[1].Results != 1 {
		t.Fatalf("snapshot = %+v, want [2 1]", snap)
	}
}

func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(-1, 16)
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Offer(Summary{Duration: time.Duration(i)})
			}
		}()
	}
	wg.Wait()
	if l.Total() != workers*per {
		t.Fatalf("total = %d, want %d", l.Total(), workers*per)
	}
	if len(l.Snapshot()) != 16 {
		t.Fatalf("snapshot len = %d, want 16", len(l.Snapshot()))
	}
}

func TestSlowLogNil(t *testing.T) {
	var l *SlowLog
	if l.Offer(Summary{}) || l.Total() != 0 || l.Snapshot() != nil || l.Threshold() != 0 {
		t.Fatal("nil slow log must be inert")
	}
}
