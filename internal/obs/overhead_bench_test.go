package obs

import (
	"testing"
	"time"
)

// The acceptance budget for this layer: with tracing disabled (nil
// *Trace), an instrumented query path must stay within 5% of the
// un-instrumented baseline. BenchmarkQueryPath{Baseline,Disabled,
// Enabled} give the raw numbers; TestDisabledOverheadBudget enforces
// the budget in the normal test run (with margin for CI noise).

const (
	benchStages   = 6   // stages a typical query records
	benchWorkSize = 512 // simulated per-stage useful work
)

func benchLoop(b *testing.B, tr *Trace) {
	data := make([]int64, benchWorkSize)
	for i := range data {
		data[i] = int64(i)
	}
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < benchStages; s++ {
			func() {
				defer tr.StartStage(Stage(s % int(NumStages))).End()
				sink += workUnit(data)
			}()
		}
	}
	_ = sink
}

func BenchmarkQueryPathBaseline(b *testing.B) {
	data := make([]int64, benchWorkSize)
	for i := range data {
		data[i] = int64(i)
	}
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < benchStages; s++ {
			sink += workUnit(data)
		}
	}
	_ = sink
}

func BenchmarkQueryPathDisabledTrace(b *testing.B) {
	benchLoop(b, nil)
}

func BenchmarkQueryPathEnabledTrace(b *testing.B) {
	benchLoop(b, NewTrace("bench"))
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("tir_bench_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("tir_bench_seconds", "", DefLatencyBuckets())
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.003)
		}
	})
}

func TestDisabledOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if raceEnabled {
		// The detector's per-access instrumentation costs the two arms
		// differently, so the 5% ratio is noise under -race; the budget
		// is enforced by the regular (tier-1) test run.
		t.Skip("timing budget is not meaningful under -race")
	}
	// Three attempts: timing tests on loaded CI machines need slack.
	var last float64
	for attempt := 0; attempt < 3; attempt++ {
		base, inst := DisabledOverhead(2000, benchStages, benchWorkSize)
		last = (inst - base) / base * 100
		if last < 5.0 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("disabled-trace overhead %.2f%% exceeds the 5%% budget", last)
}
