package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tir_test_total", "test counter", Label{"method", "search"})
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Re-registration returns the same handle.
	if c2 := r.Counter("tir_test_total", "test counter", Label{"method", "search"}); c2 != c {
		t.Fatal("re-registration returned a different counter handle")
	}
	// A different label set is a different series.
	if c3 := r.Counter("tir_test_total", "test counter", Label{"method", "timeline"}); c3 == c {
		t.Fatal("distinct labels shared a handle")
	}

	g := r.Gauge("tir_test_ratio", "test gauge")
	g.Set(0.25)
	g.Add(0.25)
	if got := g.Value(); got != 0.5 {
		t.Fatalf("gauge = %v, want 0.5", got)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Inc()
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "", DefLatencyBuckets()).Observe(0.1)
	r.CounterFunc("d", "", func() float64 { return 1 })
	r.GaugeFunc("e", "", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 111.5 {
		t.Fatalf("sum = %v, want 111.5", h.Sum())
	}
	// Bucket occupancy: le=1 gets {0.5, 1}, le=5 gets {3}, le=10 gets
	// {7}, overflow gets {100}.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Fatalf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tir_conc_total", "")
	h := r.Histogram("tir_conc_seconds", "", DefLatencyBuckets())
	g := r.Gauge("tir_conc_gauge", "")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i%10) * 0.001)
				g.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Fatalf("gauge = %v, want %d", got, workers*per)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("tir_queries_total", "Queries served.", Label{"method", "search"}).Add(3)
	r.Gauge("tir_dead_ratio", "Dead fraction.").Set(0.5)
	r.Histogram("tir_query_seconds", "Latency.", []float64{0.01, 0.1}).Observe(0.05)
	r.GaugeFunc("tir_objects", "Objects.", func() float64 { return 42 })
	r.CounterFunc("tir_compactions_total", "Compactions.", func() float64 { return 2 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE tir_queries_total counter",
		`tir_queries_total{method="search"} 3`,
		"# TYPE tir_dead_ratio gauge",
		"tir_dead_ratio 0.5",
		"# TYPE tir_query_seconds histogram",
		`tir_query_seconds_bucket{le="0.01"} 0`,
		`tir_query_seconds_bucket{le="0.1"} 1`,
		`tir_query_seconds_bucket{le="+Inf"} 1`,
		"tir_query_seconds_sum 0.05",
		"tir_query_seconds_count 1",
		"tir_objects 42",
		"tir_compactions_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q; got:\n%s", want, out)
		}
	}
	// Families must be sorted and every line either a comment or a
	// name{labels} value sample.
	var last string
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, " ") {
			t.Fatalf("malformed sample line %q", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if last != "" && base < last {
			t.Fatalf("families not sorted: %q after %q", base, last)
		}
		last = base
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("tir_x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("tir_x", "")
}
