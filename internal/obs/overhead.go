package obs

import "time"

// workUnit simulates the per-stage useful work of a query: a small
// arithmetic scan, sized so the stage-call overhead is measured
// against a realistic amount of surrounding computation.
func workUnit(data []int64) int64 {
	var sum int64
	for _, v := range data {
		sum += v ^ (sum << 1)
	}
	return sum
}

// DisabledOverhead measures the cost the observability layer adds to a
// query-shaped loop when tracing is DISABLED (nil *Trace): each
// simulated query runs `stages` nil stage spans around workUnit calls.
// It returns ns/op for the bare loop and the instrumented loop, so
// callers can report the relative overhead. rounds controls total work
// (use a few thousand for a stable reading).
func DisabledOverhead(rounds, stages, workSize int) (baselineNS, instrumentedNS float64) {
	data := make([]int64, workSize)
	for i := range data {
		data[i] = int64(i*2654435761 + 1)
	}
	var sink int64

	bare := func() {
		for s := 0; s < stages; s++ {
			sink += workUnit(data)
		}
	}
	var tr *Trace // the disabled recorder
	instrumented := func() {
		for s := 0; s < stages; s++ {
			func() {
				defer tr.StartStage(Stage(s % int(NumStages))).End()
				sink += workUnit(data)
			}()
		}
	}

	measure := func(fn func()) float64 {
		fn() // warm up
		start := time.Now()
		for i := 0; i < rounds; i++ {
			fn()
		}
		return float64(time.Since(start).Nanoseconds()) / float64(rounds)
	}
	// Interleave the two measurements to cancel clock/thermal drift.
	b1 := measure(bare)
	i1 := measure(instrumented)
	b2 := measure(bare)
	i2 := measure(instrumented)
	_ = sink
	return (b1 + b2) / 2, (i1 + i2) / 2
}
