package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentSearchInsertDelete hammers the server with parallel
// ranked searches (the path that lazily builds the engine's scorer),
// plain searches, timelines, inserts and deletes. Under -race this is
// the regression test for the concurrency gate the paper's
// multiple-users throughput setting requires.
func TestConcurrentSearchInsertDelete(t *testing.T) {
	ts := newTestServer(t)

	do := func(req *http.Request) {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 30; i++ {
				switch w % 6 {
				case 0: // ranked search: exercises lazy scorer init
					req, _ := http.NewRequest("GET", ts.URL+"/search?start=0&end=300&q=alpha&k=2", nil)
					do(req)
				case 1: // plain search
					req, _ := http.NewRequest("GET", ts.URL+"/search?start=0&end=300&q=beta", nil)
					do(req)
				case 2: // insert
					body := fmt.Sprintf(`{"start":%d,"end":%d,"terms":["alpha","w%d"]}`, i, i+10, w)
					req, _ := http.NewRequest("POST", ts.URL+"/objects", strings.NewReader(body))
					req.Header.Set("Content-Type", "application/json")
					do(req)
				case 3: // timeline
					req, _ := http.NewRequest("GET", ts.URL+"/timeline?start=0&end=300&q=alpha&buckets=5", nil)
					do(req)
				case 4: // stats (Len + SizeBytes)
					req, _ := http.NewRequest("GET", ts.URL+"/stats", nil)
					do(req)
				case 5: // delete (mostly 404s past the first few ids — fine)
					req, _ := http.NewRequest("DELETE", fmt.Sprintf("%s/objects/%d", ts.URL, i), nil)
					do(req)
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()
}

// TestSlowSearchDoesNotBlockInsert proves the server no longer holds a
// lock across query evaluation: an insert issued while a slow search is
// still in flight must complete before that search finishes. Under the
// old Server.mu the insert's write lock would queue behind the search's
// read lock until the evaluation ended.
func TestSlowSearchDoesNotBlockInsert(t *testing.T) {
	engine := buildBigEngine(t, 60000)
	engine.SetParallelism(1)
	srv := NewWithOptions(engine, Options{QueryTimeout: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	queries := make([]string, 64)
	for i := range queries {
		queries[i] = "alpha"
	}
	body, _ := json.Marshal(map[string]any{"start": 0, "end": 2000, "queries": queries})

	searchDone := make(chan struct{})
	go func() {
		defer close(searchDone)
		resp, err := http.Post(ts.URL+"/search/batch", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	// Wait until the batch actually holds its admission slot.
	for i := 0; srv.gate.InUse() == 0; i++ {
		if i > 10000 {
			t.Fatal("batch search never acquired an in-flight slot")
		}
		time.Sleep(100 * time.Microsecond)
	}

	resp, err := http.Post(ts.URL+"/objects", "application/json",
		strings.NewReader(`{"start":1,"end":2,"terms":["fresh"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("insert during slow search: status %d, want 201", resp.StatusCode)
	}
	select {
	case <-searchDone:
		t.Fatal("batch search finished before the insert returned; overlap not demonstrated")
	default:
		// Insert completed while the search was still evaluating: the
		// write path is not serialized behind reads.
	}
	<-searchDone
}
