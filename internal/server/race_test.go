package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentSearchInsertDelete hammers the server with parallel
// ranked searches (the path that lazily builds the engine's scorer),
// plain searches, timelines, inserts and deletes. Under -race this is
// the regression test for the concurrency gate the paper's
// multiple-users throughput setting requires.
func TestConcurrentSearchInsertDelete(t *testing.T) {
	ts := newTestServer(t)

	do := func(req *http.Request) {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 30; i++ {
				switch w % 6 {
				case 0: // ranked search: exercises lazy scorer init
					req, _ := http.NewRequest("GET", ts.URL+"/search?start=0&end=300&q=alpha&k=2", nil)
					do(req)
				case 1: // plain search
					req, _ := http.NewRequest("GET", ts.URL+"/search?start=0&end=300&q=beta", nil)
					do(req)
				case 2: // insert
					body := fmt.Sprintf(`{"start":%d,"end":%d,"terms":["alpha","w%d"]}`, i, i+10, w)
					req, _ := http.NewRequest("POST", ts.URL+"/objects", strings.NewReader(body))
					req.Header.Set("Content-Type", "application/json")
					do(req)
				case 3: // timeline
					req, _ := http.NewRequest("GET", ts.URL+"/timeline?start=0&end=300&q=alpha&buckets=5", nil)
					do(req)
				case 4: // stats (Len + SizeBytes)
					req, _ := http.NewRequest("GET", ts.URL+"/stats", nil)
					do(req)
				case 5: // delete (mostly 404s past the first few ids — fine)
					req, _ := http.NewRequest("DELETE", fmt.Sprintf("%s/objects/%d", ts.URL, i), nil)
					do(req)
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()
}
