package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	temporalir "repro"
)

func buildEngine(t *testing.T) *temporalir.Engine {
	t.Helper()
	b := temporalir.NewBuilder()
	b.Add(0, 100, "alpha", "beta")
	b.Add(50, 150, "alpha", "gamma")
	b.Add(200, 300, "beta")
	engine, err := b.Build(temporalir.IRHintPerf, temporalir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

// TestBackpressure503 fills the admission semaphore directly (the test
// lives in the package for exactly this determinism) and checks that
// search requests bounce with 503 + Retry-After while writes and stats —
// which take no query slot — still pass.
func TestBackpressure503(t *testing.T) {
	srv := NewWithOptions(buildEngine(t), Options{MaxInFlight: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if !srv.gate.TryAcquire() || !srv.gate.TryAcquire() {
		t.Fatal("could not fill the admission gate")
	}

	resp, err := http.Get(ts.URL + "/search?start=0&end=100&q=alpha")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated search: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 response missing Retry-After")
	}
	resp, err = http.Post(ts.URL+"/search/batch", "application/json",
		strings.NewReader(`{"start":0,"end":100,"queries":["alpha"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated batch: status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats under saturation: status %d, want 200", resp.StatusCode)
	}

	// Draining one slot readmits queries.
	srv.gate.Release()
	resp, err = http.Get(ts.URL + "/search?start=0&end=100&q=alpha")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after drain: status %d, want 200", resp.StatusCode)
	}
}

// TestQueryTimeout504 runs the server with a timeout so small it expires
// during request setup, and checks searches answer 504.
func TestQueryTimeout504(t *testing.T) {
	srv := NewWithOptions(buildEngine(t), Options{QueryTimeout: time.Nanosecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/search?start=0&end=100&q=alpha")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("timed-out search: status %d, want 504", resp.StatusCode)
	}
}

// TestSearchBatchEndpoint checks the happy path: rows line up with the
// request and match the single-query endpoint's results.
func TestSearchBatchEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(buildEngine(t)))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/search/batch", "application/json",
		strings.NewReader(`{"start":0,"end":100,"queries":["alpha","beta","alpha gamma","nosuchterm"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d, want 200", resp.StatusCode)
	}
	var out struct {
		Count   int `json:"count"`
		Results []struct {
			Hits  []temporalir.ObjectID `json:"hits"`
			Error string                `json:"error"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 4 || len(out.Results) != 4 {
		t.Fatalf("count=%d results=%d, want 4", out.Count, len(out.Results))
	}
	wantHits := [][]temporalir.ObjectID{{0, 1}, {0}, {1}, nil}
	for i, row := range out.Results {
		if row.Error != "" {
			t.Fatalf("row %d: unexpected error %q", i, row.Error)
		}
		if len(row.Hits) != len(wantHits[i]) {
			t.Fatalf("row %d: hits %v, want %v", i, row.Hits, wantHits[i])
		}
		for k := range row.Hits {
			if row.Hits[k] != wantHits[i][k] {
				t.Fatalf("row %d: hits %v, want %v", i, row.Hits, wantHits[i])
			}
		}
	}
}

// TestSearchBatchValidation checks the rejection paths.
func TestSearchBatchValidation(t *testing.T) {
	ts := httptest.NewServer(New(buildEngine(t)))
	defer ts.Close()
	cases := []string{
		`not json`,
		`{"start":10,"end":0,"queries":["alpha"]}`,
		`{"start":0,"end":10,"queries":[]}`,
		`{"start":0,"end":10,"queries":["..."]}`,
	}
	for _, body := range cases {
		resp, err := http.Post(ts.URL+"/search/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}
