package server

import (
	"context"
	"io"

	temporalir "repro"
	"repro/internal/exec"
)

// Engine is the query/ingest surface the server requires of a tenant
// engine. Both *temporalir.Engine and *temporalir.Sharded satisfy it,
// so one server binary serves single-store and sharded deployments —
// the seed engine passed to New decides which, and every tenant gets a
// sibling of the seed's kind.
type Engine interface {
	// Save and Epoch drive the registry's spill/reload lifecycle.
	Save(w io.Writer) error
	Epoch() uint64

	Method() temporalir.Method
	IndexOptions() temporalir.Options
	Len() int
	SizeBytes() int64

	Insert(start, end temporalir.Timestamp, terms ...string) temporalir.ObjectID
	Delete(id temporalir.ObjectID) error
	Object(id temporalir.ObjectID) (temporalir.Interval, []string, error)
	RefreshScorer()

	Compact(ctx context.Context) (temporalir.CompactionStats, error)
	CompactStats() temporalir.CompactionStats

	PoolStats() exec.PoolStats
	RoutedMethods() []temporalir.Method
	RouteDecisions() []uint64

	SearchCtx(ctx context.Context, start, end temporalir.Timestamp, terms ...string) ([]temporalir.ObjectID, error)
	SearchTopKCtx(ctx context.Context, start, end temporalir.Timestamp, k int, terms ...string) ([]temporalir.ScoredResult, error)
	TimelineCtx(ctx context.Context, start, end temporalir.Timestamp, buckets int, terms ...string) ([]temporalir.TimelineBucket, error)
	SearchTermsBatchCtx(ctx context.Context, start, end temporalir.Timestamp, termRows [][]string) []temporalir.Result
}

// shardedEngine is the optional coordinator surface. When the tenant
// engine provides it, search handlers route through the *ShardsCtx
// variants so the response can carry the explicit partial-result
// contract (which shards were cut, never a silently truncated 200),
// /stats exposes the shard map, and the tir_shard_* metric family is
// registered.
type shardedEngine interface {
	Engine
	NumShards() int
	ShardStats() []temporalir.ShardStat
	CoordinatorStats() temporalir.CoordinatorStats
	SearchShardsCtx(ctx context.Context, start, end temporalir.Timestamp, terms ...string) ([]temporalir.ObjectID, temporalir.ShardReport, error)
	SearchTopKShardsCtx(ctx context.Context, start, end temporalir.Timestamp, k int, terms ...string) ([]temporalir.ScoredResult, temporalir.ShardReport, error)
	TimelineShardsCtx(ctx context.Context, start, end temporalir.Timestamp, buckets int, terms ...string) ([]temporalir.TimelineBucket, temporalir.ShardReport, error)
}

// Interface conformance is part of the package contract.
var (
	_ Engine        = (*temporalir.Engine)(nil)
	_ shardedEngine = (*temporalir.Sharded)(nil)
)
