package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	temporalir "repro"
)

// postJSON posts a body (may be empty) and decodes the JSON response.
func postJSON(t *testing.T, url, body string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return out
}

func TestAdminCompact(t *testing.T) {
	b := temporalir.NewBuilder()
	for i := 0; i < 20; i++ {
		b.Add(temporalir.Timestamp(i*10), temporalir.Timestamp(i*10+50), "alpha", fmt.Sprintf("term%d", i%4))
	}
	engine, err := b.Build(temporalir.IRHintPerf, temporalir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(engine))
	t.Cleanup(ts.Close)

	// Seed some churn through the HTTP surface.
	for i := 0; i < 4; i++ {
		postJSON(t, ts.URL+"/objects", fmt.Sprintf(`{"start":%d,"end":%d,"terms":["alpha fresh"]}`, i, i+30), http.StatusCreated)
	}
	for id := 0; id < 6; id++ {
		req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/objects/%d", ts.URL, id), nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("DELETE %d: status %d", id, resp.StatusCode)
		}
	}

	// Stats now expose the generational state.
	stats := getJSON(t, ts.URL+"/stats", http.StatusOK)
	comp, ok := stats["compaction"].(map[string]any)
	if !ok {
		t.Fatalf("stats payload missing compaction: %v", stats)
	}
	if comp["tombstones"].(float64) != 6 || comp["memtable_objects"].(float64) != 4 {
		t.Fatalf("pre-compact stats: %v", comp)
	}

	// Compact and verify the state is drained.
	out := postJSON(t, ts.URL+"/admin/compact", "", http.StatusOK)
	comp = out["compaction"].(map[string]any)
	if comp["tombstones"].(float64) != 0 || comp["memtable_objects"].(float64) != 0 {
		t.Fatalf("post-compact stats not drained: %v", comp)
	}
	if comp["compactions"].(float64) != 1 {
		t.Fatalf("compactions = %v, want 1", comp["compactions"])
	}
	if comp["last_dropped"].(float64) != 6 || comp["last_merged"].(float64) != 4 {
		t.Fatalf("last_dropped/last_merged = %v/%v, want 6/4", comp["last_dropped"], comp["last_merged"])
	}

	// Deleted objects stay gone; the engine still serves searches.
	getJSON(t, ts.URL+"/objects/0", http.StatusNotFound)
	res := getJSON(t, ts.URL+"/search?start=0&end=1000&q=alpha", http.StatusOK)
	if res["count"].(float64) != 20-6+4 {
		t.Fatalf("post-compact search count = %v, want 18", res["count"])
	}
}

func TestAdminCompactConflict(t *testing.T) {
	b := temporalir.NewBuilder()
	b.Add(0, 10, "alpha")
	engine, err := b.Build(temporalir.TIF, temporalir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(engine))
	t.Cleanup(ts.Close)

	// A no-op compaction (nothing to merge) still answers 200.
	out := postJSON(t, ts.URL+"/admin/compact", "", http.StatusOK)
	if _, ok := out["compaction"]; !ok {
		t.Fatalf("missing compaction stats: %v", out)
	}
}
