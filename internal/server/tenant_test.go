package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tenant"
)

func tenantGet(t *testing.T, url, id string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if id != "" {
		req.Header.Set(tenant.Header, id)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func tenantPost(t *testing.T, url, id, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id != "" {
		req.Header.Set(tenant.Header, id)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestTenantHeaderIsolation checks the core tenancy contract over HTTP:
// each X-Scope-OrgID resolves to its own engine, writes to one tenant
// are invisible to every other, and headerless requests keep hitting
// the default tenant (the seeded engine) exactly as before tenancy.
func TestTenantHeaderIsolation(t *testing.T) {
	srv := NewWithOptions(buildEngine(t), Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The seeded engine serves headerless requests.
	resp := tenantGet(t, ts.URL+"/search?start=0&end=100&q=alpha", "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"count":2`) {
		t.Fatalf("default search: status %d body %s", resp.StatusCode, body)
	}

	// Tenant "acme" starts empty: no hits against the seed's data.
	resp = tenantGet(t, ts.URL+"/search?start=0&end=100&q=alpha", "acme")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"count":0`) {
		t.Fatalf("fresh tenant search: status %d body %s", resp.StatusCode, body)
	}

	// A write to "acme" is visible to "acme" and to no one else.
	resp = tenantPost(t, ts.URL+"/objects", "acme", `{"start":10,"end":20,"terms":["secret"]}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("tenant insert: status %d", resp.StatusCode)
	}
	resp = tenantGet(t, ts.URL+"/search?start=0&end=100&q=secret", "acme")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"count":1`) {
		t.Fatalf("tenant sees own write: body %s", body)
	}
	for _, other := range []string{"", "globex"} {
		resp = tenantGet(t, ts.URL+"/search?start=0&end=100&q=secret", other)
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), `"count":0`) {
			t.Fatalf("tenant %q sees acme's write: body %s", other, body)
		}
	}

	// Object ids are tenant-scoped too: acme's object 0 is not the
	// default tenant's object 0.
	resp = tenantGet(t, ts.URL+"/objects/0", "acme")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "secret") {
		t.Fatalf("acme object 0: %s", body)
	}
	resp = tenantGet(t, ts.URL+"/objects/0", "")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), "secret") {
		t.Fatalf("default object 0 leaked acme data: %s", body)
	}
}

// TestTenantIDValidation rejects malformed tenant ids before any
// engine work.
func TestTenantIDValidation(t *testing.T) {
	srv := NewWithOptions(buildEngine(t), Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, bad := range []string{"..", "a/b", strings.Repeat("x", 65), "sp ace"} {
		resp := tenantGet(t, ts.URL+"/stats", bad)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("tenant id %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestRequireTenant401 checks strict mode: with RequireTenant set,
// headerless requests are refused instead of falling back to the
// default tenant.
func TestRequireTenant401(t *testing.T) {
	srv := NewWithOptions(buildEngine(t), Options{RequireTenant: true})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := tenantGet(t, ts.URL+"/search?start=0&end=100&q=alpha", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("headerless search in strict mode: status %d, want 401", resp.StatusCode)
	}
	resp = tenantGet(t, ts.URL+"/search?start=0&end=100&q=alpha", "acme")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("identified search in strict mode: status %d, want 200", resp.StatusCode)
	}
}

// TestTenantRateLimit429 is the QoS acceptance test: a tenant that
// exhausts its token bucket gets 429 with a Retry-After hint, its
// sibling keeps answering 200 throughout (no bleed), and the rejection
// shows up in /metrics under tir_tenant_rejected_total with the bounded
// reason label.
func TestTenantRateLimit429(t *testing.T) {
	srv := NewWithOptions(buildEngine(t), Options{
		TenantLimits: func(id string) tenant.Limits {
			if id == "throttled" {
				return tenant.Limits{QueriesPerSec: 0.001, Burst: 2}
			}
			return tenant.Limits{}
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	url := ts.URL + "/search?start=0&end=100&q=alpha"
	for i := 0; i < 2; i++ {
		resp := tenantGet(t, url, "throttled")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("burst query %d: status %d, want 200", i, resp.StatusCode)
		}
	}
	resp := tenantGet(t, url, "throttled")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate query: status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 Retry-After = %q, want a positive hint", ra)
	}
	if !strings.Contains(string(body), "rate") {
		t.Fatalf("429 body does not name the reason: %s", body)
	}

	// The sibling tenant is untouched by its neighbor's rejection.
	for i := 0; i < 5; i++ {
		resp := tenantGet(t, url, "polite")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sibling query %d: status %d, want 200", i, resp.StatusCode)
		}
	}

	// The rejection is attributed in /metrics, by tenant and reason.
	resp = tenantGet(t, ts.URL+"/metrics", "")
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"# TYPE tir_tenant_rejected_total counter",
		`tir_tenant_rejected_total{reason="rate",tenant="throttled"} 1`,
		`tir_tenant_rejected_total{reason="rate",tenant="polite"} 0`,
		`tir_tenant_queries_total{method="search",tenant="polite"} 5`,
		`tir_tenant_queries_total{method="search",tenant="throttled"} 2`,
	} {
		if !strings.Contains(string(page), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTenantInFlightCap429 checks the per-tenant concurrency cap: with
// the tenant's only slot held, its next query answers 429 while the
// node-wide gate still has room for everyone else.
func TestTenantInFlightCap429(t *testing.T) {
	srv := NewWithOptions(buildEngine(t), Options{
		MaxInFlight: 8,
		TenantLimits: func(id string) tenant.Limits {
			if id == "narrow" {
				return tenant.Limits{MaxInFlight: 1}
			}
			return tenant.Limits{}
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Hold the tenant's single slot directly through the registry.
	tn, err := srv.Registry().Get("narrow")
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.Limiter().AcquireQuery(time.Now()); err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/search?start=0&end=100&q=alpha"
	resp := tenantGet(t, url, "narrow")
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("capped tenant: status %d, want 429", resp.StatusCode)
	}
	resp = tenantGet(t, url, "wide")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sibling of capped tenant: status %d, want 200", resp.StatusCode)
	}
	tn.Limiter().ReleaseQuery()
	tn.Release()
	resp = tenantGet(t, url, "narrow")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after slot release: status %d, want 200", resp.StatusCode)
	}
}

// TestTenantIngestQuota429 checks the memtable quota: inserts past the
// tenant's budget answer 429 until compaction folds the memtable in,
// and the sibling's ingest is unaffected.
func TestTenantIngestQuota429(t *testing.T) {
	srv := NewWithOptions(buildEngine(t), Options{
		TenantLimits: func(id string) tenant.Limits {
			if id == "boxed" {
				return tenant.Limits{MaxMemObjects: 2}
			}
			return tenant.Limits{}
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	doc := func(i int) string {
		return fmt.Sprintf(`{"start":%d,"end":%d,"terms":["doc%d"]}`, i, i+1, i)
	}
	for i := 0; i < 2; i++ {
		resp := tenantPost(t, ts.URL+"/objects", "boxed", doc(i))
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("insert %d under quota: status %d", i, resp.StatusCode)
		}
	}
	resp := tenantPost(t, ts.URL+"/objects", "boxed", doc(2))
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("insert over quota: status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "mem_quota") {
		t.Fatalf("429 body does not name mem_quota: %s", body)
	}

	// The sibling can still write.
	resp = tenantPost(t, ts.URL+"/objects", "roomy", doc(0))
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("sibling insert: status %d, want 201", resp.StatusCode)
	}

	// Compaction clears the memtable and re-opens the quota.
	resp = tenantPost(t, ts.URL+"/admin/compact", "boxed", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: status %d", resp.StatusCode)
	}
	resp = tenantPost(t, ts.URL+"/objects", "boxed", doc(2))
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("insert after compaction: status %d, want 201", resp.StatusCode)
	}

	resp = tenantGet(t, ts.URL+"/metrics", "")
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(page), `tir_tenant_rejected_total{reason="mem_quota",tenant="boxed"} 1`) {
		t.Error("/metrics missing the mem_quota rejection attribution")
	}
}

// TestTenantEvictReloadOverHTTP drives the registry's spill/reload
// through the HTTP surface: with room for two resident tenants, a third
// evicts the coldest; querying the evicted tenant again transparently
// reloads it with its data (including external ids) intact.
func TestTenantEvictReloadOverHTTP(t *testing.T) {
	srv := NewWithOptions(buildEngine(t), Options{
		MaxTenants: 2,
		SpillDir:   t.TempDir(),
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := tenantPost(t, ts.URL+"/objects", "cold", `{"start":10,"end":20,"terms":["frozen"]}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("insert: status %d", resp.StatusCode)
	}

	// Touch two more tenants; capacity 2 forces evictions (the clock
	// needs a few rounds to clear second-chance bits).
	for _, id := range []string{"warm", "hot", "warm", "hot"} {
		resp := tenantGet(t, ts.URL+"/search?start=0&end=100&q=x", id)
		resp.Body.Close()
	}
	if srv.Registry().Evictions() == 0 {
		t.Fatal("no evictions at MaxTenants=2 with 4 tenants touched")
	}

	// The evicted tenant reloads transparently, data and ids intact.
	resp = tenantGet(t, ts.URL+"/search?start=0&end=100&q=frozen", "cold")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"count":1`) {
		t.Fatalf("reloaded search: status %d body %s", resp.StatusCode, body)
	}
	resp = tenantGet(t, ts.URL+"/objects/0", "cold")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "frozen") {
		t.Fatalf("reloaded object 0: %s", body)
	}

	resp = tenantGet(t, ts.URL+"/admin/tenants", "")
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"evictions":`) || !strings.Contains(string(body), `"spills":`) {
		t.Fatalf("/admin/tenants missing lifecycle counters: %s", body)
	}
}

// TestTenantSeriesLimitOverflow keeps metric cardinality bounded: past
// the series budget, new tenants are attributed to the "_other"
// aggregate instead of minting fresh label values.
func TestTenantSeriesLimitOverflow(t *testing.T) {
	srv := NewWithOptions(buildEngine(t), Options{TenantSeriesLimit: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// default (pre-warmed) takes slot 1, "first" slot 2, "second"
	// overflows.
	for _, id := range []string{"first", "second"} {
		resp := tenantGet(t, ts.URL+"/search?start=0&end=100&q=alpha", id)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tenant %s: status %d", id, resp.StatusCode)
		}
	}
	resp := tenantGet(t, ts.URL+"/metrics", "")
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(page)
	if !strings.Contains(text, `tir_tenant_queries_total{method="search",tenant="first"} 1`) {
		t.Error("in-budget tenant lost its dedicated series")
	}
	if strings.Contains(text, `tenant="second"`) {
		t.Error("over-budget tenant minted a dedicated series")
	}
	if !strings.Contains(text, `tir_tenant_queries_total{method="search",tenant="_other"} 1`) {
		t.Error("over-budget tenant not attributed to _other")
	}
}

// TestTenantSlowLogAttribution checks that slow-log entries carry the
// tenant id, so a slow query is attributable in a shared deployment.
func TestTenantSlowLogAttribution(t *testing.T) {
	observer := obs.NewObserver(obs.Config{SlowThreshold: -1}) // capture every trace
	srv := NewWithOptions(buildEngine(t), Options{Obs: observer})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := tenantGet(t, ts.URL+"/search?start=0&end=100&q=alpha", "acme")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: status %d", resp.StatusCode)
	}
	resp = tenantGet(t, ts.URL+"/debug/slow", "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"tenant":"acme"`) {
		t.Fatalf("/debug/slow entry missing tenant attribution: %s", body)
	}
}
