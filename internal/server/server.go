// Package server exposes a temporalir Engine over HTTP/JSON — the
// "search interface to multiple users simultaneously" deployment the
// paper's throughput metric models (public archives, footnote 11).
// Reads run concurrently against immutable generation snapshots and
// never wait on writers; POST /admin/compact (or the engine's
// auto-compaction policy) folds accumulated inserts and deletes into a
// freshly rebuilt index off the read path.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	temporalir "repro"
	"repro/internal/textutil"
)

// Options tunes the server's admission control.
type Options struct {
	// QueryTimeout bounds each search request's evaluation; expired
	// requests answer 504. Zero selects DefaultQueryTimeout; negative
	// disables the timeout.
	QueryTimeout time.Duration
	// MaxInFlight caps concurrently evaluating search requests. Excess
	// requests are rejected immediately with 503 and a Retry-After hint —
	// backpressure instead of a lock convoy. Zero selects
	// 4 x GOMAXPROCS; negative disables the cap.
	MaxInFlight int
}

// DefaultQueryTimeout bounds search evaluation when Options.QueryTimeout
// is zero.
const DefaultQueryTimeout = 5 * time.Second

// Server is an http.Handler serving one engine.
type Server struct {
	mu sync.RWMutex
	// irlint:guarded-by mu
	engine *temporalir.Engine
	mux    *http.ServeMux
	// queryTimeout and inflight are immutable after construction.
	queryTimeout time.Duration
	// inflight is the admission semaphore: a slot is held for the whole
	// evaluation of a search request. nil means uncapped.
	inflight chan struct{}
}

// New wraps an engine with default admission control. The engine must
// not be mutated elsewhere while the server is live.
func New(engine *temporalir.Engine) *Server {
	return NewWithOptions(engine, Options{})
}

// NewWithOptions wraps an engine with explicit timeout and backpressure
// settings.
func NewWithOptions(engine *temporalir.Engine, opts Options) *Server {
	if opts.QueryTimeout == 0 {
		opts.QueryTimeout = DefaultQueryTimeout
	}
	if opts.MaxInFlight == 0 {
		opts.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	s := &Server{engine: engine, mux: http.NewServeMux(), queryTimeout: opts.QueryTimeout}
	if opts.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, opts.MaxInFlight)
	}
	s.mux.HandleFunc("GET /search", s.handleSearch)
	s.mux.HandleFunc("POST /search/batch", s.handleSearchBatch)
	s.mux.HandleFunc("POST /objects", s.handleInsert)
	s.mux.HandleFunc("GET /objects/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /objects/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /timeline", s.handleTimeline)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /admin/compact", s.handleCompact)
	return s
}

// acquire claims an in-flight slot, reporting false when the server is
// saturated. release must be called iff acquire returned true.
func (s *Server) acquire() bool {
	if s.inflight == nil {
		return true
	}
	select {
	case s.inflight <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Server) release() {
	if s.inflight != nil {
		<-s.inflight
	}
}

// overloaded answers a request rejected by admission control.
func overloaded(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "server overloaded; retry shortly")
}

// queryCtx derives the per-request evaluation context.
func (s *Server) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.queryTimeout < 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.queryTimeout)
}

// searchFailure maps an evaluation error to a response.
func searchFailure(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, "query timed out")
		return
	}
	writeError(w, http.StatusInternalServerError, "query aborted: %v", err)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// objectJSON is the wire form of an object.
type objectJSON struct {
	ID    temporalir.ObjectID  `json:"id"`
	Start temporalir.Timestamp `json:"start"`
	End   temporalir.Timestamp `json:"end"`
	Terms []string             `json:"terms"`
}

// searchHit is one ranked or unranked result row.
type searchHit struct {
	ID    temporalir.ObjectID `json:"id"`
	Score *float64            `json:"score,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSearch answers GET /search?start=S&end=E&q=TERMS[&k=K].
// q is free text, tokenized and normalized like inserted documents.
// Without k the full containment result is returned; with k the top-k
// ranked results with scores.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	start, err := parseTS(r.URL.Query().Get("start"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad start: %v", err)
		return
	}
	end, err := parseTS(r.URL.Query().Get("end"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad end: %v", err)
		return
	}
	terms := textutil.Tokenize(r.URL.Query().Get("q"), textutil.Options{})
	if len(terms) == 0 {
		writeError(w, http.StatusBadRequest, "q must contain at least one indexable term")
		return
	}
	var k int
	if kRaw := r.URL.Query().Get("k"); kRaw != "" {
		k, err = strconv.Atoi(kRaw)
		if err != nil || k < 1 {
			writeError(w, http.StatusBadRequest, "bad k: %q", kRaw)
			return
		}
	}

	if !s.acquire() {
		overloaded(w)
		return
	}
	defer s.release()
	ctx, cancel := s.queryCtx(r)
	defer cancel()

	s.mu.RLock()
	defer s.mu.RUnlock()
	var hits []searchHit
	if k > 0 {
		if err := ctx.Err(); err != nil {
			searchFailure(w, err)
			return
		}
		for _, res := range s.engine.SearchTopK(start, end, k, terms...) {
			score := res.Score
			hits = append(hits, searchHit{ID: res.ID, Score: &score})
		}
	} else {
		ids, err := s.engine.SearchCtx(ctx, start, end, terms...)
		if err != nil {
			searchFailure(w, err)
			return
		}
		for _, id := range ids {
			hits = append(hits, searchHit{ID: id})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(hits), "hits": hits})
}

// batchRequest is the wire form of POST /search/batch: one interval of
// interest and many free-text term rows, evaluated concurrently over the
// engine's worker pool.
type batchRequest struct {
	Start   temporalir.Timestamp `json:"start"`
	End     temporalir.Timestamp `json:"end"`
	Queries []string             `json:"queries"`
}

// batchRow is one row of the batch response; rows line up with the
// request's queries.
type batchRow struct {
	Hits  []temporalir.ObjectID `json:"hits"`
	Error string                `json:"error,omitempty"`
}

// handleSearchBatch answers POST /search/batch. The whole batch holds
// one in-flight slot and one evaluation deadline; rows cut off by the
// deadline report a per-row error while completed rows still return.
func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if req.Start > req.End {
		writeError(w, http.StatusBadRequest, "start %d > end %d", req.Start, req.End)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "queries must not be empty")
		return
	}
	termRows := make([][]string, len(req.Queries))
	for i, q := range req.Queries {
		termRows[i] = textutil.Tokenize(q, textutil.Options{})
		if len(termRows[i]) == 0 {
			writeError(w, http.StatusBadRequest, "query %d has no indexable terms", i)
			return
		}
	}
	if !s.acquire() {
		overloaded(w)
		return
	}
	defer s.release()
	ctx, cancel := s.queryCtx(r)
	defer cancel()

	s.mu.RLock()
	results := s.engine.SearchTermsBatchCtx(ctx, req.Start, req.End, termRows)
	s.mu.RUnlock()
	rows := make([]batchRow, len(results))
	for i, res := range results {
		if res.Err != nil {
			rows[i] = batchRow{Error: res.Err.Error()}
			continue
		}
		rows[i] = batchRow{Hits: res.IDs}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(rows), "results": rows})
}

// handleInsert answers POST /objects with an objectJSON body (id ignored).
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var in objectJSON
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		writeError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if in.Start > in.End {
		writeError(w, http.StatusBadRequest, "start %d > end %d", in.Start, in.End)
		return
	}
	var terms []string
	for _, t := range in.Terms {
		terms = append(terms, textutil.Tokenize(t, textutil.Options{})...)
	}
	if len(terms) == 0 {
		writeError(w, http.StatusBadRequest, "no indexable terms")
		return
	}
	s.mu.Lock()
	id := s.engine.Insert(in.Start, in.End, terms...)
	s.engine.RefreshScorer()
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{"id": id})
}

// handleGet answers GET /objects/{id}.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id, err := parseID(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	iv, terms, err := s.engine.Object(id)
	s.mu.RUnlock()
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, objectJSON{ID: id, Start: iv.Start, End: iv.End, Terms: terms})
}

// handleDelete answers DELETE /objects/{id}.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id, err := parseID(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	err = s.engine.Delete(id)
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

// handleTimeline answers GET /timeline?start=S&end=E&q=TERMS&buckets=N:
// a temporal histogram of the matching objects.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	start, err := parseTS(r.URL.Query().Get("start"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad start: %v", err)
		return
	}
	end, err := parseTS(r.URL.Query().Get("end"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad end: %v", err)
		return
	}
	terms := textutil.Tokenize(r.URL.Query().Get("q"), textutil.Options{})
	if len(terms) == 0 {
		writeError(w, http.StatusBadRequest, "q must contain at least one indexable term")
		return
	}
	buckets := 10
	if raw := r.URL.Query().Get("buckets"); raw != "" {
		buckets, err = strconv.Atoi(raw)
		if err != nil || buckets < 1 || buckets > 10000 {
			writeError(w, http.StatusBadRequest, "bad buckets: %q", raw)
			return
		}
	}
	s.mu.RLock()
	tl := s.engine.Timeline(start, end, buckets, terms...)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"buckets": tl})
}

// handleStats answers GET /stats, including the generational compaction
// state (epoch, memtable, tombstones, compaction history).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"method":     string(s.engine.Method()),
		"objects":    s.engine.Len(),
		"size_bytes": s.engine.SizeBytes(),
		"compaction": s.engine.CompactStats(),
	})
}

// handleCompact answers POST /admin/compact: it runs a synchronous
// compaction and returns the resulting stats. A compaction already in
// flight answers 409 with the current stats; the request context bounds
// the rebuild (a canceled request leaves the old generation intact).
// Searches keep running against the previous generation throughout, so
// the endpoint never degrades read availability.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	eng := s.engine
	s.mu.RUnlock()
	st, err := eng.Compact(r.Context())
	switch {
	case errors.Is(err, temporalir.ErrCompactionRunning):
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":      "compaction already in progress",
			"compaction": st,
		})
	case err != nil:
		writeError(w, http.StatusInternalServerError, "compaction failed: %v", err)
	default:
		writeJSON(w, http.StatusOK, map[string]any{"compaction": st})
	}
}

func parseTS(raw string) (temporalir.Timestamp, error) {
	if raw == "" {
		return 0, fmt.Errorf("missing")
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("not an integer timestamp: %q", raw)
	}
	return v, nil
}

func parseID(raw string) (temporalir.ObjectID, error) {
	raw = strings.TrimSpace(raw)
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad object id %q", raw)
	}
	return temporalir.ObjectID(v), nil
}
