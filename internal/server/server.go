// Package server exposes temporalir engines over HTTP/JSON — the
// "search interface to multiple users simultaneously" deployment the
// paper's throughput metric models (public archives, footnote 11).
// Reads run concurrently against immutable generation snapshots and
// never wait on writers; POST /admin/compact (or the engine's
// auto-compaction policy) folds accumulated inserts and deletes into a
// freshly rebuilt index off the read path.
//
// The server is multi-tenant: every request resolves a tenant (the
// X-Scope-OrgID header, or a configurable default for single-tenant
// deployments) to its own engine in a tenant.Registry — created
// lazily, evicted to a spill file when cold, reloaded transparently.
// Admission is layered per request:
//
//  1. the tenant's own limits (token-bucket rate, in-flight cap) — a
//     429 with Retry-After, counted in tir_tenant_rejected_total;
//  2. the global in-flight gate — a 503, the node itself is saturated;
//  3. weighted fair share — a 429: the node has room but this tenant
//     is over its fraction of it, so siblings keep their latency.
//
// The server is also the integration point of the observability layer
// (internal/obs): per-method counters and latency histograms globally
// and per tenant (under a bounded label budget — see the series limit),
// traces carried through the engine's stages with tenant attribution in
// the slow-query log, and GET /metrics in the Prometheus text format.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	temporalir "repro"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/tenant"
	"repro/internal/textutil"
)

// Options tunes the server's admission control, tenancy and
// observability.
type Options struct {
	// QueryTimeout bounds each search request's evaluation; expired
	// requests answer 504. Zero selects DefaultQueryTimeout; negative
	// disables the timeout.
	QueryTimeout time.Duration
	// MaxInFlight caps concurrently evaluating search requests across
	// all tenants. Excess requests are rejected immediately with 503
	// and a Retry-After hint — backpressure instead of a lock convoy.
	// Zero selects 4 x GOMAXPROCS; negative disables the cap (which
	// also disables fair-share admission).
	MaxInFlight int
	// Obs supplies the metrics registry, tracer and slow-query log. nil
	// makes the server construct its own default Observer.
	Obs *obs.Observer

	// DefaultTenant is the tenant served to requests without an
	// identity header. Empty selects tenant.DefaultID, so existing
	// single-tenant clients keep working unchanged.
	DefaultTenant string
	// RequireTenant, when set, refuses requests without an identity
	// header with 401 instead of falling back to the default tenant.
	RequireTenant bool
	// MaxTenants caps resident tenants; at the cap a cold tenant is
	// evicted (SpillDir set) or new tenants are rejected with 429.
	// Zero means unlimited.
	MaxTenants int
	// SpillDir is where evicted tenants are saved and reloaded from.
	// Empty disables eviction.
	SpillDir string
	// TenantLimits resolves a tenant's limits at creation time; nil
	// means every tenant is unlimited with weight 1.
	TenantLimits func(id string) tenant.Limits
	// TenantSeriesLimit bounds how many distinct tenants get dedicated
	// per-tenant metric series; tenants beyond it are attributed to the
	// aggregate "_other" series so scrape cardinality stays bounded no
	// matter how many tenants appear. Zero selects
	// DefaultTenantSeriesLimit.
	TenantSeriesLimit int
	// FairWindow is the fair-share activity window; zero selects
	// tenant.DefaultWindow.
	FairWindow time.Duration
}

// DefaultQueryTimeout bounds search evaluation when Options.QueryTimeout
// is zero.
const DefaultQueryTimeout = 5 * time.Second

// DefaultTenantSeriesLimit is the default budget of tenants with
// dedicated metric series.
const DefaultTenantSeriesLimit = 64

// otherTenant is the overflow label value for tenants past the series
// budget, and for rejections of tenants that were never admitted.
const otherTenant = "_other"

// queryMetrics is the per-method handle pair the handlers record into.
type queryMetrics struct {
	count   *obs.Counter
	seconds *obs.Histogram
}

// tenantMetrics is one tenant's pre-resolved metric handles. It is
// attached as the registry tag under the registry lock at tenant
// creation and read-only afterwards; re-creating a tenant after an
// eviction resolves the same series again, so counts survive the
// engine's lifecycle.
type tenantMetrics struct {
	search   queryMetrics
	topk     queryMetrics
	batch    queryMetrics
	timeline queryMetrics
	// rejected is keyed by the fixed tenant.Reasons set — bounded
	// cardinality by construction.
	rejected map[string]*obs.Counter
}

func (tm *tenantMetrics) reject(reason string) {
	if c := tm.rejected[reason]; c != nil {
		c.Inc()
	}
}

// Server is an http.Handler serving a registry of tenant engines.
//
// It holds no lock around query evaluation: engine reads resolve one
// immutable generation snapshot and run entirely against it, and
// engine writes serialize internally on the store's writer mutex.
type Server struct {
	reg *tenant.Registry[Engine]
	mux *http.ServeMux
	obs *obs.Observer
	// queryTimeout, gate, fair and tenancy settings are immutable after
	// construction.
	queryTimeout time.Duration
	// gate is the global admission bound; a slot is held for the whole
	// evaluation of a search request. nil means uncapped.
	gate *exec.Gate
	// fair apportions the gate's capacity across active tenants by
	// weight. nil iff gate is nil.
	fair          *tenant.FairShare
	defaultTenant string
	requireTenant bool
	// spillEnabled records whether evictions can free registry slots,
	// which is what makes a short registry-full retry hint honest.
	spillEnabled bool

	// seed is the engine the server was constructed around; it defines
	// the method/options — and, for a sharded seed, the shard layout —
	// every tenant engine is built with, and serves the default tenant.
	seed Engine
	// seedUsed makes the seed single-use in the registry New closure.
	seedUsed sync.Once

	// smu guards the per-tenant series budget.
	smu sync.Mutex
	// series maps tenant ids that own dedicated metric series.
	// irlint:guarded-by smu
	series map[string]*tenantMetrics
	// seriesLimit is the budget; otherMetrics absorbs the overflow.
	seriesLimit  int
	otherMetrics *tenantMetrics

	metSearch   queryMetrics
	metTopK     queryMetrics
	metBatch    queryMetrics
	metTimeline queryMetrics
	admAccepted *obs.Counter
	admRejected *obs.Counter
	admTimeout  *obs.Counter
	batchSize   *obs.Histogram
	inflightG   *obs.Gauge
}

// New wraps an engine with default admission control and tenancy. The
// engine serves the default tenant and must not be mutated elsewhere
// while the server is live.
func New(engine Engine) *Server {
	return NewWithOptions(engine, Options{})
}

// NewWithOptions wraps an engine with explicit timeout, backpressure,
// tenancy and observability settings. The engine becomes the default
// tenant's engine; additional tenants get fresh engines with the same
// method and index options.
func NewWithOptions(engine Engine, opts Options) *Server {
	if opts.QueryTimeout == 0 {
		opts.QueryTimeout = DefaultQueryTimeout
	}
	if opts.MaxInFlight == 0 {
		opts.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if opts.Obs == nil {
		opts.Obs = obs.NewObserver(obs.Config{})
	}
	if opts.DefaultTenant == "" {
		opts.DefaultTenant = tenant.DefaultID
	}
	if opts.TenantSeriesLimit == 0 {
		opts.TenantSeriesLimit = DefaultTenantSeriesLimit
	}
	s := &Server{
		mux:           http.NewServeMux(),
		obs:           opts.Obs,
		queryTimeout:  opts.QueryTimeout,
		defaultTenant: opts.DefaultTenant,
		requireTenant: opts.RequireTenant,
		spillEnabled:  opts.SpillDir != "",
		seed:          engine,
		series:        make(map[string]*tenantMetrics),
		seriesLimit:   opts.TenantSeriesLimit,
	}
	if opts.MaxInFlight > 0 {
		s.gate = exec.NewGate(opts.MaxInFlight)
		s.fair = tenant.NewFairShare(opts.MaxInFlight, opts.FairWindow)
	}
	// Sibling construction follows the seed's kind: a sharded seed makes
	// every tenant (and every spill reload) a sharded engine with the
	// seed's resolved shard layout; a plain seed keeps the existing
	// single-store path byte-for-byte. The snapshot format is shared, so
	// spills written by one kind load under the other if the deployment
	// is ever reconfigured.
	method, idxOpts := engine.Method(), engine.IndexOptions()
	newSibling := func() (Engine, error) { return temporalir.NewBuilder().Build(method, idxOpts) }
	loadSibling := func(r io.Reader) (Engine, error) { return temporalir.LoadEngine(r, method, idxOpts) }
	if sh, ok := engine.(*temporalir.Sharded); ok {
		so := sh.ShardOptions()
		newSibling = func() (Engine, error) { return temporalir.NewSharded(method, idxOpts, so) }
		loadSibling = func(r io.Reader) (Engine, error) { return temporalir.LoadSharded(r, method, idxOpts, so) }
	}
	s.reg = tenant.NewRegistry(tenant.Config[Engine]{
		New: func(id string) (Engine, error) {
			// The seed engine serves the default tenant's first build;
			// everyone else (and any rebuild) gets a fresh engine.
			var seeded Engine
			if id == s.defaultTenant {
				s.seedUsed.Do(func() { seeded = s.seed })
			}
			if seeded != nil {
				return seeded, nil
			}
			return newSibling()
		},
		Load: func(id string, r io.Reader) (Engine, error) {
			return loadSibling(r)
		},
		MaxActive: opts.MaxTenants,
		SpillDir:  opts.SpillDir,
		Limits:    opts.TenantLimits,
		OnCreate:  s.onTenantCreate,
	})
	s.registerMetrics()
	s.mux.HandleFunc("GET /search", s.handleSearch)
	s.mux.HandleFunc("POST /search/batch", s.handleSearchBatch)
	s.mux.HandleFunc("POST /objects", s.handleInsert)
	s.mux.HandleFunc("GET /objects/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /objects/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /timeline", s.handleTimeline)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/slow", s.handleSlow)
	s.mux.HandleFunc("POST /admin/compact", s.handleCompact)
	s.mux.HandleFunc("GET /admin/tenants", s.handleTenants)

	// Materialize the default tenant eagerly so the seeded engine is
	// resident from the first request (and from the first scrape).
	if tn, err := s.reg.Get(s.defaultTenant); err == nil {
		tn.Release()
	}
	return s
}

// Obs returns the server's observer, for callers (irserve, tests) that
// want to toggle tracing or read the registry directly.
func (s *Server) Obs() *obs.Observer { return s.obs }

// Registry returns the tenant registry, for callers (irserve's
// graceful drain, tests) that manage tenant lifecycles directly.
func (s *Server) Registry() *tenant.Registry[Engine] { return s.reg }

// onTenantCreate attaches the tenant's metric handles, within the
// series budget: the first TenantSeriesLimit distinct tenant ids get
// dedicated series (plus scrape-time engine gauges); later tenants
// share the "_other" aggregate. A tenant that is evicted and comes
// back keeps its budget slot and therefore its counters.
func (s *Server) onTenantCreate(tn *tenant.Tenant[Engine]) {
	id := tn.ID()
	s.smu.Lock()
	tm := s.series[id]
	if tm == nil && len(s.series) < s.seriesLimit {
		tm = s.newTenantMetrics(id, true)
		s.series[id] = tm
	}
	s.smu.Unlock()
	if tm == nil {
		tm = s.otherMetrics
	}
	tn.SetTag(tm)
}

// newTenantMetrics resolves one tenant's series handles. withGauges
// additionally registers the scrape-time engine-state gauges, which
// read through Registry.Peek so an evicted tenant scrapes as absent
// rather than through a stale engine pointer.
func (s *Server) newTenantMetrics(id string, withGauges bool) *tenantMetrics {
	reg := s.obs.Registry()
	tl := obs.Label{Key: "tenant", Value: id}
	method := func(m string) queryMetrics {
		return queryMetrics{
			count:   reg.Counter("tir_tenant_queries_total", "Queries served, by tenant and method.", tl, obs.Label{Key: "method", Value: m}),
			seconds: reg.Histogram("tir_tenant_query_seconds", "Query latency in seconds, by tenant and method.", obs.DefLatencyBuckets(), tl, obs.Label{Key: "method", Value: m}),
		}
	}
	tm := &tenantMetrics{
		search:   method("search"),
		topk:     method("search_topk"),
		batch:    method("search_batch"),
		timeline: method("timeline"),
		rejected: make(map[string]*obs.Counter, len(tenant.Reasons)),
	}
	for _, reason := range tenant.Reasons {
		tm.rejected[reason] = reg.Counter("tir_tenant_rejected_total", "Requests rejected by tenant limits, by tenant and reason.", tl, obs.Label{Key: "reason", Value: reason})
	}
	if withGauges {
		peek := func(read func(e Engine) float64) func() float64 {
			return func() float64 {
				tn, ok := s.reg.Peek(id)
				if !ok {
					return 0
				}
				return read(tn.Engine())
			}
		}
		reg.GaugeFunc("tir_tenant_objects", "Live objects, by tenant (0 while evicted).", peek(func(e Engine) float64 {
			return float64(e.Len())
		}), tl)
		reg.GaugeFunc("tir_tenant_size_bytes", "Estimated resident index size, by tenant.", peek(func(e Engine) float64 {
			return float64(e.SizeBytes())
		}), tl)
		reg.GaugeFunc("tir_tenant_memtable_objects", "Memtable objects, by tenant.", peek(func(e Engine) float64 {
			return float64(e.CompactStats().MemObjects)
		}), tl)
		reg.GaugeFunc("tir_tenant_tombstones", "Pending logical deletions, by tenant.", peek(func(e Engine) float64 {
			return float64(e.CompactStats().Tombstones)
		}), tl)
		reg.GaugeFunc("tir_tenant_inflight", "Queries currently admitted, by tenant.", func() float64 {
			tn, ok := s.reg.Peek(id)
			if !ok {
				return 0
			}
			return float64(tn.Limiter().InFlight())
		}, tl)
	}
	return tm
}

// registerMetrics resolves every hot-path metric handle once, and wires
// the scrape-time engine gauges. Handles are plain pointers; recording
// into them takes no lock. Aggregate engine gauges keep their
// single-tenant names and sum over resident tenants, so existing
// dashboards keep working.
func (s *Server) registerMetrics() {
	reg := s.obs.Registry()
	method := func(m string) queryMetrics {
		return queryMetrics{
			count:   reg.Counter("tir_queries_total", "Queries served, by method.", obs.Label{Key: "method", Value: m}),
			seconds: reg.Histogram("tir_query_seconds", "Query latency in seconds, by method.", obs.DefLatencyBuckets(), obs.Label{Key: "method", Value: m}),
		}
	}
	s.metSearch = method("search")
	s.metTopK = method("search_topk")
	s.metBatch = method("search_batch")
	s.metTimeline = method("timeline")

	adm := func(res string) *obs.Counter {
		return reg.Counter("tir_admission_total", "Admission-control outcomes.", obs.Label{Key: "result", Value: res})
	}
	s.admAccepted = adm("accepted")
	s.admRejected = adm("rejected")
	s.admTimeout = adm("timeout")
	s.batchSize = reg.Histogram("tir_batch_queries", "Queries per batch request.", obs.DefSizeBuckets())
	s.inflightG = reg.Gauge("tir_inflight_queries", "Search requests currently holding an admission slot.")

	// The overflow tenant's series exist from startup so the rejection
	// counter family is present on the first scrape.
	s.otherMetrics = s.newTenantMetrics(otherTenant, false)

	reg.CounterFunc("tir_slow_queries_total", "Traces admitted to the slow-query log.", func() float64 {
		return float64(s.obs.Slow().Total())
	})

	// Engine-state metrics are sampled at scrape time: the underlying
	// stats are either atomic snapshots or taken under the store's own
	// short-lived locks, so scraping never touches the query path.
	sum := func(read func(e Engine) float64) func() float64 {
		return func() float64 {
			var total float64
			s.reg.Each(func(tn *tenant.Tenant[Engine]) {
				total += read(tn.Engine())
			})
			return total
		}
	}
	reg.GaugeFunc("tir_engine_objects", "Live (non-tombstoned) objects across tenants.", sum(func(e Engine) float64 {
		return float64(e.Len())
	}))
	reg.GaugeFunc("tir_engine_size_bytes", "Estimated resident index size across tenants.", sum(func(e Engine) float64 {
		return float64(e.SizeBytes())
	}))
	reg.GaugeFunc("tir_memtable_objects", "Objects in memtable tails across tenants.", sum(func(e Engine) float64 {
		return float64(e.CompactStats().MemObjects)
	}))
	reg.GaugeFunc("tir_memtable_bytes", "Estimated memtable size across tenants.", sum(func(e Engine) float64 {
		return float64(e.CompactStats().MemBytes)
	}))
	reg.GaugeFunc("tir_tombstones", "Pending logical deletions across tenants.", sum(func(e Engine) float64 {
		return float64(e.CompactStats().Tombstones)
	}))
	reg.CounterFunc("tir_compactions_total", "Completed compactions across tenants.", sum(func(e Engine) float64 {
		return float64(e.CompactStats().Compactions)
	}))
	reg.CounterFunc("tir_compaction_seconds_total", "Wall time spent compacting.", sum(func(e Engine) float64 {
		return e.CompactStats().TotalDuration.Seconds()
	}))
	reg.CounterFunc("tir_compaction_dropped_total", "Tombstoned objects physically dropped by compaction.", sum(func(e Engine) float64 {
		return float64(e.CompactStats().TotalDropped)
	}))
	reg.CounterFunc("tir_compaction_merged_total", "Memtable objects folded into the base by compaction.", sum(func(e Engine) float64 {
		return float64(e.CompactStats().TotalMerged)
	}))
	reg.CounterFunc("tir_compaction_reclaimed_bytes_total", "Estimated bytes reclaimed by compaction.", sum(func(e Engine) float64 {
		return float64(e.CompactStats().ReclaimedBytes)
	}))

	// The worker pool is shared process-wide (engines fan out over the
	// same default pool), so its counters come from the seed engine
	// rather than a sum that would multiply-count the shared pool.
	reg.CounterFunc("tir_exec_maps_total", "Worker-pool fan-out invocations.", func() float64 {
		return float64(s.seed.PoolStats().Maps)
	})
	reg.CounterFunc("tir_exec_items_total", "Work items fanned across the pool.", func() float64 {
		return float64(s.seed.PoolStats().Items)
	})
	reg.CounterFunc("tir_exec_helpers_total", "Helper goroutines borrowed by fan-outs.", func() float64 {
		return float64(s.seed.PoolStats().Helpers)
	})

	// Sharded deployments expose the coordinator and per-shard state.
	// The label space is the seed's shard count — fixed at construction,
	// so scrape cardinality is bounded; per-shard gauges sum across
	// tenants (every tenant shares the seed's layout).
	if seedSh, ok := s.seed.(shardedEngine); ok {
		sumSh := func(read func(se shardedEngine) float64) func() float64 {
			return func() float64 {
				var total float64
				s.reg.Each(func(tn *tenant.Tenant[Engine]) {
					if se, ok := tn.Engine().(shardedEngine); ok {
						total += read(se)
					}
				})
				return total
			}
		}
		reg.CounterFunc("tir_shard_queries_total", "Queries planned by the shard coordinator.", sumSh(func(se shardedEngine) float64 {
			return float64(se.CoordinatorStats().Queries)
		}))
		reg.CounterFunc("tir_shard_cut_total", "Shard evaluations cut by the per-shard deadline.", sumSh(func(se shardedEngine) float64 {
			return float64(se.CoordinatorStats().ShardsCut)
		}))
		reg.CounterFunc("tir_shard_pruned_total", "Shard evaluations skipped by extent pruning.", sumSh(func(se shardedEngine) float64 {
			return float64(se.CoordinatorStats().ShardsPruned)
		}))
		for i := 0; i < seedSh.NumShards(); i++ {
			i := i
			shardOf := func(read func(st temporalir.ShardStat) float64) func() float64 {
				return sumSh(func(se shardedEngine) float64 {
					if st := se.ShardStats(); i < len(st) {
						return read(st[i])
					}
					return 0
				})
			}
			lbl := obs.Label{Key: "shard", Value: strconv.Itoa(i)}
			reg.GaugeFunc("tir_shard_objects", "Live objects, by shard.", shardOf(func(st temporalir.ShardStat) float64 {
				return float64(st.Objects)
			}), lbl)
			reg.GaugeFunc("tir_shard_size_bytes", "Estimated resident size, by shard.", shardOf(func(st temporalir.ShardStat) float64 {
				return float64(st.SizeBytes)
			}), lbl)
			reg.GaugeFunc("tir_shard_tombstones", "Pending logical deletions, by shard.", shardOf(func(st temporalir.ShardStat) float64 {
				return float64(st.Tombstones)
			}), lbl)
			reg.CounterFunc("tir_shard_compactions_total", "Completed compactions, by shard.", shardOf(func(st temporalir.ShardStat) float64 {
				return float64(st.Compactions)
			}), lbl)
		}
	}

	// Tenancy lifecycle metrics.
	reg.GaugeFunc("tir_tenants", "Resident tenants.", func() float64 {
		return float64(s.reg.Len())
	})
	reg.CounterFunc("tir_tenant_evictions_total", "Tenants evicted from the registry.", func() float64 {
		return float64(s.reg.Evictions())
	})
	reg.CounterFunc("tir_tenant_spills_total", "Tenant spill snapshots written.", func() float64 {
		return float64(s.reg.Spills())
	})

	// Routed engines expose the adaptive router's decision tally, one
	// series per sub-method, summed across tenants (all tenants run the
	// same method). Non-routed engines register nothing.
	for i, m := range s.seed.RoutedMethods() {
		i := i
		reg.CounterFunc("tir_route_decisions_total", "Adaptive-router decisions, by chosen sub-method.", sum(func(e Engine) float64 {
			return float64(e.RouteDecisions()[i])
		}), obs.Label{Key: "method", Value: string(m)})
	}
}

// metricsOf returns the tenant's attached series handles.
func (s *Server) metricsOf(tn *tenant.Tenant[Engine]) *tenantMetrics {
	if tm, ok := tn.Tag().(*tenantMetrics); ok && tm != nil {
		return tm
	}
	return s.otherMetrics
}

// rejectedMetricsFor attributes a rejection for a tenant that may not
// be resident (e.g. the registry refused to admit it).
func (s *Server) rejectedMetricsFor(id string) *tenantMetrics {
	s.smu.Lock()
	tm := s.series[id]
	s.smu.Unlock()
	if tm == nil {
		return s.otherMetrics
	}
	return tm
}

// tenantID extracts the request's tenant identity: the X-Scope-OrgID
// header, or the configured default.
func (s *Server) tenantID(r *http.Request) (string, error) {
	id := r.Header.Get(tenant.Header)
	if id == "" {
		if s.requireTenant {
			return "", fmt.Errorf("missing %s header", tenant.Header)
		}
		return s.defaultTenant, nil
	}
	if err := tenant.ValidateID(id); err != nil {
		return "", err
	}
	return id, nil
}

// resolveTenant resolves and holds the request's tenant, writing the
// error response itself on failure. On success the caller must call
// Release on the returned tenant.
func (s *Server) resolveTenant(w http.ResponseWriter, r *http.Request) (*tenant.Tenant[Engine], bool) {
	id, err := s.tenantID(r)
	if err != nil {
		status := http.StatusBadRequest
		if s.requireTenant && r.Header.Get(tenant.Header) == "" {
			status = http.StatusUnauthorized
		}
		writeError(w, status, "%v", err)
		return nil, false
	}
	tn, err := s.reg.Get(id)
	if err != nil {
		if le := tenant.AsLimitError(err); le != nil {
			s.rejectedMetricsFor(id).reject(le.Reason)
			s.tooManyTenants(w, id)
			return nil, false
		}
		writeError(w, http.StatusInternalServerError, "tenant %s: %v", id, err)
		return nil, false
	}
	return tn, true
}

// grant is one admitted query request: the held tenant, its metric
// handles, and the release path for every admission layer claimed.
type grant struct {
	srv *Server
	tn  *tenant.Tenant[Engine]
	tm  *tenantMetrics
}

func (g grant) engine() Engine { return g.tn.Engine() }

func (g grant) release() {
	if g.srv.fair != nil {
		g.srv.fair.Release(g.tn.ID())
	}
	if g.srv.gate != nil {
		g.srv.gate.Release()
		g.srv.inflightG.Add(-1)
	}
	g.tn.Limiter().ReleaseQuery()
	g.tn.Release()
}

// admitQuery runs the full admission stack for one query request,
// writing the rejection response itself. Order matters and is part of
// the contract:
//
//   - per-tenant limits first: a tenant over its own rate or in-flight
//     cap gets 429 regardless of how idle the node is;
//   - the global gate second: if the node is saturated even a
//     well-behaved tenant gets 503 (load shedding, not a quota);
//   - fair share last: the node has room, but granting it to this
//     tenant would let it squeeze siblings out — 429, and the gate
//     slot claimed one line above is rolled back.
func (s *Server) admitQuery(w http.ResponseWriter, r *http.Request) (grant, bool) {
	tn, ok := s.resolveTenant(w, r)
	if !ok {
		return grant{}, false
	}
	g := grant{srv: s, tn: tn, tm: s.metricsOf(tn)}
	now := time.Now()
	if err := tn.Limiter().AcquireQuery(now); err != nil {
		le := tenant.AsLimitError(err)
		g.tm.reject(le.Reason)
		tooMany(w, le)
		tn.Release()
		return grant{}, false
	}
	if s.gate != nil && !s.gate.TryAcquire() {
		s.admRejected.Inc()
		s.overloaded(w)
		tn.Limiter().ReleaseQuery()
		tn.Release()
		return grant{}, false
	}
	if s.fair != nil && !s.fair.Acquire(tn.ID(), tn.Limiter().Limits().EffectiveWeight(), now) {
		s.gate.Release()
		g.tm.reject(tenant.ReasonShare)
		tooMany(w, &tenant.LimitError{Tenant: tn.ID(), Reason: tenant.ReasonShare})
		tn.Limiter().ReleaseQuery()
		tn.Release()
		return grant{}, false
	}
	s.admAccepted.Inc()
	if s.gate != nil {
		s.inflightG.Add(1)
	}
	return g, true
}

// Retry hints. The Retry-After header stays a whole-second ceiling
// (never below 1 — HTTP clients treat the value as seconds and many
// floor fractional parsing to zero, i.e. hammer immediately), while the
// JSON body carries the real, load-derived wait in retry_after_ms so
// programmatic clients can back off proportionally instead of
// sleeping a full second against a gate that drains in milliseconds.
const (
	minRetryHint = 25 * time.Millisecond
	maxRetryHint = time.Second
)

// clampRetryHint bounds a derived hint to [minRetryHint, maxRetryHint].
func clampRetryHint(d time.Duration) time.Duration {
	if d < minRetryHint {
		return minRetryHint
	}
	if d > maxRetryHint {
		return maxRetryHint
	}
	return d
}

// retryHeaderSecs renders a hint as the whole-second Retry-After value.
func retryHeaderSecs(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeRetryError answers a rejection with both hint forms.
func writeRetryError(w http.ResponseWriter, status int, retry time.Duration, format string, args ...any) {
	w.Header().Set("Retry-After", retryHeaderSecs(retry))
	writeJSON(w, status, map[string]any{
		"error":          fmt.Sprintf(format, args...),
		"retry_after_ms": retry.Milliseconds(),
	})
}

// overloadRetryHint derives the 503 hint from in-flight pressure: the
// gate is full with Capacity() queries in service, each bounded by the
// query timeout, so the expected time until a slot frees is about one
// per-query budget divided by the number of slots draining in parallel.
// A wide gate on an idle-ish node hints a few tens of milliseconds; a
// narrow gate under a long timeout hints closer to the full second.
func (s *Server) overloadRetryHint() time.Duration {
	budget := s.queryTimeout
	if budget <= 0 {
		budget = DefaultQueryTimeout
	}
	slots := 1
	if s.gate != nil && s.gate.Capacity() > 0 {
		slots = s.gate.Capacity()
	}
	return clampRetryHint(budget / time.Duration(slots))
}

// overloaded answers a request rejected by the global gate.
func (s *Server) overloaded(w http.ResponseWriter) {
	writeRetryError(w, http.StatusServiceUnavailable, s.overloadRetryHint(),
		"server overloaded; retry shortly")
}

// tooMany answers a request rejected by a per-tenant limit: 429 with
// the limiter's own wait when it has one (the token-bucket refill time,
// millisecond precision in the body), or the structural-limit hint —
// these clear when the tenant's own usage drops, which the tenant
// controls, so the floor is the minimum hint rather than a full second.
func tooMany(w http.ResponseWriter, le *tenant.LimitError) {
	retry := le.RetryAfter
	if retry <= 0 {
		retry = minRetryHint
	}
	writeRetryError(w, http.StatusTooManyRequests, clampRetryHint(retry), "%v", le)
}

// tooManyTenants answers a request whose tenant could not be admitted
// to the registry at all. With a spill directory the slot frees as soon
// as a cold tenant is evicted — a short hint; without one, residency
// only shrinks when some tenant is torn down, so the hint is the cap.
func (s *Server) tooManyTenants(w http.ResponseWriter, id string) {
	retry := maxRetryHint
	if s.spillEnabled {
		retry = 4 * minRetryHint
	}
	writeRetryError(w, http.StatusTooManyRequests, retry, "tenant %s: registry full; retry shortly", id)
}

// queryCtx derives the per-request evaluation context, carrying the
// tenant identity and the evaluation deadline.
func (s *Server) queryCtx(r *http.Request, id string) (context.Context, context.CancelFunc) {
	ctx := tenant.InjectID(r.Context(), id)
	if s.queryTimeout < 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.queryTimeout)
}

// searchFailure maps an evaluation error to a response.
func (s *Server) searchFailure(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.admTimeout.Inc()
		writeError(w, http.StatusGatewayTimeout, "query timed out")
		return
	}
	writeError(w, http.StatusInternalServerError, "query aborted: %v", err)
}

// Partial-result plumbing. A sharded engine answers through the
// *ShardsCtx variants, whose ShardReport makes truncation explicit;
// a single-store engine reports a zero (complete) ShardReport. The
// response contract: a 200 either carries every planned shard's
// contribution or says which shards were cut ("partial": true,
// "shards_cut": [...]); when EVERY planned shard was cut there is no
// result to stand behind at all, and the request answers 504 like any
// other deadline death — never an empty 200.

// searchIDs evaluates one conjunctive search on either engine kind.
func searchIDs(ctx context.Context, eng Engine, start, end temporalir.Timestamp, terms []string) ([]temporalir.ObjectID, temporalir.ShardReport, error) {
	if se, ok := eng.(shardedEngine); ok {
		return se.SearchShardsCtx(ctx, start, end, terms...)
	}
	ids, err := eng.SearchCtx(ctx, start, end, terms...)
	return ids, temporalir.ShardReport{}, err
}

// searchTopK evaluates one ranked search on either engine kind.
func searchTopK(ctx context.Context, eng Engine, start, end temporalir.Timestamp, k int, terms []string) ([]temporalir.ScoredResult, temporalir.ShardReport, error) {
	if se, ok := eng.(shardedEngine); ok {
		return se.SearchTopKShardsCtx(ctx, start, end, k, terms...)
	}
	res, err := eng.SearchTopKCtx(ctx, start, end, k, terms...)
	return res, temporalir.ShardReport{}, err
}

// searchTimeline evaluates one timeline on either engine kind.
func searchTimeline(ctx context.Context, eng Engine, start, end temporalir.Timestamp, buckets int, terms []string) ([]temporalir.TimelineBucket, temporalir.ShardReport, error) {
	if se, ok := eng.(shardedEngine); ok {
		return se.TimelineShardsCtx(ctx, start, end, buckets, terms...)
	}
	tl, err := eng.TimelineCtx(ctx, start, end, buckets, terms...)
	return tl, temporalir.ShardReport{}, err
}

// shardCutFailure writes the 504 for an all-shards-cut report and
// reports whether it did; otherwise it annotates the response body with
// the partial-result fields when any shard was cut.
func (s *Server) shardCutFailure(w http.ResponseWriter, rep temporalir.ShardReport, body map[string]any) bool {
	if !rep.Partial() {
		return false
	}
	if len(rep.Cut) == rep.Planned {
		s.admTimeout.Inc()
		writeError(w, http.StatusGatewayTimeout, "all %d planned shards exceeded the shard deadline", rep.Planned)
		return true
	}
	body["partial"] = true
	body["shards_cut"] = rep.Cut
	return false
}

// finishQuery records one served query twice — into the global
// per-method family and the tenant's own — and offers the finished
// trace to the slow log.
func (s *Server) finishQuery(m, tm queryMetrics, tr *obs.Trace, t0 time.Time) {
	sec := time.Since(t0).Seconds()
	m.count.Inc()
	m.seconds.Observe(sec)
	tm.count.Inc()
	tm.seconds.Observe(sec)
	s.obs.FinishTrace(tr)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// objectJSON is the wire form of an object.
type objectJSON struct {
	ID    temporalir.ObjectID  `json:"id"`
	Start temporalir.Timestamp `json:"start"`
	End   temporalir.Timestamp `json:"end"`
	Terms []string             `json:"terms"`
}

// searchHit is one ranked or unranked result row.
type searchHit struct {
	ID    temporalir.ObjectID `json:"id"`
	Score *float64            `json:"score,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// parseQueryRange extracts and validates start, end and q from a search
// or timeline request, writing the 400 response itself on failure.
// start > end is rejected here — the same validation POST bodies get —
// instead of silently canonicalizing the reversed interval.
func parseQueryRange(w http.ResponseWriter, r *http.Request) (start, end temporalir.Timestamp, terms []string, ok bool) {
	start, err := parseTS(r.URL.Query().Get("start"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad start: %v", err)
		return 0, 0, nil, false
	}
	end, err = parseTS(r.URL.Query().Get("end"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad end: %v", err)
		return 0, 0, nil, false
	}
	if start > end {
		writeError(w, http.StatusBadRequest, "start %d > end %d", start, end)
		return 0, 0, nil, false
	}
	terms = textutil.Tokenize(r.URL.Query().Get("q"), textutil.Options{})
	if len(terms) == 0 {
		writeError(w, http.StatusBadRequest, "q must contain at least one indexable term")
		return 0, 0, nil, false
	}
	return start, end, terms, true
}

// handleSearch answers GET /search?start=S&end=E&q=TERMS[&k=K].
// q is free text, tokenized and normalized like inserted documents.
// Without k the full containment result is returned; with k the top-k
// ranked results with scores. Both paths run under the request deadline:
// the ranked path goes through SearchTopKCtx, so a ranking that outlives
// the timeout answers 504 instead of holding the connection.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	start, end, terms, ok := parseQueryRange(w, r)
	if !ok {
		return
	}
	var k int
	if kRaw := r.URL.Query().Get("k"); kRaw != "" {
		var err error
		k, err = strconv.Atoi(kRaw)
		if err != nil || k < 1 {
			writeError(w, http.StatusBadRequest, "bad k: %q", kRaw)
			return
		}
	}

	g, ok := s.admitQuery(w, r)
	if !ok {
		return
	}
	defer g.release()
	ctx, cancel := s.queryCtx(r, g.tn.ID())
	defer cancel()

	var hits []searchHit
	body := map[string]any{}
	if k > 0 {
		tr := s.obs.StartTrace("search_topk")
		tr.SetTenant(g.tn.ID())
		tr.SetShape(fmt.Sprintf("terms=%d k=%d", len(terms), k))
		t0 := time.Now()
		res, rep, err := searchTopK(obs.ContextWithTrace(ctx, tr), g.engine(), start, end, k, terms)
		s.finishQuery(s.metTopK, g.tm.topk, tr, t0)
		if err != nil {
			s.searchFailure(w, err)
			return
		}
		if s.shardCutFailure(w, rep, body) {
			return
		}
		for _, r := range res {
			score := r.Score
			hits = append(hits, searchHit{ID: r.ID, Score: &score})
		}
	} else {
		tr := s.obs.StartTrace("search")
		tr.SetTenant(g.tn.ID())
		tr.SetShape(fmt.Sprintf("terms=%d", len(terms)))
		t0 := time.Now()
		ids, rep, err := searchIDs(obs.ContextWithTrace(ctx, tr), g.engine(), start, end, terms)
		s.finishQuery(s.metSearch, g.tm.search, tr, t0)
		if err != nil {
			s.searchFailure(w, err)
			return
		}
		if s.shardCutFailure(w, rep, body) {
			return
		}
		for _, id := range ids {
			hits = append(hits, searchHit{ID: id})
		}
	}
	body["count"] = len(hits)
	body["hits"] = hits
	writeJSON(w, http.StatusOK, body)
}

// batchRequest is the wire form of POST /search/batch: one interval of
// interest and many free-text term rows, evaluated concurrently over the
// engine's worker pool.
type batchRequest struct {
	Start   temporalir.Timestamp `json:"start"`
	End     temporalir.Timestamp `json:"end"`
	Queries []string             `json:"queries"`
}

// batchRow is one row of the batch response; rows line up with the
// request's queries. A row whose evaluation lost shards to the
// per-shard deadline reports them in shards_cut rather than passing a
// truncated hit list off as complete.
type batchRow struct {
	Hits      []temporalir.ObjectID `json:"hits"`
	Error     string                `json:"error,omitempty"`
	ShardsCut []int                 `json:"shards_cut,omitempty"`
}

// handleSearchBatch answers POST /search/batch. The whole batch holds
// one admission grant (one gate slot, one rate-limit token) and one
// evaluation deadline; rows cut off by the deadline report a per-row
// error while completed rows still return.
func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if req.Start > req.End {
		writeError(w, http.StatusBadRequest, "start %d > end %d", req.Start, req.End)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "queries must not be empty")
		return
	}
	termRows := make([][]string, len(req.Queries))
	for i, q := range req.Queries {
		termRows[i] = textutil.Tokenize(q, textutil.Options{})
		if len(termRows[i]) == 0 {
			writeError(w, http.StatusBadRequest, "query %d has no indexable terms", i)
			return
		}
	}
	g, ok := s.admitQuery(w, r)
	if !ok {
		return
	}
	defer g.release()
	ctx, cancel := s.queryCtx(r, g.tn.ID())
	defer cancel()

	tr := s.obs.StartTrace("search_batch")
	tr.SetTenant(g.tn.ID())
	tr.SetShape(fmt.Sprintf("queries=%d", len(termRows)))
	s.batchSize.Observe(float64(len(termRows)))
	t0 := time.Now()
	results := g.engine().SearchTermsBatchCtx(obs.ContextWithTrace(ctx, tr), req.Start, req.End, termRows)
	s.finishQuery(s.metBatch, g.tm.batch, tr, t0)
	rows := make([]batchRow, len(results))
	timedOut := false
	completed := 0
	for i, res := range results {
		if res.Err != nil {
			row := batchRow{Error: res.Err.Error()}
			// A sharded row that lost shards to the per-shard deadline
			// names them; the row is an error row, never a short 200 row.
			if pe, ok := temporalir.AsPartialError(res.Err); ok {
				row.ShardsCut = pe.Report.Cut
			}
			rows[i] = row
			timedOut = timedOut || errors.Is(res.Err, context.DeadlineExceeded)
			continue
		}
		completed++
		rows[i] = batchRow{Hits: res.IDs}
	}
	if timedOut {
		s.admTimeout.Inc()
	}
	// A batch where not a single row completed has nothing to stand
	// behind: that is the whole request dying to its deadline, and it
	// answers like one — 504, not a 200 full of error rows.
	if completed == 0 && timedOut {
		writeError(w, http.StatusGatewayTimeout, "no batch row completed before the deadline")
		return
	}
	body := map[string]any{"count": len(rows), "results": rows}
	if completed < len(rows) {
		body["partial"] = true
	}
	writeJSON(w, http.StatusOK, body)
}

// handleInsert answers POST /objects with an objectJSON body (id
// ignored). Inserts are not rate-limited, but they are the enforcement
// point of the tenant's memtable and size quotas: an over-quota tenant
// gets 429 until compaction (or deletion) makes room, while sibling
// tenants are untouched.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var in objectJSON
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		writeError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if in.Start > in.End {
		writeError(w, http.StatusBadRequest, "start %d > end %d", in.Start, in.End)
		return
	}
	var terms []string
	for _, t := range in.Terms {
		terms = append(terms, textutil.Tokenize(t, textutil.Options{})...)
	}
	if len(terms) == 0 {
		writeError(w, http.StatusBadRequest, "no indexable terms")
		return
	}
	tn, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	defer tn.Release()
	eng := tn.Engine()
	if err := tn.Limiter().CheckIngest(eng.CompactStats().MemObjects, eng.SizeBytes()); err != nil {
		le := tenant.AsLimitError(err)
		s.metricsOf(tn).reject(le.Reason)
		tooMany(w, le)
		return
	}
	// No server-level lock: Insert serializes on the engine's dictionary
	// and store mutexes, and RefreshScorer publishes a new generation
	// atomically. Two concurrent inserts interleave their scorer
	// refreshes last-write-wins, which both leave consistent.
	id := eng.Insert(in.Start, in.End, terms...)
	eng.RefreshScorer()
	writeJSON(w, http.StatusCreated, map[string]any{"id": id})
}

// handleGet answers GET /objects/{id}.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id, err := parseID(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tn, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	defer tn.Release()
	iv, terms, err := tn.Engine().Object(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, objectJSON{ID: id, Start: iv.Start, End: iv.End, Terms: terms})
}

// handleDelete answers DELETE /objects/{id}.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id, err := parseID(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tn, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	defer tn.Release()
	if err := tn.Engine().Delete(id); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

// handleTimeline answers GET /timeline?start=S&end=E&q=TERMS&buckets=N:
// a temporal histogram of the matching objects. Timelines scan every
// match, so the endpoint sits behind the same admission control and
// deadline as /search.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	start, end, terms, ok := parseQueryRange(w, r)
	if !ok {
		return
	}
	buckets := 10
	if raw := r.URL.Query().Get("buckets"); raw != "" {
		var err error
		buckets, err = strconv.Atoi(raw)
		if err != nil || buckets < 1 || buckets > 10000 {
			writeError(w, http.StatusBadRequest, "bad buckets: %q", raw)
			return
		}
	}
	g, ok := s.admitQuery(w, r)
	if !ok {
		return
	}
	defer g.release()
	ctx, cancel := s.queryCtx(r, g.tn.ID())
	defer cancel()

	tr := s.obs.StartTrace("timeline")
	tr.SetTenant(g.tn.ID())
	tr.SetShape(fmt.Sprintf("terms=%d buckets=%d", len(terms), buckets))
	t0 := time.Now()
	tl, rep, err := searchTimeline(obs.ContextWithTrace(ctx, tr), g.engine(), start, end, buckets, terms)
	s.finishQuery(s.metTimeline, g.tm.timeline, tr, t0)
	if err != nil {
		s.searchFailure(w, err)
		return
	}
	body := map[string]any{}
	if s.shardCutFailure(w, rep, body) {
		return
	}
	body["buckets"] = tl
	writeJSON(w, http.StatusOK, body)
}

// handleStats answers GET /stats for the request's tenant, including
// the generational compaction state and the tenant's admission view
// (limits, in-flight, current fair share).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	defer tn.Release()
	eng := tn.Engine()
	out := map[string]any{
		"method":     string(eng.Method()),
		"objects":    eng.Len(),
		"size_bytes": eng.SizeBytes(),
		"compaction": eng.CompactStats(),
		"pool":       eng.PoolStats(),
		"tenant":     tn.ID(),
		"tenants":    s.reg.Len(),
		"limits":     tn.Limiter().Limits(),
		"inflight":   tn.Limiter().InFlight(),
	}
	if s.fair != nil {
		out["fair_share"] = s.fair.Share(tn.ID(), tn.Limiter().Limits().EffectiveWeight(), time.Now())
	}
	if se, ok := eng.(shardedEngine); ok {
		out["shards"] = se.ShardStats()
		out["coordinator"] = se.CoordinatorStats()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTenants answers GET /admin/tenants: the resident tenant set
// with per-tenant engine and admission state.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	type row struct {
		ID         string `json:"id"`
		Objects    int    `json:"objects"`
		SizeBytes  int64  `json:"size_bytes"`
		MemObjects int    `json:"memtable_objects"`
		Tombstones int    `json:"tombstones"`
		InFlight   int    `json:"inflight"`
		Weight     int    `json:"weight"`
	}
	var rows []row
	s.reg.Each(func(tn *tenant.Tenant[Engine]) {
		eng := tn.Engine()
		st := eng.CompactStats()
		rows = append(rows, row{
			ID:         tn.ID(),
			Objects:    eng.Len(),
			SizeBytes:  eng.SizeBytes(),
			MemObjects: st.MemObjects,
			Tombstones: st.Tombstones,
			InFlight:   tn.Limiter().InFlight(),
			Weight:     tn.Limiter().Limits().EffectiveWeight(),
		})
	})
	writeJSON(w, http.StatusOK, map[string]any{
		"tenants":   rows,
		"resident":  s.reg.Len(),
		"evictions": s.reg.Evictions(),
		"spills":    s.reg.Spills(),
	})
}

// handleMetrics answers GET /metrics in the Prometheus text exposition
// format (version 0.0.4).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.obs.Registry().WritePrometheus(w)
}

// handleSlow answers GET /debug/slow: the slow-query ring, newest first.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	slow := s.obs.Slow()
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_ns": slow.Threshold().Nanoseconds(),
		"total":        slow.Total(),
		"entries":      slow.Snapshot(),
	})
}

// handleCompact answers POST /admin/compact: it runs a synchronous
// compaction of the request tenant's engine and returns the resulting
// stats. A compaction already in flight answers 409 with the current
// stats; the request context bounds the rebuild (a canceled request
// leaves the old generation intact). Searches keep running against the
// previous generation throughout, so the endpoint never degrades read
// availability.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.resolveTenant(w, r)
	if !ok {
		return
	}
	defer tn.Release()
	tr := s.obs.StartTrace("compact")
	tr.SetTenant(tn.ID())
	st, err := tn.Engine().Compact(obs.ContextWithTrace(r.Context(), tr))
	s.obs.FinishTrace(tr)
	switch {
	case errors.Is(err, temporalir.ErrCompactionRunning):
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":      "compaction already in progress",
			"compaction": st,
		})
	case err != nil:
		writeError(w, http.StatusInternalServerError, "compaction failed: %v", err)
	default:
		writeJSON(w, http.StatusOK, map[string]any{"compaction": st})
	}
}

func parseTS(raw string) (temporalir.Timestamp, error) {
	if raw == "" {
		return 0, fmt.Errorf("missing")
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("not an integer timestamp: %q", raw)
	}
	return v, nil
}

func parseID(raw string) (temporalir.ObjectID, error) {
	raw = strings.TrimSpace(raw)
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad object id %q", raw)
	}
	return temporalir.ObjectID(v), nil
}
