// Package server exposes a temporalir Engine over HTTP/JSON — the
// "search interface to multiple users simultaneously" deployment the
// paper's throughput metric models (public archives, footnote 11).
// Reads run concurrently against immutable generation snapshots and
// never wait on writers; POST /admin/compact (or the engine's
// auto-compaction policy) folds accumulated inserts and deletes into a
// freshly rebuilt index off the read path.
//
// The server is also the integration point of the observability layer
// (internal/obs): every query endpoint records per-method counters and
// latency histograms, carries a trace recorder through the engine's
// stages, and feeds finished traces to the slow-query log. GET /metrics
// renders the registry in the Prometheus text format; GET /debug/slow
// dumps the slow-query ring.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	temporalir "repro"
	"repro/internal/obs"
	"repro/internal/textutil"
)

// Options tunes the server's admission control and observability.
type Options struct {
	// QueryTimeout bounds each search request's evaluation; expired
	// requests answer 504. Zero selects DefaultQueryTimeout; negative
	// disables the timeout.
	QueryTimeout time.Duration
	// MaxInFlight caps concurrently evaluating search requests. Excess
	// requests are rejected immediately with 503 and a Retry-After hint —
	// backpressure instead of a lock convoy. Zero selects
	// 4 x GOMAXPROCS; negative disables the cap.
	MaxInFlight int
	// Obs supplies the metrics registry, tracer and slow-query log. nil
	// makes the server construct its own default Observer.
	Obs *obs.Observer
}

// DefaultQueryTimeout bounds search evaluation when Options.QueryTimeout
// is zero.
const DefaultQueryTimeout = 5 * time.Second

// queryMetrics is the per-method handle pair the handlers record into.
type queryMetrics struct {
	count   *obs.Counter
	seconds *obs.Histogram
}

// Server is an http.Handler serving one engine.
//
// It holds no lock around query evaluation: engine reads resolve one
// immutable generation snapshot (engine.snapshot / Store.Snapshot) and
// run entirely against it, and engine writes serialize internally on
// the store's writer mutex. The former Server.mu RWMutex — which held
// readers across whole evaluations and let a slow search block every
// insert — is gone; the snapshot guarantee makes it redundant.
type Server struct {
	engine *temporalir.Engine
	mux    *http.ServeMux
	obs    *obs.Observer
	// queryTimeout and inflight are immutable after construction.
	queryTimeout time.Duration
	// inflight is the admission semaphore: a slot is held for the whole
	// evaluation of a search request. nil means uncapped.
	inflight chan struct{}

	metSearch   queryMetrics
	metTopK     queryMetrics
	metBatch    queryMetrics
	metTimeline queryMetrics
	admAccepted *obs.Counter
	admRejected *obs.Counter
	admTimeout  *obs.Counter
	batchSize   *obs.Histogram
	inflightG   *obs.Gauge
}

// New wraps an engine with default admission control. The engine must
// not be mutated elsewhere while the server is live.
func New(engine *temporalir.Engine) *Server {
	return NewWithOptions(engine, Options{})
}

// NewWithOptions wraps an engine with explicit timeout, backpressure
// and observability settings.
func NewWithOptions(engine *temporalir.Engine, opts Options) *Server {
	if opts.QueryTimeout == 0 {
		opts.QueryTimeout = DefaultQueryTimeout
	}
	if opts.MaxInFlight == 0 {
		opts.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if opts.Obs == nil {
		opts.Obs = obs.NewObserver(obs.Config{})
	}
	s := &Server{
		engine:       engine,
		mux:          http.NewServeMux(),
		obs:          opts.Obs,
		queryTimeout: opts.QueryTimeout,
	}
	if opts.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, opts.MaxInFlight)
	}
	s.registerMetrics()
	s.mux.HandleFunc("GET /search", s.handleSearch)
	s.mux.HandleFunc("POST /search/batch", s.handleSearchBatch)
	s.mux.HandleFunc("POST /objects", s.handleInsert)
	s.mux.HandleFunc("GET /objects/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /objects/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /timeline", s.handleTimeline)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/slow", s.handleSlow)
	s.mux.HandleFunc("POST /admin/compact", s.handleCompact)
	return s
}

// Obs returns the server's observer, for callers (irserve, tests) that
// want to toggle tracing or read the registry directly.
func (s *Server) Obs() *obs.Observer { return s.obs }

// registerMetrics resolves every hot-path metric handle once, and wires
// the scrape-time engine gauges. Handles are plain pointers; recording
// into them takes no lock.
func (s *Server) registerMetrics() {
	reg := s.obs.Registry()
	method := func(m string) queryMetrics {
		return queryMetrics{
			count:   reg.Counter("tir_queries_total", "Queries served, by method.", obs.Label{Key: "method", Value: m}),
			seconds: reg.Histogram("tir_query_seconds", "Query latency in seconds, by method.", obs.DefLatencyBuckets(), obs.Label{Key: "method", Value: m}),
		}
	}
	s.metSearch = method("search")
	s.metTopK = method("search_topk")
	s.metBatch = method("search_batch")
	s.metTimeline = method("timeline")

	adm := func(res string) *obs.Counter {
		return reg.Counter("tir_admission_total", "Admission-control outcomes.", obs.Label{Key: "result", Value: res})
	}
	s.admAccepted = adm("accepted")
	s.admRejected = adm("rejected")
	s.admTimeout = adm("timeout")
	s.batchSize = reg.Histogram("tir_batch_queries", "Queries per batch request.", obs.DefSizeBuckets())
	s.inflightG = reg.Gauge("tir_inflight_queries", "Search requests currently holding an admission slot.")

	reg.CounterFunc("tir_slow_queries_total", "Traces admitted to the slow-query log.", func() float64 {
		return float64(s.obs.Slow().Total())
	})

	// Engine-state metrics are sampled at scrape time: the underlying
	// stats are either atomic snapshots or taken under the store's own
	// short-lived locks, so scraping never touches the query path.
	eng := s.engine
	reg.GaugeFunc("tir_engine_objects", "Live (non-tombstoned) objects.", func() float64 {
		return float64(eng.Len())
	})
	reg.GaugeFunc("tir_engine_size_bytes", "Estimated resident index size.", func() float64 {
		return float64(eng.SizeBytes())
	})
	reg.GaugeFunc("tir_memtable_objects", "Objects in the memtable tail.", func() float64 {
		return float64(eng.CompactStats().MemObjects)
	})
	reg.GaugeFunc("tir_memtable_bytes", "Estimated memtable size.", func() float64 {
		return float64(eng.CompactStats().MemBytes)
	})
	reg.GaugeFunc("tir_tombstones", "Pending logical deletions.", func() float64 {
		return float64(eng.CompactStats().Tombstones)
	})
	reg.CounterFunc("tir_compactions_total", "Completed compactions.", func() float64 {
		return float64(eng.CompactStats().Compactions)
	})
	reg.CounterFunc("tir_compaction_seconds_total", "Wall time spent compacting.", func() float64 {
		return eng.CompactStats().TotalDuration.Seconds()
	})
	reg.CounterFunc("tir_compaction_dropped_total", "Tombstoned objects physically dropped by compaction.", func() float64 {
		return float64(eng.CompactStats().TotalDropped)
	})
	reg.CounterFunc("tir_compaction_merged_total", "Memtable objects folded into the base by compaction.", func() float64 {
		return float64(eng.CompactStats().TotalMerged)
	})
	reg.CounterFunc("tir_compaction_reclaimed_bytes_total", "Estimated bytes reclaimed by compaction.", func() float64 {
		return float64(eng.CompactStats().ReclaimedBytes)
	})
	reg.CounterFunc("tir_exec_maps_total", "Worker-pool fan-out invocations.", func() float64 {
		return float64(eng.PoolStats().Maps)
	})
	reg.CounterFunc("tir_exec_items_total", "Work items fanned across the pool.", func() float64 {
		return float64(eng.PoolStats().Items)
	})
	reg.CounterFunc("tir_exec_helpers_total", "Helper goroutines borrowed by fan-outs.", func() float64 {
		return float64(eng.PoolStats().Helpers)
	})

	// Routed engines expose the adaptive router's decision tally, one
	// series per sub-method. Non-routed engines register nothing.
	for i, m := range eng.RoutedMethods() {
		i := i
		reg.CounterFunc("tir_route_decisions_total", "Adaptive-router decisions, by chosen sub-method.", func() float64 {
			return float64(eng.RouteDecisions()[i])
		}, obs.Label{Key: "method", Value: string(m)})
	}
}

// acquire claims an in-flight slot, reporting false when the server is
// saturated. release must be called iff acquire returned true.
func (s *Server) acquire() bool {
	if s.inflight == nil {
		s.admAccepted.Inc()
		return true
	}
	select {
	case s.inflight <- struct{}{}:
		s.admAccepted.Inc()
		s.inflightG.Add(1)
		return true
	default:
		s.admRejected.Inc()
		return false
	}
}

func (s *Server) release() {
	if s.inflight != nil {
		<-s.inflight
		s.inflightG.Add(-1)
	}
}

// overloaded answers a request rejected by admission control.
func overloaded(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "server overloaded; retry shortly")
}

// queryCtx derives the per-request evaluation context.
func (s *Server) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.queryTimeout < 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.queryTimeout)
}

// searchFailure maps an evaluation error to a response.
func (s *Server) searchFailure(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.admTimeout.Inc()
		writeError(w, http.StatusGatewayTimeout, "query timed out")
		return
	}
	writeError(w, http.StatusInternalServerError, "query aborted: %v", err)
}

// finishQuery records one served query: the per-method counter and
// latency histogram, plus the finished trace (offered to the slow log).
func (s *Server) finishQuery(m queryMetrics, tr *obs.Trace, t0 time.Time) {
	m.count.Inc()
	m.seconds.Observe(time.Since(t0).Seconds())
	s.obs.FinishTrace(tr)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// objectJSON is the wire form of an object.
type objectJSON struct {
	ID    temporalir.ObjectID  `json:"id"`
	Start temporalir.Timestamp `json:"start"`
	End   temporalir.Timestamp `json:"end"`
	Terms []string             `json:"terms"`
}

// searchHit is one ranked or unranked result row.
type searchHit struct {
	ID    temporalir.ObjectID `json:"id"`
	Score *float64            `json:"score,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// parseQueryRange extracts and validates start, end and q from a search
// or timeline request, writing the 400 response itself on failure.
// start > end is rejected here — the same validation POST bodies get —
// instead of silently canonicalizing the reversed interval.
func parseQueryRange(w http.ResponseWriter, r *http.Request) (start, end temporalir.Timestamp, terms []string, ok bool) {
	start, err := parseTS(r.URL.Query().Get("start"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad start: %v", err)
		return 0, 0, nil, false
	}
	end, err = parseTS(r.URL.Query().Get("end"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad end: %v", err)
		return 0, 0, nil, false
	}
	if start > end {
		writeError(w, http.StatusBadRequest, "start %d > end %d", start, end)
		return 0, 0, nil, false
	}
	terms = textutil.Tokenize(r.URL.Query().Get("q"), textutil.Options{})
	if len(terms) == 0 {
		writeError(w, http.StatusBadRequest, "q must contain at least one indexable term")
		return 0, 0, nil, false
	}
	return start, end, terms, true
}

// handleSearch answers GET /search?start=S&end=E&q=TERMS[&k=K].
// q is free text, tokenized and normalized like inserted documents.
// Without k the full containment result is returned; with k the top-k
// ranked results with scores. Both paths run under the request deadline:
// the ranked path goes through SearchTopKCtx, so a ranking that outlives
// the timeout answers 504 instead of holding the connection.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	start, end, terms, ok := parseQueryRange(w, r)
	if !ok {
		return
	}
	var k int
	if kRaw := r.URL.Query().Get("k"); kRaw != "" {
		var err error
		k, err = strconv.Atoi(kRaw)
		if err != nil || k < 1 {
			writeError(w, http.StatusBadRequest, "bad k: %q", kRaw)
			return
		}
	}

	if !s.acquire() {
		overloaded(w)
		return
	}
	defer s.release()
	ctx, cancel := s.queryCtx(r)
	defer cancel()

	var hits []searchHit
	if k > 0 {
		tr := s.obs.StartTrace("search_topk")
		tr.SetShape(fmt.Sprintf("terms=%d k=%d", len(terms), k))
		t0 := time.Now()
		res, err := s.engine.SearchTopKCtx(obs.ContextWithTrace(ctx, tr), start, end, k, terms...)
		s.finishQuery(s.metTopK, tr, t0)
		if err != nil {
			s.searchFailure(w, err)
			return
		}
		for _, r := range res {
			score := r.Score
			hits = append(hits, searchHit{ID: r.ID, Score: &score})
		}
	} else {
		tr := s.obs.StartTrace("search")
		tr.SetShape(fmt.Sprintf("terms=%d", len(terms)))
		t0 := time.Now()
		ids, err := s.engine.SearchCtx(obs.ContextWithTrace(ctx, tr), start, end, terms...)
		s.finishQuery(s.metSearch, tr, t0)
		if err != nil {
			s.searchFailure(w, err)
			return
		}
		for _, id := range ids {
			hits = append(hits, searchHit{ID: id})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(hits), "hits": hits})
}

// batchRequest is the wire form of POST /search/batch: one interval of
// interest and many free-text term rows, evaluated concurrently over the
// engine's worker pool.
type batchRequest struct {
	Start   temporalir.Timestamp `json:"start"`
	End     temporalir.Timestamp `json:"end"`
	Queries []string             `json:"queries"`
}

// batchRow is one row of the batch response; rows line up with the
// request's queries.
type batchRow struct {
	Hits  []temporalir.ObjectID `json:"hits"`
	Error string                `json:"error,omitempty"`
}

// handleSearchBatch answers POST /search/batch. The whole batch holds
// one in-flight slot and one evaluation deadline; rows cut off by the
// deadline report a per-row error while completed rows still return.
func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if req.Start > req.End {
		writeError(w, http.StatusBadRequest, "start %d > end %d", req.Start, req.End)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "queries must not be empty")
		return
	}
	termRows := make([][]string, len(req.Queries))
	for i, q := range req.Queries {
		termRows[i] = textutil.Tokenize(q, textutil.Options{})
		if len(termRows[i]) == 0 {
			writeError(w, http.StatusBadRequest, "query %d has no indexable terms", i)
			return
		}
	}
	if !s.acquire() {
		overloaded(w)
		return
	}
	defer s.release()
	ctx, cancel := s.queryCtx(r)
	defer cancel()

	tr := s.obs.StartTrace("search_batch")
	tr.SetShape(fmt.Sprintf("queries=%d", len(termRows)))
	s.batchSize.Observe(float64(len(termRows)))
	t0 := time.Now()
	results := s.engine.SearchTermsBatchCtx(obs.ContextWithTrace(ctx, tr), req.Start, req.End, termRows)
	s.finishQuery(s.metBatch, tr, t0)
	rows := make([]batchRow, len(results))
	timedOut := false
	for i, res := range results {
		if res.Err != nil {
			rows[i] = batchRow{Error: res.Err.Error()}
			timedOut = timedOut || errors.Is(res.Err, context.DeadlineExceeded)
			continue
		}
		rows[i] = batchRow{Hits: res.IDs}
	}
	if timedOut {
		s.admTimeout.Inc()
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(rows), "results": rows})
}

// handleInsert answers POST /objects with an objectJSON body (id ignored).
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var in objectJSON
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		writeError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if in.Start > in.End {
		writeError(w, http.StatusBadRequest, "start %d > end %d", in.Start, in.End)
		return
	}
	var terms []string
	for _, t := range in.Terms {
		terms = append(terms, textutil.Tokenize(t, textutil.Options{})...)
	}
	if len(terms) == 0 {
		writeError(w, http.StatusBadRequest, "no indexable terms")
		return
	}
	// No server-level lock: Insert serializes on the engine's dictionary
	// and store mutexes, and RefreshScorer publishes a new generation
	// atomically. Two concurrent inserts interleave their scorer
	// refreshes last-write-wins, which both leave consistent.
	id := s.engine.Insert(in.Start, in.End, terms...)
	s.engine.RefreshScorer()
	writeJSON(w, http.StatusCreated, map[string]any{"id": id})
}

// handleGet answers GET /objects/{id}.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id, err := parseID(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	iv, terms, err := s.engine.Object(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, objectJSON{ID: id, Start: iv.Start, End: iv.End, Terms: terms})
}

// handleDelete answers DELETE /objects/{id}.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id, err := parseID(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.engine.Delete(id); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

// handleTimeline answers GET /timeline?start=S&end=E&q=TERMS&buckets=N:
// a temporal histogram of the matching objects. Timelines scan every
// match, so the endpoint sits behind the same admission control and
// deadline as /search — it previously bypassed both, letting histogram
// traffic evade the in-flight cap entirely.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	start, end, terms, ok := parseQueryRange(w, r)
	if !ok {
		return
	}
	buckets := 10
	if raw := r.URL.Query().Get("buckets"); raw != "" {
		var err error
		buckets, err = strconv.Atoi(raw)
		if err != nil || buckets < 1 || buckets > 10000 {
			writeError(w, http.StatusBadRequest, "bad buckets: %q", raw)
			return
		}
	}
	if !s.acquire() {
		overloaded(w)
		return
	}
	defer s.release()
	ctx, cancel := s.queryCtx(r)
	defer cancel()

	tr := s.obs.StartTrace("timeline")
	tr.SetShape(fmt.Sprintf("terms=%d buckets=%d", len(terms), buckets))
	t0 := time.Now()
	tl, err := s.engine.TimelineCtx(obs.ContextWithTrace(ctx, tr), start, end, buckets, terms...)
	s.finishQuery(s.metTimeline, tr, t0)
	if err != nil {
		s.searchFailure(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"buckets": tl})
}

// handleStats answers GET /stats, including the generational compaction
// state (epoch, memtable, tombstones, compaction history).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"method":     string(s.engine.Method()),
		"objects":    s.engine.Len(),
		"size_bytes": s.engine.SizeBytes(),
		"compaction": s.engine.CompactStats(),
		"pool":       s.engine.PoolStats(),
	})
}

// handleMetrics answers GET /metrics in the Prometheus text exposition
// format (version 0.0.4).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.obs.Registry().WritePrometheus(w)
}

// handleSlow answers GET /debug/slow: the slow-query ring, newest first.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	slow := s.obs.Slow()
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_ns": slow.Threshold().Nanoseconds(),
		"total":        slow.Total(),
		"entries":      slow.Snapshot(),
	})
}

// handleCompact answers POST /admin/compact: it runs a synchronous
// compaction and returns the resulting stats. A compaction already in
// flight answers 409 with the current stats; the request context bounds
// the rebuild (a canceled request leaves the old generation intact).
// Searches keep running against the previous generation throughout, so
// the endpoint never degrades read availability. The request context
// carries a trace, so compaction phases land in the slow log like any
// other slow operation.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	tr := s.obs.StartTrace("compact")
	st, err := s.engine.Compact(obs.ContextWithTrace(r.Context(), tr))
	s.obs.FinishTrace(tr)
	switch {
	case errors.Is(err, temporalir.ErrCompactionRunning):
		writeJSON(w, http.StatusConflict, map[string]any{
			"error":      "compaction already in progress",
			"compaction": st,
		})
	case err != nil:
		writeError(w, http.StatusInternalServerError, "compaction failed: %v", err)
	default:
		writeJSON(w, http.StatusOK, map[string]any{"compaction": st})
	}
}

func parseTS(raw string) (temporalir.Timestamp, error) {
	if raw == "" {
		return 0, fmt.Errorf("missing")
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("not an integer timestamp: %q", raw)
	}
	return v, nil
}

func parseID(raw string) (temporalir.ObjectID, error) {
	raw = strings.TrimSpace(raw)
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad object id %q", raw)
	}
	return temporalir.ObjectID(v), nil
}
