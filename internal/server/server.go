// Package server exposes a temporalir Engine over HTTP/JSON — the
// "search interface to multiple users simultaneously" deployment the
// paper's throughput metric models (public archives, footnote 11).
// Reads run concurrently against the index; updates serialize behind a
// single writer lock, matching the library's concurrency contract.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	temporalir "repro"
	"repro/internal/textutil"
)

// Server is an http.Handler serving one engine.
type Server struct {
	mu sync.RWMutex
	// irlint:guarded-by mu
	engine *temporalir.Engine
	mux    *http.ServeMux
}

// New wraps an engine. The engine must not be mutated elsewhere while the
// server is live.
func New(engine *temporalir.Engine) *Server {
	s := &Server{engine: engine, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /search", s.handleSearch)
	s.mux.HandleFunc("POST /objects", s.handleInsert)
	s.mux.HandleFunc("GET /objects/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /objects/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /timeline", s.handleTimeline)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// objectJSON is the wire form of an object.
type objectJSON struct {
	ID    temporalir.ObjectID  `json:"id"`
	Start temporalir.Timestamp `json:"start"`
	End   temporalir.Timestamp `json:"end"`
	Terms []string             `json:"terms"`
}

// searchHit is one ranked or unranked result row.
type searchHit struct {
	ID    temporalir.ObjectID `json:"id"`
	Score *float64            `json:"score,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSearch answers GET /search?start=S&end=E&q=TERMS[&k=K].
// q is free text, tokenized and normalized like inserted documents.
// Without k the full containment result is returned; with k the top-k
// ranked results with scores.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	start, err := parseTS(r.URL.Query().Get("start"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad start: %v", err)
		return
	}
	end, err := parseTS(r.URL.Query().Get("end"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad end: %v", err)
		return
	}
	terms := textutil.Tokenize(r.URL.Query().Get("q"), textutil.Options{})
	if len(terms) == 0 {
		writeError(w, http.StatusBadRequest, "q must contain at least one indexable term")
		return
	}
	var k int
	if kRaw := r.URL.Query().Get("k"); kRaw != "" {
		k, err = strconv.Atoi(kRaw)
		if err != nil || k < 1 {
			writeError(w, http.StatusBadRequest, "bad k: %q", kRaw)
			return
		}
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	var hits []searchHit
	if k > 0 {
		for _, res := range s.engine.SearchTopK(start, end, k, terms...) {
			score := res.Score
			hits = append(hits, searchHit{ID: res.ID, Score: &score})
		}
	} else {
		for _, id := range s.engine.Search(start, end, terms...) {
			hits = append(hits, searchHit{ID: id})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(hits), "hits": hits})
}

// handleInsert answers POST /objects with an objectJSON body (id ignored).
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var in objectJSON
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		writeError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if in.Start > in.End {
		writeError(w, http.StatusBadRequest, "start %d > end %d", in.Start, in.End)
		return
	}
	var terms []string
	for _, t := range in.Terms {
		terms = append(terms, textutil.Tokenize(t, textutil.Options{})...)
	}
	if len(terms) == 0 {
		writeError(w, http.StatusBadRequest, "no indexable terms")
		return
	}
	s.mu.Lock()
	id := s.engine.Insert(in.Start, in.End, terms...)
	s.engine.RefreshScorer()
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{"id": id})
}

// handleGet answers GET /objects/{id}.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id, err := parseID(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	iv, terms, err := s.engine.Object(id)
	s.mu.RUnlock()
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, objectJSON{ID: id, Start: iv.Start, End: iv.End, Terms: terms})
}

// handleDelete answers DELETE /objects/{id}.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id, err := parseID(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	err = s.engine.Delete(id)
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

// handleTimeline answers GET /timeline?start=S&end=E&q=TERMS&buckets=N:
// a temporal histogram of the matching objects.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	start, err := parseTS(r.URL.Query().Get("start"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad start: %v", err)
		return
	}
	end, err := parseTS(r.URL.Query().Get("end"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad end: %v", err)
		return
	}
	terms := textutil.Tokenize(r.URL.Query().Get("q"), textutil.Options{})
	if len(terms) == 0 {
		writeError(w, http.StatusBadRequest, "q must contain at least one indexable term")
		return
	}
	buckets := 10
	if raw := r.URL.Query().Get("buckets"); raw != "" {
		buckets, err = strconv.Atoi(raw)
		if err != nil || buckets < 1 || buckets > 10000 {
			writeError(w, http.StatusBadRequest, "bad buckets: %q", raw)
			return
		}
	}
	s.mu.RLock()
	tl := s.engine.Timeline(start, end, buckets, terms...)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"buckets": tl})
}

// handleStats answers GET /stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"method":     string(s.engine.Method()),
		"objects":    s.engine.Len(),
		"size_bytes": s.engine.SizeBytes(),
	})
}

func parseTS(raw string) (temporalir.Timestamp, error) {
	if raw == "" {
		return 0, fmt.Errorf("missing")
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("not an integer timestamp: %q", raw)
	}
	return v, nil
}

func parseID(raw string) (temporalir.ObjectID, error) {
	raw = strings.TrimSpace(raw)
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad object id %q", raw)
	}
	return temporalir.ObjectID(v), nil
}
