package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	temporalir "repro"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	b := temporalir.NewBuilder()
	b.Add(0, 100, "alpha", "beta")
	b.Add(50, 150, "alpha", "gamma")
	b.Add(200, 300, "beta")
	engine, err := b.Build(temporalir.IRHintPerf, temporalir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(engine))
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return out
}

func TestSearch(t *testing.T) {
	ts := newTestServer(t)
	out := getJSON(t, ts.URL+"/search?start=0&end=60&q=alpha", http.StatusOK)
	if out["count"].(float64) != 2 {
		t.Errorf("count = %v", out["count"])
	}
	// Conjunction narrows.
	out = getJSON(t, ts.URL+"/search?start=0&end=60&q=alpha+beta", http.StatusOK)
	if out["count"].(float64) != 1 {
		t.Errorf("count = %v", out["count"])
	}
	// Stopwords in free text are dropped, not matched.
	out = getJSON(t, ts.URL+"/search?start=0&end=60&q=the+alpha", http.StatusOK)
	if out["count"].(float64) != 2 {
		t.Errorf("count = %v", out["count"])
	}
	// Unknown term: empty result, not an error.
	out = getJSON(t, ts.URL+"/search?start=0&end=60&q=unseen", http.StatusOK)
	if out["count"].(float64) != 0 {
		t.Errorf("count = %v", out["count"])
	}
}

func TestSearchRanked(t *testing.T) {
	ts := newTestServer(t)
	out := getJSON(t, ts.URL+"/search?start=0&end=60&q=alpha&k=1", http.StatusOK)
	hits := out["hits"].([]any)
	if len(hits) != 1 {
		t.Fatalf("hits = %v", hits)
	}
	hit := hits[0].(map[string]any)
	if _, ok := hit["score"]; !ok {
		t.Error("ranked hit missing score")
	}
	// Object 0 fully covers [0,60]; object 1 only [50,60]: 0 ranks first.
	if hit["id"].(float64) != 0 {
		t.Errorf("top hit = %v", hit)
	}
}

func TestSearchValidation(t *testing.T) {
	ts := newTestServer(t)
	for _, path := range []string{
		"/search?end=60&q=alpha",         // missing start
		"/search?start=x&end=60&q=alpha", // bad start
		"/search?start=0&end=y&q=alpha",  // bad end
		"/search?start=0&end=60",         // missing q
		"/search?start=0&end=60&q=the",   // only stopwords
		"/search?start=0&end=60&q=alpha&k=0",
		"/search?start=0&end=60&q=alpha&k=x",
	} {
		getJSON(t, ts.URL+path, http.StatusBadRequest)
	}
}

func TestInsertGetDelete(t *testing.T) {
	ts := newTestServer(t)
	body := `{"start": 400, "end": 500, "terms": ["Fresh, Document!"]}`
	resp, err := http.Post(ts.URL+"/objects", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("insert status %d", resp.StatusCode)
	}
	var created map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	id := int(created["id"].(float64))

	obj := getJSON(t, fmt.Sprintf("%s/objects/%d", ts.URL, id), http.StatusOK)
	terms := obj["terms"].([]any)
	if len(terms) != 2 || terms[0] != "fresh" || terms[1] != "document" {
		t.Errorf("terms = %v", terms)
	}

	out := getJSON(t, ts.URL+"/search?start=450&end=460&q=fresh", http.StatusOK)
	if out["count"].(float64) != 1 {
		t.Errorf("search after insert: %v", out["count"])
	}

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/objects/%d", ts.URL, id), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}
	out = getJSON(t, ts.URL+"/search?start=450&end=460&q=fresh", http.StatusOK)
	if out["count"].(float64) != 0 {
		t.Errorf("search after delete: %v", out["count"])
	}
}

func TestInsertValidation(t *testing.T) {
	ts := newTestServer(t)
	for _, body := range []string{
		`not json`,
		`{"start": 10, "end": 5, "terms": ["x"]}`,
		`{"start": 0, "end": 5, "terms": []}`,
		`{"start": 0, "end": 5, "terms": ["the", "a"]}`,
	} {
		resp, err := http.Post(ts.URL+"/objects", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestObjectErrors(t *testing.T) {
	ts := newTestServer(t)
	getJSON(t, ts.URL+"/objects/999", http.StatusNotFound)
	getJSON(t, ts.URL+"/objects/abc", http.StatusBadRequest)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/objects/999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("delete missing: status %d", resp.StatusCode)
	}
}

func TestTimeline(t *testing.T) {
	ts := newTestServer(t)
	out := getJSON(t, ts.URL+"/timeline?start=0&end=150&q=alpha&buckets=3", http.StatusOK)
	buckets := out["buckets"].([]any)
	if len(buckets) != 3 {
		t.Fatalf("buckets = %v", buckets)
	}
	first := buckets[0].(map[string]any)
	if first["Count"].(float64) < 1 {
		t.Errorf("first bucket = %v", first)
	}
	// Validation.
	getJSON(t, ts.URL+"/timeline?start=0&end=150&q=alpha&buckets=0", http.StatusBadRequest)
	getJSON(t, ts.URL+"/timeline?start=0&end=150", http.StatusBadRequest)
	getJSON(t, ts.URL+"/timeline?end=150&q=alpha", http.StatusBadRequest)
}

// Concurrent searches against interleaved writes must stay consistent
// (run with -race to check the lock discipline).
func TestConcurrentSearchAndInsert(t *testing.T) {
	ts := newTestServer(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			body := fmt.Sprintf(`{"start": %d, "end": %d, "terms": ["alpha"]}`, 1000+i, 1100+i)
			resp, err := http.Post(ts.URL+"/objects", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}
	}()
	for i := 0; i < 40; i++ {
		resp, err := http.Get(ts.URL + "/search?start=0&end=2000&q=alpha")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search status %d under concurrent writes", resp.StatusCode)
		}
	}
	<-done
	out := getJSON(t, ts.URL+"/search?start=1000&end=1200&q=alpha", http.StatusOK)
	if out["count"].(float64) != 20 {
		t.Errorf("count after concurrent inserts = %v", out["count"])
	}
}

func TestStats(t *testing.T) {
	ts := newTestServer(t)
	out := getJSON(t, ts.URL+"/stats", http.StatusOK)
	if out["objects"].(float64) != 3 {
		t.Errorf("objects = %v", out["objects"])
	}
	if out["method"].(string) != string(temporalir.IRHintPerf) {
		t.Errorf("method = %v", out["method"])
	}
	if out["size_bytes"].(float64) <= 0 {
		t.Errorf("size_bytes = %v", out["size_bytes"])
	}
}
