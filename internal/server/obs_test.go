package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	temporalir "repro"
	"repro/internal/obs"
)

// buildBigEngine builds an engine over n broadly-overlapping objects,
// big enough that a full-range ranked search takes real time.
func buildBigEngine(t *testing.T, n int) *temporalir.Engine {
	t.Helper()
	b := temporalir.NewBuilder()
	for i := 0; i < n; i++ {
		b.Add(int64(i%1000), int64(i%1000+50), "alpha", fmt.Sprintf("w%d", i%50))
	}
	engine, err := b.Build(temporalir.IRHintPerf, temporalir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

// TestReversedIntervalRejected is the regression test for the
// start > end validation gap: GET /search and GET /timeline silently
// canonicalized reversed intervals while the POST endpoints answered
// 400. All four must reject.
func TestReversedIntervalRejected(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name string
		do   func() (*http.Response, error)
	}{
		{"GET /search", func() (*http.Response, error) {
			return http.Get(ts.URL + "/search?start=10&end=0&q=alpha")
		}},
		{"GET /timeline", func() (*http.Response, error) {
			return http.Get(ts.URL + "/timeline?start=10&end=0&q=alpha")
		}},
		{"POST /search/batch", func() (*http.Response, error) {
			return http.Post(ts.URL+"/search/batch", "application/json",
				strings.NewReader(`{"start":10,"end":0,"queries":["alpha"]}`))
		}},
		{"POST /objects", func() (*http.Response, error) {
			return http.Post(ts.URL+"/objects", "application/json",
				strings.NewReader(`{"start":10,"end":0,"terms":["alpha"]}`))
		}},
	}
	for _, tc := range cases {
		resp, err := tc.do()
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s with start>end: status %d, want 400", tc.name, resp.StatusCode)
		}
		if err != nil || !strings.Contains(body.Error, "start 10 > end 0") {
			t.Errorf("%s: error body %q does not name the reversed interval", tc.name, body.Error)
		}
	}
}

// TestRankedSearchTimeout504 is the regression test for the ranked
// path's deadline bug: SearchTopK used to run to completion after a
// single upfront ctx check, so a timeout expiring mid-evaluation never
// produced 504. The timeout here is far too short for a full-range
// ranked scan over the big engine but comfortably outlives request
// parsing, so only mid-evaluation cancellation can answer 504.
func TestRankedSearchTimeout504(t *testing.T) {
	// The select between evaluation and the deadline needs the timer to
	// actually wake the waiting goroutine while the evaluator is busy;
	// on a single-P runtime a tight scoring loop can outrun the 10ms
	// preemption window, so give the scheduler a second P.
	if runtime.GOMAXPROCS(0) < 2 {
		old := runtime.GOMAXPROCS(2)
		defer runtime.GOMAXPROCS(old)
	}
	engine := buildBigEngine(t, 120000)
	engine.SetParallelism(1)
	srv := NewWithOptions(engine, Options{QueryTimeout: time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/search?start=0&end=2000&q=alpha&k=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("ranked search past deadline: status %d, want 504", resp.StatusCode)
	}
}

// TestTimelineAdmissionControl is the regression test for /timeline
// bypassing admission control: with the semaphore full it must answer
// 503 like /search, not evaluate anyway.
func TestTimelineAdmissionControl(t *testing.T) {
	srv := NewWithOptions(buildEngine(t), Options{MaxInFlight: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if !srv.gate.TryAcquire() || !srv.gate.TryAcquire() {
		t.Fatal("could not fill the admission gate")
	}

	resp, err := http.Get(ts.URL + "/timeline?start=0&end=100&q=alpha")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated timeline: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 response missing Retry-After")
	}

	srv.gate.Release()
	resp, err = http.Get(ts.URL + "/timeline?start=0&end=100&q=alpha")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after drain: status %d, want 200", resp.StatusCode)
	}
}

// TestMetricsEndToEnd drives one query, one admission rejection, and
// one compaction through the HTTP surface, then asserts /metrics
// reflects all three and /debug/slow captured the query's trace.
func TestMetricsEndToEnd(t *testing.T) {
	observer := obs.NewObserver(obs.Config{SlowThreshold: -1}) // capture every trace
	srv := NewWithOptions(buildEngine(t), Options{MaxInFlight: 2, Obs: observer})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// One served search.
	resp, err := http.Get(ts.URL + "/search?start=0&end=100&q=alpha")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: status %d", resp.StatusCode)
	}

	// One admission rejection.
	if !srv.gate.TryAcquire() || !srv.gate.TryAcquire() {
		t.Fatal("could not fill the admission gate")
	}
	resp, err = http.Get(ts.URL + "/search?start=0&end=100&q=alpha")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated search: status %d, want 503", resp.StatusCode)
	}
	srv.gate.Release()
	srv.gate.Release()

	// One compaction (needs pending work to not no-op).
	resp, err = http.Post(ts.URL+"/objects", "application/json",
		strings.NewReader(`{"start":5,"end":6,"terms":["delta"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(ts.URL+"/admin/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	text, _ := io.ReadAll(resp.Body)
	page := string(text)
	for _, want := range []string{
		"# TYPE tir_queries_total counter",
		`tir_queries_total{method="search"} 1`,
		"# TYPE tir_query_seconds histogram",
		`tir_query_seconds_count{method="search"} 1`,
		`tir_admission_total{result="rejected"} 1`,
		`tir_admission_total{result="accepted"} 1`,
		"tir_compactions_total 1",
		"tir_engine_objects 4",
		"tir_inflight_queries 0",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q\n---\n%s", want, page)
		}
	}

	slow := getJSON(t, ts.URL+"/debug/slow", http.StatusOK)
	entries, _ := slow["entries"].([]any)
	if len(entries) == 0 {
		t.Fatal("/debug/slow has no entries with an always-capture threshold")
	}
	methods := map[string]bool{}
	for _, e := range entries {
		m, _ := e.(map[string]any)
		method, _ := m["method"].(string)
		methods[method] = true
	}
	if !methods["search"] {
		t.Errorf("slow log entries %v lack a 'search' trace", methods)
	}
	// The search trace must carry a per-stage breakdown.
	for _, e := range entries {
		m, _ := e.(map[string]any)
		if m["method"] == "search" {
			stages, _ := m["stages"].([]any)
			if len(stages) == 0 {
				t.Errorf("search trace has no stage breakdown: %v", m)
			}
		}
	}
}

// TestTracingDisabledStillCounts checks metrics work with tracing off
// and the slow log stays empty.
func TestTracingDisabledStillCounts(t *testing.T) {
	observer := obs.NewObserver(obs.Config{SlowThreshold: -1, DisableTracing: true})
	srv := NewWithOptions(buildEngine(t), Options{Obs: observer})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/search?start=0&end=100&q=alpha")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), `tir_queries_total{method="search"} 1`) {
		t.Error("query counter not incremented with tracing disabled")
	}
	slow := getJSON(t, ts.URL+"/debug/slow", http.StatusOK)
	if entries, _ := slow["entries"].([]any); len(entries) != 0 {
		t.Errorf("slow log has %d entries with tracing disabled", len(entries))
	}
}
