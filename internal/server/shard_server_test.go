package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	temporalir "repro"
	"repro/internal/tenant"
	"repro/internal/testutil"
)

// buildShardedEngine mirrors buildEngine's tiny corpus on a 2-shard
// engine, so handler-level expectations carry over unchanged.
func buildShardedEngine(t *testing.T) *temporalir.Sharded {
	t.Helper()
	b := temporalir.NewBuilder()
	b.Add(0, 100, "alpha", "beta")
	b.Add(50, 150, "alpha", "gamma")
	b.Add(200, 300, "beta")
	sh, err := b.BuildSharded(temporalir.IRHintPerf, temporalir.Options{}, temporalir.ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// errBody decodes the JSON error body shared by every rejection.
func errBody(t *testing.T, resp *http.Response) (msg string, retryMs int64) {
	t.Helper()
	var out struct {
		Error        string `json:"error"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding error body: %v", err)
	}
	return out.Error, out.RetryAfterMS
}

// TestOverloadRetryHintScalesWithCapacity: the 503 hint is derived from
// in-flight pressure (per-query budget over slot count), so a wide gate
// hints a shorter wait than a narrow one — and both are millisecond
// precision in the body while the header stays a whole-second ceiling.
func TestOverloadRetryHintScalesWithCapacity(t *testing.T) {
	hintFor := func(maxInFlight int) int64 {
		srv := NewWithOptions(buildEngine(t), Options{MaxInFlight: maxInFlight})
		ts := httptest.NewServer(srv)
		defer ts.Close()
		for i := 0; i < maxInFlight; i++ {
			if !srv.gate.TryAcquire() {
				t.Fatal("could not fill the admission gate")
			}
		}
		resp, err := http.Get(ts.URL + "/search?start=0&end=100&q=alpha")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("saturated search: status %d, want 503", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("503 missing Retry-After header")
		}
		_, ms := errBody(t, resp)
		return ms
	}
	narrow := hintFor(2) // 5s default budget / 2 slots, clamped to 1s
	wide := hintFor(200) // 5s / 200 = 25ms
	if narrow < wide {
		t.Fatalf("narrow-gate hint %dms < wide-gate hint %dms; hint is not load-derived", narrow, wide)
	}
	for _, ms := range []int64{narrow, wide} {
		if ms < minRetryHint.Milliseconds() || ms > maxRetryHint.Milliseconds() {
			t.Fatalf("hint %dms outside [%v, %v]", ms, minRetryHint, maxRetryHint)
		}
	}
	if wide >= 1000 {
		t.Fatalf("wide-gate hint %dms still the old one-second floor", wide)
	}
}

// TestRateLimitRetryHintMillisecond: a token-bucket wait of ~100ms must
// reach the client as ~100ms in retry_after_ms, not floored to a full
// second; the header keeps its whole-second contract.
func TestRateLimitRetryHintMillisecond(t *testing.T) {
	srv := NewWithOptions(buildEngine(t), Options{
		TenantLimits: func(id string) tenant.Limits {
			return tenant.Limits{QueriesPerSec: 10, Burst: 1}
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	url := ts.URL + "/search?start=0&end=100&q=alpha"
	resp := tenantGet(t, url, "throttled")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("burst query: status %d, want 200", resp.StatusCode)
	}
	resp = tenantGet(t, url, "throttled")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate query: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("429 Retry-After header = %q, want the 1s ceiling", ra)
	}
	_, ms := errBody(t, resp)
	if ms <= 0 || ms >= 1000 {
		t.Fatalf("429 retry_after_ms = %d, want a sub-second token-bucket wait", ms)
	}
}

// TestRegistryFullRetryHint: rejecting a tenant the registry cannot
// admit also carries the machine-readable hint.
func TestRegistryFullRetryHint(t *testing.T) {
	srv := NewWithOptions(buildEngine(t), Options{MaxTenants: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := tenantGet(t, ts.URL+"/search?start=0&end=100&q=alpha", "overflow")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow tenant: status %d, want 429", resp.StatusCode)
	}
	_, ms := errBody(t, resp)
	// Without a spill directory the slot cannot free soon: the hint is
	// the full ceiling, not an optimistic few milliseconds.
	if ms != maxRetryHint.Milliseconds() {
		t.Fatalf("registry-full retry_after_ms = %d, want %d", ms, maxRetryHint.Milliseconds())
	}
}

// TestShardedServer serves a sharded seed end to end: searches answer
// exactly like the single-store server, /stats gains the shard map and
// coordinator counters, /metrics exposes the tir_shard_* family, and a
// second tenant gets a sharded sibling engine.
func TestShardedServer(t *testing.T) {
	srv := New(buildShardedEngine(t))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/search?start=0&end=100&q=alpha")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Count int `json:"count"`
		Hits  []struct {
			ID temporalir.ObjectID `json:"id"`
		} `json:"hits"`
		Partial bool `json:"partial"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out.Count != 2 || out.Partial {
		t.Fatalf("sharded search: status %d, body %+v", resp.StatusCode, out)
	}
	if out.Hits[0].ID != 0 || out.Hits[1].ID != 1 {
		t.Fatalf("sharded search hits = %+v, want ids 0,1", out.Hits)
	}

	// Ranked and batch paths answer through the coordinator too.
	resp, err = http.Get(ts.URL + "/search?start=0&end=100&q=alpha&k=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded topk: status %d, want 200", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/search/batch", "application/json",
		strings.NewReader(`{"start":0,"end":100,"queries":["alpha","beta"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded batch: status %d, want 200", resp.StatusCode)
	}

	// /stats exposes the shard rows and coordinator counters.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Shards []struct {
			Shard   int `json:"shard"`
			Objects int `json:"objects"`
		} `json:"shards"`
		Coordinator struct {
			Shards    int    `json:"shards"`
			Partition string `json:"partition"`
			Queries   uint64 `json:"queries"`
		} `json:"coordinator"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(stats.Shards) != 2 || stats.Coordinator.Shards != 2 {
		t.Fatalf("/stats shard view: %+v", stats)
	}
	if stats.Coordinator.Queries == 0 {
		t.Fatal("/stats coordinator did not count the searches")
	}
	total := 0
	for _, sh := range stats.Shards {
		total += sh.Objects
	}
	if total != 3 {
		t.Fatalf("/stats shard objects sum to %d, want 3", total)
	}

	// /metrics exposes the shard family.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"tir_shard_queries_total",
		"tir_shard_cut_total",
		"tir_shard_pruned_total",
		`tir_shard_objects{shard="0"}`,
		`tir_shard_objects{shard="1"}`,
		`tir_shard_compactions_total{shard="0"}`,
	} {
		if !strings.Contains(string(page), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// A second tenant's engine is a sharded sibling: its stats carry the
	// shard view and its writes/reads work.
	resp = tenantPost(t, ts.URL+"/objects", "acme", `{"start":10,"end":20,"terms":["delta"]}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("tenant insert on sharded sibling: status %d, want 201", resp.StatusCode)
	}
	resp = tenantGet(t, ts.URL+"/stats", "acme")
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(stats.Shards) != 2 {
		t.Fatalf("sibling tenant is not sharded: %+v", stats)
	}
	resp = tenantGet(t, ts.URL+"/search?start=0&end=100&q=delta", "acme")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"count":1`) {
		t.Fatalf("sibling tenant search: status %d body %s", resp.StatusCode, body)
	}
}

// TestShardedServerPartialContract drives a sharded seed with a 1ns
// per-shard deadline over HTTP: every response must be a complete 200,
// a 200 with the explicit partial fields, or a 504 — and the deadline
// must actually bite at least once across the sweep.
func TestShardedServerPartialContract(t *testing.T) {
	cfg := testutil.CollectionConfig{N: 1500, DomainLo: 0, DomainHi: 20000, Dict: 10, MaxDesc: 5, Seed: 321}
	c := testutil.RandomCollection(cfg)
	b := temporalir.NewBuilder()
	for i := range c.Objects {
		o := &c.Objects[i]
		terms := make([]string, len(o.Elems))
		for j, e := range o.Elems {
			terms[j] = fmt.Sprintf("t%03d", e)
		}
		b.Add(o.Interval.Start, o.Interval.End, terms...)
	}
	sh, err := b.BuildSharded(temporalir.TIF, temporalir.Options{}, temporalir.ShardedOptions{
		Shards: 4, ShardTimeout: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(sh))
	defer ts.Close()

	nonComplete := 0
	for i := 0; i < 60; i++ {
		resp, err := http.Get(ts.URL + fmt.Sprintf("/search?start=0&end=20000&q=t%03d", i%10))
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusGatewayTimeout:
			nonComplete++
			resp.Body.Close()
		case http.StatusOK:
			var out struct {
				Partial   bool  `json:"partial"`
				ShardsCut []int `json:"shards_cut"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if out.Partial != (len(out.ShardsCut) > 0) {
				t.Fatalf("request %d: partial=%v but shards_cut=%v", i, out.Partial, out.ShardsCut)
			}
			if out.Partial {
				nonComplete++
			}
		default:
			resp.Body.Close()
			t.Fatalf("request %d: unexpected status %d", i, resp.StatusCode)
		}
	}
	if nonComplete == 0 {
		t.Fatal("1ns shard deadline never produced a partial or 504 across 60 requests")
	}
}
