package sharding

import (
	"testing"
	"testing/quick"

	"repro/internal/bruteforce"
	"repro/internal/model"
	"repro/internal/testutil"
)

// Property: any shard budget (including unlimited), any workload shape,
// any query — results equal the oracle.
func TestShardingQuick(t *testing.T) {
	f := func(budgetRaw uint8, seed int64, q0, q1 uint16, e0 uint8) bool {
		budget := int(budgetRaw % 20) // 0 = unlimited ideal shards
		cfg := testutil.CollectionConfig{N: 120, DomainLo: 0, DomainHi: 3000, Dict: 15, MaxDesc: 4, Seed: seed}
		c := testutil.RandomCollection(cfg)
		ix := New(c, WithMaxShards(budget))
		oracle := bruteforce.New(c)
		q := model.Query{
			Interval: model.Canon(model.Timestamp(q0)%3001, model.Timestamp(q1)%3001),
			Elems:    []model.ElemID{model.ElemID(e0) % 15},
		}
		return model.EqualIDs(testutil.Canonical(ix.Query(q)), testutil.Canonical(oracle.Query(q)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: sharding never replicates — entries equal total postings.
func TestNoReplicationQuick(t *testing.T) {
	f := func(budgetRaw uint8, seed int64) bool {
		budget := int(budgetRaw % 10)
		cfg := testutil.CollectionConfig{N: 90, DomainLo: 0, DomainHi: 1500, Dict: 8, MaxDesc: 4, Seed: seed}
		c := testutil.RandomCollection(cfg)
		ix := New(c, WithMaxShards(budget))
		want := 0
		for i := range c.Objects {
			want += len(c.Objects[i].Elems)
		}
		got := 0
		for e := range ix.shards {
			for i := range ix.shards[e] {
				got += len(ix.shards[e][i].entries)
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
