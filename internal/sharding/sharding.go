// Package sharding implements tIF+Sharding, the temporal inverted file of
// Anand et al. (Section 2.2): every postings list is horizontally grouped
// into shards ordered by interval start. Ideal shards also satisfy the
// staircase property (non-decreasing ends), which makes both boundaries of
// the temporally qualifying range binary-searchable; a cost-aware merge
// step then caps the shard count per list, trading the staircase guarantee
// of the merged shards for fewer probes. No entry is ever replicated, so
// no result de-duplication is needed.
package sharding

import (
	"sort"

	"repro/internal/dict"
	"repro/internal/model"
	"repro/internal/postings"
)

// shard holds postings sorted by interval start. ideal marks shards that
// still satisfy the staircase property, enabling the second binary search.
type shard struct {
	entries []postings.Posting // sorted by Interval.Start
	ideal   bool
}

// lastEnd returns the End of the most recently appended entry.
func (s *shard) lastEnd() model.Timestamp {
	return s.entries[len(s.entries)-1].Interval.End
}

// Index is the tIF+Sharding index.
type Index struct {
	maxShards int
	shards    [][]shard // per element
	freqs     []int
	live      int
}

// Option configures New.
type Option func(*config)

type config struct {
	maxShards int
}

// DefaultMaxShards caps the shards per postings list after cost-aware
// merging. Anand et al. observe that the number of ideal shards can be
// overwhelming; a small two-digit budget retains most of the pruning.
const DefaultMaxShards = 16

// WithMaxShards sets the per-list shard budget (0 keeps every ideal shard).
func WithMaxShards(n int) Option {
	return func(c *config) { c.maxShards = n }
}

// New builds a tIF+Sharding index over a collection.
func New(c *model.Collection, opts ...Option) *Index {
	cfg := config{maxShards: DefaultMaxShards}
	for _, o := range opts {
		o(&cfg)
	}
	ix := &Index{
		maxShards: cfg.maxShards,
		shards:    make([][]shard, c.DictSize),
		freqs:     make([]int, c.DictSize),
	}
	// Bulk build: group postings per element, then shard each list.
	lists := make([][]postings.Posting, c.DictSize)
	for i := range c.Objects {
		o := &c.Objects[i]
		for _, e := range o.Elems {
			lists[e] = append(lists[e], postings.Posting{ID: o.ID, Interval: o.Interval})
			ix.freqs[e]++
		}
		ix.live++
	}
	for e := range lists {
		ix.shards[e] = buildShards(lists[e], cfg.maxShards)
	}
	return ix
}

// buildShards sorts postings by start, assigns them greedily to the first
// shard whose last end does not exceed the entry's end (producing ideal
// staircase shards), then merges down to the budget.
func buildShards(list []postings.Posting, budget int) []shard {
	if len(list) == 0 {
		return nil
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].Interval.Start != list[j].Interval.Start {
			return list[i].Interval.Start < list[j].Interval.Start
		}
		return list[i].Interval.End < list[j].Interval.End
	})
	var shards []shard
	for _, p := range list {
		placed := false
		for i := range shards {
			if shards[i].lastEnd() <= p.Interval.End {
				shards[i].entries = append(shards[i].entries, p)
				placed = true
				break
			}
		}
		if !placed {
			shards = append(shards, shard{entries: []postings.Posting{p}, ideal: true})
		}
	}
	return mergeShards(shards, budget)
}

// mergeShards performs the cost-aware merging of Anand et al.: while over
// budget, merge the two smallest shards (the cheapest extra scan cost),
// re-sorting by start. Merged shards lose the staircase property.
func mergeShards(shards []shard, budget int) []shard {
	if budget <= 0 {
		return shards
	}
	for len(shards) > budget {
		a, b := smallestTwo(shards)
		merged := append(shards[a].entries, shards[b].entries...)
		sort.Slice(merged, func(i, j int) bool {
			return merged[i].Interval.Start < merged[j].Interval.Start
		})
		shards[a] = shard{entries: merged, ideal: false}
		shards = append(shards[:b], shards[b+1:]...)
	}
	return shards
}

func smallestTwo(shards []shard) (a, b int) {
	a, b = 0, 1
	if len(shards[b].entries) < len(shards[a].entries) {
		a, b = b, a
	}
	for i := 2; i < len(shards); i++ {
		n := len(shards[i].entries)
		if n < len(shards[a].entries) {
			b = a
			a = i
		} else if n < len(shards[b].entries) {
			b = i
		}
	}
	if a > b {
		a, b = b, a
	}
	return a, b
}

// Insert adds the object to each element's shard set with a positioned
// insert that preserves start order. It prefers a shard where the
// staircase property survives (predecessor end <= o.end <= successor
// end); failing that, the smallest shard takes the entry and drops its
// ideal flag. No shard is ever created or re-merged on the update path —
// the cost-aware budget only matters at bulk build.
func (ix *Index) Insert(o model.Object) {
	for _, e := range o.Elems {
		ix.growTo(int(e) + 1)
		p := postings.Posting{ID: o.ID, Interval: o.Interval}
		if len(ix.shards[e]) == 0 {
			ix.shards[e] = []shard{{entries: []postings.Posting{p}, ideal: true}}
			ix.freqs[e]++
			continue
		}
		target, pos := -1, 0
		smallest := 0
		for i := range ix.shards[e] {
			s := &ix.shards[e][i]
			if len(s.entries) < len(ix.shards[e][smallest].entries) {
				smallest = i
			}
			k := sort.Search(len(s.entries), func(k int) bool {
				return s.entries[k].Interval.Start > p.Interval.Start
			})
			if !s.ideal {
				continue
			}
			if k > 0 && s.entries[k-1].Interval.End > p.Interval.End {
				continue
			}
			if k < len(s.entries) && s.entries[k].Interval.End < p.Interval.End {
				continue
			}
			target, pos = i, k
			break
		}
		if target == -1 {
			target = smallest
			s := &ix.shards[e][target]
			pos = sort.Search(len(s.entries), func(k int) bool {
				return s.entries[k].Interval.Start > p.Interval.Start
			})
			s.ideal = false
		}
		s := &ix.shards[e][target]
		s.entries = append(s.entries, postings.Posting{})
		copy(s.entries[pos+1:], s.entries[pos:])
		s.entries[pos] = p
		ix.freqs[e]++
	}
	ix.live++
}

func (ix *Index) growTo(n int) {
	for len(ix.shards) < n {
		ix.shards = append(ix.shards, nil)
		ix.freqs = append(ix.freqs, 0)
	}
}

// Delete locates the object's entry in every shard of its element lists
// (binary search on start, then a scan over the equal-start run) and sets
// the dead bit, preserving the start order the impact probes rely on.
func (ix *Index) Delete(o model.Object) {
	found := false
	for _, e := range o.Elems {
		if int(e) >= len(ix.shards) {
			continue
		}
		hit := false
		for i := range ix.shards[e] {
			s := &ix.shards[e][i]
			lo := sort.Search(len(s.entries), func(k int) bool {
				return s.entries[k].Interval.Start >= o.Interval.Start
			})
			for k := lo; k < len(s.entries) && s.entries[k].Interval.Start == o.Interval.Start; k++ {
				if postings.LiveID(s.entries[k].ID) == o.ID && !postings.IsDead(s.entries[k].ID) {
					s.entries[k].ID = postings.MarkDead(s.entries[k].ID)
					hit = true
				}
			}
		}
		if hit {
			ix.freqs[e]--
			found = true
		}
	}
	if found {
		ix.live--
	}
}

// Len returns the number of live objects.
func (ix *Index) Len() int { return ix.live }

// gather appends the ids of live entries of element e whose interval
// overlaps q, probing each shard: binary search the start cutoff (entries
// starting after q.end cannot qualify — the impact-list probe), and for
// ideal shards also binary search the first qualifying end.
func (ix *Index) gather(e model.ElemID, q model.Interval, dst []model.ObjectID) []model.ObjectID {
	if int(e) >= len(ix.shards) {
		return dst
	}
	for i := range ix.shards[e] {
		s := &ix.shards[e][i]
		cut := sort.Search(len(s.entries), func(k int) bool {
			return s.entries[k].Interval.Start > q.End
		})
		lo := 0
		if s.ideal {
			// Staircase: ends are non-decreasing, so qualifying entries
			// form the suffix with End >= q.Start.
			lo = sort.Search(cut, func(k int) bool {
				return s.entries[k].Interval.End >= q.Start
			})
			for k := lo; k < cut; k++ {
				if !postings.IsDead(s.entries[k].ID) {
					dst = append(dst, s.entries[k].ID)
				}
			}
			continue
		}
		for k := lo; k < cut; k++ {
			if s.entries[k].Interval.End >= q.Start && !postings.IsDead(s.entries[k].ID) {
				dst = append(dst, s.entries[k].ID)
			}
		}
	}
	return dst
}

// Query evaluates a time-travel IR query: gather temporally qualifying ids
// per element in ascending frequency order and intersect the id sets.
// Shards are start-ordered, so each gathered set is sorted before merging.
func (ix *Index) Query(q model.Query) []model.ObjectID {
	if len(q.Elems) == 0 {
		var out []model.ObjectID
		for e := range ix.shards {
			out = ix.gather(model.ElemID(e), q.Interval, out)
		}
		model.SortIDs(out)
		return model.DedupIDs(out)
	}
	plan := dict.PlanOrder(q.Elems, ix.freqs)
	cands := ix.gather(plan[0], q.Interval, nil)
	model.SortIDs(cands)
	var buf []model.ObjectID
	for _, e := range plan[1:] {
		if len(cands) == 0 {
			return nil
		}
		buf = ix.gather(e, q.Interval, buf[:0])
		model.SortIDs(buf)
		cands = postings.IntersectAnySorted(cands, buf, cands[:0])
	}
	return cands
}

// SizeBytes estimates resident size: 16-byte entries (no replication) plus
// shard headers.
func (ix *Index) SizeBytes() int64 {
	var total int64
	for e := range ix.shards {
		for i := range ix.shards[e] {
			total += int64(cap(ix.shards[e][i].entries))*16 + 32
		}
	}
	return total + int64(len(ix.freqs))*8
}

// ShardCount returns the number of shards for an element (testing hook).
func (ix *Index) ShardCount(e model.ElemID) int {
	if int(e) >= len(ix.shards) {
		return 0
	}
	return len(ix.shards[e])
}

// Ideal reports whether shard i of element e still satisfies the staircase
// property (testing hook).
func (ix *Index) Ideal(e model.ElemID, i int) bool { return ix.shards[e][i].ideal }
