package sharding

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/model"
	"repro/internal/postings"
	"repro/internal/testutil"
)

func runningExample() *model.Collection {
	var c model.Collection
	c.AppendObject(model.Interval{Start: 10, End: 15}, []model.ElemID{0, 1, 2}) // o1
	c.AppendObject(model.Interval{Start: 2, End: 5}, []model.ElemID{0, 2})      // o2
	c.AppendObject(model.Interval{Start: 0, End: 2}, []model.ElemID{1})         // o3
	c.AppendObject(model.Interval{Start: 0, End: 15}, []model.ElemID{0, 1, 2})  // o4
	c.AppendObject(model.Interval{Start: 3, End: 7}, []model.ElemID{1, 2})      // o5
	c.AppendObject(model.Interval{Start: 2, End: 11}, []model.ElemID{2})        // o6
	c.AppendObject(model.Interval{Start: 4, End: 14}, []model.ElemID{0, 2})     // o7
	c.AppendObject(model.Interval{Start: 2, End: 3}, []model.ElemID{2})         // o8
	return &c
}

func TestRunningExample(t *testing.T) {
	ix := New(runningExample())
	got := ix.Query(model.Query{Interval: model.Interval{Start: 4, End: 6}, Elems: []model.ElemID{0, 2}})
	want := []model.ObjectID{1, 3, 6}
	if !model.EqualIDs(testutil.Canonical(got), want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestIdealShardsStaircase(t *testing.T) {
	// With no budget every shard must be ideal and satisfy the staircase
	// property: both starts and ends non-decreasing.
	rng := rand.New(rand.NewSource(9))
	var c model.Collection
	for i := 0; i < 300; i++ {
		s := model.Timestamp(rng.Intn(1000))
		e := s + model.Timestamp(rng.Intn(200))
		c.AppendObject(model.Interval{Start: s, End: e}, []model.ElemID{0})
	}
	ix := New(&c, WithMaxShards(0))
	if ix.ShardCount(0) == 0 {
		t.Fatal("no shards built")
	}
	for i := 0; i < ix.ShardCount(0); i++ {
		if !ix.Ideal(0, i) {
			t.Fatalf("shard %d not ideal with unlimited budget", i)
		}
		entries := ix.shards[0][i].entries
		for k := 1; k < len(entries); k++ {
			if entries[k].Interval.Start < entries[k-1].Interval.Start {
				t.Fatalf("shard %d: starts decrease at %d", i, k)
			}
			if entries[k].Interval.End < entries[k-1].Interval.End {
				t.Fatalf("shard %d: staircase violated at %d", i, k)
			}
		}
	}
}

func TestBudgetEnforced(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var c model.Collection
	for i := 0; i < 500; i++ {
		s := model.Timestamp(rng.Intn(1000))
		e := s + model.Timestamp(rng.Intn(500))
		c.AppendObject(model.Interval{Start: s, End: e}, []model.ElemID{0})
	}
	ix := New(&c, WithMaxShards(4))
	if n := ix.ShardCount(0); n > 4 {
		t.Errorf("shard count %d exceeds budget 4", n)
	}
	// Merged shards must still be start-sorted.
	for i := 0; i < ix.ShardCount(0); i++ {
		entries := ix.shards[0][i].entries
		if !sort.SliceIsSorted(entries, func(a, b int) bool {
			return entries[a].Interval.Start < entries[b].Interval.Start
		}) {
			t.Errorf("merged shard %d lost start order", i)
		}
	}
}

func TestOracleEquivalence(t *testing.T) {
	for _, budget := range []int{0, 2, 8, 64} {
		for seed := int64(0); seed < 3; seed++ {
			cfg := testutil.DefaultConfig(seed)
			c := testutil.RandomCollection(cfg)
			ix := New(c, WithMaxShards(budget))
			testutil.CheckAgainstOracle(t, "sharding", ix, c, testutil.RandomQueries(cfg, 150, seed+1))
		}
	}
}

func TestUpdates(t *testing.T) {
	cfg := testutil.DefaultConfig(31)
	testutil.CheckUpdates(t, "sharding", func(c *model.Collection) testutil.UpdatableIndex {
		return New(c)
	}, cfg)
}

func TestInsertPreservesShardInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var c model.Collection
	for i := 0; i < 200; i++ {
		s := model.Timestamp(rng.Intn(1000))
		c.AppendObject(model.Interval{Start: s, End: s + model.Timestamp(rng.Intn(300))}, []model.ElemID{0})
	}
	ix := New(&c, WithMaxShards(6))
	before := ix.ShardCount(0)
	// Insert out-of-order objects; shard count must not grow and start
	// order must survive; ideal shards must still satisfy the staircase.
	for i := 0; i < 150; i++ {
		s := model.Timestamp(rng.Intn(1000))
		ix.Insert(model.Object{
			ID:       model.ObjectID(1000 + i),
			Interval: model.Interval{Start: s, End: s + model.Timestamp(rng.Intn(300))},
			Elems:    []model.ElemID{0},
		})
	}
	if got := ix.ShardCount(0); got != before {
		t.Errorf("shard count changed %d -> %d on inserts", before, got)
	}
	for i := 0; i < ix.ShardCount(0); i++ {
		entries := ix.shards[0][i].entries
		if !sort.SliceIsSorted(entries, func(a, b int) bool {
			return entries[a].Interval.Start < entries[b].Interval.Start
		}) {
			t.Fatalf("shard %d lost start order", i)
		}
		if ix.shards[0][i].ideal {
			for k := 1; k < len(entries); k++ {
				if entries[k].Interval.End < entries[k-1].Interval.End {
					t.Fatalf("ideal shard %d violates staircase after inserts", i)
				}
			}
		}
	}
}

func TestDeleteMarksDeadPreservingOrder(t *testing.T) {
	c := runningExample()
	ix := New(c)
	o4 := c.Objects[3]
	ix.Delete(o4)
	got := ix.Query(model.Query{Interval: model.Interval{Start: 4, End: 6}, Elems: []model.ElemID{0, 2}})
	want := []model.ObjectID{1, 6}
	if !model.EqualIDs(testutil.Canonical(got), want) {
		t.Errorf("after delete: got %v, want %v", got, want)
	}
	// Double delete must not decrement twice.
	before := ix.Len()
	ix.Delete(o4)
	if ix.Len() != before {
		t.Error("double delete changed Len")
	}
	// Entries stay start-sorted even with dead bits set.
	for e := range ix.shards {
		for i := range ix.shards[e] {
			entries := ix.shards[e][i].entries
			if !sort.SliceIsSorted(entries, func(a, b int) bool {
				return entries[a].Interval.Start < entries[b].Interval.Start
			}) {
				t.Fatalf("elem %d shard %d unsorted after delete", e, i)
			}
		}
	}
}

func TestDeadBitHelpers(t *testing.T) {
	id := model.ObjectID(42)
	dead := postings.MarkDead(id)
	if !postings.IsDead(dead) || postings.IsDead(id) {
		t.Error("dead bit mishandled")
	}
	if postings.LiveID(dead) != id {
		t.Error("LiveID failed to strip")
	}
}

func TestNoReplication(t *testing.T) {
	// Total entries across shards must equal the sum of description sizes.
	c := runningExample()
	ix := New(c, WithMaxShards(0))
	total := 0
	for e := range ix.shards {
		for i := range ix.shards[e] {
			total += len(ix.shards[e][i].entries)
		}
	}
	if total != 15 {
		t.Errorf("entries = %d, want 15 (no replication)", total)
	}
}

func TestEmptyAndUnknown(t *testing.T) {
	var c model.Collection
	ix := New(&c)
	if got := ix.Query(model.Query{Interval: model.Interval{Start: 0, End: 1}, Elems: []model.ElemID{3}}); len(got) != 0 {
		t.Errorf("got %v from empty index", got)
	}
	ix2 := New(runningExample())
	if got := ix2.Query(model.Query{Interval: model.Interval{Start: 0, End: 15}, Elems: []model.ElemID{0, 99}}); len(got) != 0 {
		t.Errorf("unknown element should kill the conjunction, got %v", got)
	}
}
