// Package slicing implements tIF+Slicing, the temporal inverted file of
// Berberich et al. (Section 2.2): the time domain is broken into a fixed
// number of disjoint slices and every postings list is vertically divided
// into per-slice sub-lists, replicating an entry into every slice its
// interval overlaps. Queries touch only the sub-lists of temporally
// relevant slices; duplicates from replication are suppressed with the
// reference-value method of Dittrich & Seeger instead of hashing.
package slicing

import (
	"repro/internal/dict"
	"repro/internal/model"
	"repro/internal/postings"
)

// Index is the tIF+Slicing index.
type Index struct {
	numSlices int
	lo, hi    model.Timestamp
	width     int64
	lists     [][][]postings.Posting // [elem][slice] -> id-sorted sub-list
	freqs     []int
	live      int
}

// Option configures New.
type Option func(*config)

type config struct {
	numSlices int
}

// WithSlices fixes the number of time-domain slices. The paper's tuned
// default after the Figure 8 sweep is 50.
func WithSlices(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.numSlices = n
		}
	}
}

// DefaultSlices is the slice count the paper settles on after tuning.
const DefaultSlices = 50

// New builds a tIF+Slicing index over a collection.
func New(c *model.Collection, opts ...Option) *Index {
	cfg := config{numSlices: DefaultSlices}
	for _, o := range opts {
		o(&cfg)
	}
	span, ok := c.Span()
	if !ok {
		span = model.NewInterval(0, 0)
	}
	ix := &Index{
		numSlices: cfg.numSlices,
		lo:        span.Start,
		hi:        span.End,
		lists:     make([][][]postings.Posting, c.DictSize),
		freqs:     make([]int, c.DictSize),
	}
	ix.width = (int64(span.End-span.Start) + int64(cfg.numSlices)) / int64(cfg.numSlices)
	if ix.width < 1 {
		ix.width = 1
	}
	for i := range c.Objects {
		ix.Insert(c.Objects[i])
	}
	return ix
}

// NumSlices returns the configured slice count.
func (ix *Index) NumSlices() int { return ix.numSlices }

// sliceOf maps a timestamp to its slice, clamping values outside the
// domain the index was built for (late insertions may exceed it; clamped
// routing keeps query results exact because all comparisons use the
// original timestamps).
func (ix *Index) sliceOf(t model.Timestamp) int {
	if t <= ix.lo {
		return 0
	}
	s := int(int64(t-ix.lo) / ix.width)
	if s >= ix.numSlices {
		return ix.numSlices - 1
	}
	return s
}

// Insert replicates the object's postings entry into every slice its
// interval overlaps, for each of its elements.
func (ix *Index) Insert(o model.Object) {
	first, last := ix.sliceOf(o.Interval.Start), ix.sliceOf(o.Interval.End)
	for _, e := range o.Elems {
		ix.growTo(int(e) + 1)
		if ix.lists[e] == nil {
			ix.lists[e] = make([][]postings.Posting, ix.numSlices)
		}
		for s := first; s <= last; s++ {
			ix.lists[e][s] = append(ix.lists[e][s], postings.Posting{ID: o.ID, Interval: o.Interval})
		}
		ix.freqs[e]++
	}
	ix.live++
}

func (ix *Index) growTo(n int) {
	for len(ix.lists) < n {
		ix.lists = append(ix.lists, nil)
		ix.freqs = append(ix.freqs, 0)
	}
}

// Delete locates and tombstones the object's entries in every overlapped
// slice of every element list.
func (ix *Index) Delete(o model.Object) {
	first, last := ix.sliceOf(o.Interval.Start), ix.sliceOf(o.Interval.End)
	found := false
	for _, e := range o.Elems {
		if int(e) >= len(ix.lists) || ix.lists[e] == nil {
			continue
		}
		hit := false
		for s := first; s <= last; s++ {
			l := postings.List(ix.lists[e][s])
			if pos, ok := l.FindID(o.ID); ok && !postings.IsTombstone(l[pos].Interval) {
				l[pos].Interval = postings.Tombstone
				hit = true
			}
		}
		if hit {
			ix.freqs[e]--
			found = true
		}
	}
	if found {
		ix.live--
	}
}

// Len returns the number of live objects.
func (ix *Index) Len() int { return ix.live }

// Query evaluates a time-travel IR query: temporal filtering with
// reference-value de-duplication over the relevant sub-lists of the least
// frequent element, then per-slice merge intersections for the rest.
func (ix *Index) Query(q model.Query) []model.ObjectID {
	if len(q.Elems) == 0 {
		return ix.queryTemporalOnly(q.Interval)
	}
	plan := dict.PlanOrder(q.Elems, ix.freqs)
	first := plan[0]
	if int(first) >= len(ix.lists) || ix.lists[first] == nil {
		return nil
	}
	sf, sl := ix.sliceOf(q.Interval.Start), ix.sliceOf(q.Interval.End)

	// Phase 1: candidates from the least frequent element. Each qualifying
	// object is collected exactly once — from the slice holding its
	// reference value — so the per-slice id-sorted outputs just need one
	// k-way merge.
	perSlice := make([][]model.ObjectID, 0, sl-sf+1)
	for s := sf; s <= sl; s++ {
		var ids []model.ObjectID
		for _, p := range ix.lists[first][s] {
			if p.Interval.Overlaps(q.Interval) &&
				ix.sliceOf(postings.RefValue(p.Interval.Start, q.Interval.Start)) == s {
				ids = append(ids, p.ID)
			}
		}
		perSlice = append(perSlice, ids)
	}
	cands := postings.MergeSortedIDLists(perSlice)

	// Phase 2: intersect candidates with each remaining element. A live
	// candidate overlaps the query, so any replica of it in a relevant
	// sub-list proves the element is in its description; the keep-mask
	// is idempotent, so replicated matches need no de-duplication at all
	// (only phase 1, which *emits*, needs the reference values).
	keep := make([]bool, len(cands))
	for _, e := range plan[1:] {
		if len(cands) == 0 {
			return nil
		}
		if int(e) >= len(ix.lists) || ix.lists[e] == nil {
			return nil
		}
		for i := range keep {
			keep[i] = false
		}
		for s := sf; s <= sl; s++ {
			sub := ix.lists[e][s]
			i, j := 0, 0
			for i < len(cands) && j < len(sub) {
				switch {
				case cands[i] < sub[j].ID:
					i++
				case cands[i] > sub[j].ID:
					j++
				default:
					if !postings.IsTombstone(sub[j].Interval) {
						keep[i] = true
					}
					i++
					j++
				}
			}
		}
		w := 0
		for i, k := range keep {
			if k {
				cands[w] = cands[i]
				w++
			}
		}
		cands = cands[:w]
		keep = keep[:w]
	}
	return cands
}

// QueryHashDedup answers queries like Query but suppresses replication
// duplicates with a hash set instead of the reference-value method — the
// de-duplication ablation (Section 2.2 argues reference values are the
// more efficient choice; the ablation benchmark quantifies it).
func (ix *Index) QueryHashDedup(q model.Query) []model.ObjectID {
	if len(q.Elems) == 0 {
		return ix.queryTemporalOnly(q.Interval)
	}
	plan := dict.PlanOrder(q.Elems, ix.freqs)
	first := plan[0]
	if int(first) >= len(ix.lists) || ix.lists[first] == nil {
		return nil
	}
	sf, sl := ix.sliceOf(q.Interval.Start), ix.sliceOf(q.Interval.End)
	seen := make(map[model.ObjectID]struct{})
	var cands []model.ObjectID
	for s := sf; s <= sl; s++ {
		for _, p := range ix.lists[first][s] {
			if !p.Interval.Overlaps(q.Interval) {
				continue
			}
			if _, dup := seen[p.ID]; dup {
				continue
			}
			seen[p.ID] = struct{}{}
			cands = append(cands, p.ID)
		}
	}
	model.SortIDs(cands)
	keep := make([]bool, len(cands))
	for _, e := range plan[1:] {
		if len(cands) == 0 {
			return nil
		}
		if int(e) >= len(ix.lists) || ix.lists[e] == nil {
			return nil
		}
		for i := range keep {
			keep[i] = false
		}
		for s := sf; s <= sl; s++ {
			sub := ix.lists[e][s]
			i, j := 0, 0
			for i < len(cands) && j < len(sub) {
				switch {
				case cands[i] < sub[j].ID:
					i++
				case cands[i] > sub[j].ID:
					j++
				default:
					if !postings.IsTombstone(sub[j].Interval) {
						keep[i] = true
					}
					i++
					j++
				}
			}
		}
		w := 0
		for i, k := range keep {
			if k {
				cands[w] = cands[i]
				w++
			}
		}
		cands = cands[:w]
		keep = keep[:w]
	}
	return cands
}

func (ix *Index) queryTemporalOnly(q model.Interval) []model.ObjectID {
	sf, sl := ix.sliceOf(q.Start), ix.sliceOf(q.End)
	var out []model.ObjectID
	for e := range ix.lists {
		if ix.lists[e] == nil {
			continue
		}
		for s := sf; s <= sl; s++ {
			for _, p := range ix.lists[e][s] {
				if p.Interval.Overlaps(q) &&
					ix.sliceOf(postings.RefValue(p.Interval.Start, q.Start)) == s {
					out = append(out, p.ID)
				}
			}
		}
	}
	model.SortIDs(out)
	return model.DedupIDs(out)
}

// SizeBytes estimates the resident size: replicated 16-byte entries plus
// per-sub-list headers.
func (ix *Index) SizeBytes() int64 {
	var total int64
	for e := range ix.lists {
		for s := range ix.lists[e] {
			total += int64(cap(ix.lists[e][s]))*16 + 24
		}
	}
	return total + int64(len(ix.freqs))*8
}

// EntryCount returns the total number of (replicated) postings entries —
// the quantity the Figure 8 size curve tracks.
func (ix *Index) EntryCount() int64 {
	var total int64
	for e := range ix.lists {
		for s := range ix.lists[e] {
			total += int64(len(ix.lists[e][s]))
		}
	}
	return total
}

// TuneSlices implements the spirit of Berberich et al.'s tuning: among the
// candidate slice counts, pick the largest whose replicated size stays
// within budgetRatio times the unsliced size (budgetRatio >= 1). The
// expected query cost model of the paper decreases with more slices until
// fragmentation dominates, so "largest within budget" matches their
// optimizer's behaviour on uniform slicings.
func TuneSlices(c *model.Collection, candidates []int, budgetRatio float64) int {
	if len(candidates) == 0 {
		return DefaultSlices
	}
	span, ok := c.Span()
	if !ok {
		return candidates[0]
	}
	base := 0
	for i := range c.Objects {
		base += len(c.Objects[i].Elems)
	}
	best := candidates[0]
	for _, k := range candidates {
		width := (int64(span.End-span.Start) + int64(k)) / int64(k)
		if width < 1 {
			width = 1
		}
		var entries int64
		for i := range c.Objects {
			o := &c.Objects[i]
			spanned := int64(o.Interval.End-o.Interval.Start)/width + 1
			entries += spanned * int64(len(o.Elems))
		}
		if float64(entries) <= budgetRatio*float64(base) && k > best {
			best = k
		}
	}
	return best
}
