package slicing

import (
	"testing"

	"repro/internal/model"
	"repro/internal/testutil"
)

func runningExample() *model.Collection {
	var c model.Collection
	c.AppendObject(model.Interval{Start: 10, End: 15}, []model.ElemID{0, 1, 2}) // o1
	c.AppendObject(model.Interval{Start: 2, End: 5}, []model.ElemID{0, 2})      // o2
	c.AppendObject(model.Interval{Start: 0, End: 2}, []model.ElemID{1})         // o3
	c.AppendObject(model.Interval{Start: 0, End: 15}, []model.ElemID{0, 1, 2})  // o4
	c.AppendObject(model.Interval{Start: 3, End: 7}, []model.ElemID{1, 2})      // o5
	c.AppendObject(model.Interval{Start: 2, End: 11}, []model.ElemID{2})        // o6
	c.AppendObject(model.Interval{Start: 4, End: 14}, []model.ElemID{0, 2})     // o7
	c.AppendObject(model.Interval{Start: 2, End: 3}, []model.ElemID{2})         // o8
	return &c
}

func TestRunningExampleFourSlices(t *testing.T) {
	// Figure 2 uses 4 slices over the domain.
	ix := New(runningExample(), WithSlices(4))
	got := ix.Query(model.Query{Interval: model.Interval{Start: 4, End: 6}, Elems: []model.ElemID{0, 2}})
	want := []model.ObjectID{1, 3, 6}
	if !model.EqualIDs(testutil.Canonical(got), want) {
		t.Errorf("got %v, want %v", got, want)
	}
	if ix.NumSlices() != 4 {
		t.Errorf("NumSlices = %d", ix.NumSlices())
	}
}

func TestReplicationNoDuplicates(t *testing.T) {
	// o4 spans all slices; a query covering the whole domain must report
	// it exactly once despite 4 replicas per element.
	ix := New(runningExample(), WithSlices(4))
	got := ix.Query(model.Query{Interval: model.Interval{Start: 0, End: 15}, Elems: []model.ElemID{0}})
	want := []model.ObjectID{0, 1, 3, 6}
	if !model.EqualIDs(got, want) { // Query output must already be sorted+unique
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestSliceCountVariants(t *testing.T) {
	for _, k := range []int{1, 2, 3, 7, 16, 64} {
		cfg := testutil.DefaultConfig(int64(k))
		c := testutil.RandomCollection(cfg)
		ix := New(c, WithSlices(k))
		testutil.CheckAgainstOracle(t, "slicing", ix, c, testutil.RandomQueries(cfg, 120, int64(k)+100))
	}
}

func TestOracleEquivalence(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		cfg := testutil.DefaultConfig(seed)
		c := testutil.RandomCollection(cfg)
		ix := New(c)
		testutil.CheckAgainstOracle(t, "slicing", ix, c, testutil.RandomQueries(cfg, 200, seed+1))
	}
}

func TestUpdates(t *testing.T) {
	cfg := testutil.DefaultConfig(23)
	testutil.CheckUpdates(t, "slicing", func(c *model.Collection) testutil.UpdatableIndex {
		return New(c, WithSlices(8))
	}, cfg)
}

func TestInsertBeyondDomainClamps(t *testing.T) {
	c := runningExample()
	ix := New(c, WithSlices(4))
	// Insert an object extending past the build-time domain.
	o := model.Object{ID: 8, Interval: model.Interval{Start: 14, End: 99}, Elems: []model.ElemID{0}}
	ix.Insert(o)
	got := ix.Query(model.Query{Interval: model.Interval{Start: 50, End: 60}, Elems: []model.ElemID{0}})
	want := []model.ObjectID{8}
	if !model.EqualIDs(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
	// And still reported once on a full-domain query.
	got = ix.Query(model.Query{Interval: model.Interval{Start: 0, End: 100}, Elems: []model.ElemID{0}})
	want = []model.ObjectID{0, 1, 3, 6, 8}
	if !model.EqualIDs(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestEmptyCollection(t *testing.T) {
	var c model.Collection
	ix := New(&c, WithSlices(4))
	if got := ix.Query(model.Query{Interval: model.Interval{Start: 0, End: 5}, Elems: []model.ElemID{0}}); len(got) != 0 {
		t.Errorf("empty index returned %v", got)
	}
}

func TestEntryCountGrowsWithSlices(t *testing.T) {
	c := runningExample()
	few := New(c, WithSlices(1))
	many := New(c, WithSlices(8))
	if many.EntryCount() <= few.EntryCount() {
		t.Errorf("replication did not grow entries: %d vs %d", many.EntryCount(), few.EntryCount())
	}
	if few.EntryCount() != 15 { // sum of |d| over the 8 objects
		t.Errorf("unsliced entries = %d, want 15", few.EntryCount())
	}
}

func TestTuneSlices(t *testing.T) {
	cfg := testutil.DefaultConfig(5)
	c := testutil.RandomCollection(cfg)
	cands := []int{1, 10, 25, 50}
	// Budget of exactly 1.0 allows only the single-slice layout
	// (any replication exceeds the base size)... unless no interval
	// crosses a boundary; with random data some do.
	k1 := TuneSlices(c, cands, 1.0)
	if k1 != 1 {
		t.Errorf("tight budget chose %d slices", k1)
	}
	// A generous budget picks the largest candidate.
	k2 := TuneSlices(c, cands, 1e9)
	if k2 != 50 {
		t.Errorf("loose budget chose %d slices", k2)
	}
	if TuneSlices(c, nil, 2.0) != DefaultSlices {
		t.Error("empty candidates should fall back to default")
	}
}

func TestHashDedupMatchesReferenceValue(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		cfg := testutil.DefaultConfig(seed + 60)
		c := testutil.RandomCollection(cfg)
		ix := New(c, WithSlices(12))
		for i, q := range testutil.RandomQueries(cfg, 150, seed+61) {
			a := testutil.Canonical(ix.Query(q))
			b := testutil.Canonical(ix.QueryHashDedup(q))
			if !model.EqualIDs(a, b) {
				t.Fatalf("query %d: refvalue %v != hash %v", i, a, b)
			}
		}
	}
	// Element-less path shared with Query.
	ix := New(runningExample(), WithSlices(4))
	got := ix.QueryHashDedup(model.Query{Interval: model.Interval{Start: 0, End: 0}})
	if !model.EqualIDs(got, []model.ObjectID{2, 3}) {
		t.Errorf("got %v", got)
	}
}

func TestTemporalOnly(t *testing.T) {
	ix := New(runningExample(), WithSlices(4))
	got := ix.Query(model.Query{Interval: model.Interval{Start: 0, End: 0}})
	want := []model.ObjectID{2, 3}
	if !model.EqualIDs(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}
