package slicing

import (
	"testing"
	"testing/quick"

	"repro/internal/bruteforce"
	"repro/internal/model"
	"repro/internal/testutil"
)

// Property: any slice count, any workload shape, any query — results
// equal the oracle.
func TestSlicingQuick(t *testing.T) {
	f := func(kRaw uint8, seed int64, q0, q1 uint16, e0, e1 uint8) bool {
		k := int(kRaw%40) + 1
		cfg := testutil.CollectionConfig{N: 120, DomainLo: 0, DomainHi: 3000, Dict: 18, MaxDesc: 4, Seed: seed}
		c := testutil.RandomCollection(cfg)
		ix := New(c, WithSlices(k))
		oracle := bruteforce.New(c)
		q := model.Query{
			Interval: model.Canon(model.Timestamp(q0)%3001, model.Timestamp(q1)%3001),
			Elems:    model.NormalizeElems([]model.ElemID{model.ElemID(e0) % 18, model.ElemID(e1) % 18}),
		}
		return model.EqualIDs(testutil.Canonical(ix.Query(q)), testutil.Canonical(oracle.Query(q)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: the per-object replication factor is bounded by the number of
// slices its interval spans.
func TestReplicationFactorQuick(t *testing.T) {
	f := func(kRaw uint8, seed int64) bool {
		k := int(kRaw%20) + 1
		cfg := testutil.CollectionConfig{N: 80, DomainLo: 0, DomainHi: 2000, Dict: 10, MaxDesc: 3, Seed: seed}
		c := testutil.RandomCollection(cfg)
		ix := New(c, WithSlices(k))
		var maxEntries int64
		for i := range c.Objects {
			o := &c.Objects[i]
			spanned := int64(ix.sliceOf(o.Interval.End)-ix.sliceOf(o.Interval.Start)) + 1
			maxEntries += spanned * int64(len(o.Elems))
		}
		return ix.EntryCount() == maxEntries
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
