package aggregate

import (
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/testutil"
)

func small() *model.Collection {
	var c model.Collection
	c.AppendObject(model.Interval{Start: 0, End: 99}, []model.ElemID{0})  // spans all buckets
	c.AppendObject(model.Interval{Start: 0, End: 24}, []model.ElemID{0})  // bucket 0 only
	c.AppendObject(model.Interval{Start: 50, End: 74}, []model.ElemID{0}) // bucket 2 only
	c.AppendObject(model.Interval{Start: 0, End: 99}, []model.ElemID{1})  // other element
	return &c
}

func TestHistogramCounts(t *testing.T) {
	c := small()
	ix := bruteforce.New(c)
	q := model.Query{Interval: model.Interval{Start: 0, End: 99}, Elems: []model.ElemID{0}}
	buckets := Histogram(ix, c, q, 4)
	if len(buckets) != 4 {
		t.Fatalf("%d buckets", len(buckets))
	}
	wantCounts := []int{2, 1, 2, 1}
	for i, b := range buckets {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
		if b.Span.Duration() != 25 {
			t.Errorf("bucket %d span = %v", i, b.Span)
		}
	}
	// Mass: bucket 0 = 25 (o1) + 25 (o2) = 50.
	if buckets[0].Mass != 50 {
		t.Errorf("bucket 0 mass = %d, want 50", buckets[0].Mass)
	}
	// Total mass equals the sum of clipped durations: o1 100 + o2 25 + o3 25.
	var total int64
	for _, b := range buckets {
		total += b.Mass
	}
	if total != 150 {
		t.Errorf("total mass = %d, want 150", total)
	}
}

func TestHistogramRespectsElements(t *testing.T) {
	c := small()
	ix := bruteforce.New(c)
	q := model.Query{Interval: model.Interval{Start: 0, End: 99}, Elems: []model.ElemID{1}}
	buckets := Histogram(ix, c, q, 2)
	if buckets[0].Count != 1 || buckets[1].Count != 1 {
		t.Errorf("buckets = %+v", buckets)
	}
}

func TestHistogramEdges(t *testing.T) {
	c := small()
	ix := bruteforce.New(c)
	q := model.Query{Interval: model.Interval{Start: 0, End: 99}, Elems: []model.ElemID{0}}
	if got := Histogram(ix, c, q, 0); got != nil {
		t.Error("n=0 should give nil")
	}
	// More buckets than time units: n clamps to the domain size.
	tiny := model.Query{Interval: model.Interval{Start: 10, End: 12}, Elems: []model.ElemID{0}}
	buckets := Histogram(ix, c, tiny, 10)
	if len(buckets) != 3 {
		t.Errorf("clamped buckets = %d, want 3", len(buckets))
	}
	// Uneven division: the last bucket absorbs the remainder.
	buckets = Histogram(ix, c, q, 3)
	if got := buckets[2].Span.End; got != 99 {
		t.Errorf("last bucket ends at %d, want 99", got)
	}
}

func TestHistogramBucketInvariants(t *testing.T) {
	cfg := testutil.DefaultConfig(101)
	c := testutil.RandomCollection(cfg)
	ix := core.NewPerf(c, core.WithM(6))
	oracle := bruteforce.New(c)
	for i, q := range testutil.RandomQueries(cfg, 60, 102) {
		buckets := Histogram(ix, c, q, 8)
		// Buckets tile the query interval exactly.
		if len(buckets) > 0 {
			if buckets[0].Span.Start != q.Interval.Start || buckets[len(buckets)-1].Span.End != q.Interval.End {
				t.Fatalf("query %d: buckets do not tile %v", i, q.Interval)
			}
			for b := 1; b < len(buckets); b++ {
				if buckets[b].Span.Start != buckets[b-1].Span.End+1 {
					t.Fatalf("query %d: gap between buckets %d and %d", i, b-1, b)
				}
			}
		}
		// Max bucket count can't exceed total matches; each match counts
		// in at least one bucket.
		matches := len(oracle.Query(q))
		anyCounted := 0
		for _, b := range buckets {
			if b.Count > matches {
				t.Fatalf("query %d: bucket count %d > matches %d", i, b.Count, matches)
			}
			anyCounted += b.Count
		}
		if matches > 0 && anyCounted == 0 {
			t.Fatalf("query %d: %d matches but empty histogram", i, matches)
		}
	}
}

func TestPeakBucket(t *testing.T) {
	if PeakBucket(nil) != -1 {
		t.Error("empty histogram should have no peak")
	}
	buckets := []Bucket{{Count: 0}, {Count: 5}, {Count: 5}, {Count: 1}}
	if got := PeakBucket(buckets); got != 1 {
		t.Errorf("peak = %d, want 1 (earliest tie)", got)
	}
	if PeakBucket([]Bucket{{Count: 0}}) != -1 {
		t.Error("all-zero histogram should have no peak")
	}
}
