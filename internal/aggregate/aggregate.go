// Package aggregate implements temporal aggregation over time-travel IR
// results — the "statistical information over time" capability of the
// temporal keyword search line of work the paper surveys (Section 6.3,
// Gao et al.): instead of listing matching objects, report how many (and
// how much lifespan) fall into each bucket of a time partition.
package aggregate

import (
	"repro/internal/model"
)

// Bucket is one row of a temporal histogram.
type Bucket struct {
	Span  model.Interval
	Count int   // matching objects whose lifespan overlaps the bucket
	Mass  int64 // total overlapped time units within the bucket
}

// Index is the candidate source (any index of the family).
type Index interface {
	Query(q model.Query) []model.ObjectID
}

// Layout returns the empty bucket partition Histogram fills in: n equal
// buckets over the query interval (the final bucket absorbs the
// division remainder; n shrinks to the interval's duration when it is
// shorter than n time points). The layout depends only on (q.Interval,
// n), which is what lets a sharded engine sum per-shard histograms
// bucket-by-bucket: every shard — and the merged result — shares this
// exact partition. Returns nil when n or the interval is degenerate.
func Layout(q model.Query, n int) []Bucket {
	if n <= 0 || !q.Interval.Valid() {
		return nil
	}
	width := q.Interval.Duration() / int64(n)
	if width < 1 {
		width = 1
		if d := q.Interval.Duration(); d < int64(n) {
			n = int(d)
		}
	}
	buckets := make([]Bucket, n)
	for i := range buckets {
		lo := q.Interval.Start + model.Timestamp(int64(i)*width)
		hi := lo + model.Timestamp(width) - 1
		if i == n-1 {
			hi = q.Interval.End
		}
		buckets[i].Span = model.NewInterval(lo, hi)
	}
	return buckets
}

// Histogram partitions the query interval into n equal buckets and, for
// every object matching the time-travel IR query, accumulates per bucket
// the overlap count and the overlapped duration mass. The final bucket
// absorbs the division remainder.
func Histogram(ix Index, c *model.Collection, q model.Query, n int) []Bucket {
	buckets := Layout(q, n)
	if buckets == nil {
		return nil
	}
	n = len(buckets)
	width := int64(buckets[0].Span.Duration())
	ids := ix.Query(q)
	for _, id := range ids {
		o := &c.Objects[id]
		// Clip once, then touch only the overlapped bucket range.
		clip, ok := o.Interval.Intersect(q.Interval)
		if !ok {
			continue
		}
		first := int(int64(clip.Start-q.Interval.Start) / width)
		last := int(int64(clip.End-q.Interval.Start) / width)
		if last >= n {
			last = n - 1
		}
		if first >= n {
			first = n - 1
		}
		for b := first; b <= last; b++ {
			part, ok := clip.Intersect(buckets[b].Span)
			if !ok {
				continue
			}
			buckets[b].Count++
			buckets[b].Mass += part.Duration()
		}
	}
	return buckets
}

// PeakBucket returns the index of the bucket with the highest count
// (ties: earliest), or -1 for an empty histogram.
func PeakBucket(buckets []Bucket) int {
	best := -1
	for i := range buckets {
		if best == -1 || buckets[i].Count > buckets[best].Count {
			best = i
		}
	}
	if best >= 0 && buckets[best].Count == 0 {
		return -1
	}
	return best
}
