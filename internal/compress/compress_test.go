package compress

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/postings"
	"repro/internal/testutil"
	"repro/internal/tif"
)

func randomList(rng *rand.Rand, n int) []postings.Posting {
	list := make([]postings.Posting, n)
	id := uint32(0)
	for i := range list {
		id += 1 + uint32(rng.Intn(50))
		s := model.Timestamp(rng.Intn(100000))
		list[i] = postings.Posting{
			ID:       model.ObjectID(id),
			Interval: model.Interval{Start: s, End: s + model.Timestamp(rng.Intn(5000))},
		}
	}
	return list
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		list := randomList(rng, rng.Intn(200))
		got := DecodeList(EncodeList(list), len(list))
		if len(got) != len(list) {
			t.Fatalf("trial %d: decoded %d of %d", trial, len(got), len(list))
		}
		for i := range list {
			if got[i] != list[i] {
				t.Fatalf("trial %d entry %d: %+v vs %+v", trial, i, got[i], list[i])
			}
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(starts []uint16, durs []uint8) bool {
		n := len(starts)
		if len(durs) < n {
			n = len(durs)
		}
		list := make([]postings.Posting, n)
		for i := 0; i < n; i++ {
			s := model.Timestamp(starts[i])
			list[i] = postings.Posting{
				ID:       model.ObjectID(i * 3),
				Interval: model.Interval{Start: s, End: s + model.Timestamp(durs[i])},
			}
		}
		got := DecodeList(EncodeList(list), n)
		if len(got) != n {
			return false
		}
		for i := range list {
			if got[i] != list[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIteratorReset(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	list := randomList(rng, 50)
	it := NewIterator(EncodeList(list))
	var p postings.Posting
	count := 0
	for it.Next(&p) {
		count++
	}
	it.Reset()
	count2 := 0
	for it.Next(&p) {
		count2++
	}
	if count != 50 || count2 != 50 {
		t.Errorf("counts %d, %d", count, count2)
	}
}

func TestTruncatedBufferStops(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	buf := EncodeList(randomList(rng, 20))
	for cut := 0; cut < len(buf); cut += 3 {
		it := NewIterator(buf[:cut])
		var p postings.Posting
		n := 0
		for it.Next(&p) {
			n++
			if n > 20 {
				t.Fatal("runaway iterator")
			}
		}
	}
}

func TestCompressionRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	list := randomList(rng, 1000)
	buf := EncodeList(list)
	raw := len(list) * 16
	if len(buf) >= raw {
		t.Errorf("compressed %d >= raw %d bytes", len(buf), raw)
	}
}

func TestCompressedTIFMatchesPlain(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		cfg := testutil.DefaultConfig(seed + 80)
		c := testutil.RandomCollection(cfg)
		plain := tif.New(c)
		compressed := NewTIF(c)
		for i, q := range testutil.RandomQueries(cfg, 150, seed+81) {
			a := testutil.Canonical(plain.Query(q))
			b := testutil.Canonical(compressed.Query(q))
			if !model.EqualIDs(a, b) {
				t.Fatalf("seed %d query %d: plain %v != compressed %v", seed, i, a, b)
			}
		}
		if compressed.SizeBytes() >= plain.SizeBytes() {
			t.Errorf("compressed (%d B) should undercut plain (%d B)",
				compressed.SizeBytes(), plain.SizeBytes())
		}
		if compressed.Len() != c.Len() {
			t.Errorf("Len = %d", compressed.Len())
		}
	}
}

func TestCompressedTIFTemporalOnly(t *testing.T) {
	cfg := testutil.DefaultConfig(90)
	c := testutil.RandomCollection(cfg)
	plain := tif.New(c)
	compressed := NewTIF(c)
	q := model.Query{Interval: model.Interval{Start: 100, End: 2000}}
	a := testutil.Canonical(plain.Query(q))
	b := testutil.Canonical(compressed.Query(q))
	if !model.EqualIDs(a, b) {
		t.Errorf("temporal-only mismatch: %d vs %d ids", len(a), len(b))
	}
}

func TestCompressedTIFUnknownElement(t *testing.T) {
	cfg := testutil.DefaultConfig(91)
	c := testutil.RandomCollection(cfg)
	ix := NewTIF(c)
	q := model.Query{Interval: model.Interval{Start: 0, End: 5000}, Elems: []model.ElemID{model.ElemID(cfg.Dict + 5)}}
	if got := ix.Query(q); len(got) != 0 {
		t.Errorf("unknown element returned %v", got)
	}
}
