package compress

import (
	"math/rand"
	"testing"

	"repro/internal/postings"
)

func BenchmarkEncodeList(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	list := randomList(rng, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EncodeList(list)
	}
}

func BenchmarkDecodeScan(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	buf := EncodeList(randomList(rng, 10_000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := NewIterator(buf)
		var p postings.Posting
		for it.Next(&p) {
		}
	}
}
