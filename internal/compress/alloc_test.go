package compress

import (
	"math/rand"
	"testing"

	"repro/internal/allocbudget"
	"repro/internal/postings"
)

// TestAllocBudget pins the streaming decode step: a value iterator over
// an encoded list, reset at the end of each pass, must never allocate.
// `make benchmem` re-records.
func TestAllocBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	buf := EncodeList(randomList(rng, 10_000))

	allocbudget.Gate(t, "compress/Iterator.Next", func(b *testing.B) {
		it := Iterator{buf: buf}
		var p postings.Posting
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !it.Next(&p) {
				it.Reset()
			}
		}
	})
}
