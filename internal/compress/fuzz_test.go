package compress

import (
	"testing"

	"repro/internal/model"
	"repro/internal/postings"
)

func iv(s, e model.Timestamp) model.Interval { return model.Interval{Start: s, End: e} }

// FuzzIterator feeds arbitrary bytes to the decoder: it must terminate
// without panicking and only ever produce valid intervals.
func FuzzIterator(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03})
	f.Add(EncodeList([]postings.Posting{
		{ID: 3, Interval: iv(10, 20)},
		{ID: 9, Interval: iv(15, 15)},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		it := NewIterator(data)
		var p postings.Posting
		n := 0
		for it.Next(&p) {
			if !p.Interval.Valid() {
				t.Fatalf("invalid interval decoded: %v", p.Interval)
			}
			n++
			if n > len(data)+1 {
				t.Fatal("decoder produced more postings than input bytes")
			}
		}
	})
}
