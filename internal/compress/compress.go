// Package compress implements inverted-file compression — the extension
// the paper defers to future work (Section 7, citing Pibiri & Venturini's
// survey). Postings lists are stored as gap-encoded varints: ids are
// delta-coded (lists are id-sorted), interval starts are delta-coded
// against the previous start (archives ingest roughly chronologically, so
// gaps are small) and durations are stored directly. A compressed tIF
// answers the same queries as the plain one by decoding on the fly; the
// ablation benchmark quantifies the size/throughput trade.
package compress

import (
	"encoding/binary"

	"repro/internal/model"
	"repro/internal/postings"
)

// EncodeList compresses an id-sorted postings list.
func EncodeList(list []postings.Posting) []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	prevID := uint64(0)
	prevStart := int64(0)
	for _, p := range list {
		n := binary.PutUvarint(tmp[:], uint64(p.ID)-prevID)
		buf = append(buf, tmp[:n]...)
		prevID = uint64(p.ID)
		n = binary.PutVarint(tmp[:], int64(p.Interval.Start)-prevStart)
		buf = append(buf, tmp[:n]...)
		prevStart = int64(p.Interval.Start)
		n = binary.PutUvarint(tmp[:], uint64(p.Interval.Duration()))
		buf = append(buf, tmp[:n]...)
	}
	return buf
}

// DecodeList decompresses a full list (testing / rebuild path).
func DecodeList(buf []byte, n int) []postings.Posting {
	out := make([]postings.Posting, 0, n)
	it := NewIterator(buf)
	var p postings.Posting
	for it.Next(&p) {
		out = append(out, p)
	}
	return out
}

// Iterator streams a compressed list without materializing it.
type Iterator struct {
	buf       []byte
	pos       int
	prevID    uint64
	prevStart int64
}

// NewIterator starts decoding at the beginning of buf.
func NewIterator(buf []byte) *Iterator {
	return &Iterator{buf: buf}
}

// Next decodes one posting into p, reporting false at the end of the
// list (or on corruption, which only truncates).
//
// irlint:hot the per-posting decode step of every compressed query
func (it *Iterator) Next(p *postings.Posting) bool {
	if it.pos >= len(it.buf) {
		return false
	}
	gap, n := binary.Uvarint(it.buf[it.pos:])
	if n <= 0 {
		return false
	}
	it.pos += n
	dStart, n := binary.Varint(it.buf[it.pos:])
	if n <= 0 {
		return false
	}
	it.pos += n
	dur, n := binary.Uvarint(it.buf[it.pos:])
	// Reject corrupt durations outright: zero, implausibly large, or
	// overflowing the end computation (defense against truncated or
	// bit-flipped buffers).
	if n <= 0 || dur == 0 || dur > 1<<42 {
		return false
	}
	it.pos += n
	it.prevID += gap
	it.prevStart += dStart
	if it.prevStart > (1<<62) || it.prevStart < -(1<<62) {
		return false
	}
	p.ID = model.ObjectID(it.prevID)
	p.Interval = model.NewInterval(model.Timestamp(it.prevStart), model.Timestamp(it.prevStart+int64(dur)-1))
	return true
}

// Reset rewinds the iterator.
func (it *Iterator) Reset() {
	it.pos, it.prevID, it.prevStart = 0, 0, 0
}
