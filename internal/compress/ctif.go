package compress

import (
	"slices"
	"sort"

	"repro/internal/dict"
	"repro/internal/model"
	"repro/internal/postings"
)

// TIF is a static, compressed temporal inverted file: the Algorithm 1
// query plan over gap-encoded postings. It trades update support and some
// throughput for a fraction of the footprint — the compression ablation.
type TIF struct {
	lists  [][]byte
	counts []int
	freqs  []int
	live   int
}

// NewTIF builds the compressed index from a collection.
func NewTIF(c *model.Collection) *TIF {
	plain := make([][]postings.Posting, c.DictSize)
	for i := range c.Objects {
		o := &c.Objects[i]
		for _, e := range o.Elems {
			plain[e] = append(plain[e], postings.Posting{ID: o.ID, Interval: o.Interval})
		}
	}
	ix := &TIF{
		lists:  make([][]byte, c.DictSize),
		counts: make([]int, c.DictSize),
		freqs:  make([]int, c.DictSize),
		live:   c.Len(),
	}
	for e := range plain {
		if len(plain[e]) == 0 {
			continue
		}
		sort.Slice(plain[e], func(a, b int) bool { return plain[e][a].ID < plain[e][b].ID })
		ix.lists[e] = EncodeList(plain[e])
		ix.counts[e] = len(plain[e])
		ix.freqs[e] = len(plain[e])
	}
	return ix
}

// Len returns the number of indexed objects.
func (ix *TIF) Len() int { return ix.live }

// Query runs Algorithm 1 with on-the-fly decoding: temporal filter over
// the least frequent element's stream, then streaming merge intersections.
// The iterator is a stack value (no per-query allocation) and the
// candidate buffer is pre-sized to the first list's entry count, so the
// decode loops never reallocate.
//
// irlint:hot compressed-variant per-query entry point
func (ix *TIF) Query(q model.Query) []model.ObjectID {
	if len(q.Elems) == 0 {
		return ix.queryTemporalOnly(q.Interval)
	}
	plan := dict.PlanOrder(q.Elems, ix.freqs)
	first := plan[0]
	if int(first) >= len(ix.lists) || ix.lists[first] == nil {
		return nil
	}
	// lint:alloc-ok single candidate buffer per query, pre-sized to the first list's entry count
	cands := make([]model.ObjectID, 0, ix.counts[first])
	it := Iterator{buf: ix.lists[first]}
	var p postings.Posting
	for it.Next(&p) {
		if p.Interval.Overlaps(q.Interval) {
			cands = append(cands, p.ID)
		}
	}
	bs := postings.GetBitmapScratch()
	defer postings.PutBitmapScratch(bs)
	for _, e := range plan[1:] {
		if len(cands) == 0 {
			return nil
		}
		if int(e) >= len(ix.lists) || ix.lists[e] == nil {
			return nil
		}
		it = Iterator{buf: ix.lists[e]}
		// Dense candidate sets copy into a bitmap container: the decode
		// stream then tests membership with one word probe per entry,
		// instead of the in-place merge re-walking the candidate slice.
		// Encoded lists are id-sorted, so streaming appends stay sorted.
		if len(cands) >= postings.BitmapCutoff {
			bs.Cands.SetSorted(cands)
			w := 0
			for it.Next(&p) {
				if bs.Cands.Contains(p.ID) {
					cands[w] = p.ID
					w++
				}
			}
			cands = cands[:w]
			continue
		}
		w := 0
		i := 0
		for it.Next(&p) && i < len(cands) {
			for i < len(cands) && cands[i] < p.ID {
				i++
			}
			if i < len(cands) && cands[i] == p.ID {
				cands[w] = cands[i]
				w++
				i++
			}
		}
		cands = cands[:w]
	}
	return cands
}

func (ix *TIF) queryTemporalOnly(q model.Interval) []model.ObjectID {
	var out []model.ObjectID
	var p postings.Posting
	for e := range ix.lists {
		if ix.lists[e] == nil {
			continue
		}
		// Establish capacity for this list's matches before the decode
		// loop; growth amortizes to one allocation per non-empty list.
		// lint:alloc-ok amortized growth, at most one allocation per non-empty list
		out = slices.Grow(out, ix.counts[e])
		it := Iterator{buf: ix.lists[e]}
		for it.Next(&p) {
			if p.Interval.Overlaps(q) {
				out = append(out, p.ID)
			}
		}
	}
	model.SortIDs(out)
	return model.DedupIDs(out)
}

// SizeBytes is the compressed footprint: encoded bytes plus slice
// headers, the per-element counts and the plan-order frequencies.
func (ix *TIF) SizeBytes() int64 {
	var total int64
	for e := range ix.lists {
		total += int64(cap(ix.lists[e])) + 24
	}
	return total + int64(len(ix.counts))*8 + int64(len(ix.freqs))*8
}
